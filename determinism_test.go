package lf_test

import (
	"fmt"
	"reflect"
	"testing"

	"lf"
)

// TestDecodeDeterminismAcrossParallelism pins the pipeline's central
// concurrency contract: a decode with Parallelism 1 (fully serial, no
// goroutines) and Parallelism 8 (every stage fanned out) must produce
// byte-identical Results — same streams in the same order, same bits,
// same quality scores, same SIC recoveries — for every seed and
// population size. Any scheduling-dependent rng draw, floating-point
// reassociation, or result reordering breaks this test.
func TestDecodeDeterminismAcrossParallelism(t *testing.T) {
	for _, tags := range []int{1, 4, 16} {
		for _, seed := range []int64{1, 7, 42} {
			t.Run(fmt.Sprintf("tags=%d/seed=%d", tags, seed), func(t *testing.T) {
				ep, cfg := buildEpoch(t, tags, seed)
				serial := decodeWith(t, ep, cfg, 1)
				parallel := decodeWith(t, ep, cfg, 8)
				if !reflect.DeepEqual(serial, parallel) {
					t.Fatalf("parallel decode diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
				}
			})
		}
	}
}

// TestDecodeDeterminismRepeatable guards the weaker property the
// stronger test depends on: the same decode run twice at the same
// parallelism is identical (no pool reuse leaking state between runs).
func TestDecodeDeterminismRepeatable(t *testing.T) {
	ep, cfg := buildEpoch(t, 8, 3)
	first := decodeWith(t, ep, cfg, 0)
	second := decodeWith(t, ep, cfg, 0)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("repeated decode of the same epoch diverged")
	}
}

func buildEpoch(t *testing.T, tags int, seed int64) (*lf.Epoch, lf.DecoderConfig) {
	t.Helper()
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        tags,
		PayloadSeconds: 2e-3,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	return ep, net.DecoderConfig()
}

func decodeWith(t *testing.T, ep *lf.Epoch, cfg lf.DecoderConfig, parallelism int) *lf.Result {
	t.Helper()
	cfg.Parallelism = parallelism
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dec.Decode(ep)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
