package lf_test

import (
	"fmt"
	"reflect"
	"testing"

	"lf"
)

// TestDecodeDeterminismAcrossParallelism pins the pipeline's central
// concurrency contract: a decode with Parallelism 1 (fully serial, no
// goroutines) and Parallelism 8 (every stage fanned out) must produce
// byte-identical Results — same streams in the same order, same bits,
// same quality scores, same SIC recoveries — for every seed and
// population size. Any scheduling-dependent rng draw, floating-point
// reassociation, or result reordering breaks this test.
func TestDecodeDeterminismAcrossParallelism(t *testing.T) {
	for _, tags := range []int{1, 4, 16} {
		for _, seed := range []int64{1, 7, 42} {
			t.Run(fmt.Sprintf("tags=%d/seed=%d", tags, seed), func(t *testing.T) {
				ep, cfg := buildEpoch(t, tags, seed)
				serial := decodeWith(t, ep, cfg, 1)
				parallel := decodeWith(t, ep, cfg, 8)
				if !reflect.DeepEqual(serial, parallel) {
					t.Fatalf("parallel decode diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
				}
			})
		}
	}
}

// TestDecodeDeterminismRepeatable guards the weaker property the
// stronger test depends on: the same decode run twice at the same
// parallelism is identical (no pool reuse leaking state between runs).
func TestDecodeDeterminismRepeatable(t *testing.T) {
	ep, cfg := buildEpoch(t, 8, 3)
	first := decodeWith(t, ep, cfg, 0)
	second := decodeWith(t, ep, cfg, 0)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("repeated decode of the same epoch diverged")
	}
}

// TestStatsDeterminism extends the determinism contract to the
// observability layer: the decode-class metrics identity must be
// byte-identical at any Parallelism and, for streaming, at any push
// block size. Timing and pool-occupancy metrics are runtime-class and
// excluded from Identity(), so this holds even though wall-clock
// numbers differ run to run.
func TestStatsDeterminism(t *testing.T) {
	ep, cfg := buildEpoch(t, 8, 13)

	statsFor := func(parallelism int) string {
		t.Helper()
		c := cfg
		c.Parallelism = parallelism
		dec, err := lf.NewDecoder(c)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(ep); err != nil {
			t.Fatal(err)
		}
		return dec.Stats().Identity()
	}
	want := statsFor(1)
	for _, p := range []int{2, 4} {
		if got := statsFor(p); got != want {
			t.Errorf("stats identity at Parallelism %d diverged from serial:\nwant:\n%s\ngot:\n%s", p, want, got)
		}
	}

	samples := ep.Capture.Samples
	for _, block := range []int{1, 4096, len(samples)} {
		dec, err := lf.NewDecoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := dec.NewStream()
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(samples); lo += block {
			hi := min(lo+block, len(samples))
			if err := sd.Push(samples[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sd.Flush(); err != nil {
			t.Fatal(err)
		}
		if got := sd.Stats().Identity(); got != want {
			t.Errorf("streaming stats identity at block %d diverged from batch:\nwant:\n%s\ngot:\n%s", block, want, got)
		}
	}
}

func buildEpoch(t *testing.T, tags int, seed int64) (*lf.Epoch, lf.DecoderConfig) {
	t.Helper()
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        tags,
		PayloadSeconds: 2e-3,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	return ep, net.DecoderConfig()
}

func decodeWith(t *testing.T, ep *lf.Epoch, cfg lf.DecoderConfig, parallelism int) *lf.Result {
	t.Helper()
	cfg.Parallelism = parallelism
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dec.Decode(ep)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
