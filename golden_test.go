package lf_test

// Golden-trace regression corpus. Each case is a committed LFIQ
// capture under testdata/golden/ plus the expected decode rendered to
// text: the frames (<name>.frames) and the pipeline-stats identity
// (<name>.stats). The test decodes every capture through BOTH the
// batch and the streaming path and requires byte-for-byte equality
// with the committed files — any change to decode output or to the
// decode-class metrics shows up as a readable text diff.
//
// Regenerate after an intentional pipeline change with:
//
//	go test -run TestGolden -update
//
// and review the .frames/.stats diffs like any other code change. The
// captures themselves are regenerated too (deterministically, from the
// case seeds), so -update is safe to run on any machine.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lf"
	"lf/internal/fault"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/golden from the case table")

// goldenBlock is the streaming push block size; goldenCalib bounds
// noise calibration so streaming detection starts mid-capture.
const (
	goldenBlock = 4096
	goldenCalib = 4096
)

// goldenCase describes one corpus entry. Faulted cases impair the
// capture at generation time; the committed .lfiq already contains the
// impairment, so decoding needs no fault machinery.
type goldenCase struct {
	name string
	// sampleRate and tags shape the synthesized epoch. The clean and
	// fault cases run 4 tags at 5 Msps (small files); the collision
	// case needs 12.5 Msps for a dense 8-tag population to register.
	sampleRate float64
	tags       int
	seed       int64
	fault      string // fault.ParseSpec list applied to the capture
	faultSeed  int64
	// rounds enables successive interference cancellation for the
	// decode (lf.DecoderConfig.CancellationRounds). The sic case pins
	// the incremental dirty-span residual passes end to end: recovered
	// streams, carried calibration, and the SIC decode-class counters
	// all land in the committed text.
	rounds int
}

// Fault seeds are chosen so the impairment lands after the
// calibration window: a span inside the first CalibSamples poisons the
// noise estimate and (correctly, but uninterestingly) kills the whole
// decode. These cases pin the graceful-degradation path instead.
var goldenCases = []goldenCase{
	{name: "clean", sampleRate: 5e6, tags: 4, seed: 11},
	{name: "collision", sampleRate: 12.5e6, tags: 8, seed: 5},
	// The sic case's seed is chosen so the capture carries multiple
	// 2-tag collisions plus a 3-tag pile-up, both cancellation rounds
	// actually run, and round one recovers a stream the first pass
	// could not decode.
	{name: "sic", sampleRate: 12.5e6, tags: 8, seed: 10, rounds: 2},
	{name: "burst", sampleRate: 5e6, tags: 4, seed: 31, fault: "burst:0.75", faultSeed: 7},
	{name: "dropout", sampleRate: 5e6, tags: 4, seed: 37, fault: "dropout:0.2", faultSeed: 13},
	{name: "nonfinite", sampleRate: 5e6, tags: 4, seed: 41, fault: "nonfinite:0.75", faultSeed: 7},
	{name: "gainstep", sampleRate: 5e6, tags: 4, seed: 43, fault: "gainstep:0.5", faultSeed: 13},
}

// goldenConfig is the fixed, fully explicit decode configuration every
// corpus capture is decoded with — independent of the simulator so a
// replayed capture decodes identically forever.
func goldenConfig(sampleRate float64, rounds int) lf.DecoderConfig {
	return lf.DecoderConfig{
		SampleRate:         sampleRate,
		Rates:              []float64{100e3},
		PayloadBits:        func(float64) int { return 20 },
		Stages:             lf.AllStages(),
		CalibSamples:       goldenCalib,
		Seed:               9,
		CancellationRounds: rounds,
	}
}

func TestGolden(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, gc := range goldenCases {
		t.Run(gc.name, func(t *testing.T) {
			if *updateGolden {
				writeGoldenCapture(t, gc)
			}
			capPath := goldenPath(gc.name, "lfiq")
			f, err := os.Open(capPath)
			if err != nil {
				t.Fatalf("open %s (regenerate with -update): %v", capPath, err)
			}
			defer f.Close()
			capture, err := lf.ReadCapture(f)
			if err != nil {
				t.Fatal(err)
			}

			// Batch decode.
			dec, err := lf.NewDecoder(goldenConfig(capture.SampleRate, gc.rounds))
			if err != nil {
				t.Fatal(err)
			}
			res, err := dec.DecodeCapture(capture)
			if err != nil {
				t.Fatal(err)
			}
			frames := renderFrames(res)
			stats := dec.Stats().Identity()

			// Streaming decode of the same samples must match both
			// renderings byte-for-byte.
			sdec, err := lf.NewDecoder(goldenConfig(capture.SampleRate, gc.rounds))
			if err != nil {
				t.Fatal(err)
			}
			sd, err := sdec.NewStream()
			if err != nil {
				t.Fatal(err)
			}
			for lo := 0; lo < len(capture.Samples); lo += goldenBlock {
				hi := min(lo+goldenBlock, len(capture.Samples))
				if err := sd.Push(capture.Samples[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			sres, err := sd.Flush()
			if err != nil {
				t.Fatal(err)
			}
			if got := renderFrames(sres); got != frames {
				t.Fatalf("streaming frames diverged from batch:\n%s", textDiff(frames, got))
			}
			if got := sd.Stats().Identity(); got != stats {
				t.Fatalf("streaming stats diverged from batch:\n%s", textDiff(stats, got))
			}

			if *updateGolden {
				writeGoldenText(t, gc.name, "frames", frames)
				writeGoldenText(t, gc.name, "stats", stats)
				return
			}
			wantFrames := readGoldenText(t, gc.name, "frames")
			if frames != wantFrames {
				t.Errorf("frames diverged from golden (re-run with -update if intentional):\n%s",
					textDiff(wantFrames, frames))
			}
			wantStats := readGoldenText(t, gc.name, "stats")
			if stats != wantStats {
				t.Errorf("stats identity diverged from golden (re-run with -update if intentional):\n%s",
					textDiff(wantStats, stats))
			}
		})
	}
}

// writeGoldenCapture synthesizes (and optionally impairs) one case's
// capture and commits it to testdata/golden/<name>.lfiq.
func writeGoldenCapture(t *testing.T, gc goldenCase) {
	t.Helper()
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        gc.tags,
		PayloadSeconds: 0.2e-3,
		SampleRate:     gc.sampleRate,
		Seed:           gc.seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if gc.fault != "" {
		injs, err := fault.ParseSpec(gc.fault)
		if err != nil {
			t.Fatal(err)
		}
		capture, err := fault.Config{Seed: gc.faultSeed, Injectors: injs}.ApplyCapture(ep.Capture)
		if err != nil {
			t.Fatal(err)
		}
		ep = &lf.Epoch{Capture: capture, Emissions: ep.Emissions, Config: ep.Config}
	}
	f, err := os.Create(goldenPath(gc.name, "lfiq"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := lf.WriteCapture(f, ep); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func goldenPath(name, ext string) string {
	return filepath.Join("testdata", "golden", name+"."+ext)
}

func writeGoldenText(t *testing.T, name, ext, content string) {
	t.Helper()
	if err := os.WriteFile(goldenPath(name, ext), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readGoldenText(t *testing.T, name, ext string) string {
	t.Helper()
	data, err := os.ReadFile(goldenPath(name, ext))
	if err != nil {
		t.Fatalf("read golden %s.%s (regenerate with -update): %v", name, ext, err)
	}
	return string(data)
}

// renderFrames renders a decode result to the canonical golden text:
// every float printed with %.17g (exact for float64), bits as a 0/1
// string, streams and drops in result order.
func renderFrames(res *lf.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "streams %d edges %d noise %.17g collisions2 %d collisions3 %d merged %d recovered %d\n",
		len(res.Streams), res.EdgeCount, res.NoiseFloor, res.Collisions2, res.Collisions3,
		res.MergedSplits, res.RecoveredStreams)
	for i, sr := range res.Streams {
		fmt.Fprintf(&b, "stream %d source=%s rate=%.17g offset=%.17g bits=%s crc=%v conf=%.17g margin=%.17g collided=%d recovered=%v\n",
			i, sr.Stream.Source, sr.Stream.Rate, sr.Stream.Offset, bitString(sr.Bits),
			sr.CRCOK, sr.Confidence, sr.PathMargin, sr.CollidedSlots, sr.Recovered)
	}
	for _, d := range res.Dropped {
		fmt.Fprintf(&b, "dropped stream=%d reason=%s lo=%d hi=%d\n", d.Stream, d.Reason, d.Lo, d.Hi)
	}
	return b.String()
}

func bitString(bits []byte) string {
	if len(bits) == 0 {
		return "-"
	}
	var b strings.Builder
	for _, bit := range bits {
		if bit == 0 {
			b.WriteByte('0')
		} else {
			b.WriteByte('1')
		}
	}
	return b.String()
}

// textDiff renders a minimal line diff of two golden texts.
func textDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  want: %s\n  got:  %s\n", i+1, w, g)
	}
	return b.String()
}
