package lf_test

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"lf"
	"lf/internal/fault"
)

// TestShardedMatchesSerial pins the sharded decoder's byte-identity
// contract across the full degradation surface: for a clean capture
// and one capture per fault kind, the sharded decode
// (ShardParallelism ∈ {2, 8}) must produce byte-identical Results —
// frames, drops, and decode-class stats — to the unsharded streaming
// path at every push block size, single-sample pushes included. Shard
// count and block size only reshape which worker computes which
// stripe; any divergence means a stripe read state outside its
// seam-safe overlap (DESIGN.md §15).
func TestShardedMatchesSerial(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 11)
	cfg.CalibSamples = 32768

	cases := []struct {
		name    string
		samples []complex128
	}{{"clean", ep.Capture.Samples}}
	for i, k := range fault.CaptureKinds() {
		fc := fault.Config{Seed: int64(100 + i), Injectors: []fault.Injector{{Kind: k, Severity: 0.6}}}
		impaired, err := fc.ApplyCapture(ep.Capture)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, struct {
			name    string
			samples []complex128
		}{string(k), impaired.Samples})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, wantID := streamDecodeSamples(t, tc.samples, cfg, 4096)
			for _, shards := range []int{2, 8} {
				for _, block := range []int{1, 4096, len(tc.samples) + 1} {
					if block == 1 && shards != 2 {
						// Single-sample pushes exercise the stripe
						// hold-back machinery; one shard count is enough
						// at that cost.
						continue
					}
					scfg := cfg
					scfg.ShardParallelism = shards
					got, gotID := streamDecodeSamples(t, tc.samples, scfg, block)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("shards=%d block=%d: sharded decode diverged from serial:\nserial:  %+v\nsharded: %+v",
							shards, block, want, got)
					}
					if wantID != gotID {
						t.Fatalf("shards=%d block=%d: decode-class stats diverged:\nserial:\n%s\nsharded:\n%s",
							shards, block, wantID, gotID)
					}
				}
			}
		})
	}
}

// TestShardedComposesWithStageGraph pins that sharding composes with
// the pipeline-parallel stage graph: the detect stage owns the shard
// pool, the walk stage reads immutable views, and the combined
// execution shape must still be byte-identical to the plain serial
// streaming decode.
func TestShardedComposesWithStageGraph(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 11)
	cfg.CalibSamples = 32768
	want, wantID := streamDecodeSamples(t, ep.Capture.Samples, cfg, 4096)
	for _, depth := range []int{1, 4} {
		ccfg := cfg
		ccfg.ShardParallelism = 2
		ccfg.PipelineParallelism = 2
		ccfg.StageDepth = depth
		got, gotID := streamDecodeSamples(t, ep.Capture.Samples, ccfg, 4096)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("depth=%d: sharded+pipelined decode diverged from serial:\nserial:   %+v\ncombined: %+v",
				depth, want, got)
		}
		if wantID != gotID {
			t.Fatalf("depth=%d: decode-class stats diverged:\nserial:\n%s\ncombined:\n%s", depth, wantID, gotID)
		}
	}
}

// TestShardedBatchMatches pins that batch Decode honours
// ShardParallelism and still returns the exact unsharded result —
// with SIC enabled, so the residual decodes inherit the sharding too.
func TestShardedBatchMatches(t *testing.T) {
	ep, cfg := buildEpoch(t, 8, 21)
	cfg.CalibSamples = 32768
	want := decodeWith(t, ep, cfg, 0)
	scfg := cfg
	scfg.ShardParallelism = 4
	got := decodeWith(t, ep, scfg, 0)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("sharded batch decode diverged:\nserial:  %+v\nsharded: %+v", want, got)
	}
}

// TestShardedShutdown pins the shard pool's lifecycle: worker
// goroutines must all exit after Flush — including when the decode
// ends early on a poisoned capture — and repeated sharded decodes must
// not accumulate goroutines.
func TestShardedShutdown(t *testing.T) {
	ep, cfg := buildEpoch(t, 2, 3)
	cfg.CalibSamples = 32768
	cfg.ShardParallelism = 4
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		res, _ := streamDecodeSamples(t, ep.Capture.Samples, cfg, 8192)
		if len(res.Streams) == 0 {
			t.Fatal("sharded decode found no streams")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after sharded decodes", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardedStatsConservation re-checks the decode-class conservation
// identities on a sharded run: shard counters are runtime-class by
// design, so every decode-class invariant must hold exactly as on the
// serial path.
func TestShardedStatsConservation(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 11)
	cfg.CalibSamples = 32768
	cfg.ShardParallelism = 2
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	samples := ep.Capture.Samples
	for i := 0; i < len(samples); i += 8192 {
		if err := sd.Push(samples[i:min(i+8192, len(samples))]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sd.Flush(); err != nil {
		t.Fatal(err)
	}
	snap := sd.Stats()
	get := func(name string) int64 { return snap.Counter(name) }
	if raw, kept, sup := get("edge.raw_peaks"), get("edge.kept"), get("edge.suppressed"); raw != kept+sup {
		t.Fatalf("raw_peaks %d != kept %d + suppressed %d", raw, kept, sup)
	}
	if groups, edges := get("edge.groups"), get("edge.edges"); groups != edges {
		t.Fatalf("groups %d != edges %d", groups, edges)
	}
	if edges, claimed, un := get("edge.edges"), get("edge.claimed"), get("edge.unclaimed"); edges != claimed+un {
		t.Fatalf("edges %d != claimed %d + unclaimed %d", edges, claimed, un)
	}
	if slots, c, f, e := get("walk.slots"), get("walk.slots_clean"), get("walk.slots_foreign"), get("walk.slots_empty"); slots != c+f+e {
		t.Fatalf("walk slots %d != clean %d + foreign %d + empty %d", slots, c, f, e)
	}
	// The stripe counters themselves: every computable magnitude
	// position is owned by exactly one stripe.
	if n := get("shard.stripes"); n == 0 {
		t.Fatal("sharded decode dispatched no stripes")
	}
	if covered := get("shard.samples"); covered != int64(len(samples)) {
		t.Fatalf("stripes own %d positions, capture has %d", covered, len(samples))
	}
}

// TestShardedFaultSweepAcrossBlocks is the make shard-smoke sweep rung
// that varies shard count and block size together on one degraded
// capture per run mode — cheaper than the full cross product in
// TestShardedMatchesSerial but covering the {1, 2, 8} shard ladder the
// CI target names (ShardParallelism 1 must equal 0, the off switch).
func TestShardedFaultSweepAcrossBlocks(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 13)
	cfg.CalibSamples = 32768
	fc := fault.Config{Seed: 7, Injectors: []fault.Injector{{Kind: fault.SpuriousEdges, Severity: 0.6}}}
	impaired, err := fc.ApplyCapture(ep.Capture)
	if err != nil {
		t.Fatal(err)
	}
	want, wantID := streamDecodeSamples(t, impaired.Samples, cfg, 8192)
	for _, shards := range []int{1, 2, 8} {
		for _, block := range []int{4096, 8192} {
			scfg := cfg
			scfg.ShardParallelism = shards
			got, gotID := streamDecodeSamples(t, impaired.Samples, scfg, block)
			if !reflect.DeepEqual(want, got) || wantID != gotID {
				t.Fatalf("shards=%d block=%d: diverged from serial", shards, block)
			}
		}
	}
}
