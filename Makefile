GO ?= go
FUZZTIME ?= 30s

.PHONY: all build vet test race race-stream bench benchjson benchguard \
	fuzz fuzz-smoke kernel-smoke obs-smoke stage-smoke shard-smoke \
	sic-smoke dist-smoke gate-smoke robustness-smoke profile ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race gate exercises the parallel pipeline (decoder fan-out,
# chunked edge detection, epoch-level experiment workers) under the
# race detector; the suite's determinism tests run both serial and
# parallel paths, so this covers every pool in the tree.
race:
	$(GO) test -race ./...

# Focused race pass over the streaming-vs-batch equivalence suite: the
# streaming decoder shares worker pools with the batch path, so the
# bit-identity tests double as a race probe of every incremental stage.
race-stream:
	$(GO) test -race -run 'TestStreaming' .

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Machine-readable micro-benchmarks (ns/op, allocs/op, goodput,
# streaming throughput/latency/window). Regenerates the committed
# baseline; commit the result when a perf change is intentional.
benchjson:
	$(GO) run ./cmd/lfbench -benchjson BENCH_streaming_decode.json

# Re-run the suite and fail on >15% ns/op or allocs/op regressions in
# the gated hot-path stages (decode sweep, edgedetect sweep, streaming
# decode) against the committed baseline.
benchguard:
	$(GO) run ./cmd/lfbench -benchguard BENCH_streaming_decode.json

# Native Go fuzzing of the adversarial-input surfaces: the LFIQ
# container parser and the streaming decode pipeline. FUZZTIME bounds
# each target's budget (default 30s; raise for a soak run).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzBlockReader -fuzztime $(FUZZTIME) ./internal/iq
	$(GO) test -run '^$$' -fuzz FuzzReadCapture -fuzztime $(FUZZTIME) ./internal/iq
	$(GO) test -run '^$$' -fuzz FuzzStreamPush -fuzztime $(FUZZTIME) ./internal/decoder
	$(GO) test -run '^$$' -fuzz FuzzWireFrame -fuzztime $(FUZZTIME) ./internal/dist
	$(GO) test -run '^$$' -fuzz FuzzGateFrame -fuzztime $(FUZZTIME) ./internal/gate
	$(GO) test -run '^$$' -fuzz FuzzPrefixRepair -fuzztime $(FUZZTIME) ./internal/dsp

# Short-budget fuzz pass for CI: enough executions to catch decode-path
# panics on adversarial input without stalling the gate.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=5s

# Kernel-equivalence smoke: fuzz the coarse-to-fine sweep against the
# dense reference (skip soundness + guard-range coverage, DESIGN.md
# §12), plus the direct unit equivalence suites for the SoA kernels,
# quickselect median, and windowed NMS.
kernel-smoke:
	$(GO) test -run 'TestPrefixSoA|TestDiffSweep|TestMedianFloat|TestSuppress' ./internal/dsp
	$(GO) test -run '^$$' -fuzz FuzzDiffSweepSparse -fuzztime 5s ./internal/dsp
	$(GO) test -run TestSparseSweepMatchesDense -short .

# Observability smoke: the golden-trace corpus (batch + streaming,
# byte-for-byte against testdata/golden/) and the metrics conservation
# sweep (accounting identities across every fault kind), both under the
# race detector so the atomic counter paths are exercised concurrently.
obs-smoke:
	$(GO) test -race -run 'TestGolden|TestMetricsConservation|TestStatsDeterminism' .

# Stage-graph smoke: the pipelined decoder's bit-identity sweep
# (stage depth x fault kind x block size, plus goroutine-leak and
# shutdown checks) under the race detector, the stage primitives'
# unit tests, and one lfbench stage-breakdown run so the per-stage
# occupancy path stays wired end to end.
stage-smoke:
	$(GO) test -race -run 'TestStageGraph' .
	$(GO) test -race ./internal/stage
	$(GO) run ./cmd/lfbench -exp stages -quick

# Sharded-decode smoke: the shard-vs-serial byte-identity sweep (shard
# counts {1,2,8} x block sizes x all fault kinds, stage-graph
# composition, batch + SIC inheritance, stats conservation, shutdown
# leak check) under the race detector, plus the shard pool/tiling
# primitives' unit tests.
shard-smoke:
	$(GO) test -race -run 'TestSharded' .
	$(GO) test -race ./internal/shard

# Incremental-SIC smoke: the dirty-span vs ForceFullResidual
# byte-identity matrix (fault kinds x rounds, block/shard/pipeline
# composition, vacuity guard) under the race detector, the prefix
# subtract-and-repair unit suite, and one quick sic experiment run so
# the redecode-fraction measurement path stays wired end to end.
sic-smoke:
	$(GO) test -race -run 'TestSIC' .
	$(GO) test -run 'TestRepairPrefix' ./internal/dsp
	$(GO) run ./cmd/lfbench -exp sic -quick

# Distributed-decode smoke: the loopback acceptance matrix (worker
# counts {1,2,4} x transport fault kinds at severity 0.5, forced
# hedging, fleet-drain fallback, shard quarantine, stats conservation —
# every cell asserting byte-identity against the single-machine sharded
# decode) under the race detector, plus the wire/lease/hedge unit suite
# and a two-worker transport-fault sweep through the bench harness.
dist-smoke:
	$(GO) test -race -run 'TestDistributed' .
	$(GO) test -race ./internal/dist
	$(GO) run ./cmd/lfbench -exp dist -quick

# Reader-gateway smoke: the gateway lifecycle suite (resume, kill
# mid-stream flush, double-Close, connect/disconnect storm, slow-sink
# backpressure, goroutine-leak check) at -count=3, the root acceptance
# matrix (reader push blocks {1,4096,whole} x capture faults x
# transport fault kinds at severity 0.5 — every cell asserting
# byte-identity against independent local streaming decodes), and a
# four-reader loopback gateway run with the identity check enforced.
gate-smoke:
	$(GO) test -race -count=3 ./internal/gate
	$(GO) test -race -run 'TestGateway' .
	$(GO) run ./cmd/lfgate -demo -readers 4 -check

# One-epoch robustness sweep: fault injection across severities with
# the streaming==batch degraded-identity check enforced per point.
robustness-smoke:
	$(GO) run ./cmd/lfbench -exp robustness -quick -epochs 1

# CPU + heap profiles of the micro-benchmark suite, for hunting the
# next hot spot (`go tool pprof lfbench.cpu.prof`).
profile:
	$(GO) run ./cmd/lfbench -benchjson /tmp/lfbench-profile.json \
		-cpuprofile lfbench.cpu.prof -memprofile lfbench.mem.prof

ci: vet build test race race-stream fuzz-smoke kernel-smoke obs-smoke stage-smoke shard-smoke sic-smoke dist-smoke gate-smoke robustness-smoke benchguard

clean:
	$(GO) clean ./...
