GO ?= go

.PHONY: all build vet test race race-stream bench benchjson benchguard ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race gate exercises the parallel pipeline (decoder fan-out,
# chunked edge detection, epoch-level experiment workers) under the
# race detector; the suite's determinism tests run both serial and
# parallel paths, so this covers every pool in the tree.
race:
	$(GO) test -race ./...

# Focused race pass over the streaming-vs-batch equivalence suite: the
# streaming decoder shares worker pools with the batch path, so the
# bit-identity tests double as a race probe of every incremental stage.
race-stream:
	$(GO) test -race -run 'TestStreaming' .

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Machine-readable micro-benchmarks (ns/op, allocs/op, goodput,
# streaming throughput/latency/window). Regenerates the committed
# baseline; commit the result when a perf change is intentional.
benchjson:
	$(GO) run ./cmd/lfbench -benchjson BENCH_streaming_decode.json

# Re-run the suite and fail on >15% ns/op or allocs/op regressions in
# the gated hot-path stages (decode sweep, edgedetect sweep, streaming
# decode) against the committed baseline.
benchguard:
	$(GO) run ./cmd/lfbench -benchguard BENCH_streaming_decode.json

ci: vet build test race race-stream benchguard

clean:
	$(GO) clean ./...
