GO ?= go

.PHONY: all build vet test race bench benchjson ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race gate exercises the parallel pipeline (decoder fan-out,
# chunked edge detection, epoch-level experiment workers) under the
# race detector; the suite's determinism tests run both serial and
# parallel paths, so this covers every pool in the tree.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Machine-readable micro-benchmarks (ns/op, allocs/op, goodput).
benchjson:
	$(GO) run ./cmd/lfbench -benchjson BENCH_parallel_pipeline.json

ci: vet build test race bench

clean:
	$(GO) clean ./...
