package lf_test

// Metrics conservation suite. The observability layer's counters are
// only trustworthy if they balance: every raw edge peak is either kept
// or suppressed, every committed frame either passed or failed CRC,
// every drop event has exactly one reason. This test sweeps a clean
// epoch plus every fault kind at two severities and asserts those
// accounting identities on the batch decode's Stats(), then requires
// the streaming decode of the same capture to produce a byte-identical
// decode-class identity — the determinism contract under impairment.

import (
	"fmt"
	"testing"

	"lf"
	"lf/internal/fault"
	"lf/internal/reader"
)

// conservationChecks are the accounting identities every decode must
// satisfy, written as name, sum-of-parts == total.
func checkConservation(t *testing.T, s *lf.Stats, res *lf.Result) {
	t.Helper()
	c := s.Counter
	type identity struct {
		name       string
		total, sum int64
	}
	checks := []identity{
		{"edge.raw_peaks == kept + suppressed",
			c("edge.raw_peaks"), c("edge.kept") + c("edge.suppressed")},
		{"edge.edges == edge.groups",
			c("edge.edges"), c("edge.groups")},
		{"edge.edges == claimed + unclaimed",
			c("edge.edges"), c("edge.claimed") + c("edge.unclaimed")},
		{"walk.slots == clean + foreign + empty",
			c("walk.slots"), c("walk.slots_clean") + c("walk.slots_foreign") + c("walk.slots_empty")},
		{"collide.groups_pair == blind + anchored + unresolved",
			c("collide.groups_pair"), c("collide.pair_blind") + c("collide.pair_anchored") + c("collide.pair_unresolved")},
		{"frames.committed == crc_ok + crc_fail",
			c("frames.committed"), c("frames.crc_ok") + c("frames.crc_fail")},
		{"frames.committed == len(res.Streams)",
			c("frames.committed"), int64(len(res.Streams))},
		{"frames.recovered == res.RecoveredStreams",
			c("frames.recovered"), int64(res.RecoveredStreams)},
		{"sic.recovered == frames.recovered",
			c("sic.recovered"), c("frames.recovered")},
		{"sic.rounds == sic.residual_decodes",
			c("sic.rounds"), c("sic.residual_decodes")},
		{"drop.events == nonfinite + panic + truncated",
			c("drop.events"), c("drop.nonfinite") + c("drop.panic") + c("drop.truncated")},
		{"drop.events == len(res.Dropped)",
			c("drop.events"), int64(len(res.Dropped))},
	}
	for _, id := range checks {
		if id.total != id.sum {
			t.Errorf("conservation violated: %s (%d != %d)", id.name, id.total, id.sum)
		}
	}
	// Sanity floor: the instrumented pipeline must have seen the
	// capture at all — a decode that registered streams walks slots.
	if len(res.Streams) > 0 && c("walk.slots") == 0 {
		t.Error("decode produced streams but walk.slots is 0")
	}
}

// conservationEpoch impairs buildEpoch's output with one injector,
// re-synthesizing for tag-level kinds (the impairment exists before
// the ADC) and corrupting samples for capture-level kinds.
func conservationEpoch(t *testing.T, net *lf.Network, ep *lf.Epoch, inj fault.Injector) *lf.Epoch {
	t.Helper()
	fc := fault.Config{Seed: 29, Injectors: []fault.Injector{inj}}
	if fault.IsTagLevel(inj.Kind) {
		ems, err := fc.ApplyEmissions(ep.Emissions)
		if err != nil {
			t.Fatal(err)
		}
		re, err := reader.Synthesize(net.Channel(), ems, ep.Config)
		if err != nil {
			t.Fatal(err)
		}
		return &lf.Epoch{Capture: re.Capture, Emissions: ems, Config: ep.Config}
	}
	capture, err := fc.ApplyCapture(ep.Capture)
	if err != nil {
		t.Fatal(err)
	}
	return &lf.Epoch{Capture: capture, Emissions: ep.Emissions, Config: ep.Config}
}

func TestMetricsConservation(t *testing.T) {
	net, err := lf.NewNetwork(lf.NetworkConfig{NumTags: 4, PayloadSeconds: 2e-3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	base, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	cfg := net.DecoderConfig()

	type sweepCase struct {
		name string
		inj  *fault.Injector
	}
	cases := []sweepCase{{name: "clean"}}
	kinds := append(fault.CaptureKinds(), fault.TagKinds()...)
	for _, k := range kinds {
		for _, sev := range []float64{0.5, 1} {
			inj := fault.Injector{Kind: k, Severity: sev}
			cases = append(cases, sweepCase{name: fmt.Sprintf("%s:%g", k, sev), inj: &inj})
		}
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ep := base
			if tc.inj != nil {
				ep = conservationEpoch(t, net, base, *tc.inj)
			}

			// Batch decode: conservation holds on the decode's stats.
			dec, err := lf.NewDecoder(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := dec.Decode(ep)
			if err != nil {
				t.Fatal(err)
			}
			stats := dec.Stats()
			checkConservation(t, stats, res)

			// Streaming decode of the same capture: the decode-class
			// identity must match the batch run byte for byte.
			sdec, err := lf.NewDecoder(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sd, err := sdec.NewStream()
			if err != nil {
				t.Fatal(err)
			}
			const block = 4096
			samples := ep.Capture.Samples
			for lo := 0; lo < len(samples); lo += block {
				hi := min(lo+block, len(samples))
				if err := sd.Push(samples[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			sres, err := sd.Flush()
			if err != nil {
				t.Fatal(err)
			}
			checkConservation(t, sd.Stats(), sres)
			if got, want := sd.Stats().Identity(), stats.Identity(); got != want {
				t.Errorf("streaming stats identity diverged from batch:\n%s", textDiff(want, got))
			}
		})
	}
}
