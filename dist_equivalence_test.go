package lf_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"lf"
	"lf/internal/dist"
	"lf/internal/fault"
)

// startFleet launches n workers against the coordinator and returns a
// stop func (idempotent) that cancels them and waits for their loops to
// exit. Each worker gets its own name so backoff jitter decorrelates.
func startFleet(t *testing.T, c *dist.Coordinator, n int, mut func(i int, wc *dist.WorkerConfig)) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wc := dist.WorkerConfig{
			Addr: c.Addr(),
			Name: "w" + string(rune('0'+i)),
		}
		if mut != nil {
			mut(i, &wc)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			dist.RunWorker(ctx, wc)
		}()
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			wg.Wait()
		})
	}
	t.Cleanup(stop)
	if !c.WaitWorkers(n, 5*time.Second) {
		stop()
		t.Fatalf("fleet of %d never connected", n)
	}
	return stop
}

// distConfig is cfg rewired to serve its sweep stripes through the
// coordinator instead of computing them in-process.
func distConfig(cfg lf.DecoderConfig, c *dist.Coordinator) lf.DecoderConfig {
	cfg.ShardParallelism = 4
	cfg.StripeRunner = c.RunStripe
	return cfg
}

// TestDistributedMatchesLocal is the acceptance matrix: distributed
// decode over loopback TCP must be byte-identical to the single-machine
// ShardParallelism decode for worker counts {1, 2, 4} crossed with
// every transport fault kind at severity 0.5 on the coordinator's side
// of each connection. Transport trouble may cost retries and hedges but
// never bytes: the merge adopts stripes in submission order and every
// valid result for a stripe carries identical floats.
func TestDistributedMatchesLocal(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 11)
	cfg.CalibSamples = 32768
	local := cfg
	local.ShardParallelism = 4
	want, wantID := streamDecodeSamples(t, ep.Capture.Samples, local, 8192)

	cases := []struct {
		name      string
		transport fault.TransportConfig
	}{{name: "clean"}}
	for i, k := range fault.TransportKinds() {
		cases = append(cases, struct {
			name      string
			transport fault.TransportConfig
		}{
			name: string(k),
			transport: fault.TransportConfig{
				Seed:      int64(300 + i),
				Injectors: []fault.Injector{{Kind: k, Severity: 0.5}},
			},
		})
	}

	for _, workers := range []int{1, 2, 4} {
		for _, tc := range cases {
			t.Run(tc.name+"/"+string(rune('0'+workers)), func(t *testing.T) {
				c, err := dist.NewCoordinator(dist.CoordinatorConfig{
					LeaseTimeout: 500 * time.Millisecond,
					Transport:    tc.transport,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(c.Close)
				startFleet(t, c, workers, nil)

				got, gotID := streamDecodeSamples(t, ep.Capture.Samples, distConfig(cfg, c), 8192)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("distributed decode (%d workers, %s) diverged from local sharded decode", workers, tc.name)
				}
				if gotID != wantID {
					t.Errorf("stats identity diverged (%d workers, %s):\nwant:\n%s\ngot:\n%s", workers, tc.name, wantID, gotID)
				}
				snap := c.Stats()
				if snap.Counter("dist.shards") == 0 {
					t.Error("coordinator served no shards — decode silently ran local")
				}
			})
		}
	}
}

// TestDistributedForcedHedging pins the straggler path: one worker
// whose compute stalls far past HedgeAfter forces the monitor to
// re-queue its shards for the healthy worker. First valid result wins;
// the bytes must not care which worker it came from.
func TestDistributedForcedHedging(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 11)
	cfg.CalibSamples = 32768
	local := cfg
	local.ShardParallelism = 4
	want, wantID := streamDecodeSamples(t, ep.Capture.Samples, local, 8192)

	c, err := dist.NewCoordinator(dist.CoordinatorConfig{
		LeaseTimeout: 2 * time.Second,
		HedgeAfter:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	startFleet(t, c, 2, func(i int, wc *dist.WorkerConfig) {
		if i == 0 {
			wc.Compute = func(job *lf.StripeJob) {
				time.Sleep(150 * time.Millisecond)
				job.Run()
			}
		}
	})

	got, gotID := streamDecodeSamples(t, ep.Capture.Samples, distConfig(cfg, c), 8192)
	if !reflect.DeepEqual(want, got) {
		t.Error("decode under forced hedging diverged from local sharded decode")
	}
	if gotID != wantID {
		t.Errorf("stats identity diverged under hedging:\nwant:\n%s\ngot:\n%s", wantID, gotID)
	}
	if h := c.Stats().Counter("dist.hedges"); h == 0 {
		t.Error("stalled worker never triggered a hedge")
	}
}

// TestDistributedFleetDrainFallsBack kills the whole fleet mid-decode:
// the lone worker's compute wedges, its process dies, and every stripe
// must still settle — re-queued on lease expiry, then computed locally
// once the census hits zero. The result must not change.
func TestDistributedFleetDrainFallsBack(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 11)
	cfg.CalibSamples = 32768
	local := cfg
	local.ShardParallelism = 4
	want, wantID := streamDecodeSamples(t, ep.Capture.Samples, local, 8192)

	c, err := dist.NewCoordinator(dist.CoordinatorConfig{
		LeaseTimeout: 100 * time.Millisecond,
		HedgeAfter:   -1, // isolate the drain path from hedging
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	hold := make(chan struct{})
	var wedged sync.Once
	stop := startFleet(t, c, 1, func(i int, wc *dist.WorkerConfig) {
		wc.Compute = func(job *lf.StripeJob) {
			wedged.Do(func() {}) // a job actually reached the worker
			<-hold
		}
	})
	t.Cleanup(func() { close(hold) }) // runs after stop (LIFO): unwedge, then join

	// Kill the fleet shortly after the decode starts leasing shards.
	timer := time.AfterFunc(50*time.Millisecond, stop)
	defer timer.Stop()

	got, gotID := streamDecodeSamples(t, ep.Capture.Samples, distConfig(cfg, c), 8192)
	if !reflect.DeepEqual(want, got) {
		t.Error("decode across fleet drain diverged from local sharded decode")
	}
	if gotID != wantID {
		t.Errorf("stats identity diverged across fleet drain:\nwant:\n%s\ngot:\n%s", wantID, gotID)
	}
	if c.Stats().Counter("dist.local") == 0 {
		t.Error("drained fleet never forced a local fallback")
	}
}

// TestDistributedQuarantineTypedError poisons every worker's compute:
// after QuarantineAfter typed remote failures the shard settles with a
// *lf.DecodeError that surfaces from the decode — the coordinator and
// the shard pool both survive, and a healthy fleet decodes cleanly on
// the very next run.
func TestDistributedQuarantineTypedError(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 11)
	cfg.CalibSamples = 32768
	local := cfg
	local.ShardParallelism = 4
	want, wantID := streamDecodeSamples(t, ep.Capture.Samples, local, 8192)

	c, err := dist.NewCoordinator(dist.CoordinatorConfig{
		LeaseTimeout:    time.Second,
		QuarantineAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	stopPoisoned := startFleet(t, c, 2, func(i int, wc *dist.WorkerConfig) {
		wc.Compute = func(job *lf.StripeJob) { panic("poisoned stripe compute") }
	})

	dcfg := distConfig(cfg, c)
	dec, err := lf.NewDecoder(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	samples := ep.Capture.Samples
	var decodeErr error
	for i := 0; i < len(samples) && decodeErr == nil; i += 8192 {
		decodeErr = sd.Push(samples[i:min(i+8192, len(samples))])
	}
	if decodeErr == nil {
		_, decodeErr = sd.Flush()
	}
	if decodeErr == nil {
		t.Fatal("poisoned fleet produced a clean decode")
	}
	var de *lf.DecodeError
	if !errors.As(decodeErr, &de) {
		t.Fatalf("quarantine surfaced an untyped error: %v", decodeErr)
	}

	// The coordinator survives quarantine: swap in a healthy fleet and
	// the same coordinator serves a byte-identical decode.
	stopPoisoned()
	startFleet(t, c, 2, nil)
	got, gotID := streamDecodeSamples(t, ep.Capture.Samples, dcfg, 8192)
	if !reflect.DeepEqual(want, got) {
		t.Error("post-quarantine decode diverged from local sharded decode")
	}
	if gotID != wantID {
		t.Errorf("post-quarantine stats identity diverged:\nwant:\n%s\ngot:\n%s", wantID, gotID)
	}
}

// TestDistributedStatsConservation re-checks the decode-class
// conservation identities on a distributed run and pins the dist.*
// runtime counters' own invariants: distribution must be invisible to
// decode-class stats, and every stripe the decoder dispatched must be
// accounted for by the coordinator.
func TestDistributedStatsConservation(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 11)
	cfg.CalibSamples = 32768

	c, err := dist.NewCoordinator(dist.CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	startFleet(t, c, 2, nil)

	dcfg := distConfig(cfg, c)
	dec, err := lf.NewDecoder(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	samples := ep.Capture.Samples
	for i := 0; i < len(samples); i += 8192 {
		if err := sd.Push(samples[i:min(i+8192, len(samples))]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sd.Flush(); err != nil {
		t.Fatal(err)
	}
	snap := sd.Stats()
	get := func(name string) int64 { return snap.Counter(name) }
	if raw, kept, sup := get("edge.raw_peaks"), get("edge.kept"), get("edge.suppressed"); raw != kept+sup {
		t.Fatalf("raw_peaks %d != kept %d + suppressed %d", raw, kept, sup)
	}
	if groups, edges := get("edge.groups"), get("edge.edges"); groups != edges {
		t.Fatalf("groups %d != edges %d", groups, edges)
	}
	if edges, claimed, un := get("edge.edges"), get("edge.claimed"), get("edge.unclaimed"); edges != claimed+un {
		t.Fatalf("edges %d != claimed %d + unclaimed %d", edges, claimed, un)
	}
	if slots, cl, f, e := get("walk.slots"), get("walk.slots_clean"), get("walk.slots_foreign"), get("walk.slots_empty"); slots != cl+f+e {
		t.Fatalf("walk slots %d != clean %d + foreign %d + empty %d", slots, cl, f, e)
	}
	if covered := get("shard.samples"); covered != int64(len(samples)) {
		t.Fatalf("stripes own %d positions, capture has %d", covered, len(samples))
	}
	// dist.* counters must never leak into the decode-class snapshot.
	if n := get("dist.shards"); n != 0 {
		t.Fatalf("dist.shards leaked into the decode registry: %d", n)
	}
	// SIC residual passes run with metrics disabled, so their stripes
	// reach the coordinator without touching shard.stripes: the wire
	// count dominates the metered count.
	dsnap := c.Stats()
	if shards, stripes := dsnap.Counter("dist.shards"), get("shard.stripes"); stripes == 0 || shards < stripes {
		t.Fatalf("coordinator saw %d shards, decoder metered %d stripes", shards, stripes)
	}
	if dsnap.Counter("dist.bytes") == 0 {
		t.Fatal("no bytes crossed the wire")
	}
	if w := dsnap.Gauges["dist.workers"]; w != 2 {
		t.Fatalf("dist.workers gauge = %d, want 2", w)
	}
}
