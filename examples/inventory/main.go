// Inventory: the canonical RFID use case (§5.2) — read the EPC
// identifiers of every tag in range as fast as possible. Each tag
// blindly transmits its 96-bit EPC + CRC-5 every carrier epoch at a
// fresh random offset; the reader keeps issuing epochs until every
// identifier has been received with a valid CRC.
package main

import (
	"fmt"
	"log"

	"lf"
	"lf/internal/epc"
	"lf/internal/rng"
)

func main() {
	const numTags = 8
	src := rng.New(2026)

	// Assign every tag a random EPC.
	ids := make([]epc.ID, numTags)
	idSet := make(map[epc.ID]int, numTags)
	for i := range ids {
		ids[i] = epc.Random(src)
		idSet[ids[i]] = i
	}

	net, err := lf.NewNetwork(lf.NetworkConfig{NumTags: numTags, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	for i, id := range ids {
		if err := net.SetPayload(i, id.Frame()); err != nil {
			log.Fatal(err)
		}
	}
	dec, err := lf.NewDecoder(net.DecoderConfig())
	if err != nil {
		log.Fatal(err)
	}

	identified := map[epc.ID]bool{}
	var elapsed float64
	for epoch := 1; epoch <= 10; epoch++ {
		ep, err := net.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		elapsed += ep.Capture.Duration()
		res, err := dec.Decode(ep)
		if err != nil {
			log.Fatal(err)
		}
		newThisEpoch := 0
		for _, sr := range res.Streams {
			if id, ok := epc.ParseFrame(sr.Bits); ok {
				if _, known := idSet[id]; known && !identified[id] {
					identified[id] = true
					newThisEpoch++
				}
			}
		}
		fmt.Printf("epoch %d (%.2f ms): +%d tags, %d/%d identified\n",
			epoch, ep.Capture.Duration()*1e3, newThisEpoch, len(identified), numTags)
		if len(identified) == numTags {
			break
		}
	}
	fmt.Printf("inventory of %d tags complete in %.2f ms\n", len(identified), elapsed*1e3)
	for id, tagIdx := range idSet {
		status := "MISSING"
		if identified[id] {
			status = "ok"
		}
		fmt.Printf("  tag %d: %s %s\n", tagIdx, id, status)
	}
}
