// Sensornet: the heterogeneous deployment the paper's introduction
// motivates — ultra-low-power harvesting sensors trickling out
// readings at under 1 kbps coexisting, in the same carrier epoch, with
// battery-assisted camera/microphone tags streaming at 100 kbps.
// Laissez-faire transmission means the slow tags never buffer, never
// listen, and never wait for the fast ones.
package main

import (
	"fmt"
	"log"

	"lf"
)

func main() {
	// Two tags per rate class: temperature-sensor-class (500 bps),
	// accelerometer-class (5 kbps), audio-class (50 kbps) and
	// image-class (100 kbps).
	rates := []float64{500, 500, 5e3, 5e3, 50e3, 50e3, 100e3, 100e3}
	net, err := lf.NewNetwork(lf.NetworkConfig{
		BitRates:       rates,
		PayloadSeconds: 20e-3, // 20 ms of payload airtime per epoch
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}

	dec, err := lf.NewDecoder(net.DecoderConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Run a few epochs, as a reader would during continuous offload.
	const epochs = 3
	perTag := make([]int, len(rates))
	sent := make([]int, len(rates))
	for e := 0; e < epochs; e++ {
		epoch, err := net.RunEpoch()
		if err != nil {
			log.Fatal(err)
		}
		result, err := dec.Decode(epoch)
		if err != nil {
			log.Fatal(err)
		}
		score := lf.ScoreEpoch(epoch, result)
		for _, ts := range score.PerTag {
			perTag[ts.TagID] += ts.CorrectBits
			sent[ts.TagID] += ts.PayloadBits
		}
	}

	fmt.Println("per-tag delivery over", epochs, "epochs:")
	for i, r := range rates {
		class := "sensor"
		switch {
		case r >= 100e3:
			class = "imager"
		case r >= 50e3:
			class = "audio"
		case r >= 5e3:
			class = "accel"
		}
		fmt.Printf("  tag %d (%-6s %6.1f kbps): %5d/%5d bits (%.1f%%)\n",
			i, class, r/1e3, perTag[i], sent[i], 100*float64(perTag[i])/float64(sent[i]))
	}
}
