// Reliable: the §3.6 link-layer reliability sketch in action. Tags
// keep retransmitting a CRC-16-protected message every carrier epoch —
// with fresh random offsets, so collision patterns re-randomize — and
// the reader broadcasts a rate-reduction command when an epoch shows
// heavy collision activity. The tags stay dumb; the reader steers.
//
// Acceptance is not CRC-only: the session also consumes the decoder's
// per-frame confidence (Viterbi path margin × slot quality), rejecting
// frames below Config.MinConfidence so a lucky CRC on a near-random
// bit string cannot deliver garbage. The per-epoch mean confidence is
// the reader's early-warning signal for a degrading link.
package main

import (
	"fmt"
	"log"

	"lf"
	"lf/internal/reliable"
	"lf/internal/rng"
)

func main() {
	const numTags = 10
	net, err := lf.NewNetwork(lf.NetworkConfig{NumTags: numTags, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	src := rng.New(4)
	msgs := make([]reliable.Message, numTags)
	for i := range msgs {
		msgs[i] = reliable.Message{TagID: i, Data: src.Bits(96)}
	}

	res, err := reliable.Collect(net, msgs, reliable.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for i, es := range res.Epochs {
		fmt.Printf("epoch %d: %2d/%d delivered, collision rate %.2f, max rate %.0f kbps, mean confidence %.2f (%d low-confidence rejects)\n",
			i+1, es.Delivered, numTags, es.CollisionRate, es.MaxRate/1e3, es.MeanConfidence, es.LowConfidence)
	}
	fmt.Printf("complete=%v in %.2f ms airtime (%d slow-down broadcasts)\n",
		res.Complete, res.Seconds*1e3, res.RateReductions)
	for i := range msgs {
		got, ok := res.Delivered[i]
		if !ok {
			fmt.Printf("tag %d: NOT DELIVERED\n", i)
			continue
		}
		match := "ok"
		for k := range got {
			if got[k] != msgs[i].Data[k] {
				match = "CORRUPT"
				break
			}
		}
		fmt.Printf("tag %d: %d bits %s\n", i, len(got), match)
	}
}
