// Snrsweep: measure how the full LF-Backscatter pipeline degrades as
// the tag moves away from the reader. Distance drives the radar
// equation (received power ∝ 1/d⁴), so a few extra metres cost many dB
// — the §5.4 robustness story at the system level, complementing the
// genie-aided modulation comparison in cmd/lfbench -exp fig14.
package main

import (
	"fmt"
	"log"

	"lf"
)

func main() {
	fmt.Println("distance  edges  registered  BER      goodput")
	for _, distance := range []float64{1, 2, 3, 4, 5, 6} {
		net, err := lf.NewNetwork(lf.NetworkConfig{
			NumTags:        1,
			Distance:       distance,
			PayloadSeconds: 4e-3,
			Seed:           99,
		})
		if err != nil {
			log.Fatal(err)
		}
		dec, err := lf.NewDecoder(net.DecoderConfig())
		if err != nil {
			log.Fatal(err)
		}
		var errBits, totalBits, edges, reg int
		const epochs = 3
		for e := 0; e < epochs; e++ {
			ep, err := net.RunEpoch()
			if err != nil {
				log.Fatal(err)
			}
			res, err := dec.Decode(ep)
			if err != nil {
				log.Fatal(err)
			}
			edges += res.EdgeCount
			score := lf.ScoreEpoch(ep, res)
			reg += score.Registered
			for _, ts := range score.PerTag {
				errBits += ts.BitErrors
				totalBits += ts.PayloadBits
			}
		}
		ber := float64(errBits) / float64(totalBits)
		fmt.Printf("%5.1f m  %5d  %6d/%d    %.4f   %.1f%%\n",
			distance, edges, reg, epochs, ber, 100*(1-ber))
	}
}
