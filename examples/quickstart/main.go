// Quickstart: simulate a single backscatter tag, capture one epoch at
// the reader, decode it with the full LF-Backscatter pipeline, and
// verify the payload survived — the smallest end-to-end session the
// public API supports.
package main

import (
	"fmt"
	"log"

	"lf"
)

func main() {
	// A network is a simulated deployment: tags (comparator start
	// jitter, 150 ppm clock drift), the RF channel (radar-equation
	// link budget + noise), and the reader front end (25 Msps IQ).
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        1,
		BitRates:       []float64{100e3}, // 100 kbps
		PayloadSeconds: 1e-3,             // 100 payload bits
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One carrier epoch: the tag powers up, waits out its comparator
	// delay, and blindly clocks its frame out.
	epoch, err := net.RunEpoch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d IQ samples (%.2f ms)\n",
		epoch.Capture.Len(), epoch.Capture.Duration()*1e3)

	// The decoder runs the full reader pipeline: edge detection on IQ
	// differentials, eye-pattern stream registration, collision
	// separation, and Viterbi error correction.
	dec, err := lf.NewDecoder(net.DecoderConfig())
	if err != nil {
		log.Fatal(err)
	}
	result, err := dec.Decode(epoch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d edges, registered %d stream(s)\n",
		result.EdgeCount, len(result.Streams))

	// Score against the simulation's ground truth.
	score := lf.ScoreEpoch(epoch, result)
	for _, ts := range score.PerTag {
		fmt.Printf("tag %d: %d/%d payload bits correct\n",
			ts.TagID, ts.CorrectBits, ts.PayloadBits)
	}
	fmt.Printf("goodput: %.1f kbps\n", score.AggregateBps/1e3)
}
