module lf

go 1.22
