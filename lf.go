// Package lf is the public API of LF-Backscatter, a reproduction of
// "Laissez-Faire: Fully Asymmetric Backscatter Communication"
// (Hu, Zhang, Ganesan — SIGCOMM 2015).
//
// LF-Backscatter is a fully asymmetric backscatter protocol: tags
// blindly transmit the moment they see the reader's carrier — no MAC,
// no receive path, no buffers — and the reader separates the
// concurrent streams by combining time-domain edge interleaving,
// IQ-plane collision clustering, and Viterbi sequence correction.
//
// The package exposes two central types:
//
//   - Network simulates a deployment: tags (with comparator start
//     jitter and clock drift), the RF channel (radar-equation link
//     budget, environment reflection, AWGN), and the reader front end
//     (epoch control, 25 Msps IQ capture synthesis).
//   - Decoder runs the full reader pipeline over a captured epoch and
//     returns per-stream decoded bits.
//
// A minimal session:
//
//	net, _ := lf.NewNetwork(lf.NetworkConfig{NumTags: 4, Seed: 1})
//	ep, _ := net.RunEpoch()
//	dec, _ := lf.NewDecoder(net.DecoderConfig())
//	res, _ := dec.Decode(ep)
//	score := lf.ScoreEpoch(ep, res)
//	fmt.Printf("goodput: %.0f bps\n", score.AggregateBps)
package lf

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"lf/internal/channel"
	"lf/internal/decoder"
	"lf/internal/edgedetect"
	"lf/internal/iq"
	"lf/internal/obs"
	"lf/internal/reader"
	"lf/internal/rng"
	"lf/internal/streams"
	"lf/internal/tag"
)

// DefaultBaseRate is the network base rate in bits/s; every tag rate
// must be a multiple of it (the paper uses 100 bps).
const DefaultBaseRate = 100

// NetworkConfig describes a simulated deployment.
type NetworkConfig struct {
	// NumTags is the number of tags (ignored if BitRates is set
	// per-tag).
	NumTags int
	// BitRates holds each tag's rate in bits/s. If it has exactly one
	// element, all NumTags tags share that rate. Defaults to 100 kbps
	// for every tag.
	BitRates []float64
	// BaseRate is the network base rate; all BitRates must be
	// multiples of it. Defaults to DefaultBaseRate.
	BaseRate float64
	// PayloadBits holds each tag's payload size per epoch. If it has
	// one element it applies to all tags; if nil, payload sizes are
	// derived from PayloadSeconds of airtime at each tag's rate.
	PayloadBits []int
	// PayloadSeconds is the per-epoch payload airtime used when
	// PayloadBits is nil (default 10 ms).
	PayloadSeconds float64
	// Distance is the nominal tag-reader distance in metres
	// (default 2, the paper's deployment).
	Distance float64
	// Channel overrides the channel parameters (zero value → defaults).
	Channel channel.Params
	// SampleRate overrides the reader ADC rate (default 25 Msps).
	SampleRate float64
	// EdgeSamples overrides the edge transition width (default 3).
	EdgeSamples int
	// ClockPPM is the tag crystal drift bound (default 150 ppm).
	ClockPPM float64
	// Seed makes the simulation reproducible.
	Seed int64
}

func (c *NetworkConfig) fillDefaults() error {
	if c.BaseRate == 0 {
		c.BaseRate = DefaultBaseRate
	}
	if len(c.BitRates) == 0 {
		c.BitRates = []float64{100e3}
	}
	if c.NumTags == 0 {
		c.NumTags = len(c.BitRates)
	}
	if len(c.BitRates) == 1 && c.NumTags > 1 {
		r := c.BitRates[0]
		c.BitRates = make([]float64, c.NumTags)
		for i := range c.BitRates {
			c.BitRates[i] = r
		}
	}
	if len(c.BitRates) != c.NumTags {
		return fmt.Errorf("lf: %d bit rates for %d tags", len(c.BitRates), c.NumTags)
	}
	if c.PayloadSeconds == 0 {
		c.PayloadSeconds = 10e-3
	}
	if len(c.PayloadBits) == 1 && c.NumTags > 1 {
		p := c.PayloadBits[0]
		c.PayloadBits = make([]int, c.NumTags)
		for i := range c.PayloadBits {
			c.PayloadBits[i] = p
		}
	}
	if c.PayloadBits == nil {
		c.PayloadBits = make([]int, c.NumTags)
		for i, r := range c.BitRates {
			c.PayloadBits[i] = int(math.Round(r * c.PayloadSeconds))
			if c.PayloadBits[i] < 1 {
				c.PayloadBits[i] = 1
			}
		}
	}
	if len(c.PayloadBits) != c.NumTags {
		return fmt.Errorf("lf: %d payload sizes for %d tags", len(c.PayloadBits), c.NumTags)
	}
	if c.Distance == 0 {
		c.Distance = 2
	}
	if c.Channel == (channel.Params{}) {
		c.Channel = channel.DefaultParams()
	}
	if c.SampleRate == 0 {
		c.SampleRate = 25e6
	}
	if c.EdgeSamples == 0 {
		c.EdgeSamples = 3
	}
	if c.ClockPPM == 0 {
		c.ClockPPM = 150
	}
	return nil
}

// Network is an instantiated simulated deployment.
type Network struct {
	cfg   NetworkConfig
	tags  []tag.Config
	ch    *channel.Model
	src   *rng.Source
	epoch reader.EpochConfig
}

// Epoch is one captured carrier epoch plus ground truth.
type Epoch = reader.Epoch

// NewNetwork builds a network from the config; unset fields take the
// paper's defaults.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	geoms := channel.PlaceRing(cfg.NumTags, cfg.Distance, src.Split("placement"))
	ch := channel.NewModel(cfg.Channel, geoms, src.Split("noise"))
	n := &Network{cfg: cfg, ch: ch, src: src}
	comp := tag.DefaultComparator()
	for i := 0; i < cfg.NumTags; i++ {
		tc := tag.Config{
			ID:         i,
			BitRate:    cfg.BitRates[i],
			ClockPPM:   cfg.ClockPPM,
			Comparator: comp,
		}
		if err := tc.Validate(cfg.BaseRate); err != nil {
			return nil, err
		}
		n.tags = append(n.tags, tc)
	}
	n.epoch = reader.EpochConfig{
		SampleRate:  cfg.SampleRate,
		EdgeSamples: cfg.EdgeSamples,
		Duration:    n.autoDuration(),
	}
	return n, nil
}

// autoDuration sizes the epoch to cover the slowest frame plus the
// comparator jitter window and a safety margin.
func (n *Network) autoDuration() float64 {
	longest := 0.0
	for i, tc := range n.tags {
		// Frame plus the decoder's alignment slack of a few slots.
		frame := float64(tag.FrameOverhead+n.cfg.PayloadBits[i]+3) / tc.BitRate
		if frame > longest {
			longest = frame
		}
	}
	const jitterWindow = 1.2e-3
	return jitterWindow + longest*1.02 + 20e-6
}

// Channel exposes the channel model (coefficients, noise parameters).
func (n *Network) Channel() *channel.Model { return n.ch }

// Tags exposes the tag configurations.
func (n *Network) Tags() []tag.Config { return n.tags }

// EpochConfig exposes the reader epoch settings.
func (n *Network) EpochConfig() reader.EpochConfig { return n.epoch }

// SetPayload overrides tag i's payload for subsequent epochs (e.g. an
// EPC identification frame). The payload must be 0/1-valued.
func (n *Network) SetPayload(i int, bits []byte) error {
	if i < 0 || i >= len(n.tags) {
		return fmt.Errorf("lf: tag index %d out of range", i)
	}
	cp := make([]byte, len(bits))
	copy(cp, bits)
	n.tags[i].Payload = cp
	n.cfg.PayloadBits[i] = len(bits)
	n.epoch.Duration = n.autoDuration()
	return nil
}

// SetBitRate changes tag i's rate for subsequent epochs (the reader's
// §3.6 broadcast can command the network to slow down when it sees too
// many collisions). The rate must be a multiple of the base rate.
func (n *Network) SetBitRate(i int, rate float64) error {
	if i < 0 || i >= len(n.tags) {
		return fmt.Errorf("lf: tag index %d out of range", i)
	}
	tc := n.tags[i]
	tc.BitRate = rate
	if err := tc.Validate(n.cfg.BaseRate); err != nil {
		return err
	}
	n.tags[i] = tc
	n.cfg.BitRates[i] = rate
	n.epoch.Duration = n.autoDuration()
	return nil
}

// SetCoefficients replaces the channel coefficients for subsequent
// epochs — the hook experiments use to evolve the environment between
// epochs (people moving, tags rotating) the way Fig. 1 measures.
func (n *Network) SetCoefficients(coeffs []complex128) error {
	if len(coeffs) != len(n.ch.Coeffs) {
		return fmt.Errorf("lf: %d coefficients for %d tags", len(coeffs), len(n.ch.Coeffs))
	}
	copy(n.ch.Coeffs, coeffs)
	return nil
}

// RunEpoch draws a fresh random payload for any tag without an explicit
// one, power-cycles every tag (new comparator offsets, new drift), and
// synthesizes the reader capture.
func (n *Network) RunEpoch() (*Epoch, error) {
	emissions := make([]*tag.Emission, len(n.tags))
	for i := range n.tags {
		tc := n.tags[i]
		if tc.Payload == nil {
			tc.Payload = n.src.Bits(n.cfg.PayloadBits[i])
		}
		emissions[i] = tag.Emit(tc, n.src)
	}
	return reader.Synthesize(n.ch, emissions, n.epoch)
}

// Rates returns the distinct bit rates in the network, ascending.
func (n *Network) Rates() []float64 {
	seen := map[float64]bool{}
	var rates []float64
	for _, tc := range n.tags {
		if !seen[tc.BitRate] {
			seen[tc.BitRate] = true
			rates = append(rates, tc.BitRate)
		}
	}
	sort.Float64s(rates)
	return rates
}

// DecoderConfig derives a decoder configuration matched to this
// network: candidate rates, payload sizing, sample rate.
func (n *Network) DecoderConfig() DecoderConfig {
	payloadByRate := map[float64]int{}
	for i, tc := range n.tags {
		if p := n.cfg.PayloadBits[i]; p > payloadByRate[tc.BitRate] {
			payloadByRate[tc.BitRate] = p
		}
	}
	return DecoderConfig{
		SampleRate: n.cfg.SampleRate,
		Rates:      n.Rates(),
		PayloadBits: func(rate float64) int {
			if p, ok := payloadByRate[rate]; ok {
				return p
			}
			return int(math.Round(rate * n.cfg.PayloadSeconds))
		},
		Stages:     decoder.AllStages(),
		Separation: decoder.SeparationHybrid,
		Seed:       n.cfg.Seed + 1,
	}
}

// DecoderConfig configures a Decoder. Zero-valued fields take
// defaults.
type DecoderConfig struct {
	// SampleRate of the captures to decode.
	SampleRate float64
	// Rates are the valid tag bit rates.
	Rates []float64
	// PayloadBits maps a stream's rate to its payload size.
	PayloadBits func(rate float64) int
	// Stages toggles pipeline stages (Fig. 9 ablation).
	Stages decoder.Stages
	// Separation selects the collision separation strategy.
	Separation decoder.SeparationMode
	// Registration selects the stream registration strategy.
	Registration RegistrationMode
	// Seed drives decoder-internal randomness (k-means restarts).
	Seed int64
	// Parallelism bounds the decoder's worker pool (0 = all cores,
	// 1 = serial). Decodes are bit-identical at any setting; the knob
	// only trades wall-clock for cores.
	Parallelism int
	// PipelineParallelism selects the streaming decoder's execution
	// shape: 0 or 1 runs every stage inline on the pushing goroutine;
	// ≥ 2 runs edge detection and walking/commit as a
	// pipeline-parallel stage graph on their own goroutines, so
	// detection of one block overlaps walking of the previous one on
	// multicore hosts. Decodes are bit-identical either way; only
	// wall-clock and the moment OnFrame/Tracer callbacks fire (still
	// the pushing goroutine, slightly later) change. Batch Decode
	// ignores it.
	PipelineParallelism int
	// ShardParallelism ≥ 2 runs the decode data-parallel across
	// cores: the differential sweep — the pipeline's dominant
	// per-sample stage — is split into seam-safe overlapping shards
	// computed concurrently on a pull-based worker pool, with
	// overlap derived from the pipeline's provably-final cut
	// distances and deterministic in-order merge (DESIGN.md §15).
	// Decodes are byte-identical to ShardParallelism = 1 at any
	// shard count, and the knob composes with PipelineParallelism.
	// Unlike PipelineParallelism, batch Decode honours it too. 0 or
	// 1 disables sharding.
	ShardParallelism int
	// StripeRunner, when non-nil and ShardParallelism ≥ 2, executes
	// each sweep stripe of the sharded decode instead of the
	// in-process kernel. This is the distribution seam: internal/dist
	// installs its coordinator here to ship stripes to remote workers
	// over TCP while the merge stays in-process and deterministic. The
	// runner must fill job.Dst with exactly the bytes job.Run would
	// produce, or return an error (which poisons that one stripe, not
	// the decode). Most callers leave it nil.
	StripeRunner func(*StripeJob) error
	// StageDepth bounds each inter-stage queue of the pipelined
	// streaming decoder, in blocks (0 = default). Deeper queues
	// absorb stage-time jitter but buffer more pushed samples, which
	// RetainedBytes accounts for.
	StageDepth int
	// StartWindowSeconds overrides how late after carrier-on a frame
	// may begin (streams.Config.MaxStart). The default covers only the
	// comparator jitter window — right for epochs where every tag fires
	// at carrier-on, and tight enough that payload 1-runs cannot
	// masquerade as preambles. A reader running a slotted response
	// schedule (tags answering in assigned slots across a long
	// listening window) must widen it to the whole schedule. 0 keeps
	// the default.
	StartWindowSeconds float64
	// CalibSamples bounds the edge detector's noise calibration to the
	// capture's first CalibSamples positions. Setting it is what lets a
	// streaming decode start emitting frames — and bound its memory —
	// before end of capture; 0 calibrates over the whole capture at
	// flush time (the batch semantics). Batch Decode honours the same
	// knob, so batch and streaming decodes stay bit-identical.
	CalibSamples int64
	// ViterbiWindow bounds the sequence decoder's survivor-path state
	// (sliding trellis window with truncation). 0 selects the default
	// window; see the viterbi package for the exactness contract.
	ViterbiWindow int
	// ForceDenseSweep disables the edge detector's coarse-to-fine
	// differential sweep, forcing the dense kernel at every position.
	// Decodes are bit-identical either way (DESIGN.md §12); the knob
	// exists for A/B benchmarking and debugging.
	ForceDenseSweep bool
	// ForceFullResidual disables incremental SIC, forcing every
	// cancellation round to rebuild the residual capture and re-decode
	// it from scratch. Decodes are bit-identical either way (DESIGN.md
	// §17); the knob exists for A/B benchmarking and equivalence tests
	// (sic_equivalence_test.go), mirroring ForceDenseSweep.
	ForceFullResidual bool
	// CancellationRounds overrides successive interference cancellation:
	// 0 keeps the default (3 rounds), negative disables. SIC needs the
	// whole raw capture, so streaming decodes retain O(capture) memory
	// unless it is disabled.
	CancellationRounds int
	// OnFrame, when non-nil, is called once per decoded stream as soon
	// as its frame commits — on streaming decodes this is typically long
	// before end of capture. Frames arrive in Result.Streams order, on
	// the goroutine calling Push/Flush/Decode.
	OnFrame func(*StreamResult)
	// NoStats disables pipeline metrics entirely: Stats() returns empty
	// snapshots and every record site collapses to a nil-metric branch.
	// The default (instrumented) decode is bit-identical to the
	// uninstrumented one — metrics observe the pipeline, never steer it.
	NoStats bool
	// Tracer, when non-nil, receives per-stage span events (calibrate,
	// register, commit, frame, sic, flush) on the goroutine calling
	// Push/Flush/Decode, mirroring OnFrame. The event sequence is
	// identical at any Parallelism and push block size.
	Tracer Tracer
}

// Stats is a frozen snapshot of the decode pipeline's metrics. The
// decode-class counters and histograms in it are bit-identical at any
// Parallelism and push blocking (see Identity); timings and
// runtime-class entries are measurement only.
type Stats = obs.Snapshot

// Tracer receives per-stage span events from a decode.
type Tracer = obs.Tracer

// SpanEvent is one traced pipeline event.
type SpanEvent = obs.SpanEvent

// Stage toggles and separation modes re-exported for callers.
type Stages = decoder.Stages

// Separation modes re-exported for callers.
const (
	SeparationHybrid   = decoder.SeparationHybrid
	SeparationAnchored = decoder.SeparationAnchored
	SeparationBlind    = decoder.SeparationBlind
)

// AllStages enables the full pipeline.
func AllStages() Stages { return decoder.AllStages() }

// RegistrationMode selects the stream registration strategy.
type RegistrationMode = streams.RegistrationMode

// Registration modes re-exported for callers.
const (
	RegisterEyeOnly      = streams.RegisterEyeOnly
	RegisterBoth         = streams.RegisterBoth
	RegisterPreambleOnly = streams.RegisterPreambleOnly
)

// Decoder decodes captured epochs.
type Decoder struct {
	cfg     decoder.Config
	noStats bool

	// mu guards agg, the metrics accumulated over every decode this
	// Decoder has completed (streaming flushes included).
	mu  sync.Mutex
	agg *obs.Snapshot
}

// Result is a decoded epoch.
type Result = decoder.Result

// StreamResult is the decode of one registered stream.
type StreamResult = decoder.StreamResult

// DecodeError is the typed error every decode-path failure surfaces
// as, carrying the pipeline stage and (when known) the sample position
// the failure is anchored at. Inspect with errors.As.
type DecodeError = decoder.DecodeError

// StripeJob is one self-contained sweep stripe of the sharded decode,
// handed to DecoderConfig.StripeRunner when distribution is hooked in
// (see internal/dist). Run computes it in-process.
type StripeJob = edgedetect.StripeJob

// DecodeStage names the pipeline stage a DecodeError originated in.
type DecodeStage = decoder.Stage

// Decode stages re-exported for callers.
const (
	StageInput      = decoder.StageInput
	StageEdgeDetect = decoder.StageEdgeDetect
	StageRegister   = decoder.StageRegister
	StageWalk       = decoder.StageWalk
	StageCommit     = decoder.StageCommit
	StageCancel     = decoder.StageCancel
)

// Dropped records one graceful-degradation event in Result.Dropped: a
// sample span or stream the decoder gave up on instead of failing the
// whole epoch.
type Dropped = decoder.Dropped

// DropReason classifies a Dropped entry.
type DropReason = decoder.DropReason

// Drop reasons re-exported for callers.
const (
	DropNonFinite = decoder.DropNonFinite
	DropPanic     = decoder.DropPanic
	DropTruncated = decoder.DropTruncated
)

// NewDecoder builds a decoder.
func NewDecoder(cfg DecoderConfig) (*Decoder, error) {
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("lf: decoder needs a sample rate")
	}
	if len(cfg.Rates) == 0 {
		cfg.Rates = []float64{100e3}
	}
	if cfg.PayloadBits == nil {
		return nil, fmt.Errorf("lf: decoder needs PayloadBits")
	}
	dc := decoder.DefaultConfig(cfg.SampleRate, cfg.Rates, 0)
	dc.PayloadBits = cfg.PayloadBits
	dc.Stages = cfg.Stages
	dc.Separation = cfg.Separation
	dc.Streams.Registration = cfg.Registration
	if cfg.StartWindowSeconds > 0 {
		dc.Streams.MaxStart = int64(cfg.StartWindowSeconds * cfg.SampleRate)
	}
	dc.Parallelism = cfg.Parallelism
	dc.PipelineParallelism = cfg.PipelineParallelism
	dc.ShardParallelism = cfg.ShardParallelism
	dc.StripeRunner = cfg.StripeRunner
	dc.StageDepth = cfg.StageDepth
	dc.CalibSamples = cfg.CalibSamples
	dc.ViterbiWindow = cfg.ViterbiWindow
	dc.ForceDenseSweep = cfg.ForceDenseSweep
	dc.ForceFullResidual = cfg.ForceFullResidual
	dc.OnFrame = cfg.OnFrame
	dc.Tracer = cfg.Tracer
	if cfg.CancellationRounds != 0 {
		dc.CancellationRounds = cfg.CancellationRounds
		if dc.CancellationRounds < 0 {
			dc.CancellationRounds = 0
		}
	}
	if cfg.Seed != 0 {
		dc.Seed = cfg.Seed
	}
	return &Decoder{cfg: dc, noStats: cfg.NoStats}, nil
}

// decodeConfig returns a per-decode config copy carrying a fresh
// metrics pipeline (nil when NoStats), so concurrent decodes from one
// Decoder never share hot counters.
func (d *Decoder) decodeConfig() (decoder.Config, *obs.Pipeline) {
	cfg := d.cfg
	if d.noStats {
		return cfg, nil
	}
	p := obs.NewPipeline()
	cfg.Metrics = p
	return cfg, p
}

// accumulate folds one completed decode's metrics into the decoder's
// running totals.
func (d *Decoder) accumulate(p *obs.Pipeline) {
	if p == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.agg == nil {
		d.agg = obs.NewSnapshot()
	}
	d.agg.Add(p.Snapshot())
}

// Stats snapshots the metrics accumulated over every decode this
// Decoder has completed: counters and histogram buckets sum across
// decodes, gauges keep their high-water values. Empty when
// DecoderConfig.NoStats is set or nothing has completed yet. The
// decode-class portion (Stats.Identity) is bit-identical at any
// Parallelism and push blocking.
func (d *Decoder) Stats() *Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := obs.NewSnapshot()
	s.Add(d.agg)
	return s
}

// StreamDecoder decodes a capture pushed in arbitrary sample blocks,
// with memory bounded by the decoder's detection window instead of the
// capture length (set DecoderConfig.CalibSamples and disable
// cancellation to get the bound). The result returned by Flush is
// bit-identical to Decode over the same samples at any blocking.
type StreamDecoder struct {
	sd  *decoder.StreamDecoder
	d   *Decoder
	p   *obs.Pipeline
	acc bool
}

// NewStream starts a streaming decode of one capture. Push sample
// blocks as they arrive, then Flush for the final result; decoded
// frames surface through DecoderConfig.OnFrame as they commit.
func (d *Decoder) NewStream() (*StreamDecoder, error) {
	cfg, p := d.decodeConfig()
	sd, err := decoder.NewStreamDecoder(d.cfg.Streams.SampleRate, cfg)
	if err != nil {
		return nil, err
	}
	return &StreamDecoder{sd: sd, d: d, p: p}, nil
}

// Push feeds one block of IQ samples.
func (s *StreamDecoder) Push(block []complex128) error { return s.sd.Push(block) }

// PushOwned is Push with ownership transfer: the decoder recycles the
// block (which must come from a pool or be otherwise relinquished)
// once consumed, so a reader front end — iq.BlockReader.ReadBlock —
// can hand pooled buffers to the pipelined decoder with zero copies.
// The caller must not touch block afterwards.
func (s *StreamDecoder) PushOwned(block []complex128) error { return s.sd.PushOwned(block) }

// Flush marks end of capture, drains the pipeline, and returns the
// final result.
func (s *StreamDecoder) Flush() (*Result, error) {
	res, err := s.sd.Flush()
	if err == nil && !s.acc {
		s.acc = true
		s.d.accumulate(s.p)
	}
	return res, err
}

// Stats snapshots this stream's pipeline metrics so far — safe to call
// mid-decode between pushes. Empty when DecoderConfig.NoStats is set.
func (s *StreamDecoder) Stats() *Stats { return s.sd.Stats() }

// RetainedBytes reports the sample-proportional memory the decode
// currently holds — the observable the streaming memory bound is
// stated (and tested) against.
func (s *StreamDecoder) RetainedBytes() int64 { return s.sd.RetainedBytes() }

// Decode runs the pipeline over one epoch's capture.
func (d *Decoder) Decode(ep *Epoch) (*Result, error) {
	return d.DecodeCapture(ep.Capture)
}

// DecodeCapture runs the pipeline over a raw capture (for captures
// that did not come from the simulator).
func (d *Decoder) DecodeCapture(capture *iq.Capture) (*Result, error) {
	cfg, p := d.decodeConfig()
	res, err := decoder.Decode(capture, cfg)
	if err == nil {
		d.accumulate(p)
	}
	return res, err
}

// WriteCapture serializes an epoch's capture to w in the LFIQ binary
// container, for offline replay (see ReadCapture).
func WriteCapture(w io.Writer, ep *Epoch) error {
	_, err := ep.Capture.WriteTo(w)
	return err
}

// ReadCapture deserializes a capture written by WriteCapture (or by a
// recording front end emitting the same container).
func ReadCapture(r io.Reader) (*iq.Capture, error) {
	return iq.ReadCapture(r)
}
