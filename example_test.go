package lf_test

import (
	"fmt"

	"lf"
	"lf/internal/epc"
)

// The smallest complete session: simulate one tag's epoch, decode it,
// and score against ground truth.
func Example() {
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        1,
		PayloadSeconds: 1e-3,
		Seed:           42,
	})
	if err != nil {
		panic(err)
	}
	epoch, err := net.RunEpoch()
	if err != nil {
		panic(err)
	}
	dec, err := lf.NewDecoder(net.DecoderConfig())
	if err != nil {
		panic(err)
	}
	res, err := dec.Decode(epoch)
	if err != nil {
		panic(err)
	}
	score := lf.ScoreEpoch(epoch, res)
	fmt.Printf("streams=%d errors=%d/%d\n",
		len(res.Streams), score.PerTag[0].BitErrors, score.PerTag[0].PayloadBits)
	// Output: streams=1 errors=0/100
}

// Heterogeneous rates: the laissez-faire model lets a 2 kbps sensor
// and a 100 kbps streamer share the channel without any coordination.
func ExampleNewNetwork_heterogeneous() {
	net, err := lf.NewNetwork(lf.NetworkConfig{
		BitRates:       []float64{2e3, 100e3},
		PayloadSeconds: 10e-3,
		Seed:           11,
	})
	if err != nil {
		panic(err)
	}
	epoch, _ := net.RunEpoch()
	dec, _ := lf.NewDecoder(net.DecoderConfig())
	res, _ := dec.Decode(epoch)
	score := lf.ScoreEpoch(epoch, res)
	for _, ts := range score.PerTag {
		fmt.Printf("tag %d: %d/%d bits\n", ts.TagID, ts.CorrectBits, ts.PayloadBits)
	}
	// Output:
	// tag 0: 20/20 bits
	// tag 1: 1000/1000 bits
}

// Identification: tags carry EPC frames; the reader validates CRCs.
func ExampleNetwork_SetPayload() {
	net, err := lf.NewNetwork(lf.NetworkConfig{NumTags: 1, Seed: 5})
	if err != nil {
		panic(err)
	}
	id := epc.ID{0xde, 0xad, 0xbe, 0xef}
	if err := net.SetPayload(0, id.Frame()); err != nil {
		panic(err)
	}
	epoch, _ := net.RunEpoch()
	dec, _ := lf.NewDecoder(net.DecoderConfig())
	res, _ := dec.Decode(epoch)
	got, ok := epc.ParseFrame(res.Streams[0].Bits)
	fmt.Println(ok, got.String()[:8])
	// Output: true deadbeef
}
