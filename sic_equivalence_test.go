package lf_test

import (
	"reflect"
	"testing"

	"lf"
	"lf/internal/fault"
)

// sicPair decodes the same samples with the incremental dirty-span SIC
// mechanics and with ForceFullResidual, and fails the test on any
// divergence in the Result or the decode-class stats identity. It
// returns the incremental pair for cross-cell comparisons.
func sicPair(t *testing.T, label string, samples []complex128, cfg lf.DecoderConfig, block int) (*lf.Result, string) {
	t.Helper()
	inc, incID := streamDecodeSamples(t, samples, cfg, block)
	fcfg := cfg
	fcfg.ForceFullResidual = true
	full, fullID := streamDecodeSamples(t, samples, fcfg, block)
	if !reflect.DeepEqual(inc, full) {
		t.Fatalf("%s: incremental SIC diverged from ForceFullResidual:\nincremental: %+v\nfull:        %+v",
			label, inc, full)
	}
	if incID != fullID {
		t.Fatalf("%s: decode-class stats diverged:\nincremental:\n%s\nfull:\n%s", label, incID, fullID)
	}
	return inc, incID
}

// TestSICIncrementalMatchesFullResidual pins the tentpole byte-identity
// contract across the degradation surface: for a clean capture and one
// capture per fault kind, at every CancellationRounds depth, the
// incremental dirty-span residual decode (carry-over lanes, masked
// sweep, copy-on-read residual) must produce byte-identical Results —
// frames, drops, recovered streams, and decode-class stats — to the
// ForceFullResidual rebuild of the same rounds (DESIGN.md §17). The two
// mechanics share the detection mask by construction; any divergence
// means a lane region, residual range, or calibration carry differed.
func TestSICIncrementalMatchesFullResidual(t *testing.T) {
	ep, cfg := buildEpoch(t, 8, 21)
	cfg.CalibSamples = 32768

	cases := []struct {
		name    string
		samples []complex128
	}{{"clean", ep.Capture.Samples}}
	for i, k := range fault.CaptureKinds() {
		fc := fault.Config{Seed: int64(300 + i), Injectors: []fault.Injector{{Kind: k, Severity: 0.6}}}
		impaired, err := fc.ApplyCapture(ep.Capture)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, struct {
			name    string
			samples []complex128
		}{string(k), impaired.Samples})
	}

	roundsSweep := []int{1, 2, 3}
	if testing.Short() {
		roundsSweep = []int{1, 2}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, rounds := range roundsSweep {
				rcfg := cfg
				rcfg.CancellationRounds = rounds
				sicPair(t, tc.name, tc.samples, rcfg, 4096)
			}
		})
	}
}

// TestSICEquivalenceComposition pins that the incremental mechanics
// compose with every execution shape the decoder offers — push block
// size (single-sample pushes included), shard-parallel edge detection,
// and the pipeline-parallel stage graph — and that the incremental
// result is invariant across all of those cells: the decode is a pure
// function of the sample sequence, so reshaping who computes what must
// change nothing.
func TestSICEquivalenceComposition(t *testing.T) {
	ep, cfg := buildEpoch(t, 8, 21)
	cfg.CalibSamples = 32768
	fc := fault.Config{Seed: 9, Injectors: []fault.Injector{{Kind: fault.SpuriousEdges, Severity: 0.6}}}
	impaired, err := fc.ApplyCapture(ep.Capture)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		samples []complex128
	}{{"clean", ep.Capture.Samples}, {string(fault.SpuriousEdges), impaired.Samples}} {
		t.Run(tc.name, func(t *testing.T) {
			rcfg := cfg
			rcfg.CancellationRounds = 2
			want, wantID := sicPair(t, "baseline", tc.samples, rcfg, 4096)
			check := func(label string, ccfg lf.DecoderConfig, block int) {
				got, gotID := sicPair(t, label, tc.samples, ccfg, block)
				if !reflect.DeepEqual(want, got) || wantID != gotID {
					t.Fatalf("%s: incremental decode diverged from the serial block-4096 cell", label)
				}
			}
			whole := len(tc.samples) + 1
			check("block=1", rcfg, 1)
			check("block=whole", rcfg, whole)
			for _, shards := range []int{1, 8} {
				scfg := rcfg
				scfg.ShardParallelism = shards
				check("shards", scfg, 4096)
				check("shards+block=whole", scfg, whole)
			}
			pcfg := rcfg
			pcfg.ShardParallelism = 2
			pcfg.PipelineParallelism = 2
			for _, depth := range []int{1, 4} {
				pcfg.StageDepth = depth
				check("pipeline+shards", pcfg, 4096)
			}
			if testing.Short() {
				return
			}
			// Rounds ladder on the composed shape: deeper rounds under
			// shards must stay pairwise identical too.
			for _, rounds := range []int{1, 3} {
				dcfg := rcfg
				dcfg.CancellationRounds = rounds
				dcfg.ShardParallelism = 8
				sicPair(t, "rounds-ladder", tc.samples, dcfg, 4096)
			}
		})
	}
}

// TestSICRoundsActuallyRan guards the matrix above against vacuity: on
// the clean 8-tag capture the configured cancellation rounds must
// actually execute and mark dirty samples, so the byte-identity cells
// compare real residual decodes, not early-outs.
func TestSICRoundsActuallyRan(t *testing.T) {
	ep, cfg := buildEpoch(t, 8, 21)
	cfg.CalibSamples = 32768
	cfg.CancellationRounds = 1
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(ep); err != nil {
		t.Fatal(err)
	}
	snap := dec.Stats()
	if n := snap.Counter("sic.rounds"); n == 0 {
		t.Fatal("no cancellation round ran on the 8-tag capture; the equivalence matrix is vacuous")
	}
	if n := snap.Counter("sic.dirty_samples"); n == 0 {
		t.Fatal("cancellation ran but marked no dirty samples")
	}
}
