package lf

import (
	"math"
	"sort"

	"lf/internal/decoder"
	"lf/internal/tag"
)

// TagScore is the per-tag outcome of one decoded epoch.
type TagScore struct {
	// TagID indexes the network's tags.
	TagID int
	// Registered reports whether a decoded stream matched this tag.
	Registered bool
	// StreamID is the matched stream index (-1 if unregistered).
	StreamID int
	// BitErrors over the payload (the whole payload counts as errors
	// if the tag went unregistered).
	BitErrors int
	// PayloadBits transmitted.
	PayloadBits int
	// CorrectBits delivered.
	CorrectBits int
}

// Score summarizes one decoded epoch against ground truth.
type Score struct {
	PerTag []TagScore
	// TotalBits transmitted across all tags.
	TotalBits int
	// CorrectBits delivered across all tags.
	CorrectBits int
	// Registered counts tags whose stream was found.
	Registered int
	// SpuriousStreams counts decoded streams matching no tag.
	SpuriousStreams int
	// EpochSeconds is the capture duration.
	EpochSeconds float64
	// AggregateBps is CorrectBits / EpochSeconds.
	AggregateBps float64
}

// BER returns the payload bit error rate across all tags (unregistered
// tags count all their bits as errors).
func (s Score) BER() float64 {
	if s.TotalBits == 0 {
		return 0
	}
	return float64(s.TotalBits-s.CorrectBits) / float64(s.TotalBits)
}

// ScoreEpoch matches decoded streams to the epoch's ground-truth
// emissions and scores the payload bits. Matching runs in two phases:
// by anchor offset and rate first; then, for tags whose frames fully
// merged with another tag's (the decoder splits those into sibling
// streams sharing one slot grid), by content with a small slot-shift
// alignment search.
func ScoreEpoch(ep *Epoch, res *Result) Score {
	fs := ep.Config.SampleRate
	score := Score{EpochSeconds: ep.Capture.Duration()}
	streamUsed := make([]bool, len(res.Streams))
	scores := make([]TagScore, len(ep.Emissions))

	// Phase 1: offset + rate, assigned globally by ascending distance
	// so a tag with a missing stream cannot steal a neighbour's.
	type cand struct {
		ti, si int
		dist   float64
	}
	var cands []cand
	for ti, em := range ep.Emissions {
		payload := em.Bits[tag.FrameOverhead:]
		scores[ti] = TagScore{TagID: em.TagID, StreamID: -1, PayloadBits: len(payload)}
		score.TotalBits += len(payload)
		period := fs * em.BitPeriod
		for i, sr := range res.Streams {
			if !rateMatches(sr.Stream.Rate, em.BitPeriod) {
				continue
			}
			anchor := em.Start * fs // first preamble edge position
			if d := math.Abs(sr.Stream.Offset - anchor); d < period/2 {
				cands = append(cands, cand{ti, i, d})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	for _, c := range cands {
		if scores[c.ti].Registered || streamUsed[c.si] {
			continue
		}
		payload := ep.Emissions[c.ti].Bits[tag.FrameOverhead:]
		claimStream(&scores[c.ti], res.Streams[c.si], c.si, payload, 0)
		streamUsed[c.si] = true
	}

	// Phase 2: content matching with ±2-slot alignment for leftovers.
	for ti, em := range ep.Emissions {
		if scores[ti].Registered {
			continue
		}
		payload := em.Bits[tag.FrameOverhead:]
		bestIdx, bestShift, bestErrs := -1, 0, len(payload)/4 // require a clearly better-than-chance match
		for i, sr := range res.Streams {
			if streamUsed[i] || !rateMatches(sr.Stream.Rate, em.BitPeriod) {
				continue
			}
			for shift := -6; shift <= 6; shift++ {
				errs := shiftedErrors(sr.Bits, payload, shift)
				if errs < bestErrs {
					bestIdx, bestShift, bestErrs = i, shift, errs
				}
			}
		}
		if bestIdx >= 0 {
			claimStream(&scores[ti], res.Streams[bestIdx], bestIdx, payload, bestShift)
			streamUsed[bestIdx] = true
		}
	}

	for ti := range scores {
		if scores[ti].Registered {
			score.Registered++
		} else {
			scores[ti].BitErrors = scores[ti].PayloadBits
		}
		score.CorrectBits += scores[ti].CorrectBits
		score.PerTag = append(score.PerTag, scores[ti])
	}
	for _, used := range streamUsed {
		if !used {
			score.SpuriousStreams++
		}
	}
	if score.EpochSeconds > 0 {
		score.AggregateBps = float64(score.CorrectBits) / score.EpochSeconds
	}
	return score
}

func rateMatches(streamRate, bitPeriod float64) bool {
	return math.Abs(streamRate-1/bitPeriod) <= 0.01/bitPeriod
}

func claimStream(ts *TagScore, sr *decoder.StreamResult, idx int, payload []byte, shift int) {
	ts.Registered = true
	ts.StreamID = idx
	if shift == 0 {
		ts.BitErrors = decoder.BitErrors(sr.Bits, payload)
	} else {
		ts.BitErrors = shiftedErrors(sr.Bits, payload, shift)
	}
	ts.CorrectBits = ts.PayloadBits - ts.BitErrors
	if ts.CorrectBits < 0 {
		ts.CorrectBits = 0
	}
}

// shiftedErrors compares decoded[i] against truth[i+shift]; positions
// that fall outside the truth count as errors.
func shiftedErrors(decoded, truth []byte, shift int) int {
	errs := 0
	for i := range decoded {
		j := i + shift
		if j < 0 || j >= len(truth) {
			errs++
			continue
		}
		if decoded[i] != truth[j] {
			errs++
		}
	}
	if len(truth) > len(decoded) {
		errs += len(truth) - len(decoded)
	}
	return errs
}

// OfferedBps returns the offered load of the epoch: total payload bits
// over the capture duration — the "max possible" line of Fig. 8.
func OfferedBps(ep *Epoch) float64 {
	total := 0
	for _, em := range ep.Emissions {
		total += len(em.Bits) - tag.PreambleLen
	}
	d := ep.Capture.Duration()
	if d <= 0 {
		return 0
	}
	return float64(total) / d
}
