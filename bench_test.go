package lf_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`). Each
// Benchmark{Fig,Table}* calls the corresponding experiment in Quick
// mode per iteration, so -benchtime and -count scale the statistical
// weight. Micro-benchmarks for the hot pipeline stages follow.

import (
	"fmt"
	"testing"

	"lf"
	"lf/internal/cluster"
	"lf/internal/collide"
	"lf/internal/decoder"
	"lf/internal/edgedetect"
	"lf/internal/experiment"
	"lf/internal/rng"
	"lf/internal/viterbi"
)

func benchCfg(i int) experiment.Config {
	return experiment.Config{Seed: int64(i + 1), Epochs: 1, Quick: true}
}

func runExperiment(b *testing.B, f func(experiment.Config) (*experiment.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := f(benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Table == nil || len(res.Table.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// --- One bench per paper table and figure ---

func BenchmarkTable1SingleNodeRecovery(b *testing.B) { runExperiment(b, experiment.Table1) }
func BenchmarkFig1Dynamics(b *testing.B)             { runExperiment(b, experiment.Fig1) }
func BenchmarkFig2Clusters(b *testing.B)             { runExperiment(b, experiment.Fig2) }
func BenchmarkFig4ComparatorJitter(b *testing.B)     { runExperiment(b, experiment.Fig4) }
func BenchmarkFig5Parallelogram(b *testing.B)        { runExperiment(b, experiment.Fig5) }
func BenchmarkFig8Throughput(b *testing.B)           { runExperiment(b, experiment.Fig8) }
func BenchmarkFig9Breakdown(b *testing.B)            { runExperiment(b, experiment.Fig9) }
func BenchmarkFig10Bitrate(b *testing.B)             { runExperiment(b, experiment.Fig10) }
func BenchmarkFig11Coexistence(b *testing.B)         { runExperiment(b, experiment.Fig11) }
func BenchmarkFig12Identification(b *testing.B)      { runExperiment(b, experiment.Fig12) }
func BenchmarkTable2Separation(b *testing.B)         { runExperiment(b, experiment.Table2) }
func BenchmarkFig13Energy(b *testing.B)              { runExperiment(b, experiment.Fig13) }
func BenchmarkFig14SNR(b *testing.B)                 { runExperiment(b, experiment.Fig14) }

func BenchmarkDynamicsRobustness(b *testing.B) {
	runExperiment(b, experiment.DynamicsRobustness)
}

func BenchmarkReliableTransfer(b *testing.B) {
	runExperiment(b, experiment.ReliableTransfer)
}

func BenchmarkScalabilityLowRate(b *testing.B) {
	runExperiment(b, experiment.ScalabilityLowRate)
}

func BenchmarkCapacityModel(b *testing.B) {
	runExperiment(b, experiment.CapacityModel)
}

func BenchmarkTable3Hardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Table3Hardware()
		if len(res.Table.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// --- Ablation benches (DESIGN.md §6) ---

func BenchmarkAblationSeparation(b *testing.B) {
	runExperiment(b, experiment.AblationSeparation)
}

func BenchmarkAblationRegistration(b *testing.B) {
	runExperiment(b, experiment.AblationRegistration)
}

// BenchmarkAblationSIC compares decode quality and cost with
// cancellation rounds on and off.
func BenchmarkAblationSIC(b *testing.B) {
	for _, rounds := range []int{0, 3} {
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			net, err := lf.NewNetwork(lf.NetworkConfig{NumTags: 8, PayloadSeconds: 1e-3, Seed: 5})
			if err != nil {
				b.Fatal(err)
			}
			ep, err := net.RunEpoch()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := decoder.DefaultConfig(25e6, []float64{100e3}, 100)
				cfg.CancellationRounds = rounds
				if _, err := decoder.Decode(ep.Capture, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Pipeline micro-benchmarks ---

// BenchmarkEndToEndDecode measures the full capture→bits pipeline for
// a representative 8-tag epoch.
func BenchmarkEndToEndDecode(b *testing.B) {
	net, err := lf.NewNetwork(lf.NetworkConfig{NumTags: 8, PayloadSeconds: 2e-3, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	ep, err := net.RunEpoch()
	if err != nil {
		b.Fatal(err)
	}
	dec, err := lf.NewDecoder(net.DecoderConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(16 * ep.Capture.Len())) // complex128 samples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(ep); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingDecode measures the streaming pipeline's steady
// state: the same 8-tag epoch decoded once per op, pushed in
// 8192-sample blocks with mid-capture calibration so every stage runs
// incrementally. Pooled buffers make repeated decodes approach
// zero-alloc in the sample-proportional hot path.
func BenchmarkStreamingDecode(b *testing.B) {
	net, err := lf.NewNetwork(lf.NetworkConfig{NumTags: 8, PayloadSeconds: 2e-3, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	ep, err := net.RunEpoch()
	if err != nil {
		b.Fatal(err)
	}
	cfg := net.DecoderConfig()
	cfg.CalibSamples = 32768
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(16 * ep.Capture.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sd, err := dec.NewStream()
		if err != nil {
			b.Fatal(err)
		}
		if err := ep.Blocks(8192, sd.Push); err != nil {
			b.Fatal(err)
		}
		if _, err := sd.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingDecodeDenseSweep is BenchmarkStreamingDecode with
// the coarse-to-fine sweep disabled (ForceDenseSweep) — the A/B
// partner that isolates the sparse kernel's whole-pipeline win. The
// decoded result is bit-identical to the sparse run.
func BenchmarkStreamingDecodeDenseSweep(b *testing.B) {
	net, err := lf.NewNetwork(lf.NetworkConfig{NumTags: 8, PayloadSeconds: 2e-3, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	ep, err := net.RunEpoch()
	if err != nil {
		b.Fatal(err)
	}
	cfg := net.DecoderConfig()
	cfg.CalibSamples = 32768
	cfg.ForceDenseSweep = true
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(16 * ep.Capture.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sd, err := dec.NewStream()
		if err != nil {
			b.Fatal(err)
		}
		if err := ep.Blocks(8192, sd.Push); err != nil {
			b.Fatal(err)
		}
		if _, err := sd.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesize measures capture synthesis throughput.
func BenchmarkSynthesize(b *testing.B) {
	net, err := lf.NewNetwork(lf.NetworkConfig{NumTags: 16, PayloadSeconds: 1e-3, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEdgeDetection measures the detector alone.
func BenchmarkEdgeDetection(b *testing.B) {
	net, _ := lf.NewNetwork(lf.NetworkConfig{NumTags: 8, PayloadSeconds: 2e-3, Seed: 3})
	ep, err := net.RunEpoch()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(16 * ep.Capture.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edgedetect.New(ep.Capture, edgedetect.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViterbi measures the 4-state sequence decoder.
func BenchmarkViterbi(b *testing.B) {
	src := rng.New(1)
	e := complex(7e-4, 2e-4)
	emissions := make([]viterbi.Emission, 1000)
	for i := range emissions {
		obs := complex(0, 0)
		if src.Bit() == 1 {
			obs = e
		}
		emissions[i] = viterbi.Emission{Obs: obs + src.ComplexNorm(1e-9), E: e, Sigma2: 1e-9}
	}
	dec := viterbi.NewDecoder(0.5, viterbi.Down)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(emissions)
	}
}

// BenchmarkKMeans9 measures the collision clustering step.
func BenchmarkKMeans9(b *testing.B) {
	src := rng.New(2)
	e1, e2 := complex(5e-4, 2e-4), complex(-3e-4, 6e-4)
	points := make([]complex128, 300)
	for i := range points {
		a := float64(src.Intn(3) - 1)
		c := float64(src.Intn(3) - 1)
		points[i] = complex(a, 0)*e1 + complex(c, 0)*e2 + src.ComplexNorm(1e-9)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.KMeans(points, 9, 6, 100, src)
	}
}

// BenchmarkBlindSeparation measures the paper's parallelogram path.
func BenchmarkBlindSeparation(b *testing.B) {
	src := rng.New(3)
	e1, e2 := complex(5e-4, 2e-4), complex(-3e-4, 6e-4)
	points := make([]complex128, 300)
	for i := range points {
		a := float64(src.Intn(3) - 1)
		c := float64(src.Intn(3) - 1)
		points[i] = complex(a, 0)*e1 + complex(c, 0)*e2 + src.ComplexNorm(1e-9)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := collide.SeparateBlind(points, src); err != nil {
			b.Fatal(err)
		}
	}
}
