package lf_test

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"

	"lf"
	"lf/internal/iq"
	"lf/internal/pool"
)

// TestReadBlockPartialFinalBufferOwnership pins iq.BlockReader.
// ReadBlock's pooled-buffer lifetime on the truncation path: a short
// final read must deliver the samples decoded before the error in a
// buffer the caller exclusively owns — never a buffer that was also
// returned to the shared pool. The decode runs pipelined over
// PushOwned (so earlier ReadBlock buffers sit live in the stage queue)
// and the pool is poisoned with NaN scribbles between pushes,
// simulating a concurrent pool consumer; if ReadBlock ever pools a
// buffer the caller holds, the scribbles land in queued samples and
// the decode diverges from the plain-Push reference.
func TestReadBlockPartialFinalBufferOwnership(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 11)
	cfg.CalibSamples = 32768
	samples := ep.Capture.Samples

	var buf bytes.Buffer
	if _, err := ep.Capture.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-chunk and mid-sample: the final ReadBlock call finds
	// one complete 4096-sample IO chunk plus a ragged tail, so it must
	// return a partial block alongside the truncation error.
	const block = 8192
	headerLen := buf.Len() - 16*len(samples)
	keep := (len(samples)/block-1)*block + 4096 + 100
	data := buf.Bytes()[:headerLen+16*keep+8]

	br, err := iq.NewBlockReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	pcfg := cfg
	pcfg.PipelineParallelism = 2
	dec, err := lf.NewDecoder(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	var pushed int64
	sawPartial := false
	for {
		blk, rerr := br.ReadBlock(block)
		if len(blk) > 0 {
			pushed += int64(len(blk))
			if rerr != nil {
				sawPartial = true
			}
			if perr := sd.PushOwned(blk); perr != nil {
				t.Fatal(perr)
			}
			// Poison: draw scratch buffers from the shared pool, scribble
			// them, and return them. Any live buffer wrongly sitting in
			// the pool gets NaNs written over its samples.
			for i := 0; i < 4; i++ {
				p := pool.ComplexUninit(block)
				for j := range p {
					p[j] = complex(math.NaN(), math.NaN())
				}
				pool.PutComplex(p)
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				t.Fatal("expected a truncation error, got clean EOF")
			}
			break
		}
	}
	if !sawPartial {
		t.Fatal("truncation never produced a partial final block; retune the cut point")
	}
	got, err := sd.Flush()
	if err != nil {
		t.Fatal(err)
	}

	want, _ := streamDecodeSamples(t, samples[:pushed], cfg, 4096)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("decode through poisoned pool diverged from plain-Push reference:\nwant: %+v\ngot:  %+v", want, got)
	}
}
