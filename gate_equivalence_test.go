package lf_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"lf"
	"lf/internal/fault"
	"lf/internal/gate"
)

// gateReaderCase is one reader in the acceptance fleet: its (possibly
// impaired) capture and a pinned nonce so expected frames carry a known
// Capture field.
type gateReaderCase struct {
	name    string
	nonce   uint64
	samples []complex128
}

// buildGateFleet returns the acceptance fleet — a clean reader plus one
// per capture-fault kind at severity 0.5, all sharing one epoch — and
// the decoder config. The gateway and the local reference both see the
// impaired samples, so any divergence is the gateway's fault, not the
// injector's.
func buildGateFleet(t *testing.T, kinds []fault.Kind) ([]gateReaderCase, lf.DecoderConfig) {
	t.Helper()
	ep, cfg := buildEpoch(t, 3, 17)
	cfg.CalibSamples = 32768
	cfg.CancellationRounds = -1

	fleet := []gateReaderCase{{name: "clean", nonce: 1, samples: ep.Capture.Samples}}
	for i, k := range kinds {
		fc := fault.Config{Seed: int64(500 + i), Injectors: []fault.Injector{{Kind: k, Severity: 0.5}}}
		impaired, err := fc.ApplyCapture(ep.Capture)
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, gateReaderCase{name: string(k), nonce: uint64(i + 2), samples: impaired.Samples})
	}
	return fleet, cfg
}

// localGateFrames runs the independent local reference for one reader:
// its own lf.Decoder.NewStream over the same samples, frames built with
// the same constructor the gateway publishes with, plus the decoder's
// stats identity after flush (what the gateway folds into ReaderStats).
func localGateFrames(t *testing.T, samples []complex128, dcfg lf.DecoderConfig, reader string, nonce uint64) ([]*gate.Frame, string) {
	t.Helper()
	var frames []*gate.Frame
	dcfg.OnFrame = func(sr *lf.StreamResult) {
		frames = append(frames, gate.FrameOf(reader, nonce, len(frames), sr))
	}
	dec, err := lf.NewDecoder(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(samples); lo += 8192 {
		hi := lo + 8192
		if hi > len(samples) {
			hi = len(samples)
		}
		if err := sd.Push(samples[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sd.Flush(); err != nil {
		t.Fatal(err)
	}
	return frames, dec.Stats().Identity()
}

// TestGatewayMatchesLocalDecode is the gateway acceptance matrix:
// frames published for N concurrent readers must be byte-identical to N
// independent local lf.Decoder.NewStream runs over the same samples —
// across reader push block sizes {1, 4096, whole capture}, a fleet of
// capture-fault kinds at severity 0.5, and every transport fault kind
// at severity 0.5 on the gateway's side of each connection. Transport
// trouble may cost reconnects and resumes but never bytes, order, or
// stats identity.
func TestGatewayMatchesLocalDecode(t *testing.T) {
	captureKinds := []fault.Kind{fault.BurstNoise, fault.Dropout, fault.SpuriousEdges}
	fleet, cfg := buildGateFleet(t, captureKinds)

	// Local references: one decode per reader, computed once.
	wantFrames := map[string][]*gate.Frame{}
	wantID := map[string]string{}
	for _, rc := range fleet {
		wantFrames[rc.name], wantID[rc.name] = localGateFrames(t, rc.samples, cfg, rc.name, rc.nonce)
	}
	if len(wantFrames["clean"]) == 0 {
		t.Fatal("vacuous: clean local decode produced no frames")
	}

	transports := []struct {
		name      string
		transport fault.TransportConfig
	}{{name: "clean"}}
	for i, k := range fault.TransportKinds() {
		transports = append(transports, struct {
			name      string
			transport fault.TransportConfig
		}{
			name: string(k),
			transport: fault.TransportConfig{
				Seed:      int64(300 + i),
				Injectors: []fault.Injector{{Kind: k, Severity: 0.5}},
			},
		})
	}

	for _, block := range []int{1, 4096, 0} { // 0 = whole capture at once
		for _, tc := range transports {
			t.Run(fmt.Sprintf("block=%d/%s", block, tc.name), func(t *testing.T) {
				readers := map[string]gate.LoopbackReader{}
				for _, rc := range fleet {
					readers[rc.name] = gate.LoopbackReader{
						Samples:    rc.samples,
						SampleRate: cfg.SampleRate,
						Nonce:      rc.nonce,
						Block:      block,
					}
				}
				res, err := gate.Loopback(context.Background(), gate.Config{
					Decoder:   cfg,
					Transport: tc.transport,
				}, readers)
				if err != nil {
					t.Fatal(err)
				}
				for _, rc := range fleet {
					if !reflect.DeepEqual(res.Frames[rc.name], wantFrames[rc.name]) {
						t.Errorf("reader %s (block %d, transport %s): gateway frames diverged from local decode (%d vs %d frames)",
							rc.name, block, tc.name, len(res.Frames[rc.name]), len(wantFrames[rc.name]))
					}
					rs := res.ReaderStats[rc.name]
					if rs == nil {
						t.Errorf("reader %s: no gateway stats folded", rc.name)
						continue
					}
					if got := rs.Identity(); got != wantID[rc.name] {
						t.Errorf("reader %s (block %d, transport %s): stats identity diverged:\nwant:\n%s\ngot:\n%s",
							rc.name, block, tc.name, wantID[rc.name], got)
					}
				}
				if res.Gateway.Counter("gate.readers") != int64(len(fleet)) {
					t.Errorf("gate.readers = %d, want %d", res.Gateway.Counter("gate.readers"), len(fleet))
				}
				if res.Gateway.Counter("gate.bytes") == 0 {
					t.Error("no bytes crossed the wire — decode silently ran local")
				}
			})
		}
	}
}
