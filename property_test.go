package lf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertySingleTagAlwaysDecodes is the system-level invariant the
// whole pipeline hangs on: for any seed, payload size and valid rate,
// a lone tag at nominal SNR decodes its payload exactly.
func TestPropertySingleTagAlwaysDecodes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, sizeSel, rateSel uint8) bool {
		rates := []float64{10e3, 50e3, 100e3, 200e3}
		rate := rates[int(rateSel)%len(rates)]
		payload := 50 + int(sizeSel)%200
		net, err := NewNetwork(NetworkConfig{
			NumTags:     1,
			BitRates:    []float64{rate},
			PayloadBits: []int{payload},
			Seed:        seed,
		})
		if err != nil {
			return false
		}
		ep, err := net.RunEpoch()
		if err != nil {
			return false
		}
		dec, err := NewDecoder(net.DecoderConfig())
		if err != nil {
			return false
		}
		res, err := dec.Decode(ep)
		if err != nil {
			return false
		}
		score := ScoreEpoch(ep, res)
		return score.Registered == 1 && score.PerTag[0].BitErrors == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyScoreNeverExceedsOffered: the harness can never report
// more correct bits than were transmitted, at any network size.
func TestPropertyScoreNeverExceedsOffered(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, nSel uint8) bool {
		n := 1 + int(nSel)%6
		net, err := NewNetwork(NetworkConfig{NumTags: n, PayloadSeconds: 1e-3, Seed: seed})
		if err != nil {
			return false
		}
		ep, err := net.RunEpoch()
		if err != nil {
			return false
		}
		dec, err := NewDecoder(net.DecoderConfig())
		if err != nil {
			return false
		}
		res, err := dec.Decode(ep)
		if err != nil {
			return false
		}
		score := ScoreEpoch(ep, res)
		if score.CorrectBits > score.TotalBits {
			return false
		}
		if score.Registered > len(ep.Emissions) {
			return false
		}
		for _, ts := range score.PerTag {
			if ts.CorrectBits+ts.BitErrors < ts.PayloadBits && ts.Registered {
				// Correct + errors may exceed payload (length
				// mismatches double-count) but never undercount.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}
