package lf

import (
	"testing"
)

func TestShiftedErrors(t *testing.T) {
	decoded := []byte{1, 0, 1}
	truth := []byte{0, 1, 0, 1}
	// shift +1 aligns decoded[i] with truth[i+1] = {1,0,1}: 0 errors on
	// overlap, +1 for the uncovered truth bit.
	if got := shiftedErrors(decoded, truth, 1); got != 1 {
		t.Fatalf("shift+1 errors = %d", got)
	}
	if got := shiftedErrors(decoded, truth, 0); got != 4 {
		t.Fatalf("shift0 errors = %d", got)
	}
}

func TestRateMatches(t *testing.T) {
	if !rateMatches(100e3, 1/100.05e3) {
		t.Fatal("within-tolerance rate rejected")
	}
	if rateMatches(100e3, 1/50e3) {
		t.Fatal("half rate accepted")
	}
}

func TestScoreEpochUnregisteredCountsErrors(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{NumTags: 1, PayloadSeconds: 1e-3, Seed: 2})
	ep, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	// Score against an empty decode result.
	score := ScoreEpoch(ep, &Result{})
	if score.Registered != 0 {
		t.Fatal("no streams but registered > 0")
	}
	if score.CorrectBits != 0 {
		t.Fatal("no streams but correct bits > 0")
	}
	if score.PerTag[0].BitErrors != score.PerTag[0].PayloadBits {
		t.Fatal("unregistered tag must count all bits as errors")
	}
	if score.BER() != 1 {
		t.Fatalf("BER = %v, want 1", score.BER())
	}
}

func TestScoreEpochGreedyMatching(t *testing.T) {
	// Two tags close in offset: the globally nearest assignment wins;
	// no tag may steal another's stream.
	net, _ := NewNetwork(NetworkConfig{NumTags: 2, PayloadSeconds: 2e-3, Seed: 31})
	ep, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewDecoder(net.DecoderConfig())
	res, err := dec.Decode(ep)
	if err != nil {
		t.Fatal(err)
	}
	score := ScoreEpoch(ep, res)
	seen := map[int]bool{}
	for _, ts := range score.PerTag {
		if !ts.Registered {
			continue
		}
		if seen[ts.StreamID] {
			t.Fatal("two tags claimed one stream")
		}
		seen[ts.StreamID] = true
	}
}

func TestBERZeroTotalBits(t *testing.T) {
	var s Score
	if s.BER() != 0 {
		t.Fatal("empty score BER should be 0")
	}
}
