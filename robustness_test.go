package lf_test

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"lf"
	"lf/internal/fault"
)

// sameSamples compares two sample slices bit-for-bit, treating NaN
// payloads as equal (reflect.DeepEqual and == both reject NaN).
func sameSamples(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

// TestFaultInjectionDeterministic pins the fault layer's reproducibility
// contract end to end, alongside the decoder determinism suite: the
// same fault.Config applied to the same capture yields a byte-identical
// impaired capture, and decoding it twice yields identical Results —
// including the Dropped bookkeeping. A different seed must move the
// impairments.
func TestFaultInjectionDeterministic(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 9)
	fc := fault.Config{Seed: 77, Injectors: []fault.Injector{
		{Kind: fault.BurstNoise, Severity: 0.6},
		{Kind: fault.Dropout, Severity: 0.4},
		{Kind: fault.NonFinite, Severity: 0.7},
		{Kind: fault.SpuriousEdges, Severity: 0.5},
	}}
	capA, err := fc.ApplyCapture(ep.Capture)
	if err != nil {
		t.Fatal(err)
	}
	capB, err := fc.ApplyCapture(ep.Capture)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSamples(capA.Samples, capB.Samples) {
		t.Fatal("same fault seed produced different impaired captures")
	}

	epA := &lf.Epoch{Capture: capA, Emissions: ep.Emissions, Config: ep.Config}
	epB := &lf.Epoch{Capture: capB, Emissions: ep.Emissions, Config: ep.Config}
	resA := decodeWith(t, epA, cfg, 0)
	resB := decodeWith(t, epB, cfg, 0)
	if !reflect.DeepEqual(resA, resB) {
		t.Fatal("identical impaired captures decoded to different Results")
	}

	fc.Seed = 78
	capC, err := fc.ApplyCapture(ep.Capture)
	if err != nil {
		t.Fatal(err)
	}
	if sameSamples(capA.Samples, capC.Samples) {
		t.Fatal("different fault seeds produced identical impairments")
	}
}

// TestBatchStreamingNonFiniteParity is the regression test for the
// graceful-degradation parity contract: a capture poisoned with NaN
// and Inf samples must decode identically through the batch and
// streaming paths at any block size, and both must report the poisoned
// spans in Result.Dropped rather than failing the decode.
func TestBatchStreamingNonFiniteParity(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 7)
	cfg.CalibSamples = 32768

	poisoned := make([]complex128, len(ep.Capture.Samples))
	copy(poisoned, ep.Capture.Samples)
	n := len(poisoned)
	poisoned[5] = complex(math.NaN(), 0)
	poisoned[n/3] = complex(math.Inf(1), -1)
	poisoned[n/3+1] = complex(0, math.NaN())
	poisoned[2*n/3] = complex(math.Inf(-1), math.Inf(1))
	poisoned[n-2] = complex(math.NaN(), math.NaN())

	cap2 := *ep.Capture
	cap2.Samples = poisoned
	ep2 := &lf.Epoch{Capture: &cap2, Emissions: ep.Emissions, Config: ep.Config}

	batch := decodeWith(t, ep2, cfg, 0)
	if len(batch.Dropped) == 0 {
		t.Fatal("poisoned capture decoded with no Dropped entries")
	}
	nonFinite := 0
	for _, d := range batch.Dropped {
		if d.Reason == lf.DropNonFinite {
			nonFinite++
			if d.Lo < 0 || d.Hi <= d.Lo || d.Hi > int64(n) {
				t.Fatalf("non-finite drop span [%d, %d) out of range", d.Lo, d.Hi)
			}
		}
	}
	if nonFinite == 0 {
		t.Fatalf("no DropNonFinite entries in %+v", batch.Dropped)
	}

	for _, block := range []int{1000, 8192, n + 999} {
		t.Run(fmt.Sprintf("block=%d", block), func(t *testing.T) {
			streamed := streamDecode(t, ep2, cfg, block)
			if !reflect.DeepEqual(batch, streamed) {
				t.Fatalf("streaming decode of poisoned capture diverged from batch at block %d", block)
			}
		})
	}

	// Degradation must be graceful in the literal sense: the poisoned
	// decode still recovers the same number of streams as the clean
	// one (five isolated bad samples cannot take down whole frames).
	clean := decodeWith(t, ep, cfg, 0)
	if len(batch.Streams) != len(clean.Streams) {
		t.Fatalf("poisoning 5 samples lost streams: %d clean, %d poisoned",
			len(clean.Streams), len(batch.Streams))
	}
}

// TestFlushAfterArbitraryCut verifies best-effort Flush: cutting the
// capture at an arbitrary point and flushing must (a) succeed, and
// (b) still return every frame that had already committed before the
// cut, byte-identical to the full streaming decode (SIC off, so
// committed frames are final).
func TestFlushAfterArbitraryCut(t *testing.T) {
	ep, cfg := buildEpoch(t, 3, 21)
	cfg.CalibSamples = 32768
	cfg.CancellationRounds = -1
	const block = 4096
	samples := ep.Capture.Samples

	// Reference run: record which frames had committed by each push
	// position.
	type committed struct {
		at int64
		sr *lf.StreamResult
	}
	var pushed int64
	var log []committed
	cfg.OnFrame = func(sr *lf.StreamResult) { log = append(log, committed{pushed, sr}) }
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(samples); i += block {
		end := min(i+block, len(samples))
		if err := sd.Push(samples[i:end]); err != nil {
			t.Fatal(err)
		}
		pushed = int64(end)
	}
	if _, err := sd.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(log) == 0 {
		t.Fatal("reference run committed no frames before Flush")
	}

	cfg.OnFrame = nil
	for _, frac := range []float64{0.35, 0.6, 0.85} {
		cut := (int(frac*float64(len(samples))) / block) * block
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			cutCap := *ep.Capture
			cutCap.Samples = samples[:cut]
			partial := streamDecode(t, &lf.Epoch{Capture: &cutCap, Emissions: ep.Emissions, Config: ep.Config}, cfg, block)
			for _, c := range log {
				if c.at > int64(cut) {
					continue
				}
				found := false
				for _, sr := range partial.Streams {
					if reflect.DeepEqual(sr, c.sr) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("frame committed at %d missing after cut at %d", c.at, cut)
				}
			}
		})
	}
}

// TestRetainedBytesBoundedUnderDropout re-runs the bounded-memory
// check on a hostile capture: the long padded tail is riddled with
// dropout spans, repeats, and non-finite samples. The decoder may lose
// frames — but its retained window must stay far below the pushed
// sample volume and must stop growing once past the useful prefix.
func TestRetainedBytesBoundedUnderDropout(t *testing.T) {
	ep, cfg := buildEpoch(t, 2, 5)
	cfg.CalibSamples = 32768
	cfg.CancellationRounds = -1

	base := ep.Capture.Samples
	const padFactor = 12
	padded := make([]complex128, len(base)*(1+padFactor))
	copy(padded, base)
	padCap := *ep.Capture
	padCap.Samples = padded
	fc := fault.Config{Seed: 5, Injectors: []fault.Injector{
		{Kind: fault.Dropout, Severity: 0.8},
		{Kind: fault.Repeat, Severity: 0.6},
		{Kind: fault.NonFinite, Severity: 1},
	}}
	impaired, err := fc.ApplyCapture(&padCap)
	if err != nil {
		t.Fatal(err)
	}

	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	const block = 8192
	var peak, atDouble, atEnd int64
	for i := 0; i < len(impaired.Samples); i += block {
		end := min(i+block, len(impaired.Samples))
		if err := sd.Push(impaired.Samples[i:end]); err != nil {
			t.Fatal(err)
		}
		if r := sd.RetainedBytes(); r > peak {
			peak = r
		}
		if atDouble == 0 && end >= 2*len(base) {
			atDouble = sd.RetainedBytes()
		}
	}
	atEnd = sd.RetainedBytes()
	if _, err := sd.Flush(); err != nil {
		t.Fatal(err)
	}

	pushedBytes := int64(len(impaired.Samples)) * 16
	if peak >= pushedBytes/4 {
		t.Fatalf("peak retained memory %d B under dropouts is not far below the %d B pushed", peak, pushedBytes)
	}
	if atEnd > atDouble+1<<20 {
		t.Fatalf("retained memory still growing through the impaired tail: %d B at 2x capture, %d B at end", atDouble, atEnd)
	}
}
