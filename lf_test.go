package lf

import (
	"bytes"
	"testing"

	"lf/internal/epc"
)

// TestSingleTagPerfectDecode is the end-to-end smoke test: one tag at
// 100 kbps, default channel, full pipeline — the payload must decode
// without errors.
func TestSingleTagPerfectDecode(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		NumTags:        1,
		PayloadSeconds: 2e-3, // 200 bits
		Seed:           42,
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	ep, err := net.RunEpoch()
	if err != nil {
		t.Fatalf("RunEpoch: %v", err)
	}
	dec, err := NewDecoder(net.DecoderConfig())
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	res, err := dec.Decode(ep)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(res.Streams) != 1 {
		t.Fatalf("registered %d streams, want 1 (edges=%d, floor=%g)", len(res.Streams), res.EdgeCount, res.NoiseFloor)
	}
	score := ScoreEpoch(ep, res)
	if score.Registered != 1 {
		t.Fatalf("tag not matched to stream: %+v", score)
	}
	if score.PerTag[0].BitErrors != 0 {
		t.Fatalf("bit errors: %d of %d", score.PerTag[0].BitErrors, score.PerTag[0].PayloadBits)
	}
}

// TestFourTagsConcurrent checks that four concurrent 100 kbps tags all
// register and decode with low error.
func TestFourTagsConcurrent(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		NumTags:        4,
		PayloadSeconds: 2e-3,
		Seed:           7,
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	ep, err := net.RunEpoch()
	if err != nil {
		t.Fatalf("RunEpoch: %v", err)
	}
	dec, err := NewDecoder(net.DecoderConfig())
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	res, err := dec.Decode(ep)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	score := ScoreEpoch(ep, res)
	if score.Registered < 4 {
		t.Fatalf("registered %d/4 tags (streams=%d edges=%d)", score.Registered, len(res.Streams), res.EdgeCount)
	}
	if ber := score.BER(); ber > 0.02 {
		t.Fatalf("BER %.4f > 0.02", ber)
	}
}

// TestHeterogeneousRates: a slow sensor and a fast streamer coexist in
// one epoch, both decoding — the paper's headline flexibility claim.
func TestHeterogeneousRates(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		BitRates:       []float64{2e3, 100e3},
		PayloadSeconds: 10e-3,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(net.DecoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := dec.Decode(ep)
	if err != nil {
		t.Fatal(err)
	}
	score := ScoreEpoch(ep, res)
	if score.Registered != 2 {
		t.Fatalf("registered %d/2 (streams=%d)", score.Registered, len(res.Streams))
	}
	for _, ts := range score.PerTag {
		if ts.BitErrors > ts.PayloadBits/20 {
			t.Fatalf("tag %d errors %d/%d", ts.TagID, ts.BitErrors, ts.PayloadBits)
		}
	}
}

// TestIdentificationRoundTrip transmits EPC frames and recovers the IDs
// through CRC validation — the §5.2 protocol.
func TestIdentificationRoundTrip(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{NumTags: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	srcIDs := make([]epc.ID, 4)
	for i := range srcIDs {
		srcIDs[i] = epc.ID{byte(i + 1), 0xAB, byte(i * 7)}
		if err := net.SetPayload(i, srcIDs[i].Frame()); err != nil {
			t.Fatal(err)
		}
	}
	found := map[epc.ID]bool{}
	dec, err := NewDecoder(net.DecoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 6 && len(found) < 4; epoch++ {
		ep, err := net.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		res, err := dec.Decode(ep)
		if err != nil {
			t.Fatal(err)
		}
		for _, sr := range res.Streams {
			if id, ok := epc.ParseFrame(sr.Bits); ok {
				found[id] = true
			}
		}
	}
	for _, id := range srcIDs {
		if !found[id] {
			t.Fatalf("EPC %v never identified (found %d)", id, len(found))
		}
	}
}

func TestNetworkConfigValidation(t *testing.T) {
	if _, err := NewNetwork(NetworkConfig{NumTags: 2, BitRates: []float64{1, 2, 3}}); err == nil {
		t.Fatal("mismatched rates accepted")
	}
	if _, err := NewNetwork(NetworkConfig{BitRates: []float64{150}}); err == nil {
		t.Fatal("non-multiple-of-base rate accepted")
	}
}

func TestNetworkDefaults(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{NumTags: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Tags()) != 3 {
		t.Fatalf("tags = %d", len(net.Tags()))
	}
	if got := net.EpochConfig().SampleRate; got != 25e6 {
		t.Fatalf("sample rate default %v", got)
	}
	rates := net.Rates()
	if len(rates) != 1 || rates[0] != 100e3 {
		t.Fatalf("rates = %v", rates)
	}
	if len(net.Channel().Coeffs) != 3 {
		t.Fatal("channel coefficients missing")
	}
}

func TestSetPayloadBounds(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{NumTags: 1, Seed: 1})
	if err := net.SetPayload(5, []byte{1}); err == nil {
		t.Fatal("out-of-range tag accepted")
	}
	if err := net.SetPayload(0, []byte{1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	ep, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	// 6 preamble + 1 delimiter + 3 payload bits.
	if got := len(ep.Emissions[0].Bits); got != 10 {
		t.Fatalf("frame bits = %d", got)
	}
}

func TestDecoderConfigValidation(t *testing.T) {
	if _, err := NewDecoder(DecoderConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := NewDecoder(DecoderConfig{SampleRate: 25e6}); err == nil {
		t.Fatal("missing PayloadBits accepted")
	}
}

func TestDecodeCapture(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{NumTags: 1, PayloadSeconds: 1e-3, Seed: 9})
	ep, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(net.DecoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := dec.DecodeCapture(ep.Capture)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) != 1 {
		t.Fatalf("streams = %d", len(res.Streams))
	}
}

func TestCaptureRecordReplay(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{NumTags: 2, PayloadSeconds: 1e-3, Seed: 8})
	ep, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCapture(&buf, ep); err != nil {
		t.Fatal(err)
	}
	capture, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewDecoder(net.DecoderConfig())
	live, err := dec.Decode(ep)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := dec.DecodeCapture(capture)
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Streams) != len(replayed.Streams) {
		t.Fatalf("live %d streams, replay %d", len(live.Streams), len(replayed.Streams))
	}
	for i := range live.Streams {
		a, b := live.Streams[i].Bits, replayed.Streams[i].Bits
		if len(a) != len(b) {
			t.Fatal("replayed decode length differs")
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatal("replayed decode bits differ")
			}
		}
	}
}

func TestOfferedBps(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{NumTags: 2, PayloadSeconds: 2e-3, Seed: 3})
	ep, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	offered := OfferedBps(ep)
	// Two 100 kbps tags minus preamble/jitter overhead: somewhere in
	// (100, 200) kbps for a 2 ms payload epoch.
	if offered < 100e3 || offered > 200e3 {
		t.Fatalf("offered = %v", offered)
	}
}

func TestEpochsDifferAcrossRuns(t *testing.T) {
	net, _ := NewNetwork(NetworkConfig{NumTags: 1, PayloadSeconds: 1e-3, Seed: 4})
	ep1, _ := net.RunEpoch()
	ep2, _ := net.RunEpoch()
	// Fresh comparator draws: the start offsets should differ between
	// epochs (re-randomization is what makes retransmission work).
	if ep1.Emissions[0].Start == ep2.Emissions[0].Start {
		t.Fatal("epochs reused the same comparator offset")
	}
}
