// Command lfsim simulates one LF-Backscatter epoch and decodes it,
// printing per-tag results — a one-shot playground for protocol and
// decoder behaviour.
//
// Usage:
//
//	lfsim [-tags N] [-rate bps] [-payload-ms ms] [-seed N] [-workers N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"lf"
)

func main() {
	tags := flag.Int("tags", 4, "number of tags")
	rate := flag.Float64("rate", 100e3, "per-tag bit rate (bits/s, multiple of 100)")
	payloadMS := flag.Float64("payload-ms", 2, "payload airtime per epoch (ms)")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print per-stream detail")
	record := flag.String("record", "", "write the epoch's IQ capture to this file (LFIQ container)")
	replay := flag.String("replay", "", "decode a previously recorded capture instead of simulating (scoring unavailable)")
	workers := flag.Int("workers", 0, "decoder parallelism (0 = all cores, 1 = serial); the decode is bit-identical at any setting")
	flag.Parse()

	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        *tags,
		BitRates:       []float64{*rate},
		PayloadSeconds: *payloadMS * 1e-3,
		Seed:           *seed,
	})
	if err != nil {
		fatal(err)
	}
	dcfg := net.DecoderConfig()
	dcfg.Parallelism = *workers
	dec, err := lf.NewDecoder(dcfg)
	if err != nil {
		fatal(err)
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		capture, err := lf.ReadCapture(f)
		if err != nil {
			fatal(err)
		}
		res, err := dec.DecodeCapture(capture)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %s: %.2f ms, %d samples\n", *replay, capture.Duration()*1e3, capture.Len())
		fmt.Printf("edges detected: %d (noise floor %.2e)\n", res.EdgeCount, res.NoiseFloor)
		fmt.Printf("streams: %d\n", len(res.Streams))
		for i, sr := range res.Streams {
			fmt.Printf("  stream %2d: %s rate=%.0f offset=%.1f bits=%d\n",
				i, sr.Stream.Source, sr.Stream.Rate, sr.Stream.Offset, len(sr.Bits))
		}
		return
	}

	ep, err := net.RunEpoch()
	if err != nil {
		fatal(err)
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		if err := lf.WriteCapture(f, ep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded capture to %s\n", *record)
	}
	res, err := dec.Decode(ep)
	if err != nil {
		fatal(err)
	}
	score := lf.ScoreEpoch(ep, res)

	fmt.Printf("epoch: %.2f ms, %d samples @%.0f Msps\n",
		ep.Capture.Duration()*1e3, ep.Capture.Len(), ep.Config.SampleRate/1e6)
	fmt.Printf("edges detected: %d (noise floor %.2e)\n", res.EdgeCount, res.NoiseFloor)
	fmt.Printf("streams: %d (merged splits %d, SIC recovered %d, 2-way collisions %d, ≥3-way %d)\n",
		len(res.Streams), res.MergedSplits, res.RecoveredStreams, res.Collisions2, res.Collisions3)
	if *verbose {
		for i, sr := range res.Streams {
			fmt.Printf("  stream %2d: %s rate=%.0f offset=%.1f period=%.4f collided=%d\n",
				i, sr.Stream.Source, sr.Stream.Rate, sr.Stream.Offset, sr.Stream.Period, sr.CollidedSlots)
		}
	}
	for _, ts := range score.PerTag {
		status := "lost"
		if ts.Registered {
			status = fmt.Sprintf("stream %d, %d/%d bits correct", ts.StreamID, ts.CorrectBits, ts.PayloadBits)
		}
		fmt.Printf("tag %2d: %s\n", ts.TagID, status)
	}
	fmt.Printf("aggregate goodput: %.1f kbps of %.1f kbps offered (BER %.4f)\n",
		score.AggregateBps/1e3, lf.OfferedBps(ep)/1e3, score.BER())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lfsim:", err)
	os.Exit(1)
}
