// Command lfsim simulates one LF-Backscatter epoch and decodes it,
// printing per-tag results — a one-shot playground for protocol and
// decoder behaviour.
//
// Usage:
//
//	lfsim [-tags N] [-rate bps] [-payload-ms ms] [-seed N] [-workers N]
//	      [-stream] [-block N] [-calib N] [-pipeline N] [-shards N]
//	      [-record FILE] [-replay FILE]
//	      [-fault SPEC] [-fault-seed N] [-stats] [-v]
//
// -pipeline (with -stream) selects the streaming decoder's execution
// shape: 0 or 1 decodes inline on the pushing goroutine, >= 2 runs the
// pipeline-parallel stage graph (edge detection and walking overlap on
// separate goroutines). The decode is bit-identical either way; with
// -stats the per-stage queue counters show the overlap.
//
// -shards (with -stream) adds data parallelism within the detect
// stage: the differential sweep is carved into seam-safe stripes
// decoded by a worker pool. Byte-identical at any shard count, and it
// composes with -pipeline; -stats shows the stripe counters.
//
// -fault injects deterministic impairments before decoding, e.g.
// -fault burst:0.5,dropout:0.3,nonfinite:1 — see internal/fault for
// the kinds. The decode then demonstrates graceful degradation:
// dropped spans and per-stream confidence are printed.
//
// -stats dumps the pipeline observability counters after the decode —
// an expvar-style "kind name value" text listing of every stage's
// metrics (edge disposition, collision groups, Viterbi commits, SIC
// rounds, drops, pool occupancy, per-stage wall time).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lf"
	"lf/internal/fault"
	"lf/internal/iq"
	"lf/internal/reader"
)

func main() {
	tags := flag.Int("tags", 4, "number of tags")
	rate := flag.Float64("rate", 100e3, "per-tag bit rate (bits/s, multiple of 100)")
	payloadMS := flag.Float64("payload-ms", 2, "payload airtime per epoch (ms)")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print per-stream detail")
	record := flag.String("record", "", "write the epoch's IQ capture to this file (LFIQ container)")
	replay := flag.String("replay", "", "decode a previously recorded capture instead of simulating (scoring unavailable)")
	workers := flag.Int("workers", 0, "decoder parallelism (0 = all cores, 1 = serial); the decode is bit-identical at any setting")
	stream := flag.Bool("stream", false, "decode through the streaming pipeline (bounded memory, frames surface mid-capture); bit-identical to batch")
	block := flag.Int("block", 8192, "streaming block size in samples (with -stream)")
	calib := flag.Int64("calib", 32768, "noise-calibration sample budget for -stream (0 defers decoding to end of capture)")
	pipeline := flag.Int("pipeline", 0, "streaming stage-graph parallelism (with -stream): 0/1 = inline, >=2 = pipelined detect/walk stages; bit-identical either way")
	shards := flag.Int("shards", 0, "data-parallel shard workers for the streaming sweep (with -stream): 0/1 = off, >=2 = sharded; byte-identical at any count and composes with -pipeline")
	faultSpec := flag.String("fault", "", "inject faults before decoding: comma-separated kind:severity list (e.g. burst:0.5,dropout:0.3)")
	faultSeed := flag.Int64("fault-seed", 42, "seed for the fault injectors (same seed, same spec: byte-identical impairment)")
	stats := flag.Bool("stats", false, "dump pipeline metrics (expvar-style text) after the decode")
	flag.Parse()

	var injectors []fault.Injector
	if *faultSpec != "" {
		var err error
		injectors, err = fault.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
	}

	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        *tags,
		BitRates:       []float64{*rate},
		PayloadSeconds: *payloadMS * 1e-3,
		Seed:           *seed,
	})
	if err != nil {
		fatal(err)
	}
	dcfg := net.DecoderConfig()
	dcfg.Parallelism = *workers
	// Streaming-progress observables, fed by OnFrame as frames commit
	// mid-capture.
	var pushed, firstFrame, peak int64
	firstFrame = -1
	if *stream {
		dcfg.CalibSamples = *calib
		dcfg.PipelineParallelism = *pipeline
		dcfg.ShardParallelism = *shards
		dcfg.OnFrame = func(*lf.StreamResult) {
			if firstFrame < 0 {
				firstFrame = pushed
			}
		}
	}
	dec, err := lf.NewDecoder(dcfg)
	if err != nil {
		fatal(err)
	}
	// push feeds one block to a streaming decode, tracking progress.
	push := func(sd *lf.StreamDecoder, blk []complex128) error {
		pushed += int64(len(blk))
		if err := sd.Push(blk); err != nil {
			return err
		}
		if r := sd.RetainedBytes(); r > peak {
			peak = r
		}
		return nil
	}
	streamReport := func(rate float64) {
		if firstFrame >= 0 {
			fmt.Printf("streaming: first frame after %.2f of %.2f ms, peak retained %d KiB\n",
				float64(firstFrame)/rate*1e3, float64(pushed)/rate*1e3, peak/1024)
		} else {
			fmt.Printf("streaming: no frame before end of capture, peak retained %d KiB\n", peak/1024)
		}
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		var res *lf.Result
		var durMS float64
		var nSamples int64
		if *stream {
			// Bounded-memory replay: the capture never materializes; the
			// container streams straight into the decode pipeline.
			br, err := iq.NewBlockReader(f)
			if err != nil {
				fatal(err)
			}
			defer br.Close()
			sd, err := dec.NewStream()
			if err != nil {
				fatal(err)
			}
			buf := make([]complex128, *block)
			for {
				n, err := br.Read(buf)
				if n > 0 {
					if perr := push(sd, buf[:n]); perr != nil {
						fatal(perr)
					}
				}
				if err == io.EOF {
					break
				}
				if err != nil {
					fatal(err)
				}
			}
			res, err = sd.Flush()
			if err != nil {
				fatal(err)
			}
			durMS = float64(br.Len()) / br.SampleRate() * 1e3
			nSamples = br.Len()
			streamReport(br.SampleRate())
		} else {
			capture, err := lf.ReadCapture(f)
			if err != nil {
				fatal(err)
			}
			res, err = dec.DecodeCapture(capture)
			if err != nil {
				fatal(err)
			}
			durMS = capture.Duration() * 1e3
			nSamples = int64(capture.Len())
		}
		fmt.Printf("replayed %s: %.2f ms, %d samples\n", *replay, durMS, nSamples)
		fmt.Printf("edges detected: %d (noise floor %.2e)\n", res.EdgeCount, res.NoiseFloor)
		fmt.Printf("streams: %d\n", len(res.Streams))
		for i, sr := range res.Streams {
			fmt.Printf("  stream %2d: %s rate=%.0f offset=%.1f bits=%d conf=%.2f crc=%v\n",
				i, sr.Stream.Source, sr.Stream.Rate, sr.Stream.Offset, len(sr.Bits), sr.Confidence, sr.CRCOK)
		}
		reportDropped(res)
		if *stats {
			dumpStats(dec)
		}
		return
	}

	ep, err := net.RunEpoch()
	if err != nil {
		fatal(err)
	}
	if len(injectors) > 0 {
		// Tag-level impairments (clock drift, tag death) rewrite the
		// emissions and re-synthesize; capture-level impairments corrupt
		// the recorded samples. Both are deterministic in -fault-seed.
		capInjs, tagInjs := fault.SplitLevels(injectors)
		if len(tagInjs) > 0 {
			ems, err := fault.Config{Seed: *faultSeed, Injectors: tagInjs}.ApplyEmissions(ep.Emissions)
			if err != nil {
				fatal(err)
			}
			re, err := reader.Synthesize(net.Channel(), ems, ep.Config)
			if err != nil {
				fatal(err)
			}
			ep = &lf.Epoch{Capture: re.Capture, Emissions: ems, Config: ep.Config}
		}
		if len(capInjs) > 0 {
			capture, err := fault.Config{Seed: *faultSeed, Injectors: capInjs}.ApplyCapture(ep.Capture)
			if err != nil {
				fatal(err)
			}
			ep = &lf.Epoch{Capture: capture, Emissions: ep.Emissions, Config: ep.Config}
		}
		fmt.Printf("fault: injected %s (seed %d)\n", *faultSpec, *faultSeed)
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		if err := lf.WriteCapture(f, ep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded capture to %s\n", *record)
	}
	var res *lf.Result
	if *stream {
		sd, err := dec.NewStream()
		if err != nil {
			fatal(err)
		}
		if err := ep.Blocks(*block, func(blk []complex128) error { return push(sd, blk) }); err != nil {
			fatal(err)
		}
		res, err = sd.Flush()
		if err != nil {
			fatal(err)
		}
		streamReport(ep.Config.SampleRate)
	} else {
		res, err = dec.Decode(ep)
		if err != nil {
			fatal(err)
		}
	}
	score := lf.ScoreEpoch(ep, res)

	fmt.Printf("epoch: %.2f ms, %d samples @%.0f Msps\n",
		ep.Capture.Duration()*1e3, ep.Capture.Len(), ep.Config.SampleRate/1e6)
	fmt.Printf("edges detected: %d (noise floor %.2e)\n", res.EdgeCount, res.NoiseFloor)
	fmt.Printf("streams: %d (merged splits %d, SIC recovered %d, 2-way collisions %d, ≥3-way %d)\n",
		len(res.Streams), res.MergedSplits, res.RecoveredStreams, res.Collisions2, res.Collisions3)
	if *verbose {
		for i, sr := range res.Streams {
			fmt.Printf("  stream %2d: %s rate=%.0f offset=%.1f period=%.4f collided=%d conf=%.2f crc=%v\n",
				i, sr.Stream.Source, sr.Stream.Rate, sr.Stream.Offset, sr.Stream.Period, sr.CollidedSlots,
				sr.Confidence, sr.CRCOK)
		}
	}
	reportDropped(res)
	for _, ts := range score.PerTag {
		status := "lost"
		if ts.Registered {
			status = fmt.Sprintf("stream %d, %d/%d bits correct", ts.StreamID, ts.CorrectBits, ts.PayloadBits)
		}
		fmt.Printf("tag %2d: %s\n", ts.TagID, status)
	}
	fmt.Printf("aggregate goodput: %.1f kbps of %.1f kbps offered (BER %.4f)\n",
		score.AggregateBps/1e3, lf.OfferedBps(ep)/1e3, score.BER())
	if *stats {
		dumpStats(dec)
	}
}

// dumpStats prints the decoder's accumulated pipeline metrics as an
// expvar-style text listing, followed — when the stage graph ran — by
// a per-queue summary of the pipelined decoder's bounded queues.
func dumpStats(dec *lf.Decoder) {
	fmt.Println("pipeline stats:")
	snap := dec.Stats()
	if err := snap.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	type q struct{ label, prefix string }
	for _, qq := range []q{{"ingest", "pipe.ingest"}, {"tokens", "pipe.token"}} {
		items := snap.Counters[qq.prefix+"_items"]
		if items == 0 {
			continue // stage graph not engaged (or queue never used)
		}
		pushStall := snap.Timings[qq.prefix+"_push_stall_ns"]
		popStall := snap.Timings[qq.prefix+"_pop_stall_ns"]
		fmt.Printf("stage queue %-7s items %6d  depth high-water %2d  push stall %8.3f ms  pop stall %8.3f ms\n",
			qq.label, items, snap.Gauges[qq.prefix+"_depth"],
			float64(pushStall.TotalNs)/1e6, float64(popStall.TotalNs)/1e6)
	}
}

// reportDropped prints the decoder's graceful-degradation bookkeeping:
// where the decode gave up and why, per affected span or stream.
func reportDropped(res *lf.Result) {
	if len(res.Dropped) == 0 {
		return
	}
	fmt.Printf("dropped: %d\n", len(res.Dropped))
	for _, d := range res.Dropped {
		who := "capture"
		if d.Stream >= 0 {
			who = fmt.Sprintf("stream %d", d.Stream)
		}
		span := ""
		if d.Lo >= 0 {
			span = fmt.Sprintf(" samples [%d, %d)", d.Lo, d.Hi)
		}
		fmt.Printf("  %s: %s%s — %s\n", who, d.Reason, span, d.Detail)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lfsim:", err)
	os.Exit(1)
}
