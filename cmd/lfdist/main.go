// Command lfdist runs one side of the distributed shard decode: a
// coordinator that owns a capture and serves its sweep stripes over
// TCP, or a worker that dials in and pulls stripes until stopped.
//
// Usage:
//
//	lfdist -coordinator [-addr host:port] [-replay FILE]
//	       [-tags N] [-payload-ms ms] [-seed N]
//	       [-shards N] [-block N] [-calib N]
//	       [-min-workers N] [-wait-s s] [-lease-ms ms] [-hedge-ms ms]
//	       [-fault SPEC] [-fault-seed N] [-stats] [-v]
//	lfdist -worker -addr host:port [-name NAME]
//	       [-fault SPEC] [-fault-seed N] [-v]
//
// The coordinator decodes one capture — a simulated epoch by default,
// or a recorded LFIQ container with -replay — through the streaming
// pipeline with its sweep stripes farmed out to whatever fleet is
// connected. The decode is byte-identical to the single-machine
// sharded decode at any fleet size, including zero: with no workers
// every stripe falls back to local compute, so lfdist -coordinator
// alone is just a slower lfsim.
//
// -fault takes transport-level kinds only (conndrop, stall,
// partialwrite, corruptframe — see internal/fault) and impairs that
// side's connections deterministically in -fault-seed. Running a
// worker fleet against a coordinator with -fault 'conndrop:0.5' is the
// command-line version of the robustness acceptance matrix: the
// retries/hedges counters climb, the decoded bytes do not change.
//
// Workers serve until interrupted (SIGINT/SIGTERM); a lost coordinator
// just means exponential-backoff redial, so start order is free.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lf"
	"lf/internal/dist"
	"lf/internal/fault"
	"lf/internal/iq"
)

func main() {
	coordinator := flag.Bool("coordinator", false, "run the coordinator: decode one capture, serving its stripes to the fleet")
	worker := flag.Bool("worker", false, "run a worker: dial the coordinator and pull stripes until interrupted")
	addr := flag.String("addr", "127.0.0.1:9650", "coordinator listen/dial address")
	name := flag.String("name", "", "worker name in coordinator logs (default: pid-derived)")
	replay := flag.String("replay", "", "decode a recorded capture (LFIQ container) instead of simulating")
	tags := flag.Int("tags", 4, "number of simulated tags (without -replay)")
	payloadMS := flag.Float64("payload-ms", 2, "payload airtime per simulated epoch (ms)")
	seed := flag.Int64("seed", 1, "simulation seed")
	shards := flag.Int("shards", 4, "shard stripes offered concurrently (in-process shard workers)")
	block := flag.Int("block", 8192, "streaming block size in samples")
	calib := flag.Int64("calib", 32768, "noise-calibration sample budget")
	minWorkers := flag.Int("min-workers", 0, "wait for this many workers before decoding (0 starts immediately)")
	waitS := flag.Float64("wait-s", 10, "how long to wait for -min-workers before decoding anyway")
	leaseMS := flag.Int("lease-ms", 0, "shard lease timeout in ms (0 = default 2000)")
	hedgeMS := flag.Int("hedge-ms", 0, "straggler hedge threshold in ms (0 = lease/2, negative disables)")
	faultSpec := flag.String("fault", "", "impair this side's connections: comma-separated transport kind:severity list (e.g. conndrop:0.5,corruptframe:0.3)")
	faultSeed := flag.Int64("fault-seed", 42, "seed for the transport injectors")
	stats := flag.Bool("stats", false, "dump the coordinator's dist.* counters after the decode")
	verbose := flag.Bool("v", false, "log connection lifecycle events")
	flag.Parse()

	if *coordinator == *worker {
		fatal(fmt.Errorf("pick exactly one of -coordinator or -worker"))
	}

	var transport fault.TransportConfig
	if *faultSpec != "" {
		injs, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		wire, rest := fault.SplitTransport(injs)
		if len(rest) > 0 {
			fatal(fmt.Errorf("-fault %q: kind %q is not transport-level (lfdist impairs the wire; use lfsim for capture faults)", *faultSpec, rest[0].Kind))
		}
		transport = fault.TransportConfig{Seed: *faultSeed, Injectors: wire}
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	if *worker {
		if *name == "" {
			*name = fmt.Sprintf("worker-%d", os.Getpid())
		}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		fmt.Printf("lfdist: worker %q pulling from %s\n", *name, *addr)
		err := dist.RunWorker(ctx, dist.WorkerConfig{
			Addr: *addr, Name: *name,
			Transport: transport, Logf: logf,
		})
		if err != nil && ctx.Err() == nil {
			fatal(err)
		}
		fmt.Println("lfdist: worker stopped")
		return
	}

	c, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Addr:         *addr,
		LeaseTimeout: time.Duration(*leaseMS) * time.Millisecond,
		HedgeAfter:   time.Duration(*hedgeMS) * time.Millisecond,
		Transport:    transport,
		Logf:         logf,
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	fmt.Printf("lfdist: coordinator listening on %s\n", c.Addr())
	if *minWorkers > 0 {
		if c.WaitWorkers(*minWorkers, time.Duration(*waitS*float64(time.Second))) {
			fmt.Printf("lfdist: fleet of %d connected\n", *minWorkers)
		} else {
			fmt.Printf("lfdist: only %d of %d workers arrived; decoding anyway (missing stripes compute locally)\n",
				c.Workers(), *minWorkers)
		}
	}

	dcfg, sampleRate, push, err := captureSource(*replay, *tags, *payloadMS, *seed)
	if err != nil {
		fatal(err)
	}
	dcfg.CalibSamples = *calib
	dcfg.ShardParallelism = *shards
	dcfg.StripeRunner = c.RunStripe
	dec, err := lf.NewDecoder(dcfg)
	if err != nil {
		fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	var pushed int64
	if err := push(*block, func(blk []complex128) error {
		pushed += int64(len(blk))
		return sd.Push(blk)
	}); err != nil {
		fatal(err)
	}
	res, err := sd.Flush()
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("decoded %.2f ms of capture (%d samples) in %v\n",
		float64(pushed)/sampleRate*1e3, pushed, elapsed.Round(time.Millisecond))
	fmt.Printf("edges detected: %d (noise floor %.2e)\n", res.EdgeCount, res.NoiseFloor)
	fmt.Printf("streams: %d\n", len(res.Streams))
	for i, sr := range res.Streams {
		fmt.Printf("  stream %2d: %s rate=%.0f offset=%.1f bits=%d conf=%.2f crc=%v\n",
			i, sr.Stream.Source, sr.Stream.Rate, sr.Stream.Offset, len(sr.Bits), sr.Confidence, sr.CRCOK)
	}
	snap := c.Stats()
	fmt.Printf("dist: %d shards served, %d retries, %d hedges, %d local fallbacks, %d KiB on the wire\n",
		snap.Counter("dist.shards"), snap.Counter("dist.retries"),
		snap.Counter("dist.hedges"), snap.Counter("dist.local"),
		snap.Counter("dist.bytes")/1024)
	if *stats {
		if err := snap.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// captureSource resolves where the coordinator's samples come from: a
// recorded LFIQ container, or a freshly simulated epoch. It returns the
// decoder config for that capture, its sample rate, and a push function
// that feeds the capture block-by-block into a sink. The -tags /
// -payload-ms / -seed flags describe the recorded scenario in replay
// mode (rates and payload sizes are not in the container), exactly as
// lfsim -replay relies on its simulation flags; the sample rate comes
// from the container itself.
func captureSource(replay string, tags int, payloadMS float64, seed int64) (lf.DecoderConfig, float64, func(int, func([]complex128) error) error, error) {
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        tags,
		PayloadSeconds: payloadMS * 1e-3,
		Seed:           seed,
	})
	if err != nil {
		return lf.DecoderConfig{}, 0, nil, err
	}
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return lf.DecoderConfig{}, 0, nil, err
		}
		br, err := iq.NewBlockReader(f)
		if err != nil {
			f.Close()
			return lf.DecoderConfig{}, 0, nil, err
		}
		dcfg := net.DecoderConfig()
		dcfg.SampleRate = br.SampleRate()
		push := func(block int, sink func([]complex128) error) error {
			defer f.Close()
			defer br.Close()
			buf := make([]complex128, block)
			for {
				n, err := br.Read(buf)
				if n > 0 {
					if serr := sink(buf[:n]); serr != nil {
						return serr
					}
				}
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
			}
		}
		return dcfg, br.SampleRate(), push, nil
	}
	ep, err := net.RunEpoch()
	if err != nil {
		return lf.DecoderConfig{}, 0, nil, err
	}
	push := func(block int, sink func([]complex128) error) error {
		return ep.Blocks(block, sink)
	}
	return net.DecoderConfig(), ep.Config.SampleRate, push, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lfdist:", err)
	os.Exit(1)
}
