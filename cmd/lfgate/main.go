// Command lfgate runs one side of the fleet-scale reader gateway: the
// gateway itself, a simulated reader streaming a capture into it, or a
// self-contained loopback demo.
//
// Usage:
//
//	lfgate -serve [-addr host:port] [-workers N] [-max-retained BYTES]
//	       [-flush-after-ms ms] [-out FILE] [-quiet]
//	       [-tags N] [-payload-ms ms] [-calib N]
//	       [-fault SPEC] [-fault-seed N] [-stats] [-v]
//	lfgate -reader -addr host:port [-name NAME] [-replay FILE]
//	       [-tags N] [-payload-ms ms] [-seed N] [-block N]
//	       [-fault SPEC] [-fault-seed N] [-v]
//	lfgate -demo [-readers N] [-check] [-tags N] [-payload-ms ms]
//	       [-seed N] [-block N] [-fault SPEC] [-fault-seed N] [-stats]
//
// The gateway accepts LFIQ sample streams from any number of readers
// at once, runs each reader's capture through its own streaming
// decoder on a shared bounded worker fleet, and publishes every
// decoded frame to its sinks (JSONL on stdout by default, a file with
// -out). Backpressure is per reader: a session whose decoder retains
// more than -max-retained bytes has its acks withheld, so the slow
// reader is flow-controlled — never dropped. A reader that vanishes
// mid-capture is flushed after -flush-after-ms, publishing every frame
// already committed; a reader that reconnects (same name and capture
// nonce) resumes exactly where the gateway's acks left off, so
// transport faults cost retries, never bytes.
//
// -fault takes transport-level kinds only (conndrop, stall,
// partialwrite, corruptframe — see internal/fault) and impairs that
// side's connections deterministically in -fault-seed. Running readers
// with -fault 'conndrop:0.5' against a gateway is the command-line
// version of the acceptance matrix: reconnects climb, the decoded
// bytes do not change.
//
// -demo runs the whole round trip in-process: a loopback gateway,
// -readers simulated readers streaming concurrently, and a report of
// frames, throughput, and the gate.* counters. With -check it also
// decodes every capture locally and asserts the gateway's frames are
// byte-identical — the same invariant the acceptance tests pin.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"reflect"
	"syscall"
	"time"

	"lf"
	"lf/internal/fault"
	"lf/internal/gate"
	"lf/internal/iq"
)

func main() {
	serve := flag.Bool("serve", false, "run the gateway until interrupted")
	reader := flag.Bool("reader", false, "run a reader: stream one capture into the gateway")
	demo := flag.Bool("demo", false, "run a loopback demo: gateway + -readers concurrent readers in-process")
	addr := flag.String("addr", "127.0.0.1:9660", "gateway listen/dial address")
	name := flag.String("name", "", "reader name (default: pid-derived)")
	replay := flag.String("replay", "", "reader streams a recorded capture (LFIQ container) instead of simulating")
	tags := flag.Int("tags", 4, "number of simulated tags per capture")
	payloadMS := flag.Float64("payload-ms", 2, "payload airtime per simulated epoch (ms)")
	seed := flag.Int64("seed", 1, "simulation seed (demo readers use seed, seed+1, …)")
	block := flag.Int("block", 8192, "reader push block size in samples")
	calib := flag.Int64("calib", 32768, "per-session noise-calibration sample budget")
	workers := flag.Int("workers", 0, "decode fleet size (0 = GOMAXPROCS)")
	maxRetained := flag.Int64("max-retained", 0, "per-reader backpressure bound in bytes (0 = 1 GiB)")
	flushAfterMS := flag.Int("flush-after-ms", 0, "disconnect grace before best-effort flush (0 = 3000)")
	out := flag.String("out", "", "also write frames to this file (JSONL)")
	quiet := flag.Bool("quiet", false, "suppress the stdout JSONL sink")
	nReaders := flag.Int("readers", 4, "demo: concurrent readers")
	check := flag.Bool("check", false, "demo: assert gateway frames are byte-identical to local decodes")
	faultSpec := flag.String("fault", "", "impair this side's connections: comma-separated transport kind:severity list (e.g. conndrop:0.5,corruptframe:0.3)")
	faultSeed := flag.Int64("fault-seed", 42, "seed for the transport injectors")
	stats := flag.Bool("stats", false, "dump the gate.* counters on exit")
	verbose := flag.Bool("v", false, "log session lifecycle events")
	flag.Parse()

	modes := 0
	for _, m := range []bool{*serve, *reader, *demo} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fatal(fmt.Errorf("pick exactly one of -serve, -reader, or -demo"))
	}

	var transport fault.TransportConfig
	if *faultSpec != "" {
		injs, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		wire, rest := fault.SplitTransport(injs)
		if len(rest) > 0 {
			fatal(fmt.Errorf("-fault %q: kind %q is not transport-level (lfgate impairs the wire; use lfsim for capture faults)", *faultSpec, rest[0].Kind))
		}
		transport = fault.TransportConfig{Seed: *faultSeed, Injectors: wire}
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	switch {
	case *reader:
		runReader(*addr, *name, *replay, *tags, *payloadMS, *seed, *block, transport, logf)
	case *serve:
		runServe(*addr, *tags, *payloadMS, *calib, *workers, *maxRetained, *flushAfterMS, *out, *quiet, *stats, transport, logf)
	case *demo:
		runDemo(*nReaders, *check, *tags, *payloadMS, *seed, *block, *calib, *workers, *maxRetained, *stats, transport, logf)
	}
}

// baseDecoderConfig is the gateway's per-session decoder template: the
// simulation flags describe the reader scenario (rates and payload
// sizes are not on the wire), exactly as lfdist -replay relies on its
// simulation flags. Cancellation is off so sessions retain a bounded
// window rather than whole captures.
func baseDecoderConfig(tags int, payloadMS float64, calib int64) (lf.DecoderConfig, error) {
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        tags,
		PayloadSeconds: payloadMS * 1e-3,
		Seed:           1,
	})
	if err != nil {
		return lf.DecoderConfig{}, err
	}
	dcfg := net.DecoderConfig()
	dcfg.CalibSamples = calib
	dcfg.CancellationRounds = -1
	return dcfg, nil
}

func runServe(addr string, tags int, payloadMS float64, calib int64, workers int, maxRetained int64, flushAfterMS int, out string, quiet, stats bool, transport fault.TransportConfig, logf func(string, ...any)) {
	dcfg, err := baseDecoderConfig(tags, payloadMS, calib)
	if err != nil {
		fatal(err)
	}
	var sinks []gate.Sink
	if !quiet {
		sinks = append(sinks, gate.NewJSONLSink(os.Stdout))
	}
	if out != "" {
		fs, err := gate.NewFileSink(out)
		if err != nil {
			fatal(err)
		}
		sinks = append(sinks, fs)
	}
	g, err := gate.NewGateway(gate.Config{
		Addr:        addr,
		Decoder:     dcfg,
		Workers:     workers,
		MaxRetained: maxRetained,
		FlushAfter:  time.Duration(flushAfterMS) * time.Millisecond,
		Sinks:       sinks,
		Transport:   transport,
		Logf:        logf,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "lfgate: gateway listening on %s\n", g.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	if err := g.Close(); err != nil {
		fatal(err)
	}
	snap := g.Stats()
	fmt.Fprintf(os.Stderr, "lfgate: %d readers, %d frames, %d KiB on the wire, %.1f ms throttled\n",
		snap.Counter("gate.readers"), snap.Counter("gate.frames"),
		snap.Counter("gate.bytes")/1024,
		float64(snap.Counter("gate.backpressure_ns"))/1e6)
	if stats {
		if err := snap.WriteText(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

func runReader(addr, name, replay string, tags int, payloadMS float64, seed int64, block int, transport fault.TransportConfig, logf func(string, ...any)) {
	if name == "" {
		name = fmt.Sprintf("reader-%d", os.Getpid())
	}
	samples, rate, err := readerSamples(replay, tags, payloadMS, seed)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	c, err := gate.DialClient(ctx, gate.ClientConfig{
		Addr: addr, Name: name, SampleRate: rate,
		Transport: transport, Logf: logf,
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if block <= 0 {
		block = len(samples)
	}
	for lo := 0; lo < len(samples); lo += block {
		hi := lo + block
		if hi > len(samples) {
			hi = len(samples)
		}
		if err := c.Push(samples[lo:hi]); err != nil {
			fatal(err)
		}
	}
	frames, err := c.End()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("lfgate: reader %q streamed %d samples (%.2f ms of capture) in %v; gateway published %d frames\n",
		name, len(samples), float64(len(samples))/rate*1e3,
		time.Since(start).Round(time.Millisecond), frames)
}

// readerSamples resolves the reader's capture: a recorded LFIQ
// container, or a freshly simulated epoch.
func readerSamples(replay string, tags int, payloadMS float64, seed int64) ([]complex128, float64, error) {
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		br, err := iq.NewBlockReader(f)
		if err != nil {
			return nil, 0, err
		}
		defer br.Close()
		var samples []complex128
		buf := make([]complex128, 8192)
		for {
			n, err := br.Read(buf)
			samples = append(samples, buf[:n]...)
			if err == io.EOF {
				return samples, br.SampleRate(), nil
			}
			if err != nil {
				return nil, 0, err
			}
		}
	}
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        tags,
		PayloadSeconds: payloadMS * 1e-3,
		Seed:           seed,
	})
	if err != nil {
		return nil, 0, err
	}
	ep, err := net.RunEpoch()
	if err != nil {
		return nil, 0, err
	}
	return ep.Capture.Samples, ep.Config.SampleRate, nil
}

func runDemo(nReaders int, check bool, tags int, payloadMS float64, seed int64, block int, calib int64, workers int, maxRetained int64, stats bool, transport fault.TransportConfig, logf func(string, ...any)) {
	dcfg, err := baseDecoderConfig(tags, payloadMS, calib)
	if err != nil {
		fatal(err)
	}
	readers := map[string]gate.LoopbackReader{}
	captures := map[string][]complex128{}
	nonces := map[string]uint64{}
	for i := 0; i < nReaders; i++ {
		rname := fmt.Sprintf("reader-%d", i)
		samples, rate, err := readerSamples("", tags, payloadMS, seed+int64(i))
		if err != nil {
			fatal(err)
		}
		nonces[rname] = uint64(i + 1)
		captures[rname] = samples
		readers[rname] = gate.LoopbackReader{
			Samples:    samples,
			SampleRate: rate,
			Nonce:      nonces[rname],
			Block:      block,
			Transport:  transport,
			Seed:       seed + int64(i),
		}
	}
	res, err := gate.Loopback(context.Background(), gate.Config{
		Decoder:     dcfg,
		Workers:     workers,
		MaxRetained: maxRetained,
		Logf:        logf,
	}, readers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("lfgate: %d readers pushed %d captures through the gateway in %v\n",
		nReaders, nReaders, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("frames: %d total (%.0f frames/s)\n", res.FramesTotal, res.FramesPerSec)
	for rname, frames := range res.Frames {
		crc := 0
		for _, f := range frames {
			if f.CRCOK {
				crc++
			}
		}
		fmt.Printf("  %s: %d frames, %d crc-ok\n", rname, len(frames), crc)
	}
	snap := res.Gateway
	fmt.Printf("gate: %d readers, %d frames, %d KiB on the wire, %.1f ms throttled\n",
		snap.Counter("gate.readers"), snap.Counter("gate.frames"),
		snap.Counter("gate.bytes")/1024,
		float64(snap.Counter("gate.backpressure_ns"))/1e6)
	if stats {
		if err := snap.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if !check {
		return
	}
	// The acceptance invariant: each reader's gateway frames are
	// byte-identical to an independent local streaming decode.
	for rname, samples := range captures {
		want, err := localFrames(samples, dcfg, rname, nonces[rname])
		if err != nil {
			fatal(err)
		}
		if len(want) == 0 {
			fatal(fmt.Errorf("check: local decode of %s produced no frames (vacuous)", rname))
		}
		if !reflect.DeepEqual(res.Frames[rname], want) {
			fatal(fmt.Errorf("check: reader %s gateway frames diverged from local decode (%d vs %d frames)",
				rname, len(res.Frames[rname]), len(want)))
		}
	}
	fmt.Printf("check: all %d readers byte-identical to local decodes\n", nReaders)
}

// localFrames is the local reference decode for -demo -check.
func localFrames(samples []complex128, dcfg lf.DecoderConfig, reader string, nonce uint64) ([]*gate.Frame, error) {
	var frames []*gate.Frame
	dcfg.OnFrame = func(sr *lf.StreamResult) {
		frames = append(frames, gate.FrameOf(reader, nonce, len(frames), sr))
	}
	dec, err := lf.NewDecoder(dcfg)
	if err != nil {
		return nil, err
	}
	sd, err := dec.NewStream()
	if err != nil {
		return nil, err
	}
	for lo := 0; lo < len(samples); lo += 8192 {
		hi := lo + 8192
		if hi > len(samples) {
			hi = len(samples)
		}
		if err := sd.Push(samples[lo:hi]); err != nil {
			return nil, err
		}
	}
	if _, err := sd.Flush(); err != nil {
		return nil, err
	}
	return frames, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lfgate:", err)
	os.Exit(1)
}
