// Command lftrace dumps the raw data series behind the paper's
// measurement figures as CSV on stdout: the Fig. 1 channel-dynamics
// traces, the Fig. 2 IQ constellations, the Fig. 4 comparator
// charging/jitter curves, and the Fig. 5 collision lattice.
//
// Usage:
//
//	lftrace -fig 1 > fig1.csv
//	lftrace -fig 2 > fig2.csv
//	lftrace -fig 4 > fig4.csv
//	lftrace -fig 5 > fig5.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"lf/internal/experiment"
)

func main() {
	fig := flag.Int("fig", 1, "figure to dump (1: channel dynamics, 2: IQ constellations, 4: comparator jitter, 5: collision lattice)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := experiment.Config{Seed: *seed, Epochs: 1}
	var err error
	switch *fig {
	case 1:
		err = experiment.WriteFig1CSV(os.Stdout, cfg)
	case 2:
		err = experiment.WriteFig2CSV(os.Stdout, cfg)
	case 4:
		err = experiment.WriteFig4CSV(os.Stdout, cfg)
	case 5:
		err = experiment.WriteFig5CSV(os.Stdout, cfg)
	default:
		err = fmt.Errorf("unknown figure %d (supported: 1, 2, 4, 5)", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lftrace:", err)
		os.Exit(1)
	}
}
