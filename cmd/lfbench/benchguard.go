package main

// Bench-regression guard (-benchguard BASELINE). Re-runs the
// micro-benchmark suite and compares the hot-path stages against the
// committed baseline document, failing on a >15% ns/op or allocs/op
// regression. Only the pipeline stages whose performance this repo
// actively defends are gated (decode, edgedetect, decode/streaming);
// synthesize and serialization are informational.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// guardThreshold is the fractional regression the guard tolerates
// before failing, covering run-to-run scheduler and allocator noise.
const guardThreshold = 0.15

// statsOverheadLimit caps the instrumented-vs-NoStats streaming decode
// ratio. Unlike the baseline comparison it is measured within one run
// on one machine, so it is gated even when the committed baseline is
// not comparable.
const statsOverheadLimit = 1.03

// guardedBenches are the benchmark names the guard gates on.
var guardedBenches = map[string]bool{
	"decode":                     true,
	"edgedetect":                 true,
	"decode/streaming":           true,
	"decode/streaming/pipelined": true,
}

// runBenchGuard loads the committed baseline, re-runs the suite, and
// returns an error describing every gated benchmark that regressed.
func runBenchGuard(baselinePath string, seed int64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var baseline benchReport
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	// A baseline recorded on a machine with a different core count (or a
	// restricted GOMAXPROCS) is not comparable: the parallel rungs of
	// its worker sweep measured different real concurrency, so gating
	// against it produces both false regressions and false passes. Warn
	// loudly and skip the gated comparison rather than fail CI on a
	// meaningless diff.
	comparable := true
	if baseline.NumCPU != runtime.NumCPU() || baseline.GOMAXPROCS != baseline.NumCPU {
		fmt.Fprintf(os.Stderr,
			"benchguard: WARNING: baseline %s was recorded with num_cpu=%d gomaxprocs=%d but this machine has %d CPUs;\n"+
				"benchguard: the gated comparison is not meaningful across machines — SKIPPING all gated stages.\n"+
				"benchguard: re-record the baseline on this machine with `lfbench -benchjson %s`.\n",
			baselinePath, baseline.NumCPU, baseline.GOMAXPROCS, runtime.NumCPU(), baselinePath)
		comparable = false
	}
	base := make(map[string]benchResult, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[fmt.Sprintf("%s/w%d", b.Name, b.Workers)] = b
	}

	fresh, err := buildBenchReport(seed)
	if err != nil {
		return err
	}

	var failures []string
	if comparable {
		for _, b := range fresh.Benchmarks {
			if !guardedBenches[b.Name] {
				continue
			}
			key := fmt.Sprintf("%s/w%d", b.Name, b.Workers)
			ref, ok := base[key]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: missing from baseline (regenerate with -benchjson)", key))
				continue
			}
			nsRatio := b.NsPerOp / ref.NsPerOp
			allocRatio := float64(b.AllocsPerOp) / float64(ref.AllocsPerOp)
			status := "ok"
			if nsRatio > 1+guardThreshold {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (%+.1f%%)",
					key, b.NsPerOp, ref.NsPerOp, 100*(nsRatio-1)))
			}
			if allocRatio > 1+guardThreshold {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: allocs/op %d vs baseline %d (%+.1f%%)",
					key, b.AllocsPerOp, ref.AllocsPerOp, 100*(allocRatio-1)))
			}
			fmt.Printf("%-24s ns/op %11.0f (%+6.1f%%)  allocs/op %5d (%+6.1f%%)  %s\n",
				key, b.NsPerOp, 100*(nsRatio-1), b.AllocsPerOp, 100*(allocRatio-1), status)
		}
	}
	// Realtime-factor gate: the streaming decoder's headline throughput
	// metric must not regress >15% against the committed baseline. Like
	// every baseline comparison it is skipped (with the warning above)
	// when the machine is not comparable.
	if comparable && baseline.Streaming != nil && fresh.Streaming != nil && baseline.Streaming.RealtimeFactor > 0 {
		b, f := baseline.Streaming.RealtimeFactor, fresh.Streaming.RealtimeFactor
		status := "ok"
		if f < b*(1-guardThreshold) {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"realtime_factor: %.4f vs baseline %.4f (%+.1f%%)", f, b, 100*(f/b-1)))
		}
		fmt.Printf("%-24s %11.4f (%+6.1f%% vs %.4f)  %s\n", "realtime-factor", f, 100*(f/b-1), b, status)
	}
	// Instrumentation overhead gate: measured within this run, so it
	// applies regardless of baseline comparability.
	if r := fresh.StatsOverheadRatio; r > 0 {
		status := "ok"
		if r > statsOverheadLimit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"stats overhead: instrumented streaming decode %.1f%% slower than NoStats (limit %.0f%%)",
				100*(r-1), 100*(statsOverheadLimit-1)))
		}
		fmt.Printf("%-24s ratio %.3f (limit %.3f)  %s\n", "stats-overhead", r, statsOverheadLimit, status)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchguard: %s\n", f)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", len(failures), 100*guardThreshold)
	}
	fmt.Println("benchguard: all gated benchmarks within threshold")
	return nil
}
