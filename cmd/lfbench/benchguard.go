package main

// Bench-regression guard (-benchguard BASELINE). Re-runs the
// micro-benchmark suite and compares the hot-path stages against the
// committed baseline section recorded on a machine of the same shape
// (num_cpu, gomaxprocs), failing on a >15% ns/op or allocs/op
// regression. Only the pipeline stages whose performance this repo
// actively defends are gated (decode, edgedetect, decode/streaming and
// its pipelined/sharded variants); synthesize and serialization are
// informational. A machine with no recorded section FAILS the guard —
// the old warn-and-skip silently waived the gate on every multi-core
// box because the committed baseline was 1-core only.

import (
	"fmt"
	"os"
	"runtime"
	"strings"
)

// guardThreshold is the fractional regression the guard tolerates
// before failing, covering run-to-run scheduler and allocator noise.
const guardThreshold = 0.15

// statsOverheadLimit caps the instrumented-vs-NoStats streaming decode
// ratio. Unlike the baseline comparison it is measured within one run
// on one machine, so it is gated even when the committed baseline is
// not comparable.
const statsOverheadLimit = 1.03

// sicRedecodeCap is the absolute ceiling on sic_redecode_fraction: one
// incremental cancellation round on the slotted bench capture must cost
// at most this fraction of a from-scratch re-decode. Like the stats
// overhead it is a within-run measurement (both sides of the fraction
// come from the same interleaved timing passes), so it is gated on any
// machine regardless of baseline comparability.
const sicRedecodeCap = 0.40

// sicRedecodeSlack is the absolute room the baseline comparison of
// sic_redecode_fraction allows on top of the relative guardThreshold.
// The fraction divides a difference of two ~20 ms wall-clock timings
// by one of them, so a couple of milliseconds of scheduler noise in
// either term moves it by a tenth — its run-to-run noise is absolute,
// not proportional, and a pure ratio gate on a small baseline value
// would flake on noise the cap gate happily absorbs. Creep within the
// slack is still bounded: the absolute cap fails the run regardless of
// what the baseline recorded.
const sicRedecodeSlack = 0.15

// guardedBenches are the benchmark names the guard gates on.
var guardedBenches = map[string]bool{
	"decode":                     true,
	"edgedetect":                 true,
	"decode/streaming":           true,
	"decode/streaming/pipelined": true,
	"decode/streaming/sharded":   true,
}

// shardedRealtimeFloor is the absolute realtime_factor_sharded gate on
// multi-core machines: with cores to fan the sweep across, the sharded
// streaming decode must keep up with a live SDR feed. Single-core
// machines only gate the relative regression — there is no parallelism
// to buy the margin with.
const shardedRealtimeFloor = 1.0

// runBenchGuard loads the committed baseline, re-runs the suite, and
// returns an error describing every gated benchmark that regressed.
func runBenchGuard(baselinePath string, seed int64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	bb, err := loadBaseline(data)
	if err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	// A baseline section recorded on a machine with a different core
	// count (or a restricted GOMAXPROCS) is not comparable: the parallel
	// rungs of its worker sweep measured different real concurrency.
	// The gate therefore compares only against the section matching this
	// machine's shape — and a missing section is a hard failure with
	// re-record guidance, not a skip: skipping silently waived every
	// gated stage on any box the baseline wasn't recorded on.
	ncpu := runtime.NumCPU()
	baseline := bb.section(ncpu, ncpu)
	if baseline == nil {
		have := make([]string, 0, len(bb.Sections))
		for _, s := range bb.Sections {
			have = append(have, fmt.Sprintf("num_cpu=%d/gomaxprocs=%d", s.NumCPU, s.GOMAXPROCS))
		}
		return fmt.Errorf(
			"no baseline section for this machine (num_cpu=%d): %s has [%s]; "+
				"record this machine's section with `lfbench -benchjson %s` and commit it",
			ncpu, baselinePath, strings.Join(have, ", "), baselinePath)
	}
	base := make(map[string]benchResult, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[fmt.Sprintf("%s/w%d", b.Name, b.Workers)] = b
	}

	fresh, err := buildBenchReport(seed)
	if err != nil {
		return err
	}

	var failures []string
	for _, b := range fresh.Benchmarks {
		if !guardedBenches[b.Name] {
			continue
		}
		key := fmt.Sprintf("%s/w%d", b.Name, b.Workers)
		ref, ok := base[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from baseline (regenerate with -benchjson)", key))
			continue
		}
		nsRatio := b.NsPerOp / ref.NsPerOp
		allocRatio := float64(b.AllocsPerOp) / float64(ref.AllocsPerOp)
		status := "ok"
		if nsRatio > 1+guardThreshold {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (%+.1f%%)",
				key, b.NsPerOp, ref.NsPerOp, 100*(nsRatio-1)))
		}
		if allocRatio > 1+guardThreshold {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d vs baseline %d (%+.1f%%)",
				key, b.AllocsPerOp, ref.AllocsPerOp, 100*(allocRatio-1)))
		}
		fmt.Printf("%-24s ns/op %11.0f (%+6.1f%%)  allocs/op %5d (%+6.1f%%)  %s\n",
			key, b.NsPerOp, 100*(nsRatio-1), b.AllocsPerOp, 100*(allocRatio-1), status)
	}
	// Realtime-factor gates: the streaming decoder's headline throughput
	// metrics must not regress >15% against this machine's baseline
	// section, and on a multi-core machine the sharded decode must
	// additionally clear the absolute realtime floor.
	rtGate := func(name string, b, f float64) {
		if b <= 0 || f <= 0 {
			return
		}
		status := "ok"
		if f < b*(1-guardThreshold) {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s: %.4f vs baseline %.4f (%+.1f%%)", name, f, b, 100*(f/b-1)))
		}
		fmt.Printf("%-24s %11.4f (%+6.1f%% vs %.4f)  %s\n", name, f, 100*(f/b-1), b, status)
	}
	if baseline.Streaming != nil && fresh.Streaming != nil {
		rtGate("realtime-factor", baseline.Streaming.RealtimeFactor, fresh.Streaming.RealtimeFactor)
		rtGate("realtime-factor-sharded", baseline.Streaming.RealtimeFactorSharded, fresh.Streaming.RealtimeFactorSharded)
		rtGate("gateway-frames-per-sec", baseline.Streaming.GatewayFramesPerSec, fresh.Streaming.GatewayFramesPerSec)
	}
	if ncpu >= 2 && fresh.Streaming != nil && fresh.Streaming.RealtimeFactorSharded > 0 &&
		fresh.Streaming.RealtimeFactorSharded < shardedRealtimeFloor {
		failures = append(failures, fmt.Sprintf(
			"realtime_factor_sharded %.4f below the %.1f floor on a %d-core machine",
			fresh.Streaming.RealtimeFactorSharded, shardedRealtimeFloor, ncpu))
	}
	// Incremental-SIC gates. The absolute cap is the §17 acceptance
	// bound: the dirty-span residual pass must stay O(dirty), i.e. cost
	// at most sicRedecodeCap of a full re-decode of the bench capture.
	// The baseline comparison additionally catches creeping regressions
	// below the cap, with absolute slack for timing-difference noise.
	if fresh.SIC != nil {
		f := fresh.SIC.RedecodeFraction
		status := "ok"
		if f > sicRedecodeCap {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"sic_redecode_fraction %.3f exceeds the %.2f cap: the incremental round re-swept %d of %d samples",
				f, sicRedecodeCap, fresh.SIC.DirtySamples, fresh.SIC.CaptureSamples))
		}
		fmt.Printf("%-24s %11.4f (cap %.2f)  %s\n", "sic-redecode-fraction", f, sicRedecodeCap, status)
		if baseline.SIC != nil {
			b := baseline.SIC.RedecodeFraction
			if b > 0 && f > b*(1+guardThreshold) && f > b+sicRedecodeSlack {
				failures = append(failures, fmt.Sprintf(
					"sic_redecode_fraction %.3f vs baseline %.3f (%+.1f%%)", f, b, 100*(f/b-1)))
			}
		}
	}
	// Instrumentation overhead gate: measured within this run, so it
	// applies regardless of baseline comparability.
	if r := fresh.StatsOverheadRatio; r > 0 {
		status := "ok"
		if r > statsOverheadLimit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"stats overhead: instrumented streaming decode %.1f%% slower than NoStats (limit %.0f%%)",
				100*(r-1), 100*(statsOverheadLimit-1)))
		}
		fmt.Printf("%-24s ratio %.3f (limit %.3f)  %s\n", "stats-overhead", r, statsOverheadLimit, status)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchguard: %s\n", f)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", len(failures), 100*guardThreshold)
	}
	fmt.Println("benchguard: all gated benchmarks within threshold")
	return nil
}
