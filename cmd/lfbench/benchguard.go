package main

// Bench-regression guard (-benchguard BASELINE). Re-runs the
// micro-benchmark suite and compares the hot-path stages against the
// committed baseline document, failing on a >15% ns/op or allocs/op
// regression. Only the pipeline stages whose performance this repo
// actively defends are gated (decode, edgedetect, decode/streaming);
// synthesize and serialization are informational.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// guardThreshold is the fractional regression the guard tolerates
// before failing, covering run-to-run scheduler and allocator noise.
const guardThreshold = 0.15

// guardedBenches are the benchmark names the guard gates on.
var guardedBenches = map[string]bool{
	"decode":           true,
	"edgedetect":       true,
	"decode/streaming": true,
}

// runBenchGuard loads the committed baseline, re-runs the suite, and
// returns an error describing every gated benchmark that regressed.
func runBenchGuard(baselinePath string, seed int64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var baseline benchReport
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	// A baseline recorded on a machine with a different core count (or a
	// restricted GOMAXPROCS) is not comparable: the parallel rungs of
	// its worker sweep measured different real concurrency, so gating
	// against it produces both false regressions and false passes. Warn
	// loudly and skip the gated comparison rather than fail CI on a
	// meaningless diff.
	if baseline.NumCPU != runtime.NumCPU() || baseline.GOMAXPROCS != baseline.NumCPU {
		fmt.Fprintf(os.Stderr,
			"benchguard: WARNING: baseline %s was recorded with num_cpu=%d gomaxprocs=%d but this machine has %d CPUs;\n"+
				"benchguard: the gated comparison is not meaningful across machines — SKIPPING all gated stages.\n"+
				"benchguard: re-record the baseline on this machine with `lfbench -benchjson %s`.\n",
			baselinePath, baseline.NumCPU, baseline.GOMAXPROCS, runtime.NumCPU(), baselinePath)
		return nil
	}
	base := make(map[string]benchResult, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[fmt.Sprintf("%s/w%d", b.Name, b.Workers)] = b
	}

	fresh, err := buildBenchReport(seed)
	if err != nil {
		return err
	}

	var failures []string
	for _, b := range fresh.Benchmarks {
		if !guardedBenches[b.Name] {
			continue
		}
		key := fmt.Sprintf("%s/w%d", b.Name, b.Workers)
		ref, ok := base[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from baseline (regenerate with -benchjson)", key))
			continue
		}
		nsRatio := b.NsPerOp / ref.NsPerOp
		allocRatio := float64(b.AllocsPerOp) / float64(ref.AllocsPerOp)
		status := "ok"
		if nsRatio > 1+guardThreshold {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (%+.1f%%)",
				key, b.NsPerOp, ref.NsPerOp, 100*(nsRatio-1)))
		}
		if allocRatio > 1+guardThreshold {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d vs baseline %d (%+.1f%%)",
				key, b.AllocsPerOp, ref.AllocsPerOp, 100*(allocRatio-1)))
		}
		fmt.Printf("%-24s ns/op %11.0f (%+6.1f%%)  allocs/op %5d (%+6.1f%%)  %s\n",
			key, b.NsPerOp, 100*(nsRatio-1), b.AllocsPerOp, 100*(allocRatio-1), status)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchguard: %s\n", f)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", len(failures), 100*guardThreshold)
	}
	fmt.Println("benchguard: all gated benchmarks within threshold")
	return nil
}
