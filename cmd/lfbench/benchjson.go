package main

// Machine-readable micro-benchmarks (-benchjson FILE). The suite
// measures the hot pipeline stages with testing.Benchmark so the
// numbers match `go test -bench` semantics (ns/op, B/op, allocs/op),
// sweeps the worker-pool stages across fixed worker counts, and
// profiles the streaming decoder's bounded-memory pipeline (sustained
// samples/sec, peak retained window, first-frame latency). It emits
// one JSON document that CI can diff across commits without scraping
// table output; Makefile's `benchguard` target compares the committed
// document against a fresh run.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"lf"
	"lf/internal/edgedetect"
	"lf/internal/experiment"
	"lf/internal/gate"
)

// streamBenchBlock matches the SDR DMA buffer size the streaming
// pipeline is tuned for (see cmd/lfsim -block).
const streamBenchBlock = 8192

// streamBenchCalib bounds threshold calibration so detection runs
// incrementally from mid-capture instead of deferring to Flush.
const streamBenchCalib = 32768

// workerSweep is the worker-count ladder every pool stage is measured
// at: 1, 2, 4, ... capped at the machine's core count. Rungs beyond
// NumCPU would time-slice goroutines over the same cores and report
// phantom "parallel" numbers no other machine could compare against
// (the committed baseline once showed workers=2/4 slower than 1 for
// exactly that reason); the report's num_cpu/gomaxprocs fields let
// -benchguard refuse cross-machine comparisons outright.
func workerSweep() []int {
	sweep := []int{1}
	for w := 2; w <= runtime.NumCPU(); w *= 2 {
		sweep = append(sweep, w)
	}
	return sweep
}

// benchResult is one benchmark's measurement.
type benchResult struct {
	Name string `json:"name"`
	// Workers is the worker-pool size the stage ran at (0 for stages
	// with no parallelism knob).
	Workers     int     `json:"workers,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// GoodputBps is the aggregate decoded goodput of the benchmarked
	// epoch (decode benchmarks only; 0 elsewhere).
	GoodputBps float64 `json:"goodput_bps,omitempty"`
}

// streamingMetrics characterizes the bounded-memory streaming decode
// of the benchmark epoch.
type streamingMetrics struct {
	BlockSamples   int `json:"block_samples"`
	CaptureSamples int `json:"capture_samples"`
	// SamplesPerSecSustained is capture samples over the measured
	// wall-clock time of one full push+flush pass (from the streaming
	// benchmark's ns/op, so it includes every pipeline stage).
	SamplesPerSecSustained float64 `json:"samples_per_sec_sustained"`
	// RealtimeFactor is sustained throughput over the capture's own
	// sample rate: >1 means the decoder keeps up with a live SDR feed.
	// Gated by -benchguard: a >15% drop against the committed baseline
	// fails the guard (skipped, like every baseline comparison, when
	// the machine is not comparable).
	RealtimeFactor float64 `json:"realtime_factor"`
	// RealtimeFactorPipelined is the same measurement with the
	// stage-graph decoder (PipelineParallelism=2). On a single-core
	// host it tracks RealtimeFactor minus queue overhead; with spare
	// cores the detect and walk stages overlap and it pulls ahead.
	RealtimeFactorPipelined float64 `json:"realtime_factor_pipelined,omitempty"`
	// RealtimeFactorSharded is the same measurement with the
	// data-parallel sharded sweep (DecoderConfig.ShardParallelism), at
	// the best shard count in the swept ladder. On a single-core host
	// it tracks RealtimeFactor minus stripe-dispatch overhead; with
	// spare cores the sweep fans out and this is the decoder's best
	// realtime margin. Gated by -benchguard like RealtimeFactor.
	RealtimeFactorSharded float64 `json:"realtime_factor_sharded,omitempty"`
	// PeakRetainedBytes is the high-water mark of RetainedBytes across
	// the push sequence; CaptureBytes is what batch decode would hold.
	PeakRetainedBytes int64 `json:"peak_retained_bytes"`
	CaptureBytes      int64 `json:"capture_bytes"`
	// FirstFrameSeconds is the capture-time position (seconds of signal
	// pushed) at which the first decoded frame was emitted, against the
	// full CaptureSeconds a batch decoder would wait for.
	FirstFrameSeconds float64 `json:"first_frame_seconds"`
	CaptureSeconds    float64 `json:"capture_seconds"`
	// GatewayFramesPerSec is the frame throughput of a loopback
	// gateway run: gatewayBenchReaders concurrent readers streaming the
	// bench capture over TCP through per-session decoders on the shared
	// worker fleet (best of gatewayBenchPasses). Gated by -benchguard
	// like RealtimeFactor: a >15% drop against the committed baseline
	// fails the guard.
	GatewayFramesPerSec float64 `json:"gateway_frames_per_sec,omitempty"`
}

// sicMetrics characterizes the incremental-SIC residual decode on the
// fixed slotted bench capture (experiment.SICBenchEpoch): how much of
// the listening window one cancellation round marked dirty, what the
// round cost against a from-scratch re-decode, and the carry-over
// counters the dirty-span mechanics are built on (DESIGN.md §17).
type sicMetrics struct {
	CaptureSamples int `json:"capture_samples"`
	// DirtySamples is the sample count the cancellation round re-swept
	// (obs counter sic.dirty_samples); CarriedStreams and
	// RecoveredStreams are the corresponding sic.* counters from the
	// same instrumented decode.
	DirtySamples     int64 `json:"dirty_samples"`
	CarriedStreams   int64 `json:"carried_streams"`
	RecoveredStreams int64 `json:"recovered_streams"`
	// FirstPassNs is a cancellation-disabled decode of the capture —
	// exactly what re-running detection over the whole window costs.
	// IncrementalNs and FullResidualNs are one-round decodes in
	// dirty-span and ForceFullResidual mechanics respectively (each the
	// minimum over interleaved passes; the two are byte-identical by
	// contract and checked on every measurement).
	FirstPassNs    int64 `json:"first_pass_ns"`
	IncrementalNs  int64 `json:"incremental_round_ns"`
	FullResidualNs int64 `json:"full_round_ns"`
	// RedecodeFraction is (IncrementalNs − FirstPassNs) / FirstPassNs:
	// the marginal cost of the residual pass as a fraction of a full
	// re-decode. Gated ≤ sicRedecodeCap by -benchguard within the run,
	// plus a regression comparison against the committed baseline.
	RedecodeFraction float64 `json:"sic_redecode_fraction"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// GOMAXPROCS is pinned to NumCPU for the suite so the parallel
	// rungs of the worker sweep measure real concurrency.
	GOMAXPROCS int               `json:"gomaxprocs"`
	Seed       int64             `json:"seed"`
	Benchmarks []benchResult     `json:"benchmarks"`
	Streaming  *streamingMetrics `json:"streaming"`
	// SIC is the incremental-cancellation cost profile on the slotted
	// bench capture.
	SIC *sicMetrics `json:"sic,omitempty"`
	// DecodeSpeedup is serial decode ns/op over the best swept decode
	// ns/op on this machine. Meaningful only when NumCPU > 1.
	DecodeSpeedup float64 `json:"decode_speedup"`
	// PipelineStats is one instrumented streaming decode's metric
	// snapshot — per-stage counters plus wall-time breakdown — so a
	// committed report documents where the pipeline spends its time.
	PipelineStats *lf.Stats `json:"pipeline_stats,omitempty"`
	// StatsOverheadRatio is decode/streaming ns/op over
	// decode/streaming/nostats ns/op: the wall-clock cost of the
	// always-on instrumentation. Gated < 1.03 by -benchguard.
	StatsOverheadRatio float64 `json:"stats_overhead_ratio,omitempty"`
}

// benchEpoch builds the fixed 8-tag epoch every decode benchmark runs
// against.
func benchEpoch(seed int64) (*lf.Network, *lf.Epoch, error) {
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        8,
		PayloadSeconds: 2e-3,
		Seed:           seed,
	})
	if err != nil {
		return nil, nil, err
	}
	ep, err := net.RunEpoch()
	if err != nil {
		return nil, nil, err
	}
	return net, ep, nil
}

// measure runs fn under testing.Benchmark with allocation tracking.
func measure(name string, workers int, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return benchResult{
		Name:        name,
		Workers:     workers,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// profileStreaming runs one instrumented streaming pass (peak retained
// window, first-frame position), then fills in throughput from the
// streaming benchmark's ns/op.
func profileStreaming(net *lf.Network, ep *lf.Epoch) (*streamingMetrics, benchResult, error) {
	m := &streamingMetrics{
		BlockSamples:   streamBenchBlock,
		CaptureSamples: ep.Capture.Len(),
		CaptureBytes:   int64(ep.Capture.Len()) * 16,
		CaptureSeconds: float64(ep.Capture.Len()) / ep.Capture.SampleRate,
	}

	cfg := net.DecoderConfig()
	cfg.CalibSamples = streamBenchCalib
	var pushed int64
	firstFrame := int64(-1)
	cfg.OnFrame = func(*lf.StreamResult) {
		if firstFrame < 0 {
			firstFrame = pushed
		}
	}
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		return nil, benchResult{}, err
	}
	sd, err := dec.NewStream()
	if err != nil {
		return nil, benchResult{}, err
	}
	err = ep.Blocks(streamBenchBlock, func(block []complex128) error {
		if e := sd.Push(block); e != nil {
			return e
		}
		pushed += int64(len(block))
		if r := sd.RetainedBytes(); r > m.PeakRetainedBytes {
			m.PeakRetainedBytes = r
		}
		return nil
	})
	if err != nil {
		return nil, benchResult{}, err
	}
	if _, err := sd.Flush(); err != nil {
		return nil, benchResult{}, err
	}
	if firstFrame >= 0 {
		m.FirstFrameSeconds = float64(firstFrame) / ep.Capture.SampleRate
	}

	// Throughput from the benchmark loop so it reflects steady state
	// (pooled buffers warm) rather than a cold first pass.
	bcfg := net.DecoderConfig()
	bcfg.CalibSamples = streamBenchCalib
	bdec, err := lf.NewDecoder(bcfg)
	if err != nil {
		return nil, benchResult{}, err
	}
	r := measure("decode/streaming", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := bdec.NewStream()
			if err != nil {
				b.Fatal(err)
			}
			if err := ep.Blocks(streamBenchBlock, s.Push); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	})
	if r.NsPerOp > 0 {
		m.SamplesPerSecSustained = float64(m.CaptureSamples) / (r.NsPerOp / 1e9)
		m.RealtimeFactor = m.SamplesPerSecSustained / ep.Capture.SampleRate
	}
	return m, r, nil
}

// profilePipelined measures the stage-graph streaming decode
// (PipelineParallelism=2) and returns its benchmark row plus realtime
// factor.
func profilePipelined(net *lf.Network, ep *lf.Epoch) (benchResult, float64, error) {
	cfg := net.DecoderConfig()
	cfg.CalibSamples = streamBenchCalib
	cfg.PipelineParallelism = 2
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		return benchResult{}, 0, err
	}
	r := measure("decode/streaming/pipelined", 2, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := dec.NewStream()
			if err != nil {
				b.Fatal(err)
			}
			if err := ep.Blocks(streamBenchBlock, s.Push); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	})
	rt := 0.0
	if r.NsPerOp > 0 {
		rt = float64(ep.Capture.Len()) / (r.NsPerOp / 1e9) / ep.Capture.SampleRate
	}
	return r, rt, nil
}

// shardSweepCounts is the shard-count ladder the sharded streaming
// decode is measured at: 2, 4, ... capped at the core count, but
// always including 2 — a single-core box still records the sharded
// row (quantifying dispatch overhead) rather than silently omitting
// the decoder's headline scaling number.
func shardSweepCounts() []int {
	sweep := []int{2}
	for w := 4; w <= runtime.NumCPU(); w *= 2 {
		sweep = append(sweep, w)
	}
	return sweep
}

// profileSharded measures the sharded streaming decode across the
// shard-count ladder and returns the benchmark rows plus the best
// realtime factor achieved.
func profileSharded(net *lf.Network, ep *lf.Epoch) ([]benchResult, float64, error) {
	var rows []benchResult
	best := 0.0
	for _, w := range shardSweepCounts() {
		cfg := net.DecoderConfig()
		cfg.CalibSamples = streamBenchCalib
		cfg.ShardParallelism = w
		dec, err := lf.NewDecoder(cfg)
		if err != nil {
			return nil, 0, err
		}
		r := measure("decode/streaming/sharded", w, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := dec.NewStream()
				if err != nil {
					b.Fatal(err)
				}
				if err := ep.Blocks(streamBenchBlock, s.Push); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		})
		rows = append(rows, r)
		if r.NsPerOp > 0 {
			if rt := float64(ep.Capture.Len()) / (r.NsPerOp / 1e9) / ep.Capture.SampleRate; rt > best {
				best = rt
			}
		}
	}
	return rows, best, nil
}

// profileSIC measures the incremental-SIC redecode fraction on the
// fixed slotted bench capture. One cancellation round; the timing
// passes are interleaved min-of-rounds (MeasureSIC), which also
// re-checks the incremental/ForceFullResidual byte-identity contract.
func profileSIC(seed int64) (*sicMetrics, error) {
	ep, cfg, err := experiment.SICBenchEpoch(seed)
	if err != nil {
		return nil, err
	}
	const sicBenchPasses = 6
	t, snap, err := experiment.MeasureSIC(ep, cfg, 1, sicBenchPasses)
	if err != nil {
		return nil, err
	}
	return &sicMetrics{
		CaptureSamples:   ep.Capture.Len(),
		DirtySamples:     snap.Counter("sic.dirty_samples"),
		CarriedStreams:   snap.Counter("sic.carried_streams"),
		RecoveredStreams: snap.Counter("sic.recovered"),
		FirstPassNs:      t.Off.Nanoseconds(),
		IncrementalNs:    t.Incremental.Nanoseconds(),
		FullResidualNs:   t.Full.Nanoseconds(),
		RedecodeFraction: t.RedecodeFraction(),
	}, nil
}

// pairedOverheadRatio measures the instrumented-vs-NoStats streaming
// decode cost ratio with alternating single passes and a min-of-rounds
// estimator. Interleaving cancels slow drift (thermal, frequency
// scaling) that would bias two back-to-back benchmark runs in one
// direction, and the per-variant minimum over rounds is the classic
// low-noise estimate of a deterministic workload's true cost — the
// decode does identical work every pass, so every excess over the
// minimum is scheduler interference, not signal.
func pairedOverheadRatio(ep *lf.Epoch, instrumented, noStats *lf.Decoder) (float64, error) {
	onePass := func(dec *lf.Decoder) (time.Duration, error) {
		s, err := dec.NewStream()
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if err := ep.Blocks(streamBenchBlock, s.Push); err != nil {
			return 0, err
		}
		if _, err := s.Flush(); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	// One untimed warmup each so pooled buffers are hot for both.
	if _, err := onePass(instrumented); err != nil {
		return 0, err
	}
	if _, err := onePass(noStats); err != nil {
		return 0, err
	}
	const rounds = 16
	runtime.GC() // start every round sequence from a settled heap
	minI, minN := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
	for r := 0; r < rounds; r++ {
		order := []*lf.Decoder{instrumented, noStats}
		if r%2 == 1 { // alternate which variant runs first each round
			order[0], order[1] = order[1], order[0]
		}
		for _, dec := range order {
			d, err := onePass(dec)
			if err != nil {
				return 0, err
			}
			if dec == instrumented && d < minI {
				minI = d
			}
			if dec == noStats && d < minN {
				minN = d
			}
		}
	}
	if minN <= 0 {
		return 0, nil
	}
	return float64(minI) / float64(minN), nil
}

// benchBaseline is the on-disk baseline document: one recorded report
// per machine shape, keyed by (num_cpu, gomaxprocs). A single file can
// then hold the 1-core CI section and a multi-core workstation section
// side by side, and -benchguard compares against the section matching
// the machine it runs on instead of warning-and-skipping whenever the
// committed baseline came from a different box.
type benchBaseline struct {
	Sections []*benchReport `json:"sections"`
}

// loadBaseline parses a baseline document, accepting both the sectioned
// format and the legacy single-report layout (treated as a one-section
// document keyed by its own num_cpu/gomaxprocs).
func loadBaseline(data []byte) (*benchBaseline, error) {
	var bb benchBaseline
	if err := json.Unmarshal(data, &bb); err == nil && len(bb.Sections) > 0 {
		return &bb, nil
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.NumCPU == 0 {
		return nil, fmt.Errorf("baseline has neither sections nor a legacy report")
	}
	return &benchBaseline{Sections: []*benchReport{&r}}, nil
}

// section returns the report recorded on a machine with the given
// shape, or nil.
func (bb *benchBaseline) section(numCPU, gomaxprocs int) *benchReport {
	for _, s := range bb.Sections {
		if s.NumCPU == numCPU && s.GOMAXPROCS == gomaxprocs {
			return s
		}
	}
	return nil
}

// upsert replaces the section matching report's machine shape, or
// appends one, keeping sections ordered by core count for stable
// diffs.
func (bb *benchBaseline) upsert(r *benchReport) {
	for i, s := range bb.Sections {
		if s.NumCPU == r.NumCPU && s.GOMAXPROCS == r.GOMAXPROCS {
			bb.Sections[i] = r
			return
		}
	}
	bb.Sections = append(bb.Sections, r)
	sort.Slice(bb.Sections, func(i, j int) bool {
		a, b := bb.Sections[i], bb.Sections[j]
		if a.NumCPU != b.NumCPU {
			return a.NumCPU < b.NumCPU
		}
		return a.GOMAXPROCS < b.GOMAXPROCS
	})
}

// writeBenchJSON runs the suite and upserts this machine's section into
// the baseline document at path, preserving sections recorded on other
// machine shapes.
func writeBenchJSON(path string, seed int64) error {
	report, err := buildBenchReport(seed)
	if err != nil {
		return err
	}
	bb := &benchBaseline{}
	if prev, err := os.ReadFile(path); err == nil {
		if loaded, lerr := loadBaseline(prev); lerr == nil {
			bb = loaded
		} else {
			fmt.Fprintf(os.Stderr, "lfbench: %s is not a baseline document (%v); rewriting it\n", path, lerr)
		}
	}
	bb.upsert(report)
	data, err := json.MarshalIndent(bb, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// buildBenchReport runs the full suite and returns the report.
func buildBenchReport(seed int64) (*benchReport, error) {
	// Pin GOMAXPROCS to the machine's core count so the worker sweep's
	// parallel rungs measure real concurrency even when the binary
	// inherits a restricted setting.
	runtime.GOMAXPROCS(runtime.NumCPU())

	net, ep, err := benchEpoch(seed)
	if err != nil {
		return nil, err
	}

	// Decoded once outside the timer to record the epoch's goodput.
	decodeAt := func(parallelism int) (*lf.Result, error) {
		cfg := net.DecoderConfig()
		cfg.Parallelism = parallelism
		dec, err := lf.NewDecoder(cfg)
		if err != nil {
			return nil, err
		}
		return dec.Decode(ep)
	}
	res, err := decodeAt(1)
	if err != nil {
		return nil, err
	}
	goodput := lf.ScoreEpoch(ep, res).AggregateBps

	report := benchReport{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
	}

	var serialNs, bestNs float64
	for _, w := range workerSweep() {
		w := w
		r := measure("decode", w, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := decodeAt(w); err != nil {
					b.Fatal(err)
				}
			}
		})
		r.GoodputBps = goodput
		report.Benchmarks = append(report.Benchmarks, r)
		if w == 1 {
			serialNs = r.NsPerOp
		}
		if bestNs == 0 || r.NsPerOp < bestNs {
			bestNs = r.NsPerOp
		}
	}
	if bestNs > 0 {
		report.DecodeSpeedup = serialNs / bestNs
	}

	for _, w := range workerSweep() {
		cfg := edgedetect.DefaultConfig()
		cfg.Parallelism = w
		report.Benchmarks = append(report.Benchmarks, measure("edgedetect", w, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				det, err := edgedetect.New(ep.Capture, cfg)
				if err != nil {
					b.Fatal(err)
				}
				det.Release()
			}
		}))
	}

	streaming, streamBench, err := profileStreaming(net, ep)
	if err != nil {
		return nil, err
	}
	report.Streaming = streaming
	report.Benchmarks = append(report.Benchmarks, streamBench)

	pipeBench, pipeRT, err := profilePipelined(net, ep)
	if err != nil {
		return nil, err
	}
	streaming.RealtimeFactorPipelined = pipeRT
	report.Benchmarks = append(report.Benchmarks, pipeBench)

	shardRows, shardRT, err := profileSharded(net, ep)
	if err != nil {
		return nil, err
	}
	streaming.RealtimeFactorSharded = shardRT
	report.Benchmarks = append(report.Benchmarks, shardRows...)

	gwFPS, err := profileGateway(net, ep)
	if err != nil {
		return nil, err
	}
	streaming.GatewayFramesPerSec = gwFPS

	sic, err := profileSIC(seed)
	if err != nil {
		return nil, err
	}
	report.SIC = sic

	// A/B instrumented vs uninstrumented streaming decode. The decode
	// itself is bit-identical; the ratio is the pure metrics cost and
	// -benchguard fails when it exceeds 3%.
	ncfg := net.DecoderConfig()
	ncfg.CalibSamples = streamBenchCalib
	ncfg.NoStats = true
	ndec, err := lf.NewDecoder(ncfg)
	if err != nil {
		return nil, err
	}
	noStats := measure("decode/streaming/nostats", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := ndec.NewStream()
			if err != nil {
				b.Fatal(err)
			}
			if err := ep.Blocks(streamBenchBlock, s.Push); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	})
	report.Benchmarks = append(report.Benchmarks, noStats)
	// The gated ratio comes from a paired interleaved measurement, not
	// from dividing the two independent benchmark runs above: two
	// separate testing.Benchmark invocations carry uncorrelated
	// scheduler/frequency noise that swamps a few-percent signal.
	icfg := net.DecoderConfig()
	icfg.CalibSamples = streamBenchCalib
	idec, err := lf.NewDecoder(icfg)
	if err != nil {
		return nil, err
	}
	ratio, err := pairedOverheadRatio(ep, idec, ndec)
	if err != nil {
		return nil, err
	}
	report.StatsOverheadRatio = ratio

	// One instrumented pass for the report's stage breakdown.
	scfg := net.DecoderConfig()
	scfg.CalibSamples = streamBenchCalib
	sdec, err := lf.NewDecoder(scfg)
	if err != nil {
		return nil, err
	}
	ss, err := sdec.NewStream()
	if err != nil {
		return nil, err
	}
	if err := ep.Blocks(streamBenchBlock, ss.Push); err != nil {
		return nil, err
	}
	if _, err := ss.Flush(); err != nil {
		return nil, err
	}
	report.PipelineStats = ss.Stats()

	// A/B the coarse-to-fine sweep against the forced-dense kernel on
	// the same streaming decode (informational, not gated): the ratio
	// of decode/streaming/dense to decode/streaming is the sparse
	// kernel's whole-pipeline win.
	dcfg := net.DecoderConfig()
	dcfg.CalibSamples = streamBenchCalib
	dcfg.ForceDenseSweep = true
	ddec, err := lf.NewDecoder(dcfg)
	if err != nil {
		return nil, err
	}
	report.Benchmarks = append(report.Benchmarks, measure("decode/streaming/dense", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := ddec.NewStream()
			if err != nil {
				b.Fatal(err)
			}
			if err := ep.Blocks(streamBenchBlock, s.Push); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	report.Benchmarks = append(report.Benchmarks, measure("synthesize", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := net.RunEpoch(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	report.Benchmarks = append(report.Benchmarks, measure("capture/roundtrip", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf writeCounter
			if _, err := ep.Capture.WriteTo(&buf); err != nil {
				b.Fatal(err)
			}
		}
	}))

	return &report, nil
}

// gatewayBenchReaders is the loopback fleet size the gateway
// throughput profile streams with; gatewayBenchPasses the number of
// full round trips measured (the best is reported, matching the
// minimum-over-passes convention of the SIC timings — a gateway round
// trip is tens of milliseconds of wall clock, so scheduler noise on a
// loaded box moves single passes by double-digit percentages).
const (
	gatewayBenchReaders = 4
	gatewayBenchPasses  = 5
)

// profileGateway measures end-to-end gateway frame throughput: a
// loopback gateway with gatewayBenchReaders concurrent readers all
// streaming the bench capture over TCP, each decoded in its own
// session on the shared worker fleet. Reported as frames/sec over the
// wall-clock of the whole round trip (connect through final flush), so
// it covers wire framing, admission, decode, and sink publication.
func profileGateway(net *lf.Network, ep *lf.Epoch) (float64, error) {
	dcfg := net.DecoderConfig()
	dcfg.CalibSamples = streamBenchCalib
	dcfg.CancellationRounds = -1
	readers := map[string]gate.LoopbackReader{}
	for i := 0; i < gatewayBenchReaders; i++ {
		readers[fmt.Sprintf("bench-%d", i)] = gate.LoopbackReader{
			Samples:    ep.Capture.Samples,
			SampleRate: ep.Capture.SampleRate,
			Nonce:      uint64(i + 1),
			Block:      streamBenchBlock,
		}
	}
	best := 0.0
	for pass := 0; pass < gatewayBenchPasses; pass++ {
		res, err := gate.Loopback(context.Background(), gate.Config{Decoder: dcfg}, readers)
		if err != nil {
			return 0, err
		}
		if res.FramesTotal == 0 {
			return 0, fmt.Errorf("gateway profile decoded no frames")
		}
		if res.FramesPerSec > best {
			best = res.FramesPerSec
		}
	}
	return best, nil
}

// writeCounter discards writes while counting them, so serialization
// benchmarks measure marshalling, not disk.
type writeCounter struct{ n int64 }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
