package main

// Machine-readable micro-benchmarks (-benchjson FILE). The suite
// measures the hot pipeline stages with testing.Benchmark so the
// numbers match `go test -bench` semantics (ns/op, B/op, allocs/op),
// then emits one JSON document that CI or a plotting script can diff
// across commits without scraping table output.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"lf"
	"lf/internal/edgedetect"
)

// benchResult is one benchmark's measurement.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// GoodputBps is the aggregate decoded goodput of the benchmarked
	// epoch (decode benchmarks only; 0 elsewhere).
	GoodputBps float64 `json:"goodput_bps,omitempty"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Seed       int64         `json:"seed"`
	Benchmarks []benchResult `json:"benchmarks"`
	// DecodeSpeedup is serial decode ns/op over parallel decode ns/op
	// on this machine. Meaningful only when GOMAXPROCS > 1.
	DecodeSpeedup float64 `json:"decode_speedup"`
}

// benchEpoch builds the fixed 8-tag epoch every decode benchmark runs
// against.
func benchEpoch(seed int64) (*lf.Network, *lf.Epoch, error) {
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        8,
		PayloadSeconds: 2e-3,
		Seed:           seed,
	})
	if err != nil {
		return nil, nil, err
	}
	ep, err := net.RunEpoch()
	if err != nil {
		return nil, nil, err
	}
	return net, ep, nil
}

// measure runs fn under testing.Benchmark with allocation tracking.
func measure(name string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// writeBenchJSON runs the suite and writes the report to path.
func writeBenchJSON(path string, seed int64) error {
	net, ep, err := benchEpoch(seed)
	if err != nil {
		return err
	}

	// Decoded once outside the timer to record the epoch's goodput.
	decodeAt := func(parallelism int) (*lf.Result, error) {
		cfg := net.DecoderConfig()
		cfg.Parallelism = parallelism
		dec, err := lf.NewDecoder(cfg)
		if err != nil {
			return nil, err
		}
		return dec.Decode(ep)
	}
	res, err := decodeAt(1)
	if err != nil {
		return err
	}
	goodput := lf.ScoreEpoch(ep, res).AggregateBps

	report := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
	}

	decodeBench := func(name string, parallelism int) benchResult {
		r := measure(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := decodeAt(parallelism); err != nil {
					b.Fatal(err)
				}
			}
		})
		r.GoodputBps = goodput
		return r
	}
	serial := decodeBench("decode/serial", 1)
	parallel := decodeBench("decode/parallel", 0)
	report.Benchmarks = append(report.Benchmarks, serial, parallel)
	if parallel.NsPerOp > 0 {
		report.DecodeSpeedup = serial.NsPerOp / parallel.NsPerOp
	}

	edgeBench := func(name string, parallelism int) benchResult {
		cfg := edgedetect.DefaultConfig()
		cfg.Parallelism = parallelism
		return measure(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				det, err := edgedetect.New(ep.Capture, cfg)
				if err != nil {
					b.Fatal(err)
				}
				det.Release()
			}
		})
	}
	report.Benchmarks = append(report.Benchmarks,
		edgeBench("edgedetect/serial", 1),
		edgeBench("edgedetect/parallel", 0))

	report.Benchmarks = append(report.Benchmarks, measure("synthesize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := net.RunEpoch(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	report.Benchmarks = append(report.Benchmarks, measure("capture/roundtrip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf writeCounter
			if _, err := ep.Capture.WriteTo(&buf); err != nil {
				b.Fatal(err)
			}
		}
	}))

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeCounter discards writes while counting them, so serialization
// benchmarks measure marshalling, not disk.
type writeCounter struct{ n int64 }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
