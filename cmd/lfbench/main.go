// Command lfbench regenerates the paper's evaluation tables and
// figures (§5) from the simulator and prints them as aligned text
// tables. By default it runs everything; -exp selects one experiment.
//
// Usage:
//
//	lfbench [-exp all|table1|fig1|fig2|fig4|fig5|fig8|fig9|fig10|fig11|fig12|table2|table3|fig13|fig14|sic|stages|ablation]
//	        [-seed N] [-epochs N] [-quick] [-workers N]
//	        [-benchjson FILE] [-benchguard BASELINE]
//	        [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"lf/internal/experiment"
)

type runner struct {
	name string
	run  func(experiment.Config) (*experiment.Result, error)
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig1, fig2, fig4, fig5, fig8, fig9, fig10, fig11, fig12, table2, table3, fig13, fig14, dynamics, reliable, streaming, sic, stages, robustness, dist, ablation)")
	seed := flag.Int64("seed", 1, "random seed")
	epochs := flag.Int("epochs", 3, "epochs per measured point")
	quick := flag.Bool("quick", false, "trim sweeps for a fast smoke run")
	format := flag.String("format", "table", "output format: table or csv")
	workers := flag.Int("workers", 0, "epoch-level parallelism (0 = all cores, 1 = serial); results are identical at any setting")
	benchJSON := flag.String("benchjson", "", "run the micro-benchmark suite and write machine-readable results to this file instead of experiments")
	benchGuard := flag.String("benchguard", "", "re-run the micro-benchmark suite and fail if the hot-path stages regressed >15% against this baseline JSON")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lfbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lfbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "lfbench: memprofile: %v\n", err)
			}
		}()
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "lfbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote benchmark results to %s\n", *benchJSON)
		return
	}
	if *benchGuard != "" {
		if err := runBenchGuard(*benchGuard, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "lfbench: benchguard: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiment.Config{Seed: *seed, Epochs: *epochs, Quick: *quick, Workers: *workers}
	runners := []runner{
		{"table1", experiment.Table1},
		{"fig1", experiment.Fig1},
		{"fig2", experiment.Fig2},
		{"fig4", experiment.Fig4},
		{"fig5", experiment.Fig5},
		{"fig8", experiment.Fig8},
		{"fig9", experiment.Fig9},
		{"fig10", experiment.Fig10},
		{"fig11", experiment.Fig11},
		{"fig12", experiment.Fig12},
		{"table2", experiment.Table2},
		{"table3", func(experiment.Config) (*experiment.Result, error) { return experiment.Table3Hardware(), nil }},
		{"fig13", experiment.Fig13},
		{"fig14", experiment.Fig14},
		{"dynamics", experiment.DynamicsRobustness},
		{"reliable", experiment.ReliableTransfer},
		{"streaming", experiment.Streaming},
		{"sic", experiment.SIC},
		{"stages", experiment.Stages},
		{"robustness", experiment.Robustness},
		{"dist", experiment.Dist},
		{"scalability", experiment.ScalabilityLowRate},
		{"capacity", experiment.CapacityModel},
		{"ablation", runAblations},
	}
	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		start := time.Now()
		res, err := r.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfbench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		if *format == "csv" {
			fmt.Printf("# %s\n%s\n", res.Table.Title, res.Table.CSV())
		} else {
			fmt.Println(res.Table.String())
			fmt.Printf("(%s in %.1fs)\n\n", r.name, time.Since(start).Seconds())
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "lfbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func runAblations(cfg experiment.Config) (*experiment.Result, error) {
	sep, err := experiment.AblationSeparation(cfg)
	if err != nil {
		return nil, err
	}
	reg, err := experiment.AblationRegistration(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Println(sep.Table.String())
	return reg, nil
}
