package lf_test

import (
	"fmt"
	"reflect"
	"testing"

	"lf"
	"lf/internal/fault"
)

// TestSparseSweepMatchesDense is the referee for the coarse-to-fine
// edge sweep (DESIGN.md §12): for fault-injected captures across every
// capture-level impairment kind, decoding with the sparse kernel must
// be byte-identical to decoding with ForceDenseSweep — through the
// batch path and through streaming at block sizes 1, 4096, and
// whole-capture. CalibSamples is set so the sparse path genuinely
// engages (the dense calibration prefix ends mid-capture).
func TestSparseSweepMatchesDense(t *testing.T) {
	blocks := func(n int) []int {
		if testing.Short() {
			return []int{4096}
		}
		return []int{1, 4096, n + 999}
	}
	for _, seed := range []int64{5, 11} {
		ep, cfg := buildEpoch(t, 4, seed)
		cfg.CalibSamples = 32768
		for _, kind := range fault.CaptureKinds() {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, kind), func(t *testing.T) {
				fc := fault.Config{Seed: seed + 100, Injectors: []fault.Injector{
					{Kind: kind, Severity: 0.5},
				}}
				impaired, err := fc.ApplyCapture(ep.Capture)
				if err != nil {
					t.Fatal(err)
				}
				ep2 := &lf.Epoch{Capture: impaired, Emissions: ep.Emissions, Config: ep.Config}

				dcfg := cfg
				dcfg.ForceDenseSweep = true
				dense := decodeWith(t, ep2, dcfg, 0)
				sparse := decodeWith(t, ep2, cfg, 0)
				if !reflect.DeepEqual(dense, sparse) {
					t.Fatal("sparse batch decode diverged from dense")
				}
				for _, block := range blocks(len(impaired.Samples)) {
					streamed := streamDecode(t, ep2, cfg, block)
					if !reflect.DeepEqual(dense, streamed) {
						t.Fatalf("sparse streaming decode at block=%d diverged from dense batch", block)
					}
				}
			})
		}
	}
}
