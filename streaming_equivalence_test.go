package lf_test

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"lf"
	"lf/internal/fault"
)

// streamDecode runs the streaming pipeline over an epoch's capture,
// pushed in fixed-size blocks.
func streamDecode(t *testing.T, ep *lf.Epoch, cfg lf.DecoderConfig, blockSize int) *lf.Result {
	t.Helper()
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	samples := ep.Capture.Samples
	for i := 0; i < len(samples); i += blockSize {
		end := min(i+blockSize, len(samples))
		if err := sd.Push(samples[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sd.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamingMatchesBatch pins the streaming pipeline's central
// contract: pushing a capture through StreamDecoder in blocks of any
// size — one sample at a time, mid-size blocks at awkward offsets, or
// a single block larger than the whole capture — produces a Result
// byte-identical to batch Decode with the same config. CalibSamples is
// set so the streaming path genuinely runs incrementally (calibrating,
// registering, walking, and committing frames mid-capture) rather than
// deferring everything to Flush.
func TestStreamingMatchesBatch(t *testing.T) {
	for _, tags := range []int{1, 4, 16} {
		for _, seed := range []int64{1, 7} {
			t.Run(fmt.Sprintf("tags=%d/seed=%d", tags, seed), func(t *testing.T) {
				ep, cfg := buildEpoch(t, tags, seed)
				cfg.CalibSamples = 32768
				batch := decodeWith(t, ep, cfg, 0)
				blocks := []int{1, 4096, 65536, len(ep.Capture.Samples) + 999}
				for _, block := range blocks {
					streamed := streamDecode(t, ep, cfg, block)
					if !reflect.DeepEqual(batch, streamed) {
						t.Fatalf("block=%d: streaming decode diverged from batch:\nbatch:    %+v\nstreamed: %+v", block, batch, streamed)
					}
				}
			})
		}
	}
}

// TestStreamingMatchesBatchDeferredCalibration covers the degenerate
// configuration: with CalibSamples = 0 the streaming decoder defers
// calibration (and hence the whole pipeline) to Flush, which must
// still reproduce the batch result exactly.
func TestStreamingMatchesBatchDeferredCalibration(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 42)
	batch := decodeWith(t, ep, cfg, 0)
	streamed := streamDecode(t, ep, cfg, 8192)
	if !reflect.DeepEqual(batch, streamed) {
		t.Fatal("deferred-calibration streaming decode diverged from batch")
	}
}

// TestStreamingMemoryBounded verifies the O(window) memory claim: a
// capture padded to >10x its useful length must decode with retained
// memory that (a) stops growing once the frames commit and the window
// starts sliding, and (b) stays far below what buffering the pushed
// samples would cost. Cancellation is disabled because SIC retains the
// raw capture by design; everything else runs at defaults. The frames
// must also surface through OnFrame long before Flush.
func TestStreamingMemoryBounded(t *testing.T) {
	// Serial and pipelined must both hold the O(window) bound; the
	// pipelined run additionally exercises the RetainedBytes
	// accounting for blocks buffered in the stage queues (the caller
	// runs far ahead of the detect stage, so the ingest queue sits at
	// its depth for most of the push loop). The sharded runs pin the
	// accounting with in-flight stripe buffers on top — alone and
	// combined with the stage queues — and check the shard pool's
	// workers all exit at Flush.
	t.Run("serial", func(t *testing.T) { testStreamingMemoryBounded(t, 0, 0, 0) })
	t.Run("pipelined", func(t *testing.T) { testStreamingMemoryBounded(t, 2, 4, 0) })
	t.Run("sharded", func(t *testing.T) { testStreamingMemoryBounded(t, 0, 0, 2) })
	t.Run("sharded+pipelined", func(t *testing.T) { testStreamingMemoryBounded(t, 2, 4, 2) })
}

func testStreamingMemoryBounded(t *testing.T, pipeline, stageDepth, shards int) {
	before := runtime.NumGoroutine()
	ep, cfg := buildEpoch(t, 2, 5)
	cfg.CalibSamples = 32768
	cfg.CancellationRounds = -1
	cfg.PipelineParallelism = pipeline
	cfg.StageDepth = stageDepth
	cfg.ShardParallelism = shards
	framesBeforeFlush := 0
	cfg.OnFrame = func(*lf.StreamResult) { framesBeforeFlush++ }

	base := ep.Capture.Samples
	const padFactor = 12
	padded := make([]complex128, len(base)*(1+padFactor))
	copy(padded, base)

	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	const block = 8192
	var peak, atDouble, atEnd int64
	for i := 0; i < len(padded); i += block {
		end := min(i+block, len(padded))
		if err := sd.Push(padded[i:end]); err != nil {
			t.Fatal(err)
		}
		if r := sd.RetainedBytes(); r > peak {
			peak = r
		}
		if atDouble == 0 && end >= 2*len(base) {
			atDouble = sd.RetainedBytes()
		}
	}
	atEnd = sd.RetainedBytes()
	if framesBeforeFlush == 0 {
		t.Fatal("no frames emitted before Flush on a streaming decode")
	}
	res, err := sd.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if framesBeforeFlush != len(res.Streams) {
		t.Fatalf("OnFrame fired %d times, result has %d streams", framesBeforeFlush, len(res.Streams))
	}

	pushedBytes := int64(len(padded)) * 16
	if peak >= pushedBytes/4 {
		t.Fatalf("peak retained memory %d B is not far below the %d B of pushed samples", peak, pushedBytes)
	}
	// Between 2x the useful capture and the end of the 13x padded tail,
	// the retained window must not keep growing with pushed length.
	if atEnd > atDouble+1<<20 {
		t.Fatalf("retained memory still growing in the tail: %d B at 2x capture, %d B at end", atDouble, atEnd)
	}
	// Stage and shard goroutines must all have exited with Flush.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before decode, %d after Flush", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// streamDecodeSamples is streamDecode over explicit samples, returning
// the Result together with the decode-class stats identity.
func streamDecodeSamples(t *testing.T, samples []complex128, cfg lf.DecoderConfig, blockSize int) (*lf.Result, string) {
	t.Helper()
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(samples); i += blockSize {
		end := min(i+blockSize, len(samples))
		if err := sd.Push(samples[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sd.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return res, sd.Stats().Identity()
}

// TestStageGraphMatchesSerial pins the stage graph's bit-identity
// contract across the full degradation surface: for a clean capture
// and one capture per fault kind, the pipelined decoder
// (PipelineParallelism=2) must produce byte-identical Results — frames,
// drops, and decode-class stats — to the serial streaming path, at
// every stage-queue depth and push block size. Queue depth and block
// size only reshape scheduling; any divergence means a stage read
// state it should not have.
func TestStageGraphMatchesSerial(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 11)
	cfg.CalibSamples = 32768

	cases := []struct {
		name    string
		samples []complex128
	}{{"clean", ep.Capture.Samples}}
	for i, k := range fault.CaptureKinds() {
		fc := fault.Config{Seed: int64(100 + i), Injectors: []fault.Injector{{Kind: k, Severity: 0.6}}}
		impaired, err := fc.ApplyCapture(ep.Capture)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, struct {
			name    string
			samples []complex128
		}{string(k), impaired.Samples})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serialCfg := cfg
			want, wantID := streamDecodeSamples(t, tc.samples, serialCfg, 4096)
			for _, depth := range []int{1, 4, 64} {
				for _, block := range []int{1, 4096, len(tc.samples) + 1} {
					if block == 1 && depth != 4 {
						// Single-sample pushes exercise the per-token
						// machinery; one depth is enough at that cost.
						continue
					}
					pcfg := cfg
					pcfg.PipelineParallelism = 2
					pcfg.StageDepth = depth
					got, gotID := streamDecodeSamples(t, tc.samples, pcfg, block)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("depth=%d block=%d: stage graph diverged from serial:\nserial:    %+v\npipelined: %+v",
							depth, block, want, got)
					}
					if wantID != gotID {
						t.Fatalf("depth=%d block=%d: decode-class stats diverged:\nserial:\n%s\npipelined:\n%s",
							depth, block, wantID, gotID)
					}
				}
			}
		})
	}
}

// TestStageGraphShutdown pins the lifecycle edges of the pipelined
// decoder: stage goroutines must all exit after Flush (no leaks), a
// second Flush returns the same Result, and Push after Flush fails
// cleanly instead of deadlocking against closed queues.
func TestStageGraphShutdown(t *testing.T) {
	ep, cfg := buildEpoch(t, 2, 3)
	cfg.CalibSamples = 32768
	cfg.PipelineParallelism = 2
	before := runtime.NumGoroutine()

	var last *lf.Result
	for i := 0; i < 4; i++ {
		dec, err := lf.NewDecoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := dec.NewStream()
		if err != nil {
			t.Fatal(err)
		}
		samples := ep.Capture.Samples
		for j := 0; j < len(samples); j += 4096 {
			if err := sd.Push(samples[j:min(j+4096, len(samples))]); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sd.Flush()
		if err != nil {
			t.Fatal(err)
		}
		again, err := sd.Flush()
		if err != nil || again != res {
			t.Fatalf("second Flush = (%p, %v), want the same Result", again, err)
		}
		if err := sd.Push(samples[:16]); err == nil {
			t.Fatal("Push after Flush succeeded on the pipelined path")
		}
		last = res
	}
	if last == nil || len(last.Streams) == 0 {
		t.Fatal("pipelined decode found no streams")
	}
	// The stage goroutines exit as part of Flush's join, so the count
	// must settle back; allow the runtime a moment for exits to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after pipelined decodes", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStageGraphConcurrentPolling drives the pipelined decoder while a
// second goroutine hammers Stats and RetainedBytes — the observability
// endpoints documented as safe for concurrent polling. Run under
// -race this pins that every cross-stage touch point is atomic.
func TestStageGraphConcurrentPolling(t *testing.T) {
	ep, cfg := buildEpoch(t, 2, 7)
	cfg.CalibSamples = 32768
	cfg.PipelineParallelism = 2
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = sd.RetainedBytes()
				_ = sd.Stats()
			}
		}
	}()
	samples := ep.Capture.Samples
	for i := 0; i < len(samples); i += 1024 {
		if err := sd.Push(samples[i:min(i+1024, len(samples))]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sd.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}
