package lf_test

import (
	"fmt"
	"reflect"
	"testing"

	"lf"
)

// streamDecode runs the streaming pipeline over an epoch's capture,
// pushed in fixed-size blocks.
func streamDecode(t *testing.T, ep *lf.Epoch, cfg lf.DecoderConfig, blockSize int) *lf.Result {
	t.Helper()
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	samples := ep.Capture.Samples
	for i := 0; i < len(samples); i += blockSize {
		end := min(i+blockSize, len(samples))
		if err := sd.Push(samples[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sd.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamingMatchesBatch pins the streaming pipeline's central
// contract: pushing a capture through StreamDecoder in blocks of any
// size — one sample at a time, mid-size blocks at awkward offsets, or
// a single block larger than the whole capture — produces a Result
// byte-identical to batch Decode with the same config. CalibSamples is
// set so the streaming path genuinely runs incrementally (calibrating,
// registering, walking, and committing frames mid-capture) rather than
// deferring everything to Flush.
func TestStreamingMatchesBatch(t *testing.T) {
	for _, tags := range []int{1, 4, 16} {
		for _, seed := range []int64{1, 7} {
			t.Run(fmt.Sprintf("tags=%d/seed=%d", tags, seed), func(t *testing.T) {
				ep, cfg := buildEpoch(t, tags, seed)
				cfg.CalibSamples = 32768
				batch := decodeWith(t, ep, cfg, 0)
				blocks := []int{1, 4096, 65536, len(ep.Capture.Samples) + 999}
				for _, block := range blocks {
					streamed := streamDecode(t, ep, cfg, block)
					if !reflect.DeepEqual(batch, streamed) {
						t.Fatalf("block=%d: streaming decode diverged from batch:\nbatch:    %+v\nstreamed: %+v", block, batch, streamed)
					}
				}
			})
		}
	}
}

// TestStreamingMatchesBatchDeferredCalibration covers the degenerate
// configuration: with CalibSamples = 0 the streaming decoder defers
// calibration (and hence the whole pipeline) to Flush, which must
// still reproduce the batch result exactly.
func TestStreamingMatchesBatchDeferredCalibration(t *testing.T) {
	ep, cfg := buildEpoch(t, 4, 42)
	batch := decodeWith(t, ep, cfg, 0)
	streamed := streamDecode(t, ep, cfg, 8192)
	if !reflect.DeepEqual(batch, streamed) {
		t.Fatal("deferred-calibration streaming decode diverged from batch")
	}
}

// TestStreamingMemoryBounded verifies the O(window) memory claim: a
// capture padded to >10x its useful length must decode with retained
// memory that (a) stops growing once the frames commit and the window
// starts sliding, and (b) stays far below what buffering the pushed
// samples would cost. Cancellation is disabled because SIC retains the
// raw capture by design; everything else runs at defaults. The frames
// must also surface through OnFrame long before Flush.
func TestStreamingMemoryBounded(t *testing.T) {
	ep, cfg := buildEpoch(t, 2, 5)
	cfg.CalibSamples = 32768
	cfg.CancellationRounds = -1
	framesBeforeFlush := 0
	cfg.OnFrame = func(*lf.StreamResult) { framesBeforeFlush++ }

	base := ep.Capture.Samples
	const padFactor = 12
	padded := make([]complex128, len(base)*(1+padFactor))
	copy(padded, base)

	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	const block = 8192
	var peak, atDouble, atEnd int64
	for i := 0; i < len(padded); i += block {
		end := min(i+block, len(padded))
		if err := sd.Push(padded[i:end]); err != nil {
			t.Fatal(err)
		}
		if r := sd.RetainedBytes(); r > peak {
			peak = r
		}
		if atDouble == 0 && end >= 2*len(base) {
			atDouble = sd.RetainedBytes()
		}
	}
	atEnd = sd.RetainedBytes()
	if framesBeforeFlush == 0 {
		t.Fatal("no frames emitted before Flush on a streaming decode")
	}
	res, err := sd.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if framesBeforeFlush != len(res.Streams) {
		t.Fatalf("OnFrame fired %d times, result has %d streams", framesBeforeFlush, len(res.Streams))
	}

	pushedBytes := int64(len(padded)) * 16
	if peak >= pushedBytes/4 {
		t.Fatalf("peak retained memory %d B is not far below the %d B of pushed samples", peak, pushedBytes)
	}
	// Between 2x the useful capture and the end of the 13x padded tail,
	// the retained window must not keep growing with pushed length.
	if atEnd > atDouble+1<<20 {
		t.Fatalf("retained memory still growing in the tail: %d B at 2x capture, %d B at end", atDouble, atEnd)
	}
}
