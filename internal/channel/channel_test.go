package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"lf/internal/rng"
)

func TestReceivedPowerFallsWithDistance(t *testing.T) {
	p := DefaultParams()
	prev := math.Inf(1)
	for _, d := range []float64{1, 2, 4, 8} {
		pw := p.ReceivedPower(DefaultGeometry(d))
		if pw >= prev {
			t.Fatalf("power did not fall with distance at %v m", d)
		}
		prev = pw
	}
}

func TestReceivedPowerFourthLaw(t *testing.T) {
	// Radar equation: doubling distance drops power by 16×.
	p := DefaultParams()
	p1 := p.ReceivedPower(DefaultGeometry(1))
	p2 := p.ReceivedPower(DefaultGeometry(2))
	if ratio := p1 / p2; math.Abs(ratio-16) > 1e-9 {
		t.Fatalf("P(1m)/P(2m) = %v, want 16", ratio)
	}
}

func TestCoefficientMagnitude(t *testing.T) {
	p := DefaultParams()
	g := DefaultGeometry(2)
	h := p.Coefficient(g)
	want := math.Sqrt(p.ReceivedPower(g))
	if math.Abs(cmplx.Abs(h)-want) > 1e-15 {
		t.Fatalf("|h| = %v, want %v", cmplx.Abs(h), want)
	}
}

func TestCoefficientOrientationRotates(t *testing.T) {
	p := DefaultParams()
	g := DefaultGeometry(2)
	h0 := p.Coefficient(g)
	g.OrientationRad = math.Pi / 2
	h90 := p.Coefficient(g)
	phase := cmplx.Phase(h90) - cmplx.Phase(h0)
	for phase < 0 {
		phase += 2 * math.Pi
	}
	if math.Abs(phase-math.Pi/2) > 1e-9 {
		t.Fatalf("orientation shifted phase by %v, want π/2", phase)
	}
}

func TestCombineLinearity(t *testing.T) {
	p := DefaultParams()
	p.NoiseSigma2 = 0
	coeffs := []complex128{1 + 2i, 3 - 1i, -2 + 0.5i}
	m := NewModelFromCoeffs(p, coeffs, nil)
	got, err := m.Combine([]byte{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := p.EnvReflection + coeffs[0] + coeffs[2]
	if cmplx.Abs(got-want) > 1e-12 {
		t.Fatalf("Combine = %v, want %v", got, want)
	}
}

func TestCombineMismatchError(t *testing.T) {
	m := NewModelFromCoeffs(DefaultParams(), []complex128{1}, nil)
	if _, err := m.Combine([]byte{1, 0}); err == nil {
		t.Fatal("Combine with wrong state count should return an error")
	}
}

func TestNoiseZeroWhenDisabled(t *testing.T) {
	p := DefaultParams()
	p.NoiseSigma2 = 0
	m := NewModelFromCoeffs(p, []complex128{1}, rng.New(1))
	if m.Noise() != 0 {
		t.Fatal("noise should be 0 with zero variance")
	}
	m2 := NewModelFromCoeffs(DefaultParams(), []complex128{1}, nil)
	if m2.Noise() != 0 {
		t.Fatal("noise should be 0 without a source")
	}
}

func TestNoiseVariance(t *testing.T) {
	p := DefaultParams()
	p.NoiseSigma2 = 1e-6
	m := NewModelFromCoeffs(p, []complex128{1}, rng.New(5))
	var total float64
	n := 20000
	for i := 0; i < n; i++ {
		v := m.Noise()
		total += real(v)*real(v) + imag(v)*imag(v)
	}
	got := total / float64(n)
	if got < 0.9e-6 || got > 1.1e-6 {
		t.Fatalf("noise variance %v, want ~1e-6", got)
	}
}

func TestMinPairSeparation(t *testing.T) {
	p := DefaultParams()
	m := NewModelFromCoeffs(p, []complex128{1, 1.05, -3}, nil)
	// Closest pair under ± is 1 vs 1.05.
	if got := m.MinPairSeparation(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("min separation %v, want 0.05", got)
	}
}

func TestPlaceRing(t *testing.T) {
	src := rng.New(3)
	geoms := PlaceRing(16, 2, src)
	if len(geoms) != 16 {
		t.Fatalf("got %d geometries", len(geoms))
	}
	for i, g := range geoms {
		if g.Distance < 1.4 || g.Distance > 2.6 {
			t.Fatalf("geometry %d distance %v outside jitter range", i, g.Distance)
		}
	}
	// Distinct placements must give distinct coefficients.
	p := DefaultParams()
	h0 := p.Coefficient(geoms[0])
	h1 := p.Coefficient(geoms[1])
	if cmplx.Abs(h0-h1) < 1e-9 {
		t.Fatal("ring placements produced identical coefficients")
	}
}

func TestWavelength(t *testing.T) {
	p := DefaultParams()
	lambda := p.Wavelength()
	if lambda < 0.32 || lambda > 0.34 {
		t.Fatalf("915 MHz wavelength %v m, want ~0.3276", lambda)
	}
}
