// Package channel models the over-the-air path between backscatter tags
// and the reader: the radar-equation link budget that sets each tag's
// reflection amplitude, the complex channel coefficient that placement
// and orientation induce, the static environment reflection, and the
// additive thermal noise. It stands in for the paper's physical testbed
// (USRP N210 + UMass Moo tags at ~2 m).
package channel

import (
	"fmt"
	"math"
	"math/cmplx"

	"lf/internal/rng"
)

// SpeedOfLight in metres per second.
const SpeedOfLight = 299792458.0

// Geometry describes a tag's physical placement relative to the reader,
// the inputs to the radar-equation link budget of §5.4:
//
//	Pr = Pt · Gt² · (λ/4πd)⁴ · Gtag² · K
type Geometry struct {
	// Distance from reader antenna to tag, metres.
	Distance float64
	// ReaderGain Gt, linear.
	ReaderGain float64
	// TagGain Gtag, linear.
	TagGain float64
	// ModulationLoss K, linear (the fraction of incident power the
	// tag's antenna state change actually modulates).
	ModulationLoss float64
	// OrientationRad rotates the reflection phase; placement and
	// antenna orientation determine where the edge vector points in
	// the IQ plane.
	OrientationRad float64
}

// DefaultGeometry returns the paper's nominal deployment point: a tag
// roughly two metres from the reader with modest antenna gains.
func DefaultGeometry(distance float64) Geometry {
	return Geometry{
		Distance:       distance,
		ReaderGain:     6.0, // ~8 dBi patch (Cushcraft S9028)
		TagGain:        1.6, // ~2 dBi dipole
		ModulationLoss: 0.25,
	}
}

// Params configures the channel model.
type Params struct {
	// CarrierHz is the carrier frequency (915 MHz band in the paper).
	CarrierHz float64
	// TxPowerW is the reader transmit power in watts.
	TxPowerW float64
	// EnvReflection is the static environment reflection added to the
	// received baseband (an IQ offset; it shifts clusters but does not
	// change edge differentials).
	EnvReflection complex128
	// NoiseSigma2 is the complex noise variance at the reader.
	NoiseSigma2 float64
}

// DefaultParams returns a channel parameterization matching the paper's
// setup: 915 MHz, moderate reader power, and a noise floor that puts a
// 2 m tag comfortably above the Fig. 14 zero-BER knee.
func DefaultParams() Params {
	return Params{
		CarrierHz:     915e6,
		TxPowerW:      1.0,
		EnvReflection: complex(0.35, -0.18),
		NoiseSigma2:   2.5e-9,
	}
}

// Wavelength returns λ for the configured carrier.
func (p Params) Wavelength() float64 { return SpeedOfLight / p.CarrierHz }

// ReceivedPower evaluates the radar equation for geometry g and returns
// the backscattered power at the reader in watts.
func (p Params) ReceivedPower(g Geometry) float64 {
	lam := p.Wavelength()
	path := lam / (4 * math.Pi * g.Distance)
	return p.TxPowerW * g.ReaderGain * g.ReaderGain *
		math.Pow(path, 4) * g.TagGain * g.TagGain * g.ModulationLoss
}

// Coefficient returns the complex channel coefficient h for geometry g:
// the amplitude follows the radar equation (amplitude = √power) and the
// phase combines the two-way propagation delay with the tag's
// orientation. Toggling the tag's antenna state adds/removes h from the
// received baseband.
func (p Params) Coefficient(g Geometry) complex128 {
	amp := math.Sqrt(p.ReceivedPower(g))
	lam := p.Wavelength()
	phase := -4*math.Pi*g.Distance/lam + g.OrientationRad
	return cmplx.Rect(amp, phase)
}

// Model is the instantiated channel for one experiment: per-tag
// coefficients plus environment and noise. The reader synthesizes
// S(t) = Env + Σⱼ hⱼ·sⱼ(t) + n(t) from it (the paper's Eq. 2 plus the
// environment term of §2.3).
type Model struct {
	Params Params
	// Coeffs[j] is tag j's channel coefficient.
	Coeffs []complex128
	noise  *rng.Source
}

// NewModel builds a channel with one coefficient per geometry. noise
// seeds the AWGN stream.
func NewModel(p Params, geoms []Geometry, noise *rng.Source) *Model {
	m := &Model{Params: p, Coeffs: make([]complex128, len(geoms)), noise: noise}
	for i, g := range geoms {
		m.Coeffs[i] = p.Coefficient(g)
	}
	return m
}

// NewModelFromCoeffs builds a channel directly from coefficients,
// bypassing the link budget (used by tests and by experiments that
// sweep SNR directly).
func NewModelFromCoeffs(p Params, coeffs []complex128, noise *rng.Source) *Model {
	cp := make([]complex128, len(coeffs))
	copy(cp, coeffs)
	return &Model{Params: p, Coeffs: cp, noise: noise}
}

// Noise returns one complex AWGN draw with the configured variance.
func (m *Model) Noise() complex128 {
	if m.noise == nil || m.Params.NoiseSigma2 <= 0 {
		return 0
	}
	return m.noise.ComplexNorm(m.Params.NoiseSigma2)
}

// Combine evaluates the received baseband sample for the given per-tag
// antenna states (states[j] ∈ {0,1}) including environment and noise.
// A state count that does not match the coefficient set is a caller
// bug, reported as an error rather than a panic so simulation drivers
// can degrade gracefully.
func (m *Model) Combine(states []byte) (complex128, error) {
	if len(states) != len(m.Coeffs) {
		return 0, fmt.Errorf("channel: %d states for %d coefficients", len(states), len(m.Coeffs))
	}
	s := m.Params.EnvReflection
	for j, st := range states {
		if st != 0 {
			s += m.Coeffs[j]
		}
	}
	return s + m.Noise(), nil
}

// MinPairSeparation returns the smallest |hᵢ ± hⱼ| distance over all
// coefficient pairs — a lower bound on how separable two colliding
// tags' clusters are in the IQ plane.
func (m *Model) MinPairSeparation() float64 {
	min := math.Inf(1)
	for i := 0; i < len(m.Coeffs); i++ {
		for j := i + 1; j < len(m.Coeffs); j++ {
			d1 := cmplx.Abs(m.Coeffs[i] - m.Coeffs[j])
			d2 := cmplx.Abs(m.Coeffs[i] + m.Coeffs[j])
			if d1 < min {
				min = d1
			}
			if d2 < min {
				min = d2
			}
		}
	}
	return min
}

// PlaceRing returns n geometries spread around the reader at the given
// base distance with per-tag jitter in distance and orientation —
// the "sixteen tags at different locations roughly two metres from the
// reader" deployment of §5.1.
func PlaceRing(n int, baseDistance float64, src *rng.Source) []Geometry {
	geoms := make([]Geometry, n)
	for i := range geoms {
		g := DefaultGeometry(baseDistance * src.Tolerance(0.25))
		g.OrientationRad = src.Phase()
		g.ModulationLoss *= src.Tolerance(0.3)
		geoms[i] = g
	}
	return geoms
}
