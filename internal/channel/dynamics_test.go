package channel

import (
	"testing"

	"lf/internal/rng"
)

func TestPeopleMovementTrace(t *testing.T) {
	cfg := DefaultDynamicsConfig()
	tr := PeopleMovement(cfg, rng.New(1))
	if len(tr.T) != int(cfg.Duration*cfg.Rate) {
		t.Fatalf("trace length %d", len(tr.T))
	}
	if tr.T[len(tr.T)-1] <= tr.T[0] {
		t.Fatal("time axis not increasing")
	}
	// The walker's crossing must produce visible signal variation.
	if tr.Swing() < 0.05 {
		t.Fatalf("people-movement swing %v too small", tr.Swing())
	}
}

func TestTagRotationSweepsAmplitude(t *testing.T) {
	tr := TagRotation(DefaultDynamicsConfig(), rng.New(2))
	if tr.Swing() < 0.2 {
		t.Fatalf("rotation swing %v, want polarization nulls", tr.Swing())
	}
}

func TestCoupledPairStepsAtApproach(t *testing.T) {
	cfg := DefaultDynamicsConfig()
	approach := cfg.Duration * 0.5
	a, b := CoupledPair(cfg, approach, rng.New(3))
	// Before the approach both coefficients are essentially steady.
	idxBefore := int(cfg.Rate * approach * 0.9)
	var preSwing float64
	for i := 1; i < idxBefore; i++ {
		d := a.V[i] - a.V[0]
		if m := real(d)*real(d) + imag(d)*imag(d); m > preSwing {
			preSwing = m
		}
	}
	// After full approach the mutual coupling shifts coefficient A.
	last := a.V[len(a.V)-1] - a.V[0]
	post := real(last)*real(last) + imag(last)*imag(last)
	if post < 10*preSwing {
		t.Fatalf("coupling shift %v not dominant over pre-approach wobble %v", post, preSwing)
	}
	if len(b.V) != len(a.V) {
		t.Fatal("pair traces must have equal length")
	}
}

func TestIQAccessors(t *testing.T) {
	tr := &Trace{T: []float64{0, 1}, V: []complex128{1 + 2i, 3 + 4i}}
	i, q := tr.I(), tr.Q()
	if i[0] != 1 || i[1] != 3 || q[0] != 2 || q[1] != 4 {
		t.Fatalf("I/Q = %v %v", i, q)
	}
}

func TestSwingEmpty(t *testing.T) {
	if (&Trace{}).Swing() != 0 {
		t.Fatal("empty trace swing should be 0")
	}
}

func TestCoefficientDrift(t *testing.T) {
	out := CoefficientDrift(2+1i, 0.1, 50, rng.New(4))
	if len(out) != 50 {
		t.Fatalf("drift length %d", len(out))
	}
	// Drift stays in the neighbourhood of h for a modest scale.
	for i, v := range out {
		d := v - (2 + 1i)
		if real(d)*real(d)+imag(d)*imag(d) > 4 {
			t.Fatalf("drift step %d wandered too far: %v", i, v)
		}
	}
}
