package channel

import (
	"math"
	"math/cmplx"

	"lf/internal/rng"
)

// Trace is a time series of a received complex baseband value, used to
// reproduce the channel-dynamics measurements of Fig. 1. T[i] is in
// seconds; V[i] is the corresponding I/Q value.
type Trace struct {
	T []float64
	V []complex128
}

// I returns the in-phase component series.
func (tr *Trace) I() []float64 {
	out := make([]float64, len(tr.V))
	for i, v := range tr.V {
		out[i] = real(v)
	}
	return out
}

// Q returns the quadrature component series.
func (tr *Trace) Q() []float64 {
	out := make([]float64, len(tr.V))
	for i, v := range tr.V {
		out[i] = imag(v)
	}
	return out
}

// Swing returns the peak-to-peak excursion of the trace magnitude — the
// summary statistic the experiments use to compare dynamic scenarios.
func (tr *Trace) Swing() float64 {
	if len(tr.V) == 0 {
		return 0
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range tr.V {
		m := cmplx.Abs(v)
		if m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	return max - min
}

// DynamicsConfig parameterizes the Fig. 1 trace generators.
type DynamicsConfig struct {
	// Duration of the trace in seconds (Fig. 1 shows 12 s).
	Duration float64
	// Rate is the trace sample rate in Hz (coefficients move on human
	// timescales, so ~100 Hz is plenty).
	Rate float64
	// Base is the quiescent received value (environment + tag
	// reflection with the tag mid-toggle).
	Base complex128
}

// DefaultDynamicsConfig matches Fig. 1's 12-second window.
func DefaultDynamicsConfig() DynamicsConfig {
	return DynamicsConfig{Duration: 12, Rate: 100, Base: complex(0.2, 0.1)}
}

// ouStep advances an Ornstein-Uhlenbeck process: mean-reverting noise
// with rate theta, volatility sigma, step dt.
func ouStep(x, theta, sigma, dt float64, src *rng.Source) float64 {
	return x - theta*x*dt + sigma*math.Sqrt(dt)*src.Norm(0, 1)
}

// PeopleMovement generates the Fig. 1(a) scenario: the tag is
// stationary but a person walks around the room, so multipath
// components fade in and out. Modeled as the base value plus a slow
// mean-reverting complex walk with occasional deep shadowing events.
func PeopleMovement(cfg DynamicsConfig, src *rng.Source) *Trace {
	n := int(cfg.Duration * cfg.Rate)
	tr := &Trace{T: make([]float64, n), V: make([]complex128, n)}
	dt := 1 / cfg.Rate
	var wi, wq float64
	// Shadowing: the walker periodically crosses the dominant path.
	crossAt := cfg.Duration * src.Uniform(0.25, 0.55)
	crossLen := src.Uniform(1.0, 2.5)
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		wi = ouStep(wi, 0.8, 0.25, dt, src)
		wq = ouStep(wq, 0.8, 0.25, dt, src)
		v := cfg.Base + complex(wi, wq)
		if t > crossAt && t < crossAt+crossLen {
			// Body blockage: strong attenuation plus phase pull.
			frac := math.Sin(math.Pi * (t - crossAt) / crossLen)
			v *= complex(1-0.7*frac, -0.3*frac)
		}
		tr.T[i] = t
		tr.V[i] = v
	}
	return tr
}

// TagRotation generates the Fig. 1(b) scenario: the tag is rotated in
// place without displacement. Rotation sweeps the polarization
// mismatch, so the reflection amplitude follows |cos| of the rotation
// angle while the phase advances with it.
func TagRotation(cfg DynamicsConfig, src *rng.Source) *Trace {
	n := int(cfg.Duration * cfg.Rate)
	tr := &Trace{T: make([]float64, n), V: make([]complex128, n)}
	dt := 1 / cfg.Rate
	// Rotation speed wobbles — a human hand, not a motor.
	omega := src.Uniform(0.6, 1.2) // rad/s nominal
	var angle float64
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		angle += omega * dt * src.Tolerance(0.15)
		polar := math.Abs(math.Cos(angle))
		refl := cmplx.Rect(0.5*polar+0.05, angle/2)
		tr.T[i] = t
		tr.V[i] = cfg.Base + refl + src.ComplexNorm(1e-4)
	}
	return tr
}

// CoupledPair generates the Fig. 1(c) scenario for two tags: both
// coefficients are steady while the tags are ~1 m apart; when they are
// brought within coupling range (~5 cm) near-field coupling across
// their antennas perturbs both coefficients. approachAt is the time the
// tags start moving together, in seconds.
func CoupledPair(cfg DynamicsConfig, approachAt float64, src *rng.Source) (a, b *Trace) {
	n := int(cfg.Duration * cfg.Rate)
	a = &Trace{T: make([]float64, n), V: make([]complex128, n)}
	b = &Trace{T: make([]float64, n), V: make([]complex128, n)}
	dt := 1 / cfg.Rate
	baseA := cfg.Base + complex(0.12, -0.04)
	baseB := cfg.Base + complex(-0.06, 0.10)
	// Distance profile: 1 m until approachAt, then a smooth approach to
	// 5 cm over two seconds, then held.
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		dist := 1.0
		if t > approachAt {
			prog := math.Min((t-approachAt)/2.0, 1.0)
			dist = 1.0 - 0.95*prog
		}
		// Near-field coupling strength falls off steeply with distance;
		// negligible beyond ~20 cm.
		coup := math.Exp(-dist/0.05) * 0.35
		mutual := cmplx.Rect(coup, 2*math.Pi*dist/0.33)
		a.T[i], b.T[i] = t, t
		a.V[i] = baseA + mutual + src.ComplexNorm(4e-5)
		b.V[i] = baseB + mutual*complex(0.8, -0.2) + src.ComplexNorm(4e-5)
	}
	return a, b
}

// CoefficientDrift applies a slow complex drift to a coefficient over
// an epoch, for failure-injection tests: h(t) = h·(1 + scale·walk(t)).
func CoefficientDrift(h complex128, scale float64, steps int, src *rng.Source) []complex128 {
	out := make([]complex128, steps)
	var wi, wq float64
	dt := 1.0 / float64(steps)
	for i := 0; i < steps; i++ {
		wi = ouStep(wi, 1.0, 1.0, dt, src)
		wq = ouStep(wq, 1.0, 1.0, dt, src)
		out[i] = h * (1 + complex(scale*wi, scale*wq))
	}
	return out
}
