package fault

import (
	"math"
	"math/cmplx"
	"reflect"
	"testing"

	"lf/internal/iq"
	"lf/internal/rng"
	"lf/internal/tag"
)

func testCapture(n int) *iq.Capture {
	src := rng.New(7)
	samples := make([]complex128, n)
	for i := range samples {
		samples[i] = complex(1e-3, 0) + src.ComplexNorm(1e-9)
	}
	return &iq.Capture{SampleRate: 1e6, Samples: samples}
}

func allInjectors(sev float64) []Injector {
	var injs []Injector
	for _, k := range CaptureKinds() {
		injs = append(injs, Injector{Kind: k, Severity: sev})
	}
	return injs
}

// TestApplyCaptureDeterministic pins the core contract: the same seed
// and injector list produce a byte-identical impaired capture, and the
// original capture is never mutated.
func TestApplyCaptureDeterministic(t *testing.T) {
	cap1 := testCapture(20000)
	orig := append([]complex128(nil), cap1.Samples...)
	cfg := Config{Seed: 42, RefAmp: 1e-4, Injectors: allInjectors(0.6)}
	a, err := cfg.ApplyCapture(cap1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, cap1.Samples) {
		t.Fatal("ApplyCapture mutated the input capture")
	}
	b, err := cfg.ApplyCapture(cap1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		va, vb := a.Samples[i], b.Samples[i]
		if va != vb && !(cmplx.IsNaN(va) && cmplx.IsNaN(vb)) {
			t.Fatalf("sample %d differs: %v vs %v", i, va, vb)
		}
	}
	// A different seed must actually change something.
	c, err := Config{Seed: 43, RefAmp: 1e-4, Injectors: allInjectors(0.6)}.ApplyCapture(cap1)
	if err != nil {
		t.Fatal(err)
	}
	same := len(c.Samples) == len(a.Samples)
	if same {
		for i := range a.Samples {
			if a.Samples[i] != c.Samples[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical impairments")
	}
}

// TestApplierBlockIndependence pins positional determinism: impairing
// the capture in blocks of any size yields the bytes of the one-shot
// batch pass, including the stateful repeat/hold and truncation ops.
func TestApplierBlockIndependence(t *testing.T) {
	capt := testCapture(15000)
	cfg := Config{Seed: 9, RefAmp: 1e-4, Injectors: allInjectors(0.7)}
	plan, err := cfg.PlanCapture(int64(len(capt.Samples)), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ops() == 0 {
		t.Fatal("plan compiled no ops at severity 0.7")
	}
	batch := append([]complex128(nil), capt.Samples...)
	batch = plan.NewApplier().Apply(batch)

	for _, block := range []int{1, 7, 333, 4096} {
		out := make([]complex128, 0, len(capt.Samples))
		ap := plan.NewApplier()
		for lo := 0; lo < len(capt.Samples); lo += block {
			hi := min(lo+block, len(capt.Samples))
			chunk := append([]complex128(nil), capt.Samples[lo:hi]...)
			out = append(out, ap.Apply(chunk)...)
		}
		if len(out) != len(batch) {
			t.Fatalf("block %d: length %d vs batch %d", block, len(out), len(batch))
		}
		for i := range out {
			va, vb := out[i], batch[i]
			if va != vb && !(cmplx.IsNaN(va) && cmplx.IsNaN(vb)) {
				t.Fatalf("block %d: sample %d differs: %v vs %v", block, i, va, vb)
			}
		}
	}
}

// TestTruncate verifies the truncation op cuts the capture and that
// severity scales the cut.
func TestTruncate(t *testing.T) {
	capt := testCapture(10000)
	mild, err := Config{Seed: 1, RefAmp: 1e-4, Injectors: []Injector{{Truncate, 0.2}}}.ApplyCapture(capt)
	if err != nil {
		t.Fatal(err)
	}
	harsh, err := Config{Seed: 1, RefAmp: 1e-4, Injectors: []Injector{{Truncate, 1}}}.ApplyCapture(capt)
	if err != nil {
		t.Fatal(err)
	}
	if len(mild.Samples) >= len(capt.Samples) || len(harsh.Samples) >= len(mild.Samples) {
		t.Fatalf("truncation not monotone in severity: %d, %d, %d",
			len(capt.Samples), len(mild.Samples), len(harsh.Samples))
	}
	if len(harsh.Samples) != len(capt.Samples)/2 {
		t.Fatalf("severity 1 should cut half: kept %d of %d", len(harsh.Samples), len(capt.Samples))
	}
}

// TestNonFiniteInjection verifies NaN/Inf samples actually land.
func TestNonFiniteInjection(t *testing.T) {
	capt := testCapture(10000)
	out, err := Config{Seed: 3, RefAmp: 1e-4, Injectors: []Injector{{NonFinite, 1}}}.ApplyCapture(capt)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, v := range out.Samples {
		if cmplx.IsNaN(v) || cmplx.IsInf(v) {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("nonfinite injector produced no non-finite samples")
	}
}

// TestSeverityZeroIsIdentity: a zero-severity injector is a no-op.
func TestSeverityZeroIsIdentity(t *testing.T) {
	capt := testCapture(5000)
	out, err := Config{Seed: 5, RefAmp: 1e-4, Injectors: allInjectors(0)}.ApplyCapture(capt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Samples, capt.Samples) {
		t.Fatal("severity 0 changed the capture")
	}
}

func TestParseSpec(t *testing.T) {
	injs, err := ParseSpec("burst:0.5, dropout:0.25,truncate")
	if err != nil {
		t.Fatal(err)
	}
	want := []Injector{{BurstNoise, 0.5}, {Dropout, 0.25}, {Truncate, 0.5}}
	if !reflect.DeepEqual(injs, want) {
		t.Fatalf("got %v want %v", injs, want)
	}
	for _, bad := range []string{"bogus:0.5", "burst:2", "burst:x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

// TestApplyEmissions pins determinism and the death/drift semantics of
// the tag-level injectors.
func TestApplyEmissions(t *testing.T) {
	src := rng.New(11)
	var ems []*tag.Emission
	for i := 0; i < 6; i++ {
		tc := tag.Config{ID: i, BitRate: 100e3, ClockPPM: 150,
			Comparator: tag.DefaultComparator(), Payload: src.Bits(64)}
		ems = append(ems, tag.Emit(tc, src))
	}
	cfg := Config{Seed: 21, Injectors: []Injector{{ClockDrift, 1}, {TagDeath, 1}}}
	a, err := cfg.ApplyEmissions(ems)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.ApplyEmissions(ems)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ApplyEmissions not deterministic")
	}
	drifted, died := false, false
	for i, em := range a {
		if em.BitPeriod != ems[i].BitPeriod {
			drifted = true
			// Drift must stay within the ±2000 ppm severity-1 bound.
			if r := math.Abs(em.BitPeriod/ems[i].BitPeriod - 1); r > 2100e-6 {
				t.Fatalf("tag %d drift ratio %v beyond bound", i, r)
			}
		}
		if len(em.Toggles) < len(ems[i].Toggles) {
			died = true
		}
		if !reflect.DeepEqual(em.Bits, ems[i].Bits) {
			t.Fatalf("tag %d ground-truth bits changed", i)
		}
	}
	if !drifted || !died {
		t.Fatalf("severity-1 drift/death did not fire (drifted=%v died=%v)", drifted, died)
	}
	// Originals untouched.
	if a[0] == ems[0] {
		t.Fatal("ApplyEmissions returned the original emission pointer")
	}
}
