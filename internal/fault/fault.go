// Package fault provides deterministic, composable impairment
// injection for captures and tag behaviour. It is the adversarial
// counterpart of the clean simulator: the robustness experiment and
// the graceful-degradation tests drive the decoder through burst
// interference, sample dropout, front-end steps, spurious edges,
// truncated captures, non-finite samples, extreme clock drift, and
// mid-epoch tag death — all derived from a single seed so every
// impaired capture is byte-identical across runs.
//
// Determinism is positional: an Applier's per-sample decisions depend
// only on (seed, absolute sample position), never on how the capture
// is blocked into Apply calls, so a streaming consumer impairing one
// DMA buffer at a time produces exactly the bytes of a batch
// ApplyCapture. Stateful ops (sample repeat, the step holds) latch
// their state at fixed absolute positions, preserving the same
// contract.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"lf/internal/iq"
	"lf/internal/rng"
	"lf/internal/tag"
)

// Kind names one impairment family.
type Kind string

const (
	// BurstNoise adds a high-variance complex-gaussian burst over a
	// contiguous sample span — in-band interference swamping the tag
	// signal for part of the frame.
	BurstNoise Kind = "burst"
	// Dropout zeroes contiguous sample spans — DMA underruns or AGC
	// blanking where the front end delivers silence.
	Dropout Kind = "dropout"
	// Repeat freezes contiguous spans at the last pre-span sample — a
	// stuck DMA buffer re-delivering stale data.
	Repeat Kind = "repeat"
	// DCStep adds a constant complex offset from a step position to the
	// end of capture — an LO leakage / DC calibration jump.
	DCStep Kind = "dcstep"
	// GainStep multiplies everything after a step position by a gain —
	// an AGC retune mid-capture.
	GainStep Kind = "gainstep"
	// SpuriousEdges injects short ramped level steps at random
	// positions — phantom transitions that mimic tag edges.
	SpuriousEdges Kind = "spurious"
	// NonFinite replaces isolated samples with NaN/Inf — corrupted DMA
	// words the decode path must skip rather than propagate.
	NonFinite Kind = "nonfinite"
	// Truncate cuts the capture short — the carrier (or the recording)
	// stops before the slowest frame completes.
	Truncate Kind = "truncate"
	// ClockDrift scales each tag's bit period far beyond the nominal
	// crystal tolerance. Tag-level: applies to emissions, pre-synthesis.
	ClockDrift Kind = "drift"
	// TagDeath silences a tag mid-frame (battery brown-out). Tag-level:
	// applies to emissions, pre-synthesis.
	TagDeath Kind = "tagdeath"
)

// CaptureKinds lists the impairments that operate on IQ samples.
func CaptureKinds() []Kind {
	return []Kind{BurstNoise, Dropout, Repeat, DCStep, GainStep, SpuriousEdges, NonFinite, Truncate}
}

// TagKinds lists the impairments that operate on tag emissions.
func TagKinds() []Kind { return []Kind{ClockDrift, TagDeath} }

func validKind(k Kind) bool {
	for _, c := range CaptureKinds() {
		if k == c {
			return true
		}
	}
	for _, t := range TagKinds() {
		if k == t {
			return true
		}
	}
	return IsTransportLevel(k)
}

// IsTagLevel reports whether a kind impairs emissions (pre-synthesis)
// rather than IQ samples.
func IsTagLevel(k Kind) bool {
	for _, t := range TagKinds() {
		if k == t {
			return true
		}
	}
	return false
}

// Injector is one impairment at a severity in [0, 1]. Severity 0 is a
// no-op; 1 is the worst case the family models (see the per-kind
// mapping in planOps).
type Injector struct {
	Kind     Kind
	Severity float64
}

// Config is a seeded impairment mix. The zero value injects nothing.
type Config struct {
	// Seed drives every random placement and draw. The same seed and
	// injector list produce byte-identical impairments.
	Seed int64
	// RefAmp is the reference signal amplitude impairments scale
	// against (a typical per-tag |h|). 0 estimates it from the capture.
	RefAmp float64
	// Injectors compose in order; the same kind may repeat.
	Injectors []Injector
}

// Validate checks kinds and severities.
func (c Config) Validate() error {
	for i, inj := range c.Injectors {
		if !validKind(inj.Kind) {
			return fmt.Errorf("fault: unknown kind %q", inj.Kind)
		}
		if inj.Severity < 0 || inj.Severity > 1 || math.IsNaN(inj.Severity) {
			return fmt.Errorf("fault: injector %d (%s): severity %v outside [0, 1]", i, inj.Kind, inj.Severity)
		}
	}
	return nil
}

// ParseSpec parses a comma-separated impairment list of the form
// "burst:0.5,dropout:0.2". A bare kind defaults to severity 0.5.
func ParseSpec(spec string) ([]Injector, error) {
	var out []Injector
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, sevStr, hasSev := strings.Cut(part, ":")
		inj := Injector{Kind: Kind(kind), Severity: 0.5}
		if hasSev {
			sev, err := strconv.ParseFloat(sevStr, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad severity in %q: %v", part, err)
			}
			inj.Severity = sev
		}
		if !validKind(inj.Kind) {
			return nil, fmt.Errorf("fault: unknown kind %q", kind)
		}
		if inj.Severity < 0 || inj.Severity > 1 {
			return nil, fmt.Errorf("fault: severity in %q outside [0, 1]", part)
		}
		out = append(out, inj)
	}
	return out, nil
}

// SplitLevels partitions injectors into capture-level and tag-level
// groups, preserving order within each. Transport-level kinds belong
// to neither (they impair connections, not signal) and are dropped;
// use SplitTransport first when a spec may mix all three levels.
func SplitLevels(injs []Injector) (capture, tagLevel []Injector) {
	for _, inj := range injs {
		switch {
		case IsTagLevel(inj.Kind):
			tagLevel = append(tagLevel, inj)
		case IsTransportLevel(inj.Kind):
		default:
			capture = append(capture, inj)
		}
	}
	return capture, tagLevel
}

// SplitTransport separates transport-level injectors from the rest,
// preserving order within each group.
func SplitTransport(injs []Injector) (transport, rest []Injector) {
	for _, inj := range injs {
		if IsTransportLevel(inj.Kind) {
			transport = append(transport, inj)
		} else {
			rest = append(rest, inj)
		}
	}
	return transport, rest
}

// opKind is the primitive a compiled impairment reduces to.
type opKind int

const (
	opNoise opKind = iota // add positional gaussian noise over [lo, hi)
	opZero                // zero samples over [lo, hi)
	opHold                // freeze at the value just before lo over [lo, hi)
	opAdd                 // add amp over [lo, hi), ramped over the first ramp samples
	opGain                // multiply by gain over [lo, hi)
	opSet                 // set samples over [lo, hi) to amp (non-finite injection)
)

// op is one primitive impairment over an absolute sample span.
type op struct {
	kind   opKind
	lo, hi int64
	amp    complex128
	gain   float64
	sigma  float64 // per-component std-dev for opNoise
	seed   uint64  // positional RNG stream for opNoise
	ramp   int64

	latched bool
	held    complex128
}

// Plan is a compiled, seeded impairment schedule for one capture
// length. It is immutable once built; NewApplier yields the sequential
// state needed to execute it.
type Plan struct {
	ops []op // sorted by (lo, build order)
	// N is the impaired capture length: the original length unless a
	// Truncate injector cut it short.
	N int64
}

// Ops reports how many primitive impairment spans the plan contains.
func (p *Plan) Ops() int { return len(p.ops) }

// PlanCapture compiles the config for an n-sample capture using ref as
// the reference signal amplitude. All randomness is drawn here, in
// injector order, so the plan is a pure function of (Config, n, ref).
func (c Config) PlanCapture(n int64, ref float64) (*Plan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("fault: empty capture")
	}
	if ref <= 0 || math.IsNaN(ref) || math.IsInf(ref, 0) {
		return nil, fmt.Errorf("fault: non-positive reference amplitude %v", ref)
	}
	p := &Plan{N: n}
	root := rng.New(c.Seed)
	for i, inj := range c.Injectors {
		if IsTagLevel(inj.Kind) || IsTransportLevel(inj.Kind) {
			continue
		}
		src := root.Split(fmt.Sprintf("%s/%d", inj.Kind, i))
		planOps(p, inj, n, ref, src)
	}
	// Stable-sort by span start; ties keep injector order so the
	// per-sample composition order is part of the plan.
	sort.SliceStable(p.ops, func(a, b int) bool { return p.ops[a].lo < p.ops[b].lo })
	return p, nil
}

// spanIn draws a length-w span starting inside [0, n-w).
func spanIn(src *rng.Source, n, w int64) (int64, int64) {
	if w >= n {
		return 0, n
	}
	lo := int64(src.Float64() * float64(n-w))
	return lo, lo + w
}

// planOps maps one injector's severity to primitive ops. The mappings
// are calibrated against the reference amplitude ref (a typical per-tag
// edge height), so severity 1 is catastrophic for any link budget.
func planOps(p *Plan, inj Injector, n int64, ref float64, src *rng.Source) {
	sev := inj.Severity
	if sev <= 0 {
		return
	}
	switch inj.Kind {
	case BurstNoise:
		bursts := 1 + int(sev*3)
		w := int64(sev * float64(n) / 50)
		if w < 64 {
			w = 64
		}
		sigma := 3 * sev * ref / math.Sqrt2 // per component
		for b := 0; b < bursts; b++ {
			lo, hi := spanIn(src, n, w)
			p.ops = append(p.ops, op{kind: opNoise, lo: lo, hi: hi, sigma: sigma,
				seed: uint64(src.Int63())})
		}
	case Dropout:
		drops := 1 + int(sev*4)
		w := int64(sev * float64(n) / 100)
		if w < 32 {
			w = 32
		}
		for d := 0; d < drops; d++ {
			lo, hi := spanIn(src, n, w)
			p.ops = append(p.ops, op{kind: opZero, lo: lo, hi: hi})
		}
	case Repeat:
		reps := 1 + int(sev*4)
		w := int64(sev * float64(n) / 100)
		if w < 32 {
			w = 32
		}
		for d := 0; d < reps; d++ {
			lo, hi := spanIn(src, n, w)
			p.ops = append(p.ops, op{kind: opHold, lo: lo, hi: hi})
		}
	case DCStep:
		lo := n/8 + int64(src.Float64()*float64(n)*3/4)
		amp := complex(5*sev*ref, 0) * src.UnitPhasor()
		p.ops = append(p.ops, op{kind: opAdd, lo: lo, hi: n, amp: amp, ramp: 1})
	case GainStep:
		lo := n/8 + int64(src.Float64()*float64(n)*3/4)
		gain := 1 + sev*0.75*src.Sign()
		if gain < 0.25 {
			gain = 0.25
		}
		p.ops = append(p.ops, op{kind: opGain, lo: lo, hi: n, gain: gain})
	case SpuriousEdges:
		edges := 1 + int(sev*15)
		for e := 0; e < edges; e++ {
			lo := int64(src.Float64() * float64(n-8))
			amp := complex(src.Uniform(0.5, 1.5)*ref, 0) * src.UnitPhasor()
			// A level step that later steps back down: two ramped adds
			// bounding a random dwell, like a real reflector appearing.
			dwell := int64(src.Uniform(50, 2000))
			hi := lo + dwell
			if hi > n {
				hi = n
			}
			p.ops = append(p.ops, op{kind: opAdd, lo: lo, hi: hi, amp: amp, ramp: 3})
		}
	case NonFinite:
		k := 1 + int(sev*8)
		for e := 0; e < k; e++ {
			pos := int64(src.Float64() * float64(n))
			bad := complex(math.NaN(), math.NaN())
			if e%2 == 1 {
				bad = complex(math.Inf(1), 0)
			}
			p.ops = append(p.ops, op{kind: opSet, lo: pos, hi: pos + 1, amp: bad})
		}
	case Truncate:
		keep := n - int64(sev*0.5*float64(n))
		if keep < 1 {
			keep = 1
		}
		if keep < p.N {
			p.N = keep
		}
	}
}

// Applier executes a plan over a capture streamed block-by-block in
// position order. The impaired sample sequence is a pure function of
// the plan — block boundaries never change a byte.
type Applier struct {
	p    *Plan
	ops  []op // applier-owned copies (latch state is per-run)
	next int  // ops[:next] have been activated
	act  []int
	pos  int64
	prev complex128 // last impaired sample emitted (for opHold latching)
}

// NewApplier starts a fresh pass over the plan.
func (p *Plan) NewApplier() *Applier {
	a := &Applier{p: p, ops: make([]op, len(p.ops))}
	copy(a.ops, p.ops)
	return a
}

// Apply impairs the next block in place and returns it, shortened if
// the plan truncates the capture inside (or before) this block. Once
// the truncation point is reached every further call returns an empty
// slice.
func (a *Applier) Apply(block []complex128) []complex128 {
	if a.pos >= a.p.N {
		a.pos += int64(len(block))
		return block[:0]
	}
	var excess int64
	if rem := a.p.N - a.pos; int64(len(block)) > rem {
		excess = int64(len(block)) - rem
		block = block[:rem]
	}
	defer func() { a.pos += excess }()
	for i := range block {
		pos := a.pos + int64(i)
		for a.next < len(a.ops) && a.ops[a.next].lo <= pos {
			a.act = append(a.act, a.next)
			a.next++
		}
		v := block[i]
		for j := 0; j < len(a.act); j++ {
			o := &a.ops[a.act[j]]
			if o.hi <= pos {
				a.act = append(a.act[:j], a.act[j+1:]...)
				j--
				continue
			}
			switch o.kind {
			case opNoise:
				v += noiseAt(o.seed, pos, o.sigma)
			case opZero:
				v = 0
			case opHold:
				if !o.latched {
					o.held, o.latched = a.prev, true
				}
				v = o.held
			case opAdd:
				if d := pos - o.lo; o.ramp > 1 && d < o.ramp {
					v += o.amp * complex(float64(d+1)/float64(o.ramp), 0)
				} else {
					v += o.amp
				}
			case opGain:
				v *= complex(o.gain, 0)
			case opSet:
				v = o.amp
			}
		}
		block[i] = v
		a.prev = v
	}
	a.pos += int64(len(block))
	return block
}

// splitmix64 is the positional hash behind opNoise: a full-avalanche
// mix of (seed, position) so every sample's draw is independent of
// every other's and of block boundaries.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// noiseAt draws the complex gaussian (per-component std-dev sigma) for
// one absolute position via Box-Muller over two positional uniforms.
func noiseAt(seed uint64, pos int64, sigma float64) complex128 {
	h1 := splitmix64(seed ^ uint64(pos)*0xD6E8FEB86659FD93)
	h2 := splitmix64(h1 ^ 0xA5A5A5A5A5A5A5A5)
	u1 := (float64(h1>>11) + 1) / (1 << 53) // in (0, 1]
	u2 := float64(h2>>11) / (1 << 53)
	r := sigma * math.Sqrt(-2*math.Log(u1))
	s, c := math.Sincos(2 * math.Pi * u2)
	return complex(r*c, r*s)
}

// EstimateRef estimates the reference signal amplitude of a capture as
// the mean absolute deviation of the samples around their mean — a
// robust proxy for the aggregate tag edge height that needs no channel
// knowledge. Non-finite samples are skipped.
func EstimateRef(samples []complex128) float64 {
	var mean complex128
	count := 0
	for _, v := range samples {
		if !finite(v) {
			continue
		}
		mean += v
		count++
	}
	if count == 0 {
		return 1e-4
	}
	mean /= complex(float64(count), 0)
	var dev float64
	for _, v := range samples {
		if !finite(v) {
			continue
		}
		dev += math.Hypot(real(v-mean), imag(v-mean))
	}
	dev /= float64(count)
	if dev <= 0 || math.IsNaN(dev) || math.IsInf(dev, 0) {
		return 1e-4
	}
	return dev
}

func finite(v complex128) bool {
	return !math.IsNaN(real(v)) && !math.IsInf(real(v), 0) &&
		!math.IsNaN(imag(v)) && !math.IsInf(imag(v), 0)
}

// ApplyCapture impairs a copy of the capture (the original is never
// touched) with every capture-level injector in the config.
func (c Config) ApplyCapture(capture *iq.Capture) (*iq.Capture, error) {
	ref := c.RefAmp
	if ref == 0 {
		ref = EstimateRef(capture.Samples)
	}
	plan, err := c.PlanCapture(int64(len(capture.Samples)), ref)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(capture.Samples))
	copy(out, capture.Samples)
	out = plan.NewApplier().Apply(out)
	return &iq.Capture{SampleRate: capture.SampleRate, Samples: out, Start: capture.Start}, nil
}

// ApplyEmissions impairs a deep copy of the emissions with every
// tag-level injector (clock drift, mid-epoch death). Ground-truth Bits
// are preserved so scoring counts the lost tail as errors — the point
// of the measurement.
func (c Config) ApplyEmissions(ems []*tag.Emission) ([]*tag.Emission, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := make([]*tag.Emission, len(ems))
	for i, em := range ems {
		cp := *em
		cp.Toggles = append([]tag.Toggle(nil), em.Toggles...)
		cp.Bits = append([]byte(nil), em.Bits...)
		out[i] = &cp
	}
	root := rng.New(c.Seed)
	for i, inj := range c.Injectors {
		if !IsTagLevel(inj.Kind) || inj.Severity <= 0 {
			continue
		}
		src := root.Split(fmt.Sprintf("%s/%d", inj.Kind, i))
		for _, em := range out {
			switch inj.Kind {
			case ClockDrift:
				// Up to ±2000 ppm at severity 1 — far beyond the 150 ppm
				// crystal bound the walker's tolerance is sized for.
				f := 1 + src.Sign()*inj.Severity*2000e-6*src.Uniform(0.5, 1)
				for t := range em.Toggles {
					em.Toggles[t].Time = em.Start + (em.Toggles[t].Time-em.Start)*f
				}
				em.BitPeriod *= f
			case TagDeath:
				if src.Float64() >= inj.Severity {
					continue
				}
				death := em.Start + src.Uniform(0.3, 0.8)*(em.End()-em.Start)
				cut := len(em.Toggles)
				for t, tg := range em.Toggles {
					if tg.Time >= death {
						cut = t
						break
					}
				}
				em.Toggles = em.Toggles[:cut]
				// A dying tag's antenna relaxes to detuned.
				if cut > 0 && em.Toggles[cut-1].State == 1 {
					em.Toggles = append(em.Toggles, tag.Toggle{Time: death, State: 0})
				}
			}
		}
	}
	return out, nil
}
