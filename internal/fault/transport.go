package fault

// Transport-level impairment: seeded fault injection for the
// distributed shard protocol (internal/dist). Where the capture-level
// injectors corrupt IQ samples before the decoder sees them, the
// transport injectors corrupt the *wire* between coordinator and
// workers — dropped connections, stalls, short writes, flipped bytes —
// so the dist layer's retry/re-queue/hedge machinery can be driven
// through a deterministic failure matrix. The decoded bits must come
// out identical at any severity: transport faults are recoverable by
// construction (the CRC-guarded framing detects corruption, leases
// detect stalls, and every failure path re-queues the shard), so the
// acceptance test is bit-identity, not degraded output.
//
// Determinism is positional, like the sample injectors: every decision
// is a pure function of (Seed, connection ID, operation index, kind),
// hashed through splitmix64 — never of wall clock or goroutine
// scheduling. Two runs that issue the same operation sequence on the
// same connection IDs experience byte-identical impairment.

import (
	"math"
	"net"
	"sync/atomic"
	"time"
)

const (
	// ConnDrop severs the connection mid-operation — a worker crash or
	// network partition. The peer sees io.EOF / ECONNRESET.
	ConnDrop Kind = "conndrop"
	// Stall delays an operation by up to ~60ms·severity — a GC pause,
	// a congested link, a wedged worker. Long enough to trip lease
	// deadlines and hedging at test-scale timeouts.
	Stall Kind = "stall"
	// PartialWrite delivers only a prefix of a write and then severs
	// the connection — a crash mid-frame. The peer sees a truncated
	// frame (length/CRC check fails or short read).
	PartialWrite Kind = "partialwrite"
	// CorruptFrame flips one byte of a write — line noise or a flaky
	// NIC. The framing CRC must catch it.
	CorruptFrame Kind = "corruptframe"
)

// TransportKinds lists the impairments that operate on connections.
func TransportKinds() []Kind {
	return []Kind{ConnDrop, Stall, PartialWrite, CorruptFrame}
}

// IsTransportLevel reports whether a kind impairs the wire rather than
// samples or emissions.
func IsTransportLevel(k Kind) bool {
	for _, t := range TransportKinds() {
		if k == t {
			return true
		}
	}
	return false
}

// TransportConfig is a seeded wire-impairment mix. The zero value
// injects nothing.
type TransportConfig struct {
	// Seed drives every decision; the same seed, connection IDs, and
	// operation sequence produce identical impairment.
	Seed int64
	// Injectors compose; non-transport kinds are ignored, so a mixed
	// spec can be passed through unfiltered.
	Injectors []Injector
}

// active reports whether any transport-level injector has severity > 0.
func (c TransportConfig) active() bool {
	for _, inj := range c.Injectors {
		if IsTransportLevel(inj.Kind) && inj.Severity > 0 {
			return true
		}
	}
	return false
}

// Wrap impairs a connection. connID must be unique per connection (the
// dist coordinator uses its accept counter; the worker its attempt
// counter) — it salts the positional hash so parallel connections fail
// independently. A config with no active transport injectors returns
// conn unchanged.
func (c TransportConfig) Wrap(conn net.Conn, connID uint64) net.Conn {
	if !c.active() {
		return conn
	}
	fc := &faultyConn{Conn: conn, seed: uint64(c.Seed), connID: connID}
	for _, inj := range c.Injectors {
		if !IsTransportLevel(inj.Kind) || inj.Severity <= 0 {
			continue
		}
		sev := math.Min(inj.Severity, 1)
		switch inj.Kind {
		case ConnDrop:
			fc.pDrop += 0.03 * sev
		case Stall:
			fc.pStall += 0.2 * sev
			if d := time.Duration(sev * 60 * float64(time.Millisecond)); d > fc.maxStall {
				fc.maxStall = d
			}
		case PartialWrite:
			fc.pPartial += 0.05 * sev
		case CorruptFrame:
			fc.pCorrupt += 0.08 * sev
		}
	}
	return fc
}

// faultyConn wraps a net.Conn with positional-hash fault decisions.
// Each Read/Write consumes one operation index; the draws for that
// operation are independent uniforms per fault family (distinct salts),
// so families compose the way independent failure processes do.
type faultyConn struct {
	net.Conn
	seed   uint64
	connID uint64
	op     atomic.Uint64

	pDrop, pStall, pPartial, pCorrupt float64
	maxStall                          time.Duration
	dropped                           atomic.Bool
}

// draw returns a uniform in [0, 1) for (seed, connID, op, salt).
func (f *faultyConn) draw(op uint64, salt uint64) float64 {
	h := splitmix64(f.seed ^ f.connID*0xD6E8FEB86659FD93 ^ op*0x9E3779B97F4A7C15 ^ salt)
	return float64(h>>11) / (1 << 53)
}

const (
	saltDrop    = 0x1111111111111111
	saltStall   = 0x2222222222222222
	saltPartial = 0x3333333333333333
	saltCorrupt = 0x4444444444444444
	saltPos     = 0x5555555555555555
)

// sever closes the underlying connection so the peer observes the
// failure too, and latches so every later op fails fast.
func (f *faultyConn) sever() error {
	f.dropped.Store(true)
	f.Conn.Close()
	return net.ErrClosed
}

func (f *faultyConn) stall(op uint64) {
	if f.pStall > 0 && f.draw(op, saltStall) < f.pStall {
		frac := f.draw(op, saltStall^saltPos)
		time.Sleep(time.Duration(float64(f.maxStall) * (0.25 + 0.75*frac)))
	}
}

func (f *faultyConn) Read(p []byte) (int, error) {
	if f.dropped.Load() {
		return 0, net.ErrClosed
	}
	op := f.op.Add(1)
	f.stall(op)
	if f.pDrop > 0 && f.draw(op, saltDrop) < f.pDrop {
		return 0, f.sever()
	}
	return f.Conn.Read(p)
}

func (f *faultyConn) Write(p []byte) (int, error) {
	if f.dropped.Load() {
		return 0, net.ErrClosed
	}
	op := f.op.Add(1)
	f.stall(op)
	if f.pDrop > 0 && f.draw(op, saltDrop) < f.pDrop {
		return 0, f.sever()
	}
	if f.pPartial > 0 && len(p) > 1 && f.draw(op, saltPartial) < f.pPartial {
		// Deliver a strict prefix, then sever: the peer sees a frame cut
		// mid-payload, exactly the crash-mid-send shape.
		keep := 1 + int(f.draw(op, saltPartial^saltPos)*float64(len(p)-1))
		n, err := f.Conn.Write(p[:keep])
		if err != nil {
			f.dropped.Store(true)
			return n, err
		}
		return n, f.sever()
	}
	if f.pCorrupt > 0 && len(p) > 0 && f.draw(op, saltCorrupt) < f.pCorrupt {
		// Flip one hashed bit of one hashed byte. Copy first: p may be a
		// caller-retained buffer that will be resent after the retry.
		cp := make([]byte, len(p))
		copy(cp, p)
		h := splitmix64(f.seed ^ f.connID ^ op*0xBF58476D1CE4E5B9 ^ saltCorrupt)
		cp[int(h%uint64(len(cp)))] ^= 1 << ((h >> 32) % 8)
		return f.Conn.Write(cp)
	}
	return f.Conn.Write(p)
}
