package fault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// sinkConn is a deterministic in-memory net.Conn half: writes append
// to a buffer, reads drain a peer-fed pipe. Enough surface for the
// injector tests without sockets.
type sinkConn struct {
	net.Conn
	buf    bytes.Buffer
	closed bool
}

func (s *sinkConn) Write(p []byte) (int, error) {
	if s.closed {
		return 0, net.ErrClosed
	}
	return s.buf.Write(p)
}
func (s *sinkConn) Read(p []byte) (int, error) {
	if s.closed {
		return 0, net.ErrClosed
	}
	return len(p), nil
}
func (s *sinkConn) Close() error { s.closed = true; return nil }

func wireBytes(t *testing.T, cfg TransportConfig, connID uint64, writes [][]byte) ([]byte, error) {
	t.Helper()
	sink := &sinkConn{}
	conn := cfg.Wrap(sink, connID)
	for _, w := range writes {
		if _, err := conn.Write(w); err != nil {
			return sink.buf.Bytes(), err
		}
	}
	return sink.buf.Bytes(), nil
}

// TestTransportDeterminism: the same seed, connection ID, and write
// sequence must put identical bytes on the wire and fail at the same
// operation — the whole failure matrix replays.
func TestTransportDeterminism(t *testing.T) {
	for _, kind := range TransportKinds() {
		if kind == Stall {
			continue // exercises wall clock; covered below
		}
		cfg := TransportConfig{Seed: 42, Injectors: []Injector{{Kind: kind, Severity: 1}}}
		writes := make([][]byte, 64)
		for i := range writes {
			writes[i] = bytes.Repeat([]byte{byte(i)}, 128)
		}
		got1, err1 := wireBytes(t, cfg, 7, writes)
		got2, err2 := wireBytes(t, cfg, 7, writes)
		if !bytes.Equal(got1, got2) {
			t.Errorf("%s: wire bytes differ across identical runs", kind)
		}
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("%s: failure point differs: %v vs %v", kind, err1, err2)
		}
		// A different connection ID must give an independent stream.
		got3, _ := wireBytes(t, cfg, 8, writes)
		if bytes.Equal(got1, got3) && len(got1) > 0 {
			t.Errorf("%s: connID does not decorrelate impairment", kind)
		}
	}
}

// TestTransportInactivePassThrough: severity 0 (and non-transport
// kinds) must return the conn unchanged — zero overhead when clean.
func TestTransportInactivePassThrough(t *testing.T) {
	sink := &sinkConn{}
	cfg := TransportConfig{Seed: 1, Injectors: []Injector{
		{Kind: ConnDrop, Severity: 0},
		{Kind: BurstNoise, Severity: 1}, // capture-level: ignored
	}}
	if got := cfg.Wrap(sink, 1); got != net.Conn(sink) {
		t.Fatal("inactive config must not wrap")
	}
}

// TestTransportConnDropSevers: at severity 1 a long operation sequence
// must hit a drop, after which both directions fail fast and the
// underlying conn is closed (the peer sees it too).
func TestTransportConnDropSevers(t *testing.T) {
	sink := &sinkConn{}
	cfg := TransportConfig{Seed: 3, Injectors: []Injector{{Kind: ConnDrop, Severity: 1}}}
	conn := cfg.Wrap(sink, 1)
	var err error
	for i := 0; i < 10000 && err == nil; i++ {
		_, err = conn.Write([]byte{1})
	}
	if err == nil {
		t.Fatal("severity-1 conndrop never fired in 10000 ops")
	}
	if !sink.closed {
		t.Fatal("drop did not close the underlying conn")
	}
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("post-drop read = %v, want net.ErrClosed", err)
	}
}

// TestTransportCorruptFrame: corruption must flip exactly one bit of
// an affected write, never mutate the caller's buffer, and leave most
// writes untouched at moderate probability.
func TestTransportCorruptFrame(t *testing.T) {
	cfg := TransportConfig{Seed: 9, Injectors: []Injector{{Kind: CorruptFrame, Severity: 1}}}
	sink := &sinkConn{}
	conn := cfg.Wrap(sink, 2)
	payload := bytes.Repeat([]byte{0xAB}, 64)
	orig := append([]byte(nil), payload...)
	corrupted := 0
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		sink.buf.Reset()
		if _, err := conn.Write(payload); err != nil {
			t.Fatalf("corruptframe must not error: %v", err)
		}
		if !bytes.Equal(payload, orig) {
			t.Fatal("caller buffer mutated")
		}
		got := sink.buf.Bytes()
		if len(got) != len(orig) {
			t.Fatalf("corrupt write changed length: %d", len(got))
		}
		diff := 0
		for j := range got {
			for b := got[j] ^ orig[j]; b != 0; b &= b - 1 {
				diff++
			}
		}
		if diff > 1 {
			t.Fatalf("corruption flipped %d bits, want ≤ 1", diff)
		}
		if diff == 1 {
			corrupted++
		}
	}
	if corrupted == 0 || corrupted == rounds {
		t.Fatalf("corruption rate degenerate: %d/%d", corrupted, rounds)
	}
}

// TestTransportPartialWriteTruncatesAndSevers: an affected write must
// deliver a strict prefix and then kill the connection.
func TestTransportPartialWriteTruncatesAndSevers(t *testing.T) {
	cfg := TransportConfig{Seed: 5, Injectors: []Injector{{Kind: PartialWrite, Severity: 1}}}
	sink := &sinkConn{}
	conn := cfg.Wrap(sink, 3)
	payload := bytes.Repeat([]byte{0xCD}, 256)
	var err error
	var wrote int
	for i := 0; i < 10000 && err == nil; i++ {
		sink.buf.Reset()
		_, err = conn.Write(payload)
		wrote = sink.buf.Len()
	}
	if err == nil {
		t.Fatal("severity-1 partialwrite never fired in 10000 writes")
	}
	if wrote <= 0 || wrote >= len(payload) {
		t.Fatalf("partial write delivered %d of %d bytes, want strict prefix", wrote, len(payload))
	}
	if !sink.closed {
		t.Fatal("partial write did not sever the conn")
	}
}

// TestTransportStallDelays: a severity-1 stall mix must take
// measurably longer than a clean run over the same ops.
func TestTransportStallDelays(t *testing.T) {
	cfg := TransportConfig{Seed: 11, Injectors: []Injector{{Kind: Stall, Severity: 0.2}}}
	sink := &sinkConn{}
	conn := cfg.Wrap(sink, 4)
	start := time.Now()
	for i := 0; i < 200; i++ {
		if _, err := conn.Write([]byte{1}); err != nil {
			t.Fatalf("stall must not error: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("stall injector added no delay (%v over 200 ops)", elapsed)
	}
}

// TestTransportSpecParsing: transport kinds must round-trip through
// ParseSpec and split cleanly away from signal-level kinds.
func TestTransportSpecParsing(t *testing.T) {
	injs, err := ParseSpec("conndrop:0.5,burst:0.3,stall,drift:0.2,corruptframe:1,partialwrite:0.1")
	if err != nil {
		t.Fatal(err)
	}
	transport, rest := SplitTransport(injs)
	if len(transport) != 4 || len(rest) != 2 {
		t.Fatalf("SplitTransport = %d transport + %d rest, want 4 + 2", len(transport), len(rest))
	}
	capture, tagLevel := SplitLevels(injs)
	if len(capture) != 1 || len(tagLevel) != 1 {
		t.Fatalf("SplitLevels = %d capture + %d tag, want 1 + 1", len(capture), len(tagLevel))
	}
	// Transport kinds must be inert for capture planning.
	cfg := Config{Seed: 1, Injectors: injs}
	plan, err := cfg.PlanCapture(10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	onlySignal := Config{Seed: 1, Injectors: rest}
	plan2, err := onlySignal.PlanCapture(10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ops() != plan2.Ops() || plan.N != plan2.N {
		t.Fatal("transport kinds altered the capture plan")
	}
}

var _ io.Writer = (*sinkConn)(nil)
