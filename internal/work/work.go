// Package work provides the bounded worker pools the reader pipeline
// fans out on. Every helper here preserves a hard determinism
// contract: callers pass closures that write only to per-index (or
// per-range) state, so the observable result is bit-identical whether
// the work runs on one goroutine or many. Parallelism knobs throughout
// the system (decoder.Config.Parallelism, edgedetect.Config.Parallelism,
// experiment.Config.Workers) resolve through this package.
package work

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lf/internal/obs"
)

// Resolve maps a parallelism knob to a concrete worker count:
// 0 resolves to runtime.GOMAXPROCS(0) (use every available core),
// anything ≥ 1 is taken literally, and negative values clamp to 1.
func Resolve(parallelism int) int {
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if parallelism < 1 {
		return 1
	}
	return parallelism
}

// Do runs fn(i) for every i in [0, n), using at most workers
// goroutines. fn must confine its writes to state owned by index i;
// under that contract the result is identical at any worker count.
// workers ≤ 1 (or n ≤ 1) runs inline with no goroutines at all, so the
// serial path stays allocation- and scheduler-free. A panic in any fn
// is re-raised on the calling goroutine after the pool drains.
func Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, fmt.Sprintf("work: worker panic: %v", r))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}

// DoRecover is Do with per-index panic isolation: a panic inside fn(i)
// is captured as errs[i] instead of tearing down the pool, so one
// misbehaving work item cannot take down its siblings. Returns nil when
// every index completed cleanly (the common case allocates nothing).
// The same per-index write-confinement contract as Do applies, so the
// captured error set is identical at any worker count.
func DoRecover(workers, n int, fn func(i int)) []error {
	var (
		errs []error
		mu   sync.Mutex
	)
	Do(workers, n, func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if errs == nil {
					errs = make([]error, n)
				}
				errs[i] = fmt.Errorf("panic: %v", r)
				mu.Unlock()
			}
		}()
		fn(i)
	})
	return errs
}

// MinChunk is the smallest per-range work size DoRanges hands a worker.
// Splitting finer than this spends more on scheduling than the chunk's
// own arithmetic: a chunk of 16384 differential evaluations is a few
// hundred µs, comfortably above goroutine handoff cost, so fanning out
// is never slower than the serial path at any worker count. It also
// keeps the streaming detector's small per-push extensions (typically
// one SDR DMA buffer, ≤16 Ki samples) on the inline path with no
// scheduler round-trip at all.
const MinChunk = 16384

// Bounds returns the deterministic chunk boundaries DoRanges uses for a
// length-n series at the given worker count: at most `workers` equal
// ranges, each at least MinChunk long (except possibly the last). The
// boundaries depend only on (workers, n), never on scheduling, so tests
// can plant features exactly on a seam.
func Bounds(workers, n int) []int {
	if n <= 0 {
		return nil
	}
	chunks := Resolve(workers)
	if maxChunks := n / MinChunk; chunks > maxChunks {
		chunks = maxChunks
	}
	if chunks < 1 {
		chunks = 1
	}
	size := (n + chunks - 1) / chunks
	bounds := make([]int, 0, chunks+1)
	for lo := 0; lo < n; lo += size {
		bounds = append(bounds, lo)
	}
	return append(bounds, n)
}

// DoRanges splits [0, n) into the chunks described by Bounds and runs
// fn(lo, hi) for each on the pool. fn must confine its writes to the
// [lo, hi) slice of per-index state it is handed.
func DoRanges(workers, n int, fn func(lo, hi int)) {
	bounds := Bounds(workers, n)
	if len(bounds) < 2 {
		return
	}
	Do(Resolve(workers), len(bounds)-1, func(c int) {
		fn(bounds[c], bounds[c+1])
	})
}

// Meter wraps the pool helpers with pipeline metrics. All three fields
// are ClassRuntime by design — batch counts, task counts, and occupancy
// depend on the worker count and chunking, which vary with Parallelism
// — so metered totals never enter the decode identity. A nil *Meter
// delegates straight through with zero overhead.
type Meter struct {
	// Batches counts pool invocations; Tasks counts the work items
	// dispatched across them.
	Batches, Tasks *obs.Counter
	// Occupancy tracks the high-water effective worker count
	// (min(workers, items) per invocation).
	Occupancy *obs.Gauge
}

func (m *Meter) note(workers, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.Batches.Inc()
	m.Tasks.Add(int64(n))
	w := Resolve(workers)
	if w > n {
		w = n
	}
	m.Occupancy.Max(int64(w))
}

// Do is work.Do with pool metering.
func (m *Meter) Do(workers, n int, fn func(i int)) {
	m.note(workers, n)
	Do(workers, n, fn)
}

// DoRecover is work.DoRecover with pool metering.
func (m *Meter) DoRecover(workers, n int, fn func(i int)) []error {
	m.note(workers, n)
	return DoRecover(workers, n, fn)
}

// DoRanges is work.DoRanges with pool metering; Tasks counts the
// deterministic chunks handed to workers.
func (m *Meter) DoRanges(workers, n int, fn func(lo, hi int)) {
	if m != nil {
		if b := Bounds(workers, n); len(b) >= 2 {
			m.note(workers, len(b)-1)
		}
	}
	DoRanges(workers, n, fn)
}
