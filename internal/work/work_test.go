package work

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 7, 1000} {
			hits := make([]int32, n)
			Do(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestDoSerialPreservesOrder(t *testing.T) {
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestDoPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	Do(4, 16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d", got)
	}
	if got := Resolve(1); got != 1 {
		t.Fatalf("Resolve(1) = %d", got)
	}
	if got := Resolve(6); got != 6 {
		t.Fatalf("Resolve(6) = %d", got)
	}
	if got := Resolve(-3); got != 1 {
		t.Fatalf("Resolve(-3) = %d", got)
	}
}

func TestBoundsPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, MinChunk - 1, MinChunk, 4*MinChunk + 17, 100000} {
			b := Bounds(workers, n)
			if n == 0 {
				if b != nil {
					t.Fatalf("Bounds(%d, 0) = %v", workers, b)
				}
				continue
			}
			if b[0] != 0 || b[len(b)-1] != n {
				t.Fatalf("Bounds(%d, %d) = %v: does not span [0,n)", workers, n, b)
			}
			for i := 1; i < len(b); i++ {
				if b[i] <= b[i-1] {
					t.Fatalf("Bounds(%d, %d) = %v: not strictly increasing", workers, n, b)
				}
			}
			// Every chunk but the last must be at least MinChunk when the
			// series is splittable at all.
			for i := 0; i+2 < len(b); i++ {
				if b[i+1]-b[i] < MinChunk {
					t.Fatalf("Bounds(%d, %d) = %v: chunk %d under MinChunk", workers, n, b, i)
				}
			}
		}
	}
}

func TestDoRangesCoversSeries(t *testing.T) {
	n := 3*MinChunk + 123
	hits := make([]int32, n)
	DoRanges(4, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d covered %d times", i, h)
		}
	}
}
