package decoder

import (
	"math"
	"sort"

	"lf/internal/dsp"
	"lf/internal/edgedetect"
	"lf/internal/iq"
	"lf/internal/obs"
	"lf/internal/pool"
	"lf/internal/shard"
	"lf/internal/streams"
	"lf/internal/viterbi"
)

// Successive interference cancellation (SIC). A tag that failed to
// register — because its preamble collided, or its phase sat inside a
// dense multi-tag chain — is invisible to the first decode pass, yet
// its signal is still in the capture. Reconstructing every decoded
// stream's waveform from its decoded edge states and subtracting it
// from the raw samples leaves a residual in which the missed tags
// stand nearly alone, so a second pass of the ordinary pipeline picks
// them up. This is an engineering extension beyond the paper (which
// cites SIC/ZigZag as related work); it is ablatable via
// Config.CancellationRounds.
//
// The rounds run incrementally (DESIGN.md §17): one residual buffer
// persists across rounds, each round subtracts only the streams
// decoded since the previous round over their dirty spans, the
// residual's prefix-sum lanes are folded region-locally
// (dsp.RepairPrefix over each padded mask span, from its own zero
// base) instead of refolded from the origin — every lane read is a
// within-region difference, so the per-region base cancels — and the
// residual pass's detector is seeded with the folded lanes plus the
// first pass's calibration — the noise floor is a channel property; subtracting
// decoded signal does not change it — and masked to the dirty-span
// closure (dirtyClosure): recovered tags can only surface where
// subtraction changed the residual or where a decoded stream they
// collide with still stands. A round whose dirty-span set is empty is
// skipped outright: the residual is byte-unchanged, so the re-decode
// could only return streams that deduplicate against themselves.
// Config.ForceFullResidual reverts every round to fresh-copy,
// full-subtract, refold-from-origin mechanics under the same mask; the
// decode is byte-identical either way (sic_equivalence_test.go), so
// the A/B axis isolates exactly the carry-over machinery.

// refineE re-estimates a stream's edge vector from its cleanly locked
// slots: the registration estimate comes from a handful of early
// edges, while the clean locks average over the whole frame — a
// noticeably better subtraction vector.
func refineE(sr *StreamResult) complex128 {
	reg := sr.Stream.E
	var sum complex128
	count := 0
	for k, slot := range sr.Slots {
		if slot.Kind != streams.MatchClean || k >= len(sr.States) {
			continue
		}
		switch sr.States[k] {
		case viterbi.Up:
			sum += slot.Obs
			count++
		case viterbi.Down:
			sum -= slot.Obs
			count++
		}
	}
	if count < 8 {
		return reg
	}
	return sum / complex(float64(count), 0)
}

// reconSeg is one run of a reconstructed waveform: the per-sample
// values dense[0:hi-lo] over [lo, hi) when dense is non-nil, else the
// constant val. A stream's reconstruction is a position-sorted,
// non-overlapping cover of [0, n).
type reconSeg struct {
	lo, hi int
	val    complex128
	dense  []complex128
}

// reconstruct renders one decoded stream's baseband contribution — a
// ±E step at every decoded edge slot, ramped over rampSamples — as a
// run-length segment list instead of a dense n-sample buffer.
//
// The reference semantics are the former dense form: an n-sample
// difference array receiving each slot's ramp steps in slot order,
// then a running prefix accumulation out[i] = Σ diff[0..i]. Between
// ramp regions diff[i] is exactly +0.0 (the zeroed buffer only ever
// accumulated values into ramp positions, and x + (+0.0) == x bitwise
// for every float64 including ±0 and NaN), so the accumulator is
// bitwise constant there — a run-length representation loses nothing.
// Inside ramp regions the same accumulation runs densely, with each
// position's ramp contributions added in slot order exactly as the
// dense loop did. The result is O(slots) space and time instead of
// O(capture), and bit-identical sample for sample.
func reconstruct(sr *StreamResult, n int, rampSamples int) []reconSeg {
	e := refineE(sr)
	type event struct {
		idx  int
		step complex128
	}
	var events []event
	for k, st := range sr.States {
		if k >= len(sr.Slots) {
			break
		}
		var delta complex128
		switch st {
		case viterbi.Up:
			delta = e
		case viterbi.Down:
			delta = -e
		default:
			continue
		}
		// Centre the ramp on the slot position, as the synthesizer and
		// detector do.
		idx := sr.Slots[k].Pos - int64(rampSamples/2)
		if idx < 0 {
			idx = 0
		}
		if idx >= int64(n) {
			continue
		}
		events = append(events, event{int(idx), delta / complex(float64(rampSamples), 0)})
	}

	// Merge the ramp intervals [idx, idx+ramp) ∩ [0, n) into a sorted
	// disjoint cover of the "active" positions; everything outside is a
	// constant run.
	type span struct{ lo, hi int }
	spans := make([]span, len(events))
	for i, ev := range events {
		hi := ev.idx + rampSamples
		if hi > n {
			hi = n
		}
		spans[i] = span{ev.idx, hi}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	merged := spans[:0]
	for _, sp := range spans {
		if sp.lo >= sp.hi {
			continue
		}
		if m := len(merged); m > 0 && sp.lo <= merged[m-1].hi {
			if sp.hi > merged[m-1].hi {
				merged[m-1].hi = sp.hi
			}
			continue
		}
		merged = append(merged, sp)
	}

	// One scratch buffer holds every active interval's diff values;
	// offsets[i] is interval i's slice start. Ramp steps are added in
	// slot (event) order, so a position covered by overlapping ramps
	// accumulates them in exactly the dense loop's order.
	total := 0
	offsets := make([]int, len(merged))
	for i, sp := range merged {
		offsets[i] = total
		total += sp.hi - sp.lo
	}
	diff := make([]complex128, total)
	for _, ev := range events {
		si := sort.Search(len(merged), func(i int) bool { return merged[i].hi > ev.idx })
		sp := merged[si]
		base := offsets[si] + ev.idx - sp.lo
		hi := ev.idx + rampSamples
		if hi > sp.hi {
			// The event's ramp runs past this interval only when clipped
			// at the capture end; positions ≥ n are never read.
			hi = sp.hi
		}
		for r := 0; r < hi-ev.idx; r++ {
			diff[base+r] += ev.step
		}
	}

	// Prefix accumulation over the active intervals; the gaps between
	// them carry the accumulator value unchanged.
	segs := make([]reconSeg, 0, 2*len(merged)+1)
	var acc complex128
	pos := 0
	for i, sp := range merged {
		if sp.lo > pos {
			segs = append(segs, reconSeg{lo: pos, hi: sp.lo, val: acc})
		}
		dense := diff[offsets[i] : offsets[i]+sp.hi-sp.lo]
		for j := range dense {
			acc += dense[j]
			dense[j] = acc
		}
		segs = append(segs, reconSeg{lo: sp.lo, hi: sp.hi, dense: dense})
		pos = sp.hi
	}
	if pos < n {
		segs = append(segs, reconSeg{lo: pos, hi: n, val: acc})
	}
	return segs
}

// sicTrust is the quality score a decoded stream needs before its
// reconstruction is subtracted into the residual: a mixture or
// mistracked stream would inject its errors instead of removing
// signal.
const sicTrust = 0.45

// sicState is the cancellation loop's cross-round cache: the
// persistent residual buffer, the subtracted-stream watermark, and
// (seeded rounds) the residual's prefix-sum lanes, folded
// region-locally over the round's detection mask and seeded into the
// residual decode. Lane entries outside the round's regions are
// unspecified — the mask soundness argument (laneRegions) is exactly
// that the decode never reads them.
type sicState struct {
	residual   []complex128
	copied     []shard.Range // residual ranges materialized from retain
	sumsRe     []float64
	sumsIm     []float64
	seeded     bool // lanes admissible (no inadmissible samples seen)
	seen       int  // results already scanned for trusted candidates
	subtracted int  // trusted streams folded into the residual so far
}

// ensureResidual materializes the persistent residual over the given
// ranges: parts not yet copied from the retained capture are copied
// now; parts copied in an earlier round keep their (subtracted)
// values. A seeded residual decode reads samples only inside the lane
// fold regions, so the buffer is copy-on-read — O(regions), not
// O(capture) — with the rest left unmaterialized until (if ever) a
// push-path fallback needs the whole capture. Subtraction stays sound
// because every subtracted range is inside some round's regions
// (touched ⊆ active ⊆ regions), hence materialized before it is
// subtracted and never re-copied after.
func (st *sicState) ensureResidual(retain []complex128, ranges []shard.Range) {
	if st.residual == nil {
		st.residual = pool.ComplexUninit(len(retain))
	}
	for _, r := range rangeDiff(ranges, st.copied) {
		copy(st.residual[r.Lo:r.Hi], retain[r.Lo:r.Hi])
	}
	st.copied = mergeRanges(append(st.copied, ranges...))
}

// seedable reports whether residual decodes may still run seeded: once
// any fold sees an inadmissible sample the epoch falls back to the
// push path for good, in both round mechanics — the rule is monotone
// so the A/B modes cannot disagree on marginal re-admissions.
func (st *sicState) seedable() bool { return st.sumsRe == nil || st.seeded }

func (st *sicState) release() {
	if st.residual != nil {
		pool.PutComplex(st.residual)
		st.residual, st.copied = nil, nil
	}
	if st.sumsRe != nil {
		pool.PutFloat(st.sumsRe)
		pool.PutFloat(st.sumsIm)
		st.sumsRe, st.sumsIm = nil, nil
	}
}

// runCancellation drives the SIC rounds at flush. Each round selects
// the trusted streams decoded since the previous round, reconstructs
// them, subtracts them from the residual, re-decodes it, and keeps any
// genuinely new streams (deduplicated against the existing set, and
// required to carry at least a real edge's worth of signal — the
// residue of an imperfectly cancelled stream otherwise re-registers as
// a phantom; the gate derives from the original capture's noise
// floor).
func (sd *StreamDecoder) runCancellation() {
	n := len(sd.retain)
	if n == 0 {
		return
	}
	cfg := sd.cfg
	minE := 3 * sd.det.NoiseFloor()
	// Carry the first pass's calibration into every residual pass: the
	// noise floor is a property of the channel and receiver chain, and
	// subtraction removes signal, not noise — recalibrating on the
	// residual would only bias the floor low (the calibration window's
	// signal content is gone) and let cancellation residue register as
	// phantom peaks. Shared by the incremental and ForceFullResidual
	// paths so the A/B decode is byte-identical. A degenerate first
	// pass (zero floor or threshold) keeps the historical
	// recalibrate-on-residual semantics.
	var calib *edgedetect.CalibPreset
	if f, th := sd.det.NoiseFloor(), sd.det.Threshold(); f > 0 && th > 0 &&
		!math.IsInf(f, 1) && !math.IsInf(th, 1) {
		calib = &edgedetect.CalibPreset{Floor: f, Threshold: th}
	}
	reach := shard.SweepReach(cfg.Edge.Gap, cfg.Edge.Win)
	st := &sicState{}
	defer st.release()
	for round := 0; round < cfg.CancellationRounds; round++ {
		// Trusted candidates that appeared since the previous round.
		// Earlier rounds' trusted streams stay subtracted in the
		// persistent residual — they are carried, not recomputed.
		var newTrusted []*StreamResult
		for _, sr := range sd.results[st.seen:] {
			if quality(sr) >= sicTrust {
				newTrusted = append(newTrusted, sr)
			}
		}
		st.seen = len(sd.results)
		if len(newTrusted) == 0 && minE > 0 {
			// Empty dirty-span set: nothing new would be subtracted, so
			// the residual is byte-unchanged and the (deterministic)
			// re-decode could only return the previous round's streams —
			// each already deduplicates against itself in results (a
			// stream past the minE gate has |E| ≥ minE > 0, so zero
			// grid-phase distance and Dist(E,E) = 0 < 0.5·|E| make it
			// its own duplicate). Skipping the decode is provably
			// output-identical, in both incremental and
			// ForceFullResidual mode, so the A/B stats stay identical
			// too. (minE = 0 — a degenerate zero-floor capture — breaks
			// the self-dedup argument, so it keeps the historical
			// re-decode.)
			break
		}
		ramp := int(cfg.Edge.Gap)
		if ramp < 1 {
			ramp = 3
		}
		// Reconstruct the new streams in parallel (each writes only its
		// own segment list); their non-zero extents are the samples this
		// round's subtraction modifies.
		contribs := make([][]reconSeg, len(newTrusted))
		sd.meter.Do(sd.workers, len(newTrusted), func(i int) {
			contribs[i] = reconstruct(newTrusted[i], n, ramp)
		})
		touched := touchedRanges(contribs)
		// The detection mask for this round's residual pass: the touched
		// spans widened by the sweep's cut distance, closed over the
		// extents of already-decoded streams they interact with. Both
		// round mechanics decode under the same mask — it is a pure
		// function of the (shared) results — so the A/B decode stays
		// byte-identical.
		active := sd.dirtyClosure(touched, reach, n)
		dirty := int64(n)
		if active != nil {
			dirty = 0
			for _, r := range active {
				dirty += r.Len()
			}
		}
		sd.m.SIC.Rounds.Inc()
		sd.m.SIC.ResidualDecodes.Inc()
		sd.m.SIC.CarriedStreams.Add(int64(st.subtracted))
		sd.m.SIC.DirtySamples.Add(dirty)
		var res2 *Result
		var err error
		if cfg.ForceFullResidual {
			res2, err = sd.fullResidualDecode(st, active, calib)
		} else {
			res2, err = sd.incrementalResidualDecode(st, contribs, touched, active, calib)
		}
		st.subtracted += len(newTrusted)
		var found []*StreamResult
		if err == nil {
			found = res2.Streams
		}
		var fresh []*StreamResult
		for _, nr := range found {
			if dsp.Abs(nr.Stream.E) < minE {
				continue // cancellation residue, not a tag
			}
			if isDuplicateStream(nr, sd.results, cfg) {
				continue
			}
			nr.Recovered = true
			fresh = append(fresh, nr)
		}
		if sd.tracer != nil {
			sd.tracer.Trace(obs.SpanEvent{Stage: "sic", Stream: -1,
				Pos: sd.det.Front(), N: int64(len(fresh))})
		}
		if len(fresh) == 0 {
			break
		}
		sd.m.SIC.Recovered.Add(int64(len(fresh)))
		sd.results = append(sd.results, fresh...)
		sd.res.RecoveredStreams += len(fresh)
	}
}

// laneReach returns how far outside a detection-mask span the residual
// pass can read the prefix-sum lanes. Every windowed read — the sweep's
// differentials, the walker's MeasureAt/MeasureAtClean, group
// refinement — extends at most Gap+MaxWin past the position it probes.
// Positions probed outside the mask itself come from slot walking: a
// stream can only register where its edges are (inside the mask), its
// anchor can sit at most a preamble's worth of slots below its first
// detected edge, and the walk runs at most a full frame — overhead,
// payload, and commit slack slots at the slowest rate, under worst-case
// clock drift — past its anchor.
func (sd *StreamDecoder) laneReach() (left, right int64) {
	winPad := sd.cfg.Edge.Gap + sd.cfg.Edge.MaxWin + 1
	var maxPeriod float64
	maxBits := 0
	for _, rate := range sd.cfg.Streams.Rates {
		if p := sd.cfg.Streams.SampleRate / rate; p > maxPeriod {
			maxPeriod = p
		}
		if b := sd.cfg.PayloadBits(rate); b > maxBits {
			maxBits = b
		}
	}
	drift := 1 + sd.cfg.Streams.DriftPPM*1e-6
	head := float64(sd.cfg.Streams.PreambleLen+2) * maxPeriod * drift
	frame := float64(sd.cfg.Streams.PreambleLen+1+maxBits+12) * maxPeriod * drift
	left = winPad + int64(head) + 2*sd.cfg.Streams.PosTol + 64
	right = winPad + int64(frame) + 2*sd.cfg.Streams.PosTol + 64
	return left, right
}

// laneRegions is the set of lane index ranges the residual decode can
// read under the given detection mask: each mask span padded by the
// walker/window reach on both sides, clamped and merged. A nil mask
// (sweep everything) folds the whole capture.
func (sd *StreamDecoder) laneRegions(active []shard.Range, n int) []shard.Range {
	if active == nil {
		return []shard.Range{{Lo: 0, Hi: int64(n)}}
	}
	left, right := sd.laneReach()
	regions := make([]shard.Range, 0, len(active))
	for _, r := range active {
		lo, hi := r.Lo-left, r.Hi+right
		if lo < 0 {
			lo = 0
		}
		if hi > int64(n) {
			hi = int64(n)
		}
		if lo < hi {
			regions = append(regions, shard.Range{Lo: lo, Hi: hi})
		}
	}
	return mergeRanges(regions)
}

// foldLanes folds each region of the residual into the lanes from the
// region's own zero base (dsp.RepairPrefix over the bounded subslice).
// Lane reads are windowed differences confined to one region — the
// padding argument in laneReach — so the per-region base cancels and
// the decode is identical to one over from-origin lanes, at O(regions)
// cost instead of O(capture). Returns false if any region holds an
// inadmissible sample (non-finite or overflow-scale — exactly what the
// detector's push path replaces under hold-last-finite); the caller
// must then fall back to the push path, which owns that semantics.
func foldLanes(re, im []float64, residual []complex128, regions []shard.Range) bool {
	for _, r := range regions {
		re[r.Lo], im[r.Lo] = 0, 0
		if dsp.RepairPrefix(re, im, residual[:r.Hi], int(r.Lo),
			edgedetect.MaxSampleMag) != -1 {
			return false
		}
	}
	return true
}

// seedLanes allocates (once) and folds the state's lanes over this
// round's regions and builds the detector seed, shared by the
// incremental and ForceFullResidual paths so the A/B decode and the
// push-path fallback decision are byte-identical. The final lane entry
// is pinned so the value NewStream snapshots as its (unused, seeded
// streams never fold further) closing accumulator is deterministic.
func (sd *StreamDecoder) seedLanes(st *sicState, residual []complex128, active, regions []shard.Range, calib *edgedetect.CalibPreset) *edgedetect.SweepSeed {
	n := len(residual)
	if calib == nil || !st.seedable() {
		// No calibration to carry means no seeded detector (a seed
		// requires a preset threshold for the sparse sweep); the push
		// path recalibrates as the historical semantics did.
		st.seeded = false
		return nil
	}
	if st.sumsRe == nil {
		st.sumsRe = pool.FloatUninit(n + 1)
		st.sumsIm = pool.FloatUninit(n + 1)
		st.sumsRe[n], st.sumsIm[n] = 0, 0
	}
	st.seeded = foldLanes(st.sumsRe, st.sumsIm, residual, regions)
	if !st.seeded {
		return nil
	}
	return &edgedetect.SweepSeed{SumsRe: st.sumsRe, SumsIm: st.sumsIm, Active: active}
}

// incrementalResidualDecode is the default round mechanics: materialize
// the persistent residual over the round's mask regions (copy-on-read),
// subtract only the latest round's reconstructions — tiled over their
// merged dirty ranges — fold the prefix-sum lanes over those regions
// only, and seed the residual decode with them. A region containing
// inadmissible samples abandons seeding for the rest of the epoch
// (sicState.seedable) and decodes through the push path, which reads
// the whole residual — so that path materializes the rest first.
func (sd *StreamDecoder) incrementalResidualDecode(st *sicState, contribs [][]reconSeg, touched, active []shard.Range, calib *edgedetect.CalibPreset) (*Result, error) {
	n := len(sd.retain)
	regions := sd.laneRegions(active, n)
	st.ensureResidual(sd.retain, regions)
	for _, r := range touched {
		base := int(r.Lo)
		sd.meter.DoRanges(sd.workers, int(r.Len()), func(clo, chi int) {
			subtractSegs(st.residual, contribs, base+clo, base+chi)
		})
	}
	seed := sd.seedLanes(st, st.residual, active, regions, calib)
	if seed == nil {
		st.ensureResidual(sd.retain, []shard.Range{{Lo: 0, Hi: int64(n)}})
	}
	return sd.residualDecode(st.residual, calib, seed)
}

// fullResidualDecode is the ForceFullResidual A/B mechanics — no
// carry-over: reconstruct every trusted stream and subtract them all
// from a freshly copied residual. The subtraction runs in results
// order, so each sample sees the exact subtraction sequence the
// incremental path accumulated round by round and the residuals are
// bit-identical; the lane fold (seedLanes — shared code, shared
// regions, bit-identical residual input) then produces identical lane
// values and the identical push-path fallback decision, and the decode
// runs under the same detection mask — so the A/B axis isolates
// exactly the carry-over machinery.
func (sd *StreamDecoder) fullResidualDecode(st *sicState, active []shard.Range, calib *edgedetect.CalibPreset) (*Result, error) {
	n := len(sd.retain)
	ramp := int(sd.cfg.Edge.Gap)
	if ramp < 1 {
		ramp = 3
	}
	var trusted []*StreamResult
	for _, sr := range sd.results {
		if quality(sr) >= sicTrust {
			trusted = append(trusted, sr)
		}
	}
	contribs := make([][]reconSeg, len(trusted))
	sd.meter.Do(sd.workers, len(trusted), func(i int) {
		contribs[i] = reconstruct(trusted[i], n, ramp)
	})
	residual := pool.ComplexUninit(n)
	copy(residual, sd.retain)
	sd.meter.DoRanges(sd.workers, n, func(lo, hi int) {
		subtractSegs(residual, contribs, lo, hi)
	})
	seed := sd.seedLanes(st, residual, active, sd.laneRegions(active, n), calib)
	res2, err := sd.residualDecode(residual, calib, seed)
	// The residual pass copies everything it keeps (slot observations,
	// edge differentials, stream vectors), so the buffer can go back to
	// the pool as soon as the decode returns.
	pool.PutComplex(residual)
	return res2, err
}

// residualDecode runs one inner pipeline pass over a residual.
// Metering or tracing it would double-count every stage, so recovered
// streams surface only through the SIC counters; the pass's wall time
// is recorded against stage.sic_ns (runtime-class).
func (sd *StreamDecoder) residualDecode(residual []complex128, calib *edgedetect.CalibPreset, seed *edgedetect.SweepSeed) (*Result, error) {
	resCap := &iq.Capture{SampleRate: sd.sampleRate, Samples: residual}
	sub := sd.cfg
	sub.CancellationRounds = 0
	sub.Metrics = nil
	sub.Tracer = nil
	sub.OnFrame = nil
	sub.sicCalib = calib
	sub.sicSeed = seed
	ts := sd.now()
	res2, err := Decode(resCap, sub)
	sd.observe(sd.m.Stage.SIC, ts)
	return res2, err
}

// subtractSegs subtracts every contribution's segments overlapping
// [lo, hi) from the residual, in contribution order: each sample sees
// the exact same subtraction sequence as the serial stream-major loop,
// so the residual is bit-identical at any worker count and any range
// tiling. A constant segment whose value is exactly (+0, +0) is
// skipped: x - (+0.0) == x bitwise for every float64 (including ±0;
// NaN payloads are irrelevant downstream, which only tests IsNaN), and
// most of a capture lies in such segments — the pre-preamble and
// post-frame stretches of every reconstruction.
func subtractSegs(residual []complex128, contribs [][]reconSeg, lo, hi int) {
	for _, segs := range contribs {
		si := sort.Search(len(segs), func(i int) bool { return segs[i].hi > lo })
		for ; si < len(segs) && segs[si].lo < hi; si++ {
			seg := segs[si]
			clo, chi := seg.lo, seg.hi
			if clo < lo {
				clo = lo
			}
			if chi > hi {
				chi = hi
			}
			if seg.dense != nil {
				d := seg.dense[clo-seg.lo:]
				for i := clo; i < chi; i++ {
					residual[i] -= d[i-clo]
				}
				continue
			}
			v := seg.val
			if real(v) == 0 && imag(v) == 0 &&
				!math.Signbit(real(v)) && !math.Signbit(imag(v)) {
				continue
			}
			for i := clo; i < chi; i++ {
				residual[i] -= v
			}
		}
	}
}

// touchedRanges merges the exact extents of every non-zero
// reconstruction segment — the samples this round's subtraction
// modifies — into a sorted disjoint shard.Range tiling. Constant
// (+0, +0) segments leave the residual bitwise unchanged and are
// excluded, exactly mirroring subtractSegs's skip.
func touchedRanges(contribs [][]reconSeg) []shard.Range {
	var spans []shard.Range
	for _, segs := range contribs {
		for _, seg := range segs {
			if seg.dense == nil && real(seg.val) == 0 && imag(seg.val) == 0 &&
				!math.Signbit(real(seg.val)) && !math.Signbit(imag(seg.val)) {
				continue
			}
			spans = append(spans, shard.Range{Lo: int64(seg.lo), Hi: int64(seg.hi)})
		}
	}
	return mergeRanges(spans)
}

// mergeRanges sorts spans by Lo and merges overlapping or adjacent
// ones into a disjoint cover.
func mergeRanges(spans []shard.Range) []shard.Range {
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Lo < spans[j].Lo })
	merged := spans[:0]
	for _, sp := range spans {
		if sp.Lo >= sp.Hi {
			continue
		}
		if m := len(merged); m > 0 && sp.Lo <= merged[m-1].Hi {
			if sp.Hi > merged[m-1].Hi {
				merged[m-1].Hi = sp.Hi
			}
			continue
		}
		merged = append(merged, sp)
	}
	return merged
}

// dirtyClosure is the residual pass's detection mask: the touched
// spans widened by the sweep's cut distance (shard.SweepReach — beyond
// it every windowed differential reads byte-identical input, the
// §12/§15 argument), then closed over the widened extents of decoded
// streams they overlap. A stream straddling a dirty span must stay
// fully visible to the residual pass — masking half of it would
// re-register the visible half as a phantom partial — and its extent
// can in turn overlap further streams, so the union iterates to a
// fixpoint (collision chains). Returns nil (sweep everything) when
// there are no touched spans.
func (sd *StreamDecoder) dirtyClosure(touched []shard.Range, reach int64, n int) []shard.Range {
	active := widenRanges(touched, reach, n)
	if len(active) == 0 {
		return nil
	}
	exts := make([]shard.Range, 0, len(sd.results))
	for _, sr := range sd.results {
		if len(sr.Slots) == 0 {
			continue
		}
		lo, hi := sr.Slots[0].Pos-reach, sr.Slots[len(sr.Slots)-1].Pos+1+reach
		if lo < 0 {
			lo = 0
		}
		if hi > int64(n) {
			hi = int64(n)
		}
		if lo < hi {
			exts = append(exts, shard.Range{Lo: lo, Hi: hi})
		}
	}
	for changed := true; changed; {
		changed = false
		kept := exts[:0]
		for _, e := range exts {
			if overlapsRanges(active, e) {
				active = mergeRanges(append(active, e))
				changed = true
			} else {
				kept = append(kept, e)
			}
		}
		exts = kept
	}
	return active
}

// widenRanges pads each span by pad samples, clamps to [0, n), and
// merges the result into a sorted disjoint cover.
func widenRanges(spans []shard.Range, pad int64, n int) []shard.Range {
	widened := make([]shard.Range, 0, len(spans))
	for _, r := range spans {
		lo, hi := r.Lo-pad, r.Hi+pad
		if lo < 0 {
			lo = 0
		}
		if hi > int64(n) {
			hi = int64(n)
		}
		if lo < hi {
			widened = append(widened, shard.Range{Lo: lo, Hi: hi})
		}
	}
	return mergeRanges(widened)
}

// rangeDiff returns the parts of a not covered by b, both sorted
// disjoint covers, as a sorted disjoint cover.
func rangeDiff(a, b []shard.Range) []shard.Range {
	var out []shard.Range
	bi := 0
	for _, r := range a {
		lo := r.Lo
		for bi < len(b) && b[bi].Hi <= lo {
			bi++
		}
		for j := bi; j < len(b) && b[j].Lo < r.Hi; j++ {
			if b[j].Lo > lo {
				out = append(out, shard.Range{Lo: lo, Hi: b[j].Lo})
			}
			if b[j].Hi > lo {
				lo = b[j].Hi
			}
		}
		if lo < r.Hi {
			out = append(out, shard.Range{Lo: lo, Hi: r.Hi})
		}
	}
	return out
}

// overlapsRanges reports whether e intersects any of rs.
func overlapsRanges(rs []shard.Range, e shard.Range) bool {
	for _, r := range rs {
		if r.Lo < e.Hi && e.Lo < r.Hi {
			return true
		}
	}
	return false
}

// isDuplicateStream reports whether a residual-pass stream re-detects
// an already decoded one: same rate, grid phase within a collision
// window, and a matching (±) vector.
func isDuplicateStream(nr *StreamResult, existing []*StreamResult, cfg Config) bool {
	period := cfg.Streams.SampleRate / nr.Stream.Rate
	for _, sr := range existing {
		if sr.Stream.Rate != nr.Stream.Rate {
			continue
		}
		dph := math.Mod(math.Abs(sr.Stream.Offset-nr.Stream.Offset), period)
		if dph > period/2 {
			dph = period - dph
		}
		if dph > float64(cfg.Edge.CoalesceDist) {
			continue
		}
		scale := math.Max(dsp.Abs(sr.Stream.E), dsp.Abs(nr.Stream.E))
		if dsp.Dist(sr.Stream.E, nr.Stream.E) < 0.5*scale ||
			dsp.Dist(sr.Stream.E, -nr.Stream.E) < 0.5*scale {
			return true
		}
	}
	return false
}

// quality scores a decoded stream for SIC reliability: the fraction of
// clean walker locks among slots that decoded as edges. Mixture
// decodes (wrong vector, wrong grid) lock rarely and score low.
func quality(sr *StreamResult) float64 {
	edges, locks := 0, 0
	for k, st := range sr.States {
		if st != viterbi.Up && st != viterbi.Down {
			continue
		}
		edges++
		if k < len(sr.Slots) && sr.Slots[k].Kind == streams.MatchClean {
			locks++
		}
	}
	if edges == 0 {
		return 0
	}
	return float64(locks) / float64(edges)
}
