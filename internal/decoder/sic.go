package decoder

import (
	"math"
	"sort"

	"lf/internal/dsp"
	"lf/internal/iq"
	"lf/internal/pool"
	"lf/internal/streams"
	"lf/internal/viterbi"
	"lf/internal/work"
)

// Successive interference cancellation (SIC). A tag that failed to
// register — because its preamble collided, or its phase sat inside a
// dense multi-tag chain — is invisible to the first decode pass, yet
// its signal is still in the capture. Reconstructing every decoded
// stream's waveform from its decoded edge states and subtracting it
// from the raw samples leaves a residual in which the missed tags
// stand nearly alone, so a second pass of the ordinary pipeline picks
// them up. This is an engineering extension beyond the paper (which
// cites SIC/ZigZag as related work); it is ablatable via
// Config.CancellationRounds.

// refineE re-estimates a stream's edge vector from its cleanly locked
// slots: the registration estimate comes from a handful of early
// edges, while the clean locks average over the whole frame — a
// noticeably better subtraction vector.
func refineE(sr *StreamResult) complex128 {
	reg := sr.Stream.E
	var sum complex128
	count := 0
	for k, slot := range sr.Slots {
		if slot.Kind != streams.MatchClean || k >= len(sr.States) {
			continue
		}
		switch sr.States[k] {
		case viterbi.Up:
			sum += slot.Obs
			count++
		case viterbi.Down:
			sum -= slot.Obs
			count++
		}
	}
	if count < 8 {
		return reg
	}
	return sum / complex(float64(count), 0)
}

// reconSeg is one run of a reconstructed waveform: the per-sample
// values dense[0:hi-lo] over [lo, hi) when dense is non-nil, else the
// constant val. A stream's reconstruction is a position-sorted,
// non-overlapping cover of [0, n).
type reconSeg struct {
	lo, hi int
	val    complex128
	dense  []complex128
}

// reconstruct renders one decoded stream's baseband contribution — a
// ±E step at every decoded edge slot, ramped over rampSamples — as a
// run-length segment list instead of a dense n-sample buffer.
//
// The reference semantics are the former dense form: an n-sample
// difference array receiving each slot's ramp steps in slot order,
// then a running prefix accumulation out[i] = Σ diff[0..i]. Between
// ramp regions diff[i] is exactly +0.0 (the zeroed buffer only ever
// accumulated values into ramp positions, and x + (+0.0) == x bitwise
// for every float64 including ±0 and NaN), so the accumulator is
// bitwise constant there — a run-length representation loses nothing.
// Inside ramp regions the same accumulation runs densely, with each
// position's ramp contributions added in slot order exactly as the
// dense loop did. The result is O(slots) space and time instead of
// O(capture), and bit-identical sample for sample.
func reconstruct(sr *StreamResult, n int, rampSamples int) []reconSeg {
	e := refineE(sr)
	type event struct {
		idx  int
		step complex128
	}
	var events []event
	for k, st := range sr.States {
		if k >= len(sr.Slots) {
			break
		}
		var delta complex128
		switch st {
		case viterbi.Up:
			delta = e
		case viterbi.Down:
			delta = -e
		default:
			continue
		}
		// Centre the ramp on the slot position, as the synthesizer and
		// detector do.
		idx := sr.Slots[k].Pos - int64(rampSamples/2)
		if idx < 0 {
			idx = 0
		}
		if idx >= int64(n) {
			continue
		}
		events = append(events, event{int(idx), delta / complex(float64(rampSamples), 0)})
	}

	// Merge the ramp intervals [idx, idx+ramp) ∩ [0, n) into a sorted
	// disjoint cover of the "active" positions; everything outside is a
	// constant run.
	type span struct{ lo, hi int }
	spans := make([]span, len(events))
	for i, ev := range events {
		hi := ev.idx + rampSamples
		if hi > n {
			hi = n
		}
		spans[i] = span{ev.idx, hi}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	merged := spans[:0]
	for _, sp := range spans {
		if sp.lo >= sp.hi {
			continue
		}
		if m := len(merged); m > 0 && sp.lo <= merged[m-1].hi {
			if sp.hi > merged[m-1].hi {
				merged[m-1].hi = sp.hi
			}
			continue
		}
		merged = append(merged, sp)
	}

	// One scratch buffer holds every active interval's diff values;
	// offsets[i] is interval i's slice start. Ramp steps are added in
	// slot (event) order, so a position covered by overlapping ramps
	// accumulates them in exactly the dense loop's order.
	total := 0
	offsets := make([]int, len(merged))
	for i, sp := range merged {
		offsets[i] = total
		total += sp.hi - sp.lo
	}
	diff := make([]complex128, total)
	for _, ev := range events {
		si := sort.Search(len(merged), func(i int) bool { return merged[i].hi > ev.idx })
		sp := merged[si]
		base := offsets[si] + ev.idx - sp.lo
		hi := ev.idx + rampSamples
		if hi > sp.hi {
			// The event's ramp runs past this interval only when clipped
			// at the capture end; positions ≥ n are never read.
			hi = sp.hi
		}
		for r := 0; r < hi-ev.idx; r++ {
			diff[base+r] += ev.step
		}
	}

	// Prefix accumulation over the active intervals; the gaps between
	// them carry the accumulator value unchanged.
	segs := make([]reconSeg, 0, 2*len(merged)+1)
	var acc complex128
	pos := 0
	for i, sp := range merged {
		if sp.lo > pos {
			segs = append(segs, reconSeg{lo: pos, hi: sp.lo, val: acc})
		}
		dense := diff[offsets[i] : offsets[i]+sp.hi-sp.lo]
		for j := range dense {
			acc += dense[j]
			dense[j] = acc
		}
		segs = append(segs, reconSeg{lo: sp.lo, hi: sp.hi, dense: dense})
		pos = sp.hi
	}
	if pos < n {
		segs = append(segs, reconSeg{lo: pos, hi: n, val: acc})
	}
	return segs
}

// cancelAndRetry subtracts all decoded streams from the capture and
// runs one more pipeline pass over the residual, returning any newly
// discovered streams (deduplicated against the existing set, and
// required to carry at least a real edge's worth of signal — the
// residue of an imperfectly cancelled stream otherwise re-registers
// as a phantom). minE is derived from the original capture's noise
// floor.
func cancelAndRetry(capture *iq.Capture, results []*StreamResult, cfg Config, minE float64, workers int, meter *work.Meter) []*StreamResult {
	n := len(capture.Samples)
	ramp := int(cfg.Edge.Gap)
	if ramp < 1 {
		ramp = 3
	}
	// Only subtract trustworthy decodes: a mixture or mistracked
	// stream would inject its errors into the residual.
	var trusted []*StreamResult
	for _, sr := range results {
		if quality(sr) >= 0.45 {
			trusted = append(trusted, sr)
		}
	}
	// Reconstruct every trusted stream's waveform in parallel (each
	// writes only its own segment list), then subtract over sample
	// chunks with a fixed stream order: each sample sees the exact same
	// subtraction sequence as the serial stream-major loop, so the
	// residual is bit-identical at any worker count. A constant segment
	// whose value is exactly (+0, +0) is skipped: x - (+0.0) == x
	// bitwise for every float64 (including ±0; NaN payloads are
	// irrelevant downstream, which only tests IsNaN), and most of a
	// capture lies in such segments — the pre-preamble and post-frame
	// stretches of every reconstruction.
	contribs := make([][]reconSeg, len(trusted))
	meter.Do(workers, len(trusted), func(i int) {
		contribs[i] = reconstruct(trusted[i], n, ramp)
	})
	residual := pool.ComplexUninit(n)
	copy(residual, capture.Samples)
	meter.DoRanges(workers, n, func(lo, hi int) {
		for _, segs := range contribs {
			si := sort.Search(len(segs), func(i int) bool { return segs[i].hi > lo })
			for ; si < len(segs) && segs[si].lo < hi; si++ {
				seg := segs[si]
				clo, chi := seg.lo, seg.hi
				if clo < lo {
					clo = lo
				}
				if chi > hi {
					chi = hi
				}
				if seg.dense != nil {
					d := seg.dense[clo-seg.lo:]
					for i := clo; i < chi; i++ {
						residual[i] -= d[i-clo]
					}
					continue
				}
				v := seg.val
				if real(v) == 0 && imag(v) == 0 &&
					!math.Signbit(real(v)) && !math.Signbit(imag(v)) {
					continue
				}
				for i := clo; i < chi; i++ {
					residual[i] -= v
				}
			}
		}
	})
	resCap := &iq.Capture{SampleRate: capture.SampleRate, Samples: residual}
	sub := cfg
	sub.CancellationRounds = 0
	// The residual pass is a full inner pipeline run; metering or
	// tracing it would double-count every stage, so recovered streams
	// surface only through the SIC counters.
	sub.Metrics = nil
	sub.Tracer = nil
	sub.OnFrame = nil
	res2, err := Decode(resCap, sub)
	// The residual pass copies everything it keeps (slot observations,
	// edge differentials, stream vectors), so the buffer can go back to
	// the pool as soon as the decode returns.
	pool.PutComplex(residual)
	if err != nil {
		return nil
	}
	var fresh []*StreamResult
	for _, nr := range res2.Streams {
		if dsp.Abs(nr.Stream.E) < minE {
			continue // cancellation residue, not a tag
		}
		if isDuplicateStream(nr, results, cfg) {
			continue
		}
		nr.Recovered = true
		fresh = append(fresh, nr)
	}
	return fresh
}

// isDuplicateStream reports whether a residual-pass stream re-detects
// an already decoded one: same rate, grid phase within a collision
// window, and a matching (±) vector.
func isDuplicateStream(nr *StreamResult, existing []*StreamResult, cfg Config) bool {
	period := cfg.Streams.SampleRate / nr.Stream.Rate
	for _, sr := range existing {
		if sr.Stream.Rate != nr.Stream.Rate {
			continue
		}
		dph := math.Mod(math.Abs(sr.Stream.Offset-nr.Stream.Offset), period)
		if dph > period/2 {
			dph = period - dph
		}
		if dph > float64(cfg.Edge.CoalesceDist) {
			continue
		}
		scale := math.Max(dsp.Abs(sr.Stream.E), dsp.Abs(nr.Stream.E))
		if dsp.Dist(sr.Stream.E, nr.Stream.E) < 0.5*scale ||
			dsp.Dist(sr.Stream.E, -nr.Stream.E) < 0.5*scale {
			return true
		}
	}
	return false
}

// quality scores a decoded stream for SIC reliability: the fraction of
// clean walker locks among slots that decoded as edges. Mixture
// decodes (wrong vector, wrong grid) lock rarely and score low.
func quality(sr *StreamResult) float64 {
	edges, locks := 0, 0
	for k, st := range sr.States {
		if st != viterbi.Up && st != viterbi.Down {
			continue
		}
		edges++
		if k < len(sr.Slots) && sr.Slots[k].Kind == streams.MatchClean {
			locks++
		}
	}
	if edges == 0 {
		return 0
	}
	return float64(locks) / float64(edges)
}
