package decoder

import (
	"math"

	"lf/internal/dsp"
	"lf/internal/iq"
	"lf/internal/pool"
	"lf/internal/streams"
	"lf/internal/viterbi"
	"lf/internal/work"
)

// Successive interference cancellation (SIC). A tag that failed to
// register — because its preamble collided, or its phase sat inside a
// dense multi-tag chain — is invisible to the first decode pass, yet
// its signal is still in the capture. Reconstructing every decoded
// stream's waveform from its decoded edge states and subtracting it
// from the raw samples leaves a residual in which the missed tags
// stand nearly alone, so a second pass of the ordinary pipeline picks
// them up. This is an engineering extension beyond the paper (which
// cites SIC/ZigZag as related work); it is ablatable via
// Config.CancellationRounds.

// refineE re-estimates a stream's edge vector from its cleanly locked
// slots: the registration estimate comes from a handful of early
// edges, while the clean locks average over the whole frame — a
// noticeably better subtraction vector.
func refineE(sr *StreamResult) complex128 {
	reg := sr.Stream.E
	var sum complex128
	count := 0
	for k, slot := range sr.Slots {
		if slot.Kind != streams.MatchClean || k >= len(sr.States) {
			continue
		}
		switch sr.States[k] {
		case viterbi.Up:
			sum += slot.Obs
			count++
		case viterbi.Down:
			sum -= slot.Obs
			count++
		}
	}
	if count < 8 {
		return reg
	}
	return sum / complex(float64(count), 0)
}

// reconstruct renders one decoded stream's baseband contribution: a
// ±E step at every decoded edge slot, ramped over rampSamples. The
// returned buffer comes from the scratch pool; the caller owns it and
// should recycle it with pool.PutComplex once consumed.
func reconstruct(sr *StreamResult, n int, rampSamples int) []complex128 {
	diff := pool.Complex(n + rampSamples + 1)
	defer pool.PutComplex(diff)
	e := refineE(sr)
	for k, st := range sr.States {
		if k >= len(sr.Slots) {
			break
		}
		var delta complex128
		switch st {
		case viterbi.Up:
			delta = e
		case viterbi.Down:
			delta = -e
		default:
			continue
		}
		// Centre the ramp on the slot position, as the synthesizer and
		// detector do.
		idx := sr.Slots[k].Pos - int64(rampSamples/2)
		if idx < 0 {
			idx = 0
		}
		if idx >= int64(n) {
			continue
		}
		step := delta / complex(float64(rampSamples), 0)
		for r := 0; r < rampSamples; r++ {
			diff[idx+int64(r)] += step
		}
	}
	out := pool.Complex(n)
	var acc complex128
	for i := 0; i < n; i++ {
		acc += diff[i]
		out[i] = acc
	}
	return out
}

// cancelAndRetry subtracts all decoded streams from the capture and
// runs one more pipeline pass over the residual, returning any newly
// discovered streams (deduplicated against the existing set, and
// required to carry at least a real edge's worth of signal — the
// residue of an imperfectly cancelled stream otherwise re-registers
// as a phantom). minE is derived from the original capture's noise
// floor.
func cancelAndRetry(capture *iq.Capture, results []*StreamResult, cfg Config, minE float64, workers int, meter *work.Meter) []*StreamResult {
	n := len(capture.Samples)
	ramp := int(cfg.Edge.Gap)
	if ramp < 1 {
		ramp = 3
	}
	// Only subtract trustworthy decodes: a mixture or mistracked
	// stream would inject its errors into the residual.
	var trusted []*StreamResult
	for _, sr := range results {
		if quality(sr) >= 0.45 {
			trusted = append(trusted, sr)
		}
	}
	// Reconstruct every trusted stream's waveform in parallel (each
	// writes only its own buffer), then subtract over sample chunks
	// with a fixed stream order: each sample sees the exact same
	// subtraction sequence as the serial stream-major loop, so the
	// residual is bit-identical at any worker count.
	contribs := make([][]complex128, len(trusted))
	meter.Do(workers, len(trusted), func(i int) {
		contribs[i] = reconstruct(trusted[i], n, ramp)
	})
	residual := pool.Complex(n)
	copy(residual, capture.Samples)
	meter.DoRanges(workers, n, func(lo, hi int) {
		for _, contrib := range contribs {
			for i := lo; i < hi; i++ {
				residual[i] -= contrib[i]
			}
		}
	})
	for _, contrib := range contribs {
		pool.PutComplex(contrib)
	}
	resCap := &iq.Capture{SampleRate: capture.SampleRate, Samples: residual}
	sub := cfg
	sub.CancellationRounds = 0
	// The residual pass is a full inner pipeline run; metering or
	// tracing it would double-count every stage, so recovered streams
	// surface only through the SIC counters.
	sub.Metrics = nil
	sub.Tracer = nil
	sub.OnFrame = nil
	res2, err := Decode(resCap, sub)
	// The residual pass copies everything it keeps (slot observations,
	// edge differentials, stream vectors), so the buffer can go back to
	// the pool as soon as the decode returns.
	pool.PutComplex(residual)
	if err != nil {
		return nil
	}
	var fresh []*StreamResult
	for _, nr := range res2.Streams {
		if dsp.Abs(nr.Stream.E) < minE {
			continue // cancellation residue, not a tag
		}
		if isDuplicateStream(nr, results, cfg) {
			continue
		}
		nr.Recovered = true
		fresh = append(fresh, nr)
	}
	return fresh
}

// isDuplicateStream reports whether a residual-pass stream re-detects
// an already decoded one: same rate, grid phase within a collision
// window, and a matching (±) vector.
func isDuplicateStream(nr *StreamResult, existing []*StreamResult, cfg Config) bool {
	period := cfg.Streams.SampleRate / nr.Stream.Rate
	for _, sr := range existing {
		if sr.Stream.Rate != nr.Stream.Rate {
			continue
		}
		dph := math.Mod(math.Abs(sr.Stream.Offset-nr.Stream.Offset), period)
		if dph > period/2 {
			dph = period - dph
		}
		if dph > float64(cfg.Edge.CoalesceDist) {
			continue
		}
		scale := math.Max(dsp.Abs(sr.Stream.E), dsp.Abs(nr.Stream.E))
		if dsp.Dist(sr.Stream.E, nr.Stream.E) < 0.5*scale ||
			dsp.Dist(sr.Stream.E, -nr.Stream.E) < 0.5*scale {
			return true
		}
	}
	return false
}

// quality scores a decoded stream for SIC reliability: the fraction of
// clean walker locks among slots that decoded as edges. Mixture
// decodes (wrong vector, wrong grid) lock rarely and score low.
func quality(sr *StreamResult) float64 {
	edges, locks := 0, 0
	for k, st := range sr.States {
		if st != viterbi.Up && st != viterbi.Down {
			continue
		}
		edges++
		if k < len(sr.Slots) && sr.Slots[k].Kind == streams.MatchClean {
			locks++
		}
	}
	if edges == 0 {
		return 0
	}
	return float64(locks) / float64(edges)
}
