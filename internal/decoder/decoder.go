// Package decoder orchestrates the full LF-Backscatter reader pipeline
// of §3: edge detection on IQ differentials, preamble-based stream
// registration, drift-tracked slot walking, IQ cluster-based collision
// detection and separation, and Viterbi error correction. Every stage
// is individually toggleable so the Fig. 9 ablation (Edge / Edge+IQ /
// Edge+IQ+Error) runs through the same code.
package decoder

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/cmplx"
	"slices"

	"lf/internal/cluster"
	"lf/internal/collide"
	"lf/internal/edgedetect"
	"lf/internal/epc"
	"lf/internal/iq"
	"lf/internal/obs"
	"lf/internal/rng"
	"lf/internal/streams"
	"lf/internal/viterbi"
)

// SeparationMode selects how two-tag collisions are separated.
type SeparationMode int

const (
	// SeparationHybrid (default): blind nine-cluster parallelogram
	// separation when a colliding pair recurs often enough to populate
	// the lattice, anchored classification otherwise.
	SeparationHybrid SeparationMode = iota
	// SeparationAnchored always classifies against the preamble-derived
	// edge vectors.
	SeparationAnchored
	// SeparationBlind always attempts the paper's blind parallelogram;
	// pairs with too few observations stay unresolved.
	SeparationBlind
)

// Stages toggles pipeline stages for the Fig. 9 breakdown. Edge-based
// concurrency is always on — it is the substrate the rest builds on.
type Stages struct {
	// IQSeparation enables collision detection and separation in the
	// IQ plane (§3.3–3.4).
	IQSeparation bool
	// ErrorCorrection enables the Viterbi decoder (§3.5); without it
	// slots are hard-decided independently.
	ErrorCorrection bool
}

// AllStages enables the full pipeline.
func AllStages() Stages { return Stages{IQSeparation: true, ErrorCorrection: true} }

// Config configures the decoder.
type Config struct {
	// Edge configures edge detection.
	Edge edgedetect.Config
	// Streams configures registration and slot walking.
	Streams streams.Config
	// PayloadBits returns the frame payload length (in bits) for a
	// stream at the given rate. The harness knows frame sizes; a
	// deployed system would carry a length field.
	PayloadBits func(rate float64) int
	// Stages toggles pipeline stages.
	Stages Stages
	// Separation selects the collision separation strategy.
	Separation SeparationMode
	// MinBlindPoints is the minimum number of recurring collision
	// observations required before blind separation is attempted.
	MinBlindPoints int
	// CancellationRounds enables successive interference cancellation:
	// after each decode pass, decoded streams are subtracted from the
	// capture and the pipeline re-runs on the residual to recover tags
	// whose registration the interference masked. 0 disables.
	CancellationRounds int
	// Seed drives the decoder's internal randomness (k-means restarts).
	Seed int64
	// Parallelism bounds the worker pool the pipeline fans out on:
	// chunked edge detection, per-stream walking, merged-pair splitting,
	// sequence decoding, and SIC reconstruction (0 = all cores,
	// 1 = serial). Decoder-internal randomness is split per stream in a
	// fixed order, so the decode is bit-identical at any setting.
	Parallelism int
	// PipelineParallelism selects the streaming decoder's execution
	// shape. 0 or 1 runs every stage inline on the pushing goroutine
	// (the historical serial path). ≥ 2 runs the decoder as a
	// pipeline-parallel stage graph: edge detection and
	// walking/commit each own a goroutine, connected by bounded
	// queues (pipeline.go), so detection of block N overlaps walking
	// of block N-1 on multicore hosts. The decode is bit-identical
	// either way — stages exchange immutable snapshots and every
	// horizon check is unchanged — only wall-clock timing and the
	// moment OnFrame/Tracer callbacks fire (still the pushing
	// goroutine, slightly later) differ. Batch Decode ignores it.
	PipelineParallelism int
	// ShardParallelism ≥ 2 runs the decode data-parallel across
	// cores: the dominant per-sample stage (the differential
	// magnitude sweep) is carved into seam-safe overlapping shards
	// computed concurrently on a pull-based worker pool
	// (internal/shard, edgedetect stripe mode), and the slot walkers
	// fan out across the pool once streams register. The shard
	// overlap derives from the pipeline's provably-final cut
	// distances (DESIGN.md §15), so the decode is byte-identical to
	// ShardParallelism = 1 at any shard count and composes freely
	// with PipelineParallelism (the detect stage owns the shard
	// pool). 0 or 1 disables sharding. Batch Decode honours it too —
	// the capture is pushed as one block and the shards drain at
	// Flush — as do SIC residual decodes, which inherit the setting.
	ShardParallelism int
	// StripeRunner, when non-nil and ShardParallelism ≥ 2, executes
	// each sweep stripe instead of the in-process kernel — the
	// distributed coordinator (internal/dist) hooks here to ship
	// stripes to remote workers. The runner must fill the job's Dst
	// with exactly the bytes StripeJob.Run would produce, or return an
	// error (which poisons that stripe like an in-process panic). SIC
	// residual decodes inherit it with the rest of the config.
	StripeRunner func(*edgedetect.StripeJob) error
	// StageDepth bounds each inter-stage queue of the pipelined
	// streaming decoder, in blocks/tokens (0 selects
	// DefaultStageDepth, minimum 1). Deeper queues absorb stage-time
	// jitter at the cost of buffering more pushed blocks, which
	// RetainedBytes accounts for.
	StageDepth int
	// CalibSamples bounds the edge detector's noise calibration to the
	// first CalibSamples differential magnitudes, which is what lets
	// the streaming decoder start detecting — and bound its memory —
	// before end of capture. 0 calibrates over the whole capture at
	// Flush (the historical batch semantics), deferring all detection
	// to end of capture. Batch Decode honours the same knob, so batch
	// and streaming stay bit-identical at any setting.
	CalibSamples int64
	// ForceDenseSweep disables the edge detector's coarse-to-fine
	// differential sweep (DESIGN.md §12), forcing the dense kernel at
	// every position. The decode is bit-identical either way; the knob
	// exists for A/B benchmarking and debugging.
	ForceDenseSweep bool
	// ForceFullResidual disables incremental SIC (DESIGN.md §17),
	// reverting every cancellation round to the historical mechanics: a
	// freshly allocated residual buffer, a full re-subtraction of every
	// trusted stream, and a from-scratch re-decode of the whole
	// residual. The default incremental path keeps one residual buffer
	// across rounds, subtracts only the streams decoded in the latest
	// round over their dirty spans, repairs the sweep's prefix sums
	// span-locally, and seeds the residual pass's detector with the
	// repaired lanes and the first pass's calibration. The decode is
	// byte-identical either way (sic_equivalence_test.go pins the
	// matrix); the knob exists for A/B benchmarking and debugging,
	// mirroring ForceDenseSweep.
	ForceFullResidual bool
	// ViterbiWindow is the sliding trellis window of the sequence
	// decoder: survivor paths commit as they merge and are truncated at
	// this depth, bounding per-stream decoder state. 0 selects
	// viterbi.DefaultWindow. Merge commits are exact, so results match
	// the unwindowed recursion for any realistic capture.
	ViterbiWindow int
	// OnFrame, when non-nil, is invoked once per decoded stream as soon
	// as its frame commits — before end of capture on the streaming
	// path — in the same order the frames appear in Result.Streams.
	// Callbacks run on the pushing goroutine; the *StreamResult is the
	// same object later returned in the Result.
	OnFrame func(*StreamResult)
	// Metrics, when non-nil, receives per-stage pipeline counters,
	// histograms, and timings (see obs.Pipeline for the determinism
	// contract). nil decodes record nothing and pay one predictable
	// branch per record site. SIC residual passes always run with nil
	// Metrics so a recovered stream's internal re-decode never double
	// counts.
	Metrics *obs.Pipeline
	// Tracer, when non-nil, receives structured span events —
	// calibrate, register, commit, per-frame, sic, flush — emitted on
	// the pushing goroutine at deterministic points, mirroring OnFrame.
	// The event sequence is identical at any Parallelism and block
	// size. SIC residual passes run untraced.
	Tracer obs.Tracer

	// testStreamHook, when non-nil, runs against each stream result
	// just before sequence decoding — the seam the quarantine tests use
	// to poison a single stream's decode.
	testStreamHook func(*StreamResult)

	// sicCalib, when non-nil, presets the edge detector's noise
	// calibration — SIC residual passes carry the first pass's
	// floor/threshold instead of recalibrating on the signal-subtracted
	// residual (sic.go, DESIGN.md §17). Internal: set only by the
	// cancellation loop on its sub-decode configs.
	sicCalib *edgedetect.CalibPreset
	// sicSeed, when non-nil, seeds the detector with the round cache's
	// pre-folded (and span-locally repaired) prefix-sum lanes, skipping
	// sample ingest entirely. Internal: requires sicCalib; set only by
	// the incremental cancellation path.
	sicSeed *edgedetect.SweepSeed
}

// metrics returns the configured pipeline or the shared disabled one,
// so record sites never nil-check the Config field.
func (cfg *Config) metrics() *obs.Pipeline {
	if cfg.Metrics != nil {
		return cfg.Metrics
	}
	return obs.Nop()
}

// DefaultConfig assembles a full-pipeline decoder for captures at the
// given sample rate, tag rate set, and fixed payload size.
func DefaultConfig(sampleRate float64, rates []float64, payloadBits int) Config {
	return Config{
		Edge:               edgedetect.DefaultConfig(),
		Streams:            streams.DefaultConfig(sampleRate, rates),
		PayloadBits:        func(float64) int { return payloadBits },
		Stages:             AllStages(),
		Separation:         SeparationHybrid,
		MinBlindPoints:     24,
		CancellationRounds: 3,
		Seed:               1,
		Parallelism:        0,
	}
}

// StreamResult is the decode of one registered stream.
type StreamResult struct {
	// Stream is the registered stream (rate, offset, anchor vector).
	Stream *streams.Stream
	// Slots are the walker observations, post collision cancellation.
	Slots []streams.SlotObs
	// States is the decoded edge-state sequence.
	States []viterbi.State
	// Bits is the decoded payload.
	Bits []byte
	// CollidedSlots counts slots that went through collision
	// separation.
	CollidedSlots int
	// PayloadStart is the slot index of the first payload bit inside
	// Slots/States (after the delimiter located by frame alignment).
	PayloadStart int
	// BlindSeparated reports whether any of this stream's collisions
	// were resolved with the blind parallelogram method.
	BlindSeparated bool
	// Recovered reports that the stream was found on a cancellation
	// residual rather than in the first pass.
	Recovered bool
	// PathMargin is the Viterbi survivor-score margin (best minus
	// runner-up end-state log-likelihood, normalised per slot). 0 when
	// error correction is off.
	PathMargin float64
	// CRCOK reports whether Bits ends in a valid EPC CRC-16 — only
	// meaningful when the tag appends one (see epc.CRC16Bits).
	CRCOK bool
	// Confidence scores the frame in [0, 1]: the fraction of cleanly
	// locked edge slots, attenuated by how decisively the Viterbi
	// trellis preferred this sequence. CRC-less deployments can gate on
	// it instead of a checksum; CRC-framed ones (internal/reliable) use
	// it to rank retransmission candidates.
	Confidence float64
}

// Result is a full-capture decode.
type Result struct {
	// Streams holds one entry per registered stream, ordered by start
	// offset.
	Streams []*StreamResult
	// EdgeCount is the number of edges the detector extracted.
	EdgeCount int
	// NoiseFloor is the detector's background differential magnitude.
	NoiseFloor float64
	// Collisions2 and Collisions3 count two-way and ≥three-way
	// collision groups resolved.
	Collisions2, Collisions3 int
	// MergedSplits counts fully merged registrations that were split
	// into two streams.
	MergedSplits int
	// RecoveredStreams counts streams found on cancellation residuals.
	RecoveredStreams int
	// Dropped records graceful-degradation events — non-finite sample
	// spans, quarantined streams, truncated frames — in deterministic
	// order (capture-level spans first, then per-stream drops by stream
	// ID). Empty on a clean decode.
	Dropped []Dropped
}

// Decode runs the pipeline over one epoch's capture. It is a thin
// wrapper over StreamDecoder — the capture is pushed as a single block
// and flushed — so batch and streaming decode are one pipeline and
// bit-identical by construction.
//
// The per-stream stages (slot walking, merged-pair splitting, sequence
// decoding) and the sample-range stages (edge detection, SIC residual
// subtraction) fan out across a bounded worker pool sized by
// cfg.Parallelism. Decoder-internal randomness is pre-split into one
// deterministic source per stream (and one for collision resolution),
// so the decode is bit-identical at any worker count, including the
// fully serial Parallelism=1 path.
func Decode(capture *iq.Capture, cfg Config) (*Result, error) {
	if cfg.PayloadBits == nil {
		return nil, errAt(StageInput, -1, fmt.Errorf("decoder: PayloadBits is required"))
	}
	// Deliberately lighter than capture.Validate: non-finite samples
	// are degraded per-window by the edge detector (recorded in
	// Result.Dropped), identically on the batch and streaming paths,
	// instead of rejecting the capture outright.
	if capture.SampleRate <= 0 {
		return nil, errAt(StageInput, -1, fmt.Errorf("decoder: non-positive sample rate %v", capture.SampleRate))
	}
	if len(capture.Samples) == 0 {
		return nil, errAt(StageInput, -1, fmt.Errorf("decoder: capture has no samples"))
	}
	// The stage graph only helps when pushes interleave with decoding;
	// a single-block batch decode gains nothing from it and would pay
	// an extra capture copy, so the batch path always runs serial.
	cfg.PipelineParallelism = 0
	sd, err := NewStreamDecoder(capture.SampleRate, cfg)
	if err != nil {
		return nil, err
	}
	// SIC can subtract directly from the caller's capture; no retained
	// copy needed on the batch path.
	sd.retain = capture.Samples
	sd.retainExt = true
	// A seeded decode (incremental SIC residual pass) adopted the
	// pre-folded prefix sums at construction; there is nothing to push —
	// Flush closes the detector and drives detection end to end.
	if cfg.sicSeed != nil {
		return sd.Flush()
	}
	if err := sd.Push(capture.Samples); err != nil {
		return nil, err
	}
	return sd.Flush()
}

// decodeStates runs the sequence-decoding stage for one stream:
// Viterbi (or the ablation fallbacks) over the slot observations, then
// payload alignment. It touches only sr, so calls for distinct streams
// are safe to run concurrently.
func decodeStates(sr *StreamResult, cfg Config, sigma2 float64) {
	emissions := make([]viterbi.Emission, len(sr.Slots))
	for k, slot := range sr.Slots {
		s2 := sigma2
		if slot.Kind == streams.MatchForeign {
			// Residual interference after cancellation (or none at
			// all if the collision was unresolvable): down-weight.
			s2 *= 4
		}
		emissions[k] = viterbi.Emission{Obs: slot.Obs, E: sr.Stream.E, Sigma2: s2}
	}
	switch {
	case !cfg.Stages.IQSeparation:
		// Edge-only ablation: bit 1 wherever an edge matched.
		sr.States = edgeOnlyStates(sr.Slots)
	case cfg.Stages.ErrorCorrection:
		// Slot 0 is (near) the anchor; the antenna is detuned
		// before the frame, so the implicit previous edge is a
		// falling one. The windowed recursion bounds survivor-path
		// state at cfg.ViterbiWindow (0 = viterbi.DefaultWindow).
		// Commit counters are atomic adds from per-stream decoders on
		// the worker pool; addition commutes, so totals stay
		// deterministic.
		vm := cfg.metrics().Viterbi
		var margin float64
		sr.States, margin = viterbi.NewDecoder(0.5, viterbi.Down).
			DecodeWindowedMarginObs(emissions, cfg.ViterbiWindow, viterbi.Metrics{
				Slots:         vm.Slots,
				MergeCommits:  vm.MergeCommits,
				ForcedCommits: vm.ForcedCommits,
			})
		if n := len(emissions); n > 0 {
			margin /= float64(n)
		}
		if margin > 1e9 || math.IsInf(margin, 1) {
			margin = 1e9 // single live survivor path
		}
		sr.PathMargin = margin
	default:
		sr.States = viterbi.HardDecode(emissions)
	}
	frameBits := viterbi.Bits(sr.States)
	sr.PayloadStart = alignPayload(frameBits, cfg.Streams.PreambleLen)
	sr.Bits = clampSlice(frameBits, sr.PayloadStart, cfg.PayloadBits(sr.Stream.Rate))
	sr.CRCOK = len(sr.Bits) > 16 && epc.CheckCRC16(sr.Bits)
	sr.Confidence = quality(sr)
	if cfg.Stages.ErrorCorrection {
		sr.Confidence *= 1 - math.Exp(-sr.PathMargin)
	}
}

// alignSlack is the number of extra slots walked past the nominal
// frame end, to cover anchor misestimation of a few slots.
const alignSlack = 4

// alignPayload locates the payload start inside a decoded frame: the
// frame opens with a run of preamble 1s terminated by the 0 delimiter,
// so the payload starts right after the longest 1-run in the frame
// head. Falls back to the nominal position when the decoded preamble
// is too corrupted to find.
func alignPayload(frameBits []byte, preambleLen int) int {
	limit := preambleLen + alignSlack + 1
	if limit > len(frameBits) {
		limit = len(frameBits)
	}
	run, bestRun, bestEnd := 0, 0, -1
	for i := 0; i < limit; i++ {
		if frameBits[i] == 1 {
			run++
			if run > bestRun {
				bestRun, bestEnd = run, i
			}
			continue
		}
		run = 0
	}
	if bestRun >= 3 {
		// bestEnd is the last 1 of the preamble; +1 is the delimiter.
		return bestEnd + 2
	}
	return preambleLen + 1
}

func clampSlice(bits []byte, start, n int) []byte {
	if start >= len(bits) {
		return nil
	}
	end := start + n
	if end > len(bits) {
		end = len(bits)
	}
	return bits[start:end]
}

// edgeOnlyStates implements the "Edge" ablation: any matched edge is a
// 1 bit; polarity bookkeeping follows blindly.
func edgeOnlyStates(slots []streams.SlotObs) []viterbi.State {
	states := make([]viterbi.State, len(slots))
	level := byte(0)
	for i, s := range slots {
		if s.Kind != streams.MatchNone {
			if level == 0 {
				states[i] = viterbi.Up
				level = 1
			} else {
				states[i] = viterbi.Down
				level = 0
			}
		} else {
			if level == 1 {
				states[i] = viterbi.HoldAfterUp
			} else {
				states[i] = viterbi.HoldAfterDown
			}
		}
	}
	return states
}

// obsNoiseVariance converts the detector's median differential
// magnitude (the noise floor) to the complex variance of a slot
// observation: |d| under pure noise is Rayleigh, whose median is
// σ·√(ln 4)/√2 ≈ 0.8326·σ.
func obsNoiseVariance(floor float64) float64 {
	s := floor / 0.8326
	v := s * s
	if v <= 0 {
		v = 1e-18
	}
	return v
}

// claim locates one stream slot that references an edge.
type claim struct {
	stream, slot int
}

// resolveCollisions finds edges referenced by two or more streams'
// slots, groups the recurring observations per colliding stream set,
// separates them (blind or anchored), and rewrites each participant's
// slot observation with the other tags' contributions cancelled.
func resolveCollisions(results []*StreamResult, cfg Config, src *rng.Source, res *Result) {
	// Collect every slot→edge reference into one flat list sorted by
	// (edge, stream, slot): runs of equal edge index are that edge's
	// claimant set, already in stream order. A single sorted slice
	// replaces a map of per-edge lists on this per-slot hot path.
	type edgeClaim struct {
		edge int
		claim
	}
	var all []edgeClaim
	for si, sr := range results {
		for ki, slot := range sr.Slots {
			if slot.EdgeIdx >= 0 {
				all = append(all, edgeClaim{slot.EdgeIdx, claim{si, ki}})
			}
		}
	}
	slices.SortFunc(all, func(a, b edgeClaim) int {
		if a.edge != b.edge {
			return a.edge - b.edge
		}
		if a.stream != b.stream {
			return a.stream - b.stream
		}
		return a.slot - b.slot
	})
	// Group collision observations by the set of streams involved so a
	// recurring pair accumulates lattice points.
	type group struct {
		streams []int   // stream indices, ascending
		edges   []int   // edge indices (one per recurrence)
		cls     []claim // all claims, in edge order
	}
	groups := make(map[string]*group)
	var keyBuf []byte // reused per edge; map lookups on string(keyBuf) do not allocate
	for lo := 0; lo < len(all); {
		hi := lo + 1
		for hi < len(all) && all[hi].edge == all[lo].edge {
			hi++
		}
		cl := all[lo:hi]
		lo = hi
		if len(cl) < 2 {
			continue
		}
		keyBuf = keyBuf[:0]
		for _, c := range cl {
			keyBuf = binary.BigEndian.AppendUint32(keyBuf, uint32(c.stream))
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			ss := make([]int, len(cl))
			for i, c := range cl {
				ss[i] = c.stream
			}
			g = &group{streams: ss}
			groups[string(keyBuf)] = g
		}
		g.edges = append(g.edges, cl[0].edge)
		for _, c := range cl {
			g.cls = append(g.cls, c.claim)
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	// One warm-start cache across the (serial, sorted) group loop:
	// recurring collision pairs present near-identical lattice
	// populations, so each separation seeds the next.
	warm := &cluster.Warm{}
	cm := cfg.metrics().Collide
	for _, k := range keys {
		g := groups[k]
		switch {
		case len(g.streams) == 2:
			res.Collisions2++
			cm.GroupsPair.Inc()
			separatePair(results, g.streams[0], g.streams[1], g.cls, cfg, src, warm)
		default:
			res.Collisions3++
			cm.GroupsJoint.Inc()
			separateJoint(results, g.cls, cm)
		}
	}
}

// separatePair resolves a recurring two-stream collision. cls holds
// the claims of both streams in matching order (pairs share the same
// underlying edge).
func separatePair(results []*StreamResult, sa, sb int, cls []claim, cfg Config, src *rng.Source, warm *cluster.Warm) {
	a, b := results[sa], results[sb]
	// Collect one observation per collided edge (claims come in pairs
	// referencing the same edge; slot Obs is the edge differential,
	// identical for both claimants).
	type pairSlot struct{ ka, kb int }
	var pairs []pairSlot
	var points []complex128
	byEdge := make(map[int64][2]int) // edge pos -> {slotA, slotB}
	for _, c := range cls {
		sr := results[c.stream]
		pos := sr.Slots[c.slot].Pos
		e := byEdge[pos]
		if c.stream == sa {
			e[0] = c.slot + 1 // +1 so zero means unset
		} else {
			e[1] = c.slot + 1
		}
		byEdge[pos] = e
	}
	positions := make([]int64, 0, len(byEdge))
	for pos := range byEdge {
		positions = append(positions, pos)
	}
	slices.Sort(positions)
	for _, pos := range positions {
		e := byEdge[pos]
		if e[0] == 0 || e[1] == 0 {
			continue
		}
		ka, kb := e[0]-1, e[1]-1
		pairs = append(pairs, pairSlot{ka, kb})
		points = append(points, a.Slots[ka].Obs)
	}
	// Disposition counters fire exactly once per pair group: blind,
	// anchored, or unresolved (no shared observations, or blind-only
	// mode with degenerate geometry).
	cm := cfg.metrics().Collide
	if len(points) == 0 {
		cm.PairUnresolved.Inc()
		return
	}
	eA, eB := a.Stream.E, b.Stream.E
	useBlind := cfg.Separation != SeparationAnchored && len(points) >= cfg.MinBlindPoints
	var sep *collide.Separation
	if useBlind {
		s, err := collide.SeparateBlindWarmObs(points, src, warm, collide.Metrics{
			BlindAttempts:   cm.BlindAttempts,
			BlindDegenerate: cm.BlindDegenerate,
		})
		if err == nil {
			// Align the blind vectors with the preamble anchors so
			// states are attributed to the right physical stream with
			// the right sign.
			e1, e2 := s.E1, s.E2
			if !collide.MatchVectors(e1, e2, eA, eB) {
				e1, e2 = e2, e1
				for i := range s.States {
					s.States[i][0], s.States[i][1] = s.States[i][1], s.States[i][0]
				}
			}
			if real(e1*cmplx.Conj(eA)) < 0 {
				e1 = -e1
				for i := range s.States {
					s.States[i][0] = -s.States[i][0]
				}
			}
			if real(e2*cmplx.Conj(eB)) < 0 {
				e2 = -e2
				for i := range s.States {
					s.States[i][1] = -s.States[i][1]
				}
			}
			s.E1, s.E2 = e1, e2
			sep = s
			a.BlindSeparated, b.BlindSeparated = true, true
			cm.PairBlind.Inc()
		}
	}
	if sep == nil {
		if cfg.Separation == SeparationBlind {
			cm.PairUnresolved.Inc()
			return // leave unresolved, as the pure-blind mode demands
		}
		sep = collide.SeparateAnchored(points, eA, eB)
		cm.PairAnchored.Inc()
	}
	cm.CancelledSlots.Add(int64(2 * len(pairs)))
	for i, ps := range pairs {
		st := sep.States[i]
		d := points[i]
		// Cancel the other stream's separated contribution and hand
		// each stream a soft residual observation.
		a.Slots[ps.ka].Obs = d - complex(float64(st[1]), 0)*sep.E2
		b.Slots[ps.kb].Obs = d - complex(float64(st[0]), 0)*sep.E1
		a.CollidedSlots++
		b.CollidedSlots++
	}
}

// separateJoint resolves ≥3-way collisions by joint nearest-lattice
// classification over all claimants' anchor vectors.
func separateJoint(results []*StreamResult, cls []claim, cm obs.CollideMetrics) {
	byEdge := make(map[int64][]claim)
	for _, c := range cls {
		pos := results[c.stream].Slots[c.slot].Pos
		byEdge[pos] = append(byEdge[pos], c)
	}
	positions := make([]int64, 0, len(byEdge))
	for pos := range byEdge {
		positions = append(positions, pos)
	}
	slices.Sort(positions)
	for _, pos := range positions {
		group := byEdge[pos]
		if len(group) < 2 {
			continue
		}
		es := make([]complex128, len(group))
		for i, c := range group {
			es[i] = results[c.stream].Stream.E
		}
		d := results[group[0].stream].Slots[group[0].slot].Obs
		states := collide.ClassifyJoint(d, es)
		for i, c := range group {
			other := d
			for j := range group {
				if j != i {
					other -= complex(float64(states[j]), 0) * es[j]
				}
			}
			results[c.stream].Slots[c.slot].Obs = other
			results[c.stream].CollidedSlots++
		}
		cm.CancelledSlots.Add(int64(len(group)))
	}
}

// BitErrors compares decoded bits to the ground truth and returns the
// Hamming distance over the common prefix plus one error per length
// mismatch position.
func BitErrors(decoded, truth []byte) int {
	n := len(decoded)
	if len(truth) < n {
		n = len(truth)
	}
	errs := 0
	for i := 0; i < n; i++ {
		if decoded[i] != truth[i] {
			errs++
		}
	}
	if len(decoded) > n {
		errs += len(decoded) - n
	}
	if len(truth) > n {
		errs += len(truth) - n
	}
	return errs
}
