package decoder

// Failure-injection tests: the decoder must stay correct — or at least
// sane — when the physics misbehaves.

import (
	"testing"

	"lf/internal/channel"
	"lf/internal/iq"
	"lf/internal/reader"
	"lf/internal/rng"
	"lf/internal/tag"
)

// TestDriftAtToleranceLimit pins the paper's claim that decoding
// tolerates ~200 ppm of tag clock drift: a long frame at +200 ppm must
// still track and decode.
func TestDriftAtToleranceLimit(t *testing.T) {
	src := rng.New(1)
	p := channel.DefaultParams()
	geoms := channel.PlaceRing(1, 2, src.Split("place"))
	ch := channel.NewModel(p, geoms, src.Split("noise"))
	// Build the emission by hand so the drift is exactly +200 ppm.
	tc := tag.Config{ID: 0, BitRate: 100e3, Comparator: tag.DefaultComparator(),
		Payload: src.Bits(1500)}
	em := tag.Emit(tc, src)
	em.BitPeriod = (1 / tc.BitRate) * (1 + 200e-6)
	// Re-derive the toggle times on the drifted grid.
	em.Toggles = nil
	state := byte(0)
	for k, b := range em.Bits {
		if b == 1 {
			state ^= 1
			em.Toggles = append(em.Toggles, tag.Toggle{Time: em.Start + float64(k)*em.BitPeriod, State: state})
		}
	}
	if state == 1 {
		em.Toggles = append(em.Toggles, tag.Toggle{Time: em.End(), State: 0})
	}
	epCfg := reader.EpochConfig{SampleRate: 25e6, EdgeSamples: 3, Duration: em.End() + 100e-6}
	ep, err := reader.Synthesize(ch, []*tag.Emission{em}, epCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(ep.Capture, DefaultConfig(25e6, []float64{100e3}, 1500))
	if err != nil {
		t.Fatal(err)
	}
	c, total := score(ep, res)
	if float64(c) < 0.99*float64(total) {
		t.Fatalf("decoded %d/%d bits at 200 ppm drift", c, total)
	}
}

// TestVeryLowSNRNoPanic: at near-zero SNR the decoder may fail to
// register anything, but it must not panic and must not fabricate a
// forest of streams.
func TestVeryLowSNRNoPanic(t *testing.T) {
	src := rng.New(2)
	p := channel.DefaultParams()
	p.NoiseSigma2 = 1e-5 // |h|²/σ² ≪ 1
	geoms := channel.PlaceRing(2, 2, src.Split("place"))
	ch := channel.NewModel(p, geoms, src.Split("noise"))
	var emissions []*tag.Emission
	for i := 0; i < 2; i++ {
		tc := tag.Config{ID: i, BitRate: 100e3, Comparator: tag.DefaultComparator(),
			Payload: src.Bits(100)}
		emissions = append(emissions, tag.Emit(tc, src))
	}
	epCfg := reader.EpochConfig{SampleRate: 25e6, EdgeSamples: 3, Duration: 2e-3}
	ep, err := reader.Synthesize(ch, emissions, epCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(ep.Capture, DefaultConfig(25e6, []float64{100e3}, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) > 4 {
		t.Fatalf("noise fabricated %d streams", len(res.Streams))
	}
}

// TestCoefficientJumpMidEpoch: a coefficient step halfway through the
// frame (someone walks through the path) breaks the stream's vector
// assumptions for the second half. Registration must survive and the
// first half must still decode.
func TestCoefficientJumpMidEpoch(t *testing.T) {
	src := rng.New(3)
	p := channel.DefaultParams()
	p.NoiseSigma2 = 0
	h := complex(8e-4, -2e-4)
	tc := tag.Config{ID: 0, BitRate: 100e3, Comparator: tag.DefaultComparator(),
		Payload: src.Bits(600)}
	em := tag.Emit(tc, src)
	// Synthesize two halves with different coefficients and stitch.
	mid := em.Start + 300*em.BitPeriod
	chA := channel.NewModelFromCoeffs(p, []complex128{h}, nil)
	chB := channel.NewModelFromCoeffs(p, []complex128{h * complex(0.7, 0.4)}, nil)
	epCfg := reader.EpochConfig{SampleRate: 25e6, EdgeSamples: 3, Duration: em.End() + 100e-6}
	epA, err := reader.Synthesize(chA, []*tag.Emission{em}, epCfg)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := reader.Synthesize(chB, []*tag.Emission{em}, epCfg)
	if err != nil {
		t.Fatal(err)
	}
	midIdx := int(mid * 25e6)
	samples := make([]complex128, len(epA.Capture.Samples))
	copy(samples, epA.Capture.Samples[:midIdx])
	copy(samples[midIdx:], epB.Capture.Samples[midIdx:])
	cap := &iq.Capture{SampleRate: 25e6, Samples: samples}
	res, err := Decode(cap, DefaultConfig(25e6, []float64{100e3}, 600))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) == 0 {
		t.Fatal("coefficient jump killed registration entirely")
	}
	// First-half payload bits must decode.
	sr := res.Streams[0]
	truth := em.Bits[tag.FrameOverhead:]
	errs := 0
	limit := 250
	for k := 0; k < limit && k < len(sr.Bits); k++ {
		if sr.Bits[k] != truth[k] {
			errs++
		}
	}
	if errs > limit/20 {
		t.Fatalf("first half decoded with %d/%d errors", errs, limit)
	}
}

// TestEmptyCaptureRejected: pathological inputs fail loudly.
func TestEmptyCaptureRejected(t *testing.T) {
	if _, err := Decode(&iq.Capture{SampleRate: 25e6}, DefaultConfig(25e6, []float64{100e3}, 10)); err == nil {
		t.Fatal("empty capture accepted")
	}
}

// TestSilentCaptureYieldsNothing: a capture with no tags at all (only
// environment + noise) must produce zero streams.
func TestSilentCaptureYieldsNothing(t *testing.T) {
	src := rng.New(5)
	p := channel.DefaultParams()
	ch := channel.NewModelFromCoeffs(p, []complex128{0}, src)
	epCfg := reader.EpochConfig{SampleRate: 25e6, EdgeSamples: 3, Duration: 2e-3}
	ep, err := reader.Synthesize(ch, nil, epCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(ep.Capture, DefaultConfig(25e6, []float64{100e3}, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) != 0 {
		t.Fatalf("silence produced %d streams", len(res.Streams))
	}
}
