package decoder

import (
	"math"
	"testing"

	"lf/internal/channel"
	"lf/internal/reader"
	"lf/internal/rng"
	"lf/internal/streams"
	"lf/internal/tag"
)

// buildEpoch synthesizes one epoch from tag configs.
func buildEpoch(t *testing.T, seed int64, payload int, cfgs ...tag.Config) *reader.Epoch {
	t.Helper()
	src := rng.New(seed)
	p := channel.DefaultParams()
	geoms := channel.PlaceRing(len(cfgs), 2, src.Split("place"))
	ch := channel.NewModel(p, geoms, src.Split("noise"))
	var emissions []*tag.Emission
	longest := 0.0
	for i := range cfgs {
		cfgs[i].ID = i
		if cfgs[i].Payload == nil {
			cfgs[i].Payload = src.Bits(payload)
		}
		em := tag.Emit(cfgs[i], src)
		emissions = append(emissions, em)
		if em.End() > longest {
			longest = em.End()
		}
	}
	epCfg := reader.EpochConfig{SampleRate: 25e6, EdgeSamples: 3, Duration: longest + 150e-6}
	ep, err := reader.Synthesize(ch, emissions, epCfg)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func defaultTag(rate float64) tag.Config {
	return tag.Config{BitRate: rate, ClockPPM: 150, Comparator: tag.DefaultComparator()}
}

// score matches streams to emissions by best shifted-content overlap.
func score(ep *reader.Epoch, res *Result) (correct, total int) {
	used := map[int]bool{}
	for _, em := range ep.Emissions {
		truth := em.Bits[tag.FrameOverhead:]
		total += len(truth)
		best := len(truth)
		bestIdx := -1
		for si, sr := range res.Streams {
			if used[si] {
				continue
			}
			for shift := -3; shift <= 3; shift++ {
				errs := 0
				n := 0
				for i := range sr.Bits {
					j := i + shift
					if j < 0 || j >= len(truth) {
						continue
					}
					n++
					if sr.Bits[i] != truth[j] {
						errs++
					}
				}
				errs += len(truth) - n
				if errs < best {
					best, bestIdx = errs, si
				}
			}
		}
		if bestIdx >= 0 {
			used[bestIdx] = true
		}
		correct += len(truth) - best
	}
	return correct, total
}

func TestDecodeSingleTagExact(t *testing.T) {
	ep := buildEpoch(t, 1, 300, defaultTag(100e3))
	cfg := DefaultConfig(25e6, []float64{100e3}, 300)
	res, err := Decode(ep.Capture, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) != 1 {
		t.Fatalf("streams = %d", len(res.Streams))
	}
	c, total := score(ep, res)
	if c != total {
		t.Fatalf("decoded %d/%d bits", c, total)
	}
}

func TestDecodeFourTags(t *testing.T) {
	ep := buildEpoch(t, 2, 300, defaultTag(100e3), defaultTag(100e3), defaultTag(100e3), defaultTag(100e3))
	cfg := DefaultConfig(25e6, []float64{100e3}, 300)
	res, err := Decode(ep.Capture, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, total := score(ep, res)
	if float64(c) < 0.95*float64(total) {
		t.Fatalf("decoded %d/%d bits", c, total)
	}
}

func TestFullyMergedPairSeparates(t *testing.T) {
	// Both tags share a deterministic comparator delay and zero drift:
	// every edge collides (the Fig. 3-bottom case).
	comp := tag.DefaultComparator()
	comp.CapacitorTolerance = 0
	comp.EnergySpread = 0
	comp.ChargeNoise = 0
	a := tag.Config{BitRate: 100e3, Comparator: comp}
	b := tag.Config{BitRate: 100e3, Comparator: comp}
	ep := buildEpoch(t, 92, 300, a, b)
	cfg := DefaultConfig(25e6, []float64{100e3}, 300)
	res, err := Decode(ep.Capture, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) != 2 {
		t.Fatalf("merged pair produced %d streams", len(res.Streams))
	}
	c, total := score(ep, res)
	if float64(c) < 0.95*float64(total) {
		t.Fatalf("merged pair decoded %d/%d bits", c, total)
	}
}

func TestStageAblationOrdering(t *testing.T) {
	// With collisions present, each added stage must not hurt — and
	// the full pipeline must beat edge-only decoding.
	comp := tag.DefaultComparator()
	comp.CapacitorTolerance = 0
	comp.EnergySpread = 0
	comp.ChargeNoise = 0
	a := tag.Config{BitRate: 100e3, Comparator: comp}
	b := tag.Config{BitRate: 100e3, Comparator: comp}
	ep := buildEpoch(t, 99, 400, a, b)
	run := func(st Stages) int {
		cfg := DefaultConfig(25e6, []float64{100e3}, 400)
		cfg.Stages = st
		res, err := Decode(ep.Capture, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, _ := score(ep, res)
		return c
	}
	edge := run(Stages{})
	full := run(AllStages())
	if full <= edge {
		t.Fatalf("full pipeline (%d) did not beat edge-only (%d) on a full collision", full, edge)
	}
}

func TestDecodeRequiresPayloadBits(t *testing.T) {
	ep := buildEpoch(t, 3, 50, defaultTag(100e3))
	cfg := DefaultConfig(25e6, []float64{100e3}, 50)
	cfg.PayloadBits = nil
	if _, err := Decode(ep.Capture, cfg); err == nil {
		t.Fatal("nil PayloadBits accepted")
	}
}

func TestAlignPayload(t *testing.T) {
	// Perfectly decoded frame head: preamble, delimiter, payload.
	frame := []byte{1, 1, 1, 1, 1, 1, 0 /*payload:*/, 1, 0, 1}
	if got := alignPayload(frame, 6); got != 7 {
		t.Fatalf("aligned start %d, want 7", got)
	}
	// Registration started two slots early: two leading noise bits.
	frame = append([]byte{0, 0}, frame...)
	if got := alignPayload(frame, 6); got != 9 {
		t.Fatalf("early-anchor start %d, want 9", got)
	}
	// Unrecoverable head falls back to the nominal position.
	garbage := []byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	if got := alignPayload(garbage, 6); got != 7 {
		t.Fatalf("fallback start %d, want 7", got)
	}
}

func TestClampSlice(t *testing.T) {
	bits := []byte{1, 2, 3, 4}
	if got := clampSlice(bits, 1, 2); len(got) != 2 || got[0] != 2 {
		t.Fatalf("clampSlice = %v", got)
	}
	if got := clampSlice(bits, 3, 10); len(got) != 1 {
		t.Fatalf("overrun clamp = %v", got)
	}
	if got := clampSlice(bits, 9, 2); got != nil {
		t.Fatalf("out-of-range clamp = %v", got)
	}
}

func TestBitErrors(t *testing.T) {
	if got := BitErrors([]byte{1, 0, 1}, []byte{1, 1, 1}); got != 1 {
		t.Fatalf("BitErrors = %d", got)
	}
	if got := BitErrors([]byte{1}, []byte{1, 0, 0}); got != 2 {
		t.Fatalf("short decode BitErrors = %d", got)
	}
	if got := BitErrors([]byte{1, 0, 0}, []byte{1}); got != 2 {
		t.Fatalf("long decode BitErrors = %d", got)
	}
}

func TestObsNoiseVariance(t *testing.T) {
	v := obsNoiseVariance(8.326e-5)
	if math.Abs(v-1e-8) > 2e-10 {
		t.Fatalf("variance %v, want ~1e-8", v)
	}
	if obsNoiseVariance(0) <= 0 {
		t.Fatal("zero floor must still give positive variance")
	}
}

func TestSICRecoversMaskedTag(t *testing.T) {
	// Two tags phase-aligned with a third clean one; with cancellation
	// off vs on, the recovered stream count must not decrease.
	ep := buildEpoch(t, 12, 400, defaultTag(100e3), defaultTag(100e3), defaultTag(100e3))
	base := DefaultConfig(25e6, []float64{100e3}, 400)
	base.CancellationRounds = 0
	noSIC, err := Decode(ep.Capture, base)
	if err != nil {
		t.Fatal(err)
	}
	withSIC := DefaultConfig(25e6, []float64{100e3}, 400)
	res, err := Decode(ep.Capture, withSIC)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) < len(noSIC.Streams) {
		t.Fatalf("SIC lost streams: %d vs %d", len(res.Streams), len(noSIC.Streams))
	}
	c1, total := score(ep, noSIC)
	c2, _ := score(ep, res)
	if c2 < c1 {
		t.Fatalf("SIC reduced correct bits: %d vs %d of %d", c2, c1, total)
	}
}

func TestEdgeOnlyStatesAlternate(t *testing.T) {
	slots := []streams.SlotObs{
		{Kind: streams.MatchClean},
		{Kind: streams.MatchNone},
		{Kind: streams.MatchClean},
		{Kind: streams.MatchForeign},
	}
	states := edgeOnlyStates(slots)
	bits := []byte{states[0].Bit(), states[1].Bit(), states[2].Bit(), states[3].Bit()}
	want := []byte{1, 0, 1, 1}
	for i := range bits {
		if bits[i] != want[i] {
			t.Fatalf("edge-only bits %v, want %v", bits, want)
		}
	}
}

func TestDecoderDeterministic(t *testing.T) {
	ep := buildEpoch(t, 21, 200, defaultTag(100e3), defaultTag(100e3))
	cfg := DefaultConfig(25e6, []float64{100e3}, 200)
	a, err := Decode(ep.Capture, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(ep.Capture, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Streams) != len(b.Streams) {
		t.Fatal("non-deterministic stream count")
	}
	for i := range a.Streams {
		if len(a.Streams[i].Bits) != len(b.Streams[i].Bits) {
			t.Fatal("non-deterministic decode length")
		}
		for k := range a.Streams[i].Bits {
			if a.Streams[i].Bits[k] != b.Streams[i].Bits[k] {
				t.Fatal("non-deterministic bits")
			}
		}
	}
}
