package decoder

import (
	"errors"
	"fmt"
	"time"

	"lf/internal/edgedetect"
	"lf/internal/obs"
	"lf/internal/pool"
	"lf/internal/rng"
	"lf/internal/streams"
	"lf/internal/work"
)

// StreamDecoder runs the full decode pipeline over IQ samples pushed
// in arbitrary blocks, with memory bounded by the detection window
// instead of the capture length. Every stage advances exactly as far
// as its inputs are final — incremental edge detection, stream
// registration once the registration horizon clears, slot walking with
// bounded lookahead, then collision separation and windowed-Viterbi
// sequence decoding as soon as every walker drains — so decoded frames
// surface (via Config.OnFrame and Result) long before end of capture.
//
// The result is bit-identical to pushing the whole capture as one
// block: every incremental decision waits until the input that could
// change it has provably passed (edgedetect.Stream's cut arguments,
// streams.RegistrationHorizon, Walker.Horizon).
//
// Two configurations fall back to capture-proportional memory, by
// design: CalibSamples = 0 defers threshold calibration (and hence all
// detection) to Flush, and CancellationRounds > 0 retains a copy of
// the raw samples because successive interference cancellation must
// subtract reconstructed waveforms from the original capture.
//
// With Config.PipelineParallelism ≥ 2 the decoder runs as a stage
// graph instead: edge detection and walking/commit own goroutines
// connected by bounded queues (see pipeline.go), with the same
// bit-identical result.
type StreamDecoder struct {
	cfg        Config
	workers    int
	shardW     int // ≥ 2 when sharded decode is on (Config.ShardParallelism)
	sampleRate float64
	det        *edgedetect.Stream
	dv         detSource // what pump reads; see detSource
	pipe       *pipeline // non-nil on the pipelined path
	src        *rng.Source
	regCut     int64

	registered bool
	walkers    []*streams.Walker
	results    []*StreamResult
	commitCut  int64
	pinned     bool // a preamble-sourced stream may be re-walked by trySplit
	committed  bool
	emitted    int

	// Per-stream quarantine: quarantined[i] holds the panic message of
	// walker i's failed stage ("" = healthy). A quarantined stream is
	// removed from Result.Streams and recorded in Result.Dropped; the
	// rest of the epoch decodes normally.
	quarantined []string
	drops       []Dropped // stream-level degradation events, commit order

	retain    []complex128 // raw capture, kept only for SIC
	retainExt bool         // retain aliases caller-owned samples (batch path)

	// Observability. m is never nil (the shared Nop pipeline when
	// cfg.Metrics is nil); meter is nil when metrics are disabled so
	// the pool helpers delegate straight through; timed gates the
	// clock reads (wall time is measurement only, never a decode
	// input).
	m           *obs.Pipeline
	meter       *work.Meter
	tracer      obs.Tracer
	timed       bool
	calibTraced bool

	res  *Result
	err  error
	done bool
}

// detSource is the detector state the pump stages read: the finalized
// edge prefix, soft measurements, and the progress horizons. The
// serial path points it at the live edgedetect.Stream; the pipelined
// path points it at the current token's immutable edgedetect.View, so
// the same pump code runs bit-identically in both modes.
type detSource interface {
	streams.EdgeSource
	EdgeComplete() int64
	Front() int64
	Closed() bool
	Calibrated() bool
	NoiseFloor() float64
	SetLowWater(pos int64)
}

// NewStreamDecoder builds a streaming decoder. sampleRate describes
// the pushed samples and must match cfg.Streams.SampleRate's capture
// (it is only consulted by the cancellation stage).
func NewStreamDecoder(sampleRate float64, cfg Config) (*StreamDecoder, error) {
	if cfg.PayloadBits == nil {
		return nil, errAt(StageInput, -1, fmt.Errorf("decoder: PayloadBits is required"))
	}
	workers := work.Resolve(cfg.Parallelism)
	ecfg := cfg.Edge
	if ecfg.Parallelism == 0 {
		ecfg.Parallelism = workers
	}
	if cfg.ForceDenseSweep {
		ecfg.DenseSweep = true
	}
	m := cfg.metrics()
	var meter *work.Meter
	if m.Registry != nil {
		meter = &work.Meter{Batches: m.Work.Batches, Tasks: m.Work.Tasks, Occupancy: m.Work.Occupancy}
	}
	shardW := 0
	if cfg.ShardParallelism >= 2 {
		shardW = cfg.ShardParallelism
	}
	det, err := edgedetect.NewStream(edgedetect.StreamConfig{
		Config: ecfg, CalibSamples: cfg.CalibSamples,
		Metrics: m.Edge, Meter: meter,
		ShardWorkers: shardW, Shards: m.Shard,
		StripeRunner: cfg.StripeRunner,
		Calib:        cfg.sicCalib, Seed: cfg.sicSeed,
	})
	if err != nil {
		return nil, err
	}
	sd := &StreamDecoder{
		cfg:        cfg,
		workers:    workers,
		shardW:     shardW,
		sampleRate: sampleRate,
		det:        det,
		src:        rng.New(cfg.Seed),
		regCut:     streams.RegistrationHorizon(cfg.Streams, cfg.PayloadBits),
		m:          m,
		meter:      meter,
		tracer:     cfg.Tracer,
		timed:      m.Registry != nil,
		res:        &Result{},
	}
	sd.dv = det
	if cfg.PipelineParallelism >= 2 {
		sd.pipe = newPipeline(sd)
	}
	return sd, nil
}

// Stats snapshots the decoder's pipeline metrics so far (empty when
// Config.Metrics is nil).
func (sd *StreamDecoder) Stats() *obs.Snapshot { return sd.m.Snapshot() }

// now reads the clock only when stage timing is enabled, so the
// uninstrumented hot path never syscalls.
func (sd *StreamDecoder) now() time.Time {
	if !sd.timed {
		return time.Time{}
	}
	return time.Now()
}

// observe records elapsed wall time against t when timing is enabled.
func (sd *StreamDecoder) observe(t *obs.Timing, t0 time.Time) {
	if sd.timed {
		t.Observe(time.Since(t0))
	}
}

// Push feeds one block of IQ samples and advances every pipeline stage
// as far as the new samples allow.
func (sd *StreamDecoder) Push(block []complex128) error {
	if sd.pipe != nil {
		return sd.pipe.push(block, false)
	}
	if sd.err != nil {
		return sd.err
	}
	if sd.done {
		return errAt(StageInput, -1, errors.New("decoder: push after flush"))
	}
	t0 := sd.now()
	if sd.cfg.CancellationRounds > 0 && !sd.retainExt {
		if sd.retain == nil {
			sd.retain = pool.Complex(0)
		}
		sd.retain = append(sd.retain, block...)
	}
	if err := sd.det.Push(block); err != nil {
		sd.err = errAt(StageEdgeDetect, sd.det.Front(), err)
		return sd.err
	}
	sd.pump()
	sd.observe(sd.m.Stage.Push, t0)
	return sd.err
}

// PushOwned is Push with ownership transfer: the decoder takes the
// block (which must come from pool.Complex/pool.ComplexUninit or be
// otherwise relinquished) and recycles it once consumed, so a reader
// front end can hand off pooled buffers with zero copies. The caller
// must not touch block afterwards.
func (sd *StreamDecoder) PushOwned(block []complex128) error {
	if sd.pipe != nil {
		return sd.pipe.push(block, true)
	}
	err := sd.Push(block)
	pool.PutComplex(block)
	return err
}

// Flush marks end of capture, drains every stage (including the
// cancellation rounds, which need the whole capture), and returns the
// final result — identical to what batch Decode returns.
func (sd *StreamDecoder) Flush() (*Result, error) {
	if sd.pipe != nil {
		return sd.pipe.flush()
	}
	if sd.err != nil {
		return nil, sd.err
	}
	if sd.done {
		return sd.res, nil
	}
	t0 := sd.now()
	if err := sd.det.Close(); err != nil {
		sd.err = errAt(StageInput, sd.det.Front(), err)
		return nil, sd.err
	}
	sd.pump()
	if sd.err != nil {
		return nil, sd.err
	}
	return sd.flushTail(t0)
}

// flushTail finishes a flush once the detector has closed and every
// pump stage has drained: SIC rounds, result assembly, final metric
// accounting, emission, and buffer release. Shared verbatim by the
// serial path and the pipelined path (which reaches here only after
// joining its stage goroutines, so the direct det access is serial
// again).
func (sd *StreamDecoder) flushTail(t0 time.Time) (*Result, error) {
	if sd.cfg.CancellationRounds > 0 {
		tc := sd.now()
		// A panic inside cancellation quarantines the whole SIC stage:
		// the already-committed first-pass frames are kept and the
		// failure is recorded as a capture-level drop.
		func() {
			defer func() {
				if r := recover(); r != nil {
					sd.drops = append(sd.drops, Dropped{Stream: -1, Reason: DropPanic, Lo: -1, Hi: -1,
						Detail: fmt.Sprintf("%s: %v", StageCancel, r)})
				}
			}()
			sd.runCancellation()
		}()
		sd.observe(sd.m.Stage.Cancel, tc)
	}
	sd.emitFrames()
	sd.res.Streams = sd.results
	sd.res.EdgeCount = len(sd.det.Edges())
	sd.res.NoiseFloor = sd.det.NoiseFloor()
	for _, sp := range sd.det.Dropped() {
		sd.res.Dropped = append(sd.res.Dropped, Dropped{Stream: -1, Reason: DropNonFinite,
			Lo: sp.Lo, Hi: sp.Hi, Detail: "non-finite samples replaced; detection windows blanked"})
	}
	sd.res.Dropped = append(sd.res.Dropped, sd.drops...)
	sd.recordFinal()
	if sd.tracer != nil {
		sd.tracer.Trace(obs.SpanEvent{Stage: "flush", Stream: -1,
			Pos: sd.det.Front(), N: int64(len(sd.res.Streams))})
	}
	sd.det.Release()
	if !sd.retainExt {
		pool.PutComplex(sd.retain)
		sd.retain = nil
	}
	sd.done = true
	sd.observe(sd.m.Stage.Flush, t0)
	return sd.res, nil
}

// recordFinal folds the committed result into the flush-time metrics:
// frame disposition, slot-kind partition, edge claims, and drop
// accounting. Runs serially on the flushing goroutine in result order,
// so every total is deterministic by construction.
func (sd *StreamDecoder) recordFinal() {
	m := sd.m
	if m.Registry == nil {
		return
	}
	for _, sr := range sd.res.Streams {
		m.Frames.Committed.Inc()
		if sr.CRCOK {
			m.Frames.CRCOK.Inc()
		} else {
			m.Frames.CRCFail.Inc()
		}
		if sr.Recovered {
			m.Frames.Recovered.Inc()
		}
		m.Frames.Confidence.Observe(sr.Confidence)
		if sd.cfg.Stages.ErrorCorrection {
			m.Viterbi.PathMargin.Observe(sr.PathMargin)
		}
		m.Walk.Slots.Add(int64(len(sr.Slots)))
		for _, slot := range sr.Slots {
			switch slot.Kind {
			case streams.MatchClean:
				m.Walk.Clean.Inc()
			case streams.MatchForeign:
				m.Walk.Foreign.Inc()
			default:
				m.Walk.Empty.Inc()
			}
		}
	}
	// Edge disposition: an edge is claimed when a committed first-pass
	// stream slot references it. SIC-recovered streams index a residual
	// capture's own edge list and are excluded.
	claimed := make(map[int]bool)
	for _, sr := range sd.res.Streams {
		if sr.Recovered {
			continue
		}
		for _, slot := range sr.Slots {
			if slot.EdgeIdx >= 0 {
				claimed[slot.EdgeIdx] = true
			}
		}
	}
	nc := int64(len(claimed))
	if total := int64(sd.res.EdgeCount); nc > total {
		nc = total
	}
	m.Edge.Claimed.Add(nc)
	m.Edge.Unclaimed.Add(int64(sd.res.EdgeCount) - nc)
	for _, d := range sd.res.Dropped {
		m.Drops.Events.Inc()
		switch d.Reason {
		case DropNonFinite:
			m.Drops.NonFinite.Inc()
		case DropPanic:
			m.Drops.Panics.Inc()
		case DropTruncated:
			m.Drops.Truncated.Inc()
		}
		if d.Lo >= 0 && d.Hi > d.Lo {
			m.Drops.SpanSamples.Add(d.Hi - d.Lo)
		}
	}
}

// RetainedBytes reports the sample-proportional memory currently held:
// the detector's sliding windows plus any raw-capture retention forced
// by cancellation. Pool slack beyond the live windows is excluded (see
// edgedetect.Stream.RetainedBytes).
func (sd *StreamDecoder) RetainedBytes() int64 {
	if sd.pipe != nil {
		return sd.pipe.retainedBytes()
	}
	n := sd.det.RetainedBytes()
	if !sd.retainExt {
		n += int64(len(sd.retain)) * 16
	}
	return n
}

// pump advances registration, walking, and frame commit as far as the
// detector's finalized-edge front allows, then slides the detector's
// sample window past everything no stage can still read.
func (sd *StreamDecoder) pump() {
	if sd.tracer != nil && !sd.calibTraced && sd.dv.Calibrated() {
		sd.calibTraced = true
		// Pos is the configured calibration prefix — or the full
		// capture length when calibration deferred to Close — so the
		// event content is block-size independent.
		pos := sd.cfg.CalibSamples
		if pos <= 0 || sd.dv.Closed() {
			pos = sd.dv.Front()
		}
		sd.tracer.Trace(obs.SpanEvent{Stage: "calibrate", Stream: -1, Pos: pos})
	}
	if !sd.registered {
		if sd.dv.EdgeComplete() < sd.regCut && !sd.dv.Closed() {
			return
		}
		sd.register()
		if sd.err != nil {
			return
		}
	}
	if !sd.committed {
		sd.stepWalkers()
		sd.maybeCommit()
	}
	sd.updateLowWater()
}

// register runs stream registration over the finalized edge prefix.
// Registration reads nothing past streams.RegistrationHorizon, so the
// prefix decides identically to the eventual full edge list.
func (sd *StreamDecoder) register() {
	sts, err := streams.Register(sd.dv.Edges(), sd.cfg.Streams, sd.cfg.PayloadBits)
	if err != nil {
		sd.err = errAt(StageRegister, -1, err)
		return
	}
	sd.registered = true
	if sd.tracer != nil {
		sd.tracer.Trace(obs.SpanEvent{Stage: "register", Stream: -1, Pos: sd.regCut, N: int64(len(sts))})
	}
	sd.walkers = make([]*streams.Walker, len(sts))
	sd.results = make([]*StreamResult, len(sts))
	sd.quarantined = make([]string, len(sts))
	for i, st := range sts {
		n := streams.FrameSlots(sd.cfg.Streams, sd.cfg.PayloadBits(st.Rate)) + alignSlack
		sd.walkers[i] = streams.NewWalker(st, sd.cfg.Streams, n)
		sd.results[i] = &StreamResult{Stream: st}
		if sd.cfg.Stages.IQSeparation && st.Source == streams.SourcePreamble {
			// trySplit may re-walk this stream's whole frame from its
			// anchor, so the sample window cannot slide at all.
			sd.pinned = true
		}
		// The commit stage (splitting, collision resolution) may re-walk
		// a frame from its anchor; hold it until every edge a re-walk
		// could pick is final.
		end := streams.WalkHorizon(sd.cfg.Streams, st.Offset, st.Period, n)
		if end > sd.commitCut {
			sd.commitCut = end
		}
	}
}

// stepWalkers advances every live walker while its next step's inputs
// — the edges inside its pick window and the samples under its soft
// measurement — are final. In sharded decode the walkers fan out
// across the worker pool: each Step mutates only walker-local state
// and performs pure reads on the detector source (finalized edges,
// prefix-sum measurements), so per-walker goroutines are race-free,
// and per-index quarantine capture keeps the panic taxonomy identical
// to the serial loop.
func (sd *StreamDecoder) stepWalkers() {
	closed := sd.dv.Closed()
	edgeDone := sd.dv.EdgeComplete()
	front := sd.dv.Front()
	measureSpan := sd.cfg.Edge.Gap + sd.cfg.Edge.Win + 1
	step := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				sd.quarantined[i] = fmt.Sprintf("%s: %v", StageWalk, r)
			}
		}()
		w := sd.walkers[i]
		for !w.Done() {
			if !closed && (edgeDone < w.Horizon() || front < w.MeasurePos()+measureSpan) {
				break
			}
			w.Step(sd.dv)
		}
	}
	if sd.shardW >= 2 && len(sd.walkers) > 1 {
		sd.meter.Do(sd.shardW, len(sd.walkers), func(i int) {
			if sd.quarantined[i] == "" {
				step(i)
			}
		})
		return
	}
	for i := range sd.walkers {
		if sd.quarantined[i] != "" {
			continue
		}
		step(i)
	}
}

// maybeCommit runs the frame-commit stage — merged-pair splitting,
// collision resolution, sequence decoding — once every walker has
// drained and the edges a re-walk could touch are final, then emits
// the committed frames.
func (sd *StreamDecoder) maybeCommit() {
	for i, w := range sd.walkers {
		if sd.quarantined[i] == "" && !w.Done() {
			return
		}
	}
	if !sd.dv.Closed() && (sd.dv.EdgeComplete() < sd.commitCut || sd.dv.Front() < sd.commitCut) {
		return
	}
	t0 := sd.now()
	// Quarantined streams drop out here; the healthy rest of the epoch
	// commits normally.
	results := make([]*StreamResult, 0, len(sd.results))
	for i, w := range sd.walkers {
		if sd.quarantined[i] != "" {
			sd.dropStream(sd.results[i], sd.quarantined[i])
			continue
		}
		sd.results[i].Slots = w.Obs()
		results = append(results, sd.results[i])
	}
	if sd.cfg.Stages.IQSeparation {
		// Split fully merged registrations before cross-stream collision
		// resolution; sources are derived in index order before the
		// fan-out so worker scheduling cannot perturb the k-means
		// restarts (see Decode).
		snapshot := append([]*StreamResult(nil), results...)
		splitSrcs := make([]*rng.Source, len(snapshot))
		for i := range splitSrcs {
			splitSrcs[i] = sd.src.Split(fmt.Sprintf("split/%d", i))
		}
		others := make([]*StreamResult, len(snapshot))
		errs := sd.meter.DoRecover(sd.workers, len(snapshot), func(i int) {
			if other, ok := trySplit(snapshot[i], sd.dv, sd.cfg, splitSrcs[i]); ok {
				others[i] = other
			}
		})
		if errs != nil {
			// trySplit mutates its stream in place, so a panicked split
			// leaves the stream half-rewritten: quarantine it too.
			kept := results[:0]
			for i, sr := range snapshot {
				if errs[i] != nil {
					sd.dropStream(sr, fmt.Sprintf("%s: split: %v", StageCommit, errs[i]))
					others[i] = nil
					continue
				}
				kept = append(kept, sr)
			}
			results = kept
		}
		for _, other := range others {
			if other != nil {
				results = append(results, other)
				sd.res.MergedSplits++
				sd.m.Frames.MergedSplits.Inc()
			}
		}
		// Collision resolution is cross-stream; a panic there degrades
		// to unresolved collisions (raw slot observations) rather than
		// losing any stream.
		func() {
			defer func() {
				if r := recover(); r != nil {
					sd.drops = append(sd.drops, Dropped{Stream: -1, Reason: DropPanic, Lo: -1, Hi: -1,
						Detail: fmt.Sprintf("%s: collision resolution: %v", StageCommit, r)})
				}
			}()
			resolveCollisions(results, sd.cfg, sd.src.Split("collisions"), sd.res)
		}()
	}
	sigma2 := obsNoiseVariance(sd.dv.NoiseFloor())
	errs := sd.meter.DoRecover(sd.workers, len(results), func(i int) {
		if hook := sd.cfg.testStreamHook; hook != nil {
			hook(results[i])
		}
		decodeStates(results[i], sd.cfg, sigma2)
	})
	if errs != nil {
		kept := results[:0]
		for i, sr := range results {
			if errs[i] != nil {
				sd.dropStream(sr, fmt.Sprintf("%s: decode: %v", StageCommit, errs[i]))
				continue
			}
			kept = append(kept, sr)
		}
		results = kept
	}
	sd.markTruncated(results)
	sd.results = results
	sd.committed = true
	// Nothing past the commit stage measures the detector's sample
	// window (cancellation works on its own raw-capture copy), so a
	// trySplit pin no longer blocks the window from sliding.
	sd.pinned = false
	sd.observe(sd.m.Stage.Commit, t0)
	if sd.tracer != nil {
		sd.tracer.Trace(obs.SpanEvent{Stage: "commit", Stream: -1, Pos: sd.commitCut, N: int64(len(sd.results))})
	}
	sd.emitFrames()
}

// dropStream records the quarantine of one stream in Result.Dropped.
func (sd *StreamDecoder) dropStream(sr *StreamResult, detail string) {
	id := -1
	if sr.Stream != nil {
		id = sr.Stream.ID
	}
	sd.m.Frames.Quarantined.Inc()
	sd.drops = append(sd.drops, Dropped{Stream: id, Reason: DropPanic, Lo: -1, Hi: -1, Detail: detail})
}

// markTruncated records, for every committed stream whose nominal
// frame runs past the end of a closed capture, a best-effort
// truncation span. Only fires when the commit happens at Flush — a
// frame that committed mid-capture was complete by construction.
func (sd *StreamDecoder) markTruncated(results []*StreamResult) {
	if !sd.dv.Closed() {
		return
	}
	total := sd.dv.Front()
	for _, sr := range results {
		nominal := streams.FrameSlots(sd.cfg.Streams, sd.cfg.PayloadBits(sr.Stream.Rate))
		if nominal > len(sr.Slots) {
			nominal = len(sr.Slots)
		}
		last := int64(-1)
		for k := 0; k < nominal; k++ {
			if sr.Slots[k].Pos >= total && sr.Slots[k].Pos > last {
				last = sr.Slots[k].Pos
			}
		}
		if last >= 0 {
			sd.drops = append(sd.drops, Dropped{Stream: sr.Stream.ID, Reason: DropTruncated,
				Lo: total, Hi: last + 1,
				Detail: fmt.Sprintf("frame runs %d samples past capture end", last+1-total)})
		}
	}
}

// emitFrames delivers newly committed frames through OnFrame (and the
// tracer), in result order.
func (sd *StreamDecoder) emitFrames() {
	if sd.cfg.OnFrame == nil && sd.tracer == nil {
		sd.emitted = len(sd.results)
		return
	}
	for ; sd.emitted < len(sd.results); sd.emitted++ {
		sr := sd.results[sd.emitted]
		if sd.tracer != nil {
			sd.tracer.Trace(obs.SpanEvent{Stage: "frame", Stream: sr.Stream.ID,
				Pos: int64(sr.Stream.Offset), N: int64(len(sr.Bits))})
		}
		if sd.cfg.OnFrame != nil {
			sd.cfg.OnFrame(sr)
		}
	}
}

// updateLowWater slides the detector's sample window past everything
// the remaining stages can still measure.
func (sd *StreamDecoder) updateLowWater() {
	if !sd.registered || sd.pinned || sd.dv.Closed() {
		return
	}
	low := sd.dv.Front()
	if !sd.committed {
		for i, w := range sd.walkers {
			if w.Done() || sd.quarantined[i] != "" {
				continue
			}
			if lw := w.LowWater(); lw < low {
				low = lw
			}
		}
	}
	if low > 0 {
		sd.dv.SetLowWater(low)
	}
}
