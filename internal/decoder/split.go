package decoder

import (
	"lf/internal/cluster"
	"lf/internal/collide"
	"lf/internal/dsp"
	"lf/internal/rng"
	"lf/internal/streams"
)

// Fully merged streams: when two tags draw start offsets that coincide
// on the slot grid (within the edge width), every early edge collides
// and registration sees a single stream whose preamble vector is the
// *sum* E = e₁+e₂ (Fig. 3 bottom: "two tags start at the same time
// frame"). The tell is in the payload observations: instead of the
// three clusters {+E, −E, 0} of a lone tag, the slot differentials
// populate the nine-point lattice a·e₁+b·e₂ — and, once the two tags'
// crystals drift apart, the pure-edge clusters ±e₁ and ±e₂ directly.
//
// trySplit detects that structure, recovers the two edge vectors
// blindly (parallelogram first, antipodal-pair fallback), and re-walks
// the slot grid once per constituent. The still-merged early slots
// then surface as ordinary two-stream collisions and are separated by
// the ordinary pair machinery.

// cleanFraction returns the fraction of slot observations consistent
// with a lone tag: within tol of +E, −E, or 0.
func cleanFraction(slots []streams.SlotObs, e complex128, tol float64) float64 {
	if len(slots) == 0 {
		return 1
	}
	clean := 0
	for _, s := range slots {
		if dsp.Dist(s.Obs, e) <= tol || dsp.Dist(s.Obs, -e) <= tol || dsp.Abs(s.Obs) <= tol {
			clean++
		}
	}
	return float64(clean) / float64(len(slots))
}

// trySplit tests whether sr is a fully merged two-tag stream and, if
// so, returns the second constituent as a new StreamResult while
// rewriting sr in place to be the first. Both constituents are
// re-walked against the detector with their own edge vectors. The
// returned bool reports whether a split happened.
func trySplit(sr *StreamResult, det streams.EdgeSource, cfg Config, src *rng.Source) (*StreamResult, bool) {
	// Eye-registered streams already went through regional
	// multi-generator analysis; re-splitting them would only act on
	// residual contamination. Only preamble-matched registrations can
	// still hide a merged pair.
	if sr.Stream.Source != streams.SourcePreamble {
		return nil, false
	}
	slots := sr.Slots
	if len(slots) < 24 {
		return nil, false
	}
	eReg := sr.Stream.E
	tol := 0.35 * dsp.Abs(eReg)
	// A lone tag explains ≥ ~95% of its slots; a merged pair only
	// about half.
	if cleanFraction(slots, eReg, tol) > 0.7 {
		return nil, false
	}
	points := make([]complex128, len(slots))
	for i, s := range slots {
		points[i] = s.Obs
	}
	km := cluster.KMeans(points, 9, 6, 100, src)
	e1, e2, err := collide.Parallelogram(km.Centroids)
	if err != nil {
		e1, e2, err = collide.RecoverAntipodal(km.Centroids, km.Counts())
		if err != nil {
			return nil, false
		}
	}
	// Lattice consistency with the merged anchor: during the preamble
	// both constituents toggled together, so ±e₁±e₂ must reproduce the
	// registered vector for some sign choice.
	bestRes := -1.0
	for _, s1 := range []float64{1, -1} {
		for _, s2 := range []float64{1, -1} {
			r := dsp.Dist(complex(s1, 0)*e1+complex(s2, 0)*e2, eReg)
			if bestRes < 0 || r < bestRes {
				bestRes = r
			}
		}
	}
	if bestRes > 0.5*dsp.Abs(eReg) {
		return nil, false
	}

	// Re-walk each constituent with its own vector and its own anchor
	// (the constituents' comparator delays differ by whole slots even
	// when their grid phases coincide). Sign conventions do not matter
	// for toggle-on-1 bits.
	numSlots := len(slots)
	stA := *sr.Stream
	stA.Source = streams.SourceSplit
	stA.E = e1
	if a := streams.AnchorFor(det.Edges(), sr.Stream.Offset, sr.Stream.Period, e1, cfg.Streams); a >= 0 {
		stA.Offset = a
	}
	stB := *sr.Stream
	stB.Source = streams.SourceSplit
	stB.E = e2
	if a := streams.AnchorFor(det.Edges(), sr.Stream.Offset, sr.Stream.Period, e2, cfg.Streams); a >= 0 {
		stB.Offset = a
	}
	sr.Stream = &stA
	sr.Slots = streams.Walk(&stA, det, cfg.Streams, numSlots)
	sr.BlindSeparated = true
	other := &StreamResult{
		Stream:         &stB,
		Slots:          streams.Walk(&stB, det, cfg.Streams, numSlots),
		BlindSeparated: true,
	}
	return other, true
}
