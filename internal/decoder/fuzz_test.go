package decoder

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzStreamPush shoves arbitrary bit patterns — NaNs, infinities,
// denormals, astronomically scaled values — through the streaming
// decoder at an arbitrary block size. The contract under fuzz is the
// graceful-degradation guarantee: no panic, and every outcome is
// either a typed error or a valid Result.
func FuzzStreamPush(f *testing.F) {
	f.Add([]byte{}, uint16(64))
	f.Add(make([]byte, 4096), uint16(1))
	ramp := make([]byte, 2048)
	for i := range ramp {
		ramp[i] = byte(i * 7)
	}
	f.Add(ramp, uint16(333))

	f.Fuzz(func(t *testing.T, data []byte, blockHint uint16) {
		// Caps the per-exec decode cost: adversarial bit patterns can
		// register hundreds of phantom streams, and the collision
		// resolution across them is the superlinear part.
		const maxSamples = 4096
		n := len(data) / 16
		if n > maxSamples {
			n = maxSamples
		}
		samples := make([]complex128, n)
		for i := 0; i < n; i++ {
			re := math.Float64frombits(binary.LittleEndian.Uint64(data[i*16:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(data[i*16+8:]))
			samples[i] = complex(re, im)
		}
		cfg := DefaultConfig(1e6, []float64{100e3, 50e3}, 24)
		cfg.CalibSamples = 256
		cfg.CancellationRounds = 0
		cfg.Parallelism = 1
		sd, err := NewStreamDecoder(1e6, cfg)
		if err != nil {
			t.Fatal(err)
		}
		block := int(blockHint%2048) + 1
		for lo := 0; lo < len(samples); lo += block {
			hi := min(lo+block, len(samples))
			if err := sd.Push(samples[lo:hi]); err != nil {
				assertTyped(t, err)
				return
			}
		}
		res, err := sd.Flush()
		if err != nil {
			assertTyped(t, err)
			return
		}
		for _, sr := range res.Streams {
			if sr.Stream == nil {
				t.Fatal("result stream without a registration")
			}
			if math.IsNaN(sr.Confidence) || sr.Confidence < 0 || sr.Confidence > 1 {
				t.Fatalf("confidence %v outside [0, 1]", sr.Confidence)
			}
			for _, b := range sr.Bits {
				if b > 1 {
					t.Fatalf("decoded non-bit %d", b)
				}
			}
		}
	})
}

func assertTyped(t *testing.T, err error) {
	t.Helper()
	if _, ok := err.(*DecodeError); !ok {
		t.Fatalf("decode failed with untyped error %T: %v", err, err)
	}
}
