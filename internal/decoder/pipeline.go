package decoder

import (
	"errors"
	"sync"
	"sync/atomic"

	"lf/internal/edgedetect"
	"lf/internal/obs"
	"lf/internal/pool"
	"lf/internal/stage"
)

// DefaultStageDepth is the inter-stage queue bound used when
// Config.StageDepth is 0: deep enough to ride out per-block stage-time
// jitter, shallow enough that the buffered blocks stay a small
// fraction of the detector's own window.
const DefaultStageDepth = 4

// pipeline runs the streaming decoder as a stage graph
// (Config.PipelineParallelism ≥ 2): the pushing goroutine copies
// blocks into a bounded ingest queue, a detect stage owns the
// edgedetect.Stream and publishes one immutable View token per block,
// and a walk stage runs the pump (registration, walking, commit, SIC
// excluded — that is flush-time) against each token. The caller joins
// both stages at Flush and finishes serially with flushTail.
//
// Bit-identity with the serial path (DESIGN.md §14) rests on the
// token being an exact snapshot of the detector's post-Push state:
// pump against token N computes precisely what the serial path's pump
// computes after Push N, and everything pump reads through detSource
// is either copied into the View or append-only in the arrays the
// View aliases. The one in-place rewrite — prefix-sum compaction — is
// deferred via edgedetect.CompactionGate until every published token
// has been acked by the walk stage.
//
// Feedback edges are non-blocking atomics, never queues, so the graph
// cannot deadlock: walk → detect carries the low-water promise
// (lowWater) and the ack cursor (acked); detect → caller carries the
// retained-bytes mirror. Shutdown: a failing stage cancels both
// queues, the sibling unwinds, and the caller adopts the stage error
// at the next Push or at Flush.
type pipeline struct {
	sd *StreamDecoder

	ingest *stage.Queue[[]complex128]
	tokens *stage.Queue[pipeToken]
	detect *stage.Stage
	walk   *stage.Stage

	// published/acked are the compaction gate: detect bumps published
	// before every token enqueue, walk stores acked after it finishes
	// all reads of a token, and the detector may rewrite its prefix
	// arrays only while the two agree (no live snapshot).
	published atomic.Int64
	acked     atomic.Int64

	// lowWater carries the walk stage's window promise back to detect
	// (written only by walk, monotone). appliedLow is detect-local.
	lowWater   atomic.Int64
	appliedLow int64

	// retained mirrors det.RetainedBytes() (stored by detect after
	// each Push) and retainBytes mirrors the SIC retention, so
	// RetainedBytes is race-safe against concurrent polling.
	retained    atomic.Int64
	retainBytes atomic.Int64

	// OnFrame/Tracer contract: callbacks fire on the pushing
	// goroutine. The walk stage therefore appends emissions here (in
	// commit order, under mu) and the caller drains them — through
	// the real sinks below — on the next Push or at Flush.
	mu      sync.Mutex
	events  []pipeEvent
	onFrame func(*StreamResult)
	tracer  obs.Tracer

	// err is the caller-side error state, written only on the pushing
	// goroutine (at join); sd.err is unsafe to read before join.
	err error
}

// pipeToken is one detect→walk handoff: the detector's state snapshot
// after one Push. Queue byte accounting is zero because the View
// aliases detector arrays already counted by the retained mirror.
type pipeToken struct {
	seq  int64
	view edgedetect.View
}

// pipeEvent is one deferred emission: a committed frame (sr non-nil)
// or a tracer span event.
type pipeEvent struct {
	sr *StreamResult
	ev obs.SpanEvent
}

// deferTracer is the obs.Tracer installed in place of the user's
// while the pipeline runs; it queues events for caller-side delivery.
type deferTracer struct{ p *pipeline }

func (d deferTracer) Trace(ev obs.SpanEvent) { d.p.addEvent(pipeEvent{ev: ev}) }

// newPipeline wires the stage graph onto sd and starts its
// goroutines. Called from NewStreamDecoder after sd is fully built.
func newPipeline(sd *StreamDecoder) *pipeline {
	depth := sd.cfg.StageDepth
	if depth <= 0 {
		depth = DefaultStageDepth
	}
	m := sd.m
	p := &pipeline{
		sd: sd,
		ingest: stage.NewQueue[[]complex128](depth, stage.QueueMetrics{
			Depth: m.Pipe.IngestDepth, PushStall: m.Pipe.IngestPushStall,
			PopStall: m.Pipe.IngestPopStall, Items: m.Pipe.IngestItems,
		}),
		tokens: stage.NewQueue[pipeToken](depth, stage.QueueMetrics{
			Depth: m.Pipe.TokenDepth, PushStall: m.Pipe.TokenPushStall,
			PopStall: m.Pipe.TokenPopStall, Items: m.Pipe.TokenItems,
		}),
	}
	// Redirect emissions through the deferral queue so the callback
	// goroutine contract holds; only wrap sinks that exist.
	if cb := sd.cfg.OnFrame; cb != nil {
		p.onFrame = cb
		sd.cfg.OnFrame = func(sr *StreamResult) { p.addEvent(pipeEvent{sr: sr}) }
	}
	if tr := sd.tracer; tr != nil {
		p.tracer = tr
		sd.tracer = deferTracer{p}
	}
	sd.det.CompactionGate(func() bool {
		return p.acked.Load() == p.published.Load()
	})
	p.detect = stage.Go("detect", func() error {
		// detectLoop's error paths do their own targeted cleanup (it
		// must NOT cancel tokens on clean exit — the walk stage still
		// drains them), so only a panic cancels everything here.
		defer func() {
			if r := recover(); r != nil {
				p.cancelAll()
				panic(r) // re-raise for stage.Go's capture
			}
		}()
		return p.detectLoop()
	})
	p.walk = stage.Go("walk", func() error {
		// Cancel both queues on any exit — error, panic, or clean
		// drain — so a blocked caller or detect stage always unwinds.
		defer p.cancelAll()
		return p.walkLoop()
	})
	return p
}

func (p *pipeline) addEvent(e pipeEvent) {
	p.mu.Lock()
	p.events = append(p.events, e)
	p.mu.Unlock()
}

// drainEvents delivers queued emissions through the real sinks, in
// commit order. Caller goroutine only.
func (p *pipeline) drainEvents() {
	p.mu.Lock()
	evs := p.events
	p.events = nil
	p.mu.Unlock()
	for _, e := range evs {
		if e.sr != nil {
			p.onFrame(e.sr)
		} else {
			p.tracer.Trace(e.ev)
		}
	}
}

func (p *pipeline) cancelAll() {
	p.ingest.Cancel()
	p.tokens.Cancel()
}

// push is the pipelined Push/PushOwned: retain for SIC, hand the
// block to the detect stage, surface any stage failure.
func (p *pipeline) push(block []complex128, owned bool) error {
	sd := p.sd
	if p.err != nil || sd.done {
		if owned {
			pool.PutComplex(block)
		}
		if p.err != nil {
			return p.err
		}
		return errAt(StageInput, -1, errors.New("decoder: push after flush"))
	}
	t0 := sd.now()
	p.drainEvents()
	if sd.cfg.CancellationRounds > 0 && !sd.retainExt {
		if sd.retain == nil {
			sd.retain = pool.Complex(0)
		}
		sd.retain = append(sd.retain, block...)
		p.retainBytes.Store(int64(len(sd.retain)) * 16)
	}
	buf := block
	if !owned {
		// The caller keeps ownership of block, so the queue gets a
		// pooled copy; PushOwned skips this — the zero-copy path.
		buf = pool.ComplexUninit(len(block))
		copy(buf, block)
	}
	if err := p.ingest.Push(buf, int64(len(buf))*16); err != nil {
		pool.PutComplex(buf)
		return p.join() // canceled: adopt the failing stage's error
	}
	sd.observe(sd.m.Stage.Push, t0)
	return nil
}

// flush closes the ingest, joins both stages, and finishes the decode
// serially (flushTail) on the calling goroutine.
func (p *pipeline) flush() (*Result, error) {
	sd := p.sd
	if p.err != nil {
		return nil, p.err
	}
	if sd.done {
		return sd.res, nil
	}
	t0 := sd.now()
	p.ingest.Close()
	err := p.join()
	p.drainEvents()
	if err != nil {
		return nil, err
	}
	res, ferr := sd.flushTail(t0)
	p.drainEvents()
	// Refresh the mirrors so post-flush RetainedBytes reports the
	// released state without touching the detector from pollers.
	p.retained.Store(sd.det.RetainedBytes())
	if sd.retainExt {
		p.retainBytes.Store(0)
	} else {
		p.retainBytes.Store(int64(len(sd.retain)) * 16)
	}
	return res, ferr
}

// join waits for both stages, restores serial mode (sd.dv back to the
// live detector, compaction ungated), and records the first stage
// error — walk first, since a detect cancellation is usually the
// symptom of a walk failure. Caller goroutine only; idempotent.
func (p *pipeline) join() error {
	sd := p.sd
	werr := p.walk.Wait()
	derr := p.detect.Wait()
	sd.dv = sd.det
	sd.det.CompactionGate(nil)
	err := werr
	if err == nil {
		err = derr
	}
	if err != nil {
		sd.err = err
		p.err = err
	}
	p.retained.Store(sd.det.RetainedBytes())
	return err
}

// retainedBytes is the pipelined RetainedBytes: the detector mirror,
// blocks buffered in the ingest queue, and the SIC retention. All
// atomics, so concurrent polling never races the stages.
func (p *pipeline) retainedBytes() int64 {
	return p.retained.Load() + p.ingest.Bytes() + p.retainBytes.Load()
}

// detectLoop owns the edgedetect.Stream: drain ingest, push, publish
// one snapshot token per block, mirror the retained accounting, and
// apply the walk stage's low-water promises.
func (p *pipeline) detectLoop() error {
	sd := p.sd
	for {
		buf, ok, err := p.ingest.Pop()
		if err != nil {
			return nil // canceled: the walk stage failed and owns the error
		}
		if !ok {
			break // flush: fall through to Close + final token
		}
		t0 := sd.now()
		p.applyLowWater()
		if perr := sd.det.Push(buf); perr != nil {
			p.ingest.Cancel() // unblock the caller; tokens drain below
			p.tokens.Close()
			return errAt(StageEdgeDetect, sd.det.Front(), perr)
		}
		pool.PutComplex(buf)
		p.retained.Store(sd.det.RetainedBytes())
		ok = p.publish()
		sd.observe(sd.m.Stage.Detect, t0)
		if !ok {
			return nil // canceled mid-publish
		}
	}
	if cerr := sd.det.Close(); cerr != nil {
		p.tokens.Close()
		return errAt(StageInput, sd.det.Front(), cerr)
	}
	p.retained.Store(sd.det.RetainedBytes())
	p.publish() // the EOF token: Closed() == true, walk drains to commit
	p.tokens.Close()
	return nil
}

// publish snapshots the detector and enqueues the token. published is
// bumped before the enqueue so the compaction gate errs closed while
// the token is in flight. Reports false when the graph was canceled.
func (p *pipeline) publish() bool {
	seq := p.published.Load() + 1
	p.published.Store(seq)
	tok := pipeToken{seq: seq, view: p.sd.det.Snapshot()}
	return p.tokens.Push(tok, 0) == nil
}

// applyLowWater forwards the walk stage's latest window promise to
// the detector. The compaction this can trigger is gated inside
// dropSums, so calling it with tokens in flight is safe — the window
// simply slides on the next gate-open Push.
func (p *pipeline) applyLowWater() {
	if lw := p.lowWater.Load(); lw > p.appliedLow {
		p.appliedLow = lw
		p.sd.det.SetLowWater(lw)
	}
}

// walkLoop runs the pump against each published token: registration,
// walking, commit, and emission deferral, exactly as the serial path
// would after the corresponding Push. Acks the token only after pump
// returns, so the compaction gate knows when no reads are live.
func (p *pipeline) walkLoop() error {
	sd := p.sd
	for {
		tok, ok, err := p.tokens.Pop()
		if err != nil {
			return nil // canceled: the detect stage failed and owns the error
		}
		if !ok {
			return nil
		}
		t0 := sd.now()
		view := tok.view
		sd.dv = &view
		sd.pump()
		if lw := view.PromisedLowWater(); lw > p.lowWater.Load() {
			p.lowWater.Store(lw)
		}
		p.acked.Store(tok.seq)
		sd.observe(sd.m.Stage.Walk, t0)
		if sd.err != nil {
			return sd.err
		}
	}
}
