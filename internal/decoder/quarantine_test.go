package decoder

import (
	"reflect"
	"testing"

	"lf/internal/reader"
)

// TestQuarantinePoisonedStream pins the isolation guarantee of the
// panic quarantine: when one stream's per-stream decode stage panics,
// that stream is dropped with a DropPanic entry while every other
// stream's result is byte-identical to the unpoisoned decode. The
// poison is injected through the test hook that runs exactly where
// decodeStates does — after registration, walking, and collision
// resolution, so no cross-stream stage sees different inputs.
func TestQuarantinePoisonedStream(t *testing.T) {
	ep := buildEpoch(t, 11, 300,
		defaultTag(100e3), defaultTag(100e3), defaultTag(100e3))
	cfg := DefaultConfig(25e6, []float64{100e3}, 300)

	clean := decodeEpoch(t, ep, cfg)
	if len(clean.Streams) < 2 {
		t.Fatalf("need at least 2 streams to show isolation, got %d", len(clean.Streams))
	}
	victim := clean.Streams[0].Stream.ID

	cfg.testStreamHook = func(sr *StreamResult) {
		if sr.Stream.ID == victim {
			panic("poisoned stream")
		}
	}
	poisoned := decodeEpoch(t, ep, cfg)

	if len(poisoned.Dropped) == 0 {
		t.Fatal("poisoned decode reported no Dropped entries")
	}
	found := false
	for _, d := range poisoned.Dropped {
		if d.Reason == DropPanic && d.Stream == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("no DropPanic entry for stream %d in %+v", victim, poisoned.Dropped)
	}

	// The surviving streams must match the clean decode exactly: the
	// quarantine may not perturb anything outside the poisoned stream.
	var survivors []*StreamResult
	for _, sr := range clean.Streams {
		if sr.Stream.ID != victim {
			survivors = append(survivors, sr)
		}
	}
	if len(poisoned.Streams) != len(survivors) {
		t.Fatalf("poisoned decode has %d streams, want %d survivors", len(poisoned.Streams), len(survivors))
	}
	for i, sr := range poisoned.Streams {
		if !reflect.DeepEqual(sr, survivors[i]) {
			t.Fatalf("survivor stream %d diverged from unpoisoned decode:\nclean:    %+v\npoisoned: %+v", i, survivors[i], sr)
		}
	}
}

// TestQuarantineAllStreamsPoisoned is the degenerate case: every
// stream panics, the decode still completes with an empty stream list
// and one Dropped entry per casualty — never an error, never a crash.
func TestQuarantineAllStreamsPoisoned(t *testing.T) {
	ep := buildEpoch(t, 12, 300, defaultTag(100e3), defaultTag(100e3))
	cfg := DefaultConfig(25e6, []float64{100e3}, 300)
	clean := decodeEpoch(t, ep, cfg)

	cfg.testStreamHook = func(*StreamResult) { panic("total poisoning") }
	poisoned := decodeEpoch(t, ep, cfg)
	if len(poisoned.Streams) != 0 {
		t.Fatalf("fully poisoned decode still produced %d streams", len(poisoned.Streams))
	}
	if len(poisoned.Dropped) < len(clean.Streams) {
		t.Fatalf("expected ≥%d Dropped entries, got %+v", len(clean.Streams), poisoned.Dropped)
	}
}

func decodeEpoch(t *testing.T, ep *reader.Epoch, cfg Config) *Result {
	t.Helper()
	res, err := Decode(ep.Capture, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
