package decoder

import (
	"testing"

	"lf/internal/streams"
	"lf/internal/tag"
)

// TestTrySplitOnPreambleRegistration exercises the merged-stream
// splitter via the preamble-matcher registration path (the eye pass,
// which handles merges regionally, is disabled): two tags on one grid
// register as a single merged stream, and trySplit must break it
// apart.
func TestTrySplitOnPreambleRegistration(t *testing.T) {
	comp := tag.DefaultComparator()
	comp.CapacitorTolerance = 0
	comp.EnergySpread = 0
	comp.ChargeNoise = 0
	a := tag.Config{BitRate: 100e3, Comparator: comp}
	b := tag.Config{BitRate: 100e3, Comparator: comp}
	ep := buildEpoch(t, 92, 300, a, b)
	cfg := DefaultConfig(25e6, []float64{100e3}, 300)
	cfg.Streams.Registration = streams.RegisterPreambleOnly
	res, err := Decode(ep.Capture, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MergedSplits == 0 {
		t.Fatalf("merged preamble registration was not split (streams=%d)", len(res.Streams))
	}
	c, total := score(ep, res)
	if float64(c) < 0.9*float64(total) {
		t.Fatalf("split decode %d/%d", c, total)
	}
}

// TestSeparationModes runs the same collided capture through all three
// collision-separation strategies; every mode must decode the bulk of
// the bits, and anchored must match or beat blind on a short capture
// (few lattice points).
func TestSeparationModes(t *testing.T) {
	ep := buildEpoch(t, 6, 300, defaultTag(100e3), defaultTag(100e3), defaultTag(100e3))
	scores := map[SeparationMode]int{}
	for _, mode := range []SeparationMode{SeparationHybrid, SeparationAnchored, SeparationBlind} {
		cfg := DefaultConfig(25e6, []float64{100e3}, 300)
		cfg.Separation = mode
		res, err := Decode(ep.Capture, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, total := score(ep, res)
		scores[mode] = c
		if float64(c) < 0.7*float64(total) {
			t.Fatalf("mode %d decoded %d/%d", mode, c, total)
		}
	}
	if scores[SeparationHybrid] < scores[SeparationBlind] {
		t.Fatalf("hybrid (%d) below pure blind (%d)", scores[SeparationHybrid], scores[SeparationBlind])
	}
}

// TestRegistrationModesAgreeOnCleanScenario: with well-separated
// phases, preamble and eye registration must find the same streams.
func TestRegistrationModesAgreeOnCleanScenario(t *testing.T) {
	ep := buildEpoch(t, 1, 300, defaultTag(100e3))
	for _, mode := range []streams.RegistrationMode{
		streams.RegisterEyeOnly, streams.RegisterPreambleOnly, streams.RegisterBoth,
	} {
		cfg := DefaultConfig(25e6, []float64{100e3}, 300)
		cfg.Streams.Registration = mode
		res, err := Decode(ep.Capture, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Streams) != 1 {
			t.Fatalf("mode %d registered %d streams", mode, len(res.Streams))
		}
		c, total := score(ep, res)
		if c != total {
			t.Fatalf("mode %d decoded %d/%d", mode, c, total)
		}
	}
}

// TestCancellationRoundsBounded: extra SIC rounds terminate (no
// infinite re-detection of the same streams).
func TestCancellationRoundsBounded(t *testing.T) {
	ep := buildEpoch(t, 4, 200, defaultTag(100e3), defaultTag(100e3))
	cfg := DefaultConfig(25e6, []float64{100e3}, 200)
	cfg.CancellationRounds = 10
	res, err := Decode(ep.Capture, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) > 4 {
		t.Fatalf("SIC rounds fabricated %d streams for 2 tags", len(res.Streams))
	}
}
