package decoder

import "fmt"

// Stage names the pipeline stage a decode error or degradation
// originated in.
type Stage string

const (
	// StageInput covers capture-level validation (rates, emptiness).
	StageInput Stage = "input"
	// StageEdgeDetect covers incremental edge detection.
	StageEdgeDetect Stage = "edgedetect"
	// StageRegister covers preamble/eye stream registration.
	StageRegister Stage = "register"
	// StageWalk covers drift-tracked slot walking.
	StageWalk Stage = "walk"
	// StageCommit covers the frame-commit stage: merged-pair splitting,
	// collision resolution, sequence decoding.
	StageCommit Stage = "commit"
	// StageCancel covers successive interference cancellation.
	StageCancel Stage = "cancel"
)

// DecodeError is the typed error every decode-path failure surfaces
// as: the stage that failed and, when known, the absolute sample
// position the failure is anchored at.
type DecodeError struct {
	// Stage is the pipeline stage that raised the error.
	Stage Stage
	// Pos is the sample position the error is anchored at, or -1 when
	// the failure is not positional.
	Pos int64
	// Err is the underlying cause.
	Err error
}

func (e *DecodeError) Error() string {
	if e.Pos >= 0 {
		return fmt.Sprintf("decode[%s@%d]: %v", e.Stage, e.Pos, e.Err)
	}
	return fmt.Sprintf("decode[%s]: %v", e.Stage, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// errAt wraps err as a DecodeError unless it already is one.
func errAt(stage Stage, pos int64, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*DecodeError); ok {
		return err
	}
	return &DecodeError{Stage: stage, Pos: pos, Err: err}
}

// DropReason classifies a graceful-degradation event recorded in
// Result.Dropped.
type DropReason string

const (
	// DropNonFinite: NaN/Inf (or overflow-scale) samples were replaced
	// and the detection windows touching them blanked.
	DropNonFinite DropReason = "non-finite-input"
	// DropPanic: a per-stream stage panicked; the stream was
	// quarantined and removed from Result.Streams.
	DropPanic DropReason = "stream-panic"
	// DropTruncated: the capture ended before the stream's nominal
	// frame; the frame is best-effort up to the cut.
	DropTruncated DropReason = "truncated-capture"
)

// Dropped records one graceful-degradation event: instead of failing
// the whole decode, the pipeline dropped a sample span or quarantined
// a stream and carried on.
type Dropped struct {
	// Stream is the registered stream ID the drop refers to, or -1 for
	// capture-level drops (non-finite spans, cancellation failures).
	Stream int
	// Reason classifies the drop.
	Reason DropReason
	// Lo and Hi bound the affected sample span, when positional;
	// Lo == Hi == -1 otherwise.
	Lo, Hi int64
	// Detail elaborates (panic message, stage name).
	Detail string
}
