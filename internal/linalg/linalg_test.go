package linalg

import (
	"math/cmplx"
	"testing"
	"testing/quick"

	"lf/internal/rng"
)

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]complex128{
		{2, 1},
		{1, 3},
	})
	// x = (1, 2i): b = (2+2i, 1+6i)
	b := []complex128{2 + 2i, 1 + 6i}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-1) > 1e-12 || cmplx.Abs(x[1]-2i) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]complex128{
		{1, 2},
		{2, 4},
	})
	if _, err := Solve(a, []complex128{1, 2}); err != ErrSingular {
		t.Fatalf("singular matrix: err = %v", err)
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Solve(a, []complex128{1, 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	sq := NewMatrix(2, 2)
	if _, err := Solve(sq, []complex128{1}); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
}

func TestSolvePropertyAxEqualsB(t *testing.T) {
	src := rng.New(1)
	f := func(seed int64) bool {
		s := rng.New(seed)
		n := 3 + s.Intn(4)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, complex(s.Norm(0, 1), s.Norm(0, 1)))
			}
			a.Set(i, i, a.At(i, i)+complex(float64(n), 0)) // diagonally dominant
		}
		want := make([]complex128, n)
		for i := range want {
			want[i] = complex(s.Norm(0, 1), s.Norm(0, 1))
		}
		b := a.MulVec(want)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	_ = src
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresConsistent(t *testing.T) {
	// Overdetermined but consistent: exact recovery.
	a := FromRows([][]complex128{
		{1, 0},
		{0, 1},
		{1, 1},
		{1, -1},
	})
	want := []complex128{2 - 1i, 3 + 2i}
	b := a.MulVec(want)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	if r := Residual(a, x, b); r > 1e-18 {
		t.Fatalf("residual %v", r)
	}
}

func TestLeastSquaresMinimizes(t *testing.T) {
	a := FromRows([][]complex128{{1}, {1}})
	b := []complex128{0, 2}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-1) > 1e-12 {
		t.Fatalf("LS of {0,2} over ones = %v, want 1", x[0])
	}
}

func TestConjTransposeProduct(t *testing.T) {
	src := rng.New(2)
	f := func(seed int64) bool {
		s := rng.New(seed)
		a := NewMatrix(2, 3)
		b := NewMatrix(3, 2)
		for i := range a.Data {
			a.Data[i] = complex(s.Norm(0, 1), s.Norm(0, 1))
		}
		for i := range b.Data {
			b.Data[i] = complex(s.Norm(0, 1), s.Norm(0, 1))
		}
		// (A·B)ᴴ == Bᴴ·Aᴴ
		lhs := a.Mul(b).ConjTranspose()
		rhs := b.ConjTranspose().Mul(a.ConjTranspose())
		for i := range lhs.Data {
			if cmplx.Abs(lhs.Data[i]-rhs.Data[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	_ = src
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityMul(t *testing.T) {
	a := FromRows([][]complex128{{1, 2i}, {3, 4}})
	got := Identity(2).Mul(a)
	for i := range a.Data {
		if got.Data[i] != a.Data[i] {
			t.Fatal("I·A != A")
		}
	}
}

func TestMulVecDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	NewMatrix(2, 2).MulVec([]complex128{1})
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows should panic")
		}
	}()
	FromRows([][]complex128{{1, 2}, {3}})
}

func TestCloneIsDeep(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}
