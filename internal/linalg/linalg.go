// Package linalg provides the dense complex linear algebra the Buzz
// baseline's decoder needs: matrix/vector products, Gaussian
// elimination with partial pivoting, and least-squares solves via the
// normal equations. Matrices are small (tens of rows), so simplicity
// and numerical hygiene beat asymptotics here.
package linalg

import (
	"errors"
	"fmt"
	"math/cmplx"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewMatrix allocates a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []complex128) []complex128 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %d cols vs %d vector", m.Cols, len(x)))
	}
	y := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var acc complex128
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			acc += v * x[j]
		}
		y[i] = acc
	}
	return y
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch: %dx%d times %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// ConjTranspose returns mᴴ.
func (m *Matrix) ConjTranspose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// ErrSingular is returned when elimination meets a (numerically) zero
// pivot.
var ErrSingular = errors.New("linalg: singular matrix")

// Solve solves the square system a·x = b by Gaussian elimination with
// partial pivoting. a and b are not modified.
func Solve(a *Matrix, b []complex128) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Solve needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: Solve rhs length %d for %d rows", len(b), a.Rows)
	}
	n := a.Rows
	aug := a.Clone()
	x := make([]complex128, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column.
		pivot := col
		best := cmplx.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(aug.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				aug.Data[col*n+j], aug.Data[pivot*n+j] = aug.Data[pivot*n+j], aug.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				aug.Data[r*n+j] -= f * aug.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		acc := x[i]
		for j := i + 1; j < n; j++ {
			acc -= aug.At(i, j) * x[j]
		}
		x[i] = acc / aug.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min‖a·x − b‖₂ via the normal equations
// (aᴴa)x = aᴴb. Suitable for the well-conditioned random measurement
// matrices Buzz uses; returns ErrSingular when aᴴa is rank deficient
// (fewer independent measurements than unknowns).
func LeastSquares(a *Matrix, b []complex128) ([]complex128, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: LeastSquares rhs length %d for %d rows", len(b), a.Rows)
	}
	ah := a.ConjTranspose()
	ata := ah.Mul(a)
	atb := ah.MulVec(b)
	return Solve(ata, atb)
}

// RidgeLeastSquares solves the Tikhonov-regularized least squares
// min‖a·x − b‖₂² + λ‖x‖₂² via (aᴴa + λI)x = aᴴb. λ > 0 makes the
// system nonsingular even when a is rank deficient — the fallback for
// unlucky random measurement matrices.
func RidgeLeastSquares(a *Matrix, b []complex128, lambda float64) ([]complex128, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: RidgeLeastSquares rhs length %d for %d rows", len(b), a.Rows)
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("linalg: ridge parameter %v must be positive", lambda)
	}
	ah := a.ConjTranspose()
	ata := ah.Mul(a)
	for i := 0; i < ata.Rows; i++ {
		ata.Set(i, i, ata.At(i, i)+complex(lambda, 0))
	}
	atb := ah.MulVec(b)
	return Solve(ata, atb)
}

// Residual returns ‖a·x − b‖₂².
func Residual(a *Matrix, x, b []complex128) float64 {
	y := a.MulVec(x)
	var r float64
	for i := range y {
		d := y[i] - b[i]
		r += real(d)*real(d) + imag(d)*imag(d)
	}
	return r
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
