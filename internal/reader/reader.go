// Package reader models the reader front end of the system: the carrier
// epoch controller and the ADC capture synthesis. The reader transmits
// a continuous carrier, chops time into epochs by dropping and
// restarting it (§3.2), and records complex baseband at a sampling rate
// several orders of magnitude above the tag bit rates (25 Msps against
// ≤100 kbps in the paper) — the asymmetry the whole protocol leans on.
package reader

import (
	"fmt"
	"math"

	"lf/internal/channel"
	"lf/internal/iq"
	"lf/internal/pool"
	"lf/internal/tag"
)

// EpochConfig describes one carrier epoch.
type EpochConfig struct {
	// SampleRate of the reader ADC in samples/s (25e6 in the paper).
	SampleRate float64
	// Duration of the epoch in seconds.
	Duration float64
	// EdgeSamples is the width of an antenna state transition in ADC
	// samples (≈3 at 25 Msps per §2.4); transitions ramp linearly.
	EdgeSamples int
}

// DefaultEpochConfig matches the paper's reader: 25 Msps, 3-sample
// edges, with the epoch long enough for a ~100-bit frame at 100 kbps.
func DefaultEpochConfig() EpochConfig {
	return EpochConfig{SampleRate: 25e6, Duration: 2e-3, EdgeSamples: 3}
}

// Validate checks the epoch configuration.
func (c EpochConfig) Validate() error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("reader: non-positive sample rate %v", c.SampleRate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("reader: non-positive duration %v", c.Duration)
	}
	if c.EdgeSamples < 1 {
		return fmt.Errorf("reader: edge width %d < 1 sample", c.EdgeSamples)
	}
	return nil
}

// NumSamples returns the capture length for the epoch.
func (c EpochConfig) NumSamples() int {
	return int(math.Round(c.SampleRate * c.Duration))
}

// Epoch bundles a synthesized capture with its ground truth, for
// scoring decodes.
type Epoch struct {
	Capture   *iq.Capture
	Emissions []*tag.Emission
	Config    EpochConfig
}

// Blocks replays the epoch's capture through push in blockSize-sample
// blocks, in order — the adapter between a synthesized epoch and a
// streaming decode, mirroring how an SDR front end would hand the
// decoder its DMA buffers. It stops at the first push error.
func (e *Epoch) Blocks(blockSize int, push func([]complex128) error) error {
	if blockSize <= 0 {
		return fmt.Errorf("reader: non-positive block size %d", blockSize)
	}
	samples := e.Capture.Samples
	for lo := 0; lo < len(samples); lo += blockSize {
		hi := lo + blockSize
		if hi > len(samples) {
			hi = len(samples)
		}
		if err := push(samples[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// Synthesize renders the received baseband for one epoch:
//
//	S(t) = Env + Σⱼ hⱼ·sⱼ(t) + n(t)
//
// with each antenna toggle shaped as a linear ramp EdgeSamples wide.
// The synthesis is O(samples + toggles·EdgeSamples) via a difference
// array, so long captures with many concurrent tags stay cheap.
func Synthesize(ch *channel.Model, emissions []*tag.Emission, cfg EpochConfig) (*Epoch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NumSamples()
	// diff[i] accumulates the per-sample increments of the noiseless
	// signal; the signal is its running sum plus the environment. It is
	// pure scratch, recycled through the shared pool (the samples array
	// escapes into the returned capture and cannot be).
	diff := pool.Complex(n + cfg.EdgeSamples + 1)
	defer pool.PutComplex(diff)
	for _, em := range emissions {
		if em.TagID < 0 || em.TagID >= len(ch.Coeffs) {
			return nil, fmt.Errorf("reader: emission for tag %d but channel has %d coefficients", em.TagID, len(ch.Coeffs))
		}
		h := ch.Coeffs[em.TagID]
		prev := byte(0)
		for _, tg := range em.Toggles {
			idx := int(math.Round(tg.Time * cfg.SampleRate))
			if idx >= n {
				break
			}
			delta := h // rising: add h
			if tg.State == prev {
				continue
			}
			if tg.State == 0 {
				delta = -h // falling: remove h
			}
			prev = tg.State
			if idx < 0 {
				// Toggle before capture start: apply instantly at 0.
				diff[0] += delta
				continue
			}
			step := delta / complex(float64(cfg.EdgeSamples), 0)
			for k := 0; k < cfg.EdgeSamples; k++ {
				diff[idx+k] += step
			}
		}
	}
	samples := make([]complex128, n)
	var acc complex128
	env := ch.Params.EnvReflection
	for i := 0; i < n; i++ {
		acc += diff[i]
		samples[i] = env + acc + ch.Noise()
	}
	cap := &iq.Capture{SampleRate: cfg.SampleRate, Samples: samples}
	return &Epoch{Capture: cap, Emissions: emissions, Config: cfg}, nil
}

// OracleEdgeIndices returns the ground-truth edge sample positions of
// an emission under the epoch's sample rate — used by tests and the
// decoder ablations that bypass edge detection.
func OracleEdgeIndices(em *tag.Emission, cfg EpochConfig) []int64 {
	out := make([]int64, 0, len(em.Toggles))
	for _, tg := range em.Toggles {
		out = append(out, int64(math.Round(tg.Time*cfg.SampleRate)))
	}
	return out
}
