package reader

import (
	"math/cmplx"
	"testing"

	"lf/internal/channel"
	"lf/internal/tag"
)

// cleanModel returns a noiseless channel with the given coefficients.
func cleanModel(coeffs ...complex128) *channel.Model {
	p := channel.DefaultParams()
	p.NoiseSigma2 = 0
	return channel.NewModelFromCoeffs(p, coeffs, nil)
}

func TestEpochConfigValidate(t *testing.T) {
	good := EpochConfig{SampleRate: 25e6, Duration: 1e-3, EdgeSamples: 3}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, bad := range []EpochConfig{
		{SampleRate: 0, Duration: 1e-3, EdgeSamples: 3},
		{SampleRate: 25e6, Duration: 0, EdgeSamples: 3},
		{SampleRate: 25e6, Duration: 1e-3, EdgeSamples: 0},
	} {
		if bad.Validate() == nil {
			t.Fatalf("invalid config accepted: %+v", bad)
		}
	}
}

func TestSynthesizeLevels(t *testing.T) {
	h := complex(2e-3, 1e-3)
	ch := cleanModel(h)
	em := &tag.Emission{
		TagID:     0,
		Start:     40e-6,
		BitPeriod: 10e-6,
		Bits:      []byte{1, 0, 1},
		Toggles: []tag.Toggle{
			{Time: 40e-6, State: 1},
			{Time: 60e-6, State: 0},
		},
	}
	cfg := EpochConfig{SampleRate: 25e6, Duration: 100e-6, EdgeSamples: 3}
	ep, err := Synthesize(ch, []*tag.Emission{em}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := ch.Params.EnvReflection
	// Before the first toggle the received value is the environment.
	if got := ep.Capture.Samples[100]; cmplx.Abs(got-env) > 1e-12 {
		t.Fatalf("pre-toggle level %v, want env %v", got, env)
	}
	// Between toggles (samples 1005..1495) the tag reflects: env + h.
	if got := ep.Capture.Samples[1200]; cmplx.Abs(got-(env+h)) > 1e-12 {
		t.Fatalf("tuned level %v, want %v", got, env+h)
	}
	// After the falling toggle it returns to the environment.
	if got := ep.Capture.Samples[1800]; cmplx.Abs(got-env) > 1e-12 {
		t.Fatalf("post-toggle level %v, want env", got)
	}
}

func TestSynthesizeRampWidth(t *testing.T) {
	h := complex(1e-3, 0)
	ch := cleanModel(h)
	em := &tag.Emission{
		TagID: 0, Start: 4e-6, BitPeriod: 10e-6, Bits: []byte{1},
		Toggles: []tag.Toggle{{Time: 4e-6, State: 1}},
	}
	cfg := EpochConfig{SampleRate: 25e6, Duration: 20e-6, EdgeSamples: 4}
	ep, err := Synthesize(ch, []*tag.Emission{em}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := ch.Params.EnvReflection
	idx := 100 // 4µs at 25 Msps
	// Sample idx is mid-ramp, idx+4 fully settled.
	pre := ep.Capture.Samples[idx-1] - env
	post := ep.Capture.Samples[idx+4] - env
	if cmplx.Abs(pre) > 1e-12 {
		t.Fatalf("ramp started early: %v", pre)
	}
	if cmplx.Abs(post-h) > 1e-12 {
		t.Fatalf("ramp not settled after EdgeSamples: %v", post)
	}
	mid := ep.Capture.Samples[idx+1] - env
	if real(mid) <= 0 || real(mid) >= real(h) {
		t.Fatalf("mid-ramp value %v not between 0 and h", mid)
	}
}

func TestSynthesizeTwoTagsLinear(t *testing.T) {
	h1, h2 := complex(1e-3, 0), complex(0, 2e-3)
	ch := cleanModel(h1, h2)
	mk := func(id int, at float64) *tag.Emission {
		return &tag.Emission{
			TagID: id, Start: at, BitPeriod: 10e-6, Bits: []byte{1},
			Toggles: []tag.Toggle{{Time: at, State: 1}},
		}
	}
	cfg := EpochConfig{SampleRate: 25e6, Duration: 40e-6, EdgeSamples: 3}
	ep, err := Synthesize(ch, []*tag.Emission{mk(0, 5e-6), mk(1, 15e-6)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := ch.Params.EnvReflection
	// After both toggles the signal is the sum of both reflections.
	got := ep.Capture.Samples[int(30e-6*25e6)]
	if cmplx.Abs(got-(env+h1+h2)) > 1e-12 {
		t.Fatalf("combined level %v, want %v", got, env+h1+h2)
	}
}

func TestSynthesizeRejectsUnknownTag(t *testing.T) {
	ch := cleanModel(1)
	em := &tag.Emission{TagID: 5, Bits: []byte{1}, BitPeriod: 1e-5,
		Toggles: []tag.Toggle{{Time: 0, State: 1}}}
	cfg := EpochConfig{SampleRate: 25e6, Duration: 1e-5, EdgeSamples: 3}
	if _, err := Synthesize(ch, []*tag.Emission{em}, cfg); err == nil {
		t.Fatal("emission for unknown tag accepted")
	}
}

func TestSynthesizeTruncatesLateToggles(t *testing.T) {
	ch := cleanModel(1e-3)
	em := &tag.Emission{
		TagID: 0, Start: 0, BitPeriod: 10e-6, Bits: []byte{1, 1},
		Toggles: []tag.Toggle{
			{Time: 1e-6, State: 1},
			{Time: 99, State: 0}, // far beyond the capture
		},
	}
	cfg := EpochConfig{SampleRate: 25e6, Duration: 10e-6, EdgeSamples: 3}
	if _, err := Synthesize(ch, []*tag.Emission{em}, cfg); err != nil {
		t.Fatalf("late toggle should be ignored, got %v", err)
	}
}

func TestOracleEdgeIndices(t *testing.T) {
	em := &tag.Emission{
		Toggles: []tag.Toggle{{Time: 1e-6, State: 1}, {Time: 2e-6, State: 0}},
	}
	cfg := EpochConfig{SampleRate: 25e6, Duration: 1e-3, EdgeSamples: 3}
	idx := OracleEdgeIndices(em, cfg)
	if len(idx) != 2 || idx[0] != 25 || idx[1] != 50 {
		t.Fatalf("oracle indices = %v", idx)
	}
}

func TestNumSamples(t *testing.T) {
	cfg := EpochConfig{SampleRate: 25e6, Duration: 2e-3, EdgeSamples: 3}
	if got := cfg.NumSamples(); got != 50000 {
		t.Fatalf("NumSamples = %d", got)
	}
}
