// Package buzz implements the paper's second baseline (§4.2): Buzz
// [Wang et al., SIGCOMM 2012], which lets all tags transmit in
// synchronous lock-step and separates them as a linear system. Each
// bit round, every tag retransmits its current bit in several
// measurements gated by a pre-agreed random participation matrix D
// (d_mj ∈ {0,1}); the reader observes
//
//	y_m = Σⱼ d_mj · hⱼ · bⱼ + noise
//
// and recovers b by maximum-likelihood search over {0,1}ⁿ (Gray-code
// enumeration, exact for the network sizes evaluated) or least-squares
// rounding for larger n. Channel coefficients are estimated from
// per-tag pilots at the start of every epoch — the estimation overhead
// and the lock-step clock requirement are exactly the structural costs
// the paper holds against Buzz.
//
// Substitution note (see DESIGN.md): Buzz's compressive-sensing channel
// estimation is replaced with sequential per-tag pilots of equivalent
// symbol cost, and the waveform layer is abstracted to symbol-level
// complex measurements; Buzz's behaviour is governed by this linear
// system, not by waveform detail.
package buzz

import (
	"fmt"
	"math"
	"math/cmplx"

	"lf/internal/linalg"
	"lf/internal/rng"
)

// Config parameterizes the baseline.
type Config struct {
	// BitRate is the lock-step symbol rate in symbols/s.
	BitRate float64
	// MessageBits per tag per epoch (96 per the paper).
	MessageBits int
	// PilotSymbolsPerTag is the channel-estimation cost per tag per
	// epoch, in symbols.
	PilotSymbolsPerTag int
	// MeasurementFactor sets measurements per bit round:
	// m = max(3, round(factor·n) + 1).
	MeasurementFactor float64
	// NoiseSigma2 is the complex noise variance per measurement.
	NoiseSigma2 float64
	// MaxEnumTags bounds exact ML enumeration (2ⁿ hypotheses); larger
	// networks fall back to least squares with rounding, which then
	// needs m ≥ n.
	MaxEnumTags int
	// CoeffDriftPerSymbol optionally perturbs the true channel
	// coefficients as the epoch progresses (relative random-walk step
	// per symbol), modeling the §2.2 dynamics that break Buzz's
	// assumption of stable coefficients.
	CoeffDriftPerSymbol float64
}

// DefaultConfig matches the paper's Buzz operating point: 100 kbps,
// 96-bit messages.
func DefaultConfig() Config {
	return Config{
		BitRate:            100e3,
		MessageBits:        96,
		PilotSymbolsPerTag: 4,
		MeasurementFactor:  0.4,
		NoiseSigma2:        2.5e-9, // matches channel.DefaultParams at ~2 m coefficients
		MaxEnumTags:        16,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BitRate <= 0 || c.MessageBits <= 0 || c.PilotSymbolsPerTag < 1 {
		return fmt.Errorf("buzz: invalid config %+v", c)
	}
	if c.MeasurementFactor <= 0 || c.NoiseSigma2 < 0 || c.MaxEnumTags < 1 {
		return fmt.Errorf("buzz: invalid config %+v", c)
	}
	return nil
}

// Measurements returns m for a network of n tags.
func (c Config) Measurements(n int) int {
	m := int(math.Round(c.MeasurementFactor*float64(n))) + 1
	if m < 3 {
		m = 3
	}
	if n > c.MaxEnumTags && m < n {
		m = n // LS decoding needs a determined system
	}
	return m
}

// Network is an instantiated Buzz deployment.
type Network struct {
	cfg Config
	h   []complex128 // true coefficients (drift applies on top)
	src *rng.Source
}

// NewNetwork builds a Buzz network over the given true channel
// coefficients.
func NewNetwork(cfg Config, coeffs []complex128, src *rng.Source) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("buzz: no tags")
	}
	h := make([]complex128, len(coeffs))
	copy(h, coeffs)
	return &Network{cfg: cfg, h: h, src: src}, nil
}

// N returns the tag count.
func (nw *Network) N() int { return len(nw.h) }

// EstimateChannels runs the pilot phase: each tag in turn transmits
// PilotSymbolsPerTag known symbols alone; the reader averages to
// estimate ĥ. Returns the estimates and the symbol cost.
func (nw *Network) EstimateChannels() (est []complex128, symbols int) {
	est = make([]complex128, len(nw.h))
	p := nw.cfg.PilotSymbolsPerTag
	for j, h := range nw.h {
		var sum complex128
		for s := 0; s < p; s++ {
			sum += h + nw.src.ComplexNorm(nw.cfg.NoiseSigma2)
		}
		est[j] = sum / complex(float64(p), 0)
	}
	return est, p * len(nw.h)
}

// RoundResult is one decoded lock-step bit round.
type RoundResult struct {
	// Decoded bits, one per tag.
	Decoded []byte
	// Residual is the ML / LS residual of the chosen hypothesis.
	Residual float64
	// Symbols consumed (one per measurement).
	Symbols int
}

// TransmitRound synthesizes m measurements of the tags' current bits
// under a fresh random participation matrix and decodes them. hEst is
// the reader's channel estimate; drift (if configured) perturbs the
// true coefficients between measurements.
func (nw *Network) TransmitRound(bits []byte, hEst []complex128) (RoundResult, error) {
	n := len(nw.h)
	if len(bits) != n {
		return RoundResult{}, fmt.Errorf("buzz: %d bits for %d tags", len(bits), n)
	}
	m := nw.cfg.Measurements(n)
	d := linalg.NewMatrix(m, n)
	// Participation: every tag transmits in its base measurement
	// (j mod m) — the pre-agreed pattern guarantees each tag is
	// observed at least once per round — plus random extra
	// measurements that give the decoder diverse combinations.
	for j := 0; j < n; j++ {
		d.Set(j%m, j, 1)
		for mi := 0; mi < m; mi++ {
			if d.At(mi, j) == 0 && nw.src.Bit() == 1 {
				d.Set(mi, j, 1)
			}
		}
	}
	y := make([]complex128, m)
	for mi := 0; mi < m; mi++ {
		var acc complex128
		for j := 0; j < n; j++ {
			if d.At(mi, j) == 1 && bits[j] == 1 {
				acc += nw.h[j]
			}
		}
		y[mi] = acc + nw.src.ComplexNorm(nw.cfg.NoiseSigma2)
		if nw.cfg.CoeffDriftPerSymbol > 0 {
			for j := range nw.h {
				nw.h[j] *= complex(1+nw.src.Norm(0, nw.cfg.CoeffDriftPerSymbol),
					nw.src.Norm(0, nw.cfg.CoeffDriftPerSymbol))
			}
		}
	}
	var decoded []byte
	var residual float64
	if n <= nw.cfg.MaxEnumTags {
		decoded, residual = decodeML(d, y, hEst)
	} else {
		var err error
		decoded, residual, err = decodeLS(d, y, hEst)
		if err != nil {
			return RoundResult{}, err
		}
	}
	return RoundResult{Decoded: decoded, Residual: residual, Symbols: m}, nil
}

// decodeML enumerates b ∈ {0,1}ⁿ in Gray-code order, maintaining the
// residual incrementally (each step flips one bit, an O(m) update), and
// returns the hypothesis with minimum ‖y − D·(ĥ∘b)‖².
func decodeML(d *linalg.Matrix, y []complex128, hEst []complex128) ([]byte, float64) {
	m, n := d.Rows, d.Cols
	// cols[j][mi] = d_mij·ĥⱼ — the contribution of tag j's 1-bit to
	// measurement mi.
	cols := make([][]complex128, n)
	for j := 0; j < n; j++ {
		col := make([]complex128, m)
		for mi := 0; mi < m; mi++ {
			col[mi] = d.At(mi, j) * hEst[j]
		}
		cols[j] = col
	}
	r := make([]complex128, m) // r = y − D(ĥ∘b), starting at b = 0
	copy(r, y)
	norm := func() float64 {
		var s float64
		for _, v := range r {
			s += real(v)*real(v) + imag(v)*imag(v)
		}
		return s
	}
	best := norm()
	bestCode := uint64(0)
	b := make([]byte, n)
	code := uint64(0)
	total := uint64(1) << uint(n)
	for i := uint64(1); i < total; i++ {
		// Gray code: bit to flip is the lowest set bit index of i.
		flip := trailingZeros(i)
		col := cols[flip]
		if b[flip] == 0 {
			b[flip] = 1
			code |= 1 << uint(flip)
			for mi := 0; mi < m; mi++ {
				r[mi] -= col[mi]
			}
		} else {
			b[flip] = 0
			code &^= 1 << uint(flip)
			for mi := 0; mi < m; mi++ {
				r[mi] += col[mi]
			}
		}
		if s := norm(); s < best {
			best = s
			bestCode = code
		}
	}
	out := make([]byte, n)
	for j := 0; j < n; j++ {
		out[j] = byte((bestCode >> uint(j)) & 1)
	}
	return out, best
}

func trailingZeros(x uint64) int {
	tz := 0
	for x&1 == 0 {
		x >>= 1
		tz++
	}
	return tz
}

// decodeLS solves the (over)determined least-squares system for
// x = ĥ∘b and rounds each component: bⱼ = 1 iff xⱼ is closer to ĥⱼ
// than to 0. An unlucky participation matrix can be rank deficient;
// ridge regularization keeps the round decodable (the regularized
// solution still separates ĥⱼ from 0 at Buzz's operating SNR).
func decodeLS(d *linalg.Matrix, y []complex128, hEst []complex128) ([]byte, float64, error) {
	x, err := linalg.LeastSquares(d, y)
	if err == linalg.ErrSingular {
		x, err = linalg.RidgeLeastSquares(d, y, 1e-3)
	}
	if err != nil {
		return nil, 0, err
	}
	n := len(hEst)
	out := make([]byte, n)
	xb := make([]complex128, n)
	for j := 0; j < n; j++ {
		if cmplx.Abs(x[j]-hEst[j]) < cmplx.Abs(x[j]) {
			out[j] = 1
			xb[j] = hEst[j]
		}
	}
	return out, linalg.Residual(d, xb, y), nil
}

// EpochResult summarizes one full lock-step epoch.
type EpochResult struct {
	// Decoded[j] is tag j's decoded message.
	Decoded [][]byte
	// BitErrors across all tags.
	BitErrors int
	// Symbols consumed including pilots.
	Symbols int
	// Seconds is Symbols / BitRate.
	Seconds float64
	// AggregateBps is correct bits delivered per second.
	AggregateBps float64
}

// Epoch runs channel estimation followed by MessageBits lock-step
// rounds carrying each tag's message.
func (nw *Network) Epoch(messages [][]byte) (*EpochResult, error) {
	n := len(nw.h)
	if len(messages) != n {
		return nil, fmt.Errorf("buzz: %d messages for %d tags", len(messages), n)
	}
	for j, msg := range messages {
		if len(msg) != nw.cfg.MessageBits {
			return nil, fmt.Errorf("buzz: tag %d message has %d bits, want %d", j, len(msg), nw.cfg.MessageBits)
		}
	}
	hEst, pilotSymbols := nw.EstimateChannels()
	res := &EpochResult{Symbols: pilotSymbols, Decoded: make([][]byte, n)}
	for j := range res.Decoded {
		res.Decoded[j] = make([]byte, nw.cfg.MessageBits)
	}
	bits := make([]byte, n)
	for k := 0; k < nw.cfg.MessageBits; k++ {
		for j := 0; j < n; j++ {
			bits[j] = messages[j][k]
		}
		round, err := nw.TransmitRound(bits, hEst)
		if err != nil {
			return nil, err
		}
		res.Symbols += round.Symbols
		for j := 0; j < n; j++ {
			res.Decoded[j][k] = round.Decoded[j]
			if round.Decoded[j] != bits[j] {
				res.BitErrors++
			}
		}
	}
	res.Seconds = float64(res.Symbols) / nw.cfg.BitRate
	totalBits := n * nw.cfg.MessageBits
	res.AggregateBps = float64(totalBits-res.BitErrors) / res.Seconds
	return res, nil
}

// TransferBps predicts steady-state aggregate throughput analytically
// (no bit errors): n·MessageBits over the epoch's symbol budget.
func (c Config) TransferBps(n int) float64 {
	if n <= 0 {
		return 0
	}
	symbols := c.PilotSymbolsPerTag*n + c.MessageBits*c.Measurements(n)
	return float64(n*c.MessageBits) / (float64(symbols) / c.BitRate)
}

// InventorySeconds estimates identification latency for n tags: one
// epoch carrying each tag's 101-bit identification frame (96-bit EPC +
// CRC-5), with the same pilot overhead.
func (c Config) InventorySeconds(n int, frameBits int) float64 {
	symbols := c.PilotSymbolsPerTag*n + frameBits*c.Measurements(n)
	return float64(symbols) / c.BitRate
}
