package buzz

import (
	"testing"

	"lf/internal/rng"
)

func coeffs(n int, src *rng.Source) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(8e-4, 0) * src.UnitPhasor() * complex(src.Tolerance(0.3), 0)
	}
	return out
}

func TestMeasurements(t *testing.T) {
	c := DefaultConfig()
	if m := c.Measurements(1); m != 3 {
		t.Fatalf("m(1) = %d, want floor of 3", m)
	}
	if m := c.Measurements(16); m != 7 {
		t.Fatalf("m(16) = %d, want 7", m)
	}
	// Past the enumeration limit the LS decoder needs a determined
	// system.
	if m := c.Measurements(20); m < 20 {
		t.Fatalf("m(20) = %d, must be ≥ n for LS", m)
	}
}

func TestEpochDecodesCleanly(t *testing.T) {
	src := rng.New(1)
	cfg := DefaultConfig()
	cfg.MessageBits = 48
	nw, err := NewNetwork(cfg, coeffs(6, src), src.Split("net"))
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]byte, 6)
	for i := range msgs {
		msgs[i] = src.Bits(48)
	}
	res, err := nw.Epoch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors != 0 {
		t.Fatalf("%d bit errors at nominal SNR", res.BitErrors)
	}
	for j := range msgs {
		for k := range msgs[j] {
			if res.Decoded[j][k] != msgs[j][k] {
				t.Fatalf("tag %d bit %d wrong", j, k)
			}
		}
	}
	wantSymbols := cfg.PilotSymbolsPerTag*6 + cfg.MessageBits*cfg.Measurements(6)
	if res.Symbols != wantSymbols {
		t.Fatalf("symbols = %d, want %d", res.Symbols, wantSymbols)
	}
}

func TestEpochValidation(t *testing.T) {
	src := rng.New(2)
	nw, err := NewNetwork(DefaultConfig(), coeffs(3, src), src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Epoch(make([][]byte, 2)); err == nil {
		t.Fatal("wrong message count accepted")
	}
	msgs := [][]byte{src.Bits(10), src.Bits(96), src.Bits(96)}
	if _, err := nw.Epoch(msgs); err == nil {
		t.Fatal("wrong message length accepted")
	}
}

func TestChannelEstimationAccuracy(t *testing.T) {
	src := rng.New(3)
	cfg := DefaultConfig()
	h := coeffs(4, src)
	nw, err := NewNetwork(cfg, h, src.Split("net"))
	if err != nil {
		t.Fatal(err)
	}
	est, symbols := nw.EstimateChannels()
	if symbols != cfg.PilotSymbolsPerTag*4 {
		t.Fatalf("pilot symbols = %d", symbols)
	}
	for j := range h {
		d := est[j] - h[j]
		if real(d)*real(d)+imag(d)*imag(d) > 1e-8 {
			t.Fatalf("estimate %d off by %v", j, d)
		}
	}
}

func TestLSDecoderAboveEnumLimit(t *testing.T) {
	src := rng.New(4)
	cfg := DefaultConfig()
	cfg.MaxEnumTags = 4 // force the LS path at n=6
	cfg.MessageBits = 24
	nw, err := NewNetwork(cfg, coeffs(6, src), src.Split("net"))
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]byte, 6)
	for i := range msgs {
		msgs[i] = src.Bits(24)
	}
	res, err := nw.Epoch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	// LS-with-rounding over random {0,1} participation matrices has a
	// small residual error rate when a draw is near-singular (real
	// Buzz retransmits those rounds); it must still be far better than
	// chance.
	total := 6 * cfg.MessageBits
	if res.BitErrors > total/10 {
		t.Fatalf("LS decode errors: %d of %d", res.BitErrors, total)
	}
}

func TestCoefficientDriftDegrades(t *testing.T) {
	src := rng.New(5)
	cfg := DefaultConfig()
	cfg.MessageBits = 96
	cfg.CoeffDriftPerSymbol = 0.01 // §2.2 dynamics breaking lock-step Buzz
	nw, err := NewNetwork(cfg, coeffs(8, src), src.Split("net"))
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]byte, 8)
	for i := range msgs {
		msgs[i] = src.Bits(96)
	}
	res, err := nw.Epoch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors == 0 {
		t.Fatal("heavy coefficient drift should cause decode errors")
	}
}

func TestTransferBpsShape(t *testing.T) {
	c := DefaultConfig()
	if c.TransferBps(0) != 0 {
		t.Fatal("zero tags should be zero")
	}
	t4 := c.TransferBps(4)
	t16 := c.TransferBps(16)
	if t16 <= t4 {
		t.Fatalf("Buzz aggregate should grow with n: %v vs %v", t4, t16)
	}
	// But it stays well under the raw channel rate times n.
	if t16 >= 16*c.BitRate {
		t.Fatal("Buzz cannot exceed the offered load")
	}
}

func TestInventorySeconds(t *testing.T) {
	c := DefaultConfig()
	s := c.InventorySeconds(16, 101)
	want := float64(c.PilotSymbolsPerTag*16+101*c.Measurements(16)) / c.BitRate
	if s != want {
		t.Fatalf("inventory seconds = %v, want %v", s, want)
	}
}

func TestNewNetworkValidation(t *testing.T) {
	src := rng.New(6)
	if _, err := NewNetwork(DefaultConfig(), nil, src); err == nil {
		t.Fatal("empty coefficient set accepted")
	}
	bad := DefaultConfig()
	bad.MessageBits = 0
	if _, err := NewNetwork(bad, coeffs(2, src), src); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestGrayEnumerationMatchesBruteForce cross-checks the incremental
// Gray-code ML decoder against explicit enumeration on a small system.
func TestGrayEnumerationMatchesBruteForce(t *testing.T) {
	src := rng.New(7)
	cfg := DefaultConfig()
	h := coeffs(5, src)
	nw, _ := NewNetwork(cfg, h, src.Split("net"))
	est, _ := nw.EstimateChannels()
	bits := []byte{1, 0, 1, 1, 0}
	round, err := nw.TransmitRound(bits, est)
	if err != nil {
		t.Fatal(err)
	}
	for j := range bits {
		if round.Decoded[j] != bits[j] {
			t.Fatalf("bit %d decoded %d want %d", j, round.Decoded[j], bits[j])
		}
	}
}
