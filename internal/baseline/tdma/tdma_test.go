package tdma

import (
	"testing"

	"lf/internal/rng"
)

func TestTransferCeiling(t *testing.T) {
	c := DefaultConfig()
	r4 := c.Transfer(4)
	r16 := c.Transfer(16)
	// TDMA aggregate throughput is flat in n — the serialization
	// ceiling of Fig. 8.
	if r4.AggregateBps != r16.AggregateBps {
		t.Fatalf("aggregate changed with n: %v vs %v", r4.AggregateBps, r16.AggregateBps)
	}
	if r16.PerNodeBps*16 != r16.AggregateBps {
		t.Fatal("per-node share inconsistent")
	}
	if r4.Efficiency <= 0.9 || r4.Efficiency >= 1 {
		t.Fatalf("slot efficiency %v implausible for a 4-bit QueryRep", r4.Efficiency)
	}
	if got := c.Transfer(0); got.AggregateBps != 0 {
		t.Fatal("zero tags should carry nothing")
	}
}

func TestSlotSeconds(t *testing.T) {
	c := DefaultConfig()
	want := float64(c.SlotBits+c.ControlBits) / c.BitRate
	if c.SlotSeconds() != want {
		t.Fatalf("slot = %v", c.SlotSeconds())
	}
}

func TestInventoryIdentifiesAll(t *testing.T) {
	c := DefaultConfig()
	src := rng.New(1)
	for _, n := range []int{1, 4, 16, 50} {
		res, err := c.Inventory(n, src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Singles != n {
			t.Fatalf("n=%d: identified %d", n, res.Singles)
		}
		if res.Seconds <= 0 {
			t.Fatalf("n=%d: non-positive time", n)
		}
		if res.Slots != res.Singles+res.Collisions+res.Empties {
			t.Fatal("slot accounting inconsistent")
		}
	}
}

func TestInventoryZeroTags(t *testing.T) {
	res, err := DefaultConfig().Inventory(0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 0 || res.Seconds != 0 {
		t.Fatalf("empty inventory consumed %d slots", res.Slots)
	}
}

func TestInventoryScalesWithTags(t *testing.T) {
	c := DefaultConfig()
	src := rng.New(2)
	t4, err := c.MeanInventorySeconds(4, 20, src)
	if err != nil {
		t.Fatal(err)
	}
	t16, err := c.MeanInventorySeconds(16, 20, src)
	if err != nil {
		t.Fatal(err)
	}
	if t16 <= t4 {
		t.Fatalf("16 tags (%v) not slower than 4 (%v)", t16, t4)
	}
	// Framed ALOHA needs at least n full slots; Q overhead means more.
	if t16 < 16*c.SlotSeconds() {
		t.Fatalf("identification faster than the serialization bound: %v", t16)
	}
}

func TestInventoryCollisionsSlowerThanPerfect(t *testing.T) {
	c := DefaultConfig()
	src := rng.New(3)
	res, err := c.Inventory(16, src)
	if err != nil {
		t.Fatal(err)
	}
	// The Q algorithm cannot do better than one slot per tag.
	if res.Slots < 16 {
		t.Fatalf("used %d slots for 16 tags", res.Slots)
	}
}

func TestValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.BitRate = 0
	if bad.Validate() == nil {
		t.Fatal("zero bitrate accepted")
	}
	badQ := DefaultConfig()
	badQ.QInitial = 16
	if badQ.Validate() == nil {
		t.Fatal("out-of-range Q accepted")
	}
	if _, err := badQ.Inventory(4, rng.New(1)); err == nil {
		t.Fatal("Inventory must validate its config")
	}
	if _, err := DefaultConfig().Inventory(-1, rng.New(1)); err == nil {
		t.Fatal("negative tag count accepted")
	}
}
