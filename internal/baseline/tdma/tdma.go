// Package tdma implements the paper's first baseline (§4.2): a
// stripped-down EPC Gen 2 reader-coordinated TDMA. Most Gen 2 protocol
// overhead is removed, as the paper does, keeping the essentials: 96-bit
// tag responses at 100 kbps, a minimal 4-bit QueryRep per slot, and
// Q-algorithm framed-ALOHA inventory with its collision and empty-slot
// costs.
package tdma

import (
	"fmt"
	"math"

	"lf/internal/rng"
)

// Config parameterizes the baseline.
type Config struct {
	// BitRate is the tag backscatter rate in bits/s.
	BitRate float64
	// SlotBits is the tag payload per slot (96 per the paper).
	SlotBits int
	// ControlBits is the reader command overhead per slot (a Gen 2
	// QueryRep is 4 bits).
	ControlBits int
	// QueryBits is the overhead of a full Query command starting an
	// inventory round (22 bits in Gen 2).
	QueryBits int
	// QInitial seeds the Q algorithm (frame size 2^Q).
	QInitial int
}

// DefaultConfig matches the paper's setup.
func DefaultConfig() Config {
	return Config{
		BitRate:     100e3,
		SlotBits:    96,
		ControlBits: 4,
		QueryBits:   22,
		QInitial:    4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BitRate <= 0 || c.SlotBits <= 0 || c.ControlBits < 0 || c.QueryBits < 0 {
		return fmt.Errorf("tdma: invalid config %+v", c)
	}
	if c.QInitial < 0 || c.QInitial > 15 {
		return fmt.Errorf("tdma: QInitial %d out of range [0,15]", c.QInitial)
	}
	return nil
}

// SlotSeconds returns the duration of one full slot (tag response plus
// reader control).
func (c Config) SlotSeconds() float64 {
	return float64(c.SlotBits+c.ControlBits) / c.BitRate
}

// TransferResult summarizes steady-state data transfer.
type TransferResult struct {
	// AggregateBps is the total goodput across all tags.
	AggregateBps float64
	// PerNodeBps is each tag's share.
	PerNodeBps float64
	// Efficiency is goodput / raw channel rate.
	Efficiency float64
}

// Transfer models steady-state round-robin data transfer to n known
// tags: the reader polls each tag in turn; exactly one tag occupies the
// channel at a time, so aggregate throughput is the channel rate scaled
// by slot efficiency regardless of n — TDMA's fundamental ceiling in
// Fig. 8.
func (c Config) Transfer(n int) TransferResult {
	if n <= 0 {
		return TransferResult{}
	}
	eff := float64(c.SlotBits) / float64(c.SlotBits+c.ControlBits)
	agg := c.BitRate * eff
	return TransferResult{
		AggregateBps: agg,
		PerNodeBps:   agg / float64(n),
		Efficiency:   eff,
	}
}

// InventoryResult summarizes one identification run.
type InventoryResult struct {
	// Seconds is the total time until every tag was identified.
	Seconds float64
	// Slots is the number of slots consumed.
	Slots int
	// Singles, Collisions, Empties break the slots down by outcome.
	Singles, Collisions, Empties int
	// Rounds is the number of Query rounds issued.
	Rounds int
}

// Inventory simulates Q-algorithm framed-slotted-ALOHA identification
// of n tags: each round the reader announces a frame of 2^Q slots,
// every unidentified tag picks one uniformly, singleton slots identify
// their tag, and Q adapts between rounds from the observed collision
// and empty counts (the cardinality-estimation overhead the paper calls
// EPC Gen 2's achilles heel).
func (c Config) Inventory(n int, src *rng.Source) (InventoryResult, error) {
	if err := c.Validate(); err != nil {
		return InventoryResult{}, err
	}
	if n < 0 {
		return InventoryResult{}, fmt.Errorf("tdma: negative tag count %d", n)
	}
	res := InventoryResult{}
	remaining := n
	qfp := float64(c.QInitial)
	for remaining > 0 {
		res.Rounds++
		q := int(math.Round(qfp))
		if q < 0 {
			q = 0
		}
		if q > 15 {
			q = 15
		}
		frame := 1 << uint(q)
		occupancy := make([]int, frame)
		for t := 0; t < remaining; t++ {
			occupancy[src.Intn(frame)]++
		}
		for _, occ := range occupancy {
			res.Slots++
			switch {
			case occ == 0:
				res.Empties++
				qfp = math.Max(0, qfp-0.2)
			case occ == 1:
				res.Singles++
				remaining--
			default:
				res.Collisions++
				qfp = math.Min(15, qfp+0.4)
			}
		}
	}
	// Empty and collided slots are shorter than full slots in Gen 2;
	// keep the stripped model simple but not absurd: an empty slot
	// costs only the control bits plus a brief timeout (≈8 bit times),
	// a collided slot is burned in full.
	emptySlot := float64(c.ControlBits+8) / c.BitRate
	fullSlot := c.SlotSeconds()
	res.Seconds = float64(res.Singles+res.Collisions)*fullSlot +
		float64(res.Empties)*emptySlot +
		float64(res.Rounds)*float64(c.QueryBits)/c.BitRate
	return res, nil
}

// MeanInventorySeconds runs the inventory simulation trials times and
// returns the mean identification time.
func (c Config) MeanInventorySeconds(n, trials int, src *rng.Source) (float64, error) {
	if trials <= 0 {
		trials = 1
	}
	var total float64
	for i := 0; i < trials; i++ {
		r, err := c.Inventory(n, src)
		if err != nil {
			return 0, err
		}
		total += r.Seconds
	}
	return total / float64(trials), nil
}
