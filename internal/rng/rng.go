// Package rng provides deterministic, seedable randomness for the
// simulator. Every stochastic component of the system (noise, jitter,
// drift, placement) draws from an explicit *Source so experiments are
// reproducible run-to-run and independent components can be re-seeded
// without perturbing each other.
package rng

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source. It wraps math/rand with the
// distributions the simulator needs. A Source is not safe for concurrent
// use; derive one per goroutine with Split.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives a new, statistically independent Source from s. The
// derived source is keyed by label so that adding a new consumer does
// not shift the streams of existing ones.
func (s *Source) Split(label string) *Source {
	// Mix the label into a new seed via FNV-1a over the label bytes,
	// combined with a draw from the parent stream.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	h ^= uint64(s.r.Int63())
	return New(int64(h))
}

// Float64 returns a uniform draw in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Norm returns a Gaussian draw with the given mean and standard deviation.
func (s *Source) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// ComplexNorm returns a circularly symmetric complex Gaussian draw with
// total variance sigma2 (i.e. variance sigma2/2 per real dimension).
// This is the standard model for complex baseband thermal noise.
func (s *Source) ComplexNorm(sigma2 float64) complex128 {
	sd := math.Sqrt(sigma2 / 2)
	return complex(sd*s.r.NormFloat64(), sd*s.r.NormFloat64())
}

// Phase returns a uniform phase in [0, 2π).
func (s *Source) Phase() float64 { return 2 * math.Pi * s.r.Float64() }

// UnitPhasor returns e^{jθ} for a uniform random phase θ.
func (s *Source) UnitPhasor() complex128 {
	th := s.Phase()
	return complex(math.Cos(th), math.Sin(th))
}

// Tolerance returns a multiplicative factor 1+u where u is uniform in
// [-tol, +tol]. Used for component tolerances such as the ±20% receive
// capacitor spread the paper describes.
func (s *Source) Tolerance(tol float64) float64 {
	return 1 + s.Uniform(-tol, tol)
}

// PPM returns a multiplicative clock-drift factor 1+d where d is uniform
// in [-ppm, +ppm] parts per million.
func (s *Source) PPM(ppm float64) float64 {
	return 1 + s.Uniform(-ppm, ppm)/1e6
}

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle permutes the n elements addressed by swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Bit returns 0 or 1 with equal probability.
func (s *Source) Bit() byte { return byte(s.r.Int63() & 1) }

// Bits returns n independent uniform bits.
func (s *Source) Bits(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = s.Bit()
	}
	return b
}

// Sign returns -1.0 or +1.0 with equal probability (Buzz's random
// combination coefficients).
func (s *Source) Sign() float64 {
	if s.r.Int63()&1 == 0 {
		return -1
	}
	return 1
}
