package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIsDeterministic(t *testing.T) {
	a := New(7).Split("noise")
	b := New(7).Split("noise")
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split with same label diverged")
		}
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	parent := New(7)
	a := parent.Split("alpha")
	parent2 := New(7)
	_ = parent2.Split("alpha")
	b := parent2.Split("beta")
	// A beta split after an alpha split must not replay alpha's stream.
	same := 0
	for i := 0; i < 50; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("splits with different labels matched %d/50 draws", same)
	}
}

func TestUniformBounds(t *testing.T) {
	src := New(3)
	f := func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.Abs(lo) > 1e100 || math.Abs(hi) > 1e100 {
			return true // hi-lo would overflow; not a realistic range
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			return true
		}
		v := src.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormMoments(t *testing.T) {
	src := New(11)
	n := 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := src.Norm(3, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean-3) > 0.1 {
		t.Fatalf("mean %.3f, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Fatalf("variance %.3f, want ~4", variance)
	}
}

func TestComplexNormVariance(t *testing.T) {
	src := New(13)
	n := 20000
	const sigma2 = 0.5
	var total float64
	for i := 0; i < n; i++ {
		v := src.ComplexNorm(sigma2)
		total += real(v)*real(v) + imag(v)*imag(v)
	}
	got := total / float64(n)
	if math.Abs(got-sigma2) > 0.05 {
		t.Fatalf("total variance %.3f, want ~%.3f", got, sigma2)
	}
}

func TestUnitPhasorMagnitude(t *testing.T) {
	src := New(17)
	for i := 0; i < 100; i++ {
		v := src.UnitPhasor()
		mag := math.Hypot(real(v), imag(v))
		if math.Abs(mag-1) > 1e-12 {
			t.Fatalf("phasor magnitude %v", mag)
		}
	}
}

func TestToleranceRange(t *testing.T) {
	src := New(19)
	for i := 0; i < 1000; i++ {
		v := src.Tolerance(0.2)
		if v < 0.8 || v > 1.2 {
			t.Fatalf("tolerance draw %v outside [0.8,1.2]", v)
		}
	}
}

func TestPPMRange(t *testing.T) {
	src := New(23)
	for i := 0; i < 1000; i++ {
		v := src.PPM(150)
		if v < 1-150e-6 || v > 1+150e-6 {
			t.Fatalf("ppm draw %v outside ±150ppm", v)
		}
	}
}

func TestBitsAreBits(t *testing.T) {
	src := New(29)
	bits := src.Bits(1000)
	if len(bits) != 1000 {
		t.Fatalf("got %d bits", len(bits))
	}
	ones := 0
	for _, b := range bits {
		if b > 1 {
			t.Fatalf("non-bit value %d", b)
		}
		if b == 1 {
			ones++
		}
	}
	if ones < 400 || ones > 600 {
		t.Fatalf("ones=%d of 1000, badly unbalanced", ones)
	}
}

func TestSignValues(t *testing.T) {
	src := New(31)
	pos, neg := 0, 0
	for i := 0; i < 1000; i++ {
		switch src.Sign() {
		case 1:
			pos++
		case -1:
			neg++
		default:
			t.Fatal("Sign returned non ±1")
		}
	}
	if pos < 400 || neg < 400 {
		t.Fatalf("sign imbalance: +%d -%d", pos, neg)
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(37)
	p := src.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestIntnRange(t *testing.T) {
	src := New(41)
	for i := 0; i < 1000; i++ {
		if v := src.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}
