package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"lf/internal/rng"
)

// blobs generates points around the given centres with the given noise.
func blobs(centres []complex128, perCentre int, noise float64, src *rng.Source) []complex128 {
	var out []complex128
	for _, c := range centres {
		for i := 0; i < perCentre; i++ {
			out = append(out, c+src.ComplexNorm(noise*noise))
		}
	}
	return out
}

func TestKMeansRecoversSeparatedClusters(t *testing.T) {
	src := rng.New(1)
	centres := []complex128{0, 10, 10i}
	points := blobs(centres, 30, 0.1, src)
	res := KMeans(points, 3, 4, 100, src)
	// Every true centre must be near some recovered centroid.
	for _, c := range centres {
		best := math.Inf(1)
		for _, got := range res.Centroids {
			dr, di := real(got-c), imag(got-c)
			if d := math.Hypot(dr, di); d < best {
				best = d
			}
		}
		if best > 0.2 {
			t.Fatalf("centre %v not recovered (nearest %.3f away)", c, best)
		}
	}
	counts := res.Counts()
	for i, n := range counts {
		if n != 30 {
			t.Fatalf("cluster %d has %d points, want 30", i, n)
		}
	}
}

func TestKMeansPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 should panic")
		}
	}()
	KMeans([]complex128{1}, 0, 1, 1, rng.New(1))
}

func TestKMeansFewerPointsThanClusters(t *testing.T) {
	src := rng.New(2)
	res := KMeans([]complex128{1, 2}, 5, 2, 10, src)
	if res.K != 5 {
		t.Fatalf("K = %d", res.K)
	}
	if len(res.Assign) != 2 {
		t.Fatalf("assignments = %d", len(res.Assign))
	}
}

// TestAssignmentsAreNearest is the core k-means invariant: after
// convergence every point is assigned to its nearest centroid.
func TestAssignmentsAreNearest(t *testing.T) {
	src := rng.New(3)
	f := func(seed int64) bool {
		s := rng.New(seed)
		centres := []complex128{0, 5, 5i, 5 + 5i}
		points := blobs(centres, 12, 0.3, s)
		res := KMeans(points, 4, 3, 100, src)
		for i, p := range points {
			own := res.Centroids[res.Assign[i]]
			dOwn := real(p-own)*real(p-own) + imag(p-own)*imag(p-own)
			for _, c := range res.Centroids {
				d := real(p-c)*real(p-c) + imag(p-c)*imag(p-c)
				if d < dOwn-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSilhouetteSeparatedVsMerged(t *testing.T) {
	src := rng.New(4)
	sep := blobs([]complex128{0, 10}, 40, 0.2, src)
	sepRes := KMeans(sep, 2, 4, 50, src)
	merged := blobs([]complex128{0, 0.1}, 40, 1.0, src)
	mergedRes := KMeans(merged, 2, 4, 50, src)
	if Silhouette(sep, sepRes) < 0.8 {
		t.Fatalf("separated silhouette %v too low", Silhouette(sep, sepRes))
	}
	if Silhouette(merged, mergedRes) > 0.6 {
		t.Fatalf("merged silhouette %v too high", Silhouette(merged, mergedRes))
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	src := rng.New(5)
	pts := []complex128{1, 2}
	res := KMeans(pts, 1, 1, 10, src)
	if Silhouette(pts, res) != 0 {
		t.Fatal("k=1 silhouette should be 0")
	}
}

func TestChooseKPicksThree(t *testing.T) {
	src := rng.New(6)
	// A single tag's differentials: rising, falling, hold.
	centres := []complex128{complex(1, 0.5), complex(-1, -0.5), 0}
	points := blobs(centres, 40, 0.05, src)
	res := ChooseK(points, []int{1, 3, 9}, src)
	if res.K != 3 {
		t.Fatalf("ChooseK picked %d, want 3", res.K)
	}
}

func TestChooseKPicksNineOnLattice(t *testing.T) {
	src := rng.New(7)
	e1, e2 := complex(1, 0.2), complex(-0.3, 1)
	var centres []complex128
	for a := -1; a <= 1; a++ {
		for b := -1; b <= 1; b++ {
			centres = append(centres, complex(float64(a), 0)*e1+complex(float64(b), 0)*e2)
		}
	}
	points := blobs(centres, 25, 0.04, src)
	res := ChooseK(points, []int{3, 9}, src)
	if res.K != 9 {
		t.Fatalf("ChooseK picked %d, want 9", res.K)
	}
}

func TestChooseKSinglePoint(t *testing.T) {
	src := rng.New(8)
	res := ChooseK([]complex128{5}, []int{1, 3}, src)
	if res == nil || res.K != 1 {
		t.Fatalf("single point should be one cluster, got %+v", res)
	}
}

func TestCollisionOrderMapping(t *testing.T) {
	src := rng.New(9)
	// One tag: three clusters → 1 collider.
	one := blobs([]complex128{1 + 1i, -1 - 1i, 0}, 40, 0.05, src)
	if n, _ := CollisionOrder(one, src); n != 1 {
		t.Fatalf("single tag reported %d colliders", n)
	}
	// Two tags: nine clusters → 2 colliders.
	e1, e2 := complex(1, 0), complex(0, 1)
	var lattice []complex128
	for a := -1; a <= 1; a++ {
		for b := -1; b <= 1; b++ {
			lattice = append(lattice, complex(float64(a), 0)*e1+complex(float64(b), 0)*e2)
		}
	}
	two := blobs(lattice, 25, 0.04, src)
	if n, _ := CollisionOrder(two, src); n != 2 {
		t.Fatalf("two-tag lattice reported %d colliders", n)
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	pts := blobs([]complex128{0, 4}, 20, 0.1, rng.New(10))
	a := KMeans(pts, 2, 3, 50, rng.New(42))
	b := KMeans(pts, 2, 3, 50, rng.New(42))
	for i := range a.Centroids {
		if a.Centroids[i] != b.Centroids[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}
