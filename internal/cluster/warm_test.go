package cluster

import (
	"math"
	"reflect"
	"testing"

	"lf/internal/rng"
)

// latticePoints builds a noisy nine-mode lattice population — the shape
// SeparateBlind clusters — from two generators.
func latticePoints(src *rng.Source, n int) []complex128 {
	e1, e2 := complex(1.0, 0.3), complex(-0.2, 0.9)
	pts := make([]complex128, n)
	for i := range pts {
		a := float64(src.Intn(3) - 1)
		b := float64(src.Intn(3) - 1)
		noise := complex(src.Norm(0, 0.04), src.Norm(0, 0.04))
		pts[i] = complex(a, 0)*e1 + complex(b, 0)*e2 + noise
	}
	return pts
}

// unprunedFrom replicates kmeansFrom without the triangle-inequality
// skip — the pre-optimization reference semantics.
func unprunedFrom(points []complex128, centroids []complex128, maxIter int) *Result {
	k := len(centroids)
	assign := make([]int, len(points))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			bi, bd := 0, math.Inf(1)
			for c, ct := range centroids {
				d := sqDist(p, ct)
				if d < bd {
					bi, bd = c, d
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		sums := make([]complex128, k)
		counts := make([]int, k)
		for i, p := range points {
			sums[assign[i]] += p
			counts[assign[i]]++
		}
		for c := range centroids {
			if counts[c] > 0 {
				centroids[c] = sums[c] / complex(float64(counts[c]), 0)
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	res := &Result{Centroids: centroids, Assign: assign, K: k}
	for i, p := range points {
		res.Inertia += sqDist(p, centroids[assign[i]])
	}
	return res
}

// TestKMeansPruningIdentical pins the centroid-distance pruning to the
// unpruned reference: identical assignments, centroids, and inertia at
// every seed — the skip test only ever drops candidates that would
// have lost the strict `d < bd` comparison anyway.
func TestKMeansPruningIdentical(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		gen := rng.New(seed)
		pts := latticePoints(gen, 30+gen.Intn(200))
		for _, k := range []int{1, 2, 3, 9} {
			seedsA := seedPlusPlus(pts, k, rng.New(seed*100+int64(k)))
			seedsB := append([]complex128(nil), seedsA...)
			got := kmeansFrom(pts, seedsA, 100)
			want := unprunedFrom(pts, seedsB, 100)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d k=%d: pruned result differs from unpruned reference", seed, k)
			}
		}
	}
}

// TestKMeansWarmInvariants checks the warm-start contract: the rng
// stream is untouched by the cache, the warm result is never worse
// than the cold one, and a nil cache reproduces KMeans exactly.
func TestKMeansWarmInvariants(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		gen := rng.New(seed)
		pts := latticePoints(gen, 120)

		cold := KMeans(pts, 9, 4, 60, rng.New(seed))
		nilWarm := KMeansWarm(pts, 9, 4, 60, rng.New(seed), nil)
		if !reflect.DeepEqual(cold, nilWarm) {
			t.Fatalf("seed %d: KMeansWarm(nil) differs from KMeans", seed)
		}

		w := &Warm{}
		srcA, srcB := rng.New(seed), rng.New(seed)
		first := KMeansWarm(pts, 9, 4, 60, srcA, w)
		if first.Inertia > cold.Inertia {
			t.Fatalf("seed %d: warm first pass worse than cold (%v > %v)", seed, first.Inertia, cold.Inertia)
		}
		KMeans(pts, 9, 4, 60, srcB)
		// Identical rng consumption with and without a cache: the next
		// draw from both sources must agree.
		if a, b := srcA.Int63(), srcB.Int63(); a != b {
			t.Fatalf("seed %d: warm cache shifted the rng stream (%d != %d)", seed, a, b)
		}

		// A second population drawn from the same lattice: the cached
		// centroids seed an extra descent that can only improve on the
		// cold restarts.
		pts2 := latticePoints(gen, 120)
		warm2 := KMeansWarm(pts2, 9, 4, 60, rng.New(seed+1), w)
		cold2 := KMeans(pts2, 9, 4, 60, rng.New(seed+1))
		if warm2.Inertia > cold2.Inertia {
			t.Fatalf("seed %d: warm second pass worse than cold (%v > %v)", seed, warm2.Inertia, cold2.Inertia)
		}
	}
}
