// Package cluster implements k-means clustering over points in the IQ
// plane, with model selection over the number of clusters. The decoder
// uses it to tell whether the edge differentials observed at a
// recurring position come from one tag (3 clusters: rising, falling,
// constant) or from a k-tag collision (3^k clusters), per §3.3.
package cluster

import (
	"math"

	"lf/internal/dsp"
	"lf/internal/rng"
)

// Result is a clustering of complex points.
type Result struct {
	// Centroids of the clusters, length K.
	Centroids []complex128
	// Assign[i] is the centroid index of point i.
	Assign []int
	// Inertia is the total squared distance of points to their
	// centroids.
	Inertia float64
	// K is the number of clusters.
	K int
}

// Counts returns the number of points per cluster.
func (r *Result) Counts() []int {
	counts := make([]int, r.K)
	for _, a := range r.Assign {
		counts[a]++
	}
	return counts
}

// KMeans clusters points into k clusters with kmeans++ seeding and the
// given number of random restarts, returning the best (lowest inertia)
// result. It panics if k < 1; if there are fewer points than clusters
// the surplus clusters end up empty.
func KMeans(points []complex128, k, restarts, maxIter int, src *rng.Source) *Result {
	return KMeansWarm(points, k, restarts, maxIter, src, nil)
}

// Warm caches the best centroids seen per cluster count, letting
// successive clusterings of near-identical point populations (the
// recurring eye regions of adjacent streaming windows) start one extra
// Lloyd descent from an already-converged configuration instead of
// re-deriving it from random seeds every time. A Warm must not be
// shared across goroutines.
type Warm struct {
	byK map[int][]complex128
}

func (w *Warm) get(k int) []complex128 {
	if w == nil || w.byK == nil {
		return nil
	}
	return w.byK[k]
}

func (w *Warm) put(k int, centroids []complex128) {
	if w == nil {
		return
	}
	if w.byK == nil {
		w.byK = make(map[int][]complex128)
	}
	w.byK[k] = append([]complex128(nil), centroids...)
}

// KMeansWarm is KMeans with an optional warm-start cache. The seeded
// restarts run exactly as in KMeans — the warm descent consumes no
// randomness and runs after them, so the rng stream (and therefore
// every seeded restart) is identical with or without a cache — and the
// warm candidate is adopted only on strictly lower inertia, so a stale
// cache can waste a little work but never worsen the result.
func KMeansWarm(points []complex128, k, restarts, maxIter int, src *rng.Source, w *Warm) *Result {
	if k < 1 {
		panic("cluster: k < 1")
	}
	if restarts < 1 {
		restarts = 1
	}
	var best *Result
	for r := 0; r < restarts; r++ {
		res := kmeansFrom(points, seedPlusPlus(points, k, src), maxIter)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	if cached := w.get(k); cached != nil {
		res := kmeansFrom(points, append([]complex128(nil), cached...), maxIter)
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	w.put(k, best.Centroids)
	return best
}

// kmeansFrom runs Lloyd iterations from the given initial centroids
// (taking ownership of the slice). The assignment step prunes with the
// triangle inequality on centroid-centroid distances: if the squared
// distance between candidate centroid c and the current best centroid
// exceeds 4·bd, then d(p, c) ≥ d(c, best) − d(p, best) > 2√bd − √bd =
// √bd, so c cannot win. The (4+4e-9) factor absorbs the few-ulp
// rounding of the computed squared distances, making the float test
// strictly conservative: a skipped candidate's computed sqDist would
// have failed the strict `d < bd` comparison anyway, so pruned and
// unpruned assignment — and therefore the whole descent — are
// bit-identical (TestKMeansPruningIdentical pins this).
func kmeansFrom(points []complex128, centroids []complex128, maxIter int) *Result {
	k := len(centroids)
	assign := make([]int, len(points))
	ccSq := make([]float64, k*k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for c1 := 0; c1 < k; c1++ {
			for c2 := 0; c2 < k; c2++ {
				ccSq[c1*k+c2] = sqDist(centroids[c1], centroids[c2])
			}
		}
		// Assignment step.
		for i, p := range points {
			bi, bd := 0, math.Inf(1)
			for c, ct := range centroids {
				if ccSq[bi*k+c] > bd*(4+4e-9) {
					continue
				}
				d := sqDist(p, ct)
				if d < bd {
					bi, bd = c, d
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		// Update step.
		sums := make([]complex128, k)
		counts := make([]int, k)
		for i, p := range points {
			sums[assign[i]] += p
			counts[assign[i]]++
		}
		for c := range centroids {
			if counts[c] > 0 {
				centroids[c] = sums[c] / complex(float64(counts[c]), 0)
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	res := &Result{Centroids: centroids, Assign: assign, K: k}
	for i, p := range points {
		res.Inertia += sqDist(p, centroids[assign[i]])
	}
	return res
}

// seedPlusPlus picks initial centroids with the kmeans++ rule: each
// next seed is drawn with probability proportional to its squared
// distance from the nearest existing seed.
func seedPlusPlus(points []complex128, k int, src *rng.Source) []complex128 {
	centroids := make([]complex128, 0, k)
	if len(points) == 0 {
		return make([]complex128, k)
	}
	centroids = append(centroids, points[src.Intn(len(points))])
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with seeds; duplicate one.
			centroids = append(centroids, points[src.Intn(len(points))])
			continue
		}
		target := src.Float64() * total
		idx := 0
		for i, d := range d2 {
			target -= d
			if target <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, points[idx])
	}
	return centroids
}

func sqDist(a, b complex128) float64 {
	dr := real(a) - real(b)
	di := imag(a) - imag(b)
	return dr*dr + di*di
}

// Silhouette computes the simplified (centroid-based) silhouette score
// of a clustering: for each point, a = distance to own centroid, b =
// distance to nearest other centroid, s = (b−a)/max(a,b). Scores near 1
// mean tight, well-separated clusters. Empty and singleton clusterings
// score 0.
func Silhouette(points []complex128, res *Result) float64 {
	if res.K < 2 || len(points) < 2 {
		return 0
	}
	var total float64
	n := 0
	for i, p := range points {
		a := math.Sqrt(sqDist(p, res.Centroids[res.Assign[i]]))
		b := math.Inf(1)
		for c, ct := range res.Centroids {
			if c == res.Assign[i] {
				continue
			}
			if d := math.Sqrt(sqDist(p, ct)); d < b {
				b = d
			}
		}
		den := math.Max(a, b)
		if den == 0 {
			continue
		}
		total += (b - a) / den
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// ChooseK clusters the points at each candidate k and returns the
// result with the best penalized score. The score combines the
// simplified silhouette with a small complexity penalty so that a
// 3-cluster structure is not needlessly explained by 9 clusters.
func ChooseK(points []complex128, candidates []int, src *rng.Source) *Result {
	var best *Result
	bestScore := math.Inf(-1)
	for _, k := range candidates {
		if k > len(points) {
			continue
		}
		res := KMeans(points, k, 4, 50, src)
		score := Silhouette(points, res) - 0.01*float64(k)
		if k == 1 {
			// Silhouette is undefined at k=1; score a single cluster
			// by how tight it is relative to the data spread.
			score = singleClusterScore(points, res)
		}
		if score > bestScore {
			best, bestScore = res, score
		}
	}
	return best
}

// singleClusterScore rates the k=1 hypothesis: near 1 when the points
// are one tight blob, negative when the spread is much larger than the
// densest core (suggesting structure).
func singleClusterScore(points []complex128, res *Result) float64 {
	if len(points) == 0 {
		return 0
	}
	c := res.Centroids[0]
	ds := make([]float64, len(points))
	for i, p := range points {
		ds[i] = math.Sqrt(sqDist(p, c))
	}
	med := dsp.MedianFloat(ds)
	var max float64
	for _, d := range ds {
		if d > max {
			max = d
		}
	}
	if max == 0 {
		return 1
	}
	return 1 - 2*(max-med)/max
}

// CollisionOrder estimates how many tags collide at a position from
// the differential points observed there: it chooses k among
// {1, 3, 9, 27} (0, 1, 2, 3 colliding tags — the paper notes ≥3-way
// collisions are rare enough that higher orders can be ignored) and
// returns the inferred number of colliders together with the chosen
// clustering.
func CollisionOrder(points []complex128, src *rng.Source) (colliders int, res *Result) {
	res = ChooseK(points, []int{1, 3, 9, 27}, src)
	if res == nil {
		return 0, nil
	}
	switch res.K {
	case 1:
		return 0, res
	case 3:
		return 1, res
	case 9:
		return 2, res
	default:
		return 3, res
	}
}
