package tag

import (
	"testing"
	"testing/quick"

	"lf/internal/rng"
)

func TestFrameBitsLayout(t *testing.T) {
	c := Config{Payload: []byte{1, 0, 1}}
	bits := c.FrameBits()
	if len(bits) != PreambleLen+DelimiterLen+3 {
		t.Fatalf("frame length %d", len(bits))
	}
	for i := 0; i < PreambleLen; i++ {
		if bits[i] != 1 {
			t.Fatalf("preamble bit %d = %d", i, bits[i])
		}
	}
	if bits[PreambleLen] != 0 {
		t.Fatal("delimiter must be 0")
	}
	if bits[PreambleLen+1] != 1 || bits[PreambleLen+2] != 0 || bits[PreambleLen+3] != 1 {
		t.Fatal("payload bits corrupted")
	}
}

func TestValidate(t *testing.T) {
	good := Config{ID: 0, BitRate: 100e3, Payload: []byte{0, 1}}
	if err := good.Validate(100); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := Config{BitRate: 0}
	if bad.Validate(100) == nil {
		t.Fatal("zero rate accepted")
	}
	offGrid := Config{BitRate: 150} // not a multiple of 100
	if offGrid.Validate(100) == nil {
		t.Fatal("non-multiple rate accepted")
	}
	nonBit := Config{BitRate: 100e3, Payload: []byte{2}}
	if nonBit.Validate(100) == nil {
		t.Fatal("non-bit payload accepted")
	}
}

func TestEmitTogglesOnOnes(t *testing.T) {
	src := rng.New(1)
	cfg := Config{BitRate: 100e3, Comparator: DefaultComparator(), Payload: []byte{1, 0, 0, 1, 1, 0}}
	em := Emit(cfg, src)
	// Toggle count: preamble(6 ones) + payload ones(3) = 9, plus the
	// trailing detune if the antenna ended tuned.
	ones := PreambleLen + 3
	wantToggles := ones
	if ones%2 == 1 {
		wantToggles++ // trailing return-to-detuned toggle
	}
	if len(em.Toggles) != wantToggles {
		t.Fatalf("toggles = %d, want %d", len(em.Toggles), wantToggles)
	}
	// Final state must be detuned.
	if em.Toggles[len(em.Toggles)-1].State != 0 {
		t.Fatal("tag must end detuned")
	}
	// Toggle times are strictly increasing.
	for i := 1; i < len(em.Toggles); i++ {
		if em.Toggles[i].Time <= em.Toggles[i-1].Time {
			t.Fatal("toggle times not increasing")
		}
	}
}

func TestEmitDecodeRoundTrip(t *testing.T) {
	src := rng.New(2)
	f := func(raw []byte) bool {
		if len(raw) == 0 || len(raw) > 200 {
			return true
		}
		payload := make([]byte, len(raw))
		for i, b := range raw {
			payload[i] = b & 1
		}
		cfg := Config{BitRate: 100e3, ClockPPM: 150, Comparator: DefaultComparator(), Payload: payload}
		em := Emit(cfg, src)
		decoded := DecodeToggles(em)
		if len(decoded) != len(em.Bits) {
			return false
		}
		for i := range decoded {
			if decoded[i] != em.Bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStateAt(t *testing.T) {
	em := &Emission{
		Toggles: []Toggle{{Time: 1, State: 1}, {Time: 2, State: 0}},
	}
	if em.StateAt(0.5) != 0 {
		t.Fatal("state before first toggle should be 0")
	}
	if em.StateAt(1.5) != 1 {
		t.Fatal("state between toggles should be 1")
	}
	if em.StateAt(3) != 0 {
		t.Fatal("state after last toggle should be 0")
	}
}

func TestEmissionEnd(t *testing.T) {
	src := rng.New(3)
	cfg := Config{BitRate: 1000, Comparator: DefaultComparator(), Payload: []byte{1, 1}}
	em := Emit(cfg, src)
	wantBits := PreambleLen + DelimiterLen + 2
	want := em.Start + float64(wantBits)*em.BitPeriod
	if em.End() != want {
		t.Fatalf("End = %v, want %v", em.End(), want)
	}
	if em.NumBits() != wantBits {
		t.Fatalf("NumBits = %d", em.NumBits())
	}
}

func TestClockDriftBounded(t *testing.T) {
	src := rng.New(4)
	for i := 0; i < 200; i++ {
		cfg := Config{BitRate: 100e3, ClockPPM: 150, Comparator: DefaultComparator(), Payload: []byte{1}}
		em := Emit(cfg, src)
		nominal := 1 / cfg.BitRate
		drift := (em.BitPeriod - nominal) / nominal * 1e6
		if drift > 150 || drift < -150 {
			t.Fatalf("drift %v ppm outside ±150", drift)
		}
	}
}

func TestEdgeTimesMatchToggles(t *testing.T) {
	src := rng.New(5)
	cfg := Config{BitRate: 100e3, Comparator: DefaultComparator(), Payload: []byte{1, 0, 1}}
	em := Emit(cfg, src)
	times := em.EdgeTimes()
	if len(times) != len(em.Toggles) {
		t.Fatal("EdgeTimes length mismatch")
	}
	for i := range times {
		if times[i] != em.Toggles[i].Time {
			t.Fatal("EdgeTimes values mismatch")
		}
	}
}
