// Package tag models LF-Backscatter sensor tags: blind, laissez-faire
// transmitters that begin clocking bits out the moment their comparator
// detects the reader's carrier. A tag has no receive path, no MAC, no
// buffers — just a clock (with realistic drift), an RF transistor whose
// state it toggles, and the comparator front end in comparator.go.
package tag

import (
	"fmt"
	"sort"

	"lf/internal/rng"
)

// PreambleLen is the number of leading '1' bits every frame opens with.
// Under toggle-on-1 modulation the preamble produces PreambleLen edges
// of alternating polarity spaced exactly one bit period apart: the
// reader uses the run to register the stream (rate, offset, and the
// rising-edge vector — the paper's "anchor"). The first preamble edge
// is rising by construction because tags start with the antenna
// detuned (state 0).
const PreambleLen = 6

// DelimiterLen is the single '0' bit between preamble and payload. It
// terminates the leading 1-run deterministically, so the reader can
// align the payload even when it registered the stream a slot or two
// into the preamble (dense deployments collide some preamble edges).
const DelimiterLen = 1

// FrameOverhead is the per-frame bit overhead before the payload.
const FrameOverhead = PreambleLen + DelimiterLen

// Config describes one tag.
type Config struct {
	// ID identifies the tag in results (index into the channel model).
	ID int
	// BitRate is the transmit rate in bits/s. Must be a positive
	// multiple of the network's base rate.
	BitRate float64
	// ClockPPM is the magnitude of the tag clock's drift range in
	// parts per million (the paper's external crystal: 150 ppm).
	ClockPPM float64
	// Comparator is the carrier-detect front end.
	Comparator Comparator
	// Payload is the bit payload (values 0/1) the tag transmits after
	// the preamble each epoch. Blind sensors just stream samples; the
	// harness fills this with sensor data or an EPC identifier.
	Payload []byte
}

// Validate checks the config against the network base rate.
func (c Config) Validate(baseRate float64) error {
	if c.BitRate <= 0 {
		return fmt.Errorf("tag %d: non-positive bit rate %v", c.ID, c.BitRate)
	}
	if baseRate > 0 {
		mult := c.BitRate / baseRate
		if diff := mult - float64(int64(mult+0.5)); diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("tag %d: bit rate %v is not a multiple of base rate %v", c.ID, c.BitRate, baseRate)
		}
	}
	for i, b := range c.Payload {
		if b > 1 {
			return fmt.Errorf("tag %d: payload[%d] = %d is not a bit", c.ID, i, b)
		}
	}
	return nil
}

// FrameBits returns the full bit sequence for one epoch: preamble,
// delimiter, then payload.
func (c Config) FrameBits() []byte {
	bits := make([]byte, 0, FrameOverhead+len(c.Payload))
	for i := 0; i < PreambleLen; i++ {
		bits = append(bits, 1)
	}
	bits = append(bits, 0)
	return append(bits, c.Payload...)
}

// Toggle is one antenna state change: at Time (seconds after carrier
// on) the tag's antenna switches to State (0 detuned, 1 tuned).
type Toggle struct {
	Time  float64
	State byte
}

// Emission is everything a tag does during one epoch, as seen by the
// channel: the start offset its comparator drew, its actual (drifted)
// bit period, and the toggle sequence.
type Emission struct {
	TagID int
	// Start is the comparator fire time: the instant of the first bit
	// boundary.
	Start float64
	// BitPeriod is the actual per-bit duration including drift.
	BitPeriod float64
	// Toggles lists antenna state changes in time order.
	Toggles []Toggle
	// Bits is the ground-truth transmitted frame (preamble + payload).
	Bits []byte
}

// NumBits returns the frame length in bits.
func (e *Emission) NumBits() int { return len(e.Bits) }

// End returns the time of the last bit boundary (frame end).
func (e *Emission) End() float64 {
	return e.Start + float64(len(e.Bits))*e.BitPeriod
}

// Emit simulates one epoch of the tag: draws the comparator fire time
// and the clock drift for this power-up, then lays out the toggle
// sequence under toggle-on-1 modulation (bit 1 toggles the antenna at
// the bit boundary; bit 0 holds — the encoding implied by the paper's
// {↑, ↓, −₊, −₋} Viterbi states).
func Emit(cfg Config, src *rng.Source) *Emission {
	start := cfg.Comparator.FireTime(src)
	period := 1 / cfg.BitRate
	if cfg.ClockPPM > 0 {
		period *= src.PPM(cfg.ClockPPM)
	}
	bits := cfg.FrameBits()
	em := &Emission{TagID: cfg.ID, Start: start, BitPeriod: period, Bits: bits}
	state := byte(0)
	for k, b := range bits {
		if b == 1 {
			state ^= 1
			em.Toggles = append(em.Toggles, Toggle{Time: start + float64(k)*period, State: state})
		}
	}
	// Return the antenna to detuned at frame end so the tag stops
	// reflecting between frames.
	if state == 1 {
		em.Toggles = append(em.Toggles, Toggle{Time: em.End(), State: 0})
	}
	return em
}

// StateAt returns the antenna state at time t using binary search over
// the toggle sequence.
func (e *Emission) StateAt(t float64) byte {
	i := sort.Search(len(e.Toggles), func(i int) bool { return e.Toggles[i].Time > t })
	if i == 0 {
		return 0
	}
	return e.Toggles[i-1].State
}

// EdgeTimes returns the toggle times (the ground-truth edge positions).
func (e *Emission) EdgeTimes() []float64 {
	out := make([]float64, len(e.Toggles))
	for i, tg := range e.Toggles {
		out[i] = tg.Time
	}
	return out
}

// DecodeToggles inverts toggle-on-1 modulation given perfect knowledge
// of the bit grid: it returns the bit sequence implied by whether a
// toggle occurs at each boundary. Used by tests as the ground-truth
// inverse of Emit.
func DecodeToggles(em *Emission) []byte {
	bits := make([]byte, len(em.Bits))
	ti := 0
	for k := range bits {
		boundary := em.Start + float64(k)*em.BitPeriod
		// A toggle belongs to boundary k if it is within half a period.
		for ti < len(em.Toggles) && em.Toggles[ti].Time < boundary-em.BitPeriod/2 {
			ti++
		}
		if ti < len(em.Toggles) {
			dt := em.Toggles[ti].Time - boundary
			if dt < em.BitPeriod/2 && dt > -em.BitPeriod/2 {
				bits[k] = 1
				ti++
			}
		}
	}
	return bits
}
