package tag

import (
	"math"

	"lf/internal/rng"
)

// Comparator models the tag's carrier-detect front end (§3.2, Fig. 4):
// incoming RF charges a small receive capacitor; when the capacitor
// voltage crosses a threshold the comparator fires and the tag begins
// transmitting. Three randomness sources make the fire time — and
// hence each tag's start offset — naturally jittered:
//
//  1. the energy the tag harvests (placement and orientation),
//  2. the capacitor's manufacturing tolerance (±20% typical),
//  3. noise in the charging process.
//
// LF-Backscatter leans on exactly this jitter to get fine-grained edge
// interleaving without a fine-grained clock at the tag.
type Comparator struct {
	// RCSeconds is the nominal charging time constant.
	RCSeconds float64
	// Threshold is the comparator threshold as a fraction of the
	// steady-state capacitor voltage at nominal incident power (0,1).
	Threshold float64
	// CapacitorTolerance is the relative capacitance spread (0.20 for
	// the ±20% parts the paper cites).
	CapacitorTolerance float64
	// EnergySpread is the relative spread of harvested power across
	// placements.
	EnergySpread float64
	// ChargeNoise is the standard deviation of the charging-curve
	// perturbation, as a fraction of the threshold.
	ChargeNoise float64
}

// DefaultComparator returns a front end whose fire-time spread covers a
// few tens of bit periods at 100 kbps — wide enough to interleave
// dozens of tags' edges, narrow enough to keep epoch overhead small.
func DefaultComparator() Comparator {
	return Comparator{
		RCSeconds:          60e-6,
		Threshold:          0.5,
		CapacitorTolerance: 0.20,
		EnergySpread:       0.30,
		ChargeNoise:        0.02,
	}
}

// FireTime draws one comparator fire time in seconds after carrier-on.
// The capacitor charges as V(t) = V∞(1 − e^(−t/RC)); the comparator
// fires when V crosses Threshold·V∞_nominal. Harvested power scales V∞,
// tolerance scales RC, and charge noise perturbs the effective
// threshold crossing.
func (c Comparator) FireTime(src *rng.Source) float64 {
	rc := c.RCSeconds * src.Tolerance(c.CapacitorTolerance)
	vInf := src.Tolerance(c.EnergySpread) // relative to nominal
	th := c.Threshold * (1 + src.Norm(0, c.ChargeNoise))
	frac := th / vInf
	if frac >= 0.999 {
		frac = 0.999 // extremely weak harvest: fire arbitrarily late
	}
	if frac <= 0 {
		frac = 1e-6
	}
	return -rc * math.Log(1-frac)
}

// ChargingCurve samples the capacitor voltage over time for plotting
// Fig. 4: n points over duration seconds, with the given relative
// steady-state voltage and charge noise.
func (c Comparator) ChargingCurve(duration float64, n int, vInf float64, src *rng.Source) (t, v []float64) {
	t = make([]float64, n)
	v = make([]float64, n)
	for i := 0; i < n; i++ {
		tt := duration * float64(i) / float64(n-1)
		t[i] = tt
		v[i] = vInf * (1 - math.Exp(-tt/c.RCSeconds))
		if src != nil {
			v[i] += src.Norm(0, c.ChargeNoise*c.Threshold)
		}
	}
	return t, v
}
