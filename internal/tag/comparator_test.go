package tag

import (
	"math"
	"testing"

	"lf/internal/rng"
)

func TestFireTimePositiveAndSpread(t *testing.T) {
	src := rng.New(1)
	comp := DefaultComparator()
	var min, max float64 = math.Inf(1), 0
	for i := 0; i < 2000; i++ {
		ft := comp.FireTime(src)
		if ft <= 0 {
			t.Fatalf("non-positive fire time %v", ft)
		}
		if ft < min {
			min = ft
		}
		if ft > max {
			max = ft
		}
	}
	// The three randomness sources must yield a spread of at least a
	// few bit periods at 100 kbps (tens of microseconds).
	if max-min < 20e-6 {
		t.Fatalf("fire-time spread %v too small for edge interleaving", max-min)
	}
	if max > 1e-3 {
		t.Fatalf("fire time %v implausibly late", max)
	}
}

func TestDeterministicComparator(t *testing.T) {
	comp := DefaultComparator()
	comp.CapacitorTolerance = 0
	comp.EnergySpread = 0
	comp.ChargeNoise = 0
	a := comp.FireTime(rng.New(1))
	b := comp.FireTime(rng.New(999))
	if a != b {
		t.Fatalf("zeroed randomness should fire identically: %v vs %v", a, b)
	}
	// And match the analytic RC crossing time.
	want := -comp.RCSeconds * math.Log(1-comp.Threshold)
	if math.Abs(a-want) > 1e-12 {
		t.Fatalf("fire time %v, want %v", a, want)
	}
}

func TestHigherEnergyFiresEarlier(t *testing.T) {
	// With only the energy term active, more harvested power (larger
	// V∞) crosses the threshold sooner. Compare the analytic curve.
	comp := DefaultComparator()
	comp.CapacitorTolerance = 0
	comp.ChargeNoise = 0
	fire := func(vInf float64) float64 {
		frac := comp.Threshold / vInf
		return -comp.RCSeconds * math.Log(1-frac)
	}
	if fire(1.3) >= fire(0.8) {
		t.Fatal("higher harvested energy should fire earlier")
	}
}

func TestChargingCurveShape(t *testing.T) {
	comp := DefaultComparator()
	tt, v := comp.ChargingCurve(5*comp.RCSeconds, 100, 1.0, nil)
	if len(tt) != 100 || len(v) != 100 {
		t.Fatal("curve length mismatch")
	}
	// Noiseless charging is monotonically increasing and approaches V∞.
	for i := 1; i < len(v); i++ {
		if v[i] <= v[i-1] {
			t.Fatalf("noiseless charge curve not monotonic at %d", i)
		}
	}
	if v[99] < 0.99 {
		t.Fatalf("after 5RC the capacitor should be ~charged, got %v", v[99])
	}
}
