// Package stage provides the building blocks of the decoder's
// pipeline-parallel stage graph: bounded single-producer/single-
// consumer queues with occupancy, stall, and byte accounting, and a
// goroutine wrapper that converts stage panics into errors instead of
// tearing down the process.
//
// The graph built from these parts is deliberately small — a handful
// of stages connected by depth-bounded queues — and its determinism
// story lives with the decoder (DESIGN.md §14): stages communicate
// only through immutable tokens, so the stage graph's output is
// bit-identical to running the same stages serially.
package stage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lf/internal/obs"
)

// ErrCanceled is returned by Push/Pop after Cancel: the graph is
// shutting down (typically because a sibling stage failed) and the
// caller should unwind.
var ErrCanceled = errors.New("stage: canceled")

// QueueMetrics instruments one queue. All fields are optional
// (nil-metric receivers are no-ops, matching the obs conventions).
// Everything here is ClassRuntime: depths and stalls depend on
// scheduling by definition and never feed a decode decision.
type QueueMetrics struct {
	// Depth tracks the high-water queue occupancy in items.
	Depth *obs.Gauge
	// PushStall / PopStall accumulate time a producer or consumer
	// spent blocked on a full or empty queue. Only genuinely blocked
	// operations are timed — the uncontended fast path never reads a
	// clock.
	PushStall, PopStall *obs.Timing
	// Items counts tokens that passed through.
	Items *obs.Counter
}

type queued[T any] struct {
	v T
	n int64 // byte accounting for this item
}

// Queue is a bounded SPSC queue carrying typed tokens between two
// pipeline stages. One goroutine pushes and eventually Closes; one
// goroutine pops until ok == false. Cancel (any goroutine) aborts both
// sides. Bytes reports the payload bytes currently buffered, for the
// decoder's retained-memory accounting.
type Queue[T any] struct {
	ch     chan queued[T]
	done   chan struct{}
	cancel sync.Once
	bytes  atomic.Int64
	m      QueueMetrics
}

// NewQueue builds a queue with the given depth (minimum 1).
func NewQueue[T any](depth int, m QueueMetrics) *Queue[T] {
	if depth < 1 {
		depth = 1
	}
	return &Queue[T]{ch: make(chan queued[T], depth), done: make(chan struct{}), m: m}
}

// Push enqueues one token, blocking while the queue is full. nbytes is
// the token's payload size for Bytes accounting. Returns ErrCanceled
// if the queue was canceled (the token is dropped).
func (q *Queue[T]) Push(v T, nbytes int64) error {
	it := queued[T]{v: v, n: nbytes}
	q.bytes.Add(nbytes)
	select {
	case q.ch <- it:
	default:
		// Full: block, and only now pay for a clock read if stall
		// accounting is on.
		var t0 time.Time
		if q.m.PushStall != nil {
			t0 = time.Now()
		}
		select {
		case q.ch <- it:
			if q.m.PushStall != nil {
				q.m.PushStall.Observe(time.Since(t0))
			}
		case <-q.done:
			q.bytes.Add(-nbytes)
			return ErrCanceled
		}
	}
	q.m.Depth.Max(int64(len(q.ch)))
	q.m.Items.Inc()
	return nil
}

// Pop dequeues one token, blocking while the queue is empty. ok is
// false once the queue is closed and drained; err is ErrCanceled if
// the queue was canceled first.
func (q *Queue[T]) Pop() (v T, ok bool, err error) {
	var it queued[T]
	select {
	case it, ok = <-q.ch:
	default:
		var t0 time.Time
		if q.m.PopStall != nil {
			t0 = time.Now()
		}
		select {
		case it, ok = <-q.ch:
			if q.m.PopStall != nil {
				q.m.PopStall.Observe(time.Since(t0))
			}
		case <-q.done:
			return v, false, ErrCanceled
		}
	}
	if !ok {
		return v, false, nil
	}
	q.bytes.Add(-it.n)
	return it.v, true, nil
}

// Close marks the producer side done: pending tokens drain, then Pop
// returns ok == false. Only the producer may call Close, once.
func (q *Queue[T]) Close() { close(q.ch) }

// Cancel aborts both sides: blocked and future Push/Pop calls return
// ErrCanceled. Idempotent and safe from any goroutine.
func (q *Queue[T]) Cancel() { q.cancel.Do(func() { close(q.done) }) }

// Len returns the current queue occupancy in items.
func (q *Queue[T]) Len() int { return len(q.ch) }

// Bytes returns the payload bytes currently buffered (as accounted by
// the producers' nbytes arguments).
func (q *Queue[T]) Bytes() int64 { return q.bytes.Load() }

// Stage runs one pipeline stage on its own goroutine, capturing a
// returned error or a panic. Wait joins the goroutine; a panic
// surfaces as an error naming the stage, so one crashing stage
// degrades the decode instead of killing the process.
type Stage struct {
	name string
	done chan struct{}
	err  error
}

// Go starts fn as a named stage.
func Go(name string, fn func() error) *Stage {
	s := &Stage{name: name, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		defer func() {
			if r := recover(); r != nil {
				s.err = fmt.Errorf("stage %s: panic: %v", s.name, r)
			}
		}()
		s.err = fn()
	}()
	return s
}

// Wait blocks until the stage goroutine has exited and returns its
// error (nil on clean completion).
func (s *Stage) Wait() error {
	<-s.done
	return s.err
}

// Name returns the stage's name.
func (s *Stage) Name() string { return s.name }
