package stage

import (
	"errors"
	"sync"
	"testing"

	"lf/internal/obs"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](4, QueueMetrics{})
	for i := 0; i < 4; i++ {
		if err := q.Push(i, 8); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.Bytes(); got != 32 {
		t.Fatalf("Bytes = %d, want 32", got)
	}
	if got := q.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	q.Close()
	for i := 0; i < 4; i++ {
		v, ok, err := q.Pop()
		if err != nil || !ok || v != i {
			t.Fatalf("Pop #%d = (%d, %v, %v)", i, v, ok, err)
		}
	}
	if _, ok, err := q.Pop(); ok || err != nil {
		t.Fatalf("Pop after drain = (ok=%v, err=%v), want closed", ok, err)
	}
	if got := q.Bytes(); got != 0 {
		t.Fatalf("Bytes after drain = %d, want 0", got)
	}
}

// TestQueueBlocksAtDepth pins the boundedness: a producer past the
// depth blocks until the consumer drains, and both directions move
// every token exactly once.
func TestQueueBlocksAtDepth(t *testing.T) {
	const n = 1000
	q := NewQueue[int](2, QueueMetrics{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := q.Push(i, 1); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
			if q.Len() > 2 {
				t.Errorf("queue overfilled: %d", q.Len())
				return
			}
		}
		q.Close()
	}()
	for i := 0; i < n; i++ {
		v, ok, err := q.Pop()
		if err != nil || !ok || v != i {
			t.Fatalf("Pop #%d = (%d, %v, %v)", i, v, ok, err)
		}
	}
	wg.Wait()
}

func TestQueueCancelUnblocks(t *testing.T) {
	q := NewQueue[int](1, QueueMetrics{})
	if err := q.Push(0, 4); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- q.Push(1, 4) }() // blocks: queue full
	q.Cancel()
	if err := <-errc; !errors.Is(err, ErrCanceled) {
		t.Fatalf("blocked Push after Cancel = %v, want ErrCanceled", err)
	}
	// The canceled push rolled its bytes back; only the landed token
	// remains accounted.
	if got := q.Bytes(); got != 4 {
		t.Fatalf("Bytes after canceled push = %d, want 4", got)
	}
	q.Cancel() // idempotent
	empty := NewQueue[int](1, QueueMetrics{})
	go empty.Cancel()
	if _, _, err := empty.Pop(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("blocked Pop after Cancel = %v, want ErrCanceled", err)
	}
}

func TestQueueMetrics(t *testing.T) {
	r := obs.NewRegistry()
	m := QueueMetrics{
		Depth:     r.Gauge("q.depth", obs.ClassRuntime),
		PushStall: r.Timing("q.push_stall_ns"),
		PopStall:  r.Timing("q.pop_stall_ns"),
		Items:     r.Counter("q.items", obs.ClassRuntime),
	}
	q := NewQueue[int](2, m)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			if err := q.Push(i, 1); err != nil {
				t.Errorf("push: %v", err)
			}
		}
		q.Close()
	}()
	for {
		if _, ok, err := q.Pop(); err != nil {
			t.Fatal(err)
		} else if !ok {
			break
		}
	}
	<-done
	if got := m.Items.Load(); got != 8 {
		t.Fatalf("Items = %d, want 8", got)
	}
	if got := m.Depth.Load(); got < 1 || got > 2 {
		t.Fatalf("Depth high-water = %d, want within [1, 2]", got)
	}
}

func TestStagePanicCapture(t *testing.T) {
	s := Go("boom", func() error { panic("kernel exploded") })
	err := s.Wait()
	if err == nil {
		t.Fatal("panic not captured")
	}
	for _, want := range []string{"boom", "kernel exploded"} {
		if !containsStr(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	ok := Go("fine", func() error { return nil })
	if err := ok.Wait(); err != nil {
		t.Fatalf("clean stage returned %v", err)
	}
	fail := Go("erring", func() error { return errors.New("deliberate") })
	if err := fail.Wait(); err == nil || err.Error() != "deliberate" {
		t.Fatalf("error stage returned %v", err)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
