// Package collide separates two-tag edge collisions in the IQ plane
// (§3.4). When the edges of two tags land on the same samples, the
// observed edge differential is a·e₁ + b·e₂ with a,b ∈ {−1, 0, +1}
// (falling, constant, rising per tag), so the differentials observed
// across the epoch form nine clusters arranged as a parallelogram
// lattice. The paper's construction recovers e₁ and e₂ from the
// cluster centroids alone — no channel estimation: the centroid at the
// origin is the (0,0) case; among the remaining eight, each pure-edge
// vector (±e₁, ±e₂) is the midpoint of a collinear centroid triple.
package collide

import (
	"errors"
	"math"
	"math/cmplx"

	"lf/internal/cluster"
	"lf/internal/obs"
	"lf/internal/rng"
)

// State is a per-tag edge state at a collision position.
type State int8

const (
	// Falling edge (antenna tuned → detuned): contributes −e.
	Falling State = -1
	// Constant (no toggle): contributes 0.
	Constant State = 0
	// Rising edge (detuned → tuned): contributes +e.
	Rising State = 1
)

// ErrDegenerate is returned when the nine-cluster parallelogram cannot
// be resolved — typically because the two tags' channel coefficients
// are too close to parallel (their clusters overlap), or because too
// few collision observations were available.
var ErrDegenerate = errors.New("collide: degenerate collision geometry")

// Separation is the result of separating a recurring two-tag collision.
type Separation struct {
	// E1, E2 are the recovered per-tag edge vectors. Which physical
	// tag each belongs to is not knowable from geometry alone; the
	// caller matches them against stream anchors (or ground truth in
	// calibration experiments).
	E1, E2 complex128
	// States[i] is the classified (a, b) pair for input point i.
	States [][2]State
}

// Classify maps one observed differential to the nearest lattice
// combination a·e1 + b·e2 and returns (a, b).
func Classify(d, e1, e2 complex128) (State, State) {
	best := math.Inf(1)
	var ba, bb State
	for a := -1; a <= 1; a++ {
		for b := -1; b <= 1; b++ {
			p := complex(float64(a), 0)*e1 + complex(float64(b), 0)*e2
			if dist := cmplx.Abs(d - p); dist < best {
				best = dist
				ba, bb = State(a), State(b)
			}
		}
	}
	return ba, bb
}

// Lattice returns the nine ideal cluster centres for edge vectors
// e1, e2, in row-major (a, b) order with a, b ∈ {−1, 0, 1}.
func Lattice(e1, e2 complex128) []complex128 {
	out := make([]complex128, 0, 9)
	for a := -1; a <= 1; a++ {
		for b := -1; b <= 1; b++ {
			out = append(out, complex(float64(a), 0)*e1+complex(float64(b), 0)*e2)
		}
	}
	return out
}

// Parallelogram recovers the two edge vectors from nine cluster
// centroids via the paper's collinear-triple construction:
//
//  1. the centroid nearest the origin is (0,0) and is removed;
//  2. for every pair of remaining centroids whose midpoint coincides
//     with a third centroid, that third centroid is a pure-edge vector
//     (±e₁ or ±e₂) — corners e₁±e₂ are never midpoints;
//  3. the four voted centroids pair up as ±e₁ and ±e₂.
func Parallelogram(centroids []complex128) (e1, e2 complex128, err error) {
	if len(centroids) != 9 {
		return 0, 0, errors.New("collide: parallelogram needs exactly 9 centroids")
	}
	// Scale for tolerances: median centroid magnitude.
	scale := medianAbs(centroids)
	if scale == 0 {
		return 0, 0, ErrDegenerate
	}
	tol := 0.25 * scale

	// Step 1: drop the origin centroid.
	oi := 0
	for i, c := range centroids {
		if cmplx.Abs(c) < cmplx.Abs(centroids[oi]) {
			oi = i
		}
	}
	rest := make([]complex128, 0, 8)
	for i, c := range centroids {
		if i != oi {
			rest = append(rest, c)
		}
	}

	// Step 2: vote midpoints.
	votes := make([]int, len(rest))
	for i := 0; i < len(rest); i++ {
		for j := i + 1; j < len(rest); j++ {
			mid := (rest[i] + rest[j]) / 2
			if cmplx.Abs(mid) < tol {
				continue // the ±v pairs midpoint at the origin
			}
			for k := range rest {
				if k == i || k == j {
					continue
				}
				if cmplx.Abs(rest[k]-mid) < tol {
					votes[k]++
				}
			}
		}
	}
	var cand []complex128
	for i, v := range votes {
		if v > 0 {
			cand = append(cand, rest[i])
		}
	}
	if len(cand) < 4 {
		return 0, 0, ErrDegenerate
	}
	// Keep the four most-voted candidates if noise produced extras.
	if len(cand) > 4 {
		cand = topVoted(rest, votes, 4)
	}

	// Step 3: pair candidates into ±e₁ and ±e₂.
	e1 = cand[0]
	// Its negation:
	negIdx := -1
	for i := 1; i < len(cand); i++ {
		if cmplx.Abs(cand[i]+e1) < tol {
			negIdx = i
			break
		}
	}
	if negIdx < 0 {
		return 0, 0, ErrDegenerate
	}
	var others []complex128
	for i := 1; i < len(cand); i++ {
		if i != negIdx {
			others = append(others, cand[i])
		}
	}
	if len(others) != 2 || cmplx.Abs(others[0]+others[1]) > tol {
		return 0, 0, ErrDegenerate
	}
	e2 = others[0]
	// Refine: average each vector with the negation of its pair.
	e1 = (e1 - cand[negIdx]) / 2
	e2 = (others[0] - others[1]) / 2
	// Reject near-parallel geometry: separation quality depends on the
	// relative angle between the vectors.
	cross := real(e1)*imag(e2) - imag(e1)*real(e2)
	if math.Abs(cross) < 0.05*cmplx.Abs(e1)*cmplx.Abs(e2) {
		return 0, 0, ErrDegenerate
	}
	return e1, e2, nil
}

func topVoted(rest []complex128, votes []int, n int) []complex128 {
	type iv struct {
		i, v int
	}
	order := make([]iv, len(rest))
	for i := range rest {
		order[i] = iv{i, votes[i]}
	}
	// Selection sort is fine for 8 items.
	for a := 0; a < len(order); a++ {
		for b := a + 1; b < len(order); b++ {
			if order[b].v > order[a].v {
				order[a], order[b] = order[b], order[a]
			}
		}
	}
	out := make([]complex128, 0, n)
	for _, o := range order[:n] {
		out = append(out, rest[o.i])
	}
	return out
}

func medianAbs(cs []complex128) float64 {
	mags := make([]float64, len(cs))
	for i, c := range cs {
		mags[i] = cmplx.Abs(c)
	}
	// Insertion sort (9 elements).
	for i := 1; i < len(mags); i++ {
		for j := i; j > 0 && mags[j] < mags[j-1]; j-- {
			mags[j], mags[j-1] = mags[j-1], mags[j]
		}
	}
	if len(mags) == 0 {
		return 0
	}
	return mags[len(mags)/2]
}

// SeparateBlind runs the full paper pipeline on the differentials
// observed at one recurring collision position: k-means into nine
// clusters, parallelogram recovery of e₁/e₂, then per-point
// classification. It needs enough points to populate the lattice
// (nominally ≥ 18; the paper's periodic-collision structure provides
// one point per repeated bit slot).
func SeparateBlind(points []complex128, src *rng.Source) (*Separation, error) {
	return SeparateBlindWarm(points, src, nil)
}

// SeparateBlindWarm is SeparateBlind with an optional k-means
// warm-start cache: recurring collision positions in one decode see
// near-identical lattice populations, so the converged nine-centroid
// configuration of one position seeds an extra descent at the next
// (adopted only on strictly lower inertia — see cluster.KMeansWarm).
func SeparateBlindWarm(points []complex128, src *rng.Source, w *cluster.Warm) (*Separation, error) {
	if len(points) < 18 {
		return nil, ErrDegenerate
	}
	res := cluster.KMeansWarm(points, 9, 6, 100, src, w)
	e1, e2, err := Parallelogram(res.Centroids)
	if err != nil {
		return nil, err
	}
	sep := &Separation{E1: e1, E2: e2, States: make([][2]State, len(points))}
	for i, p := range points {
		a, b := Classify(p, e1, e2)
		sep.States[i] = [2]State{a, b}
	}
	return sep, nil
}

// SeparateAnchored classifies the differentials against known edge
// vectors (recovered from each stream's preamble) instead of running
// the blind parallelogram. The decoder uses it when a collision
// position recurs too few times to populate nine clusters.
func SeparateAnchored(points []complex128, e1, e2 complex128) *Separation {
	sep := &Separation{E1: e1, E2: e2, States: make([][2]State, len(points))}
	for i, p := range points {
		a, b := Classify(p, e1, e2)
		sep.States[i] = [2]State{a, b}
	}
	return sep
}

// RecoverAntipodal recovers two edge vectors from a clustering of
// collision differentials when the parallelogram's corner clusters are
// too thin (as happens when the colliding tags' clocks drift apart and
// most observations land on the pure-edge clusters): it pairs up
// antipodal centroids (c, −c), ranks the pairs by population, and
// returns the two heaviest non-parallel pairs' vectors.
func RecoverAntipodal(centroids []complex128, counts []int) (e1, e2 complex128, err error) {
	if len(centroids) != len(counts) {
		return 0, 0, errors.New("collide: centroid/count length mismatch")
	}
	scale := medianAbs(centroids)
	if scale == 0 {
		return 0, 0, ErrDegenerate
	}
	tol := 0.3 * scale
	type pair struct {
		v      complex128
		weight int
	}
	var pairs []pair
	used := make([]bool, len(centroids))
	for i := range centroids {
		if used[i] || cmplx.Abs(centroids[i]) < tol {
			continue
		}
		for j := i + 1; j < len(centroids); j++ {
			if used[j] {
				continue
			}
			if cmplx.Abs(centroids[i]+centroids[j]) < tol {
				used[i], used[j] = true, true
				pairs = append(pairs, pair{
					v:      (centroids[i] - centroids[j]) / 2,
					weight: counts[i] + counts[j],
				})
				break
			}
		}
	}
	if len(pairs) < 2 {
		return 0, 0, ErrDegenerate
	}
	// Selection sort by weight (tiny slice).
	for a := 0; a < len(pairs); a++ {
		for b := a + 1; b < len(pairs); b++ {
			if pairs[b].weight > pairs[a].weight {
				pairs[a], pairs[b] = pairs[b], pairs[a]
			}
		}
	}
	// The antipodal pairs include not only the generators ±e₁, ±e₂ but
	// often the corners ±(e₁+e₂), ±(e₁−e₂). The generator pair is the
	// one whose sum AND difference both reappear (up to sign) among the
	// other pair vectors — for a generator-corner pair only one of the
	// two does. Closure score first, population weight as tiebreak.
	near := func(v complex128) bool {
		for _, p := range pairs {
			if cmplx.Abs(v-p.v) < tol || cmplx.Abs(v+p.v) < tol {
				return true
			}
		}
		return false
	}
	bestScore, bestWeight := -1, -1
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			vi, vj := pairs[i].v, pairs[j].v
			cross := real(vi)*imag(vj) - imag(vi)*real(vj)
			if math.Abs(cross) < 0.05*cmplx.Abs(vi)*cmplx.Abs(vj) {
				continue // parallel: not a generator pair
			}
			score := 0
			if near(vi + vj) {
				score++
			}
			if near(vi - vj) {
				score++
			}
			weight := pairs[i].weight + pairs[j].weight
			if score > bestScore || (score == bestScore && weight > bestWeight) {
				bestScore, bestWeight = score, weight
				e1, e2 = vi, vj
			}
		}
	}
	if bestScore < 0 {
		return 0, 0, ErrDegenerate
	}
	return e1, e2, nil
}

// RecoverGenerators recovers up to maxGens per-tag edge vectors from a
// clustering of the differentials observed across a phase-cluster
// region where several tags' edges interleave and collide. Solo edges
// populate heavy antipodal cluster pairs ±eᵢ, while co-toggle combos
// Σ±eᵢ scatter across many lighter clusters; so the generators are the
// heavy antipodal pairs that are not themselves (±) sums or
// differences of heavier accepted pairs.
func RecoverGenerators(centroids []complex128, counts []int, maxGens int) ([]complex128, error) {
	if len(centroids) != len(counts) {
		return nil, errors.New("collide: centroid/count length mismatch")
	}
	scale := medianAbs(centroids)
	if scale == 0 {
		return nil, ErrDegenerate
	}
	tol := 0.3 * scale
	type pair struct {
		v      complex128
		weight int
	}
	var pairs []pair
	used := make([]bool, len(centroids))
	for i := range centroids {
		if used[i] || cmplx.Abs(centroids[i]) < tol {
			continue
		}
		for j := i + 1; j < len(centroids); j++ {
			if used[j] {
				continue
			}
			if cmplx.Abs(centroids[i]+centroids[j]) < tol {
				used[i], used[j] = true, true
				pairs = append(pairs, pair{
					v:      (centroids[i] - centroids[j]) / 2,
					weight: counts[i] + counts[j],
				})
				break
			}
		}
	}
	if len(pairs) == 0 {
		return nil, ErrDegenerate
	}
	for a := 0; a < len(pairs); a++ {
		for b := a + 1; b < len(pairs); b++ {
			if pairs[b].weight > pairs[a].weight {
				pairs[a], pairs[b] = pairs[b], pairs[a]
			}
		}
	}
	// Combo filter: a pair vector that is (±) the sum or difference of
	// two strictly heavier pairs is a co-toggle combo, not a generator.
	// (Every lattice element is a combination of others, so the weight
	// asymmetry — solo clusters outweigh each combo cluster — is what
	// breaks the symmetry.)
	combo := make([]bool, len(pairs))
	for i := range pairs {
		for a := range pairs {
			if a == i || pairs[a].weight <= pairs[i].weight {
				continue
			}
			for b := a + 1; b < len(pairs); b++ {
				if b == i || pairs[b].weight <= pairs[i].weight {
					continue
				}
				for _, sum := range []complex128{pairs[a].v + pairs[b].v, pairs[a].v - pairs[b].v} {
					if cmplx.Abs(pairs[i].v-sum) < tol || cmplx.Abs(pairs[i].v+sum) < tol {
						combo[i] = true
					}
				}
			}
		}
	}
	var gens []complex128
	isDup := func(v complex128) bool {
		for _, g := range gens {
			scale := math.Max(cmplx.Abs(v), cmplx.Abs(g))
			if cmplx.Abs(v-g) < 0.35*scale || cmplx.Abs(v+g) < 0.35*scale {
				return true
			}
		}
		return false
	}
	for i, p := range pairs {
		if len(gens) >= maxGens {
			break
		}
		if combo[i] || isDup(p.v) {
			continue
		}
		gens = append(gens, p.v)
	}
	if len(gens) == 0 {
		return nil, ErrDegenerate
	}
	return gens, nil
}

// ClassifyJoint maps one observed differential to the nearest lattice
// combination over k edge vectors, Σᵢ aᵢ·eᵢ with aᵢ ∈ {−1,0,1}. It
// generalizes Classify to higher-order collisions (the paper notes
// three-way collisions are rare but they do occur at high bit rates).
// Complexity is 3^k; callers keep k ≤ 5.
func ClassifyJoint(d complex128, es []complex128) []State {
	k := len(es)
	states := make([]State, k)
	best := make([]State, k)
	bestDist := math.Inf(1)
	var recurse func(i int, partial complex128)
	recurse = func(i int, partial complex128) {
		if i == k {
			if dist := cmplx.Abs(d - partial); dist < bestDist {
				bestDist = dist
				copy(best, states)
			}
			return
		}
		for a := -1; a <= 1; a++ {
			states[i] = State(a)
			recurse(i+1, partial+complex(float64(a), 0)*es[i])
		}
	}
	recurse(0, 0)
	return best
}

// MatchVectors decides which recovered vector corresponds to which
// stream anchor: it returns true if (E1→a1, E2→a2) is the better
// assignment, false if the vectors should be swapped. Sign ambiguity
// (±e both appear in the lattice) is resolved by comparing against
// both signs.
func MatchVectors(e1, e2, a1, a2 complex128) bool {
	direct := math.Min(cmplx.Abs(e1-a1), cmplx.Abs(e1+a1)) +
		math.Min(cmplx.Abs(e2-a2), cmplx.Abs(e2+a2))
	swapped := math.Min(cmplx.Abs(e1-a2), cmplx.Abs(e1+a2)) +
		math.Min(cmplx.Abs(e2-a1), cmplx.Abs(e2+a1))
	return direct <= swapped
}

// Metrics instruments blind separation. Recorded from the decoder's
// serial collision-group loop, so the counts are deterministic. The
// zero value records nothing.
type Metrics struct {
	// BlindAttempts counts nine-cluster parallelogram attempts;
	// BlindDegenerate counts the ones rejected on degenerate geometry.
	BlindAttempts, BlindDegenerate *obs.Counter
}

// SeparateBlindWarmObs is SeparateBlindWarm with attempt/outcome
// instrumentation.
func SeparateBlindWarmObs(points []complex128, src *rng.Source, w *cluster.Warm, m Metrics) (*Separation, error) {
	m.BlindAttempts.Inc()
	s, err := SeparateBlindWarm(points, src, w)
	if err != nil {
		m.BlindDegenerate.Inc()
	}
	return s, err
}
