package collide

import (
	"math/cmplx"
	"testing"
	"testing/quick"

	"lf/internal/rng"
)

var (
	testE1 = complex(4.0e-4, 5.5e-4)
	testE2 = complex(-5.5e-4, 2.0e-4)
)

func TestClassifyExhaustive(t *testing.T) {
	for a := -1; a <= 1; a++ {
		for b := -1; b <= 1; b++ {
			d := complex(float64(a), 0)*testE1 + complex(float64(b), 0)*testE2
			ga, gb := Classify(d, testE1, testE2)
			if int(ga) != a || int(gb) != b {
				t.Fatalf("Classify(%d,%d) = (%d,%d)", a, b, ga, gb)
			}
		}
	}
}

func TestClassifyWithNoise(t *testing.T) {
	src := rng.New(1)
	wrong := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		a, b := src.Intn(3)-1, src.Intn(3)-1
		d := complex(float64(a), 0)*testE1 + complex(float64(b), 0)*testE2 + src.ComplexNorm(1e-9)
		ga, gb := Classify(d, testE1, testE2)
		if int(ga) != a || int(gb) != b {
			wrong++
		}
	}
	if wrong > trials/50 {
		t.Fatalf("%d/%d misclassifications at high SNR", wrong, trials)
	}
}

func TestLattice(t *testing.T) {
	l := Lattice(testE1, testE2)
	if len(l) != 9 {
		t.Fatalf("lattice size %d", len(l))
	}
	if l[4] != 0 {
		t.Fatalf("lattice centre %v, want origin", l[4])
	}
}

func TestParallelogramRecovery(t *testing.T) {
	centroids := Lattice(testE1, testE2)
	e1, e2, err := Parallelogram(centroids)
	if err != nil {
		t.Fatal(err)
	}
	okDirect := vecClose(e1, testE1) && vecClose(e2, testE2)
	okSwapped := vecClose(e1, testE2) && vecClose(e2, testE1)
	if !okDirect && !okSwapped {
		t.Fatalf("recovered %v, %v; want ±%v, ±%v", e1, e2, testE1, testE2)
	}
}

func vecClose(a, b complex128) bool {
	return cmplx.Abs(a-b) < 0.1*cmplx.Abs(b) || cmplx.Abs(a+b) < 0.1*cmplx.Abs(b)
}

func TestParallelogramRejectsParallel(t *testing.T) {
	// Two nearly parallel vectors: the lattice is almost collinear.
	e2 := testE1 * complex(0.6, 0.01)
	if _, _, err := Parallelogram(Lattice(testE1, e2)); err == nil {
		t.Fatal("parallel geometry should be rejected")
	}
}

func TestParallelogramNeedsNine(t *testing.T) {
	if _, _, err := Parallelogram(make([]complex128, 4)); err == nil {
		t.Fatal("wrong centroid count accepted")
	}
}

func TestSeparateBlindEndToEnd(t *testing.T) {
	src := rng.New(2)
	var points []complex128
	var truth [][2]State
	for i := 0; i < 270; i++ {
		a := State(src.Intn(3) - 1)
		b := State(src.Intn(3) - 1)
		d := complex(float64(a), 0)*testE1 + complex(float64(b), 0)*testE2 + src.ComplexNorm(4e-10)
		points = append(points, d)
		truth = append(truth, [2]State{a, b})
	}
	sep, err := SeparateBlind(points, src)
	if err != nil {
		t.Fatal(err)
	}
	// Align recovered vectors to the ground truth.
	swap := !MatchVectors(sep.E1, sep.E2, testE1, testE2)
	correct := 0
	for i, st := range sep.States {
		a, b := st[0], st[1]
		if swap {
			a, b = b, a
		}
		// Resolve sign: recovered vectors may be negated.
		r1, r2 := sep.E1, sep.E2
		if swap {
			r1, r2 = r2, r1
		}
		if cmplx.Abs(r1+testE1) < cmplx.Abs(r1-testE1) {
			a = -a
		}
		if cmplx.Abs(r2+testE2) < cmplx.Abs(r2-testE2) {
			b = -b
		}
		if a == truth[i][0] && b == truth[i][1] {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(points)); frac < 0.95 {
		t.Fatalf("blind separation accuracy %.3f", frac)
	}
}

func TestSeparateBlindNeedsPoints(t *testing.T) {
	if _, err := SeparateBlind(make([]complex128, 5), rng.New(1)); err == nil {
		t.Fatal("too few points accepted")
	}
}

func TestSeparateAnchored(t *testing.T) {
	points := []complex128{testE1, -testE2, testE1 + testE2, 0}
	sep := SeparateAnchored(points, testE1, testE2)
	want := [][2]State{{1, 0}, {0, -1}, {1, 1}, {0, 0}}
	for i, st := range sep.States {
		if st != want[i] {
			t.Fatalf("point %d: %v, want %v", i, st, want[i])
		}
	}
}

func TestMatchVectors(t *testing.T) {
	if !MatchVectors(testE1, testE2, testE1, testE2) {
		t.Fatal("direct match rejected")
	}
	if MatchVectors(testE1, testE2, testE2, testE1) {
		t.Fatal("swapped match not detected")
	}
	if !MatchVectors(-testE1, testE2, testE1, testE2) {
		t.Fatal("sign flip should still match directly")
	}
}

func TestClassifyJointMatchesPairwise(t *testing.T) {
	src := rng.New(3)
	f := func(ai, bi uint8) bool {
		a := int(ai%3) - 1
		b := int(bi%3) - 1
		d := complex(float64(a), 0)*testE1 + complex(float64(b), 0)*testE2 + src.ComplexNorm(1e-10)
		joint := ClassifyJoint(d, []complex128{testE1, testE2})
		ga, gb := Classify(d, testE1, testE2)
		return joint[0] == ga && joint[1] == gb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyJointThreeWay(t *testing.T) {
	e3 := complex(1e-4, -6e-4)
	src := rng.New(4)
	for i := 0; i < 200; i++ {
		a := State(src.Intn(3) - 1)
		b := State(src.Intn(3) - 1)
		c := State(src.Intn(3) - 1)
		d := complex(float64(a), 0)*testE1 + complex(float64(b), 0)*testE2 +
			complex(float64(c), 0)*e3 + src.ComplexNorm(1e-10)
		got := ClassifyJoint(d, []complex128{testE1, testE2, e3})
		if got[0] != a || got[1] != b || got[2] != c {
			t.Fatalf("joint (%d,%d,%d) -> %v", a, b, c, got)
		}
	}
}

func TestRecoverAntipodalPrefersGenerators(t *testing.T) {
	// Centroids: generators (heavy) plus corners (light).
	centroids := []complex128{
		testE1, -testE1, testE2, -testE2,
		testE1 + testE2, -testE1 - testE2, testE1 - testE2, testE2 - testE1,
	}
	counts := []int{40, 40, 35, 35, 8, 8, 8, 8}
	e1, e2, err := RecoverAntipodal(centroids, counts)
	if err != nil {
		t.Fatal(err)
	}
	ok := (vecClose(e1, testE1) && vecClose(e2, testE2)) ||
		(vecClose(e1, testE2) && vecClose(e2, testE1))
	if !ok {
		t.Fatalf("recovered %v, %v", e1, e2)
	}
}

func TestRecoverGeneratorsFiltersCombos(t *testing.T) {
	centroids := []complex128{
		testE1, -testE1, testE2, -testE2,
		testE1 + testE2, -(testE1 + testE2),
	}
	counts := []int{40, 40, 35, 35, 10, 10}
	gens, err := RecoverGenerators(centroids, counts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("got %d generators, want 2 (combo must be filtered)", len(gens))
	}
	for _, g := range gens {
		if !vecClose(g, testE1) && !vecClose(g, testE2) {
			t.Fatalf("unexpected generator %v", g)
		}
	}
}

func TestRecoverGeneratorsDegenerate(t *testing.T) {
	if _, err := RecoverGenerators(nil, nil, 4); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := RecoverGenerators([]complex128{1, 1}, []int{5, 5}, 4); err == nil {
		t.Fatal("non-antipodal centroids should fail")
	}
}

func TestStateString(t *testing.T) {
	if Rising != 1 || Falling != -1 || Constant != 0 {
		t.Fatal("state constants changed")
	}
}
