package dist

import (
	"bytes"
	"testing"

	"lf/internal/edgedetect"
)

// FuzzWireFrame throws arbitrary bytes at the frame reader and, when
// they parse, at the message codecs. The invariants: no panic, no
// huge allocation (maxFramePayload bound), and every frame the writer
// produces round-trips through the reader byte-exactly — including
// after the fuzzer mutates seed corpora into near-valid frames where
// only the CRC distinguishes them.
func FuzzWireFrame(f *testing.F) {
	// Seed with valid frames of every message type.
	hello := &wireHello{Version: protoVersion, Name: "fuzz"}
	job := &wireJob{ID: 1, Lo: 100, Hi: 200, IntLo: 200, IntHi: 300,
		Base: 0, Gap: 4, Win: 8, Guard: 6, Threshold: 0.5,
		Re: []float64{1, 2}, Im: []float64{3, 4}}
	res := &wireResult{ID: 1, Mag: []float64{1, 2, 3}}
	se := &wireShardErr{ID: 1, Stage: "edgedetect", Pos: 5, Msg: "x"}
	for _, m := range []struct {
		typ byte
		p   []byte
	}{
		{msgHello, hello.encode()},
		{msgPull, nil},
		{msgJob, job.encode()},
		{msgResult, res.encode()},
		{msgShardErr, se.encode()},
	} {
		var buf bytes.Buffer
		if err := writeFrame(&buf, m.typ, m.p); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{wireMagic0, wireMagic1, msgJob, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A frame that passed magic + CRC must re-encode to the same
		// bytes it was read from (the reader consumed exactly one frame).
		var buf bytes.Buffer
		if werr := writeFrame(&buf, typ, payload); werr != nil {
			t.Fatalf("reread failed: %v", werr)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatal("frame did not round-trip byte-exactly")
		}
		// Message codecs must never panic on CRC-valid payloads; errors
		// are fine (that is the quarantine path).
		switch typ {
		case msgHello:
			decodeHello(payload)
		case msgJob:
			if j, err := decodeJob(payload); err == nil && j.Hi-j.Lo <= 1<<16 {
				// A decodable job must be safely computable: the window
				// coverage check guarantees in-bounds kernel reads. (The
				// size cap only bounds fuzz-exec allocation.)
				computeJob(j, (*edgedetect.StripeJob).Run)
			}
		case msgResult:
			decodeResult(payload)
		case msgShardErr:
			decodeShardErr(payload)
		}
	})
}
