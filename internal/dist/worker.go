package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"lf/internal/decoder"
	"lf/internal/edgedetect"
	"lf/internal/fault"
	"lf/internal/wire"
)

// WorkerConfig tunes one worker process's pull loop.
type WorkerConfig struct {
	// Addr is the coordinator's address.
	Addr string
	// Name identifies the worker in coordinator logs.
	Name string

	// BackoffMin/BackoffMax bound the exponential reconnect backoff
	// (full jitter: each sleep is a seeded uniform draw of the current
	// ceiling). Defaults 10ms / 1s. A completed job resets the ceiling,
	// so a healthy fleet reconnects fast after a one-off drop.
	BackoffMin, BackoffMax time.Duration
	// Seed drives the jitter draws; 0 seeds from the worker name so
	// identically configured workers still dejitter apart.
	Seed int64

	// Dial overrides the transport (tests inject pipes or faulty
	// conns). Default: net.Dialer over TCP.
	Dial func(ctx context.Context) (net.Conn, error)
	// Transport, when active, impairs the worker's side of each
	// connection with the seeded wire injectors — connection attempt
	// index salts the hash, so retries fail independently.
	Transport fault.TransportConfig
	// Compute overrides stripe computation (tests inject stalls and
	// poison). Default: (*edgedetect.StripeJob).Run.
	Compute func(*edgedetect.StripeJob)
	// Logf, when non-nil, receives worker lifecycle events.
	Logf func(format string, args ...any)
}

// RunWorker dials the coordinator and serves pulls until ctx is
// cancelled: pull a stripe, compute it, stream the result back. Every
// transport failure — dial refusal, dropped conn, corrupt frame —
// degrades to an exponential-backoff-with-jitter reconnect; a compute
// panic is reported as a typed shard error on the wire (the worker
// survives). Returns ctx.Err() on cancellation.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 10 * time.Millisecond
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = time.Second
	}
	if cfg.Dial == nil {
		d := &net.Dialer{}
		cfg.Dial = func(ctx context.Context) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", cfg.Addr)
		}
	}
	if cfg.Compute == nil {
		cfg.Compute = (*edgedetect.StripeJob).Run
	}
	seed := uint64(cfg.Seed)
	if seed == 0 {
		for _, b := range []byte(cfg.Name) {
			seed = seed*131 + uint64(b)
		}
		seed++
	}

	backoff := cfg.BackoffMin
	for attempt := uint64(0); ; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		conn, err := cfg.Dial(ctx)
		if err == nil {
			wrapped := cfg.Transport.Wrap(conn, attempt+1)
			served, serr := workerSession(ctx, wrapped, cfg)
			if cfg.Logf != nil && serr != nil && ctx.Err() == nil {
				cfg.Logf("dist: worker %q session ended after %d jobs: %v", cfg.Name, served, serr)
			}
			if served > 0 {
				backoff = cfg.BackoffMin // healthy session: forgive the failure
			}
		} else if cfg.Logf != nil && ctx.Err() == nil {
			cfg.Logf("dist: worker %q dial: %v", cfg.Name, err)
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// Full-jitter sleep in [BackoffMin, backoff], then double the
		// ceiling — the celestia reconnect shape: collapsed workers
		// don't thunder back in phase.
		h := splitmix64w(seed ^ (attempt+1)*0x9E3779B97F4A7C15)
		frac := float64(h>>11) / (1 << 53)
		sleep := cfg.BackoffMin + time.Duration(frac*float64(backoff-cfg.BackoffMin))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > cfg.BackoffMax {
			backoff = cfg.BackoffMax
		}
	}
}

// workerSession runs one connection's pull loop, returning how many
// jobs it completed and why it ended.
func workerSession(ctx context.Context, conn net.Conn, cfg WorkerConfig) (served int, err error) {
	defer conn.Close()
	// Watchdog: cancellation severs the conn so blocked reads unwind.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	hello := &wireHello{Version: protoVersion, Name: cfg.Name}
	if err := writeFrame(conn, msgHello, hello.encode()); err != nil {
		return 0, err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return 0, err
	}
	if typ != msgWelcome {
		return 0, wireErrf("expected welcome, got type %d", typ)
	}
	d := wire.NewDec(payload)
	if v := d.U32(); d.Err() != nil || v != protoVersion {
		return 0, wireErrf("coordinator speaks version %d, want %d", v, protoVersion)
	}

	for {
		if err := writeFrame(conn, msgPull, nil); err != nil {
			return served, err
		}
		typ, payload, err := readFrame(conn)
		if err != nil {
			return served, err
		}
		if typ != msgJob {
			return served, wireErrf("expected job, got type %d", typ)
		}
		wj, err := decodeJob(payload)
		if err != nil {
			return served, err
		}
		reply, rtyp := computeJob(wj, cfg.Compute)
		if err := writeFrame(conn, rtyp, reply); err != nil {
			return served, err
		}
		served++
	}
}

// computeJob runs one shipped stripe and encodes the reply: a result
// frame, or a shard-error frame when the compute panics (poisoned
// shard — the coordinator decides whether to retry or quarantine).
func computeJob(wj *wireJob, compute func(*edgedetect.StripeJob)) (payload []byte, typ byte) {
	job := &edgedetect.StripeJob{
		Lo: wj.Lo, Hi: wj.Hi,
		IntLo: wj.IntLo, IntHi: wj.IntHi,
		Re: wj.Re, Im: wj.Im, Base: wj.Base,
		Gap: wj.Gap, Win: wj.Win, Guard: wj.Guard,
		Sparse: wj.Sparse, Threshold: wj.Threshold,
		Dst: make([]float64, wj.Hi-wj.Lo),
	}
	if perr := runGuarded(job, compute); perr != nil {
		se := &wireShardErr{ID: wj.ID, Stage: string(decoder.StageEdgeDetect), Pos: wj.Lo, Msg: perr.Error()}
		var de *decoder.DecodeError
		if errors.As(perr, &de) {
			se.Stage, se.Pos = string(de.Stage), de.Pos
		}
		return se.encode(), msgShardErr
	}
	res := &wireResult{ID: wj.ID, Mag: job.Dst}
	return res.encode(), msgResult
}

// runGuarded converts a compute panic into an error, preserving
// error-valued panics (typed decode errors included) via %w.
func runGuarded(job *edgedetect.StripeJob, compute func(*edgedetect.StripeJob)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("dist: stripe compute panic: %w", e)
			} else {
				err = fmt.Errorf("dist: stripe compute panic: %v", r)
			}
		}
	}()
	compute(job)
	return nil
}

// splitmix64w is the jitter hash — the same full-avalanche mix the
// fault injectors use for positional draws.
func splitmix64w(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
