package dist

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lf/internal/decoder"
	"lf/internal/edgedetect"
	"lf/internal/fault"
	"lf/internal/obs"
	"lf/internal/shard"
	"lf/internal/wire"
)

// CoordinatorConfig tunes the shard coordinator.
type CoordinatorConfig struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for tests). Ignored
	// when Listener is set.
	Addr string
	// Listener, when non-nil, is used instead of listening on Addr (the
	// caller keeps ownership of the choice, the coordinator of the
	// lifecycle: Close closes it).
	Listener net.Listener

	// LeaseTimeout bounds how long a worker may hold a shard before the
	// lease expires: once a job is sent, the serving connection must
	// deliver the result (or a shard error) within this window or the
	// shard re-queues and the connection is dropped. 0 selects 2s.
	LeaseTimeout time.Duration
	// HedgeAfter is the straggler threshold: a shard outstanding longer
	// than this is speculatively re-queued for another worker while the
	// original lease keeps running — first valid result wins, identical
	// bytes either way. 0 selects LeaseTimeout/2; negative disables
	// hedging.
	HedgeAfter time.Duration
	// MaxAttempts bounds serve attempts per shard (initial + retries +
	// hedges). A shard that exhausts its attempts falls back to local
	// compute — transport trouble never fails a decode. 0 selects 5.
	MaxAttempts int
	// QuarantineAfter is how many typed remote failures poison a shard
	// (surfaced as lf.DecodeError for that shard; the coordinator and
	// its pool survive). 0 selects 2 — one flaky worker gets a second
	// opinion before the shard is declared poisoned.
	QuarantineAfter int

	// Transport, when active, impairs every accepted connection with
	// the seeded wire injectors (fault.TransportKinds) — the test and
	// bench harness for the failure matrix.
	Transport fault.TransportConfig

	// Registry receives the dist.* runtime-class metrics. nil creates a
	// private registry (read it back via Stats). Dist metrics are kept
	// out of the decode Pipeline on purpose: distribution is invisible
	// to decode-class stats.
	Registry *obs.Registry

	// Logf, when non-nil, receives coordinator lifecycle events.
	Logf func(format string, args ...any)
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 2 * time.Second
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = c.LeaseTimeout / 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 2
	}
	return c
}

// pending is one shard job's coordinator-side state. All fields are
// guarded by Coordinator.mu except job geometry (immutable) and doneCh
// (closed exactly once, under mu, after done/err settle — so a reader
// that sees doneCh closed sees the final state without the lock).
type pending struct {
	id  uint64
	job *edgedetect.StripeJob

	queued   bool // sitting in the queue awaiting a serve
	leases   int  // connections currently serving it
	attempts int  // serves started (initial + retries + hedges)
	remote   int  // typed remote failures observed

	// dispatched is when the most recent serve started; the hedge
	// monitor compares against it so each serve gets a full HedgeAfter
	// before a speculative duplicate is queued.
	dispatched time.Time

	exhausted bool // attempts ≥ MaxAttempts: local fallback owns it
	done      bool
	err       error
	doneCh    chan struct{}
}

// Coordinator serves the stripe queue to pulled workers and merges
// results into the jobs' Dst buffers. Install RunStripe as the
// decoder's StripeRunner; one coordinator serves any number of
// sequential or concurrent decodes (job IDs are global).
type Coordinator struct {
	cfg CoordinatorConfig
	ln  net.Listener

	mu      sync.Mutex
	cond    *sync.Cond // signalled on queue push and close
	queue   []*pending // FIFO serve order (hedges re-append)
	jobs    map[uint64]*pending
	nextID  uint64
	workers int
	closed  bool

	closedCh chan struct{}
	connSeq  atomic.Uint64
	wg       sync.WaitGroup // accept loop + serve loops + monitor

	reg *obs.Registry
	m   obs.DistMetrics
}

// NewCoordinator starts listening and serving immediately.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ln := cfg.Listener
	if ln == nil {
		addr := cfg.Addr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		var err error
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("dist: listen: %w", err)
		}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Coordinator{
		cfg: cfg, ln: ln,
		jobs:     map[uint64]*pending{},
		closedCh: make(chan struct{}),
		reg:      reg,
		m:        obs.NewDistMetrics(reg),
	}
	c.cond = sync.NewCond(&c.mu)
	c.wg.Add(2)
	go c.acceptLoop()
	go c.monitor()
	return c, nil
}

// Addr returns the listen address workers should dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Stats snapshots the coordinator's runtime metrics (dist.*).
func (c *Coordinator) Stats() *obs.Snapshot { return c.reg.Snapshot() }

// Workers returns the number of currently connected workers.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers
}

// WaitWorkers blocks until at least n workers are connected or the
// timeout elapses, reporting whether the fleet arrived. Decodes work
// either way (RunStripe falls back to local compute); the wait just
// lets callers ensure the measurement they asked for is the one they
// get.
func (c *Coordinator) WaitWorkers(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		ok := c.workers >= n
		closed := c.closed
		c.mu.Unlock()
		if ok {
			return true
		}
		if closed || time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Close shuts the coordinator down: the listener closes, every worker
// connection is torn down, in-flight RunStripe calls finish locally
// (their jobs are marked exhausted), and Close returns once every
// serve loop has exited. Idempotent.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	close(c.closedCh)
	c.cond.Broadcast()
	c.mu.Unlock()
	c.ln.Close()
	c.wg.Wait()
}

// RunStripe is the StripeRunner hook: it serves job to the worker
// fleet and returns when the job's Dst holds the stripe (or the shard
// is quarantined). With no fleet — none connected, fleet drained, or
// attempts exhausted — the stripe is computed locally, so the decode
// always completes. Safe for concurrent use (the shard pool calls it
// from every in-process worker).
func (c *Coordinator) RunStripe(job *edgedetect.StripeJob) error {
	c.m.Shards.Inc()
	p := c.submit(job)
	if p == nil {
		c.m.Local.Inc()
		job.Run()
		return nil
	}
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-p.doneCh:
			return p.err
		case <-c.closedCh:
			if c.steal(p) {
				c.m.Local.Inc()
				job.Run()
				return nil
			}
			<-p.doneCh
			return p.err
		case <-ticker.C:
			if c.shouldSteal(p) && c.steal(p) {
				c.m.Local.Inc()
				job.Run()
				return nil
			}
		}
	}
}

// submit enqueues a job for remote serving, or returns nil when the
// caller should compute locally (closed, or no workers connected).
func (c *Coordinator) submit(job *edgedetect.StripeJob) *pending {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.workers == 0 {
		return nil
	}
	c.nextID++
	p := &pending{id: c.nextID, job: job, queued: true, doneCh: make(chan struct{})}
	c.jobs[p.id] = p
	c.queue = append(c.queue, p)
	c.cond.Signal()
	return p
}

// shouldSteal reports whether the local fallback should reclaim the
// job: the fleet drained while it was outstanding, or every serve
// attempt was spent.
func (c *Coordinator) shouldSteal(p *pending) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.done {
		return false
	}
	return c.workers == 0 || p.exhausted
}

// steal reclaims a job for local compute. Once it returns true no
// remote result will ever touch the job's Dst (deliver checks done
// under mu), so the caller owns the buffer.
func (c *Coordinator) steal(p *pending) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.done {
		return false
	}
	p.done = true
	p.queued = false
	delete(c.jobs, p.id)
	close(p.doneCh)
	return true
}

// take blocks until a job is available (returns it with a lease) or
// the coordinator closes (returns nil). Stolen/settled jobs are
// skipped.
func (c *Coordinator) take() *pending {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for len(c.queue) > 0 {
			p := c.queue[0]
			copy(c.queue, c.queue[1:])
			c.queue = c.queue[:len(c.queue)-1]
			if p.done || !p.queued {
				continue
			}
			p.queued = false
			p.leases++
			p.attempts++
			p.dispatched = time.Now()
			return p
		}
		if c.closed {
			return nil
		}
		c.cond.Wait()
	}
}

// release drops a serve's lease; requeue re-offers the job unless it
// settled or ran out of attempts (then the local fallback takes over
// via exhausted).
func (c *Coordinator) release(p *pending, requeue bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p.leases--
	if p.done || !requeue || p.queued {
		return
	}
	if p.attempts >= c.cfg.MaxAttempts {
		p.exhausted = true
		return
	}
	p.queued = true
	c.queue = append(c.queue, p)
	c.cond.Signal()
}

// deliver settles a job with a remote result. Returns false when the
// result is unusable (wrong length — a corrupt frame that passed CRC
// by luck is still caught by the length invariant). Late results for
// settled or stolen jobs are silently discarded: first valid result
// wins, and per the determinism argument every valid result carries
// identical bytes.
func (c *Coordinator) deliver(id uint64, mag []float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.jobs[id]
	if !ok || p.done {
		return true // stale duplicate — not the connection's fault
	}
	if int64(len(mag)) != p.job.Hi-p.job.Lo {
		return false
	}
	copy(p.job.Dst, mag)
	p.done = true
	p.queued = false
	delete(c.jobs, id)
	close(p.doneCh)
	return true
}

// recordShardErr notes a typed remote failure and reports whether the
// shard should be retried. Below the quarantine threshold it should
// (maybe the worker, not the shard, is poisoned); at the threshold the
// shard settles with a typed lf.DecodeError, which poisons that one
// stripe's ticket — never the pool or the coordinator. A failure for
// an already-settled shard is stale and ignored.
func (c *Coordinator) recordShardErr(we *wireShardErr, p *pending) (retry bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.done {
		return false
	}
	p.remote++
	if p.remote < c.cfg.QuarantineAfter {
		return true
	}
	p.done = true
	p.queued = false
	p.err = &decoder.DecodeError{
		Stage: decoder.Stage(we.Stage),
		Pos:   we.Pos,
		Err:   fmt.Errorf("dist: shard %d poisoned after %d remote failures: %s", we.ID, p.remote, we.Msg),
	}
	delete(c.jobs, p.id)
	close(p.doneCh)
	return false
}

// monitor is the hedge loop: every tick it re-queues jobs whose
// current serve has been outstanding longer than HedgeAfter, so a
// straggling worker never gates the merge — some other worker (or the
// straggler itself, racing its duplicate) settles the shard first.
func (c *Coordinator) monitor() {
	defer c.wg.Done()
	if c.cfg.HedgeAfter < 0 {
		return
	}
	tick := c.cfg.HedgeAfter / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-c.closedCh:
			return
		case <-ticker.C:
		}
		now := time.Now()
		c.mu.Lock()
		for _, p := range c.jobs {
			if p.done || p.queued || p.exhausted || p.leases == 0 {
				continue
			}
			if now.Sub(p.dispatched) < c.cfg.HedgeAfter {
				continue
			}
			if p.attempts >= c.cfg.MaxAttempts {
				p.exhausted = true
				continue
			}
			// Reset the clock so the hedge itself gets a full window
			// before a second hedge piles on.
			p.dispatched = now
			p.queued = true
			c.queue = append(c.queue, p)
			c.m.Hedges.Inc()
			c.cond.Signal()
		}
		c.mu.Unlock()
	}
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		id := c.connSeq.Add(1)
		wrapped := c.cfg.Transport.Wrap(&countingConn{Conn: conn, n: c.m.Bytes}, id)
		c.wg.Add(1)
		go c.serve(wrapped)
	}
}

// addWorker/dropWorker maintain the fleet census the submit/steal
// decisions read.
func (c *Coordinator) addWorker() {
	c.mu.Lock()
	c.workers++
	c.m.Workers.Max(int64(c.workers))
	c.mu.Unlock()
}

func (c *Coordinator) dropWorker() {
	c.mu.Lock()
	c.workers--
	c.mu.Unlock()
}

// serve runs one worker connection: handshake, then a pull → job →
// result loop. Any failure — transport error, framing violation,
// lease expiry, protocol confusion — re-queues whatever was leased and
// drops the connection; the worker's reconnect loop gets a fresh one.
func (c *Coordinator) serve(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()

	// Tear the connection down on Close so blocked reads unwind.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-c.closedCh:
			conn.Close()
		case <-stop:
		}
	}()

	conn.SetDeadline(time.Now().Add(c.cfg.LeaseTimeout))
	typ, payload, err := readFrame(conn)
	if err != nil || typ != msgHello {
		return
	}
	hello, err := decodeHello(payload)
	if err != nil || hello.Version != protoVersion {
		return
	}
	var e wire.Enc
	e.U32(protoVersion)
	if err := writeFrame(conn, msgWelcome, e.B); err != nil {
		return
	}
	c.addWorker()
	defer c.dropWorker()
	c.logf("dist: worker %q connected from %s", hello.Name, conn.RemoteAddr())

	for {
		// Pulls may be arbitrarily far apart (idle worker waiting out an
		// empty queue happens coordinator-side, in take), so the pull
		// read itself is unbounded; the Close watchdog unblocks it.
		conn.SetDeadline(time.Time{})
		typ, _, err := readFrame(conn)
		if err != nil || typ != msgPull {
			return
		}
		p := c.take()
		if p == nil {
			return // closed
		}
		if !c.serveJob(conn, p) {
			return
		}
	}
}

// serveJob ships one leased job and awaits its settlement within the
// lease window. Returns false when the connection must be dropped.
func (c *Coordinator) serveJob(conn net.Conn, p *pending) bool {
	wj := shipJob(p)
	conn.SetDeadline(time.Now().Add(c.cfg.LeaseTimeout))
	if err := writeFrame(conn, msgJob, wj.encode()); err != nil {
		c.m.Retries.Inc()
		c.release(p, true)
		return false
	}
	// The lease: the result (or shard error) must land before the
	// deadline set above, or the conn is cut and the shard re-queued.
	typ, payload, err := readFrame(conn)
	if err != nil {
		c.m.Retries.Inc()
		c.release(p, true)
		return false
	}
	switch typ {
	case msgResult:
		res, derr := decodeResult(payload)
		if derr != nil || res.ID != p.id || !c.deliver(res.ID, res.Mag) {
			c.m.Retries.Inc()
			c.release(p, true)
			return false
		}
		c.release(p, false)
		return true
	case msgShardErr:
		se, derr := decodeShardErr(payload)
		if derr != nil || se.ID != p.id {
			c.m.Retries.Inc()
			c.release(p, true)
			return false
		}
		if c.recordShardErr(se, p) {
			c.m.Retries.Inc()
			c.release(p, true)
		} else {
			c.release(p, false)
		}
		// The worker reported cleanly; it survives to pull again.
		return true
	default:
		c.m.Retries.Inc()
		c.release(p, true)
		return false
	}
}

// shipJob builds the wire form of a pending job: geometry verbatim,
// prefix sums cut down to the exact window the dense kernel reads
// ([ilo−margin, ihi+margin) in absolute positions), Sparse forced off
// (see wireJob). The prefix sums are from-origin absolute values, so
// the shipped subslice reproduces every difference bit-exactly.
func shipJob(p *pending) *wireJob {
	j := p.job
	wj := &wireJob{
		ID: p.id, Lo: j.Lo, Hi: j.Hi,
		IntLo: j.IntLo, IntHi: j.IntHi,
		Gap: j.Gap, Win: j.Win, Guard: j.Guard,
		Sparse: false, Threshold: j.Threshold,
	}
	ilo, ihi := max(j.Lo, j.IntLo), min(j.Hi, j.IntHi)
	if ilo >= ihi {
		// Pure-blank stripe: nothing to compute, ship no window.
		wj.Base = ilo
		return wj
	}
	margin := shard.SweepMargin(j.Gap, j.Win)
	shipLo, shipHi := ilo-margin, ihi+margin
	wj.Base = shipLo
	wj.Re = j.Re[shipLo-j.Base : shipHi-j.Base]
	wj.Im = j.Im[shipLo-j.Base : shipHi-j.Base]
	return wj
}

// countingConn totals bytes both directions into an obs counter — the
// innermost wrapper, so it counts what the network actually carried,
// including corrupted and truncated frames.
type countingConn struct {
	net.Conn
	n *obs.Counter
}

func (cc *countingConn) Read(p []byte) (int, error) {
	n, err := cc.Conn.Read(p)
	cc.n.Add(int64(n))
	return n, err
}

func (cc *countingConn) Write(p []byte) (int, error) {
	n, err := cc.Conn.Write(p)
	cc.n.Add(int64(n))
	return n, err
}
