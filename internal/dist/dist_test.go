package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"lf/internal/decoder"
	"lf/internal/edgedetect"
	"lf/internal/fault"
	"lf/internal/shard"
)

// makeJob hand-builds a StripeJob over seeded synthetic prefix sums:
// n samples, stripe owning [lo, hi), the geometry small enough that
// unit tests stay fast but every code path (blank margins, interior
// sweep) is exercised.
func makeJob(seed uint64, n, lo, hi int64) *edgedetect.StripeJob {
	re := make([]float64, n+1)
	im := make([]float64, n+1)
	for i := int64(1); i <= n; i++ {
		h := splitmix64w(seed ^ uint64(i)*0xD6E8FEB86659FD93)
		re[i] = re[i-1] + float64(h>>40)/(1<<24)
		im[i] = im[i-1] + float64((h<<24)>>40)/(1<<24)
	}
	var g, w int64 = 4, 8
	margin := shard.SweepMargin(g, w)
	return &edgedetect.StripeJob{
		Lo: lo, Hi: hi,
		IntLo: margin, IntHi: n - margin,
		Re: re, Im: im, Base: 0,
		Gap: g, Win: w, Guard: shard.SweepGuard(g),
		Sparse: false, Threshold: 0.5,
		Dst: make([]float64, hi-lo),
	}
}

// refRun computes the job's expected Dst via the in-process kernel on
// a fresh copy.
func refRun(job *edgedetect.StripeJob) []float64 {
	cp := *job
	cp.Dst = make([]float64, len(job.Dst))
	cp.Run()
	return cp.Dst
}

func startCoordinator(t *testing.T, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// startWorkers launches n workers against c and returns a stop
// function that cancels and joins them.
func startWorkers(t *testing.T, c *Coordinator, n int, mutate func(i int, cfg *WorkerConfig)) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cfg := WorkerConfig{Addr: c.Addr(), Name: fmt.Sprintf("w%d", i), Seed: int64(i + 1)}
		if mutate != nil {
			mutate(i, &cfg)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			RunWorker(ctx, cfg)
		}()
	}
	if !c.WaitWorkers(n, 5*time.Second) {
		cancel()
		wg.Wait()
		t.Fatalf("fleet of %d never connected", n)
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			wg.Wait()
		})
	}
	t.Cleanup(stop)
	return stop
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestRunStripeRemoteMatchesLocal runs a batch of stripes through a
// real loopback coordinator + fleet and checks every Dst is
// bit-identical to the in-process kernel — including degenerate
// stripes that are all blank margin.
func TestRunStripeRemoteMatchesLocal(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{})
	startWorkers(t, c, 2, nil)

	const n = 4096
	jobs := []*edgedetect.StripeJob{
		makeJob(1, n, 0, 512),     // leading blank margin
		makeJob(1, n, 512, 2048),  // pure interior
		makeJob(1, n, 2048, 4096), // trailing blank margin
		makeJob(1, n, 0, 10),      // fully blank (lo < hi ≤ IntLo)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for i, job := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = c.RunStripe(job)
		}()
	}
	wg.Wait()
	for i, job := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if want := refRun(job); !equalFloats(job.Dst, want) {
			t.Fatalf("job %d: remote result differs from local kernel", i)
		}
	}
	snap := c.Stats()
	if got := snap.Counters["dist.shards"]; got != int64(len(jobs)) {
		t.Fatalf("dist.shards = %d, want %d", got, len(jobs))
	}
	if snap.Counters["dist.bytes"] == 0 {
		t.Fatal("dist.bytes stayed zero across a remote batch")
	}
	if snap.Counters["dist.local"] != 0 {
		t.Fatalf("dist.local = %d with a healthy fleet", snap.Counters["dist.local"])
	}
}

// TestRunStripeSparseJobDensifiedRemotely: a sparse local job must
// still produce a decode-equivalent stripe remotely (the wire forces
// the dense kernel; above-threshold positions are exact either way).
func TestRunStripeSparseJobDensifiedRemotely(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{})
	startWorkers(t, c, 1, nil)

	job := makeJob(7, 4096, 512, 2048)
	job.Sparse = true
	dense := *job
	dense.Sparse = false
	want := refRun(&dense)
	if err := c.RunStripe(job); err != nil {
		t.Fatal(err)
	}
	if !equalFloats(job.Dst, want) {
		t.Fatal("remote sparse job not bit-identical to dense kernel")
	}
}

// TestRunStripeNoFleetFallsBackLocal: with no workers the stripe runs
// in-process immediately.
func TestRunStripeNoFleetFallsBackLocal(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{})
	job := makeJob(2, 4096, 512, 2048)
	want := refRun(job)
	if err := c.RunStripe(job); err != nil {
		t.Fatal(err)
	}
	if !equalFloats(job.Dst, want) {
		t.Fatal("local fallback differs from kernel")
	}
	snap := c.Stats()
	if snap.Counters["dist.local"] != 1 {
		t.Fatalf("dist.local = %d, want 1", snap.Counters["dist.local"])
	}
}

// TestRunStripeFleetDrainFallsBackLocal kills the fleet while a
// stripe is outstanding: the coordinator must steal the job back and
// compute it locally rather than hang.
func TestRunStripeFleetDrainFallsBackLocal(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{LeaseTimeout: 30 * time.Second, HedgeAfter: -1})
	hold := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	var w sync.WaitGroup
	w.Add(1)
	go func() {
		defer w.Done()
		RunWorker(ctx, WorkerConfig{Addr: c.Addr(), Name: "wedge",
			Compute: func(job *edgedetect.StripeJob) { <-hold }})
	}()
	defer func() { cancel(); close(hold); w.Wait() }()
	if !c.WaitWorkers(1, 5*time.Second) {
		t.Fatal("worker never connected")
	}

	job := makeJob(3, 4096, 512, 2048)
	want := refRun(job)
	done := make(chan error, 1)
	go func() { done <- c.RunStripe(job) }()

	// Let the worker lease the stripe, then collapse the fleet: cancel
	// severs the conn (the wedged compute keeps blocking until the
	// deferred release — a drained fleet, not a graceful one).
	time.Sleep(100 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunStripe hung after fleet drain")
	}
	if !equalFloats(job.Dst, want) {
		t.Fatal("post-drain local fallback differs from kernel")
	}
	if c.Stats().Counters["dist.local"] != 1 {
		t.Fatal("drained stripe not counted local")
	}
}

// TestRunStripeHedgesStraggler: with one deliberately wedged worker
// and one healthy one, the hedge monitor must re-queue the straggling
// stripe and the healthy worker's result must win — identical bytes.
func TestRunStripeHedgesStraggler(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{
		LeaseTimeout: 10 * time.Second, // lease never expires in-test
		HedgeAfter:   50 * time.Millisecond,
	})
	var mu sync.Mutex
	wedged := false // first compute call wedges; the rest run clean
	hold := make(chan struct{})
	defer close(hold)
	startWorkers(t, c, 2, func(i int, cfg *WorkerConfig) {
		cfg.Compute = func(job *edgedetect.StripeJob) {
			mu.Lock()
			first := !wedged
			wedged = true
			mu.Unlock()
			if first {
				<-hold
				panic("wedged worker released; result must lose the race")
			}
			job.Run()
		}
	})

	job := makeJob(4, 4096, 512, 2048)
	want := refRun(job)
	if err := c.RunStripe(job); err != nil {
		t.Fatal(err)
	}
	if !equalFloats(job.Dst, want) {
		t.Fatal("hedged result differs from kernel")
	}
	if c.Stats().Counters["dist.hedges"] == 0 {
		t.Fatal("straggler did not trigger a hedge")
	}
}

// TestRunStripeLeaseExpiryRetries: a worker that leases a stripe and
// goes silent past the lease deadline must lose the conn; the retry
// (here: the same worker's clean reconnect) completes the stripe.
func TestRunStripeLeaseExpiryRetries(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{
		LeaseTimeout: 100 * time.Millisecond,
		HedgeAfter:   -1, // isolate the lease path from hedging
	})
	var mu sync.Mutex
	stalled := false
	startWorkers(t, c, 1, func(i int, cfg *WorkerConfig) {
		cfg.Compute = func(job *edgedetect.StripeJob) {
			mu.Lock()
			first := !stalled
			stalled = true
			mu.Unlock()
			if first {
				time.Sleep(400 * time.Millisecond) // well past the lease
			}
			job.Run()
		}
	})

	job := makeJob(5, 4096, 512, 2048)
	want := refRun(job)
	if err := c.RunStripe(job); err != nil {
		t.Fatal(err)
	}
	if !equalFloats(job.Dst, want) {
		t.Fatal("post-lease-expiry result differs from kernel")
	}
	if c.Stats().Counters["dist.retries"] == 0 {
		t.Fatal("lease expiry did not count a retry")
	}
}

// TestRunStripeQuarantinesPoisonedShard: a stripe whose compute
// panics on every worker must settle as a typed DecodeError after
// QuarantineAfter attempts — and the coordinator must stay healthy
// for the next stripe.
func TestRunStripeQuarantinesPoisonedShard(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{QuarantineAfter: 2})
	poison := true
	var mu sync.Mutex
	startWorkers(t, c, 2, func(i int, cfg *WorkerConfig) {
		cfg.Compute = func(job *edgedetect.StripeJob) {
			mu.Lock()
			bad := poison
			mu.Unlock()
			if bad {
				panic(&decoder.DecodeError{Stage: decoder.StageEdgeDetect, Pos: job.Lo,
					Err: errors.New("synthetic poison")})
			}
			job.Run()
		}
	})

	job := makeJob(6, 4096, 512, 2048)
	err := c.RunStripe(job)
	var de *decoder.DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("poisoned stripe returned %v, want DecodeError", err)
	}
	if de.Stage != decoder.StageEdgeDetect || de.Pos != job.Lo {
		t.Fatalf("quarantine lost error anchor: stage=%s pos=%d", de.Stage, de.Pos)
	}

	// The fleet and coordinator must survive quarantine: a clean
	// stripe still decodes remotely.
	mu.Lock()
	poison = false
	mu.Unlock()
	job2 := makeJob(6, 4096, 512, 2048)
	want := refRun(job2)
	if err := c.RunStripe(job2); err != nil {
		t.Fatal(err)
	}
	if !equalFloats(job2.Dst, want) {
		t.Fatal("post-quarantine stripe differs from kernel")
	}
}

// TestRunStripeUnderTransportFaults drives every transport fault kind
// at high severity through a 2-worker fleet: whatever the wire does,
// every stripe must come back bit-identical (retries and local
// fallback are invisible in the bytes).
func TestRunStripeUnderTransportFaults(t *testing.T) {
	for _, kind := range fault.TransportKinds() {
		t.Run(string(kind), func(t *testing.T) {
			c := startCoordinator(t, CoordinatorConfig{
				LeaseTimeout: 500 * time.Millisecond,
				HedgeAfter:   100 * time.Millisecond,
				Transport: fault.TransportConfig{
					Seed:      99,
					Injectors: []fault.Injector{{Kind: kind, Severity: 0.7}},
				},
			})
			startWorkers(t, c, 2, nil)
			const n = 4096
			for i := int64(0); i < 6; i++ {
				job := makeJob(uint64(i+10), n, i*512, (i+1)*512+256)
				want := refRun(job)
				if err := c.RunStripe(job); err != nil {
					t.Fatalf("stripe %d: %v", i, err)
				}
				if !equalFloats(job.Dst, want) {
					t.Fatalf("stripe %d differs under %s", i, kind)
				}
			}
		})
	}
}

// TestCoordinatorShutdownWithInFlight closes the coordinator while
// stripes are leased to a wedged fleet: every RunStripe must complete
// locally (correct bytes), workers must unblock, and no goroutines
// may leak — the distributed mirror of TestPoolStragglerDoesNotStall.
func TestCoordinatorShutdownWithInFlight(t *testing.T) {
	before := runtime.NumGoroutine()

	c, err := NewCoordinator(CoordinatorConfig{LeaseTimeout: 30 * time.Second, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	var workers sync.WaitGroup
	workers.Add(1)
	go func() {
		defer workers.Done()
		RunWorker(ctx, WorkerConfig{Addr: c.Addr(), Name: "wedge",
			Compute: func(job *edgedetect.StripeJob) { <-hold }})
	}()
	if !c.WaitWorkers(1, 5*time.Second) {
		t.Fatal("worker never connected")
	}

	jobs := make([]*edgedetect.StripeJob, 3)
	wants := make([][]float64, len(jobs))
	done := make(chan error, len(jobs))
	for i := range jobs {
		jobs[i] = makeJob(uint64(20+i), 4096, int64(i)*1024, int64(i+1)*1024)
		wants[i] = refRun(jobs[i])
		go func(j *edgedetect.StripeJob) { done <- c.RunStripe(j) }(jobs[i])
	}
	time.Sleep(100 * time.Millisecond) // let the wedged worker lease one
	c.Close()
	for range jobs {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("RunStripe hung across Close")
		}
	}
	for i := range jobs {
		if !equalFloats(jobs[i].Dst, wants[i]) {
			t.Fatalf("stripe %d wrong after shutdown fallback", i)
		}
	}
	c.Close() // double-Close must be safe
	cancel()
	close(hold)
	workers.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}

// TestWorkerKilledMidStream abruptly severs a worker's conn while it
// holds a lease (kill -9 shape: no goodbye frame). The shard must
// re-queue and complete without stalling.
func TestWorkerKilledMidStream(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{LeaseTimeout: 400 * time.Millisecond, HedgeAfter: -1})

	// First worker: wedges inside compute and never sends a frame — the
	// kill (cancel → watchdog severs the conn) happens while it holds
	// the lease, and it stays wedged until the test ends, so no result
	// ever races the re-queue.
	ctx1, cancel1 := context.WithCancel(context.Background())
	var w1 sync.WaitGroup
	w1.Add(1)
	leased := make(chan struct{})
	hold := make(chan struct{})
	go func() {
		defer w1.Done()
		var once sync.Once
		RunWorker(ctx1, WorkerConfig{Addr: c.Addr(), Name: "victim",
			Compute: func(job *edgedetect.StripeJob) {
				once.Do(func() { close(leased) })
				<-hold
			}})
	}()
	defer func() { cancel1(); close(hold); w1.Wait() }()
	if !c.WaitWorkers(1, 5*time.Second) {
		t.Fatal("victim never connected")
	}

	job := makeJob(30, 4096, 512, 2048)
	want := refRun(job)
	done := make(chan error, 1)
	go func() { done <- c.RunStripe(job) }()
	<-leased
	cancel1() // kill: watchdog severs the conn mid-lease, no goodbye frame

	// Second worker arrives and picks up the re-queued shard.
	startWorkers(t, c, 1, nil)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("merge stalled after worker death")
	}
	if !equalFloats(job.Dst, want) {
		t.Fatal("post-death result differs from kernel")
	}
	if c.Stats().Counters["dist.retries"] == 0 {
		t.Fatal("worker death did not count a retry")
	}
}

// TestWorkerReconnectBackoff: a worker pointed at a dead address must
// keep retrying with backoff and exit promptly on cancel.
func TestWorkerReconnectBackoff(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := RunWorker(ctx, WorkerConfig{Addr: "127.0.0.1:1", Name: "lost",
		BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunWorker = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("worker did not exit promptly on cancel")
	}
}

// TestWireRoundTrip pins the frame codec: every message survives
// encode → decode bit-exactly, and corruption of any single byte is
// detected.
func TestWireRoundTrip(t *testing.T) {
	// All-blank stripe (Hi ≤ IntLo), so the shipped window is free-form
	// and the float fields round-trip without the coverage check.
	job := &wireJob{ID: 42, Lo: 100, Hi: 200, IntLo: 200, IntHi: 4084,
		Base: 88, Gap: 4, Win: 8, Guard: 6, Sparse: false, Threshold: 1.5,
		Re: []float64{1, 2.5, math.Pi}, Im: []float64{-1, 0, 3e-9}}
	got, err := decodeJob(job.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != job.ID || got.Lo != job.Lo || got.Hi != job.Hi ||
		got.Threshold != job.Threshold || !equalFloats(got.Re, job.Re) || !equalFloats(got.Im, job.Im) {
		t.Fatal("job did not round-trip")
	}

	res := &wireResult{ID: 7, Mag: []float64{0, 1.25, math.Inf(1)}}
	rgot, err := decodeResult(res.encode())
	if err != nil {
		t.Fatal(err)
	}
	if rgot.ID != 7 || !equalFloats(rgot.Mag, res.Mag) {
		t.Fatal("result did not round-trip")
	}

	se := &wireShardErr{ID: 9, Stage: "edgedetect", Pos: 123, Msg: "boom"}
	sgot, err := decodeShardErr(se.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *sgot != *se {
		t.Fatal("shard error did not round-trip")
	}
}
