// Package dist distributes the sharded differential sweep across
// machines: a coordinator serves the stripe queue over a
// length-prefixed, CRC-guarded TCP protocol, and workers dial in, pull
// stripe assignments, compute them with the same kernels the
// in-process shard pool uses, and stream the magnitudes back for
// deterministic submission-order merge. The coordinator installs
// itself as the decoder's StripeRunner (DecoderConfig.StripeRunner),
// so the merge path — adoption order, seam math, drop blanking — is
// literally the single-machine code; distribution changes where a
// stripe's bytes are computed, never which bytes they are (the
// determinism argument is DESIGN.md §16).
//
// The robustness model: every transport failure is recoverable.
// Dropped connections, lease expiries, corrupt or truncated frames,
// and stragglers all degrade to a re-queue (served by another worker,
// a hedge, or the coordinator's own CPU when the fleet drains), so a
// faulted distributed decode returns the same bits as a clean local
// one. The only failure that surfaces to the decode is a poisoned
// shard — a worker reporting a typed decode error — and that
// quarantines the one shard as lf.DecodeError instead of killing the
// pool.
package dist

import (
	"io"

	"lf/internal/wire"
)

// Wire format: the shared framing from internal/wire under the 'L','F'
// magic. Payload integers are little-endian; float64s travel as
// IEEE-754 bit patterns, so shipped prefix sums and returned
// magnitudes are bit-exact across hosts.
const (
	wireMagic0 = 0x4C // 'L'
	wireMagic1 = 0x46 // 'F'

	// protoVersion gates the handshake: a coordinator refuses workers
	// speaking a different framing or job layout.
	protoVersion = 1

	// maxFramePayload bounds a frame's declared payload so a corrupt
	// length field cannot make the reader allocate gigabytes. Stripe
	// jobs ship ≤ ~stripe+2·margin float64 pairs — far below this.
	maxFramePayload = 64 << 20
)

// proto is this protocol's framing instance; gate's differs only in
// magic and payload cap (internal/gate/wire.go).
var proto = wire.Proto{Name: "dist", Magic0: wireMagic0, Magic1: wireMagic1, MaxPayload: maxFramePayload}

// Message types.
const (
	msgHello    = 1 // worker → coordinator: protoVersion, worker name
	msgWelcome  = 2 // coordinator → worker: protoVersion
	msgPull     = 3 // worker → coordinator: request one job
	msgJob      = 4 // coordinator → worker: one stripe job
	msgResult   = 5 // worker → coordinator: computed magnitudes
	msgShardErr = 6 // worker → coordinator: typed per-shard failure
)

// wireErrf builds a framing-level failure (*wire.Error): bad magic,
// CRC mismatch, oversized payload, truncated frame. The coordinator
// treats it like a dead connection (re-queue and drop the conn); it is
// never fatal.
func wireErrf(format string, args ...any) error {
	return proto.Errf(format, args...)
}

// writeFrame sends one frame. The payload is borrowed, not retained.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	return proto.WriteFrame(w, typ, payload)
}

// readFrame reads and verifies one frame, returning its type and
// payload. Errors distinguish transport failures (returned verbatim,
// e.g. io.EOF, timeouts) from framing violations (*wire.Error).
func readFrame(r io.Reader) (byte, []byte, error) {
	return proto.ReadFrame(r)
}

// wireJob is the on-wire form of one stripe assignment: the job
// geometry plus the minimal prefix-sum window the kernel reads,
// re-based so Re[0]/Im[0] sit at absolute position Base. Sparse is
// always false on the wire — the coordinator densifies remote jobs so
// the result is a pure function of the shipped window (the sparse skip
// tier's coarse blocks are origin-aligned and would shift with the
// shipping offset; dense vs sparse is output-invariant per DESIGN.md
// §12, so densifying changes don't-care zeros only).
type wireJob struct {
	ID           uint64
	Lo, Hi       int64
	IntLo, IntHi int64
	Base         int64
	Gap, Win     int64
	Guard        int64
	Sparse       bool
	Threshold    float64
	Re, Im       []float64
}

func (j *wireJob) encode() []byte {
	var e wire.Enc
	e.U64(j.ID)
	e.I64(j.Lo)
	e.I64(j.Hi)
	e.I64(j.IntLo)
	e.I64(j.IntHi)
	e.I64(j.Base)
	e.I64(j.Gap)
	e.I64(j.Win)
	e.I64(j.Guard)
	if j.Sparse {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.F64(j.Threshold)
	e.Floats(j.Re)
	e.Floats(j.Im)
	return e.B
}

func decodeJob(p []byte) (*wireJob, error) {
	d := wire.NewDec(p)
	j := &wireJob{
		ID: d.U64(), Lo: d.I64(), Hi: d.I64(),
		IntLo: d.I64(), IntHi: d.I64(), Base: d.I64(),
		Gap: d.I64(), Win: d.I64(), Guard: d.I64(),
		Sparse: d.U8() != 0, Threshold: d.F64(),
		Re: d.Floats(),
	}
	j.Im = d.Floats()
	if err := d.Done(); err != nil {
		return nil, err
	}
	if j.Hi < j.Lo || j.Hi-j.Lo > maxFramePayload/8 {
		return nil, wireErrf("job %d: bad range [%d, %d)", j.ID, j.Lo, j.Hi)
	}
	if len(j.Re) != len(j.Im) {
		return nil, wireErrf("job %d: re/im length mismatch %d != %d", j.ID, len(j.Re), len(j.Im))
	}
	if j.Gap < 0 || j.Win <= 0 || j.Guard < 0 {
		return nil, wireErrf("job %d: bad geometry gap=%d win=%d guard=%d", j.ID, j.Gap, j.Win, j.Guard)
	}
	// The kernel reads local indices [ilo−margin−Base, ihi+margin−Base);
	// refuse a job whose shipped window cannot cover its own reads, so a
	// corrupted-but-CRC-lucky frame can never index out of bounds.
	if ilo, ihi := max(j.Lo, j.IntLo), min(j.Hi, j.IntHi); ilo < ihi {
		margin := j.Gap + j.Win
		if ilo-margin < j.Base || ihi+margin-j.Base > int64(len(j.Re)) {
			return nil, wireErrf("job %d: window [%d, %d) does not cover reads", j.ID, j.Base, j.Base+int64(len(j.Re)))
		}
	}
	return j, nil
}

// wireResult carries one computed stripe back: the owned magnitudes.
type wireResult struct {
	ID  uint64
	Mag []float64
}

func (r *wireResult) encode() []byte {
	var e wire.Enc
	e.U64(r.ID)
	e.Floats(r.Mag)
	return e.B
}

func decodeResult(p []byte) (*wireResult, error) {
	d := wire.NewDec(p)
	r := &wireResult{ID: d.U64(), Mag: d.Floats()}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return r, nil
}

// wireShardErr reports a poisoned shard: the worker's compute panicked
// or failed in a way retrying will not fix. Stage/Pos mirror
// decoder.DecodeError so the coordinator can rebuild the typed error.
type wireShardErr struct {
	ID    uint64
	Stage string
	Pos   int64
	Msg   string
}

func (s *wireShardErr) encode() []byte {
	var e wire.Enc
	e.U64(s.ID)
	e.Str(s.Stage)
	e.I64(s.Pos)
	e.Str(s.Msg)
	return e.B
}

func decodeShardErr(p []byte) (*wireShardErr, error) {
	d := wire.NewDec(p)
	s := &wireShardErr{ID: d.U64(), Stage: d.Str(), Pos: d.I64(), Msg: d.Str()}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

// wireHello is the worker's handshake.
type wireHello struct {
	Version uint32
	Name    string
}

func (h *wireHello) encode() []byte {
	var e wire.Enc
	e.U32(h.Version)
	e.Str(h.Name)
	return e.B
}

func decodeHello(p []byte) (*wireHello, error) {
	d := wire.NewDec(p)
	h := &wireHello{Version: d.U32(), Name: d.Str()}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return h, nil
}
