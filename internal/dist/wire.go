// Package dist distributes the sharded differential sweep across
// machines: a coordinator serves the stripe queue over a
// length-prefixed, CRC-guarded TCP protocol, and workers dial in, pull
// stripe assignments, compute them with the same kernels the
// in-process shard pool uses, and stream the magnitudes back for
// deterministic submission-order merge. The coordinator installs
// itself as the decoder's StripeRunner (DecoderConfig.StripeRunner),
// so the merge path — adoption order, seam math, drop blanking — is
// literally the single-machine code; distribution changes where a
// stripe's bytes are computed, never which bytes they are (the
// determinism argument is DESIGN.md §16).
//
// The robustness model: every transport failure is recoverable.
// Dropped connections, lease expiries, corrupt or truncated frames,
// and stragglers all degrade to a re-queue (served by another worker,
// a hedge, or the coordinator's own CPU when the fleet drains), so a
// faulted distributed decode returns the same bits as a clean local
// one. The only failure that surfaces to the decode is a poisoned
// shard — a worker reporting a typed decode error — and that
// quarantines the one shard as lf.DecodeError instead of killing the
// pool.
package dist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Wire format. Every message is one frame:
//
//	magic(2) | type(1) | payloadLen(4, LE) | payload | crc32(4, LE)
//
// The CRC (IEEE) covers type, length, and payload, so a flipped bit
// anywhere in the frame — header or body — is detected before any
// field is trusted. Payload integers are little-endian; float64s
// travel as IEEE-754 bit patterns (math.Float64bits), so shipped
// prefix sums and returned magnitudes are bit-exact across hosts.
const (
	wireMagic0 = 0x4C // 'L'
	wireMagic1 = 0x46 // 'F'

	// protoVersion gates the handshake: a coordinator refuses workers
	// speaking a different framing or job layout.
	protoVersion = 1

	// maxFramePayload bounds a frame's declared payload so a corrupt
	// length field cannot make the reader allocate gigabytes. Stripe
	// jobs ship ≤ ~stripe+2·margin float64 pairs — far below this.
	maxFramePayload = 64 << 20

	frameHeaderLen  = 2 + 1 + 4
	frameTrailerLen = 4
)

// Message types.
const (
	msgHello    = 1 // worker → coordinator: protoVersion, worker name
	msgWelcome  = 2 // coordinator → worker: protoVersion
	msgPull     = 3 // worker → coordinator: request one job
	msgJob      = 4 // coordinator → worker: one stripe job
	msgResult   = 5 // worker → coordinator: computed magnitudes
	msgShardErr = 6 // worker → coordinator: typed per-shard failure
)

// wireError is any framing-level failure: bad magic, CRC mismatch,
// oversized payload, truncated frame. The coordinator treats it like a
// dead connection (re-queue and drop the conn); it is never fatal.
type wireError struct{ msg string }

func (e *wireError) Error() string { return "dist: wire: " + e.msg }

func wireErrf(format string, args ...any) error {
	return &wireError{msg: fmt.Sprintf(format, args...)}
}

// writeFrame sends one frame. The payload is borrowed, not retained.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return wireErrf("payload %d exceeds max %d", len(payload), maxFramePayload)
	}
	buf := make([]byte, frameHeaderLen+len(payload)+frameTrailerLen)
	buf[0], buf[1], buf[2] = wireMagic0, wireMagic1, typ
	binary.LittleEndian.PutUint32(buf[3:], uint32(len(payload)))
	copy(buf[frameHeaderLen:], payload)
	crc := crc32.ChecksumIEEE(buf[2 : frameHeaderLen+len(payload)])
	binary.LittleEndian.PutUint32(buf[frameHeaderLen+len(payload):], crc)
	_, err := w.Write(buf)
	return err
}

// readFrame reads and verifies one frame, returning its type and
// payload. Errors distinguish transport failures (returned verbatim,
// e.g. io.EOF, timeouts) from framing violations (*wireError).
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != wireMagic0 || hdr[1] != wireMagic1 {
		return 0, nil, wireErrf("bad magic %02x%02x", hdr[0], hdr[1])
	}
	n := binary.LittleEndian.Uint32(hdr[3:])
	if n > maxFramePayload {
		return 0, nil, wireErrf("payload length %d exceeds max %d", n, maxFramePayload)
	}
	body := make([]byte, int(n)+frameTrailerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	crc := crc32.ChecksumIEEE(hdr[2:])
	crc = crc32.Update(crc, crc32.IEEETable, body[:n])
	if got := binary.LittleEndian.Uint32(body[n:]); got != crc {
		return 0, nil, wireErrf("crc mismatch on type %d frame", hdr[2])
	}
	return hdr[2], body[:n:n], nil
}

// enc is a little append-based payload encoder.
type enc struct{ b []byte }

func (e *enc) u8(v byte)     { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) floats(v []float64) {
	e.u32(uint32(len(v)))
	for _, f := range v {
		e.f64(f)
	}
}

// dec is the matching consuming decoder; every getter fails softly by
// latching err, so codecs can decode a whole struct and check once.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = wireErrf("truncated payload")
	}
}
func (d *dec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}
func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}
func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}
func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) str() string {
	n := d.u32()
	if d.err != nil || uint32(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
func (d *dec) floats() []float64 {
	n := d.u32()
	if d.err != nil || uint64(len(d.b)) < uint64(n)*8 {
		d.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return wireErrf("%d trailing payload bytes", len(d.b))
	}
	return nil
}

// wireJob is the on-wire form of one stripe assignment: the job
// geometry plus the minimal prefix-sum window the kernel reads,
// re-based so Re[0]/Im[0] sit at absolute position Base. Sparse is
// always false on the wire — the coordinator densifies remote jobs so
// the result is a pure function of the shipped window (the sparse skip
// tier's coarse blocks are origin-aligned and would shift with the
// shipping offset; dense vs sparse is output-invariant per DESIGN.md
// §12, so densifying changes don't-care zeros only).
type wireJob struct {
	ID           uint64
	Lo, Hi       int64
	IntLo, IntHi int64
	Base         int64
	Gap, Win     int64
	Guard        int64
	Sparse       bool
	Threshold    float64
	Re, Im       []float64
}

func (j *wireJob) encode() []byte {
	var e enc
	e.u64(j.ID)
	e.i64(j.Lo)
	e.i64(j.Hi)
	e.i64(j.IntLo)
	e.i64(j.IntHi)
	e.i64(j.Base)
	e.i64(j.Gap)
	e.i64(j.Win)
	e.i64(j.Guard)
	if j.Sparse {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.f64(j.Threshold)
	e.floats(j.Re)
	e.floats(j.Im)
	return e.b
}

func decodeJob(p []byte) (*wireJob, error) {
	d := dec{b: p}
	j := &wireJob{
		ID: d.u64(), Lo: d.i64(), Hi: d.i64(),
		IntLo: d.i64(), IntHi: d.i64(), Base: d.i64(),
		Gap: d.i64(), Win: d.i64(), Guard: d.i64(),
		Sparse: d.u8() != 0, Threshold: d.f64(),
		Re: d.floats(),
	}
	j.Im = d.floats()
	if err := d.done(); err != nil {
		return nil, err
	}
	if j.Hi < j.Lo || j.Hi-j.Lo > maxFramePayload/8 {
		return nil, wireErrf("job %d: bad range [%d, %d)", j.ID, j.Lo, j.Hi)
	}
	if len(j.Re) != len(j.Im) {
		return nil, wireErrf("job %d: re/im length mismatch %d != %d", j.ID, len(j.Re), len(j.Im))
	}
	if j.Gap < 0 || j.Win <= 0 || j.Guard < 0 {
		return nil, wireErrf("job %d: bad geometry gap=%d win=%d guard=%d", j.ID, j.Gap, j.Win, j.Guard)
	}
	// The kernel reads local indices [ilo−margin−Base, ihi+margin−Base);
	// refuse a job whose shipped window cannot cover its own reads, so a
	// corrupted-but-CRC-lucky frame can never index out of bounds.
	if ilo, ihi := max(j.Lo, j.IntLo), min(j.Hi, j.IntHi); ilo < ihi {
		margin := j.Gap + j.Win
		if ilo-margin < j.Base || ihi+margin-j.Base > int64(len(j.Re)) {
			return nil, wireErrf("job %d: window [%d, %d) does not cover reads", j.ID, j.Base, j.Base+int64(len(j.Re)))
		}
	}
	return j, nil
}

// wireResult carries one computed stripe back: the owned magnitudes.
type wireResult struct {
	ID  uint64
	Mag []float64
}

func (r *wireResult) encode() []byte {
	var e enc
	e.u64(r.ID)
	e.floats(r.Mag)
	return e.b
}

func decodeResult(p []byte) (*wireResult, error) {
	d := dec{b: p}
	r := &wireResult{ID: d.u64(), Mag: d.floats()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return r, nil
}

// wireShardErr reports a poisoned shard: the worker's compute panicked
// or failed in a way retrying will not fix. Stage/Pos mirror
// decoder.DecodeError so the coordinator can rebuild the typed error.
type wireShardErr struct {
	ID    uint64
	Stage string
	Pos   int64
	Msg   string
}

func (s *wireShardErr) encode() []byte {
	var e enc
	e.u64(s.ID)
	e.str(s.Stage)
	e.i64(s.Pos)
	e.str(s.Msg)
	return e.b
}

func decodeShardErr(p []byte) (*wireShardErr, error) {
	d := dec{b: p}
	s := &wireShardErr{ID: d.u64(), Stage: d.str(), Pos: d.i64(), Msg: d.str()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// wireHello is the worker's handshake.
type wireHello struct {
	Version uint32
	Name    string
}

func (h *wireHello) encode() []byte {
	var e enc
	e.u32(h.Version)
	e.str(h.Name)
	return e.b
}

func decodeHello(p []byte) (*wireHello, error) {
	d := dec{b: p}
	h := &wireHello{Version: d.u32(), Name: d.str()}
	if err := d.done(); err != nil {
		return nil, err
	}
	return h, nil
}
