// Package pool recycles the large per-epoch scratch buffers the reader
// pipeline burns through: differential-magnitude series, synthesis
// difference arrays, SIC residuals and reconstruction waveforms, and
// capture-container IO blocks. At 25 Msps a single epoch allocates
// several multi-hundred-KiB slices per decode; recycling them through
// sync.Pool keeps the allocator and GC out of the hot path when
// epochs stream through continuously.
//
// Buffers returned by the getters are zeroed over their requested
// length, so callers can rely on clean scratch exactly as if freshly
// allocated. Putting a buffer back is always optional — dropping one
// on an error path merely costs a future allocation.
package pool

import "sync"

// minRetain is the smallest capacity worth recycling. Anything under a
// few KiB is cheaper to allocate fresh than to rendezvous through the
// pool (and pooling tiny slices would pin them as the canonical entry,
// forcing reallocation for every real epoch-sized request).
const minRetain = 1 << 10

var (
	complexPool sync.Pool // *[]complex128
	floatPool   sync.Pool // *[]float64
	bytePool    sync.Pool // *[]byte
	int32Pool   sync.Pool // *[]int32
)

// Complex returns a zeroed []complex128 of length n.
func Complex(n int) []complex128 {
	if v := complexPool.Get(); v != nil {
		buf := *v.(*[]complex128)
		if cap(buf) >= n {
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	return make([]complex128, n)
}

// ComplexUninit returns a []complex128 of length n with unspecified
// contents — for callers that provably overwrite (or never read) every
// element, e.g. a copy destination. Skipping the clear matters: at
// epoch scale the memclr of a multi-MiB recycled buffer is pure memory
// bandwidth spent on values the caller immediately replaces.
func ComplexUninit(n int) []complex128 {
	if v := complexPool.Get(); v != nil {
		buf := *v.(*[]complex128)
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]complex128, n)
}

// PutComplex recycles a buffer obtained from Complex (or anywhere
// else). The caller must not use buf after the call.
func PutComplex(buf []complex128) {
	if cap(buf) >= minRetain {
		complexPool.Put(&buf)
	}
}

// Float returns a zeroed []float64 of length n.
func Float(n int) []float64 {
	if v := floatPool.Get(); v != nil {
		buf := *v.(*[]float64)
		if cap(buf) >= n {
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	return make([]float64, n)
}

// FloatUninit is Float without the clear, for callers that provably
// overwrite every element — e.g. a shard-sweep stripe buffer whose
// kernel writes the full destination range.
func FloatUninit(n int) []float64 {
	if v := floatPool.Get(); v != nil {
		buf := *v.(*[]float64)
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]float64, n)
}

// PutFloat recycles a buffer obtained from Float.
func PutFloat(buf []float64) {
	if cap(buf) >= minRetain {
		floatPool.Put(&buf)
	}
}

// Int32s returns a zeroed []int32 of length n (quantized prefix sums).
func Int32s(n int) []int32 {
	if v := int32Pool.Get(); v != nil {
		buf := *v.(*[]int32)
		if cap(buf) >= n {
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	return make([]int32, n)
}

// Int32sUninit is Int32s without the clear, for callers that provably
// never read unwritten elements.
func Int32sUninit(n int) []int32 {
	if v := int32Pool.Get(); v != nil {
		buf := *v.(*[]int32)
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]int32, n)
}

// PutInt32s recycles a buffer obtained from Int32s.
func PutInt32s(buf []int32) {
	if cap(buf) >= minRetain {
		int32Pool.Put(&buf)
	}
}

// Bytes returns a zeroed []byte of length n (capture-container IO
// blocks).
func Bytes(n int) []byte {
	if v := bytePool.Get(); v != nil {
		buf := *v.(*[]byte)
		if cap(buf) >= n {
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	return make([]byte, n)
}

// PutBytes recycles a buffer obtained from Bytes.
func PutBytes(buf []byte) {
	if cap(buf) >= minRetain {
		bytePool.Put(&buf)
	}
}
