package pool

import "testing"

func TestComplexZeroedAndRecycled(t *testing.T) {
	buf := Complex(2048)
	if len(buf) != 2048 {
		t.Fatalf("len = %d", len(buf))
	}
	for i := range buf {
		buf[i] = complex(1, 1)
	}
	PutComplex(buf)
	again := Complex(1024)
	for i, v := range again {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
}

func TestFloatGrowsWhenPooledTooSmall(t *testing.T) {
	PutFloat(make([]float64, 2048))
	buf := Float(1 << 16)
	if len(buf) != 1<<16 {
		t.Fatalf("len = %d", len(buf))
	}
	for _, v := range buf[:100] {
		if v != 0 {
			t.Fatal("not zeroed")
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	b := Bytes(4096)
	if len(b) != 4096 {
		t.Fatalf("len = %d", len(b))
	}
	b[0] = 0xff
	PutBytes(b)
	c := Bytes(4096)
	if c[0] != 0 {
		t.Fatal("recycled bytes not zeroed")
	}
}

func TestTinyBuffersNotRetained(t *testing.T) {
	// Must not panic or misbehave; small buffers are simply dropped.
	PutFloat(make([]float64, 8))
	PutComplex(nil)
	PutBytes(make([]byte, 16))
}
