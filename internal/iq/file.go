package iq

// Capture serialization: a small binary container so captures can be
// recorded once (from the simulator here, or from an SDR front end in
// a deployment) and replayed through the decoder offline. The format
// is deliberately dumb and stable:
//
//	magic   "LFIQ" (4 bytes)
//	version uint32 (little endian)
//	rate    float64 bits (little endian)
//	start   float64 bits (little endian)
//	count   uint64
//	samples count × (real float64, imag float64), little endian
//
// Everything after the header streams sequentially, so arbitrarily
// long captures read and write in O(1) memory per sample.

import (
	"bufio"
	"encoding/binary"
	"io"
	"math"

	"lf/internal/pool"
)

// fileMagic identifies a capture container.
var fileMagic = [4]byte{'L', 'F', 'I', 'Q'}

// fileVersion is the current container version.
const fileVersion = 1

// maxReasonableSamples guards against corrupt headers allocating
// absurd buffers (16 GiB of samples ≈ 11 minutes at 25 Msps).
const maxReasonableSamples = 1 << 30

// ioChunkSamples is the number of samples marshalled per pooled IO
// block (64 KiB of wire bytes). Batching keeps the per-sample cost at
// a couple of stores instead of a reflective binary.Write round-trip.
const ioChunkSamples = 4096

// WriteTo serializes the capture. It returns the number of bytes
// written.
func (c *Capture) WriteTo(w io.Writer) (int64, error) {
	// Structural check only: non-finite samples are recordable on
	// purpose, so faulted captures replay through the same graceful
	// degradation as a live decode (see Capture.ValidateStructure).
	if err := c.ValidateStructure(); err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(fileMagic); err != nil {
		return n, err
	}
	if err := write(uint32(fileVersion)); err != nil {
		return n, err
	}
	if err := write(c.SampleRate); err != nil {
		return n, err
	}
	if err := write(c.Start); err != nil {
		return n, err
	}
	if err := write(uint64(len(c.Samples))); err != nil {
		return n, err
	}
	// Samples stream out in pooled fixed-size blocks: marshal a chunk
	// with direct little-endian stores, write it, recycle the buffer.
	buf := pool.Bytes(16 * ioChunkSamples)
	defer pool.PutBytes(buf)
	for lo := 0; lo < len(c.Samples); lo += ioChunkSamples {
		hi := lo + ioChunkSamples
		if hi > len(c.Samples) {
			hi = len(c.Samples)
		}
		b := buf[:16*(hi-lo)]
		for i, s := range c.Samples[lo:hi] {
			binary.LittleEndian.PutUint64(b[16*i:], math.Float64bits(real(s)))
			binary.LittleEndian.PutUint64(b[16*i+8:], math.Float64bits(imag(s)))
		}
		wrote, err := bw.Write(b)
		n += int64(wrote)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadCapture deserializes a capture written by WriteTo, materializing
// the whole sample array. For bounded-memory replay of long captures,
// use BlockReader directly and feed the blocks to a streaming decoder.
func ReadCapture(r io.Reader) (*Capture, error) {
	br, err := NewBlockReader(r)
	if err != nil {
		return nil, err
	}
	defer br.Close()
	c := &Capture{
		SampleRate: br.SampleRate(),
		Start:      br.Start(),
		Samples:    make([]complex128, br.Len()),
	}
	if _, err := br.Read(c.Samples); err != nil {
		return nil, err
	}
	if err := c.ValidateStructure(); err != nil {
		return nil, err
	}
	return c, nil
}
