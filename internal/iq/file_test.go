package iq

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"lf/internal/pool"
)

func TestCaptureRoundTrip(t *testing.T) {
	c := &Capture{
		SampleRate: 25e6,
		Start:      1.5,
		Samples:    []complex128{1 + 2i, -3.5 + 0.25i, 0.001 - 9i},
	}
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleRate != c.SampleRate || got.Start != c.Start {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Samples) != len(c.Samples) {
		t.Fatalf("sample count %d", len(got.Samples))
	}
	for i := range c.Samples {
		if got.Samples[i] != c.Samples[i] {
			t.Fatalf("sample %d: %v != %v", i, got.Samples[i], c.Samples[i])
		}
	}
}

func TestCaptureRoundTripProperty(t *testing.T) {
	f := func(rate float64, res, ims []float64) bool {
		if rate <= 0 || rate > 1e12 || len(res) == 0 {
			return true
		}
		n := len(res)
		if len(ims) < n {
			n = len(ims)
		}
		if n == 0 || n > 500 {
			return true
		}
		c := &Capture{SampleRate: rate, Samples: make([]complex128, n)}
		for i := 0; i < n; i++ {
			if isBad(res[i]) || isBad(ims[i]) {
				return true
			}
			c.Samples[i] = complex(res[i], ims[i])
		}
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			return true // invalid capture (e.g. NaN); Validate rejected it
		}
		got, err := ReadCapture(&buf)
		if err != nil {
			return false
		}
		for i := range c.Samples {
			if got.Samples[i] != c.Samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func isBad(x float64) bool { return x != x || x > 1e300 || x < -1e300 }

func TestReadCaptureRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE....................."),
		"truncated": append([]byte("LFIQ"), 1, 0, 0, 0),
	}
	for name, data := range cases {
		if _, err := ReadCapture(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadCaptureRejectsHugeCount(t *testing.T) {
	var buf bytes.Buffer
	c := &Capture{SampleRate: 1, Samples: []complex128{1}}
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the count field (offset: 4 magic + 4 version + 8 rate + 8 start).
	for i := 24; i < 32; i++ {
		data[i] = 0xFF
	}
	if _, err := ReadCapture(bytes.NewReader(data)); err == nil {
		t.Fatal("absurd count accepted")
	}
}

func TestWriteToRejectsInvalid(t *testing.T) {
	c := &Capture{} // empty
	if _, err := c.WriteTo(&strings.Builder{}); err == nil {
		t.Fatal("invalid capture serialized")
	}
}

func TestBlockReaderMatchesReadCapture(t *testing.T) {
	c := &Capture{SampleRate: 25e6, Start: 0.25, Samples: make([]complex128, 10000)}
	for i := range c.Samples {
		c.Samples[i] = complex(float64(i), -float64(i)/3)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	br, err := NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	if br.SampleRate() != c.SampleRate || br.Start() != c.Start || br.Len() != int64(len(c.Samples)) {
		t.Fatalf("header mismatch: rate=%v start=%v len=%d", br.SampleRate(), br.Start(), br.Len())
	}
	// Read in awkward block sizes straddling the internal chunking.
	var got []complex128
	block := make([]complex128, 777)
	for {
		n, err := br.Read(block)
		got = append(got, block[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if br.Remaining() != 0 {
		t.Fatalf("remaining %d after EOF", br.Remaining())
	}
	if len(got) != len(c.Samples) {
		t.Fatalf("read %d samples, want %d", len(got), len(c.Samples))
	}
	for i := range got {
		if got[i] != c.Samples[i] {
			t.Fatalf("sample %d: %v != %v", i, got[i], c.Samples[i])
		}
	}
}

func TestBlockReaderTruncatedPayload(t *testing.T) {
	c := &Capture{SampleRate: 1, Samples: make([]complex128, 64)}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-24] // drop 1.5 samples
	br, err := NewBlockReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	dst := make([]complex128, 64)
	if _, err := br.Read(dst); err == nil {
		t.Fatal("truncated payload read without error")
	}
}

func TestBlockReaderReadBlock(t *testing.T) {
	c := &Capture{SampleRate: 25e6, Samples: make([]complex128, 5000)}
	for i := range c.Samples {
		c.Samples[i] = complex(float64(i), float64(i)/7)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	br, err := NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	var got []complex128
	for {
		blk, err := br.ReadBlock(999)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, blk...)
		pool.PutComplex(blk)
	}
	if len(got) != len(c.Samples) {
		t.Fatalf("read %d samples, want %d", len(got), len(c.Samples))
	}
	for i := range got {
		if got[i] != c.Samples[i] {
			t.Fatalf("sample %d: %v != %v", i, got[i], c.Samples[i])
		}
	}
}
