package iq

// BlockReader streams a serialized capture (the LFIQ container written
// by Capture.WriteTo) without materializing the sample array: the
// header is parsed up front, then Read hands out samples in
// caller-sized blocks. This is the file-replay front end for streaming
// decodes — a multi-second 25 Msps capture feeds a decoder in O(block)
// memory instead of O(capture).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"lf/internal/pool"
)

// BlockReader incrementally decodes the sample payload of an LFIQ
// container. Create one with NewBlockReader; call Read until io.EOF;
// call Close to recycle its internal buffer.
type BlockReader struct {
	br     *bufio.Reader
	rate   float64
	start  float64
	count  int64
	read   int64
	buf    []byte
	closed bool
}

// NewBlockReader parses the container header from r and positions the
// reader at the first sample. The underlying reader must not be used
// concurrently.
func NewBlockReader(r io.Reader) (*BlockReader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("iq: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("iq: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("iq: reading version: %w", err)
	}
	if version != fileVersion {
		return nil, fmt.Errorf("iq: unsupported capture version %d", version)
	}
	b := &BlockReader{br: br}
	if err := binary.Read(br, binary.LittleEndian, &b.rate); err != nil {
		return nil, fmt.Errorf("iq: reading sample rate: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &b.start); err != nil {
		return nil, fmt.Errorf("iq: reading start: %w", err)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("iq: reading count: %w", err)
	}
	if count == 0 || count > maxReasonableSamples {
		return nil, fmt.Errorf("iq: implausible sample count %d", count)
	}
	b.count = int64(count)
	b.buf = pool.Bytes(16 * ioChunkSamples)
	return b, nil
}

// SampleRate returns the capture's ADC rate in samples per second.
func (b *BlockReader) SampleRate() float64 { return b.rate }

// Start returns the capture's start time in seconds.
func (b *BlockReader) Start() float64 { return b.start }

// Len returns the total number of samples in the container.
func (b *BlockReader) Len() int64 { return b.count }

// Remaining returns the number of samples not yet read.
func (b *BlockReader) Remaining() int64 { return b.count - b.read }

// Read fills dst with the next samples, io.Reader style: it returns
// the number of samples decoded and io.EOF once the payload is
// exhausted (never both a positive count and io.EOF). A truncated or
// short payload surfaces as io.ErrUnexpectedEOF.
func (b *BlockReader) Read(dst []complex128) (int, error) {
	if b.read >= b.count {
		return 0, io.EOF
	}
	if rem := b.count - b.read; int64(len(dst)) > rem {
		dst = dst[:rem]
	}
	done := 0
	for done < len(dst) {
		n := len(dst) - done
		if n > ioChunkSamples {
			n = ioChunkSamples
		}
		raw := b.buf[:16*n]
		if _, err := io.ReadFull(b.br, raw); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return done, fmt.Errorf("iq: reading samples %d..%d: %w", b.read, b.read+int64(n), err)
		}
		for i := 0; i < n; i++ {
			re := math.Float64frombits(binary.LittleEndian.Uint64(raw[16*i:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(raw[16*i+8:]))
			dst[done+i] = complex(re, im)
		}
		done += n
		b.read += int64(n)
	}
	return done, nil
}

// ReadBlock decodes up to n samples into a pooled buffer and hands it
// to the caller, ownership included: the buffer comes from the shared
// sample pool, so feeding it to StreamDecoder.PushOwned moves samples
// from file to decoder with no further copies (the pipelined decoder
// enqueues the buffer as-is and recycles it after detection). Returns
// (nil, io.EOF) once the payload is exhausted; any other error follows
// Read's contract, with the samples decoded before the error delivered
// alongside it. Callers that keep a non-empty buffer must recycle it
// with pool.PutComplex themselves.
func (b *BlockReader) ReadBlock(n int) ([]complex128, error) {
	if b.read >= b.count {
		return nil, io.EOF
	}
	if rem := b.count - b.read; int64(n) > rem {
		n = int(rem)
	}
	dst := pool.ComplexUninit(n)
	got, err := b.Read(dst)
	if got == 0 {
		// Only an untouched buffer may go back: a short final read's
		// buffer belongs to the caller — under a pipelined decode its
		// predecessors from this very loop are still queued inside
		// PushOwned, and recycling a buffer the caller is about to push
		// (or has pushed) would let the pool hand the same backing array
		// to a concurrent ComplexUninit and scribble over live samples.
		pool.PutComplex(dst)
		return nil, err
	}
	return dst[:got], err
}

// Close recycles the reader's internal buffer. The reader must not be
// used afterwards.
func (b *BlockReader) Close() error {
	if !b.closed {
		pool.PutBytes(b.buf)
		b.buf = nil
		b.closed = true
	}
	return nil
}
