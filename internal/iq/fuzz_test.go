package iq

import (
	"bytes"
	"io"
	"math/cmplx"
	"testing"
)

// FuzzBlockReader drives header and payload parsing with arbitrary
// bytes: every input must either fail with an error or stream a
// well-formed sample sequence — never panic, never allocate
// unboundedly off a corrupt header.
func FuzzBlockReader(f *testing.F) {
	// Seed corpus: a valid two-sample container, a truncated copy, and
	// a corrupted magic.
	var buf bytes.Buffer
	c := &Capture{SampleRate: 1e6, Samples: []complex128{1 + 2i, -3 - 4i}}
	if _, err := c.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xFF
	f.Add(bad)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := NewBlockReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		if br.Len() <= 0 {
			t.Fatalf("accepted header with non-positive count %d", br.Len())
		}
		dst := make([]complex128, 256)
		total := int64(0)
		for {
			n, err := br.Read(dst)
			total += int64(n)
			if total > br.Len() {
				t.Fatalf("read %d samples past declared count %d", total, br.Len())
			}
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF {
					// Any other error must still be a clean error value.
					_ = err.Error()
				}
				break
			}
		}
		br.Close()
	})
}

// FuzzReadCapture exercises the one-shot reader against the same
// arbitrary inputs: error or a capture that passes through a round
// trip, never a panic.
func FuzzReadCapture(f *testing.F) {
	var buf bytes.Buffer
	c := &Capture{SampleRate: 2e6, Samples: []complex128{5, 6i}}
	if _, err := c.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCapture(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, v := range got.Samples {
			_ = cmplx.IsNaN(v) // decoded samples are just bits; touch them all
		}
	})
}
