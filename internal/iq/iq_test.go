package iq

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestCaptureDuration(t *testing.T) {
	c := &Capture{SampleRate: 1000, Samples: make([]complex128, 2500)}
	if got := c.Duration(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("duration %v, want 2.5", got)
	}
	empty := &Capture{}
	if empty.Duration() != 0 {
		t.Fatal("zero-rate capture should report zero duration")
	}
}

func TestCaptureAtClamps(t *testing.T) {
	c := &Capture{SampleRate: 1, Samples: []complex128{1, 2, 3}}
	if c.At(-1) != 0 || c.At(3) != 0 {
		t.Fatal("out-of-range At should return 0")
	}
	if c.At(1) != 2 {
		t.Fatalf("At(1) = %v", c.At(1))
	}
}

func TestCaptureSliceClamps(t *testing.T) {
	c := &Capture{SampleRate: 1, Samples: []complex128{1, 2, 3, 4}}
	if got := c.Slice(-5, 2); len(got) != 2 || got[0] != 1 {
		t.Fatalf("Slice(-5,2) = %v", got)
	}
	if got := c.Slice(3, 99); len(got) != 1 || got[0] != 4 {
		t.Fatalf("Slice(3,99) = %v", got)
	}
	if got := c.Slice(3, 2); got != nil {
		t.Fatalf("inverted Slice = %v", got)
	}
}

func TestCaptureMean(t *testing.T) {
	c := &Capture{SampleRate: 1, Samples: []complex128{1 + 1i, 3 + 3i}}
	if got := c.Mean(0, 2); got != 2+2i {
		t.Fatalf("Mean = %v", got)
	}
	if got := c.Mean(5, 9); got != 0 {
		t.Fatalf("empty-window Mean = %v", got)
	}
}

func TestCaptureValidate(t *testing.T) {
	cases := []struct {
		name string
		c    Capture
		ok   bool
	}{
		{"valid", Capture{SampleRate: 1, Samples: []complex128{1}}, true},
		{"zero rate", Capture{Samples: []complex128{1}}, false},
		{"empty", Capture{SampleRate: 1}, false},
		{"NaN", Capture{SampleRate: 1, Samples: []complex128{cmplx.NaN()}}, false},
		{"Inf", Capture{SampleRate: 1, Samples: []complex128{cmplx.Inf()}}, false},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestPower(t *testing.T) {
	if got := Power([]complex128{3 + 4i}); math.Abs(got-25) > 1e-12 {
		t.Fatalf("Power = %v, want 25", got)
	}
	if Power(nil) != 0 {
		t.Fatal("Power(nil) should be 0")
	}
}

func TestDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		if math.Abs(db) > 100 {
			return true
		}
		back := DB(Linear(db))
		return math.Abs(back-db) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSNRConversionsInverse(t *testing.T) {
	const edge = 7e-4
	for _, snr := range []float64{0, 5, 10, 20} {
		sigma2 := NoiseSigma2ForSNR(edge, snr)
		if got := SNRdB(edge, sigma2); math.Abs(got-snr) > 1e-9 {
			t.Fatalf("SNR roundtrip: want %v got %v", snr, got)
		}
	}
	if !math.IsInf(SNRdB(1, 0), 1) {
		t.Fatal("zero-noise SNR should be +Inf")
	}
}

func TestSamplesPerBit(t *testing.T) {
	if got := SamplesPerBit(25e6, 100e3); got != 250 {
		t.Fatalf("SamplesPerBit = %v", got)
	}
}

func TestIndexSecondsRoundTrip(t *testing.T) {
	const fs = 25e6
	for _, idx := range []int64{0, 1, 999, 123456789} {
		back := Index(Seconds(idx, fs), fs)
		if back != idx {
			t.Fatalf("index %d -> %d", idx, back)
		}
	}
}
