// Package iq defines the complex baseband sample types shared by the
// whole system: captures (what the reader's ADC produces), power and
// dB conversions, and SNR measurement helpers.
//
// Conventions: samples are complex128 at a fixed sample rate; sample
// indices are int64 so multi-second captures at 25 Msps do not overflow
// 32-bit arithmetic on any platform; power is |x|² in linear units.
package iq

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// Capture is a block of complex baseband samples recorded at a known
// sample rate, as produced by the reader front end. The zero value is
// an empty capture.
type Capture struct {
	// SampleRate is the ADC rate in samples per second.
	SampleRate float64
	// Samples holds the baseband IQ samples. Samples[i] was taken at
	// time Start + i/SampleRate seconds.
	Samples []complex128
	// Start is the capture start time in seconds from the beginning of
	// the experiment (informational; decoding uses sample indices).
	Start float64
}

// Duration returns the capture length in seconds.
func (c *Capture) Duration() float64 {
	if c.SampleRate == 0 {
		return 0
	}
	return float64(len(c.Samples)) / c.SampleRate
}

// Len returns the number of samples.
func (c *Capture) Len() int { return len(c.Samples) }

// At returns sample i, or 0 outside the capture. Decoder windows that
// straddle the capture edges rely on this clamping.
func (c *Capture) At(i int64) complex128 {
	if i < 0 || i >= int64(len(c.Samples)) {
		return 0
	}
	return c.Samples[i]
}

// Slice returns the samples in [lo, hi), clamped to the capture bounds.
func (c *Capture) Slice(lo, hi int64) []complex128 {
	n := int64(len(c.Samples))
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return nil
	}
	return c.Samples[lo:hi]
}

// Mean returns the complex mean of the samples in [lo, hi), clamped.
// It returns 0 for an empty window.
func (c *Capture) Mean(lo, hi int64) complex128 {
	s := c.Slice(lo, hi)
	if len(s) == 0 {
		return 0
	}
	var sum complex128
	for _, v := range s {
		sum += v
	}
	return sum / complex(float64(len(s)), 0)
}

// Validate reports whether the capture is internally consistent,
// including that every sample is finite (what a correctly working
// synthesizer or front end produces).
func (c *Capture) Validate() error {
	if err := c.ValidateStructure(); err != nil {
		return err
	}
	for i, v := range c.Samples {
		if cmplx.IsNaN(v) || cmplx.IsInf(v) {
			return fmt.Errorf("iq: sample %d is not finite", i)
		}
	}
	return nil
}

// ValidateStructure checks only the structural invariants — positive
// sample rate, non-empty samples — without requiring finite values.
// The container IO uses it so impaired captures (an SDR DMA glitch, a
// fault-injection run) can be recorded and replayed: the decoder
// degrades non-finite spans gracefully rather than rejecting them.
func (c *Capture) ValidateStructure() error {
	if c.SampleRate <= 0 {
		return errors.New("iq: capture has non-positive sample rate")
	}
	if len(c.Samples) == 0 {
		return errors.New("iq: capture has no samples")
	}
	return nil
}

// Power returns the average power |x|² of the samples.
func Power(samples []complex128) float64 {
	if len(samples) == 0 {
		return 0
	}
	var p float64
	for _, v := range samples {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	return p / float64(len(samples))
}

// DB converts a linear power ratio to decibels. DB(0) is -Inf.
func DB(linear float64) float64 { return 10 * math.Log10(linear) }

// Linear converts decibels to a linear power ratio.
func Linear(db float64) float64 { return math.Pow(10, db/10) }

// SNRdB returns the signal-to-noise ratio in dB given the signal edge
// magnitude (peak-to-peak amplitude of the backscattered component) and
// the noise variance sigma2.
func SNRdB(edgeMagnitude, sigma2 float64) float64 {
	if sigma2 <= 0 {
		return math.Inf(1)
	}
	return DB(edgeMagnitude * edgeMagnitude / sigma2)
}

// NoiseSigma2ForSNR returns the complex noise variance that yields the
// requested SNR in dB for a given signal edge magnitude. It is the
// inverse of SNRdB.
func NoiseSigma2ForSNR(edgeMagnitude, snrDB float64) float64 {
	return edgeMagnitude * edgeMagnitude / Linear(snrDB)
}

// SamplesPerBit returns the (real-valued) number of ADC samples per bit
// period for a tag transmitting at bitrate bps under sample rate fs.
func SamplesPerBit(fs, bps float64) float64 { return fs / bps }

// Seconds converts a sample index at rate fs to seconds.
func Seconds(idx int64, fs float64) float64 { return float64(idx) / fs }

// Index converts a time in seconds to the nearest sample index at rate fs.
func Index(t, fs float64) int64 { return int64(math.Round(t * fs)) }
