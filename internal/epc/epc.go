// Package epc implements the EPC Gen 2 essentials the system needs:
// 96-bit EPC identifiers, the Gen 2 CRC-5 and CRC-16 checks, and bit
// (de)serialization. The TDMA baseline transmits EPCs in Gen 2-style
// slots; the LF-Backscatter identification protocol of §5.2 transmits
// the same 96-bit EPC + 5-bit CRC per epoch.
package epc

import (
	"fmt"

	"lf/internal/rng"
)

// IDBits is the EPC identifier length in bits.
const IDBits = 96

// CRC5Bits is the Gen 2 CRC-5 length.
const CRC5Bits = 5

// FrameBits is the identification frame length: EPC + CRC-5.
const FrameBits = IDBits + CRC5Bits

// ID is a 96-bit EPC identifier, most significant byte first.
type ID [12]byte

// Random returns a uniformly random EPC.
func Random(src *rng.Source) ID {
	var id ID
	for i := range id {
		v := byte(0)
		for b := 0; b < 8; b++ {
			v = v<<1 | src.Bit()
		}
		id[i] = v
	}
	return id
}

// String formats the EPC as hex.
func (id ID) String() string {
	return fmt.Sprintf("%02x%02x%02x%02x%02x%02x%02x%02x%02x%02x%02x%02x",
		id[0], id[1], id[2], id[3], id[4], id[5], id[6], id[7], id[8], id[9], id[10], id[11])
}

// Bits returns the identifier as 96 bits, MSB first.
func (id ID) Bits() []byte {
	bits := make([]byte, 0, IDBits)
	for _, by := range id {
		for b := 7; b >= 0; b-- {
			bits = append(bits, (by>>uint(b))&1)
		}
	}
	return bits
}

// FromBits reconstructs an ID from 96 bits, MSB first.
func FromBits(bits []byte) (ID, error) {
	var id ID
	if len(bits) != IDBits {
		return id, fmt.Errorf("epc: need %d bits, got %d", IDBits, len(bits))
	}
	for i := 0; i < 12; i++ {
		var v byte
		for b := 0; b < 8; b++ {
			v = v<<1 | (bits[i*8+b] & 1)
		}
		id[i] = v
	}
	return id, nil
}

// CRC5 computes the Gen 2 CRC-5 over a bit sequence (MSB first):
// polynomial x⁵+x³+1, preset 01001₂. The result is returned as 5 bits.
func CRC5(bits []byte) []byte {
	reg := byte(0x09) // preset 01001
	for _, bit := range bits {
		msb := (reg >> 4) & 1
		fb := msb ^ (bit & 1)
		reg = (reg << 1) & 0x1f
		if fb == 1 {
			reg ^= 0x09 // x⁵+x³+1 → taps at bits 3 and 0
		}
	}
	out := make([]byte, CRC5Bits)
	for i := 0; i < CRC5Bits; i++ {
		out[i] = (reg >> uint(CRC5Bits-1-i)) & 1
	}
	return out
}

// CheckCRC5 verifies that the trailing 5 bits of frame are the CRC-5
// of the leading bits.
func CheckCRC5(frame []byte) bool {
	if len(frame) <= CRC5Bits {
		return false
	}
	data := frame[:len(frame)-CRC5Bits]
	crc := CRC5(data)
	for i, b := range frame[len(frame)-CRC5Bits:] {
		if b != crc[i] {
			return false
		}
	}
	return true
}

// Frame returns the identification frame: the EPC bits followed by
// their CRC-5.
func (id ID) Frame() []byte {
	bits := id.Bits()
	return append(bits, CRC5(bits)...)
}

// ParseFrame validates the CRC and extracts the ID from a 101-bit
// identification frame.
func ParseFrame(frame []byte) (ID, bool) {
	if len(frame) != FrameBits || !CheckCRC5(frame) {
		return ID{}, false
	}
	id, err := FromBits(frame[:IDBits])
	if err != nil {
		return ID{}, false
	}
	return id, true
}

// CRC16 computes the Gen 2 / ISO 13239 CRC-16 over a bit sequence (MSB
// first): polynomial x¹⁶+x¹²+x⁵+1 (0x1021), preset 0xFFFF, output
// complemented.
func CRC16(bits []byte) uint16 {
	reg := uint16(0xFFFF)
	for _, bit := range bits {
		msb := (reg >> 15) & 1
		fb := msb ^ uint16(bit&1)
		reg <<= 1
		if fb == 1 {
			reg ^= 0x1021
		}
	}
	return ^reg
}

// CRC16Bits returns the CRC-16 as 16 bits, MSB first.
func CRC16Bits(bits []byte) []byte {
	crc := CRC16(bits)
	out := make([]byte, 16)
	for i := 0; i < 16; i++ {
		out[i] = byte((crc >> uint(15-i)) & 1)
	}
	return out
}

// CheckCRC16 verifies a message whose trailing 16 bits are the CRC-16
// of the leading bits.
func CheckCRC16(frame []byte) bool {
	if len(frame) <= 16 {
		return false
	}
	data := frame[:len(frame)-16]
	crc := CRC16Bits(data)
	for i, b := range frame[len(frame)-16:] {
		if b != crc[i] {
			return false
		}
	}
	return true
}
