package epc

import (
	"testing"
	"testing/quick"

	"lf/internal/rng"
)

func TestIDBitsRoundTrip(t *testing.T) {
	src := rng.New(1)
	for i := 0; i < 50; i++ {
		id := Random(src)
		back, err := FromBits(id.Bits())
		if err != nil {
			t.Fatal(err)
		}
		if back != id {
			t.Fatalf("roundtrip %v -> %v", id, back)
		}
	}
}

func TestFromBitsLength(t *testing.T) {
	if _, err := FromBits(make([]byte, 95)); err == nil {
		t.Fatal("short bit slice accepted")
	}
}

func TestBitsMSBFirst(t *testing.T) {
	id := ID{0x80} // 1000 0000 ...
	bits := id.Bits()
	if bits[0] != 1 {
		t.Fatal("MSB should come first")
	}
	for i := 1; i < 16; i++ {
		if bits[i] != 0 {
			t.Fatalf("bit %d = %d", i, bits[i])
		}
	}
}

func TestCRC5KnownProperties(t *testing.T) {
	// Appending the CRC makes the frame verify; flipping any single bit
	// breaks it.
	src := rng.New(2)
	data := src.Bits(96)
	frame := append(append([]byte{}, data...), CRC5(data)...)
	if !CheckCRC5(frame) {
		t.Fatal("fresh CRC-5 frame failed its own check")
	}
	for i := range frame {
		frame[i] ^= 1
		if CheckCRC5(frame) {
			t.Fatalf("single-bit error at %d undetected by CRC-5", i)
		}
		frame[i] ^= 1
	}
}

func TestCRC5Deterministic(t *testing.T) {
	a := CRC5([]byte{1, 0, 1, 1, 0})
	b := CRC5([]byte{1, 0, 1, 1, 0})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("CRC-5 not deterministic")
		}
	}
	c := CRC5([]byte{1, 0, 1, 1, 1})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different messages share a CRC-5 (suspicious for adjacent inputs)")
	}
}

func TestFrameParse(t *testing.T) {
	src := rng.New(3)
	id := Random(src)
	frame := id.Frame()
	if len(frame) != FrameBits {
		t.Fatalf("frame length %d", len(frame))
	}
	got, ok := ParseFrame(frame)
	if !ok || got != id {
		t.Fatalf("ParseFrame = %v, %v", got, ok)
	}
	// Corrupt a payload bit: parse must fail.
	frame[10] ^= 1
	if _, ok := ParseFrame(frame); ok {
		t.Fatal("corrupted frame accepted")
	}
	if _, ok := ParseFrame(frame[:50]); ok {
		t.Fatal("truncated frame accepted")
	}
}

func TestCRC16DetectsErrors(t *testing.T) {
	src := rng.New(4)
	f := func(n uint8, flip uint16) bool {
		length := int(n%120) + 17
		data := src.Bits(length)
		frame := append(append([]byte{}, data...), CRC16Bits(data)...)
		if !CheckCRC16(frame) {
			return false
		}
		frame[int(flip)%len(frame)] ^= 1
		return !CheckCRC16(frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// ISO 13239 / Gen 2 CRC-16 of the ASCII digits "123456789"
	// (bit-reversed-per-byte conventions differ; this implementation is
	// MSB-first per bit, preset 0xFFFF, complemented — the standard
	// "CRC-16/GENIBUS" check value for "123456789" is 0xD64E).
	var bits []byte
	for _, c := range []byte("123456789") {
		for b := 7; b >= 0; b-- {
			bits = append(bits, (c>>uint(b))&1)
		}
	}
	if got := CRC16(bits); got != 0xD64E {
		t.Fatalf("CRC16(123456789) = %#04x, want 0xd64e", got)
	}
}

func TestCheckCRC5TooShort(t *testing.T) {
	if CheckCRC5([]byte{1, 0, 1}) {
		t.Fatal("too-short frame accepted")
	}
}

func TestRandomIDsDistinct(t *testing.T) {
	src := rng.New(5)
	seen := map[ID]bool{}
	for i := 0; i < 100; i++ {
		id := Random(src)
		if seen[id] {
			t.Fatal("duplicate random EPC")
		}
		seen[id] = true
	}
}

func TestIDString(t *testing.T) {
	id := ID{0xde, 0xad, 0xbe, 0xef}
	s := id.String()
	if len(s) != 24 || s[:8] != "deadbeef" {
		t.Fatalf("String() = %q", s)
	}
}
