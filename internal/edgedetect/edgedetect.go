// Package edgedetect implements reliable signal-edge extraction from
// the reader's IQ capture (§3.1). Amplitude-only edge detection is
// brittle when many tags chatter in the background, so edges are
// detected on the IQ *differential* ΔS(t) = S(t⁺) − S(t⁻): subtracting
// the received vector after and before a candidate edge cancels the
// contribution of every tag that did not toggle there.
package edgedetect

import (
	"fmt"

	"lf/internal/dsp"
	"lf/internal/iq"
	"lf/internal/pool"
	"lf/internal/work"
)

// Config tunes the detector.
type Config struct {
	// Gap is the number of samples skipped on each side of a candidate
	// edge before averaging starts; it should cover the edge
	// transition itself (the reader's ~3-sample ramp).
	Gap int64
	// Win is the number of samples averaged on each side for the
	// initial detection sweep. Kept small so that neighbouring tags'
	// edges rarely fall inside the window; the refinement pass then
	// widens windows adaptively up to the actual neighbouring edges,
	// which is the paper's "use the points between the previous edge
	// and the current edge" averaging.
	Win int64
	// MaxWin caps the refinement window width.
	MaxWin int64
	// ThresholdFactor scales the noise floor (median differential
	// magnitude) into the peak detection threshold.
	ThresholdFactor float64
	// MinSpacing is the non-maximum-suppression radius in samples;
	// edges closer than this merge into one (collided) edge.
	MinSpacing int64
	// CoalesceDist groups detected peaks closer than this many samples
	// into a single collided edge whose differential is measured with
	// windows outside the whole group. Peaks nearer than ~2·Gap+Win
	// cannot be measured independently anyway — each one's averaging
	// window overlaps the other's transition ramp, biasing both
	// differentials — so treating them as one collision (and letting
	// the IQ lattice machinery separate the contributions) is both
	// cleaner and faithful to the paper's collision model.
	CoalesceDist int64
	// Parallelism bounds the worker pool for the differential sweep and
	// the peak scan (0 = all cores, 1 = serial). The capture is split
	// into chunks whose seams read across chunk boundaries, so the
	// detected edge set is bit-identical at any setting.
	Parallelism int
}

// DefaultConfig returns detector settings matched to the default reader
// (25 Msps, 3-sample edges).
func DefaultConfig() Config {
	return Config{
		Gap:             2,
		Win:             3,
		MaxWin:          32,
		ThresholdFactor: 4.0,
		MinSpacing:      5,
		CoalesceDist:    10,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Gap < 1 || c.Win < 1 || c.MaxWin < c.Win || c.MinSpacing < 1 {
		return fmt.Errorf("edgedetect: invalid config %+v", c)
	}
	if c.ThresholdFactor <= 1 {
		return fmt.Errorf("edgedetect: threshold factor %v must exceed 1", c.ThresholdFactor)
	}
	return nil
}

// Edge is one detected signal edge (possibly a coalesced group of
// transitions too close to measure independently).
type Edge struct {
	// Pos is the sample index of the edge centre (strength-weighted
	// over the group when coalesced).
	Pos int64
	// Diff is the refined IQ differential across the edge. For a
	// single tag toggling, Diff ≈ ±h (the tag's channel coefficient);
	// for k colliding tags it is a ±-combination of their
	// coefficients.
	Diff complex128
	// Strength is |Diff|.
	Strength float64
	// First and Last bound the underlying peak group; Last−First is 0
	// for a lone transition.
	First, Last int64
	// Peaks is the number of underlying detector peaks (≥2 suggests a
	// collision even before IQ analysis).
	Peaks int
}

// Detector detects edges over one capture and provides differential
// measurement at arbitrary positions (used later by the Viterbi stage
// to take soft observations at slots where no edge was detected).
type Detector struct {
	cfg    Config
	prefix *dsp.Prefix
	floor  float64
	edges  []Edge
}

// New builds a detector over a capture and runs detection. The capture
// must be non-empty.
func New(capture *iq.Capture, cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := capture.Validate(); err != nil {
		return nil, err
	}
	workers := work.Resolve(cfg.Parallelism)
	d := &Detector{cfg: cfg, prefix: dsp.NewPrefix(capture.Samples)}
	mag := pool.Float(len(capture.Samples))
	d.prefix.DifferentialSeriesInto(mag, cfg.Gap, cfg.Win, workers)
	// Positions whose averaging windows fall off the capture compare a
	// clamped (empty) window against signal and read as huge phantom
	// edges; blank the margins.
	margin := int(cfg.Gap + cfg.Win)
	for i := 0; i < margin && i < len(mag); i++ {
		mag[i] = 0
		mag[len(mag)-1-i] = 0
	}
	d.floor = dsp.NoiseFloor(mag)
	threshold := d.floor * cfg.ThresholdFactor
	// Guard against a (near-)noiseless capture: the median floor is ~0
	// there and numerical dust would detect as edges. Any real edge is
	// within a factor ~20 of the strongest one (coalesced sums above,
	// the weakest tag below), so a small fraction of the maximum is a
	// safe absolute lower bound.
	var maxMag float64
	for _, v := range mag {
		if v > maxMag {
			maxMag = v
		}
	}
	if min := 0.05 * maxMag; threshold < min {
		threshold = min
	}
	peaks := dsp.FindPeaksParallel(mag, threshold, cfg.MinSpacing, workers)
	centroidPeaks(mag, peaks, cfg.Gap, d.floor)
	pool.PutFloat(mag)
	d.edges = d.refine(coalesce(peaks, cfg.CoalesceDist))
	return d, nil
}

// group is a run of peaks closer than CoalesceDist.
type group struct {
	first, last int64
	pos         int64 // strength-weighted centre
	peaks       int
}

// coalesce merges peaks into groups.
func coalesce(peaks []dsp.Peak, dist int64) []group {
	var groups []group
	for i := 0; i < len(peaks); {
		j := i
		for j+1 < len(peaks) && peaks[j+1].Pos-peaks[j].Pos < dist {
			j++
		}
		var wsum, psum float64
		for k := i; k <= j; k++ {
			wsum += peaks[k].Value
			psum += peaks[k].Value * float64(peaks[k].Pos)
		}
		g := group{first: peaks[i].Pos, last: peaks[j].Pos, peaks: j - i + 1}
		if wsum > 0 {
			g.pos = int64(psum/wsum + 0.5)
		} else {
			g.pos = (g.first + g.last) / 2
		}
		groups = append(groups, g)
		i = j + 1
	}
	return groups
}

// centroidPeaks refines each peak position to the floor-subtracted
// magnitude centroid of its plateau. The differential magnitude is
// flat for ~±Gap samples around the true edge centre (both averaging
// windows clear the ramp anywhere on the plateau), so the raw argmax
// jitters by a few samples under noise; the centroid is far steadier,
// which matters downstream — the stream walker's period tracking feeds
// on these positions.
func centroidPeaks(mag []float64, peaks []dsp.Peak, gap int64, floor float64) {
	n := int64(len(mag))
	for pi := range peaks {
		p := &peaks[pi]
		var wsum, psum float64
		span := gap + 2
		for off := -span; off <= span; off++ {
			i := p.Pos + off
			if i < 0 || i >= n {
				continue
			}
			w := mag[i] - floor
			if w <= 0 {
				continue
			}
			wsum += w
			psum += w * float64(i)
		}
		if wsum > 0 {
			p.Pos = int64(psum/wsum + 0.5)
		}
	}
}

// refine computes each edge group's differential with windows that
// start outside the group's extent and extend up to (but not into) the
// neighbouring groups, averaging over as many clean samples as
// available on each side — the paper's "points between the previous
// edge and the current edge" averaging.
func (d *Detector) refine(groups []group) []Edge {
	edges := make([]Edge, 0, len(groups))
	for i, g := range groups {
		before := d.cfg.MaxWin
		after := d.cfg.MaxWin
		if i > 0 {
			gapToPrev := g.first - groups[i-1].last - 2*d.cfg.Gap
			if gapToPrev < before {
				before = gapToPrev
			}
		}
		if i+1 < len(groups) {
			gapToNext := groups[i+1].first - g.last - 2*d.cfg.Gap
			if gapToNext < after {
				after = gapToNext
			}
		}
		if before < 1 {
			before = 1
		}
		if after < 1 {
			after = 1
		}
		a := d.prefix.Mean(g.last+d.cfg.Gap, g.last+d.cfg.Gap+after)
		b := d.prefix.Mean(g.first-d.cfg.Gap-before, g.first-d.cfg.Gap)
		diff := a - b
		edges = append(edges, Edge{
			Pos: g.pos, Diff: diff, Strength: dsp.Abs(diff),
			First: g.first, Last: g.last, Peaks: g.peaks,
		})
	}
	return edges
}

// Edges returns the detected edges in increasing position.
func (d *Detector) Edges() []Edge { return d.edges }

// Release recycles the detector's prefix-sum buffer into the shared
// scratch pool. The detector must not be used for measurement
// (MeasureAt, MeasureAtClean, refinement) afterwards; Edges and
// NoiseFloor stay valid. Calling Release is optional.
func (d *Detector) Release() {
	if d.prefix != nil {
		d.prefix.Release()
		d.prefix = nil
	}
}

// NoiseFloor returns the estimated background differential magnitude.
func (d *Detector) NoiseFloor() float64 { return d.floor }

// MeasureAt returns the IQ differential at an arbitrary sample position
// using the default windows — the soft observation for slots where no
// edge was detected.
func (d *Detector) MeasureAt(pos int64) complex128 {
	return d.prefix.Differential(pos, d.cfg.Gap, d.cfg.Win)
}

// MeasureAtClean is like MeasureAt but with wider windows, for slots
// known to be far from other activity.
func (d *Detector) MeasureAtClean(pos int64) complex128 {
	a := d.prefix.Mean(pos+d.cfg.Gap, pos+d.cfg.Gap+d.cfg.MaxWin)
	b := d.prefix.Mean(pos-d.cfg.Gap-d.cfg.MaxWin, pos-d.cfg.Gap)
	return a - b
}

// NearestEdge returns the index of the edge closest to pos within
// maxDist, or -1. Edges are sorted by position so this is a binary
// search.
func (d *Detector) NearestEdge(pos, maxDist int64) int {
	lo, hi := 0, len(d.edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.edges[mid].Pos < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	best, bestDist := -1, maxDist+1
	for _, i := range []int{lo - 1, lo} {
		if i < 0 || i >= len(d.edges) {
			continue
		}
		dist := d.edges[i].Pos - pos
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}
