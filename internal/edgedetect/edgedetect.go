// Package edgedetect implements reliable signal-edge extraction from
// the reader's IQ capture (§3.1). Amplitude-only edge detection is
// brittle when many tags chatter in the background, so edges are
// detected on the IQ *differential* ΔS(t) = S(t⁺) − S(t⁻): subtracting
// the received vector after and before a candidate edge cancels the
// contribution of every tag that did not toggle there.
package edgedetect

import (
	"fmt"

	"lf/internal/iq"
)

// Config tunes the detector.
type Config struct {
	// Gap is the number of samples skipped on each side of a candidate
	// edge before averaging starts; it should cover the edge
	// transition itself (the reader's ~3-sample ramp).
	Gap int64
	// Win is the number of samples averaged on each side for the
	// initial detection sweep. Kept small so that neighbouring tags'
	// edges rarely fall inside the window; the refinement pass then
	// widens windows adaptively up to the actual neighbouring edges,
	// which is the paper's "use the points between the previous edge
	// and the current edge" averaging.
	Win int64
	// MaxWin caps the refinement window width.
	MaxWin int64
	// ThresholdFactor scales the noise floor (median differential
	// magnitude) into the peak detection threshold.
	ThresholdFactor float64
	// MinSpacing is the non-maximum-suppression radius in samples;
	// edges closer than this merge into one (collided) edge.
	MinSpacing int64
	// CoalesceDist groups detected peaks closer than this many samples
	// into a single collided edge whose differential is measured with
	// windows outside the whole group. Peaks nearer than ~2·Gap+Win
	// cannot be measured independently anyway — each one's averaging
	// window overlaps the other's transition ramp, biasing both
	// differentials — so treating them as one collision (and letting
	// the IQ lattice machinery separate the contributions) is both
	// cleaner and faithful to the paper's collision model.
	CoalesceDist int64
	// Parallelism bounds the worker pool for the differential sweep and
	// the peak scan (0 = all cores, 1 = serial). The capture is split
	// into chunks whose seams read across chunk boundaries, so the
	// detected edge set is bit-identical at any setting.
	Parallelism int
	// DenseSweep forces the dense differential sweep even after
	// calibration, disabling the coarse-to-fine skip (DESIGN.md §12).
	// The detected edge set is bit-identical either way; the knob
	// exists for A/B benchmarking and debugging.
	DenseSweep bool
}

// DefaultConfig returns detector settings matched to the default reader
// (25 Msps, 3-sample edges).
func DefaultConfig() Config {
	return Config{
		Gap:             2,
		Win:             3,
		MaxWin:          32,
		ThresholdFactor: 4.0,
		MinSpacing:      5,
		CoalesceDist:    10,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Gap < 1 || c.Win < 1 || c.MaxWin < c.Win || c.MinSpacing < 1 {
		return fmt.Errorf("edgedetect: invalid config %+v", c)
	}
	if c.ThresholdFactor <= 1 {
		return fmt.Errorf("edgedetect: threshold factor %v must exceed 1", c.ThresholdFactor)
	}
	return nil
}

// Edge is one detected signal edge (possibly a coalesced group of
// transitions too close to measure independently).
type Edge struct {
	// Pos is the sample index of the edge centre (strength-weighted
	// over the group when coalesced).
	Pos int64
	// Diff is the refined IQ differential across the edge. For a
	// single tag toggling, Diff ≈ ±h (the tag's channel coefficient);
	// for k colliding tags it is a ±-combination of their
	// coefficients.
	Diff complex128
	// Strength is |Diff|.
	Strength float64
	// First and Last bound the underlying peak group; Last−First is 0
	// for a lone transition.
	First, Last int64
	// Peaks is the number of underlying detector peaks (≥2 suggests a
	// collision even before IQ analysis).
	Peaks int
}

// Detector detects edges over one capture and provides differential
// measurement at arbitrary positions (used later by the Viterbi stage
// to take soft observations at slots where no edge was detected). It
// is the batch façade over the incremental Stream: the whole capture
// is pushed as one block, so batch and streaming detection share one
// pipeline by construction.
type Detector struct {
	cfg    Config
	stream *Stream
	floor  float64
	edges  []Edge
}

// New builds a detector over a capture and runs detection. The capture
// must be non-empty.
func New(capture *iq.Capture, cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := capture.Validate(); err != nil {
		return nil, err
	}
	s, err := NewStream(StreamConfig{Config: cfg})
	if err != nil {
		return nil, err
	}
	if err := s.Push(capture.Samples); err != nil {
		return nil, err
	}
	if err := s.Close(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, stream: s, floor: s.NoiseFloor(), edges: s.Edges()}, nil
}

// Edges returns the detected edges in increasing position.
func (d *Detector) Edges() []Edge { return d.edges }

// Release recycles the detector's sample-proportional buffers into the
// shared scratch pool. The detector must not be used for measurement
// (MeasureAt, MeasureAtClean) afterwards; Edges and NoiseFloor stay
// valid. Calling Release is optional.
func (d *Detector) Release() {
	if d.stream != nil {
		d.stream.Release()
		d.stream = nil
	}
}

// NoiseFloor returns the estimated background differential magnitude.
func (d *Detector) NoiseFloor() float64 { return d.floor }

// MeasureAt returns the IQ differential at an arbitrary sample position
// using the default windows — the soft observation for slots where no
// edge was detected.
func (d *Detector) MeasureAt(pos int64) complex128 {
	return d.stream.MeasureAt(pos)
}

// MeasureAtClean is like MeasureAt but with wider windows, for slots
// known to be far from other activity.
func (d *Detector) MeasureAtClean(pos int64) complex128 {
	return d.stream.MeasureAtClean(pos)
}

// NearestEdge returns the index of the edge closest to pos within
// maxDist, or -1. Edges are sorted by position so this is a binary
// search.
func (d *Detector) NearestEdge(pos, maxDist int64) int {
	lo, hi := 0, len(d.edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.edges[mid].Pos < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	best, bestDist := -1, maxDist+1
	for _, i := range []int{lo - 1, lo} {
		if i < 0 || i >= len(d.edges) {
			continue
		}
		dist := d.edges[i].Pos - pos
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}
