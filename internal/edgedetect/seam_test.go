package edgedetect

import (
	"reflect"
	"testing"

	"lf/internal/tag"
	"lf/internal/work"
)

// TestChunkSeamEdgeDetectedOnce plants edges exactly on the chunk
// boundaries the parallel sweep splits the capture at, and checks the
// seam handling: each edge is detected exactly once (not dropped at a
// seam, not double-counted by adjacent chunks), and the parallel edge
// list is bit-identical to the serial one.
func TestChunkSeamEdgeDetectedOnce(t *testing.T) {
	const (
		sampleRate = 25e6
		workers    = 4
	)
	// Size the capture to exactly `workers` minimum-size chunks so every
	// interior boundary is a real seam at any MinChunk setting.
	n := workers * work.MinChunk
	duration := float64(n) / sampleRate
	bounds := work.Bounds(workers, n)
	if len(bounds) != workers+1 {
		t.Fatalf("Bounds(%d, %d) = %v, want %d chunks", workers, n, bounds, workers)
	}
	// One toggle per interior seam.
	var toggles []tag.Toggle
	state := byte(1)
	for _, seam := range bounds[1 : len(bounds)-1] {
		toggles = append(toggles, tag.Toggle{Time: float64(seam) / sampleRate, State: state})
		state = 1 - state
	}
	h := complex(8e-4, -3e-4)
	cap := capture(t, h, 0, toggles, duration)

	scfg := DefaultConfig()
	scfg.Parallelism = 1
	serialDet, err := New(cap, scfg)
	if err != nil {
		t.Fatal(err)
	}
	serial := serialDet.Edges()

	pcfg := DefaultConfig()
	pcfg.Parallelism = workers
	parallelDet, err := New(cap, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel := parallelDet.Edges()

	if len(parallel) != len(toggles) {
		t.Fatalf("parallel detected %d edges, want %d (one per seam): %+v", len(parallel), len(toggles), parallel)
	}
	for i, e := range parallel {
		want := int64(bounds[i+1])
		if d := e.Pos - want; d < -3 || d > 3 {
			t.Errorf("edge %d at sample %d, want ~%d (chunk seam)", i, e.Pos, want)
		}
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel edge list diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if serialDet.NoiseFloor() != parallelDet.NoiseFloor() {
		t.Fatalf("noise floor diverged: serial %v, parallel %v", serialDet.NoiseFloor(), parallelDet.NoiseFloor())
	}
}
