package edgedetect

import (
	"math/cmplx"
	"testing"

	"lf/internal/channel"
	"lf/internal/iq"
	"lf/internal/reader"
	"lf/internal/rng"
	"lf/internal/tag"
)

// capture synthesizes a capture with the given toggles for one tag of
// coefficient h, with optional noise.
func capture(t *testing.T, h complex128, sigma2 float64, toggles []tag.Toggle, duration float64) *iq.Capture {
	t.Helper()
	p := channel.DefaultParams()
	p.NoiseSigma2 = sigma2
	var noise *rng.Source
	if sigma2 > 0 {
		noise = rng.New(7)
	}
	ch := channel.NewModelFromCoeffs(p, []complex128{h}, noise)
	em := &tag.Emission{TagID: 0, BitPeriod: 10e-6, Bits: []byte{1}, Toggles: toggles}
	cfg := reader.EpochConfig{SampleRate: 25e6, EdgeSamples: 3, Duration: duration}
	ep, err := reader.Synthesize(ch, []*tag.Emission{em}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ep.Capture
}

func TestDetectSingleEdge(t *testing.T) {
	h := complex(8e-4, -3e-4)
	cap := capture(t, h, 2.5e-9, []tag.Toggle{{Time: 40e-6, State: 1}}, 80e-6)
	det, err := New(cap, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	edges := det.Edges()
	if len(edges) != 1 {
		t.Fatalf("detected %d edges, want 1", len(edges))
	}
	if d := edges[0].Pos - 1000; d < -3 || d > 3 {
		t.Fatalf("edge at %d, want ~1000", edges[0].Pos)
	}
	if cmplx.Abs(edges[0].Diff-h) > 0.15*cmplx.Abs(h) {
		t.Fatalf("edge differential %v, want ~%v", edges[0].Diff, h)
	}
	if edges[0].Peaks != 1 {
		t.Fatalf("lone edge reported %d peaks", edges[0].Peaks)
	}
}

func TestFallingEdgeNegativeDiff(t *testing.T) {
	h := complex(8e-4, 0)
	cap := capture(t, h, 0, []tag.Toggle{
		{Time: 20e-6, State: 1},
		{Time: 50e-6, State: 0},
	}, 80e-6)
	det, err := New(cap, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	edges := det.Edges()
	if len(edges) != 2 {
		t.Fatalf("edges = %d", len(edges))
	}
	if real(edges[0].Diff) < 0 || real(edges[1].Diff) > 0 {
		t.Fatalf("polarities wrong: %v, %v", edges[0].Diff, edges[1].Diff)
	}
	if cmplx.Abs(edges[1].Diff+h) > 0.15*cmplx.Abs(h) {
		t.Fatalf("falling diff %v, want ~%v", edges[1].Diff, -h)
	}
}

func TestPureNoiseYieldsFewEdges(t *testing.T) {
	cap := capture(t, 0, 2.5e-9, nil, 200e-6)
	det, err := New(cap, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 5000 samples of pure noise: the 4σ-style threshold admits at
	// most a stray detection or two.
	if len(det.Edges()) > 3 {
		t.Fatalf("noise produced %d spurious edges", len(det.Edges()))
	}
}

func TestCoalesceCloseEdges(t *testing.T) {
	// Two tags toggling 6 samples apart: one coalesced edge whose
	// differential is the sum.
	p := channel.DefaultParams()
	p.NoiseSigma2 = 0
	h1, h2 := complex(7e-4, 2e-4), complex(-2e-4, 8e-4)
	ch := channel.NewModelFromCoeffs(p, []complex128{h1, h2}, nil)
	mk := func(id int, at float64) *tag.Emission {
		return &tag.Emission{TagID: id, BitPeriod: 10e-6, Bits: []byte{1},
			Toggles: []tag.Toggle{{Time: at, State: 1}}}
	}
	cfg := reader.EpochConfig{SampleRate: 25e6, EdgeSamples: 3, Duration: 60e-6}
	ep, err := reader.Synthesize(ch, []*tag.Emission{mk(0, 30e-6), mk(1, 30e-6+6.0/25e6)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(ep.Capture, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	edges := det.Edges()
	if len(edges) != 1 {
		t.Fatalf("got %d edges, want 1 coalesced", len(edges))
	}
	if edges[0].Peaks < 1 {
		t.Fatal("peak count lost")
	}
	want := h1 + h2
	if cmplx.Abs(edges[0].Diff-want) > 0.15*cmplx.Abs(want) {
		t.Fatalf("coalesced diff %v, want ~%v", edges[0].Diff, want)
	}
}

func TestSeparateEdgesBeyondCoalesce(t *testing.T) {
	p := channel.DefaultParams()
	p.NoiseSigma2 = 0
	h := complex(7e-4, 0)
	ch := channel.NewModelFromCoeffs(p, []complex128{h, h}, nil)
	mk := func(id int, at float64) *tag.Emission {
		return &tag.Emission{TagID: id, BitPeriod: 10e-6, Bits: []byte{1},
			Toggles: []tag.Toggle{{Time: at, State: 1}}}
	}
	gap := float64(DefaultConfig().CoalesceDist+4) / 25e6
	cfg := reader.EpochConfig{SampleRate: 25e6, EdgeSamples: 3, Duration: 60e-6}
	ep, err := reader.Synthesize(ch, []*tag.Emission{mk(0, 30e-6), mk(1, 30e-6+gap)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(ep.Capture, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Edges()) != 2 {
		t.Fatalf("got %d edges, want 2 distinct", len(det.Edges()))
	}
}

func TestMeasureAtQuietPosition(t *testing.T) {
	h := complex(8e-4, 0)
	cap := capture(t, h, 0, []tag.Toggle{{Time: 20e-6, State: 1}}, 80e-6)
	det, err := New(cap, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Far from the edge the differential is ~zero.
	if got := det.MeasureAt(1500); cmplx.Abs(got) > 1e-9 {
		t.Fatalf("quiet measurement %v", got)
	}
	// At the edge it recovers h.
	if got := det.MeasureAt(500); cmplx.Abs(got-h) > 0.2*cmplx.Abs(h) {
		t.Fatalf("edge measurement %v", got)
	}
}

func TestNearestEdge(t *testing.T) {
	h := complex(8e-4, 0)
	cap := capture(t, h, 0, []tag.Toggle{
		{Time: 20e-6, State: 1},
		{Time: 40e-6, State: 0},
	}, 80e-6)
	det, err := New(cap, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if idx := det.NearestEdge(505, 20); idx != 0 {
		t.Fatalf("NearestEdge(505) = %d", idx)
	}
	if idx := det.NearestEdge(990, 20); idx != 1 {
		t.Fatalf("NearestEdge(990) = %d", idx)
	}
	if idx := det.NearestEdge(750, 20); idx != -1 {
		t.Fatalf("NearestEdge far from both = %d", idx)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Gap = 0
	if bad.Validate() == nil {
		t.Fatal("zero gap accepted")
	}
	bad = DefaultConfig()
	bad.ThresholdFactor = 0.5
	if bad.Validate() == nil {
		t.Fatal("sub-unity threshold accepted")
	}
	if _, err := New(&iq.Capture{}, DefaultConfig()); err == nil {
		t.Fatal("empty capture accepted")
	}
}
