package edgedetect

// View is an immutable snapshot of a Stream's decode-visible state,
// taken between pushes. It exists for the pipelined decoder: the
// detect stage publishes one View per pushed block, and the walk stage
// measures against it from another goroutine while the detector keeps
// pushing.
//
// Safety rests on three structural facts (DESIGN.md §14):
//
//   - Every slice captured here (prefix sums, edge list) is append-only
//     between compactions: later pushes write only indices at or past
//     the snapshot's length, so reads inside the snapshot race with
//     nothing.
//   - Compaction — the only in-place rewrite of the prefix arrays — is
//     deferred through CompactionGate until no snapshot is live.
//   - All fields are plain values copied on the publishing goroutine;
//     the queue handoff is the synchronization edge.
//
// A View's measurement methods are verbatim mirrors of the Stream's,
// so a measurement through a View is bit-identical to the same
// measurement against the live Stream at the snapshot moment.
type View struct {
	cfg          Config
	sumsRe       []float64
	sumsIm       []float64
	sumBase      int64
	front        int64
	eof          bool
	total        int64
	edges        []Edge
	floor        float64
	calibrated   bool
	edgeComplete int64

	lowWater int64 // promise recorded by SetLowWater, for the ack path
}

// Snapshot captures the stream's decode-visible state. Must be called
// on the goroutine that owns the Stream (the detect stage), between
// pushes.
func (s *Stream) Snapshot() View {
	return View{
		cfg:          s.cfg,
		sumsRe:       s.sumsRe,
		sumsIm:       s.sumsIm,
		sumBase:      s.sumBase,
		front:        s.front,
		eof:          s.eof,
		total:        s.total,
		edges:        s.edges,
		floor:        s.floor,
		calibrated:   s.calibrated,
		edgeComplete: s.EdgeComplete(),
	}
}

// CompactionGate installs a predicate consulted before any in-place
// compaction of the prefix-sum window. When it returns false the
// compaction is skipped (the window keeps growing); passing nil
// removes the gate. The pipelined decoder points this at its
// ack-tracking state so the arrays are never rewritten while a
// published View could still read them.
func (s *Stream) CompactionGate(gate func() bool) { s.compactGate = gate }

// Edges returns the edge prefix finalized at the snapshot.
func (v *View) Edges() []Edge { return v.edges }

// EdgeComplete returns the detection horizon at the snapshot.
func (v *View) EdgeComplete() int64 { return v.edgeComplete }

// Front returns the number of samples pushed at the snapshot.
func (v *View) Front() int64 { return v.front }

// Closed reports whether the stream had been closed at the snapshot.
func (v *View) Closed() bool { return v.eof }

// Calibrated reports whether the threshold was fixed at the snapshot.
func (v *View) Calibrated() bool { return v.calibrated }

// NoiseFloor returns the calibrated noise floor at the snapshot.
func (v *View) NoiseFloor() float64 { return v.floor }

// SetLowWater records the caller's promise that no measurement will
// target a position below pos. The View itself never compacts; the
// recorded high-water is collected by PromisedLowWater and fed back to
// the owning Stream once the snapshot is retired.
func (v *View) SetLowWater(pos int64) {
	if pos > v.lowWater {
		v.lowWater = pos
	}
}

// PromisedLowWater returns the highest low-water promise recorded
// against this View (0 if none).
func (v *View) PromisedLowWater() int64 { return v.lowWater }

// MeasureAt mirrors Stream.MeasureAt against the snapshot.
func (v *View) MeasureAt(pos int64) complex128 {
	after := v.meanRange(pos+v.cfg.Gap, pos+v.cfg.Gap+v.cfg.Win)
	before := v.meanRange(pos-v.cfg.Gap-v.cfg.Win, pos-v.cfg.Gap)
	return after - before
}

// MeasureAtClean mirrors Stream.MeasureAtClean against the snapshot.
func (v *View) MeasureAtClean(pos int64) complex128 {
	after := v.meanRange(pos+v.cfg.Gap, pos+v.cfg.Gap+v.cfg.MaxWin)
	before := v.meanRange(pos-v.cfg.Gap-v.cfg.MaxWin, pos-v.cfg.Gap)
	return after - before
}

func (v *View) limit() int64 {
	if v.eof {
		return v.total
	}
	return v.front
}

// meanRange is the verbatim mirror of Stream.meanRange: identical
// clamping, then the componentwise subtraction and division of
// from-origin sums, so the two are bit-identical on the same state.
func (v *View) meanRange(lo, hi int64) complex128 {
	if lo < 0 {
		lo = 0
	}
	if n := v.limit(); hi > n {
		hi = n
	}
	if lo >= hi {
		return 0
	}
	jlo, jhi := lo-v.sumBase, hi-v.sumBase
	if jlo < 0 {
		panic("edgedetect: view prefix window underrun (SetLowWater too aggressive?)")
	}
	fn := float64(hi - lo)
	return complex((v.sumsRe[jhi]-v.sumsRe[jlo])/fn, (v.sumsIm[jhi]-v.sumsIm[jlo])/fn)
}
