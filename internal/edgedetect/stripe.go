package edgedetect

// Sharded differential sweep (shard mode): with StreamConfig.
// ShardWorkers ≥ 2 the stream's stage-1 magnitude sweep is carved into
// stripes — contiguous owned ranges of magnitude positions — that a
// pull-based worker pool (internal/shard) computes concurrently while
// the owner goroutine keeps pushing samples and running the serial
// stages. The stripes are the in-process shards of the ISSUE's
// seam-safe sharded decode: stage 1 is where the decode spends most of
// its time, it is the only per-sample stage, and every downstream
// stage (calibration, scan, NMS/coalesce, refinement, walking) is
// provably monotone in the sweep horizon magDone, so delaying a
// position's availability never changes any decision about it.
//
// Seam safety. A stripe owns positions [lo, hi) but its kernel reads
// prefix sums over [lo − SweepReach, hi + SweepMargin]: the overlap
// with its neighbours is exactly the shard.SweepReach cut distance
// derived from the detector geometry, and a stripe is only dispatched
// once every prefix index it can read has been pushed (hi ≤
// front − margin, minus the sparse guard holdback pre-Close — the same
// horizons the serial sweep uses). Workers therefore read only settled
// entries of the append-only prefix arrays: Push writes indices the
// snapshot's length never covered, compaction (dropSums) copies the
// retained tail out into fresh arrays rather than rewriting the shared
// ones in place, and growth reallocation leaves the snapshotted
// backing array intact.
//
// Determinism. Each stripe computes into a job-owned buffer with the
// same kernels, the same from-origin prefix sums, and the same
// interior bounds the serial sweep would use, so every owned position's
// value is bit-identical to the serial sweep's — except don't-care
// zeros from the sparse skip tier, whose placement may differ with
// stripe boundaries exactly as it already differs with worker count
// and block size (DESIGN.md §12's skip-soundness argument: every read
// downstream stages perform takes the same branch either way). The
// owner adopts completed stripes strictly in submission order (the
// overlap-dedup rule: only the owned range enters s.mag), so the
// merged magnitude series, and hence the decode, is byte-identical to
// ShardParallelism = 1 at any shard count.
//
// The int16 quantized skip tier is not built in shard mode: its shadow
// arrays are rewritten by enableQuant's backfill under in-flight
// readers, and skipping it is output-invariant by the same §12
// argument (the float64 tiers make every decision identically).

import (
	"fmt"

	"lf/internal/dsp"
	"lf/internal/pool"
	"lf/internal/shard"
	"lf/internal/work"
)

// stripeSamples is the target stripe length. Reusing work.MinChunk
// means one stripe amortizes dispatch overhead exactly like one chunk
// of the serial parallel sweep — and unlike the serial sweep, which
// only fans out when a single push computes MinChunk positions at
// once, stripes accumulate across pushes, so realistic block sizes
// (8192-sample reader blocks) actually reach the pool.
const stripeSamples = work.MinChunk

// minStripeSamples is the smallest stripe dispatched before Close;
// smaller tails wait for more pushes (or for Close, which flushes any
// remainder). Together with the in-flight bound it caps the sweep lag
// sharding adds: magDone may trail the serial sweep's horizon by up to
// the in-flight window plus one stripe (the shardSweep backpressure
// bound) — a few ms of signal at 25 Msps, which delays when frames
// surface mid-capture but never what they contain.
const minStripeSamples = stripeSamples / 4

// maxStripesInFlight bounds pending stripes per worker: enough backlog
// that workers never idle between pushes, small enough that in-flight
// stripe buffers stay a constant-factor memory term (accounted in
// RetainedBytes).
const maxStripesInFlight = 2

// stripe is one in-flight shard of the differential sweep: the owned
// magnitude range [lo, hi), the job-owned output buffer a pool worker
// fills, and the completion ticket the owner adopts it by.
type stripe struct {
	lo, hi int64
	mag    []float64
	t      *shard.Ticket
}

// StripeJob is one self-contained unit of the sharded differential
// sweep: everything a worker needs to compute the owned magnitude
// range [Lo, Hi) into Dst, snapshotted at dispatch time. Run executes
// it with the in-process kernels; StreamConfig.StripeRunner may
// instead ship it elsewhere (internal/dist serializes exactly these
// fields), as long as Dst comes back bit-identical to what Run would
// write — the prefix sums are from-origin absolute values, so any
// subslice covering [IntLo−SweepMargin, IntHi+SweepMargin] ∩ the
// kernel's read window reproduces the same differences bit-exactly.
type StripeJob struct {
	// Lo, Hi bound the owned magnitude positions; Dst has Hi−Lo
	// entries, Dst[i] holding position Lo+i.
	Lo, Hi int64
	// IntLo, IntHi bound the sweep interior at dispatch time; owned
	// positions outside it are blanked to zero (capture-edge margins).
	IntLo, IntHi int64
	// Re, Im are the split prefix sums the kernel reads; Base is the
	// absolute sample position of Re[0]/Im[0].
	Re, Im []float64
	Base   int64
	// Detector geometry and sparse-tier controls.
	Gap, Win, Guard int64
	Sparse          bool
	Threshold       float64
	// Dst is the job-owned output buffer.
	Dst []float64
}

// Run computes the stripe in-process.
func (j *StripeJob) Run() {
	sweepStripe(j.Dst, j.Re, j.Im, j.Base, j.Lo, j.Hi, j.IntLo, j.IntHi,
		j.Gap, j.Win, j.Guard, j.Sparse, j.Threshold)
}

// shardOn reports whether the sharded sweep is active.
func (s *Stream) shardOn() bool { return s.shards != nil }

// shardSweep is stage 1 in shard mode: carve [stripeFront, hi) into
// stripes, dispatch them to the pool, and adopt completed leading
// stripes in order. Pre-Close adoption is non-blocking — a straggler
// stripe only delays magDone, never the caller — while at Close the
// owner drains every stripe so the detector's horizons reach the
// capture end.
func (s *Stream) shardSweep(hi int64, sparse bool) {
	if !s.eof {
		s.dispatchStripes(hi, sparse)
		s.adoptStripes(false)
		// Backpressure: the adopted horizon may trail the computable one
		// by at most the in-flight window plus one stripe. Past that the
		// owner blocks on its stripes — otherwise a pusher that outruns
		// the pool (guaranteed on a single-CPU box, where workers only
		// run when the owner yields) grows the retained prefix window
		// without bound, because trim's keep marks are clamped to
		// magDone. Blocking hands the CPU to exactly the workers whose
		// results are owed, so it costs nothing when the pool keeps up.
		lag := int64(maxStripesInFlight*s.shards.Workers()+1) * stripeSamples
		for s.err == nil && len(s.stripes) > 0 && hi-s.magDone > lag {
			s.adoptStripes(true)
			s.dispatchStripes(hi, sparse)
		}
		return
	}
	for s.err == nil && s.magDone < hi {
		s.dispatchStripes(hi, sparse)
		if len(s.stripes) == 0 {
			break
		}
		s.adoptStripes(true)
	}
	if s.err != nil {
		s.closeShards()
	}
}

// dispatchStripes enqueues stripes covering [stripeFront, hi) up to
// the in-flight bound. Each stripe snapshots everything its kernel
// reads — slice headers of the append-only prefix arrays plus the
// interior bounds and threshold at dispatch time — so the job is
// self-contained and the owner's state can keep moving.
func (s *Stream) dispatchStripes(hi int64, sparse bool) {
	bound := maxStripesInFlight * s.shards.Workers()
	for len(s.stripes) < bound {
		r, ok := shard.Next(s.stripeFront, hi, stripeSamples, minStripeSamples, s.eof)
		if !ok {
			return
		}
		s.enqueueStripe(r, sparse)
	}
}

func (s *Stream) enqueueStripe(r shard.Range, sparse bool) {
	st := &stripe{lo: r.Lo, hi: r.Hi, mag: pool.FloatUninit(int(r.Len()))}
	// Snapshot the kernel inputs. The interior bounds derive from the
	// limit at dispatch time exactly as the serial sweep's do from the
	// limit at compute time; a pre-Close stripe satisfies hi ≤
	// limit − margin (− guard when sparse), so its trailing-blank
	// branch never fires early — only the Close-time stripes blank the
	// capture's tail margin, as in the serial sweep.
	g, w := s.cfg.Gap, s.cfg.Win
	margin := shard.SweepMargin(g, w)
	job := &StripeJob{
		Lo: r.Lo, Hi: r.Hi,
		IntLo: margin, IntHi: s.limit() - margin,
		Re: s.sumsRe, Im: s.sumsIm, Base: s.sumBase,
		Gap: g, Win: w, Guard: shard.SweepGuard(g),
		Sparse: sparse, Threshold: s.threshold,
		Dst: st.mag,
	}
	if run := s.stripeRun; run != nil {
		// A runner error poisons this stripe exactly like an in-process
		// panic: the pool captures it into the ticket (error-valued
		// panics are %w-wrapped, so typed errors survive to adoption).
		st.t = s.shards.Go(func() {
			if err := run(job); err != nil {
				panic(err)
			}
		})
	} else {
		st.t = s.shards.Go(job.Run)
	}
	s.stripes = append(s.stripes, st)
	s.stripeFront = r.Hi
	s.stripeBytes += int64(len(st.mag)) * 8
	s.sm.Stripes.Inc()
	s.sm.Samples.Add(r.Len())
	s.sm.InFlight.Max(int64(len(s.stripes)))
}

// sweepStripe computes the differential magnitudes a stripe owns into
// its job-owned buffer — the serial sweep's chunk body over snapshot
// inputs. It runs on a pool worker; everything it touches is either
// the job-owned dst or settled read-only prefix entries.
func sweepStripe(dst, re, im []float64, base, lo, hi, intLo, intHi, g, w, guard int64, sparse bool, threshold float64) {
	ilo := max(lo, intLo)
	ihi := min(hi, intHi)
	for p := lo; p < min(ilo, hi); p++ {
		dst[p-lo] = 0
	}
	if ilo < ihi {
		j0 := int(ilo - base)
		out := dst[ilo-lo : ihi-lo]
		if sparse {
			dsp.DiffSweepSparse(re, im, j0, g, w, guard,
				threshold, int(intLo-base), int(intHi-base), out)
		} else {
			dsp.DiffSweep(re, im, j0, g, w, out)
		}
	}
	for p := max(ihi, lo); p < hi; p++ {
		dst[p-lo] = 0
	}
}

// adoptStripes merges completed leading stripes into s.mag in
// submission order and advances magDone past them. When block is set
// every stripe is waited for (Close-time and pre-compaction drains);
// otherwise a pending head ends the adoption without stalling the
// caller.
func (s *Stream) adoptStripes(block bool) {
	margin := s.cfg.Gap + s.cfg.Win
	for len(s.stripes) > 0 {
		st := s.stripes[0]
		if block {
			st.t.Wait()
		} else if !st.t.Ready() {
			return
		}
		copy(s.stripes, s.stripes[1:])
		s.stripes = s.stripes[:len(s.stripes)-1]
		s.stripeBytes -= int64(len(st.mag)) * 8
		if err := st.t.Err(); err != nil {
			if s.err == nil {
				s.err = fmt.Errorf("edgedetect: sharded sweep: %w", err)
			}
		} else if s.err == nil {
			s.mag = extendFloats(s.mag, len(st.mag))
			copy(s.mag[st.lo-s.magBase:], st.mag)
			if len(s.dropSpans) > 0 {
				// Spans are settled for this range: a drop at position p
				// only affects magnitudes ≥ p − margin, and the stripe was
				// dispatched with hi ≤ front − margin, so any span that
				// could blank it was recorded before dispatch.
				s.blankDropped(st.lo, st.hi, margin)
			}
			s.magDone = st.hi
		}
		pool.PutFloat(st.mag)
	}
}

// closeShards drains any in-flight stripes (discarding their output)
// and retires the worker pool. Idempotent; called at Close, Release,
// and on a poisoned stripe.
func (s *Stream) closeShards() {
	if s.shards == nil {
		return
	}
	for _, st := range s.stripes {
		st.t.Wait()
		pool.PutFloat(st.mag)
	}
	s.stripes = s.stripes[:0]
	s.stripeBytes = 0
	s.shards.Close()
	s.shards = nil
}
