package edgedetect

import (
	"errors"
	"fmt"
	"math"

	"lf/internal/dsp"
	"lf/internal/obs"
	"lf/internal/pool"
	"lf/internal/shard"
	"lf/internal/work"
)

// StreamConfig tunes the incremental detector.
type StreamConfig struct {
	Config
	// CalibSamples bounds noise-floor calibration: the detection
	// threshold is derived from the first CalibSamples differential
	// magnitudes, and edge extraction starts as soon as they have
	// streamed in. 0 defers calibration to Close and computes the
	// threshold over the whole capture — the batch semantics, which
	// necessarily retains the whole magnitude series until Close.
	CalibSamples int64
	// Metrics, when populated, receives stage counters (raw peaks,
	// NMS outcomes, groups, edges, dropped samples). Every counter is
	// recorded from the detector's serial stages — never from inside
	// the parallel sweep kernels — so the counts are a pure function
	// of the sample sequence. The zero value records nothing.
	Metrics obs.EdgeMetrics
	// Meter, when non-nil, meters the differential sweep's worker-pool
	// dispatch (runtime-class; see work.Meter).
	Meter *work.Meter
	// ShardWorkers ≥ 2 runs the differential sweep in shard mode: the
	// sweep is carved into seam-safe stripes computed concurrently on a
	// pull-based worker pool while the owner goroutine keeps pushing
	// (see stripe.go). The detected edge set stays bit-identical at any
	// worker count. 0 and 1 keep the serial in-push sweep.
	ShardWorkers int
	// Shards, when populated, receives shard-mode stripe counters
	// (runtime-class). The zero value records nothing.
	Shards obs.ShardMetrics
	// StripeRunner, when non-nil in shard mode, executes each stripe
	// job instead of the in-process kernel: the distributed coordinator
	// hooks here to ship jobs to remote workers. The runner must fill
	// job.Dst with exactly the bytes job.Run would produce (or return an
	// error, which poisons the stripe like an in-process panic). Ignored
	// when ShardWorkers < 2.
	StripeRunner func(*StripeJob) error
	// Calib, when non-nil, presets noise calibration: the stream starts
	// calibrated with the given floor and threshold, no calibration
	// median is taken, and the coarse-to-fine sweep runs sparse from
	// position 0. SIC residual decodes use this to carry the first
	// pass's calibration — the noise floor is a property of the channel
	// and receiver chain, and subtracting decoded signal from the
	// capture does not change it (DESIGN.md §17). Both values must be
	// finite and positive. CalibSamples is ignored when set. The
	// quantized skip tier stays off (its scale is fixed from the
	// calibration window this stream never observes); the float64
	// tiers decide identically.
	Calib *CalibPreset
	// Seed, when non-nil, adopts a pre-folded capture instead of pushed
	// blocks: the stream aliases the caller's from-origin prefix-sum
	// lanes directly — no sample ingest, no fold — and Close drives
	// detection end to end. Push is an error on a seeded stream. The
	// caller keeps ownership of the arrays: the stream never compacts,
	// mutates, or pool-recycles them (Release simply drops the alias),
	// so a SIC round cache can repair and re-seed the same arrays
	// across rounds. Every folded sample must have been admissible
	// (finite, below the overflow bound — see MaxSampleMag); captures
	// with replaced samples must take the push path, which owns the
	// hold-last-finite semantics. Requires Calib.
	Seed *SweepSeed
}

// CalibPreset fixes the noise floor and detection threshold a stream
// starts with instead of deriving them from its own capture.
type CalibPreset struct {
	Floor, Threshold float64
}

// SweepSeed hands a stream pre-folded prefix-sum lanes, both len n+1
// for an n-sample capture. Fully folded lanes hold
// SumsRe[j]/SumsIm[j] = componentwise sum of samples [0, j); under an
// Active mask the caller may instead fold each padded mask region from
// its own zero base and leave the entries between regions unspecified.
// Every read the stream performs is a windowed difference
// sums[hi]−sums[lo] with both endpoints inside one region — sweep and
// refinement windows reach at most Gap+MaxWin outside a probed
// position, and the caller owns padding the regions to cover every
// position its own measurement calls (MeasureAt/MeasureAtClean) probe
// — so any per-region base cancels and the detection is identical to
// one over from-origin lanes. See StreamConfig.Seed for the ownership
// and admissibility contract (admissibility applies to the folded
// regions).
type SweepSeed struct {
	SumsRe, SumsIm []float64
	// Active, when non-nil, restricts detection to the given spans:
	// sorted, disjoint, half-open sample ranges within [0, n].
	// Differential magnitudes outside them are recorded as zero and the
	// local-maximum scan never visits them — exactly the sparse tier's
	// don't-care contract, except the skip decision is the caller's.
	// The caller owns the soundness argument that out-of-mask positions
	// carry nothing it wants detected (the SIC dirty-span closure:
	// DESIGN.md §17). nil sweeps the whole capture.
	Active []shard.Range
}

// Stream is an incremental edge detector: IQ samples are pushed in
// arbitrary blocks and edges appear in Edges() as soon as they are
// final. The sequence of detected edges is a pure function of the
// sample sequence — block boundaries never influence the result —
// because every stage either works on from-origin prefix sums
// (identical float operation order at any block size) or defers its
// decision until the input that could still change it has provably
// passed (see flushPeaks and finalizeGroups for the cut arguments).
//
// Memory is bounded by the calibration window plus the caller's
// low-water mark: once calibrated, sample-proportional state is
// trimmed up to the point that pending detection work — or a
// measurement the caller may still request (SetLowWater) — could
// touch. With CalibSamples = 0 (or the default low-water of 0)
// nothing is trimmed and the stream degenerates to the batch
// detector's footprint.
type Stream struct {
	cfg     Config
	calib   int64
	workers int
	em      obs.EdgeMetrics
	meter   *work.Meter

	// From-origin prefix sums of the pushed samples, split into
	// structure-of-arrays real/imaginary components so the differential
	// sweep kernels (dsp.DiffSweep, dsp.DiffSweepSparse) stream over
	// plain float64 lanes. sumsRe[j]/sumsIm[j] hold the componentwise
	// sum of samples [0, sumBase+j); len == front-sumBase+1. Complex
	// addition is componentwise, so the split accumulation is bitwise
	// identical to the former []complex128 prefix.
	sumsRe  []float64
	sumsIm  []float64
	sumBase int64
	accRe   float64
	accIm   float64
	front   int64 // samples pushed so far

	// Int16 fixed-point shadow of the prefix sums: wrapping int32
	// accumulations of round(qScale · sample), index-aligned with
	// sumsRe/sumsIm, feeding the sparse sweep's quantized skip tier
	// (dsp.DiffSweepSparse16) at half the float64 pair's memory
	// bandwidth. The scale is fixed at calibration from the largest
	// component seen; a later sample overflowing the int16 range
	// disables the shadow for the rest of the capture (the float64
	// tiers keep every decision identical). maxComp tracks the
	// pre-calibration component maximum the scale derives from.
	qRe     []int32
	qIm     []int32
	qAccRe  int32
	qAccIm  int32
	q16     bool
	qScale  float64
	qInv    float64
	qErr    float64
	qValid  int64 // quantized entries valid for absolute indices ≥ this
	maxComp float64

	// Differential magnitudes for positions [magBase, magDone).
	mag     []float64
	magBase int64
	magDone int64

	// Shard mode (stripe.go): the pull-based stripe pool, the FIFO of
	// in-flight stripes, the next position to stripe (stripeFront ≥
	// magDone; [magDone, stripeFront) is covered by pending stripes),
	// and the in-flight stripe-buffer bytes for RetainedBytes.
	shards       *shard.Pool
	shardWorkers int
	stripes      []*stripe
	stripeFront  int64
	stripeBytes  int64
	sm           obs.ShardMetrics
	stripeRun    func(*StripeJob) error

	calibrated bool
	floor      float64
	threshold  float64

	scanned  int64          // local-maximum scan is complete for positions < scanned
	raw      []dsp.Peak     // raw maxima awaiting a safe NMS/coalesce cut
	nms      dsp.Suppressor // reusable NMS scratch for suppressChunk
	kept     []dsp.Peak     // scratch for suppressChunk
	groups   []group        // coalesced groups awaiting refinement; head at ghead
	ghead    int
	prevLast int64 // last peak position of the previously refined group
	havePrev bool

	edges []Edge

	// Graceful degradation of non-finite input: bad samples are
	// replaced with the last finite value in the prefix-sum
	// accumulation (never in the caller's block), their positions
	// recorded as merged spans, and every differential magnitude whose
	// windows touch a span blanked so no phantom edge forms.
	lastFinite complex128
	dropSpans  []Span

	eof      bool
	total    int64
	lowWater int64 // caller promises no MeasureAt below this position
	err      error
	released bool

	// extSums marks caller-owned (seeded) prefix-sum arrays: never
	// compacted in place, never recycled to the pool, and Push is
	// rejected (see StreamConfig.Seed).
	extSums bool
	// active, when non-nil, is the seeded detection mask (sorted
	// disjoint sample spans); the sweep and the local-maximum scan
	// visit only these ranges (SweepSeed.Active).
	active []shard.Range

	// compactGate, when non-nil, must return true for the prefix-sum
	// window to compact in place (see CompactionGate / View).
	compactGate func() bool
}

// Span is a half-open range [Lo, Hi) of absolute sample positions.
type Span struct{ Lo, Hi int64 }

// maxSampleMag bounds accepted sample magnitudes: components beyond it
// could overflow the running prefix sums to Inf and poison every
// downstream differential, so such samples are treated exactly like
// NaN/Inf — dropped and blanked. Real IQ front ends sit ~150 orders of
// magnitude below this.
const maxSampleMag = 1e150

// MaxSampleMag exports the admission bound for callers that pre-fold
// seeded prefix sums (the maxMag argument of dsp.RepairPrefix): a
// seeded capture must contain no sample a Push would have replaced.
const MaxSampleMag = maxSampleMag

// maxDropSpans caps the recorded span list so adversarial NaN floods
// cannot grow unbounded state: past the cap, new drops widen the last
// span (conservative over-blanking).
const maxDropSpans = 512

// NewStream builds an incremental detector. Push blocks of samples,
// then Close; Edges/EdgeComplete may be consulted at any point.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CalibSamples < 0 {
		return nil, fmt.Errorf("edgedetect: negative CalibSamples %d", cfg.CalibSamples)
	}
	if cfg.Calib != nil {
		f, th := cfg.Calib.Floor, cfg.Calib.Threshold
		if !(f > 0) || !(th > 0) || math.IsInf(f, 1) || math.IsInf(th, 1) {
			return nil, fmt.Errorf("edgedetect: calibration preset (%v, %v) must be finite and positive", f, th)
		}
	}
	if cfg.Seed != nil {
		if cfg.Calib == nil {
			return nil, errors.New("edgedetect: Seed requires Calib")
		}
		if len(cfg.Seed.SumsRe) < 2 || len(cfg.Seed.SumsRe) != len(cfg.Seed.SumsIm) {
			return nil, fmt.Errorf("edgedetect: seed prefix lanes len %d/%d (want equal, ≥ 2)",
				len(cfg.Seed.SumsRe), len(cfg.Seed.SumsIm))
		}
		prev := int64(0)
		for _, r := range cfg.Seed.Active {
			if r.Lo < prev || r.Hi <= r.Lo || r.Hi > int64(len(cfg.Seed.SumsRe)-1) {
				return nil, fmt.Errorf("edgedetect: seed active span [%d, %d) not sorted, disjoint, and within the capture", r.Lo, r.Hi)
			}
			prev = r.Hi
		}
	}
	s := &Stream{cfg: cfg.Config, calib: cfg.CalibSamples, workers: work.Resolve(cfg.Parallelism),
		em: cfg.Metrics, meter: cfg.Meter, sm: cfg.Shards, stripeRun: cfg.StripeRunner}
	if cfg.Seed != nil {
		s.sumsRe, s.sumsIm = cfg.Seed.SumsRe, cfg.Seed.SumsIm
		s.active = cfg.Seed.Active
		s.extSums = true
		s.front = int64(len(s.sumsRe) - 1)
		s.accRe = s.sumsRe[len(s.sumsRe)-1]
		s.accIm = s.sumsIm[len(s.sumsIm)-1]
	} else {
		s.sumsRe = append(pool.Float(0), 0)
		s.sumsIm = append(pool.Float(0), 0)
	}
	if cfg.Calib != nil {
		s.calibrated = true
		s.floor = cfg.Calib.Floor
		s.threshold = cfg.Calib.Threshold
	}
	s.mag = pool.Float(0)
	// A seeded stream's sweep runs once, at Close, over the (typically
	// small) active mask; striping it buys nothing and the mask is an
	// inline-sweep feature, so shard mode stays off.
	if cfg.ShardWorkers >= 2 && cfg.Seed == nil {
		s.shardWorkers = cfg.ShardWorkers
		s.shards = shard.NewPool(s.shardWorkers, maxStripesInFlight*s.shardWorkers)
	}
	return s, nil
}

// Reset rewinds the stream for a fresh capture, retaining every
// internal buffer at its grown capacity so steady-state reuse does not
// allocate. Edges returned before the Reset are invalidated.
func (s *Stream) Reset() {
	if s.released || s.extSums {
		// Seeded arrays stay with their owner; a reset stream starts
		// over on its own pooled lanes (and drops any calibration
		// preset with the rest of the calibration state).
		if s.released {
			s.mag = pool.Float(0)
		}
		s.sumsRe = pool.Float(0)
		s.sumsIm = pool.Float(0)
		s.released, s.extSums = false, false
		s.active = nil
	}
	s.sumsRe = append(s.sumsRe[:0], 0)
	s.sumsIm = append(s.sumsIm[:0], 0)
	s.sumBase, s.accRe, s.accIm, s.front = 0, 0, 0, 0
	s.disableQuant()
	s.qAccRe, s.qAccIm = 0, 0
	s.qScale, s.qInv, s.qErr, s.qValid, s.maxComp = 0, 0, 0, 0, 0
	s.mag = s.mag[:0]
	s.magBase, s.magDone = 0, 0
	if len(s.stripes) > 0 {
		s.closeShards() // a mid-capture reset must not orphan workers
	}
	s.stripeFront = 0
	if s.shardWorkers >= 2 && s.shards == nil {
		// Close retired the pool; a reused stream gets a fresh one.
		s.shards = shard.NewPool(s.shardWorkers, maxStripesInFlight*s.shardWorkers)
	}
	s.calibrated, s.floor, s.threshold = false, 0, 0
	s.scanned = 0
	s.raw, s.kept = s.raw[:0], s.kept[:0]
	s.groups, s.ghead = s.groups[:0], 0
	s.prevLast, s.havePrev = 0, false
	s.edges = s.edges[:0]
	s.lastFinite, s.dropSpans = 0, s.dropSpans[:0]
	s.eof, s.total, s.lowWater = false, 0, 0
	s.err = nil
}

// Push appends a block of IQ samples and advances detection as far as
// the new samples allow.
func (s *Stream) Push(block []complex128) error {
	if s.err != nil {
		return s.err
	}
	if s.released {
		return errors.New("edgedetect: push on released stream")
	}
	if s.extSums {
		return errors.New("edgedetect: push on seeded stream")
	}
	if s.eof {
		return errors.New("edgedetect: push after close")
	}
	// Extend all prefix arrays once per block, then fill by index: the
	// per-sample append bounds-and-growth checks are measurable at epoch
	// scale with four accumulation lanes.
	base := len(s.sumsRe)
	s.sumsRe = extendFloats(s.sumsRe, len(block))
	s.sumsIm = extendFloats(s.sumsIm, len(block))
	re := s.sumsRe[base:]
	im := s.sumsIm[base:]
	var qre, qim []int32
	if s.q16 {
		s.qRe = extendInt32s(s.qRe, len(block))
		s.qIm = extendInt32s(s.qIm, len(block))
		qre, qim = s.qRe[base:], s.qIm[base:]
	}
	for i, v := range block {
		if !sampleOK(v) {
			s.noteDrop(s.front + int64(i))
			s.em.DropSamples.Inc()
			v = s.lastFinite
		} else {
			s.lastFinite = v
		}
		preRe, preIm := s.accRe, s.accIm
		s.accRe += real(v)
		s.accIm += imag(v)
		re[i] = s.accRe
		im[i] = s.accIm
		if s.q16 {
			// Quantize the sample as the prefix difference just stored —
			// the value the dense kernel will consume — so the skip
			// tier's error bound is front-independent (DESIGN.md §14).
			qr := math.RoundToEven((s.accRe - preRe) * s.qScale)
			qi := math.RoundToEven((s.accIm - preIm) * s.qScale)
			if qr > dsp.QuantClip || qr < -dsp.QuantClip ||
				qi > dsp.QuantClip || qi < -dsp.QuantClip {
				s.disableQuant() // frees the arrays qre/qim view
				qre, qim = nil, nil
			} else {
				s.qAccRe += int32(qr)
				s.qAccIm += int32(qi)
				qre[i] = s.qAccRe
				qim[i] = s.qAccIm
			}
		} else if !s.calibrated {
			if a := math.Abs(real(v)); a > s.maxComp {
				s.maxComp = a
			}
			if a := math.Abs(imag(v)); a > s.maxComp {
				s.maxComp = a
			}
		}
	}
	s.front += int64(len(block))
	s.advance()
	s.trim()
	// Shard mode can surface a poisoned stripe's error at adoption.
	return s.err
}

// Close marks end of capture, drains every pending stage, and frees
// the magnitude series (measurement via the prefix sums stays valid
// until Release).
func (s *Stream) Close() error {
	if s.err != nil {
		return s.err
	}
	if s.released {
		return errors.New("edgedetect: close on released stream")
	}
	if s.eof {
		return nil
	}
	if s.front == 0 {
		s.closeShards()
		s.err = errors.New("edgedetect: capture has no samples")
		return s.err
	}
	s.eof = true
	s.total = s.front
	s.advance()
	s.closeShards() // advance drained every stripe; retire the workers
	if s.err != nil {
		return s.err
	}
	s.disableQuant() // no sweeps remain; only measurement survives Close
	if s.mag != nil {
		pool.PutFloat(s.mag)
		s.mag = nil
		s.magBase = s.magDone
	}
	s.raw = s.raw[:0]
	s.groups, s.ghead = s.groups[:0], 0
	return nil
}

// Release recycles the sample-proportional buffers into the shared
// scratch pool. The stream must not be used for measurement after.
func (s *Stream) Release() {
	if s.released {
		return
	}
	s.released = true
	s.closeShards()
	s.disableQuant()
	if !s.extSums {
		pool.PutFloat(s.sumsRe)
		pool.PutFloat(s.sumsIm)
	}
	s.sumsRe, s.sumsIm = nil, nil
	if s.mag != nil {
		pool.PutFloat(s.mag)
		s.mag = nil
	}
}

// Edges returns the edges finalised so far, in increasing position.
// The slice is appended to by subsequent pushes; callers must not
// retain it across Push/Reset.
func (s *Stream) Edges() []Edge { return s.edges }

// NoiseFloor returns the calibrated background differential magnitude
// (0 before calibration).
func (s *Stream) NoiseFloor() float64 { return s.floor }

// Threshold returns the calibrated detection threshold (0 before
// calibration) — the floor scaled by ThresholdFactor, with the
// noiseless-capture guard applied. Exposed so a SIC residual pass can
// carry the first pass's calibration verbatim (StreamConfig.Calib).
func (s *Stream) Threshold() float64 { return s.threshold }

// Calibrated reports whether the detection threshold has been fixed.
func (s *Stream) Calibrated() bool { return s.calibrated }

// Front returns the number of samples pushed so far.
func (s *Stream) Front() int64 { return s.front }

// Closed reports whether Close has been called.
func (s *Stream) Closed() bool { return s.eof }

// EdgeComplete returns the detection horizon: every edge whose Pos is
// below it is present and final in Edges(), and no future edge can
// appear below it. It is monotone non-decreasing across pushes and
// reaches past the capture end once Close has drained the pipeline.
func (s *Stream) EdgeComplete() int64 {
	if !s.calibrated {
		return 0
	}
	if s.eof {
		return s.total
	}
	m := s.futureFirstMin()
	if s.ghead < len(s.groups) && s.groups[s.ghead].first < m {
		m = s.groups[s.ghead].first
	}
	if m < 0 {
		m = 0
	}
	return m
}

// SetLowWater promises that no MeasureAt/MeasureAtClean call will ever
// target a position below pos, allowing the prefix-sum window to slide
// forward. The mark is monotone: lowering it is ignored.
func (s *Stream) SetLowWater(pos int64) {
	if pos > s.lowWater {
		s.lowWater = pos
		s.trim()
	}
}

// RetainedBytes reports the sample-proportional window currently live
// (prefix sums, magnitude series, and detection scratch). The edge
// list itself — output, not window state — is excluded, as is buffer
// capacity beyond the live window: the backing arrays come from the
// shared pool and may carry slack amortized across unrelated decodes.
func (s *Stream) RetainedBytes() int64 {
	return int64(len(s.sumsRe)+len(s.sumsIm))*8 + int64(len(s.qRe)+len(s.qIm))*4 +
		int64(len(s.mag))*8 + s.stripeBytes +
		int64(len(s.raw)+len(s.kept))*16 + s.nms.RetainedBytes() +
		int64(len(s.groups)-s.ghead)*32
}

// MeasureAt returns the IQ differential at an arbitrary position with
// the default detection windows. The position's windows must lie above
// the low-water mark and (before Close) within the pushed samples.
func (s *Stream) MeasureAt(pos int64) complex128 {
	after := s.meanRange(pos+s.cfg.Gap, pos+s.cfg.Gap+s.cfg.Win)
	before := s.meanRange(pos-s.cfg.Gap-s.cfg.Win, pos-s.cfg.Gap)
	return after - before
}

// MeasureAtClean is MeasureAt with the widened refinement windows.
func (s *Stream) MeasureAtClean(pos int64) complex128 {
	after := s.meanRange(pos+s.cfg.Gap, pos+s.cfg.Gap+s.cfg.MaxWin)
	before := s.meanRange(pos-s.cfg.Gap-s.cfg.MaxWin, pos-s.cfg.Gap)
	return after - before
}

// limit is the exclusive upper bound of known sample positions: the
// capture length once closed, else the pushed front.
func (s *Stream) limit() int64 {
	if s.eof {
		return s.total
	}
	return s.front
}

// meanRange is the clamped windowed mean, bit-identical to the batch
// detector's prefix Mean: identical clamping, then the componentwise
// subtraction and division of from-origin sums. (Go's complex quotient
// with a real divisor reduces to exactly these two float divisions, so
// the SoA form equals the former complex128 one bit for bit.)
func (s *Stream) meanRange(lo, hi int64) complex128 {
	if lo < 0 {
		lo = 0
	}
	if n := s.limit(); hi > n {
		hi = n
	}
	if lo >= hi {
		return 0
	}
	jlo, jhi := lo-s.sumBase, hi-s.sumBase
	if jlo < 0 {
		panic("edgedetect: stream prefix window underrun (SetLowWater too aggressive?)")
	}
	fn := float64(hi - lo)
	return complex((s.sumsRe[jhi]-s.sumsRe[jlo])/fn, (s.sumsIm[jhi]-s.sumsIm[jlo])/fn)
}

func (s *Stream) magAt(i int64) float64 { return s.mag[i-s.magBase] }

// sampleOK reports whether a sample may enter the prefix sums: finite
// and small enough that no realistic capture length can overflow the
// running accumulation.
func sampleOK(v complex128) bool {
	re, im := real(v), imag(v)
	return !math.IsNaN(re) && !math.IsNaN(im) &&
		re < maxSampleMag && re > -maxSampleMag &&
		im < maxSampleMag && im > -maxSampleMag
}

// noteDrop records a dropped (non-finite) sample position, merging
// contiguous positions into spans and coarsening past maxDropSpans.
func (s *Stream) noteDrop(pos int64) {
	if n := len(s.dropSpans); n > 0 {
		last := &s.dropSpans[n-1]
		if pos < last.Hi {
			return
		}
		if pos == last.Hi || n >= maxDropSpans {
			last.Hi = pos + 1
			return
		}
	}
	s.dropSpans = append(s.dropSpans, Span{pos, pos + 1})
}

// Dropped returns the non-finite sample spans replaced so far, in
// position order. The slice is appended to by subsequent pushes;
// callers must not retain it across Push/Reset.
func (s *Stream) Dropped() []Span { return s.dropSpans }

// blankDropped zeroes the just-computed magnitudes [lo, hi) whose
// differential windows (±margin) touch a dropped span: the substituted
// hold values would otherwise read as a phantom edge at the span
// boundary. Spans are recorded before the magnitudes their windows
// cover are computed (a drop at p affects positions ≥ p−margin, none
// of which can be final before p is pushed), so blanking each chunk as
// it is computed covers every affected position at any block size.
func (s *Stream) blankDropped(lo, hi, margin int64) {
	for _, sp := range s.dropSpans {
		blo, bhi := sp.Lo-margin, sp.Hi+margin
		if blo < lo {
			blo = lo
		}
		if bhi > hi {
			bhi = hi
		}
		for p := blo; p < bhi; p++ {
			s.mag[p-s.magBase] = 0
		}
	}
}

// enableQuant fixes the fixed-point scale from the calibration-window
// component maximum and backfills the quantized prefix shadow over the
// retained samples (calibration precedes any trim, so the sums still
// start at the origin). An out-of-range sample — possible only if the
// capture's components grow past ~2x the calibration maximum — aborts
// the backfill and leaves the float64 path in sole charge.
func (s *Stream) enableQuant() {
	s.qScale = dsp.QuantTarget / s.maxComp
	s.qInv = s.maxComp / dsp.QuantTarget
	// Any admitted quantized sample has |component| ≤ (QuantClip+1)·qInv,
	// which bounds the ε term of the skip tier's error margin.
	s.qErr = dsp.QuantErr(s.qInv, (dsp.QuantClip+1)*s.qInv)
	// Only the tail of the calibrated window is reachable by future
	// sweeps: an extension starting at position p reads prefix indices
	// ≥ p − (Gap+Win) − guard, and every future extension starts at
	// magDone or later. The skip tier consumes only window differences,
	// so the wrapping accumulation may start at any base — entries below
	// jStart are left as uninitialized never-read filler, saving the
	// full-window backfill pass. advance() re-checks the reachability
	// floor before dispatching the quantized kernel.
	n := len(s.sumsRe)
	reach := int(s.cfg.Gap+s.cfg.Win+s.cfg.Gap+2) + 64
	jStart := int(s.magDone-s.sumBase) - reach
	if jStart < 0 {
		jStart = 0
	}
	s.qValid = s.sumBase + int64(jStart)
	s.qRe = pool.Int32sUninit(n)
	s.qIm = pool.Int32sUninit(n)
	s.qRe[jStart] = 0
	s.qIm[jStart] = 0
	var ar, ai int32
	for j := jStart + 1; j < n; j++ {
		qr := math.RoundToEven((s.sumsRe[j] - s.sumsRe[j-1]) * s.qScale)
		qi := math.RoundToEven((s.sumsIm[j] - s.sumsIm[j-1]) * s.qScale)
		if qr > dsp.QuantClip || qr < -dsp.QuantClip ||
			qi > dsp.QuantClip || qi < -dsp.QuantClip {
			s.disableQuant()
			return
		}
		ar += int32(qr)
		ai += int32(qi)
		s.qRe[j] = ar
		s.qIm[j] = ai
	}
	s.qAccRe, s.qAccIm = ar, ai
	s.q16 = true
}

// disableQuant retires the quantized prefix shadow; every subsequent
// sweep runs the pure float64 sparse kernel.
func (s *Stream) disableQuant() {
	if s.qRe != nil {
		pool.PutInt32s(s.qRe)
		pool.PutInt32s(s.qIm)
		s.qRe, s.qIm = nil, nil
	}
	s.q16 = false
}

// Quantized reports whether the int16 fixed-point skip tier is active.
func (s *Stream) Quantized() bool { return s.q16 }

// futureFirstMin lower-bounds the first-peak position of any group not
// yet coalesced: pending raw maxima (or any maximum yet to be scanned)
// sit at min(raw[0].Pos, scanned) or later, and centroiding moves a
// peak by at most Gap+2.
func (s *Stream) futureFirstMin() int64 {
	m := s.scanned
	if len(s.raw) > 0 && s.raw[0].Pos < m {
		m = s.raw[0].Pos
	}
	return m - (s.cfg.Gap + 2)
}

// advance runs every detection stage as far as the pushed samples
// permit: magnitude extension, calibration, local-maximum scan, safe
// NMS/coalesce cuts, and group refinement.
func (s *Stream) advance() {
	g, w := s.cfg.Gap, s.cfg.Win
	margin := g + w

	// 1. Differential magnitudes. A position's windows span ±(Gap+Win),
	// so pre-Close only positions below front−margin are computable;
	// margins at both capture ends are blanked exactly as in the batch
	// detector (clamped half-windows would read as phantom edges).
	//
	// Once the threshold is fixed, the sweep runs coarse-to-fine
	// (dsp.DiffSweepSparse): sub-threshold blocks are zero-filled
	// instead of computed. The zero is a don't-care — every read the
	// later stages perform on such a position takes the same branch as
	// it would on the true (sub-threshold) dense value, and every
	// position within guard = Gap+2 samples of a threshold-crossing
	// position is computed exactly (DESIGN.md §12). Pre-Close, sparse
	// extensions additionally hold back the last `guard` computable
	// positions so each position's guard context is fully inside the
	// known interior when its skip decision is taken; every downstream
	// horizon (scan, flushPeaks, futureFirstMin) is monotone in
	// magDone, so the deferral delays decisions without changing them.
	guard := g + 2
	sparse := s.calibrated && !s.cfg.DenseSweep && s.threshold > 0
	hi := s.front - margin
	if s.eof {
		hi = s.total
	} else if sparse {
		hi -= guard
	}
	if s.shardOn() {
		// Shard mode: the sweep runs on the stripe pool instead of
		// inline; magDone advances as completed stripes are adopted in
		// order (stripe.go). Every downstream stage is monotone in
		// magDone, so the adoption lag delays decisions without changing
		// them.
		s.shardSweep(hi, sparse)
		if s.err != nil {
			return
		}
	} else if hi > s.magDone {
		lo := s.magDone
		count := int(hi - lo)
		s.mag = extendFloats(s.mag, count)
		limit := s.limit()
		intLo, intHi := margin, limit-margin
		// The quantized shadow is only consulted when every prefix index
		// this extension can reach is above its validity floor (it holds
		// by construction — enableQuant leaves `reach` slack below the
		// magDone it was built at — but the floor is what the proof
		// stands on, so check it, not the construction).
		useQ := s.q16 && max(lo, intLo)-guard-margin >= s.qValid
		sweepChunk := func(plo, phi int64) {
			ilo := max(plo, intLo)
			ihi := min(phi, intHi)
			for p := plo; p < min(ilo, phi); p++ {
				s.mag[p-s.magBase] = 0
			}
			if ilo < ihi {
				j0 := int(ilo - s.sumBase)
				dst := s.mag[ilo-s.magBase : ihi-s.magBase]
				switch {
				case sparse && useQ:
					dsp.DiffSweepSparse16(s.qRe, s.qIm, s.sumsRe, s.sumsIm, j0, g, w, guard,
						s.qErr, s.qInv, s.threshold, int(intLo-s.sumBase), int(intHi-s.sumBase), dst)
				case sparse:
					dsp.DiffSweepSparse(s.sumsRe, s.sumsIm, j0, g, w, guard,
						s.threshold, int(intLo-s.sumBase), int(intHi-s.sumBase), dst)
				default:
					dsp.DiffSweep(s.sumsRe, s.sumsIm, j0, g, w, dst)
				}
			}
			for p := max(ihi, plo); p < phi; p++ {
				s.mag[p-s.magBase] = 0
			}
		}
		if s.active == nil {
			s.meter.DoRanges(s.workers, count, func(clo, chi int) {
				sweepChunk(lo+int64(clo), lo+int64(chi))
			})
		} else {
			// Masked sweep: the kernel runs only over the active spans (a
			// seeded stream sweeps once, at Close, so this branch runs once
			// with lo = 0). Positions outside the spans are don't-care, and
			// the only reads that stray past a span boundary are the scan's
			// neighbour probes (±1) and centroiding (±(Gap+2)) at in-span
			// peaks — so zeroing a Gap+3 margin around each span makes
			// every out-of-mask read deterministic without an O(capture)
			// clear; beyond the margins the buffer keeps whatever the pool
			// held, unread.
			zpad := g + 3
			for _, r := range s.active {
				mlo, mhi := max(r.Lo-zpad, lo), min(r.Lo, hi)
				for p := mlo; p < mhi; p++ {
					s.mag[p-s.magBase] = 0
				}
				mlo, mhi = max(r.Hi, lo), min(r.Hi+zpad, hi)
				for p := mlo; p < mhi; p++ {
					s.mag[p-s.magBase] = 0
				}
			}
			for _, r := range s.active {
				rlo, rhi := max(r.Lo, lo), min(r.Hi, hi)
				if rlo >= rhi {
					continue
				}
				s.meter.DoRanges(s.workers, int(rhi-rlo), func(clo, chi int) {
					sweepChunk(rlo+int64(clo), rlo+int64(chi))
				})
			}
		}
		if len(s.dropSpans) > 0 {
			s.blankDropped(lo, hi, margin)
		}
		s.magDone = hi
	}

	// 2. Calibration: fix the threshold over the configured prefix, or
	// over the whole series at Close when CalibSamples is 0.
	if !s.calibrated {
		calibN := int64(-1)
		switch {
		case s.calib > 0 && s.magDone >= s.calib:
			calibN = s.calib
		case s.eof:
			calibN = s.magDone
			if s.calib > 0 && s.calib < calibN {
				calibN = s.calib
			}
		}
		if calibN < 0 {
			return
		}
		window := s.mag[:calibN-s.magBase]
		s.floor = dsp.NoiseFloor(window)
		s.threshold = s.floor * s.cfg.ThresholdFactor
		// Guard against a (near-)noiseless capture, as in the batch
		// detector: a hard floor at a small fraction of the strongest
		// differential seen in the calibration window.
		var maxMag float64
		for _, v := range window {
			if v > maxMag {
				maxMag = v
			}
		}
		if min := 0.05 * maxMag; s.threshold < min {
			s.threshold = min
		}
		s.calibrated = true
		// Calibration fixes the quantization scale; the shadow only pays
		// off for sweeps still to come, so a capture that calibrates at
		// Close (or one forced dense) never builds it. Shard mode skips
		// it too: the backfill rewrites the shadow arrays under
		// in-flight stripe readers, and the float64 tiers decide
		// identically (stripe.go).
		if !s.eof && !s.cfg.DenseSweep && s.threshold > 0 && s.maxComp > 0 && !s.shardOn() {
			s.enableQuant()
		}
	}

	// 3. Local-maximum scan. Serial by construction (it is a trivial
	// fraction of stage 1's work) and identical to the batch chunked
	// scan, which concatenates in position order. Position i needs
	// mag[i+1], so pre-Close the scan trails magDone by one.
	scanHi := s.magDone - 1
	if s.eof {
		scanHi = s.total
	}
	if scanHi > s.scanned {
		limit := s.limit()
		rawBefore := len(s.raw)
		scanRange := func(slo, shi int64) {
			for i := slo; i < shi; i++ {
				v := s.magAt(i)
				if v < s.threshold {
					continue
				}
				if i > 0 && s.magAt(i-1) > v {
					continue
				}
				if i+1 < limit && s.magAt(i+1) > v {
					continue
				}
				if i > 0 && s.magAt(i-1) == v {
					continue // plateau continuation
				}
				s.raw = append(s.raw, dsp.Peak{Pos: i, Value: v})
			}
		}
		if s.active == nil {
			scanRange(s.scanned, scanHi)
		} else {
			// Masked scan: positions outside the active spans hold
			// don't-care zeros below the (positive, preset) threshold, so
			// skipping them takes the same branch the full scan would.
			for _, r := range s.active {
				if rlo, rhi := max(r.Lo, s.scanned), min(r.Hi, scanHi); rlo < rhi {
					scanRange(rlo, rhi)
				}
			}
		}
		s.em.RawPeaks.Add(int64(len(s.raw) - rawBefore))
		s.scanned = scanHi
	}

	s.flushPeaks()
	s.finalizeGroups()
}

// flushPeaks runs non-maximum suppression, centroiding, and coalescing
// over the longest raw-peak prefix that is safe to cut: the gap after
// the prefix (to the next raw peak, or to where future peaks can still
// appear) must be at least max(MinSpacing, CoalesceDist+2·(Gap+2))+1
// raw samples. NMS chains only interact within MinSpacing, coalesce
// groups within CoalesceDist, and centroiding moves a peak by at most
// Gap+2, so no chain or group can straddle such a cut — processing the
// prefix alone equals the batch global pass restricted to it, at any
// block size. The prefix additionally waits until its centroid windows
// (±(Gap+2)) are fully computed.
func (s *Stream) flushPeaks() {
	if len(s.raw) == 0 {
		return
	}
	span := s.cfg.Gap + 2
	cut := s.cfg.MinSpacing
	if d := s.cfg.CoalesceDist + 2*span; d > cut {
		cut = d
	}
	cut++
	flushN := 0
	if s.eof {
		flushN = len(s.raw)
	} else {
		for c := len(s.raw); c >= 1; c-- {
			if s.raw[c-1].Pos+span >= s.magDone {
				continue // centroid window not fully computed yet
			}
			next := s.scanned // future maxima appear at scanned or later
			if c < len(s.raw) {
				next = s.raw[c].Pos
			}
			if next-s.raw[c-1].Pos >= cut {
				flushN = c
				break
			}
		}
	}
	if flushN == 0 {
		return
	}
	kept := s.suppressChunk(s.raw[:flushN])
	s.em.Kept.Add(int64(len(kept)))
	s.em.Suppressed.Add(int64(flushN - len(kept)))
	s.centroid(kept)
	groupsBefore := len(s.groups)
	s.groups = coalesceInto(s.groups, kept, s.cfg.CoalesceDist)
	s.em.Groups.Add(int64(len(s.groups) - groupsBefore))
	s.raw = append(s.raw[:0], s.raw[flushN:]...)
}

// suppressChunk is greedy non-maximum suppression over one flushed
// chunk, reusing stream-owned scratch so the steady state allocates
// nothing. It delegates to the shared dsp cell-grid pass: peaks are
// visited in (value desc, position asc) order — a total order, so the
// result is deterministic even under exact value ties — and returned
// sorted by position, like dsp.Suppress, in O(n log n) where the
// former kept-list scan was O(n²) under spurious-edge floods.
func (s *Stream) suppressChunk(chunk []dsp.Peak) []dsp.Peak {
	s.kept = s.nms.Suppress(s.kept, chunk, s.cfg.MinSpacing)
	return s.kept
}

// centroid refines each surviving peak to the floor-subtracted
// magnitude centroid of its ±(Gap+2) neighbourhood — the batch
// detector's centroidPeaks over the streaming magnitude window.
func (s *Stream) centroid(peaks []dsp.Peak) {
	span := s.cfg.Gap + 2
	limit := s.limit()
	for pi := range peaks {
		p := &peaks[pi]
		var wsum, psum float64
		for off := -span; off <= span; off++ {
			i := p.Pos + off
			if i < 0 || i >= limit {
				continue
			}
			w := s.magAt(i) - s.floor
			if w <= 0 {
				continue
			}
			wsum += w
			psum += w * float64(i)
		}
		if wsum > 0 {
			p.Pos = int64(psum/wsum + 0.5)
		}
	}
}

// finalizeGroups refines queued groups into edges once their widened
// averaging windows are settled. A head group without a known
// successor must wait until no future group can begin within MaxWin of
// it (futureFirstMin), at which point its trailing window is MaxWin
// wide whether refinement happens now or at Close — the choice of
// flush moment never changes the refined value.
func (s *Stream) finalizeGroups() {
	edgesBefore := len(s.edges)
	for s.ghead < len(s.groups) {
		g := s.groups[s.ghead]
		after := s.cfg.MaxWin
		if s.ghead+1 < len(s.groups) {
			if gap := s.groups[s.ghead+1].first - g.last - 2*s.cfg.Gap; gap < after {
				after = gap
			}
		} else if !s.eof {
			if s.futureFirstMin()-g.last-2*s.cfg.Gap < s.cfg.MaxWin {
				break
			}
		}
		before := s.cfg.MaxWin
		if s.havePrev {
			if gap := g.first - s.prevLast - 2*s.cfg.Gap; gap < before {
				before = gap
			}
		}
		if before < 1 {
			before = 1
		}
		if after < 1 {
			after = 1
		}
		a := s.meanRange(g.last+s.cfg.Gap, g.last+s.cfg.Gap+after)
		b := s.meanRange(g.first-s.cfg.Gap-before, g.first-s.cfg.Gap)
		diff := a - b
		s.edges = append(s.edges, Edge{
			Pos: g.pos, Diff: diff, Strength: dsp.Abs(diff),
			First: g.first, Last: g.last, Peaks: g.peaks,
		})
		s.prevLast, s.havePrev = g.last, true
		s.ghead++
	}
	s.em.Edges.Add(int64(len(s.edges) - edgesBefore))
	if s.ghead > 64 && s.ghead*2 >= len(s.groups) {
		s.groups = append(s.groups[:0], s.groups[s.ghead:]...)
		s.ghead = 0
	}
}

// trim slides the sample-proportional windows forward past everything
// that pending detection stages — or caller measurements above the
// low-water mark — can still read. Compaction is amortised: a copy
// happens only once the droppable span rivals the retained span.
func (s *Stream) trim() {
	if !s.calibrated || s.released || s.eof {
		return
	}
	const slack = 4
	g, mw := s.cfg.Gap, s.cfg.MaxWin
	span := g + 2

	keepSum := s.lowWater - g - mw
	if k := s.magDone - g - s.cfg.Win - span; k < keepSum {
		// The next differential extension reads from magDone−Gap−Win;
		// the sparse kernel's skip bound additionally reaches span =
		// Gap+2 guard positions further back (DESIGN.md §12).
		keepSum = k
	}
	if k := s.futureFirstMin() - g - mw; k < keepSum {
		keepSum = k // a future group's leading window
	}
	if s.ghead < len(s.groups) {
		if k := s.groups[s.ghead].first - g - mw; k < keepSum {
			keepSum = k // the queued head group's leading window
		}
	}
	s.dropSums(keepSum - slack)

	s.dropMag(s.futureFirstMin() - span - slack)
}

func (s *Stream) dropSums(keep int64) {
	if s.extSums {
		// Seeded lanes are caller-owned and must survive intact for the
		// next SIC round's span-local repair; they cost nothing extra to
		// retain (the caller holds them regardless).
		return
	}
	if keep > s.front {
		keep = s.front
	}
	drop := keep - s.sumBase
	if drop < 1<<13 || int(drop) < len(s.sumsRe)/2 {
		return
	}
	if s.shardOn() {
		// Copy-out compaction: in-flight stripe workers — and, under
		// the stage graph, published Views — hold slice-header
		// snapshots of the current backing arrays, so instead of
		// rewriting entries under them the retained tail moves into
		// fresh arrays and the old ones are left, intact, to their
		// readers (and the GC). No gate or drain needed, which matters
		// in shard mode: a stripe is nearly always in flight and the
		// fast detect stage keeps the ack gate closed, so a gated
		// in-place compaction would almost never run. (The quantized
		// shadow never exists in shard mode; see enableQuant.)
		n := len(s.sumsRe) - int(drop)
		re := pool.FloatUninit(n)
		im := pool.FloatUninit(n)
		copy(re, s.sumsRe[drop:])
		copy(im, s.sumsIm[drop:])
		s.sumsRe, s.sumsIm = re, im
		s.sumBase = keep
		return
	}
	// The in-place copy below rewrites entries a published View could
	// still be reading; the pipelined decoder gates it on every
	// snapshot having been retired (acked). Skipping is always safe —
	// the window just grows until the gate opens.
	if s.compactGate != nil && !s.compactGate() {
		return
	}
	n := copy(s.sumsRe, s.sumsRe[drop:])
	copy(s.sumsIm, s.sumsIm[drop:])
	s.sumsRe = s.sumsRe[:n]
	s.sumsIm = s.sumsIm[:n]
	if s.q16 {
		copy(s.qRe, s.qRe[drop:])
		copy(s.qIm, s.qIm[drop:])
		s.qRe = s.qRe[:n]
		s.qIm = s.qIm[:n]
	}
	s.sumBase = keep
}

func (s *Stream) dropMag(keep int64) {
	if keep > s.magDone {
		keep = s.magDone
	}
	drop := keep - s.magBase
	if drop < 1<<13 || int(drop) < len(s.mag)/2 {
		return
	}
	n := copy(s.mag, s.mag[drop:])
	s.mag = s.mag[:n]
	s.magBase = keep
}

// extendFloats grows b by n entries without zeroing them (every caller
// overwrites the extension) and without a temporary allocation.
func extendFloats(b []float64, n int) []float64 {
	need := len(b) + n
	for cap(b) < need {
		b = append(b[:cap(b)], 0)
	}
	return b[:need]
}

// extendInt32s is extendFloats for the quantized prefix lanes.
func extendInt32s(b []int32, n int) []int32 {
	need := len(b) + n
	for cap(b) < need {
		b = append(b[:cap(b)], 0)
	}
	return b[:need]
}

// group is a run of surviving peaks closer than CoalesceDist, pending
// refinement into an Edge.
type group struct {
	first, last int64
	pos         int64 // strength-weighted centre
	peaks       int
}

// coalesceInto merges position-sorted peaks into groups, appending to
// dst. Groups never straddle a flush cut (see flushPeaks), so chunked
// coalescing equals the batch pass.
func coalesceInto(dst []group, peaks []dsp.Peak, dist int64) []group {
	for i := 0; i < len(peaks); {
		j := i
		for j+1 < len(peaks) && peaks[j+1].Pos-peaks[j].Pos < dist {
			j++
		}
		var wsum, psum float64
		for k := i; k <= j; k++ {
			wsum += peaks[k].Value
			psum += peaks[k].Value * float64(peaks[k].Pos)
		}
		g := group{first: peaks[i].Pos, last: peaks[j].Pos, peaks: j - i + 1}
		if wsum > 0 {
			g.pos = int64(psum/wsum + 0.5)
		} else {
			g.pos = (g.first + g.last) / 2
		}
		dst = append(dst, g)
		i = j + 1
	}
	return dst
}
