package edgedetect

import (
	"reflect"
	"testing"

	"lf/internal/tag"
)

// pushBlocks feeds a capture's samples through a fresh Stream in
// fixed-size blocks and returns the finished stream.
func pushBlocks(t *testing.T, samples []complex128, cfg StreamConfig, blockSize int) *Stream {
	t.Helper()
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(samples); lo += blockSize {
		hi := lo + blockSize
		if hi > len(samples) {
			hi = len(samples)
		}
		if err := s.Push(samples[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStreamBlockInvariance pins the incremental detector's core
// contract: the edge list and noise floor are a pure function of the
// sample sequence, bit-identical at any push blocking — one sample at
// a time, odd sizes straddling every internal cut, or the whole
// capture at once — both with bounded calibration and with
// calibration deferred to Close.
func TestStreamBlockInvariance(t *testing.T) {
	h := complex(8e-4, -3e-4)
	var toggles []tag.Toggle
	state := byte(1)
	// Edges at irregular spacings, including close pairs that coalesce
	// and long silent gaps that trigger mid-capture flushes.
	for _, us := range []float64{40, 41.2, 80, 200, 201, 202, 600, 900, 905, 1500} {
		toggles = append(toggles, tag.Toggle{Time: us * 1e-6, State: state})
		state = 1 - state
	}
	cap := capture(t, h, 2.5e-9, toggles, 1700e-6)

	for _, calib := range []int64{0, 8192} {
		ref := pushBlocks(t, cap.Samples, StreamConfig{Config: DefaultConfig(), CalibSamples: calib}, len(cap.Samples))
		refEdges := ref.Edges()
		if len(refEdges) < len(toggles)/2 {
			t.Fatalf("reference detected only %d edges for %d toggles", len(refEdges), len(toggles))
		}
		for _, block := range []int{1, 37, 4096, 8191, len(cap.Samples) / 2} {
			s := pushBlocks(t, cap.Samples, StreamConfig{Config: DefaultConfig(), CalibSamples: calib}, block)
			if !reflect.DeepEqual(s.Edges(), refEdges) {
				t.Fatalf("calib=%d block=%d: edge list diverged from single-push reference:\nref: %+v\ngot: %+v",
					calib, block, refEdges, s.Edges())
			}
			if s.NoiseFloor() != ref.NoiseFloor() {
				t.Fatalf("calib=%d block=%d: noise floor %v != %v", calib, block, s.NoiseFloor(), ref.NoiseFloor())
			}
			s.Release()
		}
		ref.Release()
	}
}

// TestStreamMatchesBatchDetector pins the compatibility contract: the
// batch Detector (which now wraps Stream) and a blockwise Stream with
// deferred calibration produce identical edges on a noisy multi-edge
// capture.
func TestStreamMatchesBatchDetector(t *testing.T) {
	h := complex(6e-4, 4e-4)
	var toggles []tag.Toggle
	state := byte(1)
	for us := 30.0; us < 580; us += 12.5 {
		toggles = append(toggles, tag.Toggle{Time: us * 1e-6, State: state})
		state = 1 - state
	}
	cap := capture(t, h, 2.5e-9, toggles, 600e-6)

	det, err := New(cap, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := pushBlocks(t, cap.Samples, StreamConfig{Config: DefaultConfig()}, 1000)
	if !reflect.DeepEqual(det.Edges(), s.Edges()) {
		t.Fatalf("stream edges diverged from batch detector:\nbatch:  %+v\nstream: %+v", det.Edges(), s.Edges())
	}
	if det.NoiseFloor() != s.NoiseFloor() {
		t.Fatalf("noise floor: batch %v, stream %v", det.NoiseFloor(), s.NoiseFloor())
	}
	s.Release()
	det.Release()
}

// TestStreamQuantizedTierEdgeIdentity pins the int16 skip tier's edge
// decisions against the pure float64 path: identical edge lists and
// noise floors whether the quantized prefix shadow is active or
// force-disabled, across block sizes that land the disable/enable
// transitions at different sweep boundaries.
func TestStreamQuantizedTierEdgeIdentity(t *testing.T) {
	h := complex(8e-4, -3e-4)
	var toggles []tag.Toggle
	state := byte(1)
	for _, us := range []float64{40, 41.2, 80, 200, 201, 202, 600, 900, 905, 1500} {
		toggles = append(toggles, tag.Toggle{Time: us * 1e-6, State: state})
		state = 1 - state
	}
	cap := capture(t, h, 2.5e-9, toggles, 1700e-6)

	for _, block := range []int{37, 4096, len(cap.Samples)} {
		cfg := StreamConfig{Config: DefaultConfig(), CalibSamples: 8192}
		quant, err := NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wasQuant := false
		for lo := 0; lo < len(cap.Samples); lo += block {
			hi := min(lo+block, len(cap.Samples))
			if err := quant.Push(cap.Samples[lo:hi]); err != nil {
				t.Fatal(err)
			}
			wasQuant = wasQuant || quant.Quantized()
		}
		if err := quant.Close(); err != nil {
			t.Fatal(err)
		}
		// Reference stream with the shadow force-disabled after every
		// push, so each sweep extension runs the pure float64 kernels.
		plain, err := NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(cap.Samples); lo += block {
			hi := min(lo+block, len(cap.Samples))
			if err := plain.Push(cap.Samples[lo:hi]); err != nil {
				t.Fatal(err)
			}
			plain.disableQuant()
		}
		if err := plain.Close(); err != nil {
			t.Fatal(err)
		}
		if !wasQuant {
			t.Fatalf("block=%d: quantized tier never activated on a clean capture", block)
		}
		if !reflect.DeepEqual(quant.Edges(), plain.Edges()) {
			t.Fatalf("block=%d: quantized tier diverged:\nquant: %+v\nplain: %+v",
				block, quant.Edges(), plain.Edges())
		}
		if quant.NoiseFloor() != plain.NoiseFloor() {
			t.Fatalf("block=%d: noise floor %v != %v", block, quant.NoiseFloor(), plain.NoiseFloor())
		}
		quant.Release()
		plain.Release()
	}
}

// TestStreamLowWaterTrimsWindow checks the memory contract directly at
// the detector level: with bounded calibration and an advancing
// low-water mark, the live window stays flat while the pushed total
// grows without bound.
func TestStreamLowWaterTrimsWindow(t *testing.T) {
	h := complex(8e-4, 0)
	cap := capture(t, h, 2.5e-9, []tag.Toggle{{Time: 40e-6, State: 1}}, 400e-6)
	s, err := NewStream(StreamConfig{Config: DefaultConfig(), CalibSamples: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const block = 2048
	var peakTail int64
	// Push the capture, then keep pushing its noisy tail for 50x more,
	// trailing the low-water mark behind the front.
	total := 0
	push := func(samples []complex128) {
		for lo := 0; lo < len(samples); lo += block {
			hi := lo + block
			if hi > len(samples) {
				hi = len(samples)
			}
			if err := s.Push(samples[lo:hi]); err != nil {
				t.Fatal(err)
			}
			total += hi - lo
			s.SetLowWater(s.Front() - 4*block)
			if r := s.RetainedBytes(); r > peakTail {
				peakTail = r
			}
		}
	}
	push(cap.Samples)
	tail := cap.Samples[len(cap.Samples)-8192:]
	for i := 0; i < 50; i++ {
		push(tail)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	pushedBytes := int64(total) * 16
	if peakTail >= pushedBytes/8 {
		t.Fatalf("retained window %d B not far below pushed %d B", peakTail, pushedBytes)
	}
	s.Release()
}
