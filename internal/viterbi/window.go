package viterbi

import "lf/internal/obs"

// Metrics instruments the windowed recursion. Commit counters are
// recorded once per window commit — a function of the emission
// sequence alone — so totals stay deterministic even when per-stream
// decoders run on a worker pool (atomic addition commutes). The zero
// value records nothing.
type Metrics struct {
	// Slots counts trellis steps pushed.
	Slots *obs.Counter
	// MergeCommits counts commits where every live survivor chain
	// agreed (exact); ForcedCommits counts truncations at window depth.
	MergeCommits, ForcedCommits *obs.Counter
}

// Windowed is an online Viterbi decoder over the same 4-state edge
// trellis as Decoder, holding survivor-path state for at most a fixed
// window of trellis steps. Emissions are pushed one slot at a time;
// decoded states commit as soon as every live survivor path agrees on
// them (path merging), and are force-committed at truncation depth
// when the paths refuse to merge, so per-stream memory is O(window)
// instead of O(sequence length).
//
// Merge commits are exact: once all survivor chains pass through one
// state, every future backtrack shares that prefix, so the committed
// states equal what the full unwindowed recursion would emit. Forced
// commits (no merge within a whole window — in this trellis that
// requires a pathological run of equally-likely hold polarities) take
// the current best chain and may in principle differ from the full
// backtrack; sequences shorter than the window never force-commit and
// are bit-identical to Decoder.Decode by construction.
type Windowed struct {
	d    *Decoder
	w    int
	back [][numStates]int8 // ring: back[t mod w] for uncommitted steps t
	sc   [numStates]float64
	n    int // emissions pushed
	base int // states [0, base) are committed
	out  []State
	m    Metrics
}

// DefaultWindow is the trellis window used when a caller passes 0: deep
// enough that survivor paths in any realistic capture merge well before
// forced truncation, small enough to bound per-stream state.
const DefaultWindow = 256

// NewWindowed wraps a decoder's trellis in an online window. window <= 0
// selects DefaultWindow; tiny values are clamped to 8.
func NewWindowed(d *Decoder, window int) *Windowed {
	if window <= 0 {
		window = DefaultWindow
	}
	if window < 8 {
		window = 8
	}
	return &Windowed{d: d, w: window, back: make([][numStates]int8, window)}
}

// Reset rewinds the decoder for a fresh sequence, keeping the ring.
func (v *Windowed) Reset() {
	v.n, v.base = 0, 0
	v.out = v.out[:0]
}

// Push advances the trellis by one slot.
func (v *Windowed) Push(e Emission) {
	if v.n == 0 {
		for s := 0; s < numStates; s++ {
			v.sc[s] = v.d.logInit[s] + e.logLik(State(s))
		}
		v.n = 1
		return
	}
	if v.n-v.base >= v.w {
		v.commit(false)
	}
	var next [numStates]float64
	var bp [numStates]int8
	for to := 0; to < numStates; to++ {
		best := neginf
		bestFrom := 0
		for from := 0; from < numStates; from++ {
			if sc := v.sc[from] + v.d.logTrans[from][to]; sc > best {
				best, bestFrom = sc, from
			}
		}
		next[to] = best + e.logLik(State(to))
		bp[to] = int8(bestFrom)
	}
	v.sc = next
	v.back[v.n%v.w] = bp
	v.n++
}

// Committed returns the states committed so far. The slice is appended
// to in place by Push/Flush; callers must not retain it across calls.
func (v *Windowed) Committed() []State { return v.out }

// Flush commits every remaining state and returns the full decoded
// sequence.
func (v *Windowed) Flush() []State {
	if v.n > 0 && v.base < v.n {
		v.commit(true)
	}
	return v.out
}

// commit backtracks the live survivor chains over the uncommitted span
// [base, n). It first walks all live chains down in lockstep looking
// for the highest step where they coincide — everything at or below a
// merge point is final under any continuation — and commits through it.
// When no merge exists, a forced commit (all=false) truncates the
// oldest half window from the best current chain; a final commit
// (all=true) takes the best chain whole.
func (v *Windowed) commit(all bool) {
	hi := v.n - 1 // newest uncommitted state index
	// Live end states and their chain cursors.
	var ends, cur [numStates]int
	live := 0
	bestEnd, bestScore := 0, neginf
	for s := 0; s < numStates; s++ {
		if v.sc[s] > bestScore {
			bestScore, bestEnd = v.sc[s], s
		}
		if v.sc[s] > neginf {
			ends[live] = s
			live++
		}
	}
	if live == 0 {
		ends[0], live = bestEnd, 1
	}
	cur = ends
	merged := -1 // highest step where all live chains share a state
	allEqual := func() bool {
		for i := 1; i < live; i++ {
			if cur[i] != cur[0] {
				return false
			}
		}
		return true
	}
	if allEqual() {
		merged = hi
	}
	for t := hi; t > v.base && merged < 0; t-- {
		bp := &v.back[t%v.w]
		for i := 0; i < live; i++ {
			cur[i] = int(bp[cur[i]])
		}
		if allEqual() {
			merged = t - 1
		}
	}
	switch {
	case all:
		v.emit(hi, bestEnd)
	case merged >= 0:
		v.m.MergeCommits.Inc()
		v.emit(merged, cur[0])
	default:
		v.m.ForcedCommits.Inc()
		// Forced truncation: no merge within a full window. Commit the
		// oldest half along the current best chain, then pin future
		// paths to the seam: any end whose survivor chain does not pass
		// through the committed seam state is killed, so the sequence
		// stays transition-valid across the forced boundary.
		end := v.base + v.w/2 - 1
		cur = ends
		bestIdx := 0
		for i := 0; i < live; i++ {
			if ends[i] == bestEnd {
				bestIdx = i
			}
		}
		for t := hi; t > end; t-- {
			bp := &v.back[t%v.w]
			for i := 0; i < live; i++ {
				cur[i] = int(bp[cur[i]])
			}
		}
		seam := cur[bestIdx]
		for i := 0; i < live; i++ {
			if cur[i] != seam {
				v.sc[ends[i]] = neginf
			}
		}
		v.emit(end, seam)
	}
}

// emit backtracks the chain ending in endState at step end, appends the
// states [base, end] to the output, and advances base past them.
func (v *Windowed) emit(end, endState int) {
	if end < v.base {
		return
	}
	span := end - v.base + 1
	start := len(v.out)
	v.out = append(v.out, make([]State, span)...)
	st := endState
	v.out[start+span-1] = State(st)
	for t := end; t > v.base; t-- {
		st = int(v.back[t%v.w][st])
		v.out[start+t-1-v.base] = State(st)
	}
	v.base = end + 1
}

// Margin returns the survivor-score gap between the best and runner-up
// end states after the last Push — a log-likelihood proxy for how
// decisively the trellis preferred the decoded sequence over its
// nearest competitor. +Inf when only one survivor path remains live.
// Valid after Flush (the final commit never rewrites the end scores).
func (v *Windowed) Margin() float64 {
	if v.n == 0 {
		return 0
	}
	best, second := neginf, neginf
	for s := 0; s < numStates; s++ {
		switch sc := v.sc[s]; {
		case sc > best:
			second, best = best, sc
		case sc > second:
			second = sc
		}
	}
	return best - second
}

// DecodeWindowed runs the windowed recursion over a whole emission
// sequence. With window >= len(emissions) (or any sequence whose
// survivor paths merge within the window) the result is identical to
// Decode; either way memory is O(window).
func (d *Decoder) DecodeWindowed(emissions []Emission, window int) []State {
	states, _ := d.DecodeWindowedMargin(emissions, window)
	return states
}

// DecodeWindowedMargin is DecodeWindowed plus the final path margin
// (see Windowed.Margin), for per-frame confidence scoring.
func (d *Decoder) DecodeWindowedMargin(emissions []Emission, window int) ([]State, float64) {
	return d.DecodeWindowedMarginObs(emissions, window, Metrics{})
}

// DecodeWindowedMarginObs is DecodeWindowedMargin with pipeline
// instrumentation (slot and window-commit counters).
func (d *Decoder) DecodeWindowedMarginObs(emissions []Emission, window int, m Metrics) ([]State, float64) {
	if len(emissions) == 0 {
		return nil, 0
	}
	v := NewWindowed(d, window)
	v.m = m
	m.Slots.Add(int64(len(emissions)))
	for _, e := range emissions {
		v.Push(e)
	}
	states := v.Flush()
	return states, v.Margin()
}
