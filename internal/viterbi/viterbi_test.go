package viterbi

import (
	"testing"
	"testing/quick"

	"lf/internal/rng"
)

var testE = complex(5e-4, 3e-4)

// emit builds the observation sequence for a bit string under
// toggle-on-1 modulation starting from a detuned antenna, with optional
// per-slot noise.
func emit(bits []byte, sigma2 float64, src *rng.Source) []Emission {
	out := make([]Emission, len(bits))
	level := byte(0)
	for i, b := range bits {
		var obs complex128
		if b == 1 {
			if level == 0 {
				obs = testE
				level = 1
			} else {
				obs = -testE
				level = 0
			}
		}
		if src != nil {
			obs += src.ComplexNorm(sigma2)
		}
		out[i] = Emission{Obs: obs, E: testE, Sigma2: sigma2 + 1e-12}
		_ = i
	}
	return out
}

func TestStateBitMapping(t *testing.T) {
	if Up.Bit() != 1 || Down.Bit() != 1 {
		t.Fatal("edges must decode as 1")
	}
	if HoldAfterUp.Bit() != 0 || HoldAfterDown.Bit() != 0 {
		t.Fatal("holds must decode as 0")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Up: "↑", Down: "↓", HoldAfterUp: "-+", HoldAfterDown: "--"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestDecodeCleanSequence(t *testing.T) {
	bits := []byte{1, 0, 0, 0, 0, 1, 1, 0, 1, 0} // the paper's Table 1 pattern
	emissions := emit(bits, 1e-12, nil)
	states := NewDecoder(0.5, Down).Decode(emissions)
	got := Bits(states)
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d: got %d want %d (states %v)", i, got[i], bits[i], states)
		}
	}
}

func TestDecodeCorrectsSpuriousEdge(t *testing.T) {
	// A hold slot polluted by a same-polarity edge observation: the
	// alternation constraint must override it.
	bits := []byte{1, 0, 1}
	emissions := emit(bits, 1e-9, nil)
	// Corrupt slot 1 with a rising-edge-looking observation; a rising
	// edge cannot follow the rising edge at slot 0.
	emissions[1].Obs = testE * complex(0.9, 0)
	states := NewDecoder(0.5, Down).Decode(emissions)
	if states[0] != Up {
		t.Fatalf("slot 0 decoded %v", states[0])
	}
	if states[1] == Up {
		t.Fatal("decoder emitted ↑ after ↑")
	}
}

func TestDecodeNeverEmitsInvalidSequences(t *testing.T) {
	src := rng.New(7)
	f := func(seed int64, n uint8) bool {
		s := rng.New(seed)
		length := int(n%50) + 2
		emissions := make([]Emission, length)
		for i := range emissions {
			// Arbitrary noisy observations, including nonsense.
			emissions[i] = Emission{
				Obs:    s.ComplexNorm(1e-7),
				E:      testE,
				Sigma2: 1e-8,
			}
		}
		states := NewDecoder(0.5, Down).Decode(emissions)
		return Valid(states, Down)
	}
	_ = src
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNoisyRoundTrip(t *testing.T) {
	src := rng.New(11)
	sigma2 := (5e-5) * (5e-5) // SNR ~20 dB against |e|
	errs, total := 0, 0
	for trial := 0; trial < 20; trial++ {
		bits := src.Bits(100)
		emissions := emit(bits, sigma2, src)
		got := Bits(NewDecoder(0.5, Down).Decode(emissions))
		for i := range bits {
			total++
			if got[i] != bits[i] {
				errs++
			}
		}
	}
	if errs > total/100 {
		t.Fatalf("noisy decode errors %d/%d", errs, total)
	}
}

func TestValid(t *testing.T) {
	if !Valid([]State{Up, Down, Up}, Down) {
		t.Fatal("alternating sequence rejected")
	}
	if Valid([]State{Up, Up}, Down) {
		t.Fatal("↑↑ accepted")
	}
	if Valid([]State{Up, HoldAfterDown}, Down) {
		t.Fatal("hold state inconsistent with level accepted")
	}
	if !Valid([]State{HoldAfterDown, Up, HoldAfterUp, Down}, Down) {
		t.Fatal("valid mixed sequence rejected")
	}
	// Starting level from prev=Up means the first edge must be Down.
	if Valid([]State{Up}, Up) {
		t.Fatal("↑ after ↑ accepted via prev")
	}
}

func TestHardDecode(t *testing.T) {
	bits := []byte{1, 1, 0, 1}
	emissions := emit(bits, 1e-12, nil)
	states := HardDecode(emissions)
	got := Bits(states)
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("hard decode bit %d: %d want %d", i, got[i], bits[i])
		}
	}
}

func TestViterbiBeatsHardDecodeUnderNoise(t *testing.T) {
	src := rng.New(13)
	sigma2 := (2.4e-4) * (2.4e-4) // low SNR: |e|/σ ≈ 2.4
	hardErrs, vitErrs, total := 0, 0, 0
	for trial := 0; trial < 40; trial++ {
		bits := src.Bits(80)
		emissions := emit(bits, sigma2, src)
		hard := Bits(HardDecode(emissions))
		vit := Bits(NewDecoder(0.5, Down).Decode(emissions))
		for i := range bits {
			total++
			if hard[i] != bits[i] {
				hardErrs++
			}
			if vit[i] != bits[i] {
				vitErrs++
			}
		}
	}
	if vitErrs >= hardErrs {
		t.Fatalf("Viterbi (%d errs) did not beat hard decoding (%d errs) over %d bits",
			vitErrs, hardErrs, total)
	}
}

func TestDecodeEmpty(t *testing.T) {
	if got := NewDecoder(0.5, Down).Decode(nil); got != nil {
		t.Fatal("empty decode should be nil")
	}
}

func TestBiasedPrior(t *testing.T) {
	// With a strong 0-bias, an ambiguous observation decodes as hold.
	emissions := []Emission{{Obs: testE * complex(0.5, 0), E: testE, Sigma2: 1e-7}}
	biased := NewDecoder(0.02, Down).Decode(emissions)
	if biased[0].Bit() != 0 {
		t.Fatalf("bias ignored: %v", biased[0])
	}
}
