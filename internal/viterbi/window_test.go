package viterbi

import (
	"fmt"
	"testing"

	"lf/internal/rng"
)

// TestWindowedMatchesBatchWithinWindow pins the exactness contract: any
// sequence no longer than the window must decode bit-identically to the
// full recursion, for clean and noisy emissions alike.
func TestWindowedMatchesBatchWithinWindow(t *testing.T) {
	src := rng.New(3)
	sigma2 := (8e-5) * (8e-5)
	for trial := 0; trial < 25; trial++ {
		n := 1 + int(uint64(src.Intn(200)))
		bits := src.Bits(n)
		emissions := emit(bits, sigma2, src)
		d := NewDecoder(0.5, Down)
		want := d.Decode(emissions)
		got := d.DecodeWindowed(emissions, 256)
		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: state %d = %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestWindowedMatchesBatchBeyondWindow exercises sequences far longer
// than the window. Survivor paths under real observations merge within
// a handful of slots, so even with forced-truncation armed the windowed
// decode should equal the batch decode.
func TestWindowedMatchesBatchBeyondWindow(t *testing.T) {
	src := rng.New(9)
	sigma2 := (8e-5) * (8e-5)
	for _, w := range []int{16, 64, 256} {
		t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
			bits := src.Bits(w * 10)
			emissions := emit(bits, sigma2, src)
			d := NewDecoder(0.5, Down)
			want := d.Decode(emissions)
			got := d.DecodeWindowed(emissions, w)
			if len(got) != len(want) {
				t.Fatalf("length %d want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("state %d = %v want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestWindowedAlwaysValid: whatever the noise, forced truncation
// included, the committed sequence must satisfy the edge-alternation
// constraint end to end (seams between commits cannot emit ↑↑ or ↓↓).
func TestWindowedAlwaysValid(t *testing.T) {
	src := rng.New(21)
	for trial := 0; trial < 30; trial++ {
		n := 8 + int(uint64(src.Intn(500)))
		emissions := make([]Emission, n)
		for i := range emissions {
			emissions[i] = Emission{Obs: src.ComplexNorm(1e-7), E: testE, Sigma2: 1e-8}
		}
		states := NewDecoder(0.5, Down).DecodeWindowed(emissions, 16)
		if len(states) != n {
			t.Fatalf("trial %d: committed %d of %d states", trial, len(states), n)
		}
		if !Valid(states, Down) {
			t.Fatalf("trial %d: windowed decode emitted invalid sequence", trial)
		}
	}
}

// TestWindowedIncrementalCommit checks the streaming property the frame
// pipeline relies on: states become available via Committed() as slots
// are pushed, without waiting for Flush, and Flush only appends.
func TestWindowedIncrementalCommit(t *testing.T) {
	src := rng.New(5)
	bits := src.Bits(300)
	emissions := emit(bits, (5e-5)*(5e-5), src)
	v := NewWindowed(NewDecoder(0.5, Down), 32)
	prev := 0
	for i, e := range emissions {
		v.Push(e)
		if got := len(v.Committed()); got < prev {
			t.Fatalf("commit count went backwards at slot %d: %d -> %d", i, prev, got)
		} else {
			prev = got
		}
	}
	if prev == 0 {
		t.Fatal("no states committed before Flush on a 300-slot sequence with window 32")
	}
	states := v.Flush()
	if len(states) != len(emissions) {
		t.Fatalf("flush committed %d states want %d", len(states), len(emissions))
	}
	want := NewDecoder(0.5, Down).Decode(emissions)
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state %d = %v want %v", i, states[i], want[i])
		}
	}
}

// TestWindowedReset pins that Reset clears cross-sequence state: the
// same input decodes identically through a reused engine.
func TestWindowedReset(t *testing.T) {
	src := rng.New(17)
	bits := src.Bits(120)
	emissions := emit(bits, (5e-5)*(5e-5), src)
	v := NewWindowed(NewDecoder(0.5, Down), 32)
	run := func() []State {
		v.Reset()
		for _, e := range emissions {
			v.Push(e)
		}
		out := v.Flush()
		cp := make([]State, len(out))
		copy(cp, out)
		return cp
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reused engine diverged at state %d", i)
		}
	}
}

func BenchmarkWindowedDecode(b *testing.B) {
	src := rng.New(1)
	bits := src.Bits(1 << 12)
	emissions := emit(bits, (5e-5)*(5e-5), src)
	v := NewWindowed(NewDecoder(0.5, Down), DefaultWindow)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Reset()
		for _, e := range emissions {
			v.Push(e)
		}
		v.Flush()
	}
}
