// Package viterbi implements the error-correction stage of the decoder
// (§3.5): a maximum-likelihood sequence estimator over the four edge
// states {↑, ↓, −₊, −₋}. The physics of toggle modulation forbids two
// rising (or two falling) edges in a row; the Viterbi decoder encodes
// that constraint and combines it with the analog IQ differential
// observed at each bit slot to correct missed and spurious edges
// without any tag-side coding.
package viterbi

import (
	"math"
)

// State is one of the four edge states.
type State int

const (
	// Up is a rising edge at this slot (bit 1, antenna goes tuned).
	Up State = iota
	// Down is a falling edge at this slot (bit 1, antenna goes detuned).
	Down
	// HoldAfterUp: no edge; the most recent edge was rising (−₊).
	HoldAfterUp
	// HoldAfterDown: no edge; the most recent edge was falling (−₋).
	HoldAfterDown

	numStates = 4
)

// String returns the paper's notation for the state.
func (s State) String() string {
	switch s {
	case Up:
		return "↑"
	case Down:
		return "↓"
	case HoldAfterUp:
		return "-+"
	case HoldAfterDown:
		return "--"
	}
	return "?"
}

// Bit returns the transmitted bit the state implies: edges are 1s,
// holds are 0s (toggle-on-1 modulation).
func (s State) Bit() byte {
	if s == Up || s == Down {
		return 1
	}
	return 0
}

// neginf is the log probability of a forbidden transition.
var neginf = math.Inf(-1)

// Decoder is a 4-state edge-constraint Viterbi decoder. Construct with
// NewDecoder, then call Decode once per stream.
type Decoder struct {
	logTrans [numStates][numStates]float64
	logInit  [numStates]float64
}

// NewDecoder builds a decoder. p1 is the prior probability that a slot
// carries a 1 bit (an edge); 0.5 for unbiased data. prev is the
// polarity of the edge immediately before the decoded window (the last
// preamble edge), which pins the initial state distribution.
func NewDecoder(p1 float64, prev State) *Decoder {
	if p1 <= 0 || p1 >= 1 {
		p1 = 0.5
	}
	d := &Decoder{}
	lp1 := math.Log(p1)
	lp0 := math.Log(1 - p1)
	for from := 0; from < numStates; from++ {
		for to := 0; to < numStates; to++ {
			d.logTrans[from][to] = neginf
		}
	}
	// After a rising edge (or a hold that followed one) the antenna is
	// tuned: the next event is either a falling edge (bit 1) or a hold
	// that remembers the rising edge (bit 0). Symmetrically for
	// falling.
	d.logTrans[Up][Down] = lp1
	d.logTrans[Up][HoldAfterUp] = lp0
	d.logTrans[HoldAfterUp][Down] = lp1
	d.logTrans[HoldAfterUp][HoldAfterUp] = lp0
	d.logTrans[Down][Up] = lp1
	d.logTrans[Down][HoldAfterDown] = lp0
	d.logTrans[HoldAfterDown][Up] = lp1
	d.logTrans[HoldAfterDown][HoldAfterDown] = lp0

	for s := 0; s < numStates; s++ {
		d.logInit[s] = neginf
	}
	switch prev {
	case Up, HoldAfterUp:
		d.logInit[Down] = lp1
		d.logInit[HoldAfterUp] = lp0
	default:
		d.logInit[Up] = lp1
		d.logInit[HoldAfterDown] = lp0
	}
	return d
}

// Emission models the observation likelihood at one slot: the IQ
// differential observed there, as a complex Gaussian around +e (Up),
// −e (Down) or 0 (holds) with total variance sigma2.
type Emission struct {
	// Obs is the observed IQ differential at the slot.
	Obs complex128
	// E is the stream's rising-edge vector at this slot.
	E complex128
	// Sigma2 is the complex noise variance of the observation.
	Sigma2 float64
}

// logLik returns log p(obs | state).
func (e Emission) logLik(s State) float64 {
	var mu complex128
	switch s {
	case Up:
		mu = e.E
	case Down:
		mu = -e.E
	}
	dr := real(e.Obs) - real(mu)
	di := imag(e.Obs) - imag(mu)
	s2 := e.Sigma2
	if s2 <= 0 {
		s2 = 1e-12
	}
	return -(dr*dr + di*di) / s2
}

// Decode runs the Viterbi recursion over the per-slot emissions and
// returns the most likely state sequence.
func (d *Decoder) Decode(emissions []Emission) []State {
	n := len(emissions)
	if n == 0 {
		return nil
	}
	// score[s] is the best log score of any path ending in state s.
	var score, next [numStates]float64
	back := make([][numStates]int8, n)
	for s := 0; s < numStates; s++ {
		score[s] = d.logInit[s] + emissions[0].logLik(State(s))
	}
	for t := 1; t < n; t++ {
		for to := 0; to < numStates; to++ {
			best := neginf
			bestFrom := 0
			for from := 0; from < numStates; from++ {
				v := score[from] + d.logTrans[from][to]
				if v > best {
					best = v
					bestFrom = from
				}
			}
			next[to] = best + emissions[t].logLik(State(to))
			back[t][to] = int8(bestFrom)
		}
		score = next
	}
	// Backtrack from the best final state.
	bestState := 0
	for s := 1; s < numStates; s++ {
		if score[s] > score[bestState] {
			bestState = s
		}
	}
	states := make([]State, n)
	states[n-1] = State(bestState)
	for t := n - 1; t > 0; t-- {
		bestState = int(back[t][bestState])
		states[t-1] = State(bestState)
	}
	return states
}

// Bits converts a state sequence to the decoded bit sequence.
func Bits(states []State) []byte {
	bits := make([]byte, len(states))
	for i, s := range states {
		bits[i] = s.Bit()
	}
	return bits
}

// Valid reports whether a state sequence satisfies the edge-alternation
// constraints given the previous edge polarity. Used by property tests:
// Decode must never emit an invalid sequence.
func Valid(states []State, prev State) bool {
	level := byte(0)
	if prev == Up || prev == HoldAfterUp {
		level = 1
	}
	for _, s := range states {
		switch s {
		case Up:
			if level == 1 {
				return false
			}
			level = 1
		case Down:
			if level == 0 {
				return false
			}
			level = 0
		case HoldAfterUp:
			if level != 1 {
				return false
			}
		case HoldAfterDown:
			if level != 0 {
				return false
			}
		}
	}
	return true
}

// HardDecode is the no-Viterbi fallback used by the Fig. 9 ablation:
// each slot is decided independently by nearest mean (+e, −e, 0), with
// no sequence constraints.
func HardDecode(emissions []Emission) []State {
	states := make([]State, len(emissions))
	level := byte(0)
	for i, em := range emissions {
		dUp := sq(em.Obs - em.E)
		dDown := sq(em.Obs + em.E)
		dHold := sq(em.Obs)
		switch {
		case dUp <= dDown && dUp <= dHold:
			states[i] = Up
			level = 1
		case dDown <= dUp && dDown <= dHold:
			states[i] = Down
			level = 0
		default:
			if level == 1 {
				states[i] = HoldAfterUp
			} else {
				states[i] = HoldAfterDown
			}
		}
	}
	return states
}

func sq(x complex128) float64 {
	return real(x)*real(x) + imag(x)*imag(x)
}
