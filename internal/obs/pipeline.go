package obs

// Pipeline bundles the decode pipeline's pre-registered metrics, one
// instance per StreamDecoder (batch Decode wraps one). Hot-path stages
// hold the typed pointers directly — no map lookups after construction.
// The zero value (and the shared Nop instance) is fully disabled: every
// field is a nil metric, so each record site costs one branch.
//
// Metric classification (see Class) decides what enters the decode
// identity:
//
//   - Edge, Walk, Collide, Viterbi, SIC, Frames, Drops: ClassDecode.
//     Incremented either from serial stages (edge scan/NMS/coalesce,
//     collision-group loop, flush accounting) or through commutative
//     atomic adds from index-confined parallel stages (per-stream
//     Viterbi commits), so totals are bit-identical at any Parallelism
//     and block size.
//   - Work: ClassRuntime. Chunk counts and pool occupancy depend on
//     the worker count by definition.
//   - Stage timings: ClassRuntime. Wall time never feeds a decode
//     decision (DESIGN.md §13).
type Pipeline struct {
	// Registry backs Snapshot; nil on a disabled pipeline.
	Registry *Registry

	Edge    EdgeMetrics
	Walk    WalkMetrics
	Collide CollideMetrics
	Viterbi ViterbiMetrics
	SIC     SICMetrics
	Frames  FrameMetrics
	Drops   DropMetrics
	Work    WorkMetrics
	Stage   StageTimings
	Pipe    PipeMetrics
	Shard   ShardMetrics
}

// EdgeMetrics instruments the edge detector. Conservation invariants:
// RawPeaks == Kept + Suppressed, Edges == Groups, and at end of decode
// Edges == Claimed + Unclaimed.
type EdgeMetrics struct {
	// RawPeaks counts above-threshold local maxima found by the scan.
	RawPeaks *Counter
	// Kept and Suppressed partition the raw peaks by the non-maximum
	// suppression outcome.
	Kept, Suppressed *Counter
	// Groups counts coalesced peak groups; each becomes exactly one
	// edge, so Groups == Edges once the capture closes.
	Groups *Counter
	// Edges counts finalized edges.
	Edges *Counter
	// Claimed and Unclaimed partition the detected edges by whether a
	// committed first-pass stream slot referenced them (recorded at
	// flush; SIC-recovered streams index a residual capture's own edge
	// list and are excluded from the disposition).
	Claimed, Unclaimed *Counter
	// DropSamples counts non-finite input samples replaced by the
	// hold-last-finite rule.
	DropSamples *Counter
}

// WalkMetrics instruments slot walking, recorded at flush from the
// committed results. Slots == Clean + Foreign + Empty.
type WalkMetrics struct {
	Slots *Counter
	// Clean / Foreign / Empty partition slots by match kind:
	// confidently this stream's edge, a colliding or foreign edge, or
	// no edge in the window.
	Clean, Foreign, Empty *Counter
}

// CollideMetrics instruments collision separation. GroupsPair ==
// PairBlind + PairAnchored + PairUnresolved.
type CollideMetrics struct {
	// GroupsPair / GroupsJoint count collision groups by arity (two
	// streams vs three or more).
	GroupsPair, GroupsJoint *Counter
	// PairBlind / PairAnchored / PairUnresolved partition pair groups
	// by how they were separated.
	PairBlind, PairAnchored, PairUnresolved *Counter
	// BlindAttempts / BlindDegenerate count nine-cluster parallelogram
	// attempts and the ones that failed on degenerate geometry.
	BlindAttempts, BlindDegenerate *Counter
	// CancelledSlots counts slot observations rewritten with another
	// stream's contribution cancelled.
	CancelledSlots *Counter
}

// ViterbiMetrics instruments the windowed sequence decoder. Commit
// counters are recorded from per-stream decoders running in parallel;
// atomic addition commutes, so the totals stay deterministic.
type ViterbiMetrics struct {
	// Slots counts trellis steps pushed (first-pass streams only; SIC
	// residual decodes run unmetered).
	Slots *Counter
	// MergeCommits / ForcedCommits count window commits by kind: exact
	// survivor-path merges vs truncation at window depth.
	MergeCommits, ForcedCommits *Counter
	// PathMargin is the per-frame normalized survivor-score margin,
	// recorded at flush.
	PathMargin *Histogram
}

// SICMetrics instruments successive interference cancellation.
type SICMetrics struct {
	// Rounds counts cancellation rounds executed.
	Rounds *Counter
	// ResidualDecodes counts full pipeline passes over residuals.
	ResidualDecodes *Counter
	// Recovered counts streams recovered from residuals.
	Recovered *Counter
	// DirtySamples totals, over executed rounds, the size of the
	// round's detection mask: the newly cancelled streams' extents
	// widened by the sweep's cut distance and closed over the decoded
	// streams they interact with (DESIGN.md §17). A pure function of
	// the decode, so decode-class despite measuring the incremental
	// win.
	DirtySamples *Counter
	// CarriedStreams totals, over executed rounds, the trusted streams
	// whose subtraction was carried over from earlier rounds instead of
	// being recomputed.
	CarriedStreams *Counter
}

// FrameMetrics instruments frame commit, recorded at flush in result
// order. Committed == CRCOK + CRCFail.
type FrameMetrics struct {
	Committed *Counter
	// CRCOK / CRCFail partition committed frames by EPC CRC-16.
	CRCOK, CRCFail *Counter
	// Recovered counts committed frames that came from SIC residuals.
	Recovered *Counter
	// MergedSplits counts fully merged registrations split in two.
	MergedSplits *Counter
	// Quarantined counts streams dropped by per-stream panic isolation.
	Quarantined *Counter
	// Confidence is the per-frame confidence distribution.
	Confidence *Histogram
}

// DropMetrics instruments graceful degradation, recorded at flush from
// Result.Dropped. Events == NonFinite + Panics + Truncated.
type DropMetrics struct {
	Events *Counter
	// NonFinite / Panics / Truncated partition drop events by reason.
	NonFinite, Panics, Truncated *Counter
	// SpanSamples totals the sample lengths of dropped spans.
	SpanSamples *Counter
}

// WorkMetrics instruments the worker pools (ClassRuntime: chunking and
// occupancy vary with Parallelism by definition).
type WorkMetrics struct {
	// Batches counts pool invocations; Tasks counts work items
	// dispatched across them.
	Batches, Tasks *Counter
	// Occupancy is the high-water effective worker count.
	Occupancy *Gauge
}

// StageTimings holds per-stage wall-time accumulators. Timing is
// measurement only — no decode decision ever reads a clock.
type StageTimings struct {
	// Push covers incremental edge detection and pipeline pumping
	// inside StreamDecoder.Push (on the pipelined path: the caller's
	// enqueue plus emission drain).
	Push *Timing
	// Detect covers the detect stage's per-block work (edge detection
	// and snapshot publication) on the pipelined path.
	Detect *Timing
	// Walk covers the walk stage's per-token work (registration,
	// walker stepping, frame commit) on the pipelined path.
	Walk *Timing
	// Commit covers the frame-commit stage (splitting, collision
	// resolution, sequence decoding).
	Commit *Timing
	// Cancel covers the SIC rounds at flush.
	Cancel *Timing
	// SIC covers each residual sub-decode inside a cancellation round
	// (a subset of Cancel; per-round rather than per-flush).
	SIC *Timing
	// Flush covers the whole Flush call.
	Flush *Timing
}

// PipeMetrics instruments the pipelined decoder's stage queues
// (ClassRuntime throughout: occupancy and stalls depend on scheduling
// by definition and never feed a decode decision).
type PipeMetrics struct {
	// IngestDepth / TokenDepth are high-water occupancies of the
	// caller→detect sample queue and the detect→walk token queue.
	IngestDepth, TokenDepth *Gauge
	// *Stall timings accumulate time a stage spent blocked pushing to
	// a full queue or popping an empty one — the direct reading of
	// which stage is the bottleneck.
	IngestPushStall, IngestPopStall *Timing
	TokenPushStall, TokenPopStall   *Timing
	// IngestItems / TokenItems count tokens through each queue.
	IngestItems, TokenItems *Counter
}

// ShardMetrics instruments the sharded differential sweep
// (ClassRuntime throughout: stripe boundaries and in-flight depth
// depend on push cadence and worker scheduling, and per the sweep's
// output-invariance argument they never influence a decode decision —
// which is how sharded stats keep satisfying the decode-class
// conservation identities).
type ShardMetrics struct {
	// Stripes counts sweep stripes dispatched to the shard pool;
	// Samples totals the magnitude positions they own. Every position
	// is owned by exactly one stripe, so Samples converges on the
	// capture's computable magnitude span.
	Stripes, Samples *Counter
	// InFlight is the high-water count of stripes pending adoption.
	InFlight *Gauge
}

// pathMarginBounds buckets the normalized Viterbi path margin: fractions
// of a nat per slot at the low end, saturating at the single-survivor
// sentinel scale.
var pathMarginBounds = []float64{0.1, 0.25, 0.5, 1, 2, 4, 8, 16, 64, 256}

// confidenceBounds buckets per-frame confidence in tenths.
var confidenceBounds = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// NewPipeline registers a full metric set in a fresh registry.
func NewPipeline() *Pipeline {
	r := NewRegistry()
	return &Pipeline{
		Registry: r,
		Edge: EdgeMetrics{
			RawPeaks:    r.Counter("edge.raw_peaks", ClassDecode),
			Kept:        r.Counter("edge.kept", ClassDecode),
			Suppressed:  r.Counter("edge.suppressed", ClassDecode),
			Groups:      r.Counter("edge.groups", ClassDecode),
			Edges:       r.Counter("edge.edges", ClassDecode),
			Claimed:     r.Counter("edge.claimed", ClassDecode),
			Unclaimed:   r.Counter("edge.unclaimed", ClassDecode),
			DropSamples: r.Counter("edge.drop_samples", ClassDecode),
		},
		Walk: WalkMetrics{
			Slots:   r.Counter("walk.slots", ClassDecode),
			Clean:   r.Counter("walk.slots_clean", ClassDecode),
			Foreign: r.Counter("walk.slots_foreign", ClassDecode),
			Empty:   r.Counter("walk.slots_empty", ClassDecode),
		},
		Collide: CollideMetrics{
			GroupsPair:      r.Counter("collide.groups_pair", ClassDecode),
			GroupsJoint:     r.Counter("collide.groups_joint", ClassDecode),
			PairBlind:       r.Counter("collide.pair_blind", ClassDecode),
			PairAnchored:    r.Counter("collide.pair_anchored", ClassDecode),
			PairUnresolved:  r.Counter("collide.pair_unresolved", ClassDecode),
			BlindAttempts:   r.Counter("collide.blind_attempts", ClassDecode),
			BlindDegenerate: r.Counter("collide.blind_degenerate", ClassDecode),
			CancelledSlots:  r.Counter("collide.cancelled_slots", ClassDecode),
		},
		Viterbi: ViterbiMetrics{
			Slots:         r.Counter("viterbi.slots", ClassDecode),
			MergeCommits:  r.Counter("viterbi.commits_merge", ClassDecode),
			ForcedCommits: r.Counter("viterbi.commits_forced", ClassDecode),
			PathMargin:    r.Histogram("viterbi.path_margin", ClassDecode, pathMarginBounds),
		},
		SIC: SICMetrics{
			Rounds:          r.Counter("sic.rounds", ClassDecode),
			ResidualDecodes: r.Counter("sic.residual_decodes", ClassDecode),
			Recovered:       r.Counter("sic.recovered", ClassDecode),
			DirtySamples:    r.Counter("sic.dirty_samples", ClassDecode),
			CarriedStreams:  r.Counter("sic.carried_streams", ClassDecode),
		},
		Frames: FrameMetrics{
			Committed:    r.Counter("frames.committed", ClassDecode),
			CRCOK:        r.Counter("frames.crc_ok", ClassDecode),
			CRCFail:      r.Counter("frames.crc_fail", ClassDecode),
			Recovered:    r.Counter("frames.recovered", ClassDecode),
			MergedSplits: r.Counter("frames.merged_splits", ClassDecode),
			Quarantined:  r.Counter("frames.quarantined", ClassDecode),
			Confidence:   r.Histogram("frames.confidence", ClassDecode, confidenceBounds),
		},
		Drops: DropMetrics{
			Events:      r.Counter("drop.events", ClassDecode),
			NonFinite:   r.Counter("drop.nonfinite", ClassDecode),
			Panics:      r.Counter("drop.panic", ClassDecode),
			Truncated:   r.Counter("drop.truncated", ClassDecode),
			SpanSamples: r.Counter("drop.span_samples", ClassDecode),
		},
		Work: WorkMetrics{
			Batches:   r.Counter("work.batches", ClassRuntime),
			Tasks:     r.Counter("work.tasks", ClassRuntime),
			Occupancy: r.Gauge("work.occupancy", ClassRuntime),
		},
		Stage: StageTimings{
			Push:   r.Timing("stage.push_ns"),
			Detect: r.Timing("stage.detect_ns"),
			Walk:   r.Timing("stage.walk_ns"),
			Commit: r.Timing("stage.commit_ns"),
			Cancel: r.Timing("stage.cancel_ns"),
			SIC:    r.Timing("stage.sic_ns"),
			Flush:  r.Timing("stage.flush_ns"),
		},
		Pipe: PipeMetrics{
			IngestDepth:     r.Gauge("pipe.ingest_depth", ClassRuntime),
			TokenDepth:      r.Gauge("pipe.token_depth", ClassRuntime),
			IngestPushStall: r.Timing("pipe.ingest_push_stall_ns"),
			IngestPopStall:  r.Timing("pipe.ingest_pop_stall_ns"),
			TokenPushStall:  r.Timing("pipe.token_push_stall_ns"),
			TokenPopStall:   r.Timing("pipe.token_pop_stall_ns"),
			IngestItems:     r.Counter("pipe.ingest_items", ClassRuntime),
			TokenItems:      r.Counter("pipe.token_items", ClassRuntime),
		},
		Shard: ShardMetrics{
			Stripes:  r.Counter("shard.stripes", ClassRuntime),
			Samples:  r.Counter("shard.samples", ClassRuntime),
			InFlight: r.Gauge("shard.inflight", ClassRuntime),
		},
	}
}

// nop is the shared disabled pipeline: every metric nil, every record a
// no-op. Safe to share — it has no mutable state.
var nop = &Pipeline{}

// Nop returns the shared disabled pipeline.
func Nop() *Pipeline { return nop }

// Snapshot freezes the pipeline's registry (empty snapshot when
// disabled).
func (p *Pipeline) Snapshot() *Snapshot {
	if p == nil {
		return (*Registry)(nil).Snapshot()
	}
	return p.Registry.Snapshot()
}
