package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Fatal("nil counter loaded non-zero")
	}
	var g *Gauge
	g.Set(3)
	g.Max(9)
	if g.Load() != 0 {
		t.Fatal("nil gauge loaded non-zero")
	}
	var h *Histogram
	h.Observe(1.5)
	var tm *Timing
	tm.Observe(time.Second)
	var r *Registry
	if r.Counter("x", ClassDecode) != nil {
		t.Fatal("nil registry returned a live counter")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || s.Identity() != "" {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count", ClassDecode)
	g := r.Gauge("a.level", ClassRuntime)
	h := r.Histogram("a.dist", ClassDecode, []float64{1, 10})
	c.Add(3)
	c.Inc()
	g.Max(4)
	g.Max(2)
	h.Observe(0.5)  // bucket 0
	h.Observe(1.0)  // bucket 0 (<= bound)
	h.Observe(5)    // bucket 1
	h.Observe(1000) // overflow
	s := r.Snapshot()
	if got := s.Counter("a.count"); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if got := s.Gauges["a.level"]; got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	hs := s.Histograms["a.dist"]
	if hs.Count != 4 || hs.Buckets[0] != 2 || hs.Buckets[1] != 1 || hs.Buckets[2] != 1 {
		t.Fatalf("histogram snapshot %+v", hs)
	}
	if want := int64(1006.5 * 1e6); hs.SumMicro != want {
		t.Fatalf("sum_micro = %d, want %d", hs.SumMicro, want)
	}
	if mean := hs.Mean(); mean < 251.6 || mean > 251.7 {
		t.Fatalf("mean = %v", mean)
	}
}

// TestHistogramSumCommutes pins the fixed-point design: concurrent
// observation order cannot change the sum, because each observation is
// rounded to integer micro-units before the atomic add.
func TestHistogramSumCommutes(t *testing.T) {
	vals := []float64{0.1, 0.2, 0.3, 1.7, 2.9, 0.0001, 123.456}
	serial := newHistogram([]float64{1})
	for _, v := range vals {
		serial.Observe(v)
	}
	for trial := 0; trial < 8; trial++ {
		h := newHistogram([]float64{1})
		var wg sync.WaitGroup
		for _, v := range vals {
			wg.Add(1)
			go func(v float64) {
				defer wg.Done()
				h.Observe(v)
			}(v)
		}
		wg.Wait()
		if h.sumMicro.Load() != serial.sumMicro.Load() {
			t.Fatalf("concurrent sum %d != serial %d", h.sumMicro.Load(), serial.sumMicro.Load())
		}
	}
}

func TestIdentityExcludesRuntime(t *testing.T) {
	r := NewRegistry()
	r.Counter("decode.n", ClassDecode).Add(7)
	r.Counter("work.batches", ClassRuntime).Add(99)
	r.Gauge("work.occupancy", ClassRuntime).Max(8)
	r.Timing("stage.push_ns").Observe(time.Millisecond)
	s := r.Snapshot()
	id := s.Identity()
	if !strings.Contains(id, "decode.n 7") {
		t.Fatalf("identity missing decode counter:\n%s", id)
	}
	for _, banned := range []string{"work.batches", "work.occupancy", "stage.push_ns"} {
		if strings.Contains(id, banned) {
			t.Fatalf("identity leaked runtime metric %s:\n%s", banned, id)
		}
	}
	var full strings.Builder
	if err := s.WriteText(&full); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter decode.n 7", "counter work.batches 99", "gauge work.occupancy 8", "timing stage.push_ns"} {
		if !strings.Contains(full.String(), want) {
			t.Fatalf("WriteText missing %q:\n%s", want, full.String())
		}
	}
}

func TestSnapshotAdd(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("n", ClassDecode).Add(2)
	r1.Gauge("g", ClassRuntime).Max(5)
	r1.Histogram("h", ClassDecode, []float64{1}).Observe(0.5)
	r2 := NewRegistry()
	r2.Counter("n", ClassDecode).Add(3)
	r2.Gauge("g", ClassRuntime).Max(4)
	r2.Histogram("h", ClassDecode, []float64{1}).Observe(2)
	s := r1.Snapshot()
	s.Add(r2.Snapshot())
	if s.Counter("n") != 5 {
		t.Fatalf("added counter = %d, want 5", s.Counter("n"))
	}
	if s.Gauges["g"] != 5 {
		t.Fatalf("added gauge = %d, want max 5", s.Gauges["g"])
	}
	hs := s.Histograms["h"]
	if hs.Count != 2 || hs.Buckets[0] != 1 || hs.Buckets[1] != 1 {
		t.Fatalf("added histogram %+v", hs)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", ClassDecode)
	r.Counter("x", ClassDecode)
}

func TestPipelineDisabled(t *testing.T) {
	p := Nop()
	p.Edge.RawPeaks.Inc()
	p.Frames.Confidence.Observe(0.5)
	p.Stage.Push.Observe(time.Millisecond)
	s := p.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatal("disabled pipeline recorded something")
	}
	live := NewPipeline()
	live.Edge.RawPeaks.Add(2)
	if got := live.Snapshot().Counter("edge.raw_peaks"); got != 2 {
		t.Fatalf("live pipeline counter = %d, want 2", got)
	}
}
