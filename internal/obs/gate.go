package obs

// GateMetrics instruments the reader gateway (internal/gate).
// ClassRuntime throughout, in the gateway's own Registry — like
// dist.*, these observe transport and scheduling (connection counts,
// throttle time, wire bytes) and never influence a decoded bit, so
// each reader session's decode-class stats identity matches a local
// decode of the same capture.
type GateMetrics struct {
	// Readers counts reader sessions admitted (one per distinct
	// (reader, capture nonce) pair, however many reconnects serve it).
	Readers *Counter
	// Frames counts decoded frames published to sinks, across all
	// readers and sinks-fanout counts once per frame.
	Frames *Counter
	// BackpressureNs totals time ingest spent blocked in the
	// RetainedBytes admission gate, across all sessions. Nonzero means
	// slow readers were flow-controlled instead of buffering without
	// bound.
	BackpressureNs *Counter
	// Bytes totals wire traffic in both directions across all reader
	// connections, as counted under the fault injectors (what the
	// network actually carried, not what the codec produced).
	Bytes *Counter
	// SinkErrors counts frame publishes a sink rejected (logged and
	// dropped by that sink only — ingest is never failed by a sink).
	SinkErrors *Counter
	// Connected is the high-water count of concurrently connected
	// reader connections.
	Connected *Gauge
	// RetainedPeak is the high-water per-session RetainedBytes observed
	// at admission — the value the backpressure bound is enforced (and
	// tested) against.
	RetainedPeak *Gauge
}

// NewGateMetrics registers the gate.* metric set in r.
func NewGateMetrics(r *Registry) GateMetrics {
	return GateMetrics{
		Readers:        r.Counter("gate.readers", ClassRuntime),
		Frames:         r.Counter("gate.frames", ClassRuntime),
		BackpressureNs: r.Counter("gate.backpressure_ns", ClassRuntime),
		Bytes:          r.Counter("gate.bytes", ClassRuntime),
		SinkErrors:     r.Counter("gate.sink_errors", ClassRuntime),
		Connected:      r.Gauge("gate.connected", ClassRuntime),
		RetainedPeak:   r.Gauge("gate.retained_peak", ClassRuntime),
	}
}
