package obs

// DistMetrics instruments the distributed shard coordinator
// (internal/dist). ClassRuntime throughout: retry counts, hedge
// counts, byte totals, and the local/remote split all depend on wall
// clock, scheduling, and injected transport faults — and per the
// stripe merge's determinism argument (DESIGN.md §16) none of them
// ever influences a decoded bit, which is how a faulted distributed
// decode keeps the decode-class stats identity of the local decode.
type DistMetrics struct {
	// Shards counts stripe jobs entering the coordinator (one per
	// StripeJob handed to RunStripe, however it is eventually served).
	// Local counts the subset computed in-process: the no-fleet path
	// and the drain/exhaustion fallback. Shards − Local jobs were
	// completed by a remote worker.
	Shards, Local *Counter
	// Retries counts shard re-queues caused by transport failure
	// (connection error, lease expiry, corrupt or short frame);
	// Hedges counts speculative re-queues of straggling shards. Both
	// may exceed Shards under sustained faults — every additional
	// serve attempt of the same shard counts.
	Retries, Hedges *Counter
	// Bytes totals wire traffic in both directions across all worker
	// connections, as counted under the fault injectors (what the
	// network actually carried, not what the codec produced).
	Bytes *Counter
	// Workers is the high-water count of concurrently connected
	// workers.
	Workers *Gauge
}

// NewDistMetrics registers the dist.* metric set in r. The coordinator
// holds its own Registry — dist metrics never join a decode Pipeline,
// so golden-trace stats snapshots are untouched by distribution.
func NewDistMetrics(r *Registry) DistMetrics {
	return DistMetrics{
		Shards:  r.Counter("dist.shards", ClassRuntime),
		Local:   r.Counter("dist.local", ClassRuntime),
		Retries: r.Counter("dist.retries", ClassRuntime),
		Hedges:  r.Counter("dist.hedges", ClassRuntime),
		Bytes:   r.Counter("dist.bytes", ClassRuntime),
		Workers: r.Gauge("dist.workers", ClassRuntime),
	}
}
