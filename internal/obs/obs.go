// Package obs is the decode pipeline's observability layer: pre-registered
// atomic counters, gauges, fixed-bucket histograms, and per-stage wall-time
// accumulators, collected in a snapshotable registry.
//
// Two properties shape every type here:
//
//   - Zero allocation on the hot path. Metrics are registered once at
//     pipeline construction; recording is a single atomic add (plus one
//     branch for the disabled case — a nil metric is a no-op receiver, so
//     uninstrumented decodes pay one predictable branch per record site
//     and nothing else).
//
//   - Determinism safety. Every metric is classified ClassDecode or
//     ClassRuntime. Decode-class values are pure functions of the sample
//     sequence: they are either recorded from serial pipeline stages, or
//     recorded through commutative atomic additions whose totals cannot
//     depend on goroutine scheduling. Histogram means use fixed-point
//     integer sums (micro-units, rounded per observation) for the same
//     reason — a float sum would reassociate under concurrency. Runtime-
//     class values (wall time, pool occupancy) legitimately vary run to
//     run and are excluded from Snapshot.Identity, the canonical form the
//     determinism and golden-trace tests compare byte for byte.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Class partitions metrics by determinism contract.
type Class int

const (
	// ClassDecode: a pure function of the decoded sample sequence,
	// identical at any worker count and streaming block size. Included
	// in Snapshot.Identity.
	ClassDecode Class = iota
	// ClassRuntime: scheduling- or clock-dependent (wall time, pool
	// occupancy). Reported in snapshots and text dumps but excluded
	// from Snapshot.Identity.
	ClassRuntime
)

// Counter is a monotonically increasing atomic count. The zero value is
// ready to use; a nil *Counter is a no-op, which is how the disabled
// (NoStats) pipeline records nothing without any conditional wiring.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic level with high-water semantics. Nil-safe like
// Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores n unconditionally.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Max raises the gauge to n if n is higher (lock-free high-water mark).
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current level (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Bounds are upper bucket
// edges (values ≤ bounds[i] land in bucket i; the final implicit bucket
// is +Inf). The running sum is kept in integer micro-units, rounded per
// observation, so concurrent observation order cannot perturb it.
type Histogram struct {
	bounds   []float64
	buckets  []atomic.Int64 // len(bounds)+1
	count    atomic.Int64
	sumMicro atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value (no-op on a nil receiver). Non-finite
// values clamp into the overflow bucket with a saturated sum
// contribution, so a pathological input cannot poison the total.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	micro := v * 1e6
	switch {
	case math.IsNaN(micro):
		micro = 0
	case micro > 9e15:
		micro = 9e15
	case micro < -9e15:
		micro = -9e15
	}
	h.sumMicro.Add(int64(math.Round(micro)))
}

// Timing accumulates wall-clock durations for one pipeline stage.
// Always ClassRuntime. Nil-safe.
type Timing struct {
	ns atomic.Int64
	n  atomic.Int64
}

// Observe adds one measured duration.
func (t *Timing) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.ns.Add(int64(d))
	t.n.Add(1)
}

// Registry holds every metric of one pipeline instance under a unique
// dotted name. All registration happens at construction; the hot path
// only touches the returned metric pointers.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	timings    map[string]*Timing
	class      map[string]Class
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		timings:    map[string]*Timing{},
		class:      map[string]Class{},
	}
}

func (r *Registry) register(name string, c Class) {
	if _, dup := r.class[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.class[name] = c
}

// Counter registers and returns a counter. Nil registries return a nil
// (no-op) counter, so a disabled pipeline needs no special wiring.
func (r *Registry) Counter(name string, class Class) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, class)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name string, class Class) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, class)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram registers and returns a fixed-bucket histogram.
func (r *Registry) Histogram(name string, class Class, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, class)
	h := newHistogram(bounds)
	r.histograms[name] = h
	return h
}

// Timing registers and returns a stage wall-time accumulator (always
// ClassRuntime).
func (r *Registry) Timing(name string) *Timing {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, ClassRuntime)
	t := &Timing{}
	r.timings[name] = t
	return t
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	// Bounds are the upper bucket edges; Buckets has one extra entry
	// for the +Inf overflow bucket.
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
	Count   int64     `json:"count"`
	// SumMicro is the observation sum in fixed-point micro-units
	// (rounded per observation; see Histogram).
	SumMicro int64 `json:"sum_micro"`
}

// Mean returns the distribution mean (0 with no observations).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.SumMicro) / 1e6 / float64(h.Count)
}

// TimingSnapshot is one stage timer's frozen state.
type TimingSnapshot struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
}

// Snapshot is a frozen, JSON-friendly view of a registry. Taking one is
// safe at any time, including mid-decode from the pushing goroutine.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Timings    map[string]TimingSnapshot    `json:"timings,omitempty"`
	// Runtime names the counters and gauges that are ClassRuntime and
	// therefore excluded from Identity (timings always are).
	Runtime map[string]bool `json:"runtime,omitempty"`
}

// NewSnapshot returns an empty snapshot, ready to Add into.
func NewSnapshot() *Snapshot { return (*Registry)(nil).Snapshot() }

// Snapshot freezes the registry's current values.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Timings:    map[string]TimingSnapshot{},
		Runtime:    map[string]bool{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
		if r.class[name] == ClassRuntime {
			s.Runtime[name] = true
		}
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
		if r.class[name] == ClassRuntime {
			s.Runtime[name] = true
		}
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds:   append([]float64(nil), h.bounds...),
			Buckets:  make([]int64, len(h.buckets)),
			Count:    h.count.Load(),
			SumMicro: h.sumMicro.Load(),
		}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
		if r.class[name] == ClassRuntime {
			s.Runtime[name] = true
		}
	}
	for name, t := range r.timings {
		s.Timings[name] = TimingSnapshot{Count: t.n.Load(), TotalNs: t.ns.Load()}
	}
	return s
}

// Counter returns a counter's value by name (0 if absent or nil).
func (s *Snapshot) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// Add accumulates other into s: counters, histogram buckets and sums,
// and timings add; gauges take the high-water maximum.
func (s *Snapshot) Add(other *Snapshot) {
	if other == nil {
		return
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		if v > s.Gauges[name] {
			s.Gauges[name] = v
		}
	}
	for name, hs := range other.Histograms {
		cur, ok := s.Histograms[name]
		if !ok {
			cur = HistogramSnapshot{
				Bounds:  append([]float64(nil), hs.Bounds...),
				Buckets: make([]int64, len(hs.Buckets)),
			}
		}
		for i := range hs.Buckets {
			if i < len(cur.Buckets) {
				cur.Buckets[i] += hs.Buckets[i]
			}
		}
		cur.Count += hs.Count
		cur.SumMicro += hs.SumMicro
		s.Histograms[name] = cur
	}
	for name, ts := range other.Timings {
		cur := s.Timings[name]
		cur.Count += ts.Count
		cur.TotalNs += ts.TotalNs
		s.Timings[name] = cur
	}
	for name := range other.Runtime {
		s.Runtime[name] = true
	}
}

// Identity renders the decode-class metrics in a canonical text form:
// sorted by name, fixed integer formatting, timing and runtime-class
// entries stripped. Two decodes of the same sample sequence must
// produce byte-identical Identity output at any worker count or block
// size — this is the string the determinism and golden-trace tests pin.
func (s *Snapshot) Identity() string {
	var b strings.Builder
	s.write(&b, false)
	return b.String()
}

// WriteText dumps every metric — including runtime-class and timings —
// as sorted "kind name value" lines, expvar style.
func (s *Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	s.write(&b, true)
	_, err := io.WriteString(w, b.String())
	return err
}

func (s *Snapshot) write(b *strings.Builder, includeRuntime bool) {
	if s == nil {
		return
	}
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		if includeRuntime || !s.Runtime[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(b, "counter %s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		if includeRuntime || !s.Runtime[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(b, "gauge %s %d\n", name, s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		if includeRuntime || !s.Runtime[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		hs := s.Histograms[name]
		fmt.Fprintf(b, "histogram %s count=%d sum_micro=%d buckets=", name, hs.Count, hs.SumMicro)
		for i, n := range hs.Buckets {
			if i > 0 {
				b.WriteByte(',')
			}
			if i < len(hs.Bounds) {
				fmt.Fprintf(b, "le%g:%d", hs.Bounds[i], n)
			} else {
				fmt.Fprintf(b, "inf:%d", n)
			}
		}
		b.WriteByte('\n')
	}
	if !includeRuntime {
		return
	}
	names = names[:0]
	for name := range s.Timings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := s.Timings[name]
		fmt.Fprintf(b, "timing %s count=%d total_ns=%d\n", name, ts.Count, ts.TotalNs)
	}
}

// SpanEvent is one structured trace event: a pipeline stage milestone
// anchored at an absolute sample position. Events are emitted on the
// goroutine calling Push/Flush/Decode (mirroring the OnFrame hook) at
// deterministic points, so the event sequence — stages, positions,
// payload counts — is identical at any worker count and block size.
type SpanEvent struct {
	// Stage names the milestone: "calibrate", "register", "commit",
	// "frame", "sic", "flush".
	Stage string
	// Stream is the stream ID a frame event belongs to, -1 for
	// capture-level events.
	Stream int
	// Pos is the sample position the event is anchored at (stage
	// horizon, stream offset, or capture end).
	Pos int64
	// N carries the stage's count payload: streams registered, frames
	// committed, bits decoded, streams recovered, edges detected.
	N int64
}

// Tracer receives span events. Implementations must be cheap — Trace is
// called synchronously from the decode path.
type Tracer interface {
	Trace(ev SpanEvent)
}
