package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"lf/internal/channel"
	"lf/internal/rng"
	"lf/internal/stats"
	"lf/internal/tag"
)

// Fig1 reproduces the channel-dynamics study: received I/Q traces
// under people movement, tag rotation and near-field tag coupling —
// the coefficient variability that makes Buzz's channel estimation a
// recurring cost (§2.2). The summary table reports each trace's
// peak-to-peak magnitude swing; WriteFig1CSV dumps the raw series.
func Fig1(cfg Config) (*Result, error) {
	src := rng.New(cfg.Seed)
	dcfg := channel.DefaultDynamicsConfig()
	if cfg.Quick {
		dcfg.Duration = 3
	}
	move := channel.PeopleMovement(dcfg, src.Split("move"))
	rot := channel.TagRotation(dcfg, src.Split("rot"))
	ca, cb := channel.CoupledPair(dcfg, dcfg.Duration*0.5, src.Split("couple"))
	table := &stats.Table{
		Title:  "Fig. 1 — received-signal dynamics (peak-to-peak magnitude swing)",
		Header: []string{"scenario", "swing", "duration(s)"},
	}
	table.AddRow("people movement", fmt.Sprintf("%.3f", move.Swing()), fmt.Sprintf("%.0f", dcfg.Duration))
	table.AddRow("tag rotation", fmt.Sprintf("%.3f", rot.Swing()), fmt.Sprintf("%.0f", dcfg.Duration))
	table.AddRow("coupled tag A", fmt.Sprintf("%.3f", ca.Swing()), fmt.Sprintf("%.0f", dcfg.Duration))
	table.AddRow("coupled tag B", fmt.Sprintf("%.3f", cb.Swing()), fmt.Sprintf("%.0f", dcfg.Duration))
	return &Result{Table: table}, nil
}

// WriteFig1CSV writes the three Fig. 1 traces as CSV:
// t, scenario, I, Q.
func WriteFig1CSV(w io.Writer, cfg Config) error {
	src := rng.New(cfg.Seed)
	dcfg := channel.DefaultDynamicsConfig()
	traces := map[string]*channel.Trace{
		"people_movement": channel.PeopleMovement(dcfg, src.Split("move")),
		"tag_rotation":    channel.TagRotation(dcfg, src.Split("rot")),
	}
	ca, cb := channel.CoupledPair(dcfg, dcfg.Duration*0.5, src.Split("couple"))
	traces["coupled_a"] = ca
	traces["coupled_b"] = cb
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"t", "scenario", "i", "q"}); err != nil {
		return err
	}
	for _, name := range []string{"people_movement", "tag_rotation", "coupled_a", "coupled_b"} {
		tr := traces[name]
		for i := range tr.T {
			rec := []string{
				strconv.FormatFloat(tr.T[i], 'g', 6, 64),
				name,
				strconv.FormatFloat(real(tr.V[i]), 'g', 6, 64),
				strconv.FormatFloat(imag(tr.V[i]), 'g', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fig4 reproduces the comparator fire-time study: the natural spread
// of transmission start offsets across capacitor tolerance, harvested
// energy and charge noise — the randomness LF-Backscatter leans on for
// time-domain edge interleaving.
func Fig4(cfg Config) (*Result, error) {
	src := rng.New(cfg.Seed)
	comp := tag.DefaultComparator()
	draws := 2000
	if cfg.Quick {
		draws = 300
	}
	times := make([]float64, draws)
	for i := range times {
		times[i] = comp.FireTime(src) * 1e6 // µs
	}
	table := &stats.Table{
		Title:  "Fig. 4 — comparator fire-time jitter (µs)",
		Header: []string{"quantile", "fire time"},
	}
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		table.AddRow(fmt.Sprintf("p%02.0f", q*100), fmt.Sprintf("%.1f", stats.Quantile(times, q)))
	}
	spread := stats.Quantile(times, 0.95) - stats.Quantile(times, 0.05)
	table.AddRow("p95-p05 spread", fmt.Sprintf("%.1f", spread))
	table.AddRow("spread in 100kbps bits", fmt.Sprintf("%.1f", spread/10))
	return &Result{Table: table}, nil
}

// WriteFig4CSV writes comparator charging curves at three harvested
// energy levels plus the fire-time histogram data.
func WriteFig4CSV(w io.Writer, cfg Config) error {
	src := rng.New(cfg.Seed)
	comp := tag.DefaultComparator()
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	for _, vInf := range []float64{0.7, 1.0, 1.3} {
		t, v := comp.ChargingCurve(5*comp.RCSeconds, 200, vInf, src.Split(fmt.Sprint("curve", vInf)))
		name := fmt.Sprintf("charge_vinf_%.1f", vInf)
		for i := range t {
			rec := []string{name,
				strconv.FormatFloat(t[i]*1e6, 'g', 6, 64),
				strconv.FormatFloat(v[i], 'g', 6, 64)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	for i := 0; i < 500; i++ {
		ft := comp.FireTime(src) * 1e6
		rec := []string{"fire_time_us", strconv.Itoa(i), strconv.FormatFloat(ft, 'g', 6, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
