package experiment

// Incremental SIC characterization (DESIGN.md §17). The paper's reader
// polls the network and then listens for a window long enough to cover
// every tag's slotted response; most of the capture is quiet carrier
// with frames staggered across response slots. That shape is where the
// dirty-span re-decode earns its keep — a cancellation round's
// subtraction touches only the slots that actually carried signal, so
// the residual pass sweeps a fraction of the listening window instead
// of all of it. The experiment here sweeps tag density and cancellation
// rounds over such slotted captures and reports, per cell, how much of
// the capture the rounds re-swept and what the incremental residual
// pass cost against the ForceFullResidual rebuild of the same decode
// (which is byte-identical by contract, and checked here on every
// cell). SICBenchEpoch pins the single capture the benchguard gate
// measures sic_redecode_fraction on.

import (
	"fmt"
	"math"
	"reflect"
	"time"

	"lf"
	"lf/internal/channel"
	"lf/internal/reader"
	"lf/internal/rng"
	"lf/internal/stats"
	"lf/internal/tag"
)

const (
	// sicSampleRate matches the paper's reader ADC.
	sicSampleRate = 25e6
	// sicPayloadBits keeps each response frame well under a slot.
	sicPayloadBits = 50
	// sicSlots is the occupied prefix of the response schedule; tag i
	// responds in slot i mod sicSlots, so populations past sicSlots
	// double up slots and collide deliberately.
	sicSlots = 6
	// sicScheduleSlots is the full response schedule the reader listens
	// across. The listening window is fixed by the schedule, not by
	// where tags happen to answer — a population that packs (and
	// collides) in the early slots leaves the tail quiet carrier, which
	// is precisely the regime the dirty-span re-decode targets: the
	// first pass must sweep the whole window, a cancellation round only
	// the slots that carried signal.
	sicScheduleSlots = 16
	// sicSlotPitch spaces the slots far enough apart that a frame
	// (≈0.6 ms at 100 kbps) plus the comparator fire-time spread stays
	// inside its slot.
	sicSlotPitch = 1.5e-3
	// sicFirstSlot delays the first response past the decoder's
	// calibration window (sicCalibSamples at sicSampleRate ≈ 1.3 ms),
	// the way a real reader's query precedes the response window.
	sicFirstSlot = 1.4e-3
	// sicCalibSamples bounds threshold calibration to the pre-response
	// quiet interval.
	sicCalibSamples = 32768
)

// sicWindow is the full listening window: query gap, the complete slot
// schedule, and a tail margin for late comparators and clock drift.
func sicWindow() float64 {
	return sicFirstSlot + sicScheduleSlots*sicSlotPitch + 0.6e-3
}

// sicSlotEpoch synthesizes one slotted-response epoch: tags tags at
// 100 kbps, tag i's emission shifted into response slot i mod sicSlots.
// The channel, comparator jitter, clock drift, and payloads come from
// the usual models; only the slot offset is added on top, so every
// other statistic matches the dense epochs the rest of the suite uses.
func sicSlotEpoch(seed int64, tags int) (*lf.Epoch, lf.DecoderConfig, error) {
	src := rng.New(seed)
	geoms := channel.PlaceRing(tags, 2, src.Split("placement"))
	ch := channel.NewModel(channel.DefaultParams(), geoms, src.Split("noise"))
	comp := tag.DefaultComparator()
	emissions := make([]*tag.Emission, tags)
	for i := 0; i < tags; i++ {
		tc := tag.Config{
			ID:         i,
			BitRate:    100e3,
			ClockPPM:   150,
			Comparator: comp,
			Payload:    src.Bits(sicPayloadBits),
		}
		em := tag.Emit(tc, src)
		shift := sicFirstSlot + float64(i%sicSlots)*sicSlotPitch
		em.Start += shift
		for j := range em.Toggles {
			em.Toggles[j].Time += shift
		}
		emissions[i] = em
	}
	ep, err := reader.Synthesize(ch, emissions, reader.EpochConfig{
		SampleRate:  sicSampleRate,
		Duration:    sicWindow(),
		EdgeSamples: 3,
	})
	if err != nil {
		return nil, lf.DecoderConfig{}, err
	}
	cfg := lf.DecoderConfig{
		SampleRate:   sicSampleRate,
		Rates:        []float64{100e3},
		PayloadBits:  func(float64) int { return sicPayloadBits },
		Stages:       lf.AllStages(),
		CalibSamples: sicCalibSamples,
		// Frames start throughout the occupied slots, not just in the
		// carrier-on jitter window.
		StartWindowSeconds: sicFirstSlot + sicSlots*sicSlotPitch,
		Seed:               seed + 1,
	}
	return ep, cfg, nil
}

// SICBenchEpoch is the fixed capture the benchguard gate measures
// sic_redecode_fraction on: 8 tags packed into the first six slots of
// the 16-slot schedule, so two slots carry deliberate 2-tag collisions
// and four carry clean singles, inside a ~26 ms listening window the
// frames occupy roughly a tenth of.
func SICBenchEpoch(seed int64) (*lf.Epoch, lf.DecoderConfig, error) {
	return sicSlotEpoch(seed, 8)
}

// sicDecode runs one batch decode and returns the result, its stats,
// and the wall time.
func sicDecode(ep *lf.Epoch, cfg lf.DecoderConfig) (*lf.Result, *lf.Stats, time.Duration, error) {
	dec, err := lf.NewDecoder(cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	start := time.Now()
	res, err := dec.Decode(ep)
	if err != nil {
		return nil, nil, 0, err
	}
	return res, dec.Stats(), time.Since(start), nil
}

// SICTimings is one cell's interleaved min-of-rounds measurement of
// the three decode variants the redecode fraction is built from.
type SICTimings struct {
	// Off is a decode with cancellation disabled (the first pass).
	Off time.Duration
	// Incremental and Full are decodes with the given rounds enabled,
	// in dirty-span and ForceFullResidual mechanics respectively.
	Incremental time.Duration
	Full        time.Duration
}

// RedecodeFraction is the incremental residual passes' marginal cost
// as a fraction of a full re-decode of the capture:
// (incremental − off) / off. Off — the decode with cancellation
// disabled — is exactly what re-running detection over the whole
// capture costs, so this is the O(dirty)-vs-O(capture) claim measured
// directly: the dirty-span rounds add a fraction of a from-scratch
// pass instead of a whole one. The benchguard gate caps it at
// sicRedecodeCap for one round on the bench capture. (Full is kept for
// the byte-identity check and reported alongside; it is not the
// denominator — the ForceFullResidual rebuild shares the detection
// mask, so inc/full would only measure the lane and buffer carry-over,
// not the dirty-span machinery.)
func (t SICTimings) RedecodeFraction() float64 {
	if t.Off <= 0 {
		return math.NaN()
	}
	inc := t.Incremental - t.Off
	if inc < 0 {
		inc = 0
	}
	return float64(inc) / float64(t.Off)
}

// MeasureSIC times the three variants interleaved (off, incremental,
// full, repeated passes times) and keeps each variant's minimum — the
// low-noise estimator for a deterministic workload; interleaving
// cancels thermal and frequency-scaling drift. It also verifies the
// incremental and full decodes are byte-identical, which is the §17
// contract the equivalence tests pin more broadly.
func MeasureSIC(ep *lf.Epoch, cfg lf.DecoderConfig, rounds, passes int) (SICTimings, *lf.Stats, error) {
	offCfg, incCfg, fullCfg := cfg, cfg, cfg
	offCfg.CancellationRounds = -1
	incCfg.CancellationRounds = rounds
	fullCfg.CancellationRounds = rounds
	fullCfg.ForceFullResidual = true

	incRes, incStats, _, err := sicDecode(ep, incCfg)
	if err != nil {
		return SICTimings{}, nil, err
	}
	fullRes, _, _, err := sicDecode(ep, fullCfg)
	if err != nil {
		return SICTimings{}, nil, err
	}
	if !reflect.DeepEqual(incRes, fullRes) {
		return SICTimings{}, nil, fmt.Errorf("experiment: incremental SIC decode diverged from ForceFullResidual at rounds=%d", rounds)
	}

	min := SICTimings{Off: math.MaxInt64, Incremental: math.MaxInt64, Full: math.MaxInt64}
	if passes < 1 {
		passes = 1
	}
	for p := 0; p < passes; p++ {
		if _, _, d, err := sicDecode(ep, offCfg); err != nil {
			return SICTimings{}, nil, err
		} else if d < min.Off {
			min.Off = d
		}
		if _, _, d, err := sicDecode(ep, incCfg); err != nil {
			return SICTimings{}, nil, err
		} else if d < min.Incremental {
			min.Incremental = d
		}
		if _, _, d, err := sicDecode(ep, fullCfg); err != nil {
			return SICTimings{}, nil, err
		} else if d < min.Full {
			min.Full = d
		}
	}
	return min, incStats, nil
}

// SIC sweeps tag density × cancellation rounds over slotted-response
// epochs and reports, per cell, the capture fraction the rounds marked
// dirty, the streams carried over instead of re-subtracted, the
// per-round residual-pass cost (stage.sic_ns), and the redecode
// fraction against the ForceFullResidual rebuild.
func SIC(cfg Config) (*Result, error) {
	populations := []int{2, 4, 8, 12}
	roundsSweep := []int{1, 2, 3}
	passes := 4
	if cfg.Quick {
		populations = []int{4, 8}
		roundsSweep = []int{1, 2}
		passes = 2
	}
	table := &stats.Table{
		Title: fmt.Sprintf("Incremental SIC — dirty-span re-decode vs full residual rebuild (%d slots, pitch %.1f ms, window %.1f ms)",
			sicSlots, sicSlotPitch*1e3, sicWindow()*1e3),
		Header: []string{"tags", "rounds", "recovered", "dirty %", "carried", "sic ms/round", "redecode frac"},
	}
	series := []stats.Series{{Label: "redecode fraction (1 round)"}, {Label: "dirty % (1 round)"}}
	for _, tags := range populations {
		ep, dcfg, err := sicSlotEpoch(cfg.Seed+int64(tags)*31, tags)
		if err != nil {
			return nil, err
		}
		dcfg.Parallelism = cfg.Workers
		captureLen := ep.Capture.Len()
		for _, rounds := range roundsSweep {
			t, snap, err := MeasureSIC(ep, dcfg, rounds, passes)
			if err != nil {
				return nil, err
			}
			ranRounds := snap.Counter("sic.rounds")
			dirtyPct := 0.0
			if ranRounds > 0 {
				dirtyPct = 100 * float64(snap.Counter("sic.dirty_samples")) /
					(float64(ranRounds) * float64(captureLen))
			}
			perRoundMS := 0.0
			if tm, ok := snap.Timings["stage.sic_ns"]; ok && tm.Count > 0 {
				perRoundMS = float64(tm.TotalNs) / float64(tm.Count) / 1e6
			}
			frac := t.RedecodeFraction()
			table.AddRow(
				fmt.Sprint(tags), fmt.Sprintf("%d/%d", ranRounds, rounds),
				fmt.Sprint(snap.Counter("sic.recovered")),
				fmt.Sprintf("%.1f", dirtyPct),
				fmt.Sprint(snap.Counter("sic.carried_streams")),
				fmt.Sprintf("%.2f", perRoundMS),
				fmt.Sprintf("%.2f", frac),
			)
			if rounds == 1 {
				series[0].Add(float64(tags), frac)
				series[1].Add(float64(tags), dirtyPct)
			}
		}
	}
	return &Result{Table: table, Series: series}, nil
}
