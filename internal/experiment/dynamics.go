package experiment

import (
	"fmt"

	"lf"
	"lf/internal/baseline/buzz"
	"lf/internal/capacity"
	"lf/internal/reliable"
	"lf/internal/rng"
	"lf/internal/stats"
)

// DynamicsRobustness quantifies the paper's §2.2 argument for
// estimation-free decoding: Buzz separates signals through channel
// coefficients estimated at epoch start, so when the environment moves
// (Fig. 1) its decode degrades with estimation staleness — while
// LF-Backscatter re-derives everything it needs (edge vectors, grids)
// from each epoch's own preamble and clusters, so coefficient drift
// between epochs costs it nothing.
//
// Workload: 4 tags; between consecutive epochs every coefficient takes
// a random-walk step of the given relative scale. LF decodes each
// epoch fresh. Buzz (a) reuses its epoch-0 estimate (stale — what
// skipping re-estimation would buy in overhead costs in errors) and
// (b) re-estimates every epoch (fresh — correct but paying the pilot
// overhead every time).
func DynamicsRobustness(cfg Config) (*Result, error) {
	n := 4
	epochs := 5
	msgBits := 96
	driftScales := []float64{0, 0.05, 0.15, 0.3}
	if cfg.Quick {
		driftScales = []float64{0, 0.3}
		epochs = 3
	}
	table := &stats.Table{
		Title:  "Dynamics robustness — BER under inter-epoch coefficient drift",
		Header: []string{"drift/epoch", "LF", "Buzz (stale est.)", "Buzz (re-est.)"},
	}
	trials := 3
	if cfg.Quick {
		trials = 1
	}
	for _, scale := range driftScales {
		src := rng.New(cfg.Seed + int64(scale*1000))
		// --- LF: decode each epoch with the evolved channel, averaged
		// over a few deployments so one unlucky static geometry does
		// not dominate a row. ---
		var lfBER stats.BER
		for trial := 0; trial < trials; trial++ {
			net, err := lf.NewNetwork(lf.NetworkConfig{
				NumTags:        n,
				PayloadSeconds: float64(msgBits) / 100e3,
				Seed:           cfg.Seed + 17 + int64(trial)*101,
			})
			if err != nil {
				return nil, err
			}
			coeffs := append([]complex128(nil), net.Channel().Coeffs...)
			for e := 0; e < epochs; e++ {
				ep, err := net.RunEpoch()
				if err != nil {
					return nil, err
				}
				dec, err := lf.NewDecoder(net.DecoderConfig())
				if err != nil {
					return nil, err
				}
				out, err := dec.Decode(ep)
				if err != nil {
					return nil, err
				}
				score := lf.ScoreEpoch(ep, out)
				lfBER.Add(score.TotalBits-score.CorrectBits, score.TotalBits)
				coeffs = driftStep(coeffs, scale, src.Split(fmt.Sprint("lf", trial, e)))
				if err := net.SetCoefficients(coeffs); err != nil {
					return nil, err
				}
			}
		}

		// --- Buzz over the same kind of drifting channel. ---
		bc := buzz.DefaultConfig()
		bc.MessageBits = msgBits
		bsrc := rng.New(cfg.Seed + 29)
		bCoeffs := randomCoeffs(n, bsrc)
		var staleBER, freshBER stats.BER
		var staleEst []complex128
		for e := 0; e < epochs; e++ {
			nw, err := buzz.NewNetwork(bc, bCoeffs, bsrc.Split(fmt.Sprint("bz", e)))
			if err != nil {
				return nil, err
			}
			freshEst, _ := nw.EstimateChannels()
			if e == 0 {
				staleEst = freshEst
			}
			msgs := make([][]byte, n)
			for j := range msgs {
				msgs[j] = bsrc.Bits(msgBits)
			}
			bits := make([]byte, n)
			for k := 0; k < msgBits; k++ {
				for j := 0; j < n; j++ {
					bits[j] = msgs[j][k]
				}
				staleRound, err := nw.TransmitRound(bits, staleEst)
				if err != nil {
					return nil, err
				}
				freshRound, err := nw.TransmitRound(bits, freshEst)
				if err != nil {
					return nil, err
				}
				for j := 0; j < n; j++ {
					staleBER.Add(boolErr(staleRound.Decoded[j] != bits[j]), 1)
					freshBER.Add(boolErr(freshRound.Decoded[j] != bits[j]), 1)
				}
			}
			bCoeffs = driftStep(bCoeffs, scale, bsrc.Split(fmt.Sprint("drift", e)))
		}
		table.AddRow(fmt.Sprintf("%.0f%%", scale*100),
			fmt.Sprintf("%.4f", lfBER.Rate()),
			fmt.Sprintf("%.4f", staleBER.Rate()),
			fmt.Sprintf("%.4f", freshBER.Rate()))
	}
	return &Result{Table: table}, nil
}

func boolErr(b bool) int {
	if b {
		return 1
	}
	return 0
}

// driftStep applies one inter-epoch random-walk step of relative
// magnitude scale to every coefficient.
func driftStep(coeffs []complex128, scale float64, src *rng.Source) []complex128 {
	out := make([]complex128, len(coeffs))
	for i, h := range coeffs {
		out[i] = h * (1 + complex(src.Norm(0, scale), src.Norm(0, scale)))
	}
	return out
}

// ReliableTransfer measures the §3.6 retransmission protocol:
// epochs-to-complete and total airtime for reliable delivery of one
// CRC-protected message per tag, across network sizes.
func ReliableTransfer(cfg Config) (*Result, error) {
	ns := []int{2, 4, 8, 12}
	if cfg.Quick {
		ns = []int{2, 4}
	}
	table := &stats.Table{
		Title:  "Reliable transfer (§3.6) — epochs and airtime to deliver 96 bits/tag",
		Header: []string{"nodes", "epochs", "airtime(ms)", "complete", "rate reductions"},
	}
	for _, n := range ns {
		net, err := lf.NewNetwork(lf.NetworkConfig{NumTags: n, Seed: cfg.Seed + int64(n)})
		if err != nil {
			return nil, err
		}
		src := rng.New(cfg.Seed + 7)
		msgs := make([]reliable.Message, n)
		for i := range msgs {
			msgs[i] = reliable.Message{TagID: i, Data: src.Bits(96)}
		}
		rcfg := reliable.DefaultConfig()
		rcfg.Seed = cfg.Seed
		res, err := reliable.Collect(net, msgs, rcfg)
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprint(n), fmt.Sprint(len(res.Epochs)), ms(res.Seconds),
			fmt.Sprint(res.Complete), fmt.Sprint(res.RateReductions))
	}
	return &Result{Table: table}, nil
}

// ScalabilityLowRate probes the paper's §5.2 scaling argument: at a
// lower bit rate the phase space per period is larger, so many more
// tags fit before edge interleaving saturates — "set bitrate to a
// lower number, say 10 kbps, and ... support a few hundred tags".
// We sweep the tag count at 10 kbps and report registration and
// goodput.
func ScalabilityLowRate(cfg Config) (*Result, error) {
	ns := []int{8, 16, 24, 32}
	payloadBits := 96
	if cfg.Quick {
		ns = []int{8, 16}
	}
	table := &stats.Table{
		Title:  "Scalability at 10 kbps (§5.2) — many tags at a reduced rate",
		Header: []string{"nodes", "registered", "goodput(kbps)", "offered(kbps)", "fraction"},
	}
	for _, n := range ns {
		var agg, offered float64
		reg, total := 0, 0
		for e := 0; e < cfg.Epochs; e++ {
			net, err := lf.NewNetwork(lf.NetworkConfig{
				NumTags:     n,
				BitRates:    []float64{10e3},
				PayloadBits: []int{payloadBits},
				Seed:        cfg.Seed + int64(n*7+e),
			})
			if err != nil {
				return nil, err
			}
			ep, err := net.RunEpoch()
			if err != nil {
				return nil, err
			}
			dec, err := lf.NewDecoder(net.DecoderConfig())
			if err != nil {
				return nil, err
			}
			out, err := dec.Decode(ep)
			if err != nil {
				return nil, err
			}
			score := lf.ScoreEpoch(ep, out)
			agg += score.AggregateBps
			offered += lf.OfferedBps(ep)
			reg += score.Registered
			total += n
		}
		e := float64(cfg.Epochs)
		table.AddRow(fmt.Sprint(n), fmt.Sprintf("%d/%d", reg, total),
			kbps(agg/e), kbps(offered/e), fmt.Sprintf("%.0f%%", 100*agg/offered))
	}
	return &Result{Table: table}, nil
}

// CapacityModel evaluates the paper's analytic edge-interleaving and
// collision model (§2.4, §3.3) at the evaluation's operating points —
// the arithmetic that predicts where Fig. 10 saturates and why §5.2's
// rate reduction scales to hundreds of tags.
func CapacityModel(cfg Config) (*Result, error) {
	table := &stats.Table{
		Title:  "Capacity model (§2.4/§3.3) — edge interleaving and collision probabilities",
		Header: []string{"tags", "rate(kbps)", "samples/bit", "edge capacity", "P(2-way)", "P(3-way)"},
	}
	points := []struct {
		n    int
		rate float64
	}{
		{16, 100e3},
		{16, 250e3},
		{33, 250e3},
		{200, 10e3},
	}
	for _, pt := range points {
		s := capacity.Describe(25e6, pt.n, pt.rate, capacity.PaperWindow)
		table.AddRow(fmt.Sprint(s.Tags), kbps(s.BitRate), fmt.Sprintf("%.0f", s.SamplesPerBit),
			fmt.Sprint(s.EdgeCapacity), fmt.Sprintf("%.4f", s.ProbTwoWay), fmt.Sprintf("%.4f", s.ProbThreeWay))
	}
	return &Result{Table: table}, nil
}
