package experiment

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 1, Epochs: 1, Quick: true} }

// parseKbps pulls the float out of a table cell.
func parseKbps(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestTable1ReproducesPaperExample(t *testing.T) {
	res, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	if res.Table.Rows[0][1] != res.Table.Rows[2][1] {
		t.Fatalf("decoded bits %q != sent bits %q", res.Table.Rows[2][1], res.Table.Rows[0][1])
	}
}

func TestFig8Orderings(t *testing.T) {
	res, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Table.Rows {
		tdma := parseKbps(t, row[1])
		buzz := parseKbps(t, row[2])
		lf := parseKbps(t, row[3])
		max := parseKbps(t, row[4])
		if !(lf > tdma) {
			t.Fatalf("LF (%v) must beat TDMA (%v): row %v", lf, tdma, row)
		}
		if !(lf > buzz) {
			t.Fatalf("LF (%v) must beat Buzz (%v): row %v", lf, buzz, row)
		}
		if lf > max*1.01 {
			t.Fatalf("LF (%v) exceeds offered load (%v)", lf, max)
		}
	}
}

func TestFig9FullPipelineNotWorse(t *testing.T) {
	res, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Table.Rows {
		edge := parseKbps(t, row[1])
		full := parseKbps(t, row[3])
		if full < 0.8*edge {
			t.Fatalf("full pipeline far below edge-only: %v", row)
		}
	}
}

func TestFig10Sweep(t *testing.T) {
	res, err := Fig10(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) == 0 {
		t.Fatal("empty sweep")
	}
	for _, row := range res.Table.Rows {
		offered := parseKbps(t, row[4])
		for col := 1; col <= 3; col++ {
			if parseKbps(t, row[col]) > offered*1.01 {
				t.Fatalf("throughput above offered: %v", row)
			}
		}
	}
}

func TestFig11SlowNodesSurvive(t *testing.T) {
	res, err := Fig11(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate achieved must be a large fraction of the aggregate
	// bound, and the fastest pair must not be starved.
	var achieved, bound float64
	for _, row := range res.Table.Rows {
		achieved += parseKbps(t, row[2])
		bound += parseKbps(t, row[3])
	}
	if achieved < 0.5*bound {
		t.Fatalf("mixed-rate delivery %.1f of %.1f kbps", achieved, bound)
	}
}

func TestFig12LFBeatsTDMA(t *testing.T) {
	res, err := Fig12(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Table.Rows {
		tdma := parseKbps(t, row[1])
		lf := parseKbps(t, row[3])
		if lf >= tdma {
			t.Fatalf("LF identification (%v ms) not faster than TDMA (%v ms)", lf, tdma)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	for _, row := range res.Table.Rows {
		acc := parseKbps(t, strings.TrimSuffix(row[1], "%"))
		if acc < 30 {
			t.Fatalf("separation accuracy %v%% too low: %v", acc, row)
		}
	}
}

func TestTable3Exact(t *testing.T) {
	res := Table3Hardware()
	want := [][2]string{{"22704", "34992"}, {"1792", "14080"}, {"176", "176"}}
	for i, w := range want {
		if res.Table.Rows[i][1] != w[0] || res.Table.Rows[i][2] != w[1] {
			t.Fatalf("row %d = %v", i, res.Table.Rows[i])
		}
	}
}

func TestFig13Ordering(t *testing.T) {
	res, err := Fig13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Table.Rows {
		tdma := parseKbps(t, row[1])
		buzz := parseKbps(t, row[2])
		lf := parseKbps(t, row[3])
		if !(lf > buzz && lf > tdma) {
			t.Fatalf("efficiency ordering broken: %v", row)
		}
	}
}

func TestFig14Gap(t *testing.T) {
	res, err := Fig14(Config{Seed: 1, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// At every SNR, ASK's BER must be ≤ LF's (the robustness cost of
	// edge decoding, §5.4), and both must reach zero at high SNR.
	lf := res.Series[0]
	ask := res.Series[1]
	for i := range lf.Points {
		if ask.Points[i].Y > lf.Points[i].Y+1e-9 {
			t.Fatalf("ASK worse than LF at %v dB", lf.Points[i].X)
		}
	}
	last := len(lf.Points) - 1
	if lf.Points[last].Y != 0 || ask.Points[last].Y != 0 {
		t.Fatal("BER should be zero at the top of the sweep")
	}
	if lf.Points[0].Y == 0 {
		t.Fatal("LF BER should be nonzero at the bottom of the sweep")
	}
}

func TestFig1Swings(t *testing.T) {
	res, err := Fig1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
}

func TestFig2SeparabilityCollapses(t *testing.T) {
	res, err := Fig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	two := parseKbps(t, strings.TrimSuffix(res.Table.Rows[0][3], "%"))
	six := parseKbps(t, strings.TrimSuffix(res.Table.Rows[2][3], "%"))
	if two < 95 {
		t.Fatalf("2-tag cluster accuracy %v%%", two)
	}
	if six > two {
		t.Fatalf("6-tag accuracy (%v%%) should be worse than 2-tag (%v%%)", six, two)
	}
}

func TestFig4Spread(t *testing.T) {
	res, err := Fig4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// p95-p05 spread row must be several bit periods at 100 kbps.
	spreadBits := parseKbps(t, res.Table.Rows[6][1])
	if spreadBits < 2 {
		t.Fatalf("comparator spread %v bits too narrow for interleaving", spreadBits)
	}
}

func TestFig5BlindRecovery(t *testing.T) {
	res, err := Fig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	acc := parseKbps(t, strings.TrimSuffix(res.Table.Rows[3][1], "%"))
	if acc < 95 {
		t.Fatalf("blind joint-state accuracy %v%%", acc)
	}
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFig1CSV(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines < 100 {
		t.Fatalf("fig1 CSV only %d lines", lines)
	}
	buf.Reset()
	if err := WriteFig4CSV(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "series,x,y") {
		t.Fatal("fig4 CSV missing header")
	}
	buf.Reset()
	if err := WriteFig2CSV(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "qam16") || !strings.Contains(buf.String(), "tags6") {
		t.Fatal("fig2 CSV missing series")
	}
	buf.Reset()
	if err := WriteFig5CSV(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "centre"); got != 9 {
		t.Fatalf("fig5 CSV has %d lattice centres", got)
	}
}

func TestAblations(t *testing.T) {
	if _, err := AblationSeparation(quickCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationRegistration(quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicsRobustness(t *testing.T) {
	res, err := DynamicsRobustness(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Table.Rows
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Buzz with a stale estimate must degrade as drift grows, while a
	// fresh estimate stays clean — the §2.2 estimation-cost argument.
	staleLow := parseKbps(t, rows[0][2])
	staleHigh := parseKbps(t, rows[len(rows)-1][2])
	if staleHigh <= staleLow {
		t.Fatalf("stale Buzz BER did not grow with drift: %v -> %v", staleLow, staleHigh)
	}
	for _, row := range rows {
		if fresh := parseKbps(t, row[3]); fresh > 0.01 {
			t.Fatalf("fresh-estimate Buzz BER %v at %s", fresh, row[0])
		}
	}
}

func TestReliableTransfer(t *testing.T) {
	res, err := ReliableTransfer(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Table.Rows {
		if row[3] != "true" {
			t.Fatalf("reliable session incomplete: %v", row)
		}
	}
}

func TestScalabilityLowRate(t *testing.T) {
	res, err := ScalabilityLowRate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// At a reduced rate the smallest deployment must run near its
	// offered load (the §5.2 scaling argument).
	frac := parseKbps(t, strings.TrimSuffix(res.Table.Rows[0][4], "%"))
	if frac < 80 {
		t.Fatalf("8 tags @10 kbps delivered only %v%% of offered", frac)
	}
}

func TestCapacityModelPinsPaperConstants(t *testing.T) {
	res, err := CapacityModel(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is the paper's §3.3 operating point: P(2-way)=0.1890,
	// P(3-way)=0.0181, 83-edge capacity.
	row := res.Table.Rows[0]
	if row[3] != "83" {
		t.Fatalf("edge capacity %s", row[3])
	}
	p2 := parseKbps(t, row[4])
	p3 := parseKbps(t, row[5])
	if p2 < 0.185 || p2 > 0.193 {
		t.Fatalf("P(2-way) = %v", p2)
	}
	if p3 < 0.016 || p3 > 0.020 {
		t.Fatalf("P(3-way) = %v", p3)
	}
}

func TestTagPowerBudgets(t *testing.T) {
	res := TagPowerBudgets()
	if len(res.Table.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
}
