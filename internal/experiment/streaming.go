package experiment

import (
	"fmt"
	"reflect"

	"lf"
	"lf/internal/stats"
)

// streamCalibSamples bounds noise calibration so the streaming decoder
// commits mid-capture (1.3 ms at 25 Msps — past the start-offset
// jitter window, well before the frames end).
const streamCalibSamples = 32768

// streamBlock is the replay block size, sized like an SDR DMA buffer.
const streamBlock = 8192

// Streaming characterizes the bounded-memory streaming decode path
// against batch decode: how long before end of capture the first frame
// surfaces, how much sample-proportional memory the decoder retains at
// its peak versus buffering the capture, and whether the streamed
// result is bit-identical to the batch result (it must be).
func Streaming(cfg Config) (*Result, error) {
	ns := []int{1, 4, 8, 16}
	if cfg.Quick {
		ns = []int{1, 8}
	}
	table := &stats.Table{
		Title: fmt.Sprintf("Streaming decode — first-frame latency and retained memory (block %d, calib %d, SIC off)",
			streamBlock, streamCalibSamples),
		Header: []string{"tags", "capture ms", "first frame ms", "peak KiB", "capture KiB", "identical"},
	}
	series := []stats.Series{{Label: "first-frame ms"}, {Label: "peak KiB"}}
	for _, n := range ns {
		net, err := lf.NewNetwork(lf.NetworkConfig{
			NumTags:        n,
			PayloadSeconds: 2e-3,
			Seed:           cfg.Seed + int64(n)*17,
		})
		if err != nil {
			return nil, err
		}
		ep, err := net.RunEpoch()
		if err != nil {
			return nil, err
		}
		dcfg := net.DecoderConfig()
		dcfg.Parallelism = cfg.Workers
		dcfg.CalibSamples = streamCalibSamples
		// SIC retains a raw-capture copy by design (it subtracts
		// reconstructions from the original samples), so the memory
		// characterization runs the pure streaming configuration.
		dcfg.CancellationRounds = -1

		dec, err := lf.NewDecoder(dcfg)
		if err != nil {
			return nil, err
		}
		batch, err := dec.Decode(ep)
		if err != nil {
			return nil, err
		}

		// Streaming pass: replay the capture in blocks, recording when
		// the first frame commits and the peak retained memory.
		var pushed, firstFrame int64 = 0, -1
		dcfg.OnFrame = func(*lf.StreamResult) {
			if firstFrame < 0 {
				firstFrame = pushed
			}
		}
		sdec, err := lf.NewDecoder(dcfg)
		if err != nil {
			return nil, err
		}
		sd, err := sdec.NewStream()
		if err != nil {
			return nil, err
		}
		var peak int64
		err = ep.Blocks(streamBlock, func(block []complex128) error {
			pushed += int64(len(block))
			if err := sd.Push(block); err != nil {
				return err
			}
			if r := sd.RetainedBytes(); r > peak {
				peak = r
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		streamed, err := sd.Flush()
		if err != nil {
			return nil, err
		}

		rate := ep.Config.SampleRate
		captureMS := float64(ep.Capture.Len()) / rate * 1e3
		ffMS := -1.0
		if firstFrame >= 0 {
			ffMS = float64(firstFrame) / rate * 1e3
		}
		peakKiB := float64(peak) / 1024
		capKiB := float64(ep.Capture.Len()) * 16 / 1024
		identical := reflect.DeepEqual(batch, streamed)
		table.AddRow(fmt.Sprint(n), ms(captureMS/1e3), ms(ffMS/1e3),
			fmt.Sprintf("%.0f", peakKiB), fmt.Sprintf("%.0f", capKiB), fmt.Sprint(identical))
		series[0].Add(float64(n), ffMS)
		series[1].Add(float64(n), peakKiB)
		if !identical {
			return nil, fmt.Errorf("experiment: streaming decode diverged from batch at %d tags", n)
		}
	}
	return &Result{Table: table, Series: series}, nil
}
