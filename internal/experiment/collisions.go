package experiment

import (
	"fmt"
	"math"

	"lf/internal/channel"
	"lf/internal/collide"
	"lf/internal/decoder"
	"lf/internal/dsp"
	"lf/internal/reader"
	"lf/internal/rng"
	"lf/internal/stats"
	"lf/internal/tag"
)

// deterministicComparator fires at the same instant on every tag —
// used to force full-frame collisions for the Table 2 study.
func deterministicComparator() tag.Comparator {
	c := tag.DefaultComparator()
	c.CapacitorTolerance = 0
	c.EnergySpread = 0
	c.ChargeNoise = 0
	return c
}

// forcedCollision builds one epoch in which tags 0 and 1 collide on
// every edge (identical comparator delay, zero clock drift) while
// background tags (if any) chatter normally.
func forcedCollision(bitRate float64, payload int, background int, src *rng.Source) (*reader.Epoch, error) {
	nTags := 2 + background
	params := channel.DefaultParams()
	geoms := channel.PlaceRing(nTags, 2, src.Split("placement"))
	ch := channel.NewModel(params, geoms, src.Split("noise"))
	var emissions []*tag.Emission
	for i := 0; i < 2; i++ {
		tc := tag.Config{
			ID:         i,
			BitRate:    bitRate,
			Comparator: deterministicComparator(),
			Payload:    src.Bits(payload),
		}
		emissions = append(emissions, tag.Emit(tc, src))
	}
	for i := 2; i < nTags; i++ {
		tc := tag.Config{
			ID:         i,
			BitRate:    100e3,
			ClockPPM:   150,
			Comparator: tag.DefaultComparator(),
			Payload:    src.Bits(int(100e3 * float64(payload) / bitRate)),
		}
		emissions = append(emissions, tag.Emit(tc, src))
	}
	longest := 0.0
	for _, em := range emissions {
		if em.End() > longest {
			longest = em.End()
		}
	}
	epochCfg := reader.EpochConfig{SampleRate: 25e6, EdgeSamples: 3, Duration: longest + 100e-6}
	return reader.Synthesize(ch, emissions, epochCfg)
}

// collisionAccuracy decodes a forced-collision epoch and returns the
// fraction of the two colliding tags' payload bits recovered.
func collisionAccuracy(ep *reader.Epoch, bitRate float64, payload int, seed int64) (float64, error) {
	rates := map[float64]bool{bitRate: true, 100e3: true}
	var rateList []float64
	for r := range rates {
		rateList = append(rateList, r)
	}
	dcfg := decoder.DefaultConfig(25e6, rateList, payload)
	dcfg.PayloadBits = func(rate float64) int {
		return int(math.Round(float64(payload) * rate / bitRate))
	}
	dcfg.Seed = seed
	res, err := decoder.Decode(ep.Capture, dcfg)
	if err != nil {
		return 0, err
	}
	// Score each colliding tag against its best-matching stream by
	// content (the merged pair shares a grid, so offsets are ambiguous).
	correct := 0
	total := 0
	used := make(map[int]bool)
	for ti := 0; ti < 2; ti++ {
		truth := ep.Emissions[ti].Bits[tag.FrameOverhead:]
		total += len(truth)
		bestErrs, bestIdx := len(truth), -1
		for si, sr := range res.Streams {
			if used[si] {
				continue
			}
			for shift := -2; shift <= 2; shift++ {
				errs := shiftErrs(sr.Bits, truth, shift)
				if errs < bestErrs {
					bestErrs, bestIdx = errs, si
				}
			}
		}
		if bestIdx >= 0 {
			used[bestIdx] = true
		}
		correct += len(truth) - bestErrs
	}
	if total == 0 {
		return 0, nil
	}
	return float64(correct) / float64(total), nil
}

func shiftErrs(decoded, truth []byte, shift int) int {
	errs := 0
	n := 0
	for i := range decoded {
		j := i + shift
		if j < 0 || j >= len(truth) {
			continue
		}
		n++
		if decoded[i] != truth[j] {
			errs++
		}
	}
	errs += len(truth) - n
	if errs > len(truth) {
		errs = len(truth)
	}
	return errs
}

// Table2 reproduces the collision-separation accuracy study: two tags
// whose edges all collide, decoded (a) at 100 kbps with 14 background
// chatterers, (b) at 100 kbps alone, (c) at 10 kbps alone.
func Table2(cfg Config) (*Result, error) {
	cases := []struct {
		label      string
		bitRate    float64
		background int
	}{
		{"100 Kbps with background nodes", 100e3, 14},
		{"100 Kbps w/o background nodes", 100e3, 0},
		{"10 Kbps w/o background nodes", 10e3, 0},
	}
	payload := 400
	trials := cfg.Epochs
	if cfg.Quick {
		payload = 150
		trials = 1
	}
	table := &stats.Table{
		Title:  "Table 2 — separating edge collisions with IQ-based classification",
		Header: []string{"setting", "accuracy"},
	}
	for ci, c := range cases {
		var acc float64
		for t := 0; t < trials; t++ {
			src := rng.New(cfg.Seed + int64(ci*97+t))
			p := payload
			if c.bitRate < 50e3 {
				p = payload / 4 // keep captures bounded at slow rates
			}
			ep, err := forcedCollision(c.bitRate, p, c.background, src)
			if err != nil {
				return nil, err
			}
			a, err := collisionAccuracy(ep, c.bitRate, p, cfg.Seed+int64(t))
			if err != nil {
				return nil, err
			}
			acc += a
		}
		table.AddRow(c.label, fmt.Sprintf("%.2f%%", 100*acc/float64(trials)))
	}
	return &Result{Table: table}, nil
}

// Fig2 reproduces the IQ constellation scalability study: the number
// of joint-state clusters doubles per tag, so nearest-cluster decoding
// degrades rapidly — 2 tags are separable, 6 are not (§2.3).
func Fig2(cfg Config) (*Result, error) {
	table := &stats.Table{
		Title:  "Fig. 2 — IQ cluster separability vs concurrent tags",
		Header: []string{"tags", "clusters", "min separation / noise", "state accuracy"},
	}
	src := rng.New(cfg.Seed)
	noiseSigma := 6e-5
	for _, n := range []int{2, 4, 6} {
		coeffs := randomCoeffs(n, src.Split(fmt.Sprint("fig2", n)))
		// All 2^n ideal cluster centres.
		centres := make([]complex128, 1<<uint(n))
		for s := range centres {
			var v complex128
			for j := 0; j < n; j++ {
				if s>>uint(j)&1 == 1 {
					v += coeffs[j]
				}
			}
			centres[s] = v
		}
		minSep := math.Inf(1)
		for i := range centres {
			for j := i + 1; j < len(centres); j++ {
				if d := dsp.Dist(centres[i], centres[j]); d < minSep {
					minSep = d
				}
			}
		}
		// Monte-Carlo state recovery by nearest cluster.
		trials := 2000
		if cfg.Quick {
			trials = 400
		}
		correct := 0
		mc := src.Split(fmt.Sprint("mc", n))
		for t := 0; t < trials; t++ {
			s := mc.Intn(len(centres))
			obs := centres[s] + mc.ComplexNorm(noiseSigma*noiseSigma)
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centres {
				if d := dsp.Dist(obs, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if best == s {
				correct++
			}
		}
		table.AddRow(fmt.Sprint(n), fmt.Sprint(len(centres)),
			fmt.Sprintf("%.1f", minSep/noiseSigma),
			fmt.Sprintf("%.1f%%", 100*float64(correct)/float64(trials)))
	}
	return &Result{Table: table}, nil
}

// Fig5 demonstrates the nine-cluster parallelogram of two colliding
// edges and the blind recovery of the two edge vectors from it.
func Fig5(cfg Config) (*Result, error) {
	src := rng.New(cfg.Seed)
	e1 := complex(4.1e-4, 5.3e-4)
	e2 := complex(-5.6e-4, 2.2e-4)
	noise := 4e-5
	points := make([]complex128, 0, 360)
	truth := make([][2]collide.State, 0, 360)
	n := 360
	if cfg.Quick {
		n = 120
	}
	for i := 0; i < n; i++ {
		a := collide.State(src.Intn(3) - 1)
		b := collide.State(src.Intn(3) - 1)
		p := complex(float64(a), 0)*e1 + complex(float64(b), 0)*e2 + src.ComplexNorm(noise*noise)
		points = append(points, p)
		truth = append(truth, [2]collide.State{a, b})
	}
	sep, err := collide.SeparateBlind(points, src)
	if err != nil {
		return nil, err
	}
	// Align recovered vectors with truth for scoring.
	swap := !collide.MatchVectors(sep.E1, sep.E2, e1, e2)
	r1, r2 := sep.E1, sep.E2
	if swap {
		r1, r2 = r2, r1
	}
	s1, s2 := 1.0, 1.0
	if dsp.Dist(r1, -e1) < dsp.Dist(r1, e1) {
		s1 = -1
	}
	if dsp.Dist(r2, -e2) < dsp.Dist(r2, e2) {
		s2 = -1
	}
	correct := 0
	for i, st := range sep.States {
		a, b := st[0], st[1]
		if swap {
			a, b = b, a
		}
		a = collide.State(float64(a) * s1)
		b = collide.State(float64(b) * s2)
		if a == truth[i][0] && b == truth[i][1] {
			correct++
		}
	}
	table := &stats.Table{
		Title:  "Fig. 5 — blind parallelogram recovery of two colliding edges",
		Header: []string{"quantity", "value"},
	}
	table.AddRow("points", fmt.Sprint(len(points)))
	table.AddRow("e1 recovery error", fmt.Sprintf("%.1f%%", 100*dsp.Dist(complex(s1, 0)*r1, e1)/dsp.Abs(e1)))
	table.AddRow("e2 recovery error", fmt.Sprintf("%.1f%%", 100*dsp.Dist(complex(s2, 0)*r2, e2)/dsp.Abs(e2)))
	table.AddRow("joint state accuracy", fmt.Sprintf("%.1f%%", 100*float64(correct)/float64(len(points))))
	return &Result{Table: table}, nil
}
