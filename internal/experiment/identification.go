package experiment

import (
	"fmt"

	"lf"
	"lf/internal/baseline/buzz"
	"lf/internal/baseline/tdma"
	"lf/internal/epc"
	"lf/internal/rng"
	"lf/internal/stats"
	"lf/internal/work"
)

// lfIdentify runs the LF-Backscatter identification protocol of §5.2:
// every tag transmits its 96-bit EPC + CRC-5 each epoch at 100 kbps
// with a fresh random offset; tags whose frame decodes with a valid
// CRC are identified; the reader keeps issuing epochs until all tags
// are identified (or maxEpochs pass). Returns the total time.
// decodeParallelism is forwarded to the decoder (1 when the caller is
// already fanning populations out, so cores aren't oversubscribed).
func lfIdentify(n int, seed int64, maxEpochs, decodeParallelism int) (seconds float64, epochs int, err error) {
	src := rng.New(seed)
	ids := make([]epc.ID, n)
	idSet := make(map[epc.ID]bool)
	for i := range ids {
		ids[i] = epc.Random(src)
		idSet[ids[i]] = true
	}
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags: n,
		Seed:    seed,
	})
	if err != nil {
		return 0, 0, err
	}
	for i := range ids {
		if err := net.SetPayload(i, ids[i].Frame()); err != nil {
			return 0, 0, err
		}
	}
	identified := make(map[epc.ID]bool)
	for epochs < maxEpochs {
		epochs++
		ep, err := net.RunEpoch()
		if err != nil {
			return 0, 0, err
		}
		seconds += ep.Capture.Duration()
		dcfg := net.DecoderConfig()
		dcfg.Parallelism = decodeParallelism
		dec, err := lf.NewDecoder(dcfg)
		if err != nil {
			return 0, 0, err
		}
		res, err := dec.Decode(ep)
		if err != nil {
			return 0, 0, err
		}
		for _, sr := range res.Streams {
			if id, ok := epc.ParseFrame(sr.Bits); ok && idSet[id] {
				identified[id] = true
			}
		}
		if len(identified) == len(ids) {
			return seconds, epochs, nil
		}
	}
	return seconds, epochs, nil
}

// buzzIdentify models Buzz inventorying: all tags transmit their
// 101-bit identification frames in lock-step; tags whose decoded frame
// fails its CRC force another full epoch (Buzz's lock-step retransmission
// includes everyone).
func buzzIdentify(n int, seed int64, maxEpochs int) (float64, error) {
	bc := buzz.DefaultConfig()
	bc.MessageBits = epc.FrameBits
	src := rng.New(seed)
	coeffs := randomCoeffs(n, src)
	nw, err := buzz.NewNetwork(bc, coeffs, src.Split("buzz"))
	if err != nil {
		return 0, err
	}
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = epc.Random(src).Frame()
	}
	var seconds float64
	for e := 0; e < maxEpochs; e++ {
		res, err := nw.Epoch(frames)
		if err != nil {
			return 0, err
		}
		seconds += res.Seconds
		ok := true
		for _, decoded := range res.Decoded {
			if !epc.CheckCRC5(decoded) {
				ok = false
				break
			}
		}
		if ok {
			return seconds, nil
		}
	}
	return seconds, nil
}

// Fig12 reproduces the node-identification latency comparison.
func Fig12(cfg Config) (*Result, error) {
	ns := []int{4, 8, 12, 16}
	if cfg.Quick {
		ns = []int{4, 8}
	}
	table := &stats.Table{
		Title:  "Fig. 12 — identification time (ms) vs number of devices",
		Header: []string{"nodes", "TDMA", "Buzz", "LF-Backscatter", "LF epochs", "TDMA/LF", "Buzz/LF"},
	}
	series := []stats.Series{{Label: "TDMA"}, {Label: "Buzz"}, {Label: "LF-Backscatter"}}
	src := rng.New(cfg.Seed)
	// The TDMA baseline draws from the shared source, so its per-n
	// splits are created serially in sweep order before the populations
	// fan out; everything else inside a point is seeded from (Seed, n).
	tdmaSrcs := make([]*rng.Source, len(ns))
	for i, n := range ns {
		tdmaSrcs[i] = src.Split(fmt.Sprint("tdma", n))
	}
	type point struct {
		tSec, bSec, lSec float64
		epochs           int
		err              error
	}
	points := make([]point, len(ns))
	workers := cfg.workers()
	decPar := 0
	if workers > 1 {
		decPar = 1
	}
	work.Do(workers, len(ns), func(i int) {
		n := ns[i]
		// TDMA: Q-algorithm slotted ALOHA, averaged.
		tc := tdma.DefaultConfig()
		tc.SlotBits = epc.FrameBits
		tSec, err := tc.MeanInventorySeconds(n, 8, tdmaSrcs[i])
		if err != nil {
			points[i].err = err
			return
		}
		bSec, err := buzzIdentify(n, cfg.Seed+int64(n), 8)
		if err != nil {
			points[i].err = err
			return
		}
		lSec, epochs, err := lfIdentify(n, cfg.Seed+int64(n)*17, 12, decPar)
		if err != nil {
			points[i].err = err
			return
		}
		points[i] = point{tSec: tSec, bSec: bSec, lSec: lSec, epochs: epochs}
	})
	for i, n := range ns {
		p := points[i]
		if p.err != nil {
			return nil, p.err
		}
		table.AddRow(fmt.Sprint(n), ms(p.tSec), ms(p.bSec), ms(p.lSec), fmt.Sprint(p.epochs), ratio(p.tSec, p.lSec), ratio(p.bSec, p.lSec))
		series[0].Add(float64(n), p.tSec*1e3)
		series[1].Add(float64(n), p.bSec*1e3)
		series[2].Add(float64(n), p.lSec*1e3)
	}
	return &Result{Table: table, Series: series}, nil
}
