package experiment

import (
	"strings"

	"lf"
	"lf/internal/stats"
)

// Table1 reproduces the single-node recovery walkthrough: the paper's
// example bit pattern transmitted by one tag, the edge states the
// decoder observed at each payload slot, and the decoded bits.
func Table1(cfg Config) (*Result, error) {
	sent := []byte{1, 0, 0, 0, 0, 1, 1, 0, 1, 0}
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags: 1,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := net.SetPayload(0, sent); err != nil {
		return nil, err
	}
	ep, err := net.RunEpoch()
	if err != nil {
		return nil, err
	}
	dec, err := lf.NewDecoder(net.DecoderConfig())
	if err != nil {
		return nil, err
	}
	res, err := dec.Decode(ep)
	if err != nil {
		return nil, err
	}
	table := &stats.Table{
		Title:  "Table 1 — single node data recovery",
		Header: []string{"row", "values"},
	}
	table.AddRow("sent bits", joinBits(sent))
	if len(res.Streams) == 1 {
		sr := res.Streams[0]
		glyphs := make([]string, 0, len(sent))
		for k := sr.PayloadStart; k < len(sr.States) && len(glyphs) < len(sent); k++ {
			glyphs = append(glyphs, sr.States[k].String())
		}
		table.AddRow("received edges", strings.Join(glyphs, " "))
		table.AddRow("decoded bits", joinBits(sr.Bits))
	}
	return &Result{Table: table}, nil
}

func joinBits(bits []byte) string {
	parts := make([]string, len(bits))
	for i, b := range bits {
		parts[i] = string('0' + rune(b))
	}
	return strings.Join(parts, " ")
}
