package experiment

import (
	"fmt"
	"time"

	"lf"
	"lf/internal/stats"
)

// Stages profiles the pipelined streaming decoder's stage graph: one
// instrumented decode with PipelineParallelism=2, broken down into
// per-stage wall time, per-item latency, and occupancy (stage busy
// time over decode wall time), plus the bounded-queue statistics —
// high-water depth, producer/consumer stall time, tokens moved. The
// occupancy column is the capacity-planning number: a stage near 100%
// is the pipeline's bottleneck, and the sum over stages divided by
// the number of pipelined stages is the achievable multicore speedup.
func Stages(cfg Config) (*Result, error) {
	tags := 8
	if cfg.Quick {
		tags = 4
	}
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        tags,
		PayloadSeconds: 2e-3,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	ep, err := net.RunEpoch()
	if err != nil {
		return nil, err
	}
	dcfg := net.DecoderConfig()
	dcfg.Parallelism = cfg.Workers
	dcfg.CalibSamples = streamCalibSamples
	dcfg.PipelineParallelism = 2
	dec, err := lf.NewDecoder(dcfg)
	if err != nil {
		return nil, err
	}
	sd, err := dec.NewStream()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := ep.Blocks(streamBlock, sd.Push); err != nil {
		return nil, err
	}
	if _, err := sd.Flush(); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	snap := sd.Stats()

	table := &stats.Table{
		Title: fmt.Sprintf("Stage graph breakdown — %d tags, block %d, pipeline=2, wall %.2f ms",
			tags, streamBlock, wall.Seconds()*1e3),
		Header: []string{"stage", "items", "total ms", "mean µs", "occupancy"},
	}
	series := []stats.Series{{Label: "occupancy %"}}
	for i, row := range []struct{ label, timing string }{
		{"push (caller)", "stage.push_ns"},
		{"detect", "stage.detect_ns"},
		{"walk", "stage.walk_ns"},
		{"commit", "stage.commit_ns"},
		{"flush", "stage.flush_ns"},
	} {
		t := snap.Timings[row.timing]
		mean := 0.0
		if t.Count > 0 {
			mean = float64(t.TotalNs) / float64(t.Count) / 1e3
		}
		occ := float64(t.TotalNs) / float64(wall.Nanoseconds()) * 100
		table.AddRow(row.label, fmt.Sprint(t.Count),
			fmt.Sprintf("%.2f", float64(t.TotalNs)/1e6),
			fmt.Sprintf("%.1f", mean), fmt.Sprintf("%.0f%%", occ))
		series[0].Add(float64(i), occ)
	}
	for _, q := range []struct{ label, prefix string }{
		{"queue ingest", "pipe.ingest"},
		{"queue tokens", "pipe.token"},
	} {
		pushStall := snap.Timings[q.prefix+"_push_stall_ns"]
		popStall := snap.Timings[q.prefix+"_pop_stall_ns"]
		table.AddRow(q.label,
			fmt.Sprint(snap.Counters[q.prefix+"_items"]),
			fmt.Sprintf("stall %.2f/%.2f", float64(pushStall.TotalNs)/1e6, float64(popStall.TotalNs)/1e6),
			fmt.Sprintf("depth %d", snap.Gauges[q.prefix+"_depth"]),
			"-")
	}
	return &Result{Table: table, Series: series}, nil
}
