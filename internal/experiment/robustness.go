package experiment

import (
	"fmt"
	"reflect"

	"lf"
	"lf/internal/fault"
	"lf/internal/reader"
	"lf/internal/stats"
)

// robustTags is the network size for the robustness sweep: enough tags
// that collisions and SIC are exercised, small enough that the sweep
// over kinds × severities × epochs stays affordable.
const robustTags = 4

// Robustness sweeps the fault injectors across severities and measures
// how gracefully the decoder degrades: FER/BER versus impairment
// severity per fault kind, plus the Dropped bookkeeping the degraded
// path emits. Every point also decodes the impaired capture through
// the streaming path and requires the degraded Result to be identical
// to batch — graceful degradation must not break the streaming
// equivalence contract.
func Robustness(cfg Config) (*Result, error) {
	kinds := []fault.Kind{
		fault.BurstNoise, fault.Dropout, fault.SpuriousEdges, fault.NonFinite,
		fault.DCStep, fault.GainStep, fault.Repeat, fault.Truncate,
		fault.ClockDrift, fault.TagDeath,
	}
	severities := []float64{0, 0.25, 0.5, 0.75, 1}
	blocks := []int{streamBlock, 3331}
	if cfg.Quick {
		kinds = []fault.Kind{fault.BurstNoise, fault.Dropout, fault.SpuriousEdges, fault.NonFinite}
		severities = []float64{0, 0.5, 1}
		blocks = []int{streamBlock}
	}
	table := &stats.Table{
		Title: fmt.Sprintf("Robustness — graceful degradation under injected faults (%d tags, %d epochs/point)",
			robustTags, cfg.Epochs),
		Header: []string{"fault", "severity", "FER", "BER", "dropped", "stream==batch"},
	}
	var series []stats.Series
	for _, kind := range kinds {
		fer := stats.Series{Label: fmt.Sprintf("FER %s", kind)}
		ber := stats.Series{Label: fmt.Sprintf("BER %s", kind)}
		for _, sev := range severities {
			pt, err := robustnessPoint(cfg, kind, sev, blocks)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s at severity %.2f: %w", kind, sev, err)
			}
			table.AddRow(string(kind), fmt.Sprintf("%.2f", sev),
				fmt.Sprintf("%.3f", pt.fer), fmt.Sprintf("%.2e", pt.ber),
				fmt.Sprint(pt.dropped), fmt.Sprint(pt.identical))
			fer.Add(sev, pt.fer)
			ber.Add(sev, pt.ber)
			if !pt.identical {
				return nil, fmt.Errorf("experiment: streaming decode diverged from batch under %s at severity %.2f", kind, sev)
			}
		}
		series = append(series, fer, ber)
	}
	return &Result{Table: table, Series: series}, nil
}

// robustnessPoint measures one (kind, severity) cell averaged over
// cfg.Epochs independently seeded epochs.
type robustPoint struct {
	fer, ber  float64
	dropped   int
	identical bool
}

func robustnessPoint(cfg Config, kind fault.Kind, sev float64, blocks []int) (robustPoint, error) {
	pt := robustPoint{identical: true}
	frames, frameErrs, bits, bitErrs := 0, 0, 0, 0
	for e := 0; e < cfg.Epochs; e++ {
		seed := cfg.Seed + int64(e)*131 + 7
		net, err := lf.NewNetwork(lf.NetworkConfig{
			NumTags:        robustTags,
			PayloadSeconds: 2e-3,
			Seed:           seed,
		})
		if err != nil {
			return pt, err
		}
		ep, err := net.RunEpoch()
		if err != nil {
			return pt, err
		}
		fc := fault.Config{
			Seed:      seed ^ 0x5EED,
			Injectors: []fault.Injector{{Kind: kind, Severity: sev}},
		}
		impaired, err := impairEpoch(net, ep, fc)
		if err != nil {
			return pt, err
		}

		dcfg := net.DecoderConfig()
		dcfg.Parallelism = cfg.Workers
		dcfg.CalibSamples = streamCalibSamples
		dcfg.CancellationRounds = -1
		dec, err := lf.NewDecoder(dcfg)
		if err != nil {
			return pt, err
		}
		batch, err := dec.Decode(impaired)
		if err != nil {
			return pt, err
		}
		pt.dropped += len(batch.Dropped)

		// The degraded result must be block-size independent: replay
		// the impaired capture through the streaming path and compare.
		for _, block := range blocks {
			sd, err := dec.NewStream()
			if err != nil {
				return pt, err
			}
			if err := impaired.Blocks(block, sd.Push); err != nil {
				return pt, err
			}
			streamed, err := sd.Flush()
			if err != nil {
				return pt, err
			}
			if !reflect.DeepEqual(batch, streamed) {
				pt.identical = false
			}
		}

		score := lf.ScoreEpoch(impaired, batch)
		for _, ts := range score.PerTag {
			frames++
			if !ts.Registered || ts.BitErrors > 0 {
				frameErrs++
			}
			bits += ts.PayloadBits
			bitErrs += ts.BitErrors
		}
	}
	if frames > 0 {
		pt.fer = float64(frameErrs) / float64(frames)
	}
	if bits > 0 {
		pt.ber = float64(bitErrs) / float64(bits)
	}
	return pt, nil
}

// impairEpoch applies a fault configuration to a synthesized epoch.
// Tag-level injectors rewrite the emissions and re-synthesize the
// capture (the impairment exists before the ADC); capture-level
// injectors corrupt the recorded samples. The returned epoch keeps the
// original ground-truth bits so scoring measures what the faults cost.
func impairEpoch(net *lf.Network, ep *lf.Epoch, fc fault.Config) (*lf.Epoch, error) {
	capInjs, tagInjs := fault.SplitLevels(fc.Injectors)
	ems := ep.Emissions
	capture := ep.Capture
	if len(tagInjs) > 0 {
		faulted, err := fault.Config{Seed: fc.Seed, RefAmp: fc.RefAmp, Injectors: tagInjs}.ApplyEmissions(ems)
		if err != nil {
			return nil, err
		}
		re, err := reader.Synthesize(net.Channel(), faulted, ep.Config)
		if err != nil {
			return nil, err
		}
		ems, capture = faulted, re.Capture
	}
	if len(capInjs) > 0 {
		var err error
		capture, err = fault.Config{Seed: fc.Seed, RefAmp: fc.RefAmp, Injectors: capInjs}.ApplyCapture(capture)
		if err != nil {
			return nil, err
		}
	}
	return &lf.Epoch{Capture: capture, Emissions: ems, Config: ep.Config}, nil
}
