package experiment

import (
	"fmt"

	"lf"
	"lf/internal/baseline/buzz"
	"lf/internal/baseline/tdma"
	"lf/internal/hardware"
	"lf/internal/stats"
)

// Table3Hardware reproduces the tag hardware complexity comparison:
// transistor counts with and without a 1 kbit FIFO.
func Table3Hardware() *Result {
	table := &stats.Table{
		Title:  "Table 3 — hardware complexity (transistors)",
		Header: []string{"design", "w/o FIFO", "w/ 1k FIFO"},
	}
	for _, c := range hardware.Table3(1024) {
		table.AddRow(c.Name, fmt.Sprint(c.Transistors), fmt.Sprint(c.TransistorsWithFIFO))
	}
	return &Result{Table: table}
}

// Fig13 reproduces the communication-efficiency comparison: correct
// bits delivered per microjoule of tag energy as the network grows.
// Throughputs come from the same simulations as Fig. 8; power from the
// component model in internal/hardware.
func Fig13(cfg Config) (*Result, error) {
	ns := []int{1, 4, 8, 12, 16}
	if cfg.Quick {
		ns = []int{1, 8}
	}
	bitRate := 100e3
	bc := buzz.DefaultConfig()
	table := &stats.Table{
		Title:  "Fig. 13 — energy efficiency (bits/µJ) vs number of devices",
		Header: []string{"nodes", "TDMA", "Buzz", "LF-Backscatter", "LF/TDMA", "LF/Buzz"},
	}
	series := []stats.Series{{Label: "TDMA"}, {Label: "Buzz"}, {Label: "LF-Backscatter"}}
	for _, n := range ns {
		// Per-tag goodputs.
		tdmaPer := tdma.DefaultConfig().Transfer(n).PerNodeBps
		buzzPer := bc.TransferBps(n) / float64(n)
		lfAgg, _, err := lfThroughput(cfg, n, bitRate, lf.AllStages(), cfg.Seed+int64(n)*31)
		if err != nil {
			return nil, err
		}
		lfPer := lfAgg / float64(n)

		tEff := hardware.Gen2Profile().BitsPerMicrojoule(tdmaPer)
		bEff := hardware.BuzzProfile(bitRate, float64(bc.Measurements(n))).BitsPerMicrojoule(buzzPer)
		lEff := hardware.LFProfile(bitRate).BitsPerMicrojoule(lfPer)
		table.AddRow(fmt.Sprint(n), fmt.Sprintf("%.0f", tEff), fmt.Sprintf("%.0f", bEff),
			fmt.Sprintf("%.0f", lEff), ratio(lEff, tEff), ratio(lEff, bEff))
		series[0].Add(float64(n), tEff)
		series[1].Add(float64(n), bEff)
		series[2].Add(float64(n), lEff)
	}
	return &Result{Table: table, Series: series}, nil
}

// TagPowerBudgets summarizes the power model at representative
// operating points — the platform story of §1 (a 1 Hz battery-less
// temperature sensor) and §5.3's streaming tag.
func TagPowerBudgets() *Result {
	table := &stats.Table{
		Title:  "Tag power model operating points",
		Header: []string{"profile", "bit rate", "power (µW)"},
	}
	cases := []struct {
		name string
		p    hardware.Profile
		rate string
	}{
		{"LF sensor (RTC clock)", hardware.LFProfile(1e3), "1 kbps"},
		{"LF streaming", hardware.LFProfile(100e3), "100 kbps"},
		{"Buzz", hardware.BuzzProfile(100e3, 7), "100 kbps"},
		{"EPC Gen 2", hardware.Gen2Profile(), "100 kbps"},
	}
	for _, c := range cases {
		table.AddRow(c.name, c.rate, fmt.Sprintf("%.2f", c.p.Power()*1e6))
	}
	return &Result{Table: table}
}
