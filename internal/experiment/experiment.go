// Package experiment reproduces every table and figure of the paper's
// evaluation (§5). Each experiment builds its workload with the public
// lf API (plus internal substrates where the paper instruments below
// the protocol surface), runs it, and returns a stats.Table shaped
// like the corresponding paper result. cmd/lfbench prints them; the
// root bench suite regenerates them under `go test -bench`.
package experiment

import (
	"fmt"

	"lf/internal/stats"
	"lf/internal/work"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Epochs per measured point (more epochs, tighter estimates).
	Epochs int
	// Quick trims sweeps for use under `go test -bench` where each
	// iteration must stay cheap.
	Quick bool
	// Workers bounds epoch-level parallelism: independent seeded
	// epochs (Fig8/9/10 throughput averaging, the ablations, Fig12's
	// per-population runs) fan out across this many goroutines
	// (0 = all cores, 1 = serial). Every epoch is seeded independently
	// and aggregation preserves epoch order, so results are identical
	// at any setting.
	Workers int
}

// Default returns the configuration used by cmd/lfbench.
func Default() Config { return Config{Seed: 1, Epochs: 3} }

// workers resolves the epoch-level worker count.
func (c Config) workers() int { return work.Resolve(c.Workers) }

// firstErr returns the first error (lowest epoch index) from a
// fanned-out epoch loop, mirroring the serial loop's error semantics.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// kbps formats a bits/s value in kbps.
func kbps(bps float64) string { return fmt.Sprintf("%.1f", bps/1e3) }

// ms formats seconds as milliseconds.
func ms(s float64) string { return fmt.Sprintf("%.2f", s*1e3) }

// ratio formats a speedup/ratio.
func ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", a/b)
}

// Result bundles a table with the series behind it, for callers that
// plot rather than print.
type Result struct {
	Table  *stats.Table
	Series []stats.Series
}
