package experiment

import (
	"fmt"

	"lf"
	"lf/internal/baseline/buzz"
	"lf/internal/baseline/tdma"
	"lf/internal/decoder"
	"lf/internal/rng"
	"lf/internal/stats"
	"lf/internal/work"
)

// lfThroughput measures LF-Backscatter aggregate goodput for n tags at
// the given per-tag rate, averaged over cfg.Epochs epochs, using the
// given pipeline stages. It returns mean aggregate and offered bps.
//
// Epochs are independently seeded, so they fan out across cfg.Workers
// goroutines; per-epoch results land in an indexed slice and are
// summed in epoch order, keeping the mean bit-identical to the serial
// loop at any worker count.
func lfThroughput(cfg Config, n int, rate float64, stages lf.Stages, seed int64) (agg, offered float64, err error) {
	payloadSeconds := 2e-3
	if cfg.Quick {
		payloadSeconds = 1e-3
	}
	workers := cfg.workers()
	type epochOut struct {
		agg, offered float64
		err          error
	}
	outs := make([]epochOut, cfg.Epochs)
	work.Do(workers, cfg.Epochs, func(e int) {
		net, err := lf.NewNetwork(lf.NetworkConfig{
			NumTags:        n,
			BitRates:       []float64{rate},
			PayloadSeconds: payloadSeconds,
			Seed:           seed + int64(e)*7919,
		})
		if err != nil {
			outs[e].err = err
			return
		}
		ep, err := net.RunEpoch()
		if err != nil {
			outs[e].err = err
			return
		}
		dcfg := net.DecoderConfig()
		dcfg.Stages = stages
		if workers > 1 {
			// Epoch-level fan-out already saturates the cores; nested
			// decoder parallelism would only oversubscribe. Decode
			// output is bit-identical either way.
			dcfg.Parallelism = 1
		}
		dec, err := lf.NewDecoder(dcfg)
		if err != nil {
			outs[e].err = err
			return
		}
		res, err := dec.Decode(ep)
		if err != nil {
			outs[e].err = err
			return
		}
		score := lf.ScoreEpoch(ep, res)
		outs[e] = epochOut{agg: score.AggregateBps, offered: lf.OfferedBps(ep)}
	})
	for _, out := range outs {
		if out.err != nil {
			return 0, 0, out.err
		}
		agg += out.agg
		offered += out.offered
	}
	return agg / float64(cfg.Epochs), offered / float64(cfg.Epochs), nil
}

// buzzThroughput runs an actual Buzz epoch simulation over a channel
// with n coefficients and returns the measured aggregate goodput.
func buzzThroughput(cfg Config, n int, seed int64) (float64, error) {
	bc := buzz.DefaultConfig()
	if cfg.Quick {
		bc.MessageBits = 32
	}
	src := rng.New(seed)
	coeffs := randomCoeffs(n, src)
	nw, err := buzz.NewNetwork(bc, coeffs, src.Split("buzz"))
	if err != nil {
		return 0, err
	}
	messages := make([][]byte, n)
	for j := range messages {
		messages[j] = src.Bits(bc.MessageBits)
	}
	res, err := nw.Epoch(messages)
	if err != nil {
		return 0, err
	}
	return res.AggregateBps, nil
}

// randomCoeffs draws plausible tag channel coefficients (the same
// magnitude range the radar-equation placement produces at ~2 m).
func randomCoeffs(n int, src *rng.Source) []complex128 {
	coeffs := make([]complex128, n)
	for i := range coeffs {
		amp := 8e-4 * src.Tolerance(0.4)
		coeffs[i] = complex(amp, 0) * src.UnitPhasor()
	}
	return coeffs
}

// Fig8 reproduces the aggregate-throughput comparison: TDMA, Buzz and
// LF-Backscatter as the number of 100 kbps nodes grows from 4 to 16.
func Fig8(cfg Config) (*Result, error) {
	ns := []int{4, 8, 12, 16}
	if cfg.Quick {
		ns = []int{4, 8}
	}
	table := &stats.Table{
		Title:  "Fig. 8 — aggregate throughput (kbps) vs number of devices",
		Header: []string{"nodes", "TDMA", "Buzz", "LF-Backscatter", "max possible", "LF/TDMA", "LF/Buzz"},
	}
	series := []stats.Series{{Label: "TDMA"}, {Label: "Buzz"}, {Label: "LF-Backscatter"}, {Label: "max"}}
	for _, n := range ns {
		t := tdma.DefaultConfig().Transfer(n).AggregateBps
		b, err := buzzThroughput(cfg, n, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		l, offered, err := lfThroughput(cfg, n, 100e3, lf.AllStages(), cfg.Seed+int64(n)*31)
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprint(n), kbps(t), kbps(b), kbps(l), kbps(offered), ratio(l, t), ratio(l, b))
		series[0].Add(float64(n), t)
		series[1].Add(float64(n), b)
		series[2].Add(float64(n), l)
		series[3].Add(float64(n), offered)
	}
	return &Result{Table: table, Series: series}, nil
}

// Fig9 reproduces the decoding-stage breakdown: edge-based concurrency
// alone, plus IQ collision separation, plus Viterbi error correction.
func Fig9(cfg Config) (*Result, error) {
	ns := []int{4, 8, 12, 16}
	if cfg.Quick {
		ns = []int{4, 8}
	}
	stageSets := []struct {
		label  string
		stages lf.Stages
	}{
		{"Edge", lf.Stages{}},
		{"Edge+IQ", lf.Stages{IQSeparation: true}},
		{"Edge+IQ+Error", lf.Stages{IQSeparation: true, ErrorCorrection: true}},
	}
	table := &stats.Table{
		Title:  "Fig. 9 — decoding module contribution to throughput (kbps)",
		Header: []string{"nodes", "Edge", "Edge+IQ", "Edge+IQ+Error"},
	}
	series := make([]stats.Series, len(stageSets))
	for i, ss := range stageSets {
		series[i].Label = ss.label
	}
	for _, n := range ns {
		row := []string{fmt.Sprint(n)}
		for i, ss := range stageSets {
			l, _, err := lfThroughput(cfg, n, 100e3, ss.stages, cfg.Seed+int64(n)*31)
			if err != nil {
				return nil, err
			}
			row = append(row, kbps(l))
			series[i].Add(float64(n), l)
		}
		table.AddRow(row...)
	}
	return &Result{Table: table, Series: series}, nil
}

// Fig10 reproduces the bit-rate sweep: sixteen nodes all transmitting
// at the same rate, swept up to the point where edge interleaving
// saturates and throughput collapses. As in the paper, the sweep runs
// per decoding stage — IQ collision recovery and error correction pull
// throughput back up precisely where edges start colliding en masse.
func Fig10(cfg Config) (*Result, error) {
	rates := []float64{10e3, 50e3, 100e3, 150e3, 200e3, 250e3, 300e3}
	n := 16
	if cfg.Quick {
		rates = []float64{50e3, 150e3, 250e3}
		n = 8
	}
	stageSets := []struct {
		label  string
		stages lf.Stages
	}{
		{"Edge", lf.Stages{}},
		{"Edge+IQ", lf.Stages{IQSeparation: true}},
		{"Edge+IQ+Error", lf.Stages{IQSeparation: true, ErrorCorrection: true}},
	}
	table := &stats.Table{
		Title:  fmt.Sprintf("Fig. 10 — LF-Backscatter throughput (kbps), %d nodes, per-node bit rate sweep", n),
		Header: []string{"bitrate(kbps)", "Edge", "Edge+IQ", "Edge+IQ+Error", "offered"},
	}
	series := make([]stats.Series, len(stageSets)+1)
	for i, ss := range stageSets {
		series[i].Label = ss.label
	}
	series[len(stageSets)].Label = "offered"
	for _, r := range rates {
		row := []string{kbps(r)}
		var offered float64
		for i, ss := range stageSets {
			l, off, err := lfThroughput(cfg, n, r, ss.stages, cfg.Seed+int64(r))
			if err != nil {
				return nil, err
			}
			offered = off
			row = append(row, kbps(l))
			series[i].Add(r/1e3, l)
		}
		row = append(row, kbps(offered))
		series[len(stageSets)].Add(r/1e3, offered)
		table.AddRow(row...)
	}
	return &Result{Table: table, Series: series}, nil
}

// Fig11 reproduces the slow/fast coexistence experiment: pairs of
// nodes at rates from 0.5 kbps to 100 kbps transmitting concurrently;
// per-node goodput against its own offered rate.
func Fig11(cfg Config) (*Result, error) {
	rateSet := []float64{500, 1e3, 2e3, 5e3, 10e3, 50e3, 100e3}
	if cfg.Quick {
		rateSet = []float64{1e3, 10e3, 100e3}
	}
	var rates []float64
	for _, r := range rateSet {
		rates = append(rates, r, r)
	}
	net, err := lf.NewNetwork(lf.NetworkConfig{
		BitRates:       rates,
		PayloadSeconds: 40e-3,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	ep, err := net.RunEpoch()
	if err != nil {
		return nil, err
	}
	dec, err := lf.NewDecoder(net.DecoderConfig())
	if err != nil {
		return nil, err
	}
	res, err := dec.Decode(ep)
	if err != nil {
		return nil, err
	}
	score := lf.ScoreEpoch(ep, res)
	table := &stats.Table{
		Title:  "Fig. 11 — per-node throughput with mixed bit rates (kbps)",
		Header: []string{"node", "bitrate", "achieved", "upper bound"},
	}
	series := []stats.Series{{Label: "achieved"}, {Label: "upper bound"}}
	dur := ep.Capture.Duration()
	for i, ts := range score.PerTag {
		achieved := float64(ts.CorrectBits) / dur
		bound := float64(ts.PayloadBits) / dur
		table.AddRow(fmt.Sprint(i), kbps(rates[i]), kbps(achieved), kbps(bound))
		series[0].Add(float64(i), achieved)
		series[1].Add(float64(i), bound)
	}
	return &Result{Table: table, Series: series}, nil
}

// AblationSeparation compares the collision-separation strategies —
// the paper's blind parallelogram against the preamble-anchored
// classifier and the hybrid default.
func AblationSeparation(cfg Config) (*Result, error) {
	modes := []struct {
		label string
		mode  decoder.SeparationMode
	}{
		{"hybrid", decoder.SeparationHybrid},
		{"anchored", decoder.SeparationAnchored},
		{"blind", decoder.SeparationBlind},
	}
	n := 8
	table := &stats.Table{
		Title:  "Ablation — collision separation strategy (8 nodes @100 kbps)",
		Header: []string{"mode", "throughput(kbps)"},
	}
	workers := cfg.workers()
	for _, m := range modes {
		aggs := make([]float64, cfg.Epochs)
		errs := make([]error, cfg.Epochs)
		work.Do(workers, cfg.Epochs, func(e int) {
			net, err := lf.NewNetwork(lf.NetworkConfig{
				NumTags:        n,
				PayloadSeconds: 2e-3,
				Seed:           cfg.Seed + int64(e)*13,
			})
			if err != nil {
				errs[e] = err
				return
			}
			ep, err := net.RunEpoch()
			if err != nil {
				errs[e] = err
				return
			}
			dcfg := net.DecoderConfig()
			dcfg.Separation = m.mode
			if workers > 1 {
				dcfg.Parallelism = 1
			}
			dec, err := lf.NewDecoder(dcfg)
			if err != nil {
				errs[e] = err
				return
			}
			res, err := dec.Decode(ep)
			if err != nil {
				errs[e] = err
				return
			}
			aggs[e] = lf.ScoreEpoch(ep, res).AggregateBps
		})
		if err := firstErr(errs); err != nil {
			return nil, err
		}
		var agg float64
		for _, a := range aggs {
			agg += a
		}
		table.AddRow(m.label, kbps(agg/float64(cfg.Epochs)))
	}
	return &Result{Table: table}, nil
}

// AblationRegistration compares stream registration strategies: the
// paper's eye-pattern folding against naive preamble matching.
func AblationRegistration(cfg Config) (*Result, error) {
	modes := []struct {
		label string
		mode  lf.RegistrationMode
	}{
		{"eye", lf.RegisterEyeOnly},
		{"preamble", lf.RegisterPreambleOnly},
		{"both", lf.RegisterBoth},
	}
	n := 12
	table := &stats.Table{
		Title:  "Ablation — stream registration strategy (12 nodes @100 kbps)",
		Header: []string{"mode", "registered", "throughput(kbps)"},
	}
	workers := cfg.workers()
	for _, m := range modes {
		type epochOut struct {
			agg float64
			reg int
		}
		outs := make([]epochOut, cfg.Epochs)
		errs := make([]error, cfg.Epochs)
		work.Do(workers, cfg.Epochs, func(e int) {
			net, err := lf.NewNetwork(lf.NetworkConfig{
				NumTags:        n,
				PayloadSeconds: 2e-3,
				Seed:           cfg.Seed + int64(e)*13,
			})
			if err != nil {
				errs[e] = err
				return
			}
			ep, err := net.RunEpoch()
			if err != nil {
				errs[e] = err
				return
			}
			dcfg := net.DecoderConfig()
			dcfg.Registration = m.mode
			if workers > 1 {
				dcfg.Parallelism = 1
			}
			dec, err := lf.NewDecoder(dcfg)
			if err != nil {
				errs[e] = err
				return
			}
			res, err := dec.Decode(ep)
			if err != nil {
				errs[e] = err
				return
			}
			score := lf.ScoreEpoch(ep, res)
			outs[e] = epochOut{agg: score.AggregateBps, reg: score.Registered}
		})
		if err := firstErr(errs); err != nil {
			return nil, err
		}
		var agg float64
		reg, total := 0, 0
		for _, out := range outs {
			agg += out.agg
			reg += out.reg
			total += n
		}
		table.AddRow(m.label, fmt.Sprintf("%d/%d", reg, total), kbps(agg/float64(cfg.Epochs)))
	}
	return &Result{Table: table}, nil
}
