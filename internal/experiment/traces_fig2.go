package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"lf/internal/collide"
	"lf/internal/rng"
)

// WriteFig2CSV writes the Fig. 2 constellations as CSV: series, i, q.
// Series: qam16 (the structured reference), tags2 (4 unstructured
// clusters) and tags6 (64 clusters too dense to classify).
func WriteFig2CSV(w io.Writer, cfg Config) error {
	src := rng.New(cfg.Seed)
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"series", "i", "q"}); err != nil {
		return err
	}
	emit := func(series string, v complex128) error {
		return cw.Write([]string{
			series,
			strconv.FormatFloat(real(v), 'g', 6, 64),
			strconv.FormatFloat(imag(v), 'g', 6, 64),
		})
	}
	// QAM-16 reference: a 4×4 grid with modest noise.
	qsrc := src.Split("qam")
	for n := 0; n < 640; n++ {
		i := float64(qsrc.Intn(4))*2 - 3
		q := float64(qsrc.Intn(4))*2 - 3
		v := complex(i, q) + qsrc.ComplexNorm(0.01)
		if err := emit("qam16", v); err != nil {
			return err
		}
	}
	// Backscatter joint-state clouds for 2 and 6 tags.
	for _, n := range []int{2, 6} {
		coeffs := randomCoeffs(n, src.Split(fmt.Sprint("coef", n)))
		csrc := src.Split(fmt.Sprint("pts", n))
		env := complex(0.35, -0.18)
		for p := 0; p < 1200; p++ {
			state := csrc.Intn(1 << uint(n))
			v := env
			for j := 0; j < n; j++ {
				if state>>uint(j)&1 == 1 {
					v += coeffs[j]
				}
			}
			v += csrc.ComplexNorm((6e-5) * (6e-5))
			if err := emit(fmt.Sprintf("tags%d", n), v); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFig5CSV writes the Fig. 5 collision lattice as CSV: the nine
// ideal cluster centres and a cloud of noisy collision differentials.
func WriteFig5CSV(w io.Writer, cfg Config) error {
	src := rng.New(cfg.Seed)
	e1 := complex(4.1e-4, 5.3e-4)
	e2 := complex(-5.6e-4, 2.2e-4)
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"series", "i", "q"}); err != nil {
		return err
	}
	for _, c := range collide.Lattice(e1, e2) {
		if err := cw.Write([]string{"centre",
			strconv.FormatFloat(real(c), 'g', 6, 64),
			strconv.FormatFloat(imag(c), 'g', 6, 64)}); err != nil {
			return err
		}
	}
	for p := 0; p < 720; p++ {
		a := float64(src.Intn(3) - 1)
		b := float64(src.Intn(3) - 1)
		v := complex(a, 0)*e1 + complex(b, 0)*e2 + src.ComplexNorm((4e-5)*(4e-5))
		if err := cw.Write([]string{"observation",
			strconv.FormatFloat(real(v), 'g', 6, 64),
			strconv.FormatFloat(imag(v), 'g', 6, 64)}); err != nil {
			return err
		}
	}
	return nil
}
