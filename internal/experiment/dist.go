package experiment

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"time"

	"lf"
	"lf/internal/dist"
	"lf/internal/fault"
	"lf/internal/stats"
)

// distShards is the in-process shard parallelism for the distributed
// sweep — the number of stripes concurrently offered to the fleet.
const distShards = 4

// Dist sweeps the distributed shard decode across worker counts and
// transport-fault severities over loopback TCP: every cell decodes one
// impaired-transport epoch through a coordinator + worker fleet and
// requires the Result to be byte-identical to the single-machine
// sharded decode. The recovery counters (retries, hedges, local
// fallbacks) show what the fault cost; the identity column shows what
// it did not cost — bytes. This is the wire-level analogue of the
// Robustness sweep: there the capture is impaired, here the transport.
func Dist(cfg Config) (*Result, error) {
	workerCounts := []int{1, 2, 4}
	kinds := fault.TransportKinds()
	severities := []float64{0.25, 0.5, 1}
	if cfg.Quick {
		workerCounts = []int{2}
		kinds = []fault.Kind{fault.ConnDrop, fault.CorruptFrame}
		severities = []float64{0.5}
	}

	table := &stats.Table{
		Title: fmt.Sprintf("Distributed decode — transport-fault sweep over loopback (%d tags, %d shard stripes)",
			robustTags, distShards),
		Header: []string{"workers", "fault", "severity", "shards", "retries", "hedges", "local", "wire KiB", "dist==local"},
	}
	var series []stats.Series

	// One epoch and one local-sharded baseline serve every cell: the
	// transport faults perturb the wire, not the capture, so the
	// expected bytes never change.
	net, err := lf.NewNetwork(lf.NetworkConfig{
		NumTags:        robustTags,
		PayloadSeconds: 2e-3,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	ep, err := net.RunEpoch()
	if err != nil {
		return nil, err
	}
	dcfg := net.DecoderConfig()
	dcfg.Parallelism = cfg.Workers
	dcfg.CalibSamples = streamCalibSamples
	dcfg.ShardParallelism = distShards
	want, err := streamDecode(ep.Capture.Samples, dcfg)
	if err != nil {
		return nil, err
	}

	for _, workers := range workerCounts {
		retries := stats.Series{Label: fmt.Sprintf("retries w=%d", workers)}
		cells := []struct {
			kind fault.Kind
			sev  float64
		}{{kind: "clean"}}
		for _, k := range kinds {
			for _, sev := range severities {
				cells = append(cells, struct {
					kind fault.Kind
					sev  float64
				}{k, sev})
			}
		}
		for _, cell := range cells {
			pt, err := distPoint(cfg, ep, dcfg, workers, cell.kind, cell.sev)
			if err != nil {
				return nil, fmt.Errorf("experiment: dist %s at severity %.2f with %d workers: %w", cell.kind, cell.sev, workers, err)
			}
			identical := reflect.DeepEqual(want, pt.res)
			table.AddRow(fmt.Sprint(workers), string(cell.kind), fmt.Sprintf("%.2f", cell.sev),
				fmt.Sprint(pt.shards), fmt.Sprint(pt.retries), fmt.Sprint(pt.hedges),
				fmt.Sprint(pt.local), fmt.Sprintf("%d", pt.bytes/1024), fmt.Sprint(identical))
			if !identical {
				return nil, fmt.Errorf("experiment: distributed decode diverged from local under %s at severity %.2f with %d workers",
					cell.kind, cell.sev, workers)
			}
			if cell.sev > 0 {
				retries.Add(cell.sev, float64(pt.retries))
			}
		}
		series = append(series, retries)
	}
	return &Result{Table: table, Series: series}, nil
}

// distPoint runs one cell: a coordinator with the cell's transport
// impairment on every accepted connection, a fleet of workers over
// loopback TCP, and one streaming decode served through them.
type distCell struct {
	res                            *lf.Result
	shards, retries, hedges, local int64
	bytes                          int64
}

func distPoint(cfg Config, ep *lf.Epoch, dcfg lf.DecoderConfig, workers int, kind fault.Kind, sev float64) (distCell, error) {
	var pt distCell
	var transport fault.TransportConfig
	if sev > 0 {
		transport = fault.TransportConfig{
			Seed:      cfg.Seed ^ 0xD157,
			Injectors: []fault.Injector{{Kind: kind, Severity: sev}},
		}
	}
	c, err := dist.NewCoordinator(dist.CoordinatorConfig{
		LeaseTimeout: 500 * time.Millisecond,
		Transport:    transport,
	})
	if err != nil {
		return pt, err
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		name := fmt.Sprintf("bench-w%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			dist.RunWorker(ctx, dist.WorkerConfig{Addr: c.Addr(), Name: name})
		}()
	}
	defer wg.Wait()
	defer cancel()
	if !c.WaitWorkers(workers, 5*time.Second) {
		return pt, fmt.Errorf("fleet of %d never connected", workers)
	}

	scfg := dcfg
	scfg.StripeRunner = c.RunStripe
	res, err := streamDecode(ep.Capture.Samples, scfg)
	if err != nil {
		return pt, err
	}
	snap := c.Stats()
	pt.res = res
	pt.shards = snap.Counter("dist.shards")
	pt.retries = snap.Counter("dist.retries")
	pt.hedges = snap.Counter("dist.hedges")
	pt.local = snap.Counter("dist.local")
	pt.bytes = snap.Counter("dist.bytes")
	return pt, nil
}

// streamDecode pushes samples through a fresh streaming decoder in
// streamBlock-sized blocks and returns the flushed Result.
func streamDecode(samples []complex128, dcfg lf.DecoderConfig) (*lf.Result, error) {
	dec, err := lf.NewDecoder(dcfg)
	if err != nil {
		return nil, err
	}
	sd, err := dec.NewStream()
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(samples); i += streamBlock {
		end := i + streamBlock
		if end > len(samples) {
			end = len(samples)
		}
		if err := sd.Push(samples[i:end]); err != nil {
			return nil, err
		}
	}
	return sd.Flush()
}
