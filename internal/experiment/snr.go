package experiment

import (
	"fmt"

	"lf/internal/channel"
	"lf/internal/dsp"
	"lf/internal/iq"
	"lf/internal/reader"
	"lf/internal/rng"
	"lf/internal/stats"
	"lf/internal/tag"
	"lf/internal/viterbi"
)

// Fig. 14 compares the raw modulation robustness of LF-Backscatter's
// edge decoding against classical coherent ASK as SNR drops. Both
// decoders get genie timing (the true slot grid) and the true channel
// coefficient, isolating the demodulation difference: the edge
// differential subtracts two noisy windows (3 dB) and rides only on
// transitions, so it needs a few dB more SNR for the same BER — the
// price LF-Backscatter pays for concurrency, quantified in §5.4.

// genieLFDecode decodes a single-tag capture from edge differentials
// measured at the true slot boundaries, followed by the standard
// Viterbi stage.
func genieLFDecode(cap *iq.Capture, em *tag.Emission, h complex128, sigma2 float64) []byte {
	prefix := dsp.NewPrefix(cap.Samples)
	fs := cap.SampleRate
	n := len(em.Bits)
	emissions := make([]viterbi.Emission, n)
	for k := 0; k < n; k++ {
		pos := int64((em.Start + float64(k)*em.BitPeriod) * fs)
		obs := prefix.Differential(pos, 2, 4)
		emissions[k] = viterbi.Emission{Obs: obs, E: h, Sigma2: sigma2}
	}
	states := viterbi.NewDecoder(0.5, viterbi.Down).Decode(emissions)
	return viterbi.Bits(states)
}

// genieASKDecode decodes the same capture by coherent per-slot level
// detection: the mean received vector over a bandwidth-limited window
// at the middle of each bit period is nearer either the environment
// level or environment+h; a level change between consecutive slots is
// a 1 bit. The window is 2× the LF differential's (an envelope
// detector filtered to the edge bandwidth); single-ended detection
// against a mid-level threshold is what gives ASK its few-dB advantage
// over the edge differential (§5.4).
func genieASKDecode(cap *iq.Capture, em *tag.Emission, h, env complex128) []byte {
	prefix := dsp.NewPrefix(cap.Samples)
	fs := cap.SampleRate
	n := len(em.Bits)
	period := em.BitPeriod * fs
	bits := make([]byte, n)
	prev := byte(0) // antenna detuned before the frame
	const askWin = 8
	for k := 0; k < n; k++ {
		start := em.Start*fs + float64(k)*period
		mid := int64(start + period*0.5)
		lo := mid - askWin/2
		hi := mid + askWin/2
		mean := prefix.Mean(lo, hi)
		level := byte(0)
		if dsp.Dist(mean, env+h) < dsp.Dist(mean, env) {
			level = 1
		}
		if level != prev {
			bits[k] = 1
		}
		prev = level
	}
	return bits
}

// Fig14 sweeps SNR and reports BER for both decoders.
func Fig14(cfg Config) (*Result, error) {
	snrs := []float64{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	payload := 2000
	epochs := cfg.Epochs
	if cfg.Quick {
		snrs = []float64{6, 10, 14}
		payload = 400
		epochs = 1
	}
	table := &stats.Table{
		Title:  "Fig. 14 — BER vs SNR: LF edge decoding vs coherent ASK",
		Header: []string{"SNR(dB)", "LF-Backscatter", "ASK"},
	}
	series := []stats.Series{{Label: "LF-Backscatter"}, {Label: "ASK"}}
	src := rng.New(cfg.Seed)
	params := channel.DefaultParams()
	geom := channel.DefaultGeometry(2)
	h := params.Coefficient(geom)
	for _, snr := range snrs {
		params.NoiseSigma2 = iq.NoiseSigma2ForSNR(dsp.Abs(h), snr)
		var lfBER, askBER stats.BER
		for e := 0; e < epochs; e++ {
			noise := src.Split(fmt.Sprint("noise", snr, e))
			ch := channel.NewModelFromCoeffs(params, []complex128{h}, noise)
			tc := tag.Config{
				ID:         0,
				BitRate:    100e3,
				ClockPPM:   150,
				Comparator: tag.DefaultComparator(),
				Payload:    src.Bits(payload),
			}
			em := tag.Emit(tc, src)
			epochCfg := reader.EpochConfig{
				SampleRate:  25e6,
				EdgeSamples: 3,
				Duration:    em.End() + 50e-6,
			}
			ep, err := reader.Synthesize(ch, []*tag.Emission{em}, epochCfg)
			if err != nil {
				return nil, err
			}
			// Observation noise variance for the LF genie emissions:
			// two averaged windows of 4 samples each.
			sigma2 := params.NoiseSigma2 / 2
			lfBits := genieLFDecode(ep.Capture, em, h, sigma2)
			askBits := genieASKDecode(ep.Capture, em, h, params.EnvReflection)
			for k := range em.Bits {
				if lfBits[k] != em.Bits[k] {
					lfBER.Add(1, 1)
				} else {
					lfBER.Add(0, 1)
				}
				if askBits[k] != em.Bits[k] {
					askBER.Add(1, 1)
				} else {
					askBER.Add(0, 1)
				}
			}
		}
		table.AddRow(fmt.Sprintf("%.0f", snr), fmt.Sprintf("%.2e", lfBER.Rate()), fmt.Sprintf("%.2e", askBER.Rate()))
		series[0].Add(snr, lfBER.Rate())
		series[1].Add(snr, askBER.Rate())
	}
	return &Result{Table: table, Series: series}, nil
}
