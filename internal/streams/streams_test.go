package streams

import (
	"math"
	"testing"

	"lf/internal/channel"
	"lf/internal/edgedetect"
	"lf/internal/reader"
	"lf/internal/rng"
	"lf/internal/tag"
)

// scenario builds a capture+detector from tag configs with fixed
// comparator randomness for reproducibility.
func scenario(t *testing.T, seed int64, payload int, cfgs ...tag.Config) (*edgedetect.Detector, []*tag.Emission) {
	t.Helper()
	src := rng.New(seed)
	p := channel.DefaultParams()
	geoms := channel.PlaceRing(len(cfgs), 2, src.Split("place"))
	ch := channel.NewModel(p, geoms, src.Split("noise"))
	var emissions []*tag.Emission
	longest := 0.0
	for i := range cfgs {
		cfgs[i].ID = i
		if cfgs[i].Payload == nil {
			cfgs[i].Payload = src.Bits(payload)
		}
		em := tag.Emit(cfgs[i], src)
		emissions = append(emissions, em)
		if em.End() > longest {
			longest = em.End()
		}
	}
	epCfg := reader.EpochConfig{SampleRate: 25e6, EdgeSamples: 3, Duration: longest + 100e-6}
	ep, err := reader.Synthesize(ch, emissions, epCfg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := edgedetect.New(ep.Capture, edgedetect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return det, emissions
}

func defaultTag(rate float64) tag.Config {
	return tag.Config{BitRate: rate, ClockPPM: 150, Comparator: tag.DefaultComparator()}
}

func TestRegisterSingleStream(t *testing.T) {
	det, emissions := scenario(t, 1, 120, defaultTag(100e3))
	cfg := DefaultConfig(25e6, []float64{100e3})
	sts, err := Register(det.Edges(), cfg, func(float64) int { return 120 })
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 {
		t.Fatalf("registered %d streams", len(sts))
	}
	st := sts[0]
	anchor := emissions[0].Start * 25e6
	if math.Abs(st.Offset-anchor) > 6 {
		t.Fatalf("offset %v, true anchor %v", st.Offset, anchor)
	}
	truePeriod := emissions[0].BitPeriod * 25e6
	if math.Abs(st.Period-truePeriod) > 0.5 {
		t.Fatalf("period %v, want %v", st.Period, truePeriod)
	}
	if st.Rate != 100e3 {
		t.Fatalf("rate %v", st.Rate)
	}
}

func TestRegisterFourStreams(t *testing.T) {
	det, emissions := scenario(t, 3, 150,
		defaultTag(100e3), defaultTag(100e3), defaultTag(100e3), defaultTag(100e3))
	cfg := DefaultConfig(25e6, []float64{100e3})
	sts, err := Register(det.Edges(), cfg, func(float64) int { return 150 })
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) < 3 {
		t.Fatalf("registered %d of 4 streams", len(sts))
	}
	// Each registered stream's grid phase matches some true tag's
	// phase (anchors can land a few slots late when early preamble
	// edges collided; the decoder's alignment absorbs that).
	for _, st := range sts {
		ok := false
		for _, em := range emissions {
			period := em.BitPeriod * 25e6
			dph := math.Mod(math.Abs(st.Offset-em.Start*25e6), period)
			if dph > period/2 {
				dph = period - dph
			}
			if dph < 14 {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("stream at %v matches no tag grid", st.Offset)
		}
	}
	if len(sts) > 4 {
		t.Fatalf("%d streams for 4 tags", len(sts))
	}
}

func TestRegisterMultiRate(t *testing.T) {
	det, _ := scenario(t, 5, 200, defaultTag(100e3), defaultTag(10e3))
	cfg := DefaultConfig(25e6, []float64{100e3, 10e3})
	sts, err := Register(det.Edges(), cfg, func(rate float64) int {
		return int(200 * rate / 100e3)
	})
	if err != nil {
		t.Fatal(err)
	}
	rates := map[float64]int{}
	for _, st := range sts {
		rates[st.Rate]++
	}
	if rates[100e3] != 1 || rates[10e3] != 1 {
		t.Fatalf("rates registered: %v", rates)
	}
}

func TestRegisterValidation(t *testing.T) {
	cfg := DefaultConfig(25e6, nil)
	if _, err := Register(nil, cfg, func(float64) int { return 1 }); err == nil {
		t.Fatal("no rates accepted")
	}
	cfg = DefaultConfig(25e6, []float64{100e3})
	cfg.MinPreambleEdges = 99
	if _, err := Register(nil, cfg, func(float64) int { return 1 }); err == nil {
		t.Fatal("bad MinPreambleEdges accepted")
	}
}

func TestFrameSlots(t *testing.T) {
	cfg := DefaultConfig(25e6, []float64{100e3})
	if got := FrameSlots(cfg, 100); got != cfg.PreambleLen+DelimiterSlots+100 {
		t.Fatalf("FrameSlots = %d", got)
	}
}

func TestWalkTracksDrift(t *testing.T) {
	// A long frame with a drifting clock: the walker must stay locked
	// to the end.
	det, emissions := scenario(t, 7, 1500, defaultTag(100e3))
	cfg := DefaultConfig(25e6, []float64{100e3})
	sts, err := Register(det.Edges(), cfg, func(float64) int { return 1500 })
	if err != nil || len(sts) != 1 {
		t.Fatalf("registration failed: %v, %d streams", err, len(sts))
	}
	n := FrameSlots(cfg, 1500)
	slots := Walk(sts[0], det, cfg, n)
	if len(slots) != n {
		t.Fatalf("walked %d slots", len(slots))
	}
	em := emissions[0]
	// Check tail slots stay on the true grid.
	for _, k := range []int{n - 10, n - 5, n - 3} {
		truth := em.Start*25e6 + float64(k)*em.BitPeriod*25e6
		if d := math.Abs(float64(slots[k].Pos) - truth); d > 12 {
			t.Fatalf("slot %d drifted %v samples off the true grid", k, d)
		}
	}
	// Roughly half the slots carry clean edges (random payload).
	clean := 0
	for _, s := range slots {
		if s.Kind == MatchClean {
			clean++
		}
	}
	if clean < n/3 {
		t.Fatalf("only %d/%d clean locks", clean, n)
	}
}

func TestDedupeDropsDuplicates(t *testing.T) {
	cfg := DefaultConfig(25e6, []float64{100e3})
	e := complex(5e-4, 2e-4)
	a := &Stream{Rate: 100e3, Offset: 1000, Period: 250, E: e}
	b := &Stream{Rate: 100e3, Offset: 1002, Period: 250, E: e * complex(1.05, 0)}
	out := dedupe([]*Stream{a, b}, cfg)
	if len(out) != 1 {
		t.Fatalf("dedupe kept %d", len(out))
	}
	// Distinct vectors at the same phase survive (merged constituents).
	c := &Stream{Rate: 100e3, Offset: 1001, Period: 250, E: complex(-3e-4, 6e-4)}
	out = dedupe([]*Stream{a, c}, cfg)
	if len(out) != 2 {
		t.Fatalf("dedupe dropped a distinct constituent")
	}
}

func TestDedupeRetiresCombo(t *testing.T) {
	cfg := DefaultConfig(25e6, []float64{100e3})
	e1 := complex(5e-4, 2e-4)
	e2 := complex(-3e-4, 6e-4)
	a := &Stream{Rate: 100e3, Offset: 1000, Period: 250, E: e1}
	b := &Stream{Rate: 100e3, Offset: 1001, Period: 250, E: e2}
	combo := &Stream{Rate: 100e3, Offset: 1002, Period: 250, E: e1 + e2}
	out := dedupe([]*Stream{a, b, combo}, cfg)
	if len(out) != 2 {
		t.Fatalf("combo not retired: %d streams", len(out))
	}
}

func TestPeelGeneratorsTwoTags(t *testing.T) {
	src := rng.New(5)
	e1 := complex(-1.7e-4, -1.18e-3)
	e2 := complex(6.7e-4, -1.4e-4)
	var diffs []complex128
	for i := 0; i < 90; i++ {
		a := float64(src.Intn(3) - 1)
		b := float64(src.Intn(3) - 1)
		if a == 0 && b == 0 {
			continue
		}
		diffs = append(diffs, complex(a, 0)*e1+complex(b, 0)*e2+src.ComplexNorm(2*(6e-5)*(6e-5)))
	}
	gens, _ := peelGenerators(diffs, src)
	if len(gens) != 2 {
		t.Fatalf("peeled %d generators, want 2", len(gens))
	}
	for _, g := range gens {
		d1 := math.Min(cAbs(g-e1), cAbs(g+e1))
		d2 := math.Min(cAbs(g-e2), cAbs(g+e2))
		if math.Min(d1, d2) > 1.5e-4 {
			t.Fatalf("generator %v matches neither truth vector", g)
		}
	}
}

func cAbs(x complex128) float64 { return math.Hypot(real(x), imag(x)) }

func TestPeelGeneratorsSingleTag(t *testing.T) {
	src := rng.New(6)
	e := complex(7e-4, -2e-4)
	var diffs []complex128
	for i := 0; i < 60; i++ {
		s := complex(float64(1-2*(i%2)), 0)
		diffs = append(diffs, s*e+src.ComplexNorm(2*(4e-5)*(4e-5)))
	}
	gens, _ := peelGenerators(diffs, src)
	if len(gens) != 1 {
		t.Fatalf("peeled %d generators from a single tag", len(gens))
	}
	if math.Min(cAbs(gens[0]-e), cAbs(gens[0]+e)) > 1e-4 {
		t.Fatalf("generator %v, want ±%v", gens[0], e)
	}
}

func TestNoiseScale(t *testing.T) {
	src := rng.New(7)
	var diffs []complex128
	for i := 0; i < 40; i++ {
		diffs = append(diffs, complex(1e-3, 0)+src.ComplexNorm(1e-9))
	}
	got := noiseScale(diffs)
	// Median nearest-neighbour distance ~ noise σ (≈3e-5).
	if got < 5e-6 || got > 2e-4 {
		t.Fatalf("noise scale %v", got)
	}
	if noiseScale(nil) != 0 || noiseScale(diffs[:1]) != 0 {
		t.Fatal("degenerate noise scale should be 0")
	}
}
