// Package streams groups detected edges into per-tag streams (§3.2).
// Tags transmit periodically at a multiple of the network base rate,
// starting at a comparator-jittered offset after carrier-on, and open
// each frame with an all-ones preamble. Under toggle-on-1 modulation
// the preamble appears at the reader as PreambleLen edges of
// alternating polarity spaced exactly one bit period apart — a
// signature this package searches for at every candidate rate. Once a
// stream is registered, a drift-tracking walker visits its bit slots
// and associates (or fails to find) an edge at each.
package streams

import (
	"fmt"
	"math"
	"sort"

	"lf/internal/dsp"
	"lf/internal/edgedetect"
	"lf/internal/rng"
)

// Config tunes stream registration and slot walking.
type Config struct {
	// SampleRate of the capture, samples/s.
	SampleRate float64
	// Rates are the valid tag bit rates in bits/s (multiples of the
	// base rate). Registration searches them in descending order.
	Rates []float64
	// PreambleLen is the number of leading 1-bits per frame.
	PreambleLen int
	// MinPreambleEdges is the minimum number of preamble edges that
	// must match for registration (tolerates collided/missed preamble
	// edges). Must be ≥ 3 and ≤ PreambleLen.
	MinPreambleEdges int
	// PosTol is the base position tolerance in samples when matching
	// an edge to an expected slot.
	PosTol int64
	// VecTol is the relative tolerance when matching edge differential
	// vectors during preamble registration (fraction of |e|).
	VecTol float64
	// DriftPPM is the worst-case tag clock drift the walker budgets
	// for when widening its search window between locks.
	DriftPPM float64
	// MaxStart is the latest sample index at which a frame may begin
	// (the comparator jitter window). Candidate preamble starts beyond
	// it are ignored, which prevents runs of payload 1-bits from
	// masquerading as preambles.
	MaxStart int64
	// DriftGain is the EWMA gain for the walker's period tracking.
	DriftGain float64
	// Registration selects which registration passes run.
	Registration RegistrationMode
	// Seed drives registration-internal randomness (k-means restarts
	// in the eye pass's merged-peak analysis).
	Seed int64
}

// RegistrationMode selects the stream registration strategy.
type RegistrationMode int

const (
	// RegisterEyeOnly (default) uses eye-pattern folding (the paper's
	// detector): robust in dense deployments where preambles collide.
	RegisterEyeOnly RegistrationMode = iota
	// RegisterBoth runs the preamble matcher first, then the
	// eye-pattern pass over leftovers.
	RegisterBoth
	// RegisterPreambleOnly uses only the preamble matcher (the naive
	// baseline of the ablation study).
	RegisterPreambleOnly
)

// DefaultConfig returns settings matched to the default reader and tag
// models (25 Msps, 150 ppm crystals, ≤ ~0.5 ms comparator jitter).
func DefaultConfig(sampleRate float64, rates []float64) Config {
	return Config{
		SampleRate:       sampleRate,
		Rates:            rates,
		PreambleLen:      6,
		MinPreambleEdges: 5,
		PosTol:           9,
		VecTol:           0.5,
		DriftPPM:         300,
		MaxStart:         int64(0.25e-3 * sampleRate),
		DriftGain:        0.25,
		Seed:             1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("streams: non-positive sample rate %v", c.SampleRate)
	}
	if len(c.Rates) == 0 {
		return fmt.Errorf("streams: no candidate rates")
	}
	for _, r := range c.Rates {
		if r <= 0 {
			return fmt.Errorf("streams: non-positive rate %v", r)
		}
	}
	if c.PreambleLen < 3 {
		return fmt.Errorf("streams: preamble length %d too short", c.PreambleLen)
	}
	if c.MinPreambleEdges < 3 || c.MinPreambleEdges > c.PreambleLen {
		return fmt.Errorf("streams: MinPreambleEdges %d out of range", c.MinPreambleEdges)
	}
	return nil
}

// DelimiterSlots is the single 0-bit between preamble and payload (see
// the tag package's frame layout).
const DelimiterSlots = 1

// FrameSlots returns the total slot count of a frame with the given
// payload size.
func FrameSlots(cfg Config, payloadBits int) int {
	return cfg.PreambleLen + DelimiterSlots + payloadBits
}

// Stream is a registered per-tag transmission.
type Stream struct {
	// ID is the registration index (not the tag ID; the harness maps
	// decoded streams back to tags by offset/rate when scoring).
	ID int
	// Rate is the nominal bit rate matched, bits/s.
	Rate float64
	// Period is the refined bit period in samples (fractional).
	Period float64
	// Offset is the refined sample position of the first preamble
	// edge (the anchor; rising by construction).
	Offset float64
	// E is the rising-edge IQ vector estimated from the preamble.
	E complex128
	// PreambleEdges are indices (into the detector's edge slice) of
	// the preamble edges consumed at registration.
	PreambleEdges []int
	// Source records which registration path produced the stream.
	Source Source
}

// Source identifies a stream's registration path.
type Source int

// Registration sources.
const (
	SourcePreamble Source = iota
	SourceEye
	SourceSplit
)

func (s Source) String() string {
	switch s {
	case SourcePreamble:
		return "preamble"
	case SourceEye:
		return "eye"
	case SourceSplit:
		return "split"
	}
	return "?"
}

// Register finds streams among the detected edges. payloadBits maps a
// rate to the frame payload size so each accepted stream's own payload
// edges can be consumed (otherwise a run of payload 1-bits looks
// exactly like another preamble). Candidates are gathered across all
// rates, then accepted greedily in start-time order; acceptance
// consumes the preamble edges and every payload-grid edge matching the
// stream's ±e vector. Streams are returned ordered by offset.
func Register(edges []edgedetect.Edge, cfg Config, payloadBits func(rate float64) int) ([]*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rates := append([]float64(nil), cfg.Rates...)
	sort.Sort(sort.Reverse(sort.Float64Slice(rates)))
	used := make([]bool, len(edges))
	var streams []*Stream
	// Greedy time-ordered acceptance: earlier frames claim their edges
	// before later (possibly spurious) candidates are considered.
	for cfg.Registration != RegisterEyeOnly {
		var best *Stream
		for _, rate := range rates {
			period := cfg.SampleRate / rate
			for i := range edges {
				if used[i] || edges[i].Pos > cfg.MaxStart {
					continue
				}
				if !silentBefore(edges, used, i, period, cfg) {
					continue
				}
				// The first preamble edge may itself have collided;
				// also try interpreting this edge as preamble index 1.
				for _, startK := range []int{0, 1} {
					st := tryPreamble(edges, used, i, startK, period, cfg)
					if st == nil {
						continue
					}
					st.Rate = rate
					if best == nil || st.Offset < best.Offset {
						best = st
					}
					break
				}
			}
		}
		if best == nil {
			break
		}
		best.ID = len(streams)
		streams = append(streams, best)
		for _, ei := range best.PreambleEdges {
			used[ei] = true
		}
		consumePayloadEdges(edges, used, best, payloadBits(best.Rate), cfg)
	}
	// Second pass: eye-pattern registration for streams whose preambles
	// were too collided for the matcher (§3.2's folding detector).
	if cfg.Registration != RegisterPreambleOnly {
		src := rng.New(cfg.Seed)
		for _, rate := range rates {
			found := eyeRegister(edges, used, rate, cfg, payloadBits(rate), src)
			streams = append(streams, found...)
		}
	}
	streams = dedupe(streams, cfg)
	sort.Slice(streams, func(a, b int) bool { return streams[a].Offset < streams[b].Offset })
	for i := range streams {
		streams[i].ID = i
	}
	return streams, nil
}

// dedupe drops duplicate registrations of the same physical stream:
// same rate, nearly the same grid phase, and a matching (±) edge
// vector — and retires combo registrations whose vector is a (±) sum
// or difference of two other same-phase streams' vectors (the
// co-toggle cluster of a merged pair occasionally survives as its own
// phantom stream). Genuine merged-pair constituents share a phase but
// have distinct vectors, so they survive. Earlier registrations win.
func dedupe(sts []*Stream, cfg Config) []*Stream {
	samePhase := func(a, b *Stream) bool {
		if a.Rate != b.Rate {
			return false
		}
		period := cfg.SampleRate / a.Rate
		dph := math.Mod(math.Abs(a.Offset-b.Offset), period)
		if dph > period/2 {
			dph = period - dph
		}
		return dph <= float64(cfg.PosTol)+2
	}
	var out []*Stream
	for _, st := range sts {
		dup := false
		for _, prev := range out {
			if !samePhase(prev, st) {
				continue
			}
			scale := math.Max(dsp.Abs(prev.E), dsp.Abs(st.E))
			if dsp.Dist(prev.E, st.E) < 0.4*scale || dsp.Dist(prev.E, -st.E) < 0.4*scale {
				dup = true
				break
			}
			// Near-parallel with comparable magnitude: one physical
			// stream measured at two window qualities (or two tags the
			// IQ plane cannot tell apart regardless).
			cross := real(prev.E)*imag(st.E) - imag(prev.E)*real(st.E)
			ratio := dsp.Abs(prev.E) / math.Max(dsp.Abs(st.E), 1e-18)
			if ratio < 1 {
				ratio = 1 / ratio
			}
			if math.Abs(cross) < 0.2*dsp.Abs(prev.E)*dsp.Abs(st.E) && ratio < 2.2 {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, st)
		}
	}
	// Combo retirement pass: a stream can only be explained away by
	// *earlier* (higher-confidence) registrations, otherwise every
	// lattice member explains every other and all of them retire.
	var pure []*Stream
	for i, st := range out {
		combo := false
		for a := 0; a < i && !combo; a++ {
			if !samePhase(out[a], st) {
				continue
			}
			for b := a + 1; b < i; b++ {
				if !samePhase(out[b], st) {
					continue
				}
				for _, sum := range []complex128{out[a].E + out[b].E, out[a].E - out[b].E} {
					if dsp.Dist(st.E, sum) < 0.3*dsp.Abs(st.E) || dsp.Dist(st.E, -sum) < 0.3*dsp.Abs(st.E) {
						combo = true
						break
					}
				}
				if combo {
					break
				}
			}
		}
		if !combo {
			pure = append(pure, st)
		}
	}
	return pure
}

// silentBefore checks that no unused edge with a compatible vector sits
// on the candidate's slot grid in the few bit periods before its start
// — a real frame is preceded by silence from its own tag (the tag only
// starts toggling at carrier-on plus its comparator delay), whereas a
// run of payload 1-bits masquerading as a preamble usually has earlier
// same-grid, same-vector edges. Only grid-aligned positions are
// examined so that unrelated tags' edges (which can match the vector by
// chance in a dense deployment) cannot veto a legitimate candidate.
func silentBefore(edges []edgedetect.Edge, used []bool, start int, period float64, cfg Config) bool {
	e := edges[start].Diff
	vecTol := cfg.VecTol * dsp.Abs(e)
	for k := 1; k <= 3; k++ {
		expect := float64(edges[start].Pos) - float64(k)*period
		if expect < 0 {
			break
		}
		tol := float64(cfg.PosTol)
		if findEdge(edges, used, expect, tol, e, vecTol) >= 0 ||
			findEdge(edges, used, expect, tol, -e, vecTol) >= 0 {
			return false
		}
	}
	return true
}

// consumePayloadEdges marks as used every remaining edge that falls on
// the stream's payload slot grid, so payload 1-runs cannot later
// register as fresh preambles. Vector-matching edges anywhere in the
// slot window are consumed; non-matching edges are consumed only when
// they sit dead-centre on the grid (they are then either this stream's
// edges collided with another tag's, or — when the registered stream
// is itself a fully-merged pair — the solo edges of its constituents).
func consumePayloadEdges(edges []edgedetect.Edge, used []bool, st *Stream, numSlots int, cfg Config) {
	vecTol := cfg.VecTol * dsp.Abs(st.E)
	pos := st.Offset
	sinceLock := 1
	for k := 0; k < numSlots; k++ {
		// Drift allowance grows only since the last resync; an
		// unbounded window would swallow unrelated tags' edges.
		tol := float64(cfg.PosTol) + st.Period*float64(sinceLock)*cfg.DriftPPM/1e6
		idx := findEdge(edges, used, pos, tol, st.E, vecTol)
		if idx < 0 {
			idx = findEdge(edges, used, pos, tol, -st.E, vecTol)
		}
		if idx < 0 {
			// Tight window only: stray edges of unrelated streams must
			// stay available for their own registration.
			idx = findAnyEdge(edges, used, pos, float64(cfg.PosTol))
		}
		if idx >= 0 {
			used[idx] = true
			// Resync the grid to the found edge to track drift.
			pos = float64(edges[idx].Pos)
			sinceLock = 1
		} else {
			sinceLock++
		}
		pos += st.Period
	}
}

// findAnyEdge returns the closest unused edge within tol of expect
// regardless of vector, or -1.
func findAnyEdge(edges []edgedetect.Edge, used []bool, expect, tol float64) int {
	lo := sort.Search(len(edges), func(i int) bool {
		return float64(edges[i].Pos) >= expect-tol
	})
	best, bestDist := -1, math.Inf(1)
	for i := lo; i < len(edges) && float64(edges[i].Pos) <= expect+tol; i++ {
		if used[i] {
			continue
		}
		d := math.Abs(float64(edges[i].Pos) - expect)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// tryPreamble tests whether a preamble at nominal period has its
// preamble edge number startK at edge index start (startK 0 is the
// anchor; startK 1 tolerates a collided first edge). On success it
// returns a refined stream; otherwise nil.
func tryPreamble(edges []edgedetect.Edge, used []bool, start, startK int, period float64, cfg Config) *Stream {
	e := edges[start].Diff
	if startK%2 == 1 {
		e = -e // odd preamble edges are falling ⇒ rising vector is the negation
	}
	scale := dsp.Abs(e)
	if scale == 0 {
		return nil
	}
	matched := []int{start}
	positions := []float64{float64(edges[start].Pos)}
	ks := []int{startK}
	missing := startK // edges before the start are unobserved
	for k := startK + 1; k < cfg.PreambleLen; k++ {
		expect := float64(edges[start].Pos) + float64(k-startK)*period
		tol := float64(cfg.PosTol) + expect*cfg.DriftPPM/1e6
		want := e
		if k%2 == 1 {
			want = -e
		}
		idx := findEdge(edges, used, expect, tol, want, cfg.VecTol*scale)
		if idx < 0 {
			missing++
			if cfg.PreambleLen-missing < cfg.MinPreambleEdges {
				return nil
			}
			continue
		}
		matched = append(matched, idx)
		positions = append(positions, float64(edges[idx].Pos))
		ks = append(ks, k)
	}
	if len(matched) < cfg.MinPreambleEdges {
		return nil
	}
	offset, refined := fitLine(ks, positions)
	// Guard against pathological fits (e.g. all matches at k=0).
	if refined <= 0 || math.Abs(refined-period) > period*0.01+float64(cfg.PosTol) {
		refined = period
	}
	// Rising-edge vector: average the matched differentials with
	// alternating sign.
	var sum complex128
	for j, idx := range matched {
		d := edges[idx].Diff
		if ks[j]%2 == 1 {
			d = -d
		}
		sum += d
	}
	eVec := sum / complex(float64(len(matched)), 0)
	return &Stream{Offset: offset, Period: refined, E: eVec, PreambleEdges: matched}
}

// findEdge returns the index of an unused edge within tol samples of
// expect whose differential is within vecTol of want, or -1. When
// multiple qualify the closest in position wins.
func findEdge(edges []edgedetect.Edge, used []bool, expect, tol float64, want complex128, vecTol float64) int {
	lo := sort.Search(len(edges), func(i int) bool {
		return float64(edges[i].Pos) >= expect-tol
	})
	best, bestDist := -1, math.Inf(1)
	for i := lo; i < len(edges) && float64(edges[i].Pos) <= expect+tol; i++ {
		if used[i] {
			continue
		}
		if dsp.Dist(edges[i].Diff, want) > vecTol {
			continue
		}
		d := math.Abs(float64(edges[i].Pos) - expect)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// fitLine least-squares fits positions ≈ offset + k·period.
func fitLine(ks []int, positions []float64) (offset, period float64) {
	n := float64(len(ks))
	var sx, sy, sxx, sxy float64
	for i, k := range ks {
		x := float64(k)
		sx += x
		sy += positions[i]
		sxx += x * x
		sxy += x * positions[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return positions[0], 0
	}
	period = (n*sxy - sx*sy) / den
	offset = (sy - period*sx) / n
	return offset, period
}

// MatchKind classifies what the walker found at a slot.
type MatchKind int8

const (
	// MatchNone: no edge within the slot's search window.
	MatchNone MatchKind = iota
	// MatchClean: an edge whose differential matches ±e — confidently
	// this stream's own toggle. Only clean matches update the drift
	// tracker.
	MatchClean
	// MatchForeign: an edge sits in the slot window but its
	// differential matches neither +e nor −e. Either another tag's
	// edge strayed into the window, or this stream's edge collided
	// with another tag's (the merged differential is a ±-combination
	// that matches no single tag). The decoder's collision stage sorts
	// these out.
	MatchForeign
)

// SlotObs is the walker's observation at one bit slot.
type SlotObs struct {
	// Slot is the payload bit index (0 = first bit after preamble).
	Slot int
	// Pos is the sample position the observation was taken at (the
	// matched edge's position, or the expected slot position).
	Pos int64
	// EdgeIdx indexes the detector's edge slice, or -1 if no edge was
	// found at this slot.
	EdgeIdx int
	// Kind classifies the match.
	Kind MatchKind
	// Obs is the IQ differential observed at the slot.
	Obs complex128
}

// EdgeSource is what the slot walker needs from an edge detector: the
// position-ordered edge list found so far and soft IQ differential
// measurements at arbitrary positions. Both the batch Detector and the
// incremental detector stream satisfy it; for a stream, Edges() grows
// between walker steps (append-only, never reordered) and MeasureAt is
// valid for any position the caller has confirmed is inside the
// retained sample window.
type EdgeSource interface {
	Edges() []edgedetect.Edge
	MeasureAt(pos int64) complex128
}

// pickEdgeSpan is the slack pickEdge adds below its search window so
// coalesced edge groups spanning several samples still match by their
// [First, Last] interval.
const pickEdgeSpan = 16

// Walker visits a registered stream's bit slots one Step at a time,
// tracking clock drift exactly like the batch walk: whenever an edge
// locks cleanly to a slot it resynchronizes its phase and nudges its
// period estimate; slots without an edge get a soft differential
// measurement at the predicted position. The incremental decoder calls
// Step only once Horizon() falls inside the detector's finalized-edge
// prefix, which makes the walk independent of how the capture was
// blocked.
type Walker struct {
	st        *Stream
	cfg       Config
	numSlots  int
	obs       []SlotObs
	period    float64
	pos       float64
	sinceLock int
	vecTol    float64
	// Long-baseline period estimation: individual edge positions carry
	// a couple samples of localization noise, so the per-lock
	// innovation is only partially trusted (DriftGain), while the
	// slope from the first clean lock to the current one — whose noise
	// shrinks as 1/baseline — takes over once the baseline is long
	// enough to beat the registration fit.
	firstSlot int
	firstPos  float64
	k         int
}

// NewWalker starts a slot walk at the stream's anchor. Slot 0 is the
// first preamble edge; the decoder aligns the payload downstream using
// the delimiter bit.
func NewWalker(st *Stream, cfg Config, numSlots int) *Walker {
	return &Walker{
		st:        st,
		cfg:       cfg,
		numSlots:  numSlots,
		obs:       make([]SlotObs, 0, numSlots),
		period:    st.Period,
		pos:       st.Offset,
		sinceLock: 1,
		vecTol:    cfg.VecTol * dsp.Abs(st.E),
		firstSlot: -1,
	}
}

// Done reports whether every slot has been visited.
func (w *Walker) Done() bool { return w.k >= w.numSlots }

// Obs returns the observations collected so far (all of them once Done).
func (w *Walker) Obs() []SlotObs { return w.obs }

// tol is the current slot's position tolerance: the drift allowance
// grows with the number of slots since the last clean lock.
func (w *Walker) tol() float64 {
	return float64(w.cfg.PosTol) + w.period*float64(w.sinceLock)*w.cfg.DriftPPM/1e6
}

// Horizon returns the highest sample position the next Step may read an
// edge at. Once the detector's finalized-edge front passes this (and
// the sample window covers it), Step's outcome can no longer change.
func (w *Walker) Horizon() int64 {
	if w.Done() {
		return int64(math.Round(w.pos))
	}
	return int64(math.Round(w.pos)) + int64(math.Ceil(w.tol())) + pickEdgeSpan + 1
}

// MeasurePos returns the lowest sample position the walker may still
// need to measure, used by the incremental decoder to bound how far the
// detector's sample window can be trimmed.
func (w *Walker) MeasurePos() int64 { return int64(math.Round(w.pos)) }

// LowWater returns a sample position no future step of this walker can
// read below. The predicted position only ever moves forward (a resync
// shifts it by 0.6·err + period with |err| ≤ tol < period), so the
// current prediction minus the tolerance window — less one period of
// slack for the long-baseline refit — floors every future edge pick
// and soft measurement.
func (w *Walker) LowWater() int64 {
	return int64(w.pos-w.tol()-w.period) - pickEdgeSpan
}

// Step visits one slot.
func (w *Walker) Step(src EdgeSource) {
	if w.Done() {
		return
	}
	tol := w.tol()
	edges := src.Edges()
	idx, clean := pickEdge(edges, int64(math.Round(w.pos)), int64(math.Ceil(tol)), w.st.E, w.vecTol)
	o := SlotObs{Slot: w.k, EdgeIdx: idx}
	if idx >= 0 {
		edge := edges[idx]
		o.Pos = edge.Pos
		o.Obs = edge.Diff
		if clean {
			o.Kind = MatchClean
			// Resync phase and track period on clean locks only;
			// foreign edges would pull the tracker off frequency.
			err := float64(edge.Pos) - w.pos
			if w.firstSlot < 0 {
				w.firstSlot, w.firstPos = w.k, float64(edge.Pos)
				w.period += w.cfg.DriftGain * err / float64(w.sinceLock)
			} else if w.k-w.firstSlot >= 8 {
				w.period = (float64(edge.Pos) - w.firstPos) / float64(w.k-w.firstSlot)
			} else {
				w.period += w.cfg.DriftGain * err / float64(w.sinceLock)
			}
			// Partial phase correction: the edge position itself
			// is noisy, so blend it with the prediction.
			w.pos = w.pos + 0.6*err + w.period
			w.sinceLock = 1
		} else {
			o.Kind = MatchForeign
			w.pos += w.period
			w.sinceLock++
		}
	} else {
		o.Kind = MatchNone
		o.Pos = int64(math.Round(w.pos))
		o.Obs = src.MeasureAt(o.Pos)
		w.pos += w.period
		w.sinceLock++
	}
	w.obs = append(w.obs, o)
	w.k++
}

// Walk visits numSlots payload bit slots of the stream in one go — the
// batch form of the Walker, used when every edge is already final.
func Walk(st *Stream, src EdgeSource, cfg Config, numSlots int) []SlotObs {
	w := NewWalker(st, cfg, numSlots)
	for !w.Done() {
		w.Step(src)
	}
	return w.Obs()
}

// RegistrationHorizon returns the sample position by which every edge
// that stream registration can read — or consume — is known: the
// preamble matcher looks no further than MaxStart plus a preamble, the
// eye fold stops at its per-rate folding window, and accepting a stream
// consumes payload-grid edges across its whole frame (which can mask
// edges from a slower rate's fold). Once the detector's finalized-edge
// front passes this horizon, Register over the finalized prefix equals
// Register over the eventual full edge list, so the incremental decoder
// can register streams before end of capture.
func RegistrationHorizon(cfg Config, payloadBits func(rate float64) int) int64 {
	horizon := 0.0
	for _, rate := range cfg.Rates {
		period := cfg.SampleRate / rate
		slots := float64(FrameSlots(cfg, payloadBits(rate)) + 2)
		extent := float64(cfg.MaxStart) + slots*period*(1+cfg.DriftPPM/1e6)
		if extent > horizon {
			horizon = extent
		}
	}
	return int64(horizon) + cfg.PosTol + pickEdgeSpan + 64
}

// WalkHorizon returns the last sample position the commit stage can
// read for one registered stream: a frame of slots payload slots (plus
// the delimiter pair) walked from offset at period under worst-case
// drift, widened by the edge-pick tolerance and localization slack.
// It is the per-stream member of the provably-final cut family —
// RegistrationHorizon bounds registration globally, WalkHorizon bounds
// one stream's re-walk during commit — and together with the edge
// detector's sweep reach it is what seam-safe shard overlap derives
// from (internal/shard, DESIGN.md §15).
func WalkHorizon(cfg Config, offset, period float64, slots int) int64 {
	drift := 1 + cfg.DriftPPM/1e6
	return int64(offset+float64(slots+2)*period*drift) + cfg.PosTol + 64
}

// pickEdge chooses an edge for a slot window: the closest edge whose
// differential matches ±e (clean), or — when none matches — the
// closest edge of any vector (foreign). Preferring the vector match
// keeps a stream locked to its own edges when another tag's edge has
// drifted into the window.
func pickEdge(edges []edgedetect.Edge, pos, maxDist int64, e complex128, vecTol float64) (idx int, clean bool) {
	// Coalesced groups can span several samples; match against the
	// group interval [First, Last], not just the centre.
	lo := sort.Search(len(edges), func(i int) bool { return edges[i].Pos >= pos-maxDist-pickEdgeSpan })
	bestClean, bestCleanDist := -1, maxDist+1
	bestAny, bestAnyDist := -1, maxDist+1
	for i := lo; i < len(edges) && edges[i].First <= pos+maxDist; i++ {
		var d int64
		switch {
		case pos < edges[i].First:
			d = edges[i].First - pos
		case pos > edges[i].Last:
			d = pos - edges[i].Last
		}
		if d > maxDist {
			continue
		}
		if d < bestAnyDist {
			bestAny, bestAnyDist = i, d
		}
		if dsp.Dist(edges[i].Diff, e) <= vecTol || dsp.Dist(edges[i].Diff, -e) <= vecTol {
			if d < bestCleanDist {
				bestClean, bestCleanDist = i, d
			}
		}
	}
	if bestClean >= 0 {
		return bestClean, true
	}
	return bestAny, false
}
