package streams

import (
	"fmt"
	"math"
	"os"
	"sort"

	"lf/internal/cluster"
	"lf/internal/collide"
	"lf/internal/dsp"
	"lf/internal/edgedetect"
	"lf/internal/rng"
)

// Eye-pattern registration (§3.2 "Decoding edges"). The preamble
// matcher in streams.go needs several consecutive clean edges, which
// dense deployments rarely leave intact — at sixteen 100 kbps tags
// roughly half of all edges have a neighbour within the collision
// window. The eye pattern instead folds every edge position modulo the
// candidate bit period: a genuine stream piles tens of edges into one
// phase bin while other streams' edges land in their own bins, so a
// stream is detectable even when many of its individual edges are
// collided. This mirrors the paper's folding of the signal at each
// valid rate to detect stream presence.
//
// A phase peak is not always one tag: two tags whose comparator delays
// land within the collision window share a peak (the Fig. 3 bottom
// case). The member differentials betray this — one tag yields the two
// antipodal clusters ±e, a merged pair yields the ±e₁, ±e₂, ±e₁±e₂
// lattice — so each peak is vector-analyzed and may register as two
// streams sharing a grid.

// eyeDebug enables stderr tracing of eye registration (development).
var eyeDebug = os.Getenv("LF_EYE_DEBUG") != ""

// eyeParams derives the folding window and thresholds for one period.
type eyeParams struct {
	binWidth  float64
	windowPos float64 // only edges before this position are folded
	minHits   int
}

func eyeParamsFor(period float64, cfg Config, maxSlots int) eyeParams {
	// Clock drift smears a stream's phase by period·ppm per slot. The
	// folding window covers up to 64 slots (or the whole frame when
	// shorter — slow tags send few bits) and the bin width scales so
	// one stream's smear stays within a bin or three.
	smearPerSlot := period * cfg.DriftPPM / 1e6
	slots := 64.0
	if float64(maxSlots) < slots {
		slots = float64(maxSlots)
	}
	binWidth := 4.0
	if w := smearPerSlot * slots / 3; w > binWidth {
		binWidth = w
	}
	minHits := int(slots / 8)
	if minHits > 8 {
		minHits = 8
	}
	if minHits < 5 {
		minHits = 5
	}
	return eyeParams{
		binWidth:  binWidth,
		windowPos: float64(cfg.MaxStart) + slots*period,
		minHits:   minHits,
	}
}

// eyeRegister finds streams of the given rate among unused edges by
// phase folding. Found streams' edges are consumed; regions that fail
// to validate are blocked (not consumed — their edges may belong to a
// slower rate folded onto one phase).
func eyeRegister(edges []edgedetect.Edge, used []bool, rate float64, cfg Config, payloadBits int, src *rng.Source) []*Stream {
	period := cfg.SampleRate / rate
	maxSlots := FrameSlots(cfg, payloadBits)
	ep := eyeParamsFor(period, cfg, maxSlots)
	bins := int(period / ep.binWidth)
	blocked := make([]bool, bins+1)
	if eyeDebug {
		unused := 0
		for i := range edges {
			if !used[i] {
				unused++
			}
		}
		fmt.Fprintf(os.Stderr, "eyeRegister rate %.0f: %d unused edges, bins %d, window %.0f, minHits %d\n",
			rate, unused, bins, ep.windowPos, ep.minHits)
	}
	var found []*Stream
	for {
		sts := eyeOnce(edges, used, blocked, rate, period, ep, cfg, payloadBits, src)
		if len(sts) == 0 {
			return found
		}
		found = append(found, sts...)
	}
}

// eyeOnce extracts the strongest remaining phase-cluster region as one
// or more streams, or returns nil when no peak clears the threshold.
// A region can hold several tags — chains of nearby comparator phases
// are common at sixteen tags — so the member differentials are
// analyzed for up to four per-tag generator vectors, and each
// recovered generator gets its own grid fit from its solo edges.
func eyeOnce(edges []edgedetect.Edge, used []bool, blocked []bool, rate, period float64, ep eyeParams, cfg Config, payloadBits int, src *rng.Source) []*Stream {
	bins := int(period / ep.binWidth)
	if bins < 4 {
		return nil
	}
	counts := make([]int, bins)
	for i := range edges {
		if used[i] || float64(edges[i].Pos) > ep.windowPos {
			continue
		}
		phase := math.Mod(float64(edges[i].Pos), period)
		b := int(phase / period * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	// Peak bin plus its neighbour (the phase may straddle a bin edge).
	best, bestCount := -1, 0
	for b := 0; b < bins; b++ {
		if blocked[b] {
			continue
		}
		c := counts[b] + counts[(b+1)%bins]
		if c > bestCount {
			best, bestCount = b, c
		}
	}
	if best < 0 || bestCount < ep.minHits {
		if eyeDebug {
			fmt.Fprintf(os.Stderr, "eye rate %.0f: no peak (best %d < %d)\n", rate, bestCount, ep.minHits)
		}
		return nil
	}
	// Expand the peak into a contiguous region of active bins: phase
	// chains span several bins.
	loBin, hiBin := best, best+1
	active := ep.minHits / 4
	if active < 2 {
		active = 2
	}
	for span := 0; span < bins/3 && counts[(loBin-1+bins)%bins] >= active; span++ {
		loBin = (loBin - 1 + bins) % bins
	}
	for span := 0; span < bins/3 && counts[(hiBin+1)%bins] >= active; span++ {
		hiBin = (hiBin + 1) % bins
	}
	// Use the same quantization as the counting loop (period/bins, not
	// the nominal binWidth — integer truncation makes them differ, and
	// a peak's members must not fall outside its own region).
	actualWidth := period / float64(bins)
	loPh := float64(loBin) * actualWidth
	hiPh := (float64(hiBin) + 1) * actualWidth
	members := collectRegion(edges, used, period, loPh, hiPh, ep.windowPos)
	if len(members) < ep.minHits {
		if eyeDebug {
			fmt.Fprintf(os.Stderr, "eye rate %.0f: region [%.0f,%.0f] only %d members\n", rate, loPh, hiPh, len(members))
		}
		return nil
	}
	gens, shadowed := regionGenerators(edges, members, src)
	if len(gens) == 0 && eyeDebug {
		fmt.Fprintf(os.Stderr, "eye rate %.0f: no generators from %d members\n", rate, len(members))
	}
	if eyeDebug {
		fmt.Fprintf(os.Stderr, "eye region [%.0f,%.0f] members=%d gens=%d\n", loPh, hiPh, len(members), len(gens))
		for _, g := range gens {
			fmt.Fprintf(os.Stderr, "  gen %.2e angle %.0f\n", dsp.Abs(g), math.Atan2(imag(g), real(g))*180/math.Pi)
		}
	}
	var out []*Stream
	for gi := range gens {
		st := fitGenerator(edges, members, gens, gi, shadowed[gi], period, cfg)
		e := gens[gi]
		if st == nil {
			if eyeDebug {
				fmt.Fprintf(os.Stderr, "  gen %.2e: fit failed\n", dsp.Abs(e))
			}
			continue
		}
		st.Rate = rate
		st.Source = SourceEye
		if !validateHead(edges, st, gens, gi, shadowed[gi], cfg) {
			if eyeDebug {
				fmt.Fprintf(os.Stderr, "  gen %.2e: head invalid at off %.1f\n", dsp.Abs(e), st.Offset)
			}
			continue
		}
		if eyeDebug {
			fmt.Fprintf(os.Stderr, "  gen %.2e -> stream off=%.1f per=%.4f\n", dsp.Abs(e), st.Offset, st.Period)
		}
		out = append(out, st)
	}
	if len(out) == 0 {
		// Nothing validated: block the peak bin and try the next-best
		// region. The members stay available — they may belong to a
		// slower rate whose edges all fold onto one phase here.
		blocked[best] = true
		return eyeOnce(edges, used, blocked, rate, period, ep, cfg, payloadBits, src)
	}
	for _, mi := range members {
		used[mi] = true
	}
	for _, st := range out {
		consumePayloadEdges(edges, used, st, FrameSlots(cfg, payloadBits), cfg)
	}
	return out
}

// collectRegion returns indices of unused edges whose phase lies in
// [loPh, hiPh] (mod period, loPh may exceed hiPh when the region wraps)
// and inside the folding window.
func collectRegion(edges []edgedetect.Edge, used []bool, period, loPh, hiPh, windowPos float64) []int {
	var out []int
	for i := range edges {
		if used[i] || float64(edges[i].Pos) > windowPos {
			continue
		}
		phase := math.Mod(float64(edges[i].Pos), period)
		in := false
		if loPh <= hiPh {
			in = phase >= loPh && phase <= hiPh
		} else {
			in = phase >= loPh || phase <= hiPh
		}
		if in {
			out = append(out, i)
		}
	}
	return out
}

// regionGenerators recovers the per-tag edge vectors present in a
// region from its member differentials. Single-peak members (edges the
// detector did not have to coalesce) are preferred: their differentials
// sit on the pure generators ±eᵢ, avoiding the lattice-recovery
// problem almost entirely — only pairs tighter than the detector's
// peak resolution still contribute combo contamination.
func regionGenerators(edges []edgedetect.Edge, members []int, src *rng.Source) ([]complex128, []bool) {
	var diffs []complex128
	for _, mi := range members {
		if edges[mi].Peaks == 1 {
			diffs = append(diffs, edges[mi].Diff)
		}
	}
	if len(diffs) < 8 {
		diffs = diffs[:0]
		for _, mi := range members {
			diffs = append(diffs, edges[mi].Diff)
		}
	}
	return peelGenerators(diffs, src)
}

// peelGenerators extracts per-tag vectors from a mixed differential
// population. It first harvests every antipodal cluster mode by
// matching pursuit (find the densest ± cluster, retire its points,
// repeat), then selects the generating basis: a fully merged pair's
// eight equal-weight clusters are {±e₁, ±e₂, ±e₁±e₂}, so the true
// generators are the pair whose ± sums and differences explain the
// most remaining modes — corner modes ±(e₁+e₂) fail that closure test
// (their "corners" 2e₁ and 2e₂ are never observed). Modes left
// unexplained by the basis (third/fourth tags in a phase chain) join
// the generator set unless they are lattice combinations of it.
func peelGenerators(diffs []complex128, src *rng.Source) ([]complex128, []bool) {
	work := append([]complex128(nil), diffs...)
	floor := noiseScale(work)
	minWeight := len(diffs) / 10
	if minWeight < 5 {
		minWeight = 5
	}
	type mode struct {
		v      complex128
		weight int
	}
	var modes []mode
	for len(modes) < 9 && len(work) >= minWeight {
		e, weight := densestMode(work, floor)
		if weight < minWeight || dsp.Abs(e) < 4*floor {
			break
		}
		modes = append(modes, mode{e, weight})
		var kept []complex128
		for _, d := range work {
			if dsp.Dist(d, e) > 0.35*dsp.Abs(e) && dsp.Dist(d, -e) > 0.35*dsp.Abs(e) {
				kept = append(kept, d)
			}
		}
		if len(kept) == len(work) {
			break
		}
		work = kept
	}
	switch len(modes) {
	case 0:
		// Single-vector fallback: mean of sign-aligned diffs.
		var sum complex128
		ref := diffs[0]
		for _, d := range diffs {
			if real(d)*real(ref)+imag(d)*imag(ref) < 0 {
				d = -d
			}
			sum += d
		}
		e := sum / complex(float64(len(diffs)), 0)
		if dsp.Abs(e) == 0 {
			return nil, nil
		}
		return []complex128{e}, []bool{false}
	case 1:
		return []complex128{modes[0].v}, []bool{false}
	}

	// Collinear region: every mode on (nearly) one line through the
	// origin is a 1-D lattice — parallel reflections the IQ plane
	// cannot invert. Register the dominant mode as a single shadowed
	// stream (time-domain walking may still serve one constituent)
	// rather than fabricating a corner basis.
	collinear := true
	for i := 0; i < len(modes) && collinear; i++ {
		for j := i + 1; j < len(modes); j++ {
			vi, vj := modes[i].v, modes[j].v
			cross := real(vi)*imag(vj) - imag(vi)*real(vj)
			if math.Abs(cross) >= 0.25*dsp.Abs(vi)*dsp.Abs(vj) {
				collinear = false
				break
			}
		}
	}
	if collinear {
		best := 0
		for i := range modes {
			if modes[i].weight > modes[best].weight {
				best = i
			}
		}
		return []complex128{modes[best].v}, []bool{true}
	}

	// Basis selection by lattice closure.
	near := func(a, b complex128) bool {
		scale := math.Max(dsp.Abs(a), dsp.Abs(b))
		return dsp.Dist(a, b) < 0.3*scale || dsp.Dist(a, -b) < 0.3*scale
	}
	bestScore := -1
	bestMag := math.Inf(1)
	bi, bj := 0, 1
	for i := 0; i < len(modes); i++ {
		for j := i + 1; j < len(modes); j++ {
			vi, vj := modes[i].v, modes[j].v
			cross := real(vi)*imag(vj) - imag(vi)*real(vj)
			if math.Abs(cross) < 0.05*dsp.Abs(vi)*dsp.Abs(vj) {
				continue // parallel: not a basis
			}
			score := modes[i].weight + modes[j].weight
			for k := range modes {
				if k == i || k == j {
					continue
				}
				if near(modes[k].v, vi+vj) || near(modes[k].v, vi-vj) {
					score += modes[k].weight
				}
			}
			// Tiebreak by total magnitude: a wrong basis swaps a
			// generator for one of its corners, and the corner on the
			// "long" side (the sum for acute pairs, the difference
			// for obtuse ones) always exceeds the generator it
			// replaced — so among closure-equivalent bases the true
			// generators have the smallest magnitude sum.
			mag := dsp.Abs(vi) + dsp.Abs(vj)
			better := score > bestScore+bestScore/8 ||
				(score >= bestScore-bestScore/8 && mag < bestMag)
			if bestScore < 0 {
				better = true
			}
			if better {
				bestScore, bestMag, bi, bj = score, mag, i, j
			}
		}
	}
	gens := []complex128{modes[bi].v, modes[bj].v}
	// shadowed[t] records that a *distinct* anti-parallel mode was
	// folded into generator t — the regime where the two reflections
	// destructively cancel when co-toggling, which downstream
	// validation must forgive.
	shadowed := []bool{false, false}
	parallelDup := func(a, b complex128) bool {
		ma, mb := dsp.Abs(a), dsp.Abs(b)
		if ma == 0 || mb == 0 {
			return true
		}
		cross := real(a)*imag(b) - imag(a)*real(b)
		ratio := ma / mb
		if ratio < 1 {
			ratio = 1 / ratio
		}
		// Nearly parallel and within ~2.5× magnitude: the same
		// physical reflection measured with different window quality,
		// an anti-parallel twin, or the stretched e−(−partner) combo —
		// in every case not an independently usable basis vector (the
		// IQ plane cannot separate parallel reflections).
		return math.Abs(cross) < 0.2*ma*mb && ratio < 2.2
	}
	// Unexplained heavy modes become additional generators (3+-tag
	// chains) unless the existing generator lattice explains them.
	for k := range modes {
		if k == bi || k == bj || len(gens) >= 4 {
			continue
		}
		v := modes[k].v
		explained := false
		for t := range gens {
			if parallelDup(v, gens[t]) {
				distinct := dsp.Dist(v, gens[t]) > 0.35*dsp.Abs(gens[t]) &&
					dsp.Dist(v, -gens[t]) > 0.35*dsp.Abs(gens[t])
				if distinct {
					// A distinct (anti-)parallel reflection hides in
					// this generator's mode: either directly
					// anti-parallel, or visible as the ~2× "stretched"
					// combo e−(−partner). Its co-toggles with the
					// generator destructively cancel.
					shadowed[t] = true
				}
				explained = true
				break
			}
			with, _ := latticeFit(v, gens, t)
			if with < 0.3*dsp.Abs(v) {
				explained = true
				break
			}
		}
		if !explained {
			gens = append(gens, v)
			shadowed = append(shadowed, false)
		}
	}
	return gens, shadowed
}

// densestMode finds the densest ± cluster in a differential
// population by direct mode seeking: each point is a candidate centre;
// the one with the most neighbours within a noise-scaled radius of ±d
// wins, and the mode is the sign-aligned mean of those neighbours.
// Unlike k-means this cannot blur two lattice clusters into a phantom
// centroid between them.
func densestMode(points []complex128, floor float64) (complex128, int) {
	work := append([]complex128(nil), points...)
	radiusFor := func(d complex128) float64 {
		return math.Max(5*floor, 0.22*dsp.Abs(d))
	}
	// A candidate blob straddling the origin (hold observations, or
	// residue of earlier removals) is not a generator; reject it and
	// keep searching the remaining points.
	for attempt := 0; attempt < 4 && len(work) > 0; attempt++ {
		bestIdx, bestCount := -1, 0
		for i, d := range work {
			if dsp.Abs(d) < 4*floor {
				continue // origin cluster is not a generator
			}
			r := radiusFor(d)
			count := 0
			for _, q := range work {
				if dsp.Dist(q, d) <= r || dsp.Dist(q, -d) <= r {
					count++
				}
			}
			if count > bestCount {
				bestIdx, bestCount = i, count
			}
		}
		if bestIdx < 0 {
			return 0, 0
		}
		centre := work[bestIdx]
		r := radiusFor(centre)
		var sum complex128
		var spread float64
		n := 0
		for _, q := range work {
			switch {
			case dsp.Dist(q, centre) <= r:
				sum += q
				n++
			case dsp.Dist(q, -centre) <= r:
				sum -= q
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		v := sum / complex(float64(n), 0)
		for _, q := range work {
			if dsp.Dist(q, centre) <= r || dsp.Dist(q, -centre) <= r {
				spread += math.Min(dsp.Dist(q, v), dsp.Dist(q, -v))
			}
		}
		spread /= float64(n)
		if dsp.Abs(v) >= 2.5*spread {
			return v, bestCount
		}
		// Remove the rejected blob and retry.
		var kept []complex128
		for _, q := range work {
			if dsp.Dist(q, centre) > r && dsp.Dist(q, -centre) > r {
				kept = append(kept, q)
			}
		}
		if len(kept) == len(work) {
			return 0, 0
		}
		work = kept
	}
	return 0, 0
}

// noiseScale estimates the observation noise magnitude as the median
// nearest-neighbour distance in the population: points inside a
// lattice cluster sit roughly one noise standard deviation apart,
// while inter-cluster distances are far larger. (The smallest
// *magnitudes* would not do — edge differentials have no origin
// cluster.)
func noiseScale(diffs []complex128) float64 {
	if len(diffs) < 2 {
		return 0
	}
	nn := make([]float64, len(diffs))
	for i, d := range diffs {
		best := math.Inf(1)
		for j, q := range diffs {
			if i == j {
				continue
			}
			if dist := dsp.Dist(d, q); dist < best {
				best = dist
			}
		}
		nn[i] = best
	}
	sort.Float64s(nn)
	return nn[len(nn)/2]
}

// fitGenerator builds a stream for one recovered vector: its grid is
// fitted on the member edges where the vector appears alone (solo
// edges carry uncorrupted positions), and its anchor found with the
// frame-head template scan against the joint lattice of all the
// region's generators.
func fitGenerator(edges []edgedetect.Edge, members []int, gens []complex128, target int, shadowed bool, nominal float64, cfg Config) *Stream {
	e := gens[target]
	tol := 0.5 * dsp.Abs(e)
	var solo []int
	for _, mi := range members {
		d := edges[mi].Diff
		if dsp.Dist(d, e) <= tol || dsp.Dist(d, -e) <= tol {
			solo = append(solo, mi)
		}
	}
	if len(solo) < 4 {
		// Fully merged constituents may have few recognizable solo
		// edges; fall back to the shared grid of the whole region.
		solo = members
	}
	grid := fitGrid(edges, solo, nominal, cfg)
	if grid == nil {
		if eyeDebug {
			fmt.Fprintf(os.Stderr, "    fitGrid failed (%d solo)\n", len(solo))
		}
		return nil
	}
	offset := anchorScan(edges, grid.offset, grid.period, gens, target, shadowed, cfg)
	if offset < 0 || int64(offset) > cfg.MaxStart {
		if eyeDebug {
			fmt.Fprintf(os.Stderr, "    anchor failed (offset %.1f, shadowed %v)\n", offset, shadowed)
		}
		return nil
	}
	return &Stream{Offset: offset, Period: grid.period, E: e}
}

// validateHead checks the frame head: the preamble guarantees an edge
// in which the stream's vector participates at nearly every one of the
// first PreambleLen slots — except when a near-antipodal sibling can
// cancel the co-toggle below detectability, in which case missing
// edges are forgiven more generously.
func validateHead(edges []edgedetect.Edge, st *Stream, siblings []complex128, target int, shadowed bool, cfg Config) bool {
	head := 0
	memo := newLatticeMemo(len(edges))
	for k := 0; k < cfg.PreambleLen; k++ {
		expect := st.Offset + float64(k)*st.Period
		tol := float64(cfg.PosTol) + 2 + float64(k)*st.Period*cfg.DriftPPM/1e6
		if eOccupied(edges, expect, tol, siblings, target, memo) {
			head++
		}
	}
	need := cfg.PreambleLen - 1
	if shadowed || cancellable(siblings, target) {
		need = cfg.PreambleLen / 2
	}
	return head >= need
}

// cancellable reports whether some sibling generator can destructively
// cancel the target's edge below plausible detectability — the
// physical regime where co-toggle edges simply vanish from the
// capture.
func cancellable(gens []complex128, target int) bool {
	e := gens[target]
	for i, g := range gens {
		if i == target {
			continue
		}
		if dsp.Abs(e+g) < 0.3*dsp.Abs(e) || dsp.Abs(e-g) < 0.3*dsp.Abs(e) {
			return true
		}
	}
	return false
}

// latticeMemo caches latticeFit results per edge index for one fixed
// (gens, target) pair. The anchor scan and head validation re-test the
// same edges at many overlapping scan positions, and each latticeFit
// enumerates {−1,0,1}^n — caching the pure function's value is
// bit-identical to recomputing it and removes the enumeration from all
// repeat visits. NaN marks an uncomputed entry (latticeFit never
// returns NaN for finite inputs: dsp.Dist of finite values is finite).
type latticeMemo struct {
	with, without []float64
}

func newLatticeMemo(n int) *latticeMemo {
	m := &latticeMemo{with: make([]float64, n), without: make([]float64, n)}
	for i := range m.with {
		m.with[i] = math.NaN()
	}
	return m
}

// eOccupied reports whether an edge near pos plausibly contains a ±1
// component of gens[target] — i.e. whether this stream toggled there,
// alone or inside a collision with its sibling generators. The test
// classifies the differential against the joint lattice of all known
// generators twice — once freely and once with the target forced to 0
// — and declares occupancy when including the target's contribution
// improves the fit by a meaningful margin. This stays correct under
// destructive interference (|e+f| < |f|), where any magnitude-
// reduction heuristic fails. memo, when non-nil, must have been built
// for this exact (edges, gens, target) triple.
func eOccupied(edges []edgedetect.Edge, pos, tol float64, gens []complex128, target int, memo *latticeMemo) bool {
	e := gens[target]
	eAbs := dsp.Abs(e)
	if eAbs == 0 {
		return false
	}
	lo := sort.Search(len(edges), func(i int) bool {
		return float64(edges[i].Pos) >= pos-tol-16
	})
	for i := lo; i < len(edges) && float64(edges[i].First) <= pos+tol; i++ {
		if float64(edges[i].Last) < pos-tol {
			continue
		}
		var with, without float64
		if memo != nil && !math.IsNaN(memo.with[i]) {
			with, without = memo.with[i], memo.without[i]
		} else {
			with, without = latticeFit(edges[i].Diff, gens, target)
			if memo != nil {
				memo.with[i], memo.without[i] = with, without
			}
		}
		if with < without-0.2*eAbs {
			return true
		}
	}
	return false
}

// latticeFit returns the best lattice-fit distances of d over
// Σ aᵢ·gens[i] with aᵢ ∈ {−1,0,1}: once with a[target] ∈ {−1,+1}
// (with) and once with a[target] = 0 (without).
func latticeFit(d complex128, gens []complex128, target int) (with, without float64) {
	with, without = math.Inf(1), math.Inf(1)
	// Iterative enumeration of {−1,0,1}^n as base-3 counters — this is
	// an anchor-scan hot path, so no per-call slice or closure. The
	// partial sum accumulates in index order (zero terms included) to
	// keep the float op order of the recursive formulation.
	total := 1
	for range gens {
		total *= 3
	}
	for mask := 0; mask < total; mask++ {
		var partial complex128
		ct := 0
		for i, m := 0, mask; i < len(gens); i++ {
			c := m%3 - 1
			m /= 3
			if i == target {
				ct = c
			}
			partial += complex(float64(c), 0) * gens[i]
		}
		dist := dsp.Dist(d, partial)
		if ct == 0 {
			if dist < without {
				without = dist
			}
		} else if dist < with {
			with = dist
		}
	}
	return with, without
}

// AnchorFor locates the frame anchor of a stream with vector e on a
// fitted slot grid: the earliest grid position within the comparator
// window whose next PreambleLen slots are (almost) all e-occupied. In
// a dense deployment "some edge nearby" holds for half of all slots by
// chance, so the vector-participation test is what makes this scan
// meaningful.
func AnchorFor(edges []edgedetect.Edge, offset, period float64, e complex128, cfg Config) float64 {
	return anchorScan(edges, offset, period, []complex128{e}, 0, false, cfg)
}

// anchorScan is AnchorFor with the full sibling generator set, so the
// occupancy test understands collided frame heads.
func anchorScan(edges []edgedetect.Edge, offset, period float64, gens []complex128, target int, shadowed bool, cfg Config) float64 {
	m := int(offset / period)
	earliest := offset - float64(m)*period
	memo := newLatticeMemo(len(edges))
	occ := func(pos float64, slotsAway int) bool {
		// Tolerance grows with distance from the fit origin: clock
		// drift accumulates per slot, which matters at slow rates
		// where one slot is tens of thousands of samples.
		away := slotsAway
		if away < 0 {
			away = -away
		}
		tol := float64(cfg.PosTol) + 2 + float64(away)*period*cfg.DriftPPM/1e6
		return eOccupied(edges, pos, tol, gens, target, memo)
	}
	// When a near-antipodal sibling can swallow co-toggle edges,
	// missing preamble edges are expected and must not be penalized.
	missPenalty := -2
	minScore := 2 * (cfg.PreambleLen - 2)
	if shadowed || cancellable(gens, target) {
		missPenalty = 0
		minScore = cfg.PreambleLen // half the preamble visible is convincing enough
	}
	// A lattice position whose whole probe window holds no edge scores
	// exactly PreambleLen*missPenalty+3 (every preamble slot misses,
	// both silence slots and the delimiter land their bonus). When that
	// is below minScore — always, for any useful preamble length — such
	// positions can neither be returned (their score cannot pass the
	// gate) nor tie-preempt a returned best (ties need equal score at or
	// above the gate), so the scan may skip them wholesale. eOccupied
	// only ever examines edges with Pos >= probe-tol-16 and
	// First <= probe+tol, so "no edge Pos inside the window padded by
	// the worst probe tolerance and the widest Pos-First extent" proves
	// every probe of the template false. This turns the scan from
	// O(window/period) into O(edge clusters) — the cost that matters on
	// the mostly-quiet slotted captures of DESIGN.md §17, where the
	// start window spans the whole response schedule.
	canSkip := cfg.PreambleLen*missPenalty+3 < minScore
	var winLo, winHi float64
	if canSkip {
		tolMax := float64(cfg.PosTol) + 2 + float64(cfg.PreambleLen)*period*cfg.DriftPPM/1e6
		maxExtent := 0.0
		for i := range edges {
			if ext := float64(edges[i].Pos - edges[i].First); ext > maxExtent {
				maxExtent = ext
			}
		}
		winLo = 2*period + tolMax + 16
		winHi = float64(cfg.PreambleLen)*period + tolMax + maxExtent
	}
	best, bestScore := offset, -1000
	for pos := earliest; pos <= float64(cfg.MaxStart); pos += period {
		if canSkip {
			i := sort.Search(len(edges), func(i int) bool {
				return float64(edges[i].Pos) >= pos-winLo
			})
			if i == len(edges) {
				break // no edges this far out: every remaining position is empty
			}
			if e := float64(edges[i].Pos); e > pos+winHi {
				// Jump to the first lattice position whose window
				// reaches the next edge; everything in between is
				// provably empty. The post statement adds one period.
				steps := math.Ceil((e - winHi - pos) / period)
				pos += (steps - 1) * period
				continue
			}
		}
		// Score the frame-head template: PreambleLen e-occupied slots,
		// silence in the two slots before (the tag had not powered
		// up), and the empty delimiter slot after.
		score := 0
		for k := 0; k < cfg.PreambleLen; k++ {
			if occ(pos+float64(k)*period, k) {
				score += 2
			} else {
				score += missPenalty
			}
		}
		for k := -2; k < 0; k++ {
			if occ(pos+float64(k)*period, k) {
				score -= 2
			} else {
				score++
			}
		}
		if !occ(pos+float64(cfg.PreambleLen)*period, cfg.PreambleLen) {
			score++ // delimiter slot
		}
		if score > bestScore {
			best, bestScore = pos, score
		}
	}
	if bestScore < minScore {
		return -1 // no convincing frame head anywhere in the window
	}
	return best
}

// collectMembers returns indices of unused edges within tol of the
// phase centre (mod period) and inside the folding window.
func collectMembers(edges []edgedetect.Edge, used []bool, period, centre, tol, windowPos float64) []int {
	var out []int
	for i := range edges {
		if used[i] || float64(edges[i].Pos) > windowPos {
			continue
		}
		phase := math.Mod(float64(edges[i].Pos), period)
		d := math.Abs(phase - centre)
		if d > period/2 {
			d = period - d
		}
		if d <= tol {
			out = append(out, i)
		}
	}
	return out
}

// analyzeMemberVectors decides whether the peak's member differentials
// come from one tag (two antipodal clusters ±e) or a merged pair (the
// eight non-origin lattice points), returning one or two rising-edge
// vectors.
func analyzeMemberVectors(edges []edgedetect.Edge, members []int, src *rng.Source) []complex128 {
	diffs := make([]complex128, len(members))
	for i, mi := range members {
		diffs[i] = edges[mi].Diff
	}
	// Single-tag hypothesis: k=2, antipodal centroids, most points
	// close to ±e.
	km2 := cluster.KMeans(diffs, 2, 4, 60, src)
	c1, c2 := km2.Centroids[0], km2.Centroids[1]
	e := (c1 - c2) / 2
	scale := dsp.Abs(e)
	if scale > 0 && dsp.Abs(c1+c2) < 0.5*scale {
		inliers := 0
		for _, d := range diffs {
			if dsp.Dist(d, e) <= 0.5*scale || dsp.Dist(d, -e) <= 0.5*scale {
				inliers++
			}
		}
		// A lone tag's members are essentially all within tolerance of
		// ±e; a merged pair leaves the solo and opposite-corner lattice
		// points outside, capping its inlier fraction near 60%.
		if float64(inliers) >= 0.85*float64(len(diffs)) {
			return []complex128{e}
		}
	}
	// Merged-pair hypothesis: cluster into the eight non-origin
	// lattice points and recover the two generators.
	k := 8
	if len(diffs) < 2*k {
		k = 4
	}
	km := cluster.KMeans(diffs, k, 6, 80, src)
	e1, e2, err := collide.RecoverAntipodal(km.Centroids, km.Counts())
	if err != nil {
		if scale > 0 {
			return []complex128{e} // degraded single-vector fallback
		}
		return nil
	}
	return []complex128{e1, e2}
}

// gridFit is a fitted slot grid.
type gridFit struct {
	offset, period float64
}

// fitGrid least-squares fits the member positions to a slot grid and
// extends the anchor backwards over the preamble (whose slots all carry
// an edge, possibly collided). Returns nil if the fit degenerates.
func fitGrid(edges []edgedetect.Edge, members []int, nominal float64, cfg Config) *gridFit {
	if len(members) < 4 {
		return nil
	}
	sort.Ints(members)
	base := float64(edges[members[0]].Pos)
	var ks, ps []float64
	for _, mi := range members {
		k := math.Round((float64(edges[mi].Pos) - base) / nominal)
		ks = append(ks, k)
		ps = append(ps, float64(edges[mi].Pos))
	}
	offset, period := fitLineF(ks, ps)
	if period <= 0 || math.Abs(period-nominal) > nominal*0.002+float64(cfg.PosTol) {
		return nil
	}
	return &gridFit{offset: offset, period: period}
}

// findAnyEdgeIncludingUsed is findAnyEdge without the used filter —
// consumed or collided edges still witness grid occupancy.
func findAnyEdgeIncludingUsed(edges []edgedetect.Edge, expect, tol float64) int {
	lo := sort.Search(len(edges), func(i int) bool {
		return float64(edges[i].Pos) >= expect-tol
	})
	if lo < len(edges) && float64(edges[lo].Pos) <= expect+tol {
		return lo
	}
	return -1
}

// fitLineF least-squares fits ps ≈ offset + k·period over float ks.
func fitLineF(ks, ps []float64) (offset, period float64) {
	n := float64(len(ks))
	var sx, sy, sxx, sxy float64
	for i := range ks {
		sx += ks[i]
		sy += ps[i]
		sxx += ks[i] * ks[i]
		sxy += ks[i] * ps[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return ps[0], 0
	}
	period = (n*sxy - sx*sy) / den
	offset = (sy - period*sx) / n
	return offset, period
}
