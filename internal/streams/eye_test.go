package streams

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lf/internal/edgedetect"
	"lf/internal/rng"
)

// latticeEdges fabricates a detector-free edge slice on a slot grid:
// per slot, each of the vectors toggles with probability 1/2 and the
// combined differential lands at the grid position.
func latticeEdges(anchor, period float64, slots int, vecs []complex128, src *rng.Source) []edgedetect.Edge {
	var edges []edgedetect.Edge
	// Preamble: all vectors toggle together for the first 6 slots with
	// alternating sign, then the 0 delimiter, then random payload.
	sign := make([]float64, len(vecs))
	for i := range sign {
		sign[i] = 1
	}
	for k := 0; k < slots; k++ {
		pos := anchor + float64(k)*period
		var d complex128
		toggled := false
		for i, v := range vecs {
			var active bool
			switch {
			case k < 6:
				active = true
			case k == 6:
				active = false
			default:
				active = src.Bit() == 1
			}
			if active {
				d += complex(sign[i], 0) * v
				sign[i] = -sign[i]
				toggled = true
			}
		}
		if toggled {
			p := int64(math.Round(pos))
			edges = append(edges, edgedetect.Edge{
				Pos: p, First: p, Last: p, Diff: d + src.ComplexNorm(1e-9), Peaks: 1,
			})
		}
	}
	return edges
}

func TestLatticeFit(t *testing.T) {
	e1 := complex(6e-4, 1e-4)
	e2 := complex(-1e-4, 7e-4)
	gens := []complex128{e1, e2}
	// d = e1 + e2: including e1 fits exactly; excluding it leaves |e1|.
	with, without := latticeFit(e1+e2, gens, 0)
	if with > 1e-12 {
		t.Fatalf("with = %v", with)
	}
	if math.Abs(without-cAbs(e1)) > 1e-12 {
		t.Fatalf("without = %v, want |e1|", without)
	}
	// d = e2 alone: excluding e1 fits exactly.
	with, without = latticeFit(e2, gens, 0)
	if without > 1e-12 {
		t.Fatalf("pure-sibling without = %v", without)
	}
	if with < cAbs(e1)/2 {
		t.Fatalf("pure-sibling with = %v suspiciously small", with)
	}
}

func TestEOccupiedUnderDestructiveInterference(t *testing.T) {
	// e and f nearly cancel: |e+f| < |f|. The occupancy test must
	// still attribute the combined edge to e.
	e := complex(8e-4, 1e-4)
	f := complex(-7e-4, 1e-4)
	d := e + f // tiny
	p := int64(1000)
	edges := []edgedetect.Edge{{Pos: p, First: p, Last: p, Diff: d, Peaks: 1}}
	if !eOccupied(edges, 1000, 5, []complex128{e, f}, 0, nil) {
		t.Fatal("destructive co-toggle not attributed to e")
	}
	// A lone f edge must NOT count as e-occupancy.
	edges[0].Diff = f
	if eOccupied(edges, 1000, 5, []complex128{e, f}, 0, nil) {
		t.Fatal("sibling-only edge misattributed to e")
	}
}

func TestAnchorForFindsFrameHead(t *testing.T) {
	src := rng.New(1)
	e := complex(7e-4, -2e-4)
	anchor, period := 1750.0, 250.0
	edges := latticeEdges(anchor, period, 60, []complex128{e}, src)
	cfg := DefaultConfig(25e6, []float64{100e3})
	// Hand the scan an offset deep inside the payload: it must walk
	// back to the true anchor.
	got := AnchorFor(edges, anchor+20*period, period, e, cfg)
	if math.Abs(got-anchor) > 3 {
		t.Fatalf("anchor %v, want %v", got, anchor)
	}
}

func TestAnchorForRejectsWhenNoFrameHead(t *testing.T) {
	src := rng.New(2)
	e := complex(7e-4, -2e-4)
	// Random sparse edges with no preamble structure anywhere.
	var edges []edgedetect.Edge
	for i := 0; i < 10; i++ {
		p := int64(500 + src.Intn(5000)*3)
		edges = append(edges, edgedetect.Edge{Pos: p, First: p, Last: p, Diff: e, Peaks: 1})
	}
	cfg := DefaultConfig(25e6, []float64{100e3})
	if got := AnchorFor(edges, 2000, 250, e, cfg); got >= 0 {
		t.Fatalf("anchor %v found in structureless noise", got)
	}
}

func TestEyeRegisterMergedPairSameAnchor(t *testing.T) {
	// Two vectors sharing one grid from slot 0: the regional analysis
	// must register two streams with the correct vectors.
	src := rng.New(3)
	e1 := complex(6.5e-4, 0.5e-4)
	e2 := complex(-0.7e-4, 8.6e-4)
	edges := latticeEdges(2000, 250, 80, []complex128{e1, e2}, src)
	cfg := DefaultConfig(25e6, []float64{100e3})
	sts, err := Register(edges, cfg, func(float64) int { return 73 })
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 {
		t.Fatalf("registered %d streams, want 2", len(sts))
	}
	for _, st := range sts {
		d1 := math.Min(cAbs(st.E-e1), cAbs(st.E+e1))
		d2 := math.Min(cAbs(st.E-e2), cAbs(st.E+e2))
		if math.Min(d1, d2) > 1e-4 {
			t.Fatalf("stream vector %v matches neither generator", st.E)
		}
		if math.Abs(st.Offset-2000) > 5 {
			t.Fatalf("stream anchor %v, want 2000", st.Offset)
		}
	}
}

// TestPeelGeneratorsProperty: for random well-separated orthogonal-ish
// pairs, peeling recovers exactly two generators close to the truth.
func TestPeelGeneratorsProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		// Draw two vectors with a healthy angle between them.
		a1 := src.Phase()
		a2 := a1 + math.Pi/2 + src.Uniform(-0.6, 0.6)
		m1 := src.Uniform(5e-4, 1.2e-3)
		m2 := src.Uniform(5e-4, 1.2e-3)
		e1 := complex(m1*math.Cos(a1), m1*math.Sin(a1))
		e2 := complex(m2*math.Cos(a2), m2*math.Sin(a2))
		var diffs []complex128
		for i := 0; i < 120; i++ {
			x := float64(src.Intn(3) - 1)
			y := float64(src.Intn(3) - 1)
			if x == 0 && y == 0 {
				continue
			}
			diffs = append(diffs, complex(x, 0)*e1+complex(y, 0)*e2+src.ComplexNorm(2*(4e-5)*(4e-5)))
		}
		gens, _ := peelGenerators(diffs, src)
		if len(gens) != 2 {
			return false
		}
		for _, g := range gens {
			d1 := math.Min(cAbs(g-e1), cAbs(g+e1))
			d2 := math.Min(cAbs(g-e2), cAbs(g+e2))
			if math.Min(d1, d2) > 0.25*cAbs(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestDensestModeIgnoresOrigin(t *testing.T) {
	src := rng.New(4)
	e := complex(5e-4, 0)
	var pts []complex128
	// Heavy origin cluster plus a modest ±e pair.
	for i := 0; i < 50; i++ {
		pts = append(pts, src.ComplexNorm(1e-10))
	}
	for i := 0; i < 20; i++ {
		s := complex(float64(1-2*(i%2)), 0)
		pts = append(pts, s*e+src.ComplexNorm(1e-10))
	}
	floor := noiseScale(pts)
	v, w := densestMode(pts, floor)
	if w < 15 {
		t.Fatalf("mode weight %d", w)
	}
	if math.Min(cAbs(v-e), cAbs(v+e)) > 1e-4 {
		t.Fatalf("mode %v, want ±e", v)
	}
}
