package gate

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"time"

	"lf/internal/fault"
)

// ErrFlushed reports that the gateway finalized the session before the
// reader declared end of capture — the reader was gone longer than the
// gateway's FlushAfter grace, so the capture was flushed with only the
// samples that had arrived. Frames committed up to that point were
// published (nothing is silently lost); the tail of the capture was
// never decoded.
var ErrFlushed = errors.New("gate: session flushed by gateway before end of capture")

// ClientConfig tunes one reader-side ingest client.
type ClientConfig struct {
	// Addr is the gateway address.
	Addr string
	// Name identifies the reader (sessions aggregate stats by name).
	Name string
	// Nonce identifies the capture within the reader. 0 draws a
	// process-unique value. Reusing a (Name, Nonce) pair against the
	// same gateway resumes that capture's session — which is exactly
	// what the client's reconnect path does on purpose.
	Nonce uint64
	// SampleRate is carried in the hello and overrides the gateway's
	// decoder template rate for this session when > 0.
	SampleRate float64

	// ChunkSamples is the wire chunk size; pushes of any block size are
	// re-chunked to this (decodes are bit-identical at any chunking —
	// the push block-size invariance the streaming tests pin). Default
	// 8192.
	ChunkSamples int
	// AckTimeout bounds the wait for each ack/welcome/done frame; a
	// gateway silent that long is presumed unreachable and the client
	// reconnects. It must exceed the gateway's MaxThrottle or
	// backpressure throttling is misread as death. Default 30s.
	AckTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential reconnect backoff
	// (full jitter, as in internal/dist). Defaults 10ms / 1s.
	BackoffMin, BackoffMax time.Duration
	// MaxAttempts bounds consecutive failed connection attempts before
	// the client gives up (a completed exchange resets the count).
	// 0 selects 64.
	MaxAttempts int
	// Seed drives the jitter draws; 0 seeds from the reader name.
	Seed int64

	// Dial overrides the transport (tests inject pipes or faulty
	// conns). Default: net.Dialer over TCP to Addr.
	Dial func(ctx context.Context) (net.Conn, error)
	// Transport, when active, impairs the client's side of each
	// connection with the seeded wire injectors — the connection
	// attempt index salts the hash, so retries fail independently.
	Transport fault.TransportConfig
	// Logf, when non-nil, receives reconnect/resume logs.
	Logf func(string, ...any)
}

var clientNonce uint64 // process-unique nonce sequence

func init() {
	clientNonce = uint64(time.Now().UnixNano())<<16 ^ uint64(os.Getpid())
}

// Client streams one capture into a gateway session. Not safe for
// concurrent use; one goroutine owns the capture's sample order.
//
// The transport contract: every connection failure — drop, stall,
// corrupt frame, lost ack — is absorbed by reconnecting and resuming
// from the gateway's acked high-water mark, so the sample sequence the
// gateway decodes is exactly the sequence pushed, and the decode is
// byte-identical to a local one. The only errors Push/End surface are
// fatal: a decode failure on the gateway, a protocol version mismatch,
// an early flush (ErrFlushed), or attempts exhausted.
type Client struct {
	ctx     context.Context
	cfg     ClientConfig
	conn    net.Conn
	attempt uint64 // connection attempts; salts the transport injectors
	fails   int    // consecutive failed attempts
	rng     uint64

	acked   int64        // samples the gateway has acknowledged
	pending []complex128 // pushed but unacknowledged samples [acked, …)
	done    bool
	frames  uint32
	fatal   error
}

// DialClient opens (or resumes) a gateway session.
func DialClient(ctx context.Context, cfg ClientConfig) (*Client, error) {
	if cfg.Name == "" {
		return nil, errors.New("gate: client needs a reader name")
	}
	if cfg.ChunkSamples <= 0 {
		cfg.ChunkSamples = 8192
	}
	if cfg.ChunkSamples > maxChunkSamples {
		cfg.ChunkSamples = maxChunkSamples
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 30 * time.Second
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 10 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 64
	}
	if cfg.Nonce == 0 {
		cfg.Nonce = atomic.AddUint64(&clientNonce, 1)
	}
	if cfg.Seed == 0 {
		for _, b := range []byte(cfg.Name) {
			cfg.Seed = cfg.Seed*131 + int64(b)
		}
		cfg.Seed ^= int64(cfg.Nonce)
	}
	if cfg.Dial == nil {
		d := &net.Dialer{}
		addr := cfg.Addr
		cfg.Dial = func(ctx context.Context) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Client{ctx: ctx, cfg: cfg, rng: uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 1}
	if err := c.reconnect(); err != nil {
		return nil, err
	}
	return c, nil
}

func splitmix64c(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// reconnect dials until a session is (re-)established, with full-jitter
// exponential backoff between attempts, then re-synchronizes the send
// position from the welcome's high-water mark.
func (c *Client) reconnect() error {
	c.dropConn()
	ceiling := c.cfg.BackoffMin
	for {
		if err := c.ctx.Err(); err != nil {
			c.fatal = err
			return err
		}
		if c.fails >= c.cfg.MaxAttempts {
			c.fatal = fmt.Errorf("gate: reader %q: %d consecutive connection attempts failed", c.cfg.Name, c.fails)
			return c.fatal
		}
		if c.attempt > 0 {
			// Full jitter: sleep a uniform draw of the current ceiling.
			sleep := time.Duration(splitmix64c(&c.rng) % uint64(ceiling))
			select {
			case <-c.ctx.Done():
				c.fatal = c.ctx.Err()
				return c.fatal
			case <-time.After(sleep):
			}
			if ceiling *= 2; ceiling > c.cfg.BackoffMax {
				ceiling = c.cfg.BackoffMax
			}
		}
		c.attempt++
		c.fails++
		if err := c.handshake(); err != nil {
			if c.fatal != nil {
				return c.fatal
			}
			c.cfg.Logf("gate: reader %q: connect attempt %d: %v", c.cfg.Name, c.attempt, err)
			continue
		}
		c.fails = 0
		return nil
	}
}

// handshake performs one dial + hello/welcome exchange and
// re-synchronizes pending against the gateway's resume offset.
func (c *Client) handshake() error {
	conn, err := c.cfg.Dial(c.ctx)
	if err != nil {
		return err
	}
	conn = c.cfg.Transport.Wrap(conn, c.attempt)
	hello := &wireHello{Version: protoVersion, Name: c.cfg.Name, Nonce: c.cfg.Nonce, Rate: c.cfg.SampleRate}
	if err := writeFrame(conn, msgHello, hello.encode()); err != nil {
		conn.Close()
		return err
	}
	conn.SetReadDeadline(time.Now().Add(c.cfg.AckTimeout))
	typ, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return err
	}
	switch typ {
	case msgErr:
		conn.Close()
		em, derr := decodeErrMsg(payload)
		if derr != nil {
			return derr
		}
		c.fatal = errors.New(em.Msg)
		return c.fatal
	case msgWelcome:
	default:
		conn.Close()
		return wireErrf("expected welcome, got type %d", typ)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		conn.Close()
		return err
	}
	if w.Version != protoVersion {
		conn.Close()
		c.fatal = fmt.Errorf("gate: gateway speaks version %d, want %d", w.Version, protoVersion)
		return c.fatal
	}
	switch w.State {
	case stateFailed:
		conn.Close()
		c.fatal = fmt.Errorf("gate: reader %q: %s", c.cfg.Name, w.Msg)
		return c.fatal
	case stateDone:
		conn.Close()
		c.done = true
		c.frames = w.Frames
		return nil
	}
	// Resume: the gateway holds w.Have samples; drop the acknowledged
	// prefix and resend only the tail.
	adv := w.Have - c.acked
	switch {
	case adv == 0:
	case adv > 0 && adv <= int64(len(c.pending)):
		c.cfg.Logf("gate: reader %q: resumed at %d (+%d acked while away)", c.cfg.Name, w.Have, adv)
		c.pending = c.pending[adv:]
		c.acked = w.Have
	case adv > 0 && len(c.pending) == 0 && c.acked == 0:
		// A fresh client adopting an in-progress session (the reader
		// process restarted): start at the gateway's high-water mark.
		// The caller checks Acked() and supplies samples from there.
		c.cfg.Logf("gate: reader %q: adopting session at %d", c.cfg.Name, w.Have)
		c.acked = w.Have
	default:
		conn.Close()
		return wireErrf("welcome resume offset %d outside [%d, %d]", w.Have, c.acked, c.acked+int64(len(c.pending)))
	}
	c.conn = conn
	return nil
}

// Push feeds one block of IQ samples, re-chunking to ChunkSamples and
// flow-controlled by the gateway's acks (stop-and-wait: the ack for a
// chunk arrives only after the gateway has pushed it into the decoder
// and cleared the admission gate, so gateway backpressure blocks right
// here).
func (c *Client) Push(block []complex128) error {
	if c.fatal != nil {
		return c.fatal
	}
	if c.done {
		return ErrFlushed
	}
	c.pending = append(c.pending, block...)
	for len(c.pending) >= c.cfg.ChunkSamples {
		if err := c.sendChunk(c.cfg.ChunkSamples); err != nil {
			return err
		}
	}
	return nil
}

// sendChunk ships up to n pending samples and waits for the ack,
// reconnecting and resuming on any transport failure.
func (c *Client) sendChunk(n int) error {
	for {
		if c.fatal != nil {
			return c.fatal
		}
		if c.done {
			return ErrFlushed
		}
		if n > len(c.pending) {
			n = len(c.pending)
		}
		if n == 0 {
			return nil
		}
		if c.conn == nil {
			if err := c.reconnect(); err != nil {
				return err
			}
			continue // done/pending may have changed
		}
		chunk := &wireChunk{Base: c.acked, Samples: c.pending[:n]}
		if err := writeFrame(c.conn, msgChunk, chunk.encode()); err != nil {
			c.cfg.Logf("gate: reader %q: send: %v", c.cfg.Name, err)
			c.dropConn()
			continue
		}
		c.conn.SetReadDeadline(time.Now().Add(c.cfg.AckTimeout))
		typ, payload, err := readFrame(c.conn)
		if err != nil {
			c.cfg.Logf("gate: reader %q: await ack: %v", c.cfg.Name, err)
			c.dropConn()
			continue
		}
		switch typ {
		case msgAck:
			a, err := decodeAck(payload)
			if err != nil {
				c.dropConn()
				continue
			}
			adv := a.Have - c.acked
			if adv < 0 || adv > int64(len(c.pending)) {
				c.dropConn()
				continue
			}
			c.pending = c.pending[adv:]
			c.acked = a.Have
			return nil
		case msgErr:
			em, derr := decodeErrMsg(payload)
			if derr != nil {
				c.dropConn()
				continue
			}
			c.fatal = fmt.Errorf("gate: reader %q: %s", c.cfg.Name, em.Msg)
			c.dropConn()
			return c.fatal
		default:
			c.dropConn()
			continue
		}
	}
}

// End declares end of capture, waits for the gateway's flush, and
// returns the number of frames published for this capture.
func (c *Client) End() (int, error) {
	if c.fatal != nil {
		return 0, c.fatal
	}
	// Drain the sub-chunk tail first.
	for len(c.pending) > 0 {
		if c.done {
			return int(c.frames), ErrFlushed
		}
		if err := c.sendChunk(c.cfg.ChunkSamples); err != nil {
			return int(c.frames), err
		}
	}
	for {
		if c.fatal != nil {
			return int(c.frames), c.fatal
		}
		if c.done {
			// Flushed while we were away. With nothing pending the
			// gateway saw the whole capture, so this is a clean finish.
			return int(c.frames), nil
		}
		if c.conn == nil {
			if err := c.reconnect(); err != nil {
				return int(c.frames), err
			}
			continue
		}
		end := &wireEnd{Total: c.acked}
		if err := writeFrame(c.conn, msgEnd, end.encode()); err != nil {
			c.dropConn()
			continue
		}
		c.conn.SetReadDeadline(time.Now().Add(c.cfg.AckTimeout))
		typ, payload, err := readFrame(c.conn)
		if err != nil {
			c.dropConn()
			continue
		}
		switch typ {
		case msgDone:
			d, derr := decodeDone(payload)
			if derr != nil {
				c.dropConn()
				continue
			}
			c.done = true
			c.frames = d.Frames
			c.dropConn()
			return int(c.frames), nil
		case msgErr:
			em, derr := decodeErrMsg(payload)
			if derr != nil {
				c.dropConn()
				continue
			}
			c.fatal = fmt.Errorf("gate: reader %q: %s", c.cfg.Name, em.Msg)
			c.dropConn()
			return int(c.frames), c.fatal
		default:
			c.dropConn()
			continue
		}
	}
}

// Acked reports how many samples the gateway has acknowledged —
// everything below this is decoded-or-buffered gateway-side and
// survives any disconnect.
func (c *Client) Acked() int64 { return c.acked }

// Close drops the connection without ending the capture; the session
// stays resumable gateway-side until FlushAfter elapses, then is
// flushed best-effort.
func (c *Client) Close() error {
	c.dropConn()
	return nil
}
