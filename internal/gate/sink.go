package gate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"lf/internal/decoder"
)

// Frame is one decoded tag frame as published to sinks: the
// decode-determined fields of lf.StreamResult (bit-identical to a
// local decode of the same capture) plus the gateway's provenance —
// which reader sent the capture, which capture (nonce), and the
// commit index within that capture's decode.
type Frame struct {
	// Reader is the reader name from the session hello.
	Reader string `json:"reader"`
	// Capture is the capture nonce from the session hello.
	Capture uint64 `json:"capture"`
	// Index is the commit order within the capture's decode
	// (Result.Streams order; OnFrame fires in exactly this order).
	Index int `json:"index"`
	// Source names the registration path (preamble/eye/split).
	Source string `json:"source"`
	// Rate is the matched bit rate, bits/s; Offset the refined sample
	// position of the stream's first preamble edge.
	Rate   float64 `json:"rate"`
	Offset float64 `json:"offset"`
	// Bits is the decoded payload, one byte per bit.
	Bits []byte `json:"-"`
	// Confidence, CRCOK, Recovered mirror lf.StreamResult.
	Confidence float64 `json:"confidence"`
	CRCOK      bool    `json:"crc_ok"`
	Recovered  bool    `json:"recovered"`
}

// BitString renders the payload as a '0'/'1' string — the tag identity
// key the snapshot sink groups by default (for EPC-style payloads the
// payload is the tag ID).
func (f *Frame) BitString() string {
	b := make([]byte, len(f.Bits))
	for i, bit := range f.Bits {
		b[i] = '0' + bit&1
	}
	return string(b)
}

// MarshalJSON emits Bits as the readable bit string instead of base64.
func (f *Frame) MarshalJSON() ([]byte, error) {
	type alias Frame // no methods: avoids recursing into MarshalJSON
	return json.Marshal(struct {
		*alias
		Bits string `json:"bits"`
	}{(*alias)(f), f.BitString()})
}

// FrameOf builds the published form of one committed stream result —
// the gateway's publisher uses it, and the acceptance tests use it to
// derive expected frames from local lf.Decoder.NewStream runs.
func FrameOf(reader string, capture uint64, index int, sr *decoder.StreamResult) *Frame {
	f := &Frame{
		Reader:     reader,
		Capture:    capture,
		Index:      index,
		Rate:       sr.Stream.Rate,
		Offset:     sr.Stream.Offset,
		Source:     sr.Stream.Source.String(),
		Bits:       append([]byte(nil), sr.Bits...),
		Confidence: sr.Confidence,
		CRCOK:      sr.CRCOK,
		Recovered:  sr.Recovered,
	}
	return f
}

// Sink consumes published frames. The gateway serializes publication:
// Publish is called from gateway goroutines one call at a time and
// Close is called exactly once, after the last Publish — so
// implementations need no locking against the gateway. A Publish
// error is logged and counted, never propagated to the reader: sink
// health must not corrupt ingest flow control.
type Sink interface {
	Publish(*Frame) error
	Close() error
}

// JSONLSink writes one JSON object per frame to w — with os.Stdout,
// the classic pipeline tap. Close flushes but does not close w (the
// caller owns it).
type JSONLSink struct {
	w  *bufio.Writer
	mu sync.Mutex
}

// NewJSONLSink wraps w in a line-per-frame JSON sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

func (s *JSONLSink) Publish(f *Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(b); err != nil {
		return err
	}
	return s.w.WriteByte('\n')
}

func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// FileSink appends JSONL frames to a file it owns; Close flushes and
// closes the file.
type FileSink struct {
	f *os.File
	JSONLSink
}

// NewFileSink creates (or truncates) path and streams frames into it.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("gate: sink: %w", err)
	}
	return &FileSink{f: f, JSONLSink: JSONLSink{w: bufio.NewWriter(f)}}, nil
}

func (s *FileSink) Close() error {
	err := s.JSONLSink.Close()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SnapshotSink is the TagPack-style in-memory sink: it groups the
// latest frame per tag across all readers and exposes the grouping as
// an atomic, debounced snapshot. Publish updates a private map;
// consumers call Snapshot and get an immutable map that is replaced
// wholesale at most once per Debounce interval — a cheap read path
// ("all tags right now") that never blocks ingest and never shows a
// half-updated inventory.
type SnapshotSink struct {
	// Key derives the tag identity a frame is grouped under. Default:
	// the payload bit string (EPC-style payloads are the tag ID).
	Key func(*Frame) string
	// Debounce is the minimum interval between snapshot rebuilds
	// (default 50ms). 0 picks the default; negative publishes every
	// frame immediately.
	Debounce time.Duration

	mu      sync.Mutex
	latest  map[string]*Frame
	seq     uint64 // publishes accepted, for staleness checks in tests
	last    time.Time
	timer   *time.Timer
	closed  bool
	current sync.Map // single key 0 → TagSnapshot; avoids atomic.Value type gymnastics
}

// TagSnapshot is one debounced inventory view: tag key → latest frame.
// The map and the frames it holds are immutable once published.
type TagSnapshot map[string]*Frame

// NewSnapshotSink builds a snapshot sink with the given debounce
// interval (0 = 50ms default).
func NewSnapshotSink(debounce time.Duration) *SnapshotSink {
	s := &SnapshotSink{Debounce: debounce, latest: make(map[string]*Frame)}
	if s.Debounce == 0 {
		s.Debounce = 50 * time.Millisecond
	}
	s.current.Store(0, TagSnapshot{})
	return s
}

func (s *SnapshotSink) key(f *Frame) string {
	if s.Key != nil {
		return s.Key(f)
	}
	return f.BitString()
}

func (s *SnapshotSink) Publish(f *Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("gate: snapshot sink closed")
	}
	s.latest[s.key(f)] = f
	s.seq++
	if s.Debounce < 0 || time.Since(s.last) >= s.Debounce {
		s.rebuildLocked()
		return nil
	}
	if s.timer == nil {
		// One pending rebuild at a time; the timer coalesces every
		// publish that lands inside the debounce window.
		s.timer = time.AfterFunc(s.Debounce-time.Since(s.last), func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.timer = nil
			if !s.closed {
				s.rebuildLocked()
			}
		})
	}
	return nil
}

func (s *SnapshotSink) rebuildLocked() {
	snap := make(TagSnapshot, len(s.latest))
	for k, v := range s.latest {
		snap[k] = v
	}
	s.current.Store(0, snap)
	s.last = time.Now()
}

// Snapshot returns the latest debounced inventory view. The returned
// map is immutable; successive calls may return the same map.
func (s *SnapshotSink) Snapshot() TagSnapshot {
	v, _ := s.current.Load(0)
	return v.(TagSnapshot)
}

// Sync forces an immediate rebuild, bypassing the debounce (tests and
// shutdown paths).
func (s *SnapshotSink) Sync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rebuildLocked()
}

// Seq reports how many publishes the sink has accepted.
func (s *SnapshotSink) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

func (s *SnapshotSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	s.rebuildLocked()
	return nil
}

// collectSink accumulates every published frame per reader, in publish
// order — the harness sink Loopback and the test suites compare
// against local decodes.
type collectSink struct {
	mu     sync.Mutex
	frames map[string][]*Frame
}

func newCollectSink() *collectSink {
	return &collectSink{frames: make(map[string][]*Frame)}
}

func (s *collectSink) Publish(f *Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames[f.Reader] = append(s.frames[f.Reader], f)
	return nil
}

func (s *collectSink) Close() error { return nil }

func (s *collectSink) take() map[string][]*Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]*Frame, len(s.frames))
	for k, v := range s.frames {
		out[k] = append([]*Frame(nil), v...)
	}
	return out
}
