package gate

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lf/internal/fault"
	"lf/internal/obs"
)

// LoopbackReader describes one simulated reader for Loopback: a whole
// capture to stream, the push block size to stream it at, and optional
// client-side transport faults.
type LoopbackReader struct {
	Samples    []complex128
	SampleRate float64
	// Nonce pins the capture nonce (0 draws a process-unique one);
	// tests pin it so expected frames carry a known Capture field.
	Nonce uint64
	// Block is the reader's push block size (how samples leave the
	// radio front end); 0 pushes the whole capture at once. The wire
	// re-chunks to ChunkSamples regardless — decode is bit-identical
	// either way.
	Block int
	// ChunkSamples overrides the client wire chunk size (0 = default).
	ChunkSamples int
	// Transport impairs the reader's side of every connection.
	Transport fault.TransportConfig
	// Seed drives the reader's reconnect jitter.
	Seed int64
}

// LoopbackResult reports one Loopback run.
type LoopbackResult struct {
	// Frames holds each reader's published frames in publish order —
	// byte-comparable against a local lf.Decoder.NewStream run over the
	// same samples.
	Frames map[string][]*Frame
	// FramesTotal counts frames across all readers.
	FramesTotal int
	// Elapsed is wall time from first push to last capture flushed;
	// FramesPerSec is FramesTotal over that window.
	Elapsed      time.Duration
	FramesPerSec float64
	// Gateway is the gate.* metrics snapshot at shutdown; ReaderStats
	// the per-reader decode-class aggregate.
	Gateway     *obs.Snapshot
	ReaderStats map[string]*obs.Snapshot
}

// Loopback runs a complete gateway round trip in-process: start a
// gateway on a loopback listener, stream every reader's capture
// through its own client concurrently, wait for all captures to flush,
// and shut down. It is the harness behind `lfgate -demo`,
// `lfbench -benchjson`'s gateway_frames_per_sec, and the acceptance
// tests.
func Loopback(ctx context.Context, gcfg Config, readers map[string]LoopbackReader) (*LoopbackResult, error) {
	collect := newCollectSink()
	gcfg.Sinks = append(append([]Sink(nil), gcfg.Sinks...), collect)
	g, err := NewGateway(gcfg)
	if err != nil {
		return nil, err
	}
	defer g.Close()

	start := time.Now()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for name, r := range readers {
		wg.Add(1)
		go func(name string, r LoopbackReader) {
			defer wg.Done()
			if err := runLoopbackReader(ctx, g.Addr(), name, r); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("reader %q: %w", name, err))
				mu.Unlock()
			}
		}(name, r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if len(errs) > 0 {
		return nil, errs[0]
	}
	res := &LoopbackResult{
		Frames:      collect.take(),
		Elapsed:     elapsed,
		ReaderStats: g.ReaderStats(),
	}
	for _, frames := range res.Frames {
		res.FramesTotal += len(frames)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.FramesPerSec = float64(res.FramesTotal) / sec
	}
	if err := g.Close(); err != nil {
		return nil, err
	}
	res.Gateway = g.Stats()
	return res, nil
}

func runLoopbackReader(ctx context.Context, addr, name string, r LoopbackReader) error {
	c, err := DialClient(ctx, ClientConfig{
		Addr:         addr,
		Name:         name,
		Nonce:        r.Nonce,
		SampleRate:   r.SampleRate,
		ChunkSamples: r.ChunkSamples,
		Transport:    r.Transport,
		Seed:         r.Seed,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	block := r.Block
	if block <= 0 {
		block = len(r.Samples)
	}
	for lo := 0; lo < len(r.Samples); lo += block {
		hi := lo + block
		if hi > len(r.Samples) {
			hi = len(r.Samples)
		}
		if err := c.Push(r.Samples[lo:hi]); err != nil {
			return err
		}
	}
	_, err = c.End()
	return err
}
